(* xnav — command-line front end.

   Documents come from three sources: an XML file (parsed and imported
   on the fly), the built-in XMark generator, or a persisted disk image
   created by [xnav import]. Queries accept the full extended syntax
   (predicates, unions); plain downward paths run through the reordered
   physical plans, everything else through the hybrid executor. *)

module Tree = Xnav_xml.Tree
module Xml_parser = Xnav_xml.Xml_parser
module Xml_writer = Xnav_xml.Xml_writer
module Disk = Xnav_storage.Disk
module Buffer_manager = Xnav_storage.Buffer_manager
module Io_scheduler = Xnav_storage.Io_scheduler
module Import = Xnav_store.Import
module Store = Xnav_store.Store
module Image = Xnav_store.Image
module Export = Xnav_store.Export
module Path = Xnav_xpath.Path
module Query = Xnav_xpath.Query
module Rewrite = Xnav_xpath.Rewrite
module Xpath_parser = Xnav_xpath.Xpath_parser
module Plan = Xnav_core.Plan
module Compile = Xnav_core.Compile
module Exec = Xnav_core.Exec
module Query_exec = Xnav_core.Query_exec
module Context = Xnav_core.Context
module Xmark_gen = Xnav_xmark.Gen
module Workload = Xnav_workload.Workload

open Cmdliner

(* --- shared arguments ---------------------------------------------------- *)

let scale =
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"F" ~doc:"XMark scaling factor.")

let fidelity =
  Arg.(
    value
    & opt float 0.05
    & info [ "fidelity" ] ~docv:"F" ~doc:"Entity-count multiplier for the XMark generator.")

let seed = Arg.(value & opt int 20050614 & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.")

let input_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "i"; "input" ] ~docv:"FILE"
        ~doc:"XML document to load. Without it (or --image), XMark is generated.")

let image_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "image" ] ~docv:"FILE" ~doc:"Persisted disk image to open (see the import command).")

let page_size =
  Arg.(value & opt int 8192 & info [ "page-size" ] ~docv:"BYTES" ~doc:"Disk page size.")

let capacity =
  Arg.(
    value & opt int 1000 & info [ "buffer" ] ~docv:"PAGES" ~doc:"Buffer pool capacity in pages.")

let policy =
  let parse s =
    match Io_scheduler.policy_of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown policy %S" s))
  in
  let print ppf p = Fmt.string ppf (Io_scheduler.policy_to_string p) in
  Arg.(
    value
    & opt (conv (parse, print)) Io_scheduler.Elevator
    & info [ "io-policy" ] ~docv:"POLICY" ~doc:"Async I/O policy: fifo, sstf, elevator, cscan.")

let strategy =
  let parse = function
    | "dfs" -> Ok Import.Dfs
    | "bfs" -> Ok Import.Bfs
    | s when String.length s > 10 && String.sub s 0 10 = "scattered:" ->
      (try Ok (Import.Scattered (int_of_string (String.sub s 10 (String.length s - 10))))
       with Failure _ -> Error (`Msg "scattered:<seed> expects an integer"))
    | s -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  let print ppf s = Fmt.string ppf (Import.strategy_to_string s) in
  Arg.(
    value
    & opt (conv (parse, print)) Import.Dfs
    & info [ "clustering" ] ~docv:"STRATEGY" ~doc:"Import clustering: dfs, bfs, scattered:SEED.")

let plan_choice =
  let parse = function
    | "auto" -> Ok Compile.Auto
    | "simple" -> Ok Compile.Force_simple
    | "xschedule" | "schedule" -> Ok Compile.Force_schedule
    | "xscan" | "scan" -> Ok Compile.Force_scan
    | "xindex" | "index" -> Ok Compile.Force_index
    | s -> Error (`Msg (Printf.sprintf "unknown plan %S" s))
  in
  let print ppf = function
    | Compile.Auto -> Fmt.string ppf "auto"
    | Compile.Force_simple -> Fmt.string ppf "simple"
    | Compile.Force_schedule -> Fmt.string ppf "xschedule"
    | Compile.Force_scan -> Fmt.string ppf "xscan"
    | Compile.Force_index -> Fmt.string ppf "xindex"
  in
  Arg.(
    value
    & opt (conv (parse, print)) Compile.Auto
    & info [ "plan" ] ~docv:"PLAN"
        ~doc:"Plan: auto (cost-based), simple, xschedule, xscan, xindex.")

let path_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH" ~doc:"XPath location path.")

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print result NodeIDs, not only the count.")

let rewrite_flag =
  Arg.(value & flag & info [ "rewrite" ] ~doc:"Normalise the path logically before planning.")

let no_fused_flag =
  Arg.(
    value & flag
    & info [ "no-fused" ]
        ~doc:
          "Evaluate reordered plans with the historical per-step XStep iterator chain instead \
           of the fused automaton (same results and I/O, higher CPU).")

let no_cache_flag =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:
          "Disable the repeat-traffic front door: no result-cache consultation before planning \
           and (for workloads) no cross-client shared-scan dedup. Every statement re-executes \
           from scratch, reproducing the historical engine exactly.")

(* Apply the --no-fused choice to a compiled plan (Simple has no chain). *)
let apply_fused ~no_fused plan =
  if not no_fused then plan
  else
    match plan with
    | Plan.Reordered { io; dslash; fused = _ } -> Plan.Reordered { io; dslash; fused = false }
    | p -> p

(* --- document setup ------------------------------------------------------- *)

let obtain_store ~image ~input ~scale ~fidelity ~seed ~page_size ~capacity ~policy ~strategy =
  match image with
  | Some file -> begin
    match Image.load ~capacity ~policy file with
    | store :: _ -> store
    | [] -> failwith "image contains no documents"
  end
  | None ->
    let doc =
      match input with
      | Some file -> Xml_parser.parse_file file
      | None -> Xmark_gen.generate ~config:{ Xmark_gen.scale; fidelity; seed } ()
    in
    let config = { Disk.default_config with Disk.page_size } in
    let disk = Disk.create ~config () in
    let import = Import.run ~strategy disk doc in
    let buffer = Buffer_manager.create ~capacity ~policy disk in
    Store.attach buffer import

let common_store_term =
  Term.(
    const
      (fun image input scale fidelity seed page_size capacity policy strategy ->
        obtain_store ~image ~input ~scale ~fidelity ~seed ~page_size ~capacity ~policy ~strategy)
    $ image_file $ input_file $ scale $ fidelity $ seed $ page_size $ capacity $ policy
    $ strategy)

(* --- gen ------------------------------------------------------------------ *)

let gen_cmd =
  let output =
    Arg.(
      required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let run scale fidelity seed output =
    let doc = Xmark_gen.generate ~config:{ Xmark_gen.scale; fidelity; seed } () in
    Xml_writer.to_file ~declaration:true output doc;
    Printf.printf "wrote %s: %d elements, height %d\n" output (Tree.size doc) (Tree.height doc)
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate an XMark document to an XML file.")
    Term.(const run $ scale $ fidelity $ seed $ output)

(* --- import ----------------------------------------------------------------- *)

let import_cmd =
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"IMAGE" ~doc:"Disk image to write.")
  in
  let run input scale fidelity seed page_size strategy output =
    let doc =
      match input with
      | Some file -> Xml_parser.parse_file file
      | None -> Xmark_gen.generate ~config:{ Xmark_gen.scale; fidelity; seed } ()
    in
    let config = { Disk.default_config with Disk.page_size } in
    let disk = Disk.create ~config () in
    let import = Import.run ~strategy disk doc in
    let buffer = Buffer_manager.create ~capacity:8 disk in
    let store = Store.attach buffer import in
    Image.save output [ store ];
    Printf.printf "imported %d elements onto %d pages (%s clustering) -> %s\n"
      import.Import.node_count import.Import.page_count
      (Import.strategy_to_string strategy)
      output
  in
  Cmd.v
    (Cmd.info "import" ~doc:"Cluster a document onto a simulated disk and persist the image.")
    Term.(const run $ input_file $ scale $ fidelity $ seed $ page_size $ strategy $ output)

(* --- stats ------------------------------------------------------------------ *)

let stats_cmd =
  let run store =
    Printf.printf "document:   %d elements, height %d\n" (Store.node_count store)
      (Store.height store);
    Printf.printf "storage:    pages %d..%d\n" (Store.first_page store)
      (Store.first_page store + Store.page_count store - 1);
    Printf.printf "top tags:\n";
    let sorted = List.sort (fun (_, a) (_, b) -> compare b a) (Store.tag_counts store) in
    List.iteri
      (fun i (tag, n) ->
        if i < 15 then Printf.printf "  %-20s %d\n" (Xnav_xml.Tag.to_string tag) n)
      sorted
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Show document and clustering statistics.")
    Term.(const run $ common_store_term)

(* --- explain ----------------------------------------------------------------- *)

let explain_cmd =
  let run path_str choice rewrite no_fused no_cache store =
    let path = Path.from_root_element (Xpath_parser.parse path_str) in
    let path, plan = Compile.plan_for ~choice ~rewrite store path in
    let plan = apply_fused ~no_fused plan in
    Format.printf "path:     %s@." (Path.to_string path);
    Format.printf "estimate: %a@." Compile.pp_estimate
      (Compile.estimate ~fused:(not no_fused) store path);
    if no_cache then Format.printf "cache:    off (--no-cache)@."
    else
      Format.printf "cache:    result cache on — key %S @@ mutation stamp %d@."
        (Path.to_string path) (Store.mutation_stamp store);
    Format.printf "chosen:   %s@.@.%a@." (Plan.name plan) Plan.explain (path, plan)
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Show the compiled plan and cost estimate for a path.")
    Term.(
      const run $ path_arg $ plan_choice $ rewrite_flag $ no_fused_flag $ no_cache_flag
      $ common_store_term)

(* --- query ---------------------------------------------------------------------- *)

let query_cmd =
  let k_arg =
    Arg.(value & opt int 100 & info [ "k" ] ~docv:"N" ~doc:"XSchedule queue minimum.")
  in
  let budget =
    Arg.(
      value
      & opt int 1_000_000
      & info [ "memory-budget" ] ~docv:"N" ~doc:"Max speculative instances before fallback.")
  in
  let coalesce_window =
    Arg.(
      value
      & opt int Context.default_config.Context.coalesce_window
      & info [ "coalesce-window" ] ~docv:"N"
          ~doc:"Max contiguous pages per coalesced async read (0 disables batching).")
  in
  let scan_threshold =
    Arg.(
      value
      & opt float Context.default_config.Context.scan_threshold
      & info [ "scan-threshold" ] ~docv:"F"
          ~doc:"Visited-region density above which XSchedule streams ahead (<= 0 disables).")
  in
  let serve_policy =
    let parse s =
      match Context.serve_policy_of_string s with
      | Some p -> Ok p
      | None -> Error (`Msg (Printf.sprintf "unknown serve policy %S" s))
    in
    let print ppf p = Fmt.string ppf (Context.serve_policy_to_string p) in
    Arg.(
      value
      & opt (conv (parse, print)) Context.default_config.Context.serve_policy
      & info [ "serve-policy" ] ~docv:"POLICY"
          ~doc:"How XSchedule picks the next queued cluster: min-pid or cost.")
  in
  let run path_str choice rewrite no_fused no_cache k budget coalesce_window serve_policy
      scan_threshold verbose store =
    let query = Query.from_root_element (Xpath_parser.parse_query path_str) in
    let config =
      Context.set_result_cache (not no_cache)
        (Context.set_fused (not no_fused)
           {
             Context.default_config with
             Context.k;
             memory_budget = budget;
             coalesce_window;
             serve_policy;
             scan_threshold;
           })
    in
    let print_nodes nodes =
      if verbose then
        List.iter
          (fun (i : Store.info) ->
            Format.printf "  %a  %a  %a@." Xnav_store.Node_id.pp i.Store.id Xnav_xml.Tag.pp
              i.Store.tag Xnav_xml.Ordpath.pp i.Store.ordpath)
          nodes
    in
    match query with
    | [ branch ] when not (Query.has_predicates query) ->
      (* A plain path: the full reordered machinery with metrics. *)
      let path = Query.trunk branch in
      let path, plan = Compile.plan_for ~choice ~rewrite store path in
      let result = Exec.cold_run ~config store path plan in
      Printf.printf "plan:  %s\n" (Plan.name plan);
      Printf.printf "count: %d\n" result.Exec.count;
      print_nodes result.Exec.nodes;
      Format.printf "%a@." Exec.pp_metrics result.Exec.metrics
    | _ ->
      let result = Query_exec.run ~choice ~config ~cold:true store query in
      Printf.printf "plan:  hybrid (%d trunk segments, %d predicate checks)\n"
        result.Query_exec.segments result.Query_exec.predicate_checks;
      Printf.printf "count: %d\n" result.Query_exec.count;
      print_nodes result.Query_exec.nodes;
      Printf.printf "total %.4fs (io %.4fs, cpu %.4fs)\n" result.Query_exec.total_time
        result.Query_exec.io_time result.Query_exec.cpu_time
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Evaluate a location path or extended query with cost metrics.")
    Term.(
      const run $ path_arg $ plan_choice $ rewrite_flag $ no_fused_flag $ no_cache_flag $ k_arg
      $ budget $ coalesce_window $ serve_policy $ scan_threshold $ verbose $ common_store_term)

(* --- check ------------------------------------------------------------------------ *)

let check_cmd =
  let module D = Xnav_check.Differential in
  let cases =
    Arg.(
      value & opt int 200 & info [ "cases" ] ~docv:"N" ~doc:"Number of sampled cases to check.")
  in
  let check_seed =
    Arg.(
      value
      & opt int D.default_seed
      & info [ "seed" ] ~docv:"N" ~doc:"Sampling seed (a given seed replays the same cases).")
  in
  let doc_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "doc-seed" ] ~docv:"N"
          ~doc:"Replay one case against the XMark document with this generator seed.")
  in
  let check_fidelity =
    Arg.(
      value
      & opt float 0.002
      & info [ "fidelity" ] ~docv:"F" ~doc:"XMark fidelity of the replayed document.")
  in
  let payload =
    Arg.(
      value & opt int 220 & info [ "payload" ] ~docv:"BYTES" ~doc:"Per-node payload at import.")
  in
  let replacement =
    let parse s =
      match Buffer_manager.replacement_of_string s with
      | Some r -> Ok r
      | None -> Error (`Msg (Printf.sprintf "unknown replacement %S" s))
    in
    let print ppf r = Fmt.string ppf (Buffer_manager.replacement_to_string r) in
    Arg.(
      value
      & opt (conv (parse, print)) Buffer_manager.Lru
      & info [ "replacement" ] ~docv:"POLICY" ~doc:"Buffer replacement: lru, mru, fifo, clock.")
  in
  let k_arg =
    Arg.(value & opt int 100 & info [ "k" ] ~docv:"N" ~doc:"XSchedule queue minimum.")
  in
  let budget =
    Arg.(
      value
      & opt int 1_000_000
      & info [ "memory-budget" ] ~docv:"N" ~doc:"Max speculative instances before fallback.")
  in
  let no_speculation =
    Arg.(value & flag & info [ "no-speculation" ] ~doc:"Disable speculative evaluation.")
  in
  let path_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "path" ] ~docv:"PATH" ~doc:"Location path of the replayed case.")
  in
  let tier_arg =
    Arg.(
      value
      & opt string "base"
      & info [ "tier" ] ~docv:"TIER"
          ~doc:
            "Differential tier to sample: base, swizzle, batching, workload, writers, fused, \
             shards, cache, index, or all. Only meaningful in sampling mode (without $(b,--path)).")
  in
  let tiers_of = function
    | "base" -> Some [ ("base", D.run) ]
    | "swizzle" -> Some [ ("swizzle", D.run_swizzle) ]
    | "batching" -> Some [ ("batching", D.run_batching) ]
    | "workload" -> Some [ ("workload", D.run_workload) ]
    | "writers" -> Some [ ("writers", D.run_writers) ]
    | "fused" -> Some [ ("fused", D.run_fused) ]
    | "shards" -> Some [ ("shards", D.run_shards) ]
    | "cache" -> Some [ ("cache", D.run_cache) ]
    | "index" -> Some [ ("index", D.run_index) ]
    | "all" ->
      Some
        [
          ("base", D.run);
          ("swizzle", D.run_swizzle);
          ("batching", D.run_batching);
          ("workload", D.run_workload);
          ("writers", D.run_writers);
          ("fused", D.run_fused);
          ("shards", D.run_shards);
          ("cache", D.run_cache);
          ("index", D.run_index);
        ]
    | _ -> None
  in
  let run cases seed doc_seed fidelity strategy page_size payload capacity policy replacement k
      budget no_speculation tier path_str =
    match (path_str : string option) with
    | None ->
      (* Sampling mode. *)
      let tiers =
        match tiers_of tier with
        | Some ts -> ts
        | None ->
          Printf.eprintf "xnav check: unknown tier %S\n" tier;
          exit 2
      in
      let failed = ref false in
      List.iter
        (fun
          ( name,
            (runner :
              ?seed:int ->
              ?cases:int ->
              ?paths_per_store:int ->
              ?log:(string -> unit) ->
              unit ->
              D.report) )
        ->
          let report = runner ~seed ~cases ~log:print_endline () in
          Printf.printf "[%s] checked %d cases (%d plan executions)\n" name report.D.cases_run
            report.D.plan_runs;
          if report.D.failures = [] then
            Printf.printf "[%s] all plans agree; all invariants hold\n" name
          else begin
            failed := true;
            Printf.printf "[%s] %d FAILING case(s); minimal reproducers:\n" name
              (List.length report.D.failures);
            List.iter
              (fun f ->
                Format.printf "@.%a@." D.pp_case f.D.shrunk;
                List.iter
                  (fun m -> Printf.printf "  [%s] %s\n" m.D.plan m.D.detail)
                  f.D.mismatches;
                Printf.printf "  %s\n" (D.reproducer f.D.shrunk))
              report.D.failures
          end)
        tiers;
      if !failed then exit 1
    | Some path_str ->
      (* Reproducer mode: one fully specified case. *)
      let doc_seed = Option.value ~default:20050614 doc_seed in
      let case =
        {
          D.doc_seed;
          fidelity;
          physical =
            { D.strategy; page_size; payload; capacity; policy; replacement };
          k;
          speculative = not no_speculation;
          memory_budget = budget;
          path = Xpath_parser.parse path_str;
        }
      in
      Format.printf "%a@." D.pp_case case;
      (match D.check_case case with
      | [] -> print_endline "case passes: all plans agree; all invariants hold"
      | mismatches ->
        List.iter (fun m -> Printf.printf "[%s] %s\n" m.D.plan m.D.detail) mismatches;
        exit 1)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Differential correctness check: run every physical plan over sampled (document, path, \
          configuration) cases — or one case given via --path — and compare against the \
          reference evaluator.")
    Term.(
      const run $ cases $ check_seed $ doc_seed $ check_fidelity $ strategy $ page_size $ payload
      $ capacity $ policy $ replacement $ k_arg $ budget $ no_speculation $ tier_arg $ path_opt)

(* --- workload --------------------------------------------------------------------- *)

let workload_cmd =
  let paths_arg =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"PATH" ~doc:"Location paths; each becomes one job per client per round.")
  in
  let clients_arg =
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N" ~doc:"Number of closed-loop clients.")
  in
  let rounds_arg =
    Arg.(
      value & opt int 1 & info [ "rounds" ] ~docv:"N" ~doc:"Times each client repeats the paths.")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-job deadline in simulated seconds (aborted jobs report timed-out).")
  in
  let wplan =
    let parse = function
      | "simple" -> Ok Plan.simple
      | "xschedule" | "schedule" -> Ok (Plan.xschedule ())
      | "xscan" | "scan" -> Ok (Plan.xscan ())
      | s -> Error (`Msg (Printf.sprintf "unknown plan %S" s))
    in
    let print ppf p = Fmt.string ppf (Plan.name p) in
    Arg.(
      value
      & opt (conv (parse, print)) (Plan.xschedule ())
      & info [ "plan" ] ~docv:"PLAN" ~doc:"Plan for every job: simple, xschedule, xscan.")
  in
  let quantum_arg =
    Arg.(
      value
      & opt float 0.004
      & info [ "quantum" ] ~docv:"SECONDS" ~doc:"Per-turn cost credit in simulated seconds.")
  in
  let writers_arg =
    Arg.(
      value
      & opt int 0
      & info [ "writers" ] ~docv:"K"
          ~doc:
            "Writer clients applying sampled in-place inserts and deletes alongside the readers \
             (cluster latches, snapshot reads, cluster-granular cache invalidation).")
  in
  let run paths clients rounds timeout plan quantum writers no_cache store =
    if clients < 1 || rounds < 1 then begin
      prerr_endline "xnav workload: --clients and --rounds must be positive";
      exit 2
    end;
    if writers < 0 then begin
      prerr_endline "xnav workload: --writers must be non-negative";
      exit 2
    end;
    let parsed = List.map (fun p -> (p, Xpath_parser.parse p)) paths in
    let spec (label, path) = { Workload.label; path; plan; timeout; ops = [] } in
    (* Clients start out of phase (each rotates the path list by its
       index) so every path sees contention from the others. *)
    let rotate k xs =
      let k = k mod List.length xs in
      let rec go i acc = function
        | rest when i = 0 -> rest @ List.rev acc
        | x :: rest -> go (i - 1) (x :: acc) rest
        | [] -> List.rev acc
      in
      go k [] xs
    in
    let queues =
      Array.init clients (fun i ->
          List.concat (List.init rounds (fun _ -> List.map spec (rotate i parsed))))
    in
    (* Writer clients: sampled in-place ops over the stored elements (a
       fixed LCG keeps the schedule reproducible for a given store). *)
    let queues =
      if writers = 0 then queues
      else begin
        let elements =
          (Exec.run ~ordered:false store (Xpath_parser.parse "//*") Plan.simple).Exec.nodes
        in
        let targets =
          Array.of_list (List.map (fun (i : Store.info) -> i.Store.id) elements)
        in
        let parents =
          if Array.length targets = 0 then [| Store.root store |] else targets
        in
        let tags = Array.of_list (List.map fst (Store.tag_counts store)) in
        let state = ref 0x5DEECE66D in
        let rand b =
          state := ((!state * 25214903917) + 11) land 0x3FFFFFFFFFFF;
          !state mod b
        in
        let writer_queues =
          Array.init writers (fun w ->
              let ops =
                List.init
                  (2 + rand 3)
                  (fun _ ->
                    if Array.length targets > 0 && rand 2 = 0 then
                      Workload.Delete_subtree targets.(rand (Array.length targets))
                    else
                      Workload.Insert_child
                        {
                          parent = parents.(rand (Array.length parents));
                          tag = tags.(rand (Array.length tags));
                        })
              in
              [
                {
                  Workload.label = Printf.sprintf "writer.%d" w;
                  path = snd (List.hd parsed);
                  plan;
                  timeout = None;
                  ops;
                };
              ])
        in
        Array.append queues writer_queues
      end
    in
    let config = Context.set_result_cache (not no_cache) Context.default_config in
    let r = Workload.run_clients ~config ~quantum ~cold:true store queues in
    let count_status st =
      List.length (List.filter (fun (j : Workload.job) -> j.Workload.status = st) r.Workload.jobs)
    in
    let jobs = List.length r.Workload.jobs in
    Printf.printf "workload: %d clients x %d jobs each (%d paths x %d rounds), plan %s\n" clients
      (List.length paths * rounds) (List.length paths) rounds (Plan.name plan);
    Printf.printf "jobs %d: %d completed, %d recovered, %d timed out; max %d concurrent, %d turns\n"
      jobs (count_status Workload.Completed) (count_status Workload.Recovered)
      (count_status Workload.Timed_out) r.Workload.max_concurrent r.Workload.turns;
    let lats = List.map (fun (j : Workload.job) -> j.Workload.latency) r.Workload.jobs in
    let throughput =
      if r.Workload.total_time > 0.0 then float_of_int jobs /. r.Workload.total_time else 0.0
    in
    Printf.printf "throughput %.1f jobs/s   latency p50 %.4fs  p95 %.4fs  p99 %.4fs\n" throughput
      (Workload.percentile lats 50.0) (Workload.percentile lats 95.0)
      (Workload.percentile lats 99.0);
    Printf.printf "io %.4fs  page reads %d  seek %d  batched %d reads / %d pages in %d runs\n"
      r.Workload.io_time r.Workload.page_reads r.Workload.seek_distance r.Workload.batched_reads
      r.Workload.batch_pages r.Workload.coalesce_runs;
    Printf.printf "front door: %s — %d cache hits, %d installs, %d shared scans\n"
      (if no_cache then "off" else "on")
      r.Workload.cache_hits r.Workload.cache_misses r.Workload.shared_jobs;
    if writers > 0 then
      Printf.printf
        "writers: %d clients — %d commits, %d latch waits, %d snapshot retries, %d cluster \
         stales\n"
        writers r.Workload.writer_commits r.Workload.latch_waits r.Workload.snapshot_retries
        r.Workload.cluster_stales;
    Printf.printf "fairness per path:\n";
    Printf.printf "  %-28s %5s %9s %9s %7s %8s %7s %7s\n" "path" "jobs" "mean-lat" "pin-wait"
      "served" "starved" "yields" "boosts";
    List.iter
      (fun (label, _) ->
        let js =
          List.filter (fun (j : Workload.job) -> j.Workload.job_label = label) r.Workload.jobs
        in
        let n = List.length js in
        let sumf f = List.fold_left (fun a j -> a +. f j) 0.0 js in
        let sumi f = List.fold_left (fun a j -> a + f j) 0 js in
        Printf.printf "  %-28s %5d %9.4f %9.4f %7d %8d %7d %7d\n" label n
          (sumf (fun j -> j.Workload.latency) /. float_of_int (max 1 n))
          (sumf (fun j -> j.Workload.pin_wait) /. float_of_int (max 1 n))
          (sumi (fun j -> j.Workload.served_ticks))
          (sumi (fun j -> j.Workload.starved_ticks))
          (sumi (fun j -> j.Workload.yields))
          (sumi (fun j -> j.Workload.boosts)))
      parsed;
    if r.Workload.violations <> [] then begin
      prerr_endline "invariant violations:";
      List.iter (fun v -> Printf.eprintf "  %s\n" v) r.Workload.violations;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:
         "Run concurrent queries as closed-loop clients over one shared buffer pool, reporting \
          latency percentiles and fairness counters.")
    Term.(
      const run $ paths_arg $ clients_arg $ rounds_arg $ timeout_arg $ wplan $ quantum_arg
      $ writers_arg $ no_cache_flag $ common_store_term)

(* --- export ----------------------------------------------------------------------- *)

let export_cmd =
  let output =
    Arg.(
      required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"XML output.")
  in
  let nav = Arg.(value & flag & info [ "navigate" ] ~doc:"Export by navigation, not by scan.") in
  let run output nav store =
    let tree = Export.document ~scan:(not nav) store in
    Xml_writer.to_file ~declaration:true output tree;
    Printf.printf "exported %d elements to %s (%s)\n" (Tree.size tree) output
      (if nav then "navigational" else "sequential scan")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Serialise a stored document back to XML.")
    Term.(const run $ output $ nav $ common_store_term)

(* --- main ------------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "xnav" ~version:"1.0.0"
      ~doc:"Cost-sensitive reordering of navigational primitives for XPath."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            gen_cmd;
            import_cmd;
            stats_cmd;
            explain_cmd;
            query_cmd;
            check_cmd;
            workload_cmd;
            export_cmd;
          ]))
