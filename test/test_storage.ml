(* Tests for xnav_storage: slotted pages, simulated disk, I/O scheduler,
   buffer manager. *)

module Page = Xnav_storage.Page
module Disk = Xnav_storage.Disk
module Io_scheduler = Xnav_storage.Io_scheduler
module Buffer_manager = Xnav_storage.Buffer_manager

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

(* --- Page ---------------------------------------------------------------- *)

let page_tests =
  [
    Alcotest.test_case "insert then get" `Quick (fun () ->
        let p = Page.create ~page_size:256 in
        let s0 = Option.get (Page.insert p "hello") in
        let s1 = Option.get (Page.insert p "world!") in
        check int "slot0" 0 s0;
        check int "slot1" 1 s1;
        check string "get0" "hello" (Page.get p 0);
        check string "get1" "world!" (Page.get p 1));
    Alcotest.test_case "fills up and refuses politely" `Quick (fun () ->
        let p = Page.create ~page_size:64 in
        let rec fill n = match Page.insert p "0123456789" with Some _ -> fill (n + 1) | None -> n in
        let n = fill 0 in
        check bool "some fit" true (n > 0);
        check bool "none after full" true (Page.insert p (String.make 60 'x') = None));
    Alcotest.test_case "delete frees and insert reuses the slot" `Quick (fun () ->
        let p = Page.create ~page_size:256 in
        let _ = Page.insert p "aaa" in
        let _ = Page.insert p "bbb" in
        Page.delete p 0;
        check bool "mem" false (Page.mem p 0);
        let s = Option.get (Page.insert p "ccc") in
        check int "reused slot" 0 s;
        check string "new content" "ccc" (Page.get p 0);
        check string "untouched" "bbb" (Page.get p 1));
    Alcotest.test_case "compaction reclaims freed space" `Quick (fun () ->
        let p = Page.create ~page_size:128 in
        let big = String.make 40 'x' in
        let s0 = Option.get (Page.insert p big) in
        let _s1 = Option.get (Page.insert p big) in
        Page.delete p s0;
        (* Without compaction there is no contiguous room for another
           40-byte record; insert must compact internally. *)
        check bool "fits after compact" true (Page.insert p big <> None));
    Alcotest.test_case "replace in place and with growth" `Quick (fun () ->
        let p = Page.create ~page_size:128 in
        let s = Option.get (Page.insert p "small") in
        check bool "shrink" true (Page.replace p s "tiny");
        check string "shrunk" "tiny" (Page.get p s);
        check bool "grow" true (Page.replace p s (String.make 30 'g'));
        check string "grown" (String.make 30 'g') (Page.get p s));
    Alcotest.test_case "replace fails cleanly when page is full" `Quick (fun () ->
        let p = Page.create ~page_size:64 in
        let s = Option.get (Page.insert p "0123456789") in
        let rec fill () = if Page.insert p "0123456789" <> None then fill () in
        fill ();
        check bool "no room" false (Page.replace p s (String.make 50 'z'));
        check string "old preserved" "0123456789" (Page.get p s));
    Alcotest.test_case "of_bytes round-trips through to_bytes" `Quick (fun () ->
        let p = Page.create ~page_size:128 in
        let _ = Page.insert p "persist me" in
        let q = Page.of_bytes (Bytes.copy (Page.to_bytes p)) in
        check string "read back" "persist me" (Page.get q 0));
    Alcotest.test_case "get on free slot raises" `Quick (fun () ->
        let p = Page.create ~page_size:128 in
        let s = Option.get (Page.insert p "x") in
        Page.delete p s;
        (match Page.get p s with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument"));
    Alcotest.test_case "create validates page size" `Quick (fun () ->
        (match Page.create ~page_size:8 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument"));
  ]

let page_props =
  let open QCheck2 in
  [
    Test.make ~name:"page: iter sees exactly the live records" ~count:200
      Gen.(
        list_size (int_range 1 30)
          (pair (string_size ~gen:printable (int_range 0 20)) bool))
      (fun operations ->
        let p = Page.create ~page_size:1024 in
        let live = Hashtbl.create 16 in
        List.iter
          (fun (record, delete_after) ->
            match Page.insert p record with
            | None -> ()
            | Some slot ->
              Hashtbl.replace live slot record;
              if delete_after then begin
                Page.delete p slot;
                Hashtbl.remove live slot
              end)
          operations;
        let seen = Hashtbl.create 16 in
        Page.iter (fun slot record -> Hashtbl.replace seen slot record) p;
        Hashtbl.length seen = Hashtbl.length live
        && Hashtbl.fold
             (fun slot record acc ->
               acc && Hashtbl.find_opt seen slot = Some record)
             live true);
  ]

(* --- Disk ----------------------------------------------------------------- *)

let bytes_eq = Alcotest.testable (fun ppf b -> Fmt.string ppf (Bytes.to_string b)) Bytes.equal

let disk_tests =
  [
    Alcotest.test_case "alloc/write/read round-trip" `Quick (fun () ->
        let d = Disk.create () in
        let pid = Disk.alloc d in
        let bytes = Bytes.make (Disk.config d).Disk.page_size 'z' in
        Disk.write d pid bytes;
        check bytes_eq "content" bytes (Disk.read d pid));
    Alcotest.test_case "sequential reads cost only transfer" `Quick (fun () ->
        let d = Disk.create () in
        for _ = 1 to 10 do ignore (Disk.alloc d) done;
        Disk.reset_clock d;
        for pid = 0 to 9 do ignore (Disk.read d pid) done;
        let c = Disk.config d in
        let expected = 10.0 *. c.Disk.transfer in
        check bool "cheap" true (abs_float (Disk.elapsed d -. expected) < 1e-9);
        check int "sequential" 10 (Disk.stats d).Disk.sequential_reads);
    Alcotest.test_case "random reads pay seek + rotation" `Quick (fun () ->
        let d = Disk.create () in
        for _ = 1 to 100 do ignore (Disk.alloc d) done;
        Disk.reset_clock d;
        ignore (Disk.read d 0);
        ignore (Disk.read d 99);
        let c = Disk.config d in
        check bool "expensive" true (Disk.elapsed d > c.Disk.rotational);
        check int "random count" 1 (Disk.stats d).Disk.random_reads;
        check int "seek distance" 99 (Disk.stats d).Disk.seek_distance);
    Alcotest.test_case "read_cost is monotone in distance" `Quick (fun () ->
        let d = Disk.create () in
        for _ = 1 to 200 do ignore (Disk.alloc d) done;
        ignore (Disk.read d 100);
        check bool "farther costs more" true (Disk.read_cost d 190 >= Disk.read_cost d 110);
        check bool "near is cheap" true (Disk.read_cost d 101 < Disk.read_cost d 150));
    Alcotest.test_case "seek cost saturates at seek_max" `Quick (fun () ->
        let d = Disk.create () in
        for _ = 1 to 100_000 do ignore (Disk.alloc d) done;
        ignore (Disk.read d 0);
        let c = Disk.config d in
        let bound = c.Disk.seek_max +. c.Disk.rotational +. c.Disk.transfer in
        check bool "bounded" true (Disk.read_cost d 99_999 <= bound +. 1e-12));
    Alcotest.test_case "trace records access order" `Quick (fun () ->
        let d = Disk.create () in
        for _ = 1 to 5 do ignore (Disk.alloc d) done;
        Disk.set_trace d true;
        List.iter (fun pid -> ignore (Disk.read d pid)) [ 0; 3; 1; 2 ];
        check (Alcotest.list int) "order" [ 0; 3; 1; 2 ] (Disk.trace d));
    Alcotest.test_case "out-of-range access raises" `Quick (fun () ->
        let d = Disk.create () in
        (match Disk.read d 0 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument"));
  ]

(* --- I/O scheduler --------------------------------------------------------- *)

let complete_all sched =
  let rec go acc =
    match Io_scheduler.complete_one sched with
    | None -> List.rev acc
    | Some (pid, _) -> go (pid :: acc)
  in
  go []

let sched_tests =
  [
    Alcotest.test_case "fifo preserves submission order" `Quick (fun () ->
        let d = Disk.create () in
        for _ = 1 to 50 do ignore (Disk.alloc d) done;
        let s = Io_scheduler.create ~policy:Io_scheduler.Fifo d in
        List.iter (Io_scheduler.submit s) [ 30; 5; 42; 1 ];
        check (Alcotest.list int) "order" [ 30; 5; 42; 1 ] (complete_all s));
    Alcotest.test_case "elevator sweeps in one direction" `Quick (fun () ->
        let d = Disk.create () in
        for _ = 1 to 50 do ignore (Disk.alloc d) done;
        ignore (Disk.read d 10);
        let s = Io_scheduler.create ~policy:Io_scheduler.Elevator d in
        List.iter (Io_scheduler.submit s) [ 30; 5; 42; 12 ];
        check (Alcotest.list int) "order" [ 12; 30; 42; 5 ] (complete_all s));
    Alcotest.test_case "sstf picks the nearest page" `Quick (fun () ->
        let d = Disk.create () in
        for _ = 1 to 50 do ignore (Disk.alloc d) done;
        ignore (Disk.read d 20);
        let s = Io_scheduler.create ~policy:Io_scheduler.Sstf d in
        List.iter (Io_scheduler.submit s) [ 45; 18; 30 ];
        check (Alcotest.list int) "order" [ 18; 30; 45 ] (complete_all s));
    Alcotest.test_case "cscan wraps around" `Quick (fun () ->
        let d = Disk.create () in
        for _ = 1 to 50 do ignore (Disk.alloc d) done;
        ignore (Disk.read d 40);
        let s = Io_scheduler.create ~policy:Io_scheduler.Cscan d in
        List.iter (Io_scheduler.submit s) [ 45; 5; 42 ];
        check (Alcotest.list int) "order" [ 42; 45; 5 ] (complete_all s));
    Alcotest.test_case "duplicate submissions are absorbed" `Quick (fun () ->
        let d = Disk.create () in
        ignore (Disk.alloc d);
        let s = Io_scheduler.create d in
        Io_scheduler.submit s 0;
        Io_scheduler.submit s 0;
        check int "pending" 1 (Io_scheduler.pending_count s));
    Alcotest.test_case "cancel drops a request" `Quick (fun () ->
        let d = Disk.create () in
        for _ = 1 to 3 do ignore (Disk.alloc d) done;
        let s = Io_scheduler.create d in
        Io_scheduler.submit s 1;
        Io_scheduler.submit s 2;
        check bool "was pending" true (Io_scheduler.cancel s 1);
        check bool "gone" false (Io_scheduler.is_pending s 1);
        check (Alcotest.list int) "rest" [ 2 ] (complete_all s));
    Alcotest.test_case "policy name round-trip" `Quick (fun () ->
        List.iter
          (fun p ->
            match Io_scheduler.policy_of_string (Io_scheduler.policy_to_string p) with
            | Some q -> check bool "roundtrip" true (p = q)
            | None -> Alcotest.fail "policy name did not round-trip")
          Io_scheduler.all_policies);
  ]

let sched_props =
  let open QCheck2 in
  [
    Test.make ~name:"scheduler: every policy completes exactly the submitted set" ~count:100
      Gen.(pair (oneofl Io_scheduler.all_policies) (list_size (int_range 1 40) (int_range 0 99)))
      (fun (policy, pids) ->
        let d = Disk.create () in
        for _ = 1 to 100 do ignore (Disk.alloc d) done;
        let s = Io_scheduler.create ~policy d in
        List.iter (Io_scheduler.submit s) pids;
        let unique = List.sort_uniq Stdlib.compare pids in
        let completed = List.sort Stdlib.compare (complete_all s) in
        completed = unique);
    Test.make ~name:"scheduler: elevator total seek distance <= fifo's" ~count:100
      Gen.(list_size (int_range 2 40) (int_range 0 199))
      (fun pids ->
        let run policy =
          let d = Disk.create () in
          for _ = 1 to 200 do ignore (Disk.alloc d) done;
          ignore (Disk.read d 0);
          Disk.reset_clock d;
          let s = Io_scheduler.create ~policy d in
          List.iter (Io_scheduler.submit s) pids;
          ignore (complete_all s);
          (Disk.stats d).Disk.seek_distance
        in
        run Io_scheduler.Elevator <= run Io_scheduler.Fifo);
  ]

(* --- Batched completion ----------------------------------------------------- *)

let with_disk n f =
  let d = Disk.create () in
  let data = Bytes.make (Disk.config d).Disk.page_size ' ' in
  for i = 0 to n - 1 do
    let pid = Disk.alloc d in
    Bytes.set data 0 (Char.chr (65 + (i mod 26)));
    Disk.write d pid data
  done;
  f d

let complete_all_batched ?window ?limit sched =
  let rec go acc =
    match Io_scheduler.complete_batch ?window ?limit sched with
    | None -> List.rev acc
    | Some pages -> go (List.rev_append (List.map fst pages) acc)
  in
  go []

let batch_tests =
  [
    Alcotest.test_case "read_batch charges one access plus per-page transfers" `Quick (fun () ->
        let d = Disk.create () in
        for _ = 1 to 100 do ignore (Disk.alloc d) done;
        ignore (Disk.read d 0);
        Disk.reset_clock d;
        let run = [ 40; 42; 45 ] in
        (* Head moves once to page 40 at full cost, then streams: every
           crossed page — 41 and 43..44 included — costs one transfer. *)
        let expected = Disk.read_cost d 40 +. (5.0 *. (Disk.config d).Disk.transfer) in
        let pages = Disk.read_batch d run in
        check (Alcotest.list int) "pages in run order" run (List.map fst pages);
        check bool "cost = first access + (last-first) transfers" true
          (abs_float (Disk.elapsed d -. expected) < 1e-9);
        let s = Disk.stats d in
        check int "one vectored read" 1 s.Disk.batched_reads;
        check int "three pages delivered" 3 s.Disk.batch_pages;
        check int "counted as coalesced" 1 s.Disk.coalesce_runs;
        check int "head ends at the last page" 45 (Disk.head d));
    Alcotest.test_case "read_batch rejects an unsorted run" `Quick (fun () ->
        let d = Disk.create () in
        for _ = 1 to 10 do ignore (Disk.alloc d) done;
        (match Disk.read_batch d [ 3; 2 ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument"));
    Alcotest.test_case "duplicate submissions deliver once through batches" `Quick (fun () ->
        let d = Disk.create () in
        for _ = 1 to 20 do ignore (Disk.alloc d) done;
        let s = Io_scheduler.create d in
        List.iter (Io_scheduler.submit s) [ 4; 7; 4; 5; 7; 4 ];
        check int "pending absorbs duplicates" 3 (Io_scheduler.pending_count s);
        check (Alcotest.list int) "each page exactly once" [ 4; 5; 7 ]
          (List.sort Stdlib.compare (complete_all_batched ~window:4 s)));
    Alcotest.test_case "limit caps a batch" `Quick (fun () ->
        let d = Disk.create () in
        for _ = 1 to 20 do ignore (Disk.alloc d) done;
        let s = Io_scheduler.create d in
        List.iter (Io_scheduler.submit s) [ 1; 2; 3; 4; 5 ];
        (match Io_scheduler.complete_batch ~window:4 ~limit:2 s with
        | Some pages -> check (Alcotest.list int) "two pages only" [ 1; 2 ] (List.map fst pages)
        | None -> Alcotest.fail "expected a batch");
        check int "rest still pending" 3 (Io_scheduler.pending_count s));
    Alcotest.test_case "a gap breaks the run; the window caps its length" `Quick (fun () ->
        let d = Disk.create () in
        for _ = 1 to 50 do ignore (Disk.alloc d) done;
        let s = Io_scheduler.create d in
        List.iter (Io_scheduler.submit s) [ 10; 11; 12; 14; 15 ];
        (match Io_scheduler.complete_batch ~window:8 s with
        | Some pages ->
          check (Alcotest.list int) "run stops at the gap" [ 10; 11; 12 ] (List.map fst pages)
        | None -> Alcotest.fail "expected a batch");
        check bool "page past the gap still pending" true (Io_scheduler.is_pending s 14);
        let s2 = Io_scheduler.create d in
        List.iter (Io_scheduler.submit s2) [ 20; 21; 22; 23 ];
        (match Io_scheduler.complete_batch ~window:2 s2 with
        | Some pages ->
          check (Alcotest.list int) "window caps the run" [ 20; 21 ] (List.map fst pages)
        | None -> Alcotest.fail "expected a batch"));
    Alcotest.test_case "batched await_one drains the completion queue" `Quick (fun () ->
        with_disk 8 (fun d ->
            let b = Buffer_manager.create ~capacity:6 d in
            Disk.reset_clock d;
            List.iter (fun pid -> ignore (Buffer_manager.prefetch b pid)) [ 2; 3; 4; 5 ];
            let served = ref [] in
            let rec drain () =
              match Buffer_manager.await_one ~window:8 b with
              | None -> ()
              | Some (pid, frame) ->
                served := pid :: !served;
                Buffer_manager.unfix b frame;
                drain ()
            in
            drain ();
            check (Alcotest.list int) "all pages served once" [ 2; 3; 4; 5 ]
              (List.sort Stdlib.compare !served);
            check int "completion queue empty" 0 (Buffer_manager.completed_count b);
            check int "no pins left" 0 (Buffer_manager.pinned_count b);
            check int "one vectored read" 1 (Disk.stats d).Disk.batched_reads;
            check Alcotest.(option string) "buffer consistent" None
              (Buffer_manager.consistency_error b)));
    Alcotest.test_case "abort_async clears undelivered batch pages" `Quick (fun () ->
        with_disk 8 (fun d ->
            let b = Buffer_manager.create ~capacity:6 d in
            Disk.reset_clock d;
            List.iter (fun pid -> ignore (Buffer_manager.prefetch b pid)) [ 2; 3; 4 ];
            (match Buffer_manager.await_one ~window:8 b with
            | Some (_, frame) -> Buffer_manager.unfix b frame
            | None -> Alcotest.fail "expected a page");
            check bool "entries queued behind the first" true
              (Buffer_manager.completed_count b > 0);
            Buffer_manager.abort_async b;
            check int "queue cleared" 0 (Buffer_manager.completed_count b);
            check int "no pins left" 0 (Buffer_manager.pinned_count b);
            Buffer_manager.reset b;
            check Alcotest.(option string) "buffer consistent" None
              (Buffer_manager.consistency_error b)));
    (* The concurrent-abort path the workload layer exercises: one
       client aborts its async pipeline while another client holds its
       own pin on a page the same batch installed. Only the completion
       queue's pins may be released — the other client's pin (and its
       page) must survive. *)
    Alcotest.test_case "abort_async keeps another client's pins from the same batch" `Quick
      (fun () ->
        with_disk 8 (fun d ->
            let b = Buffer_manager.create ~capacity:8 d in
            Disk.reset_clock d;
            List.iter (fun pid -> ignore (Buffer_manager.prefetch b pid)) [ 2; 3; 4; 5 ];
            match Buffer_manager.await_one ~window:8 b with
            | None -> Alcotest.fail "expected a page"
            | Some (_, frame) ->
              check int "rest of the batch queued" 3 (Buffer_manager.completed_count b);
              (* A second client pins page 4 straight out of the batch:
                 the frame now carries the queue's pin and the client's. *)
              let f4 = Buffer_manager.fix b 4 in
              Buffer_manager.abort_async b;
              check int "queue cleared" 0 (Buffer_manager.completed_count b);
              check int "no requests pending" 0 (Io_scheduler.pending_count (Buffer_manager.scheduler b));
              check Alcotest.(option string) "buffer consistent" None
                (Buffer_manager.consistency_error b);
              (* The abort dropped only the queue's pins: our delivered
                 frame and the second client's pin survive. *)
              check int "client pins survive" 2 (Buffer_manager.pinned_count b);
              check bool "page 4 still resident" true (Buffer_manager.resident b 4);
              Buffer_manager.unfix b frame;
              Buffer_manager.unfix b f4;
              check int "clean after unfix" 0 (Buffer_manager.pinned_count b);
              (* Re-fixing the surviving page is a buffer hit, not a read. *)
              let reads = (Disk.stats d).Disk.reads in
              let f4' = Buffer_manager.fix b 4 in
              Buffer_manager.unfix b f4';
              check int "re-fix reads nothing" reads (Disk.stats d).Disk.reads));
  ]

let batch_props =
  let open QCheck2 in
  [
    Test.make ~name:"sched: elevator sweeps up from the head, then back down" ~count:200
      Gen.(pair (int_range 0 99) (list_size (int_range 1 40) (int_range 0 99)))
      (fun (head, pids) ->
        let d = Disk.create () in
        for _ = 1 to 100 do ignore (Disk.alloc d) done;
        ignore (Disk.read d head);
        let s = Io_scheduler.create ~policy:Io_scheduler.Elevator d in
        List.iter (Io_scheduler.submit s) pids;
        let unique = List.sort_uniq Stdlib.compare pids in
        let up = List.filter (fun p -> p >= head) unique in
        let down = List.filter (fun p -> p < head) unique |> List.rev in
        complete_all s = up @ down);
    Test.make ~name:"sched: cscan sweeps up then wraps to the lowest page" ~count:200
      Gen.(pair (int_range 0 99) (list_size (int_range 1 40) (int_range 0 99)))
      (fun (head, pids) ->
        let d = Disk.create () in
        for _ = 1 to 100 do ignore (Disk.alloc d) done;
        ignore (Disk.read d head);
        let s = Io_scheduler.create ~policy:Io_scheduler.Cscan d in
        List.iter (Io_scheduler.submit s) pids;
        let unique = List.sort_uniq Stdlib.compare pids in
        let up = List.filter (fun p -> p >= head) unique in
        let wrapped = List.filter (fun p -> p < head) unique in
        complete_all s = up @ wrapped);
    Test.make ~name:"sched: sstf breaks equidistant ties toward the lower page" ~count:200
      Gen.(pair (int_range 10 89) (int_range 1 10))
      (fun (head, dist) ->
        let d = Disk.create () in
        for _ = 1 to 100 do ignore (Disk.alloc d) done;
        ignore (Disk.read d head);
        let s = Io_scheduler.create ~policy:Io_scheduler.Sstf d in
        Io_scheduler.submit s (head + dist);
        Io_scheduler.submit s (head - dist);
        match Io_scheduler.complete_one s with
        | Some (pid, _) -> pid = head - dist
        | None -> false);
    Test.make ~name:"sched: window 0 batching is exactly the single-page path" ~count:200
      Gen.(pair (oneofl Io_scheduler.all_policies) (list_size (int_range 1 40) (int_range 0 99)))
      (fun (policy, pids) ->
        let make () =
          let d = Disk.create () in
          for _ = 1 to 100 do ignore (Disk.alloc d) done;
          let s = Io_scheduler.create ~policy d in
          List.iter (Io_scheduler.submit s) pids;
          (d, s)
        in
        let d1, s1 = make () in
        let d2, s2 = make () in
        let one_by_one = complete_all s1 in
        let batched = complete_all_batched ~window:0 s2 in
        one_by_one = batched
        && abs_float (Disk.elapsed d1 -. Disk.elapsed d2) < 1e-12
        && Disk.stats d1 = Disk.stats d2
        && (Disk.stats d2).Disk.batched_reads = 0);
    Test.make ~name:"sched: batches are contiguous runs of at most window pages" ~count:200
      Gen.(
        triple (oneofl Io_scheduler.all_policies) (int_range 1 16)
          (list_size (int_range 1 40) (int_range 0 99)))
      (fun (policy, window, pids) ->
        let d = Disk.create () in
        for _ = 1 to 100 do ignore (Disk.alloc d) done;
        let s = Io_scheduler.create ~policy d in
        List.iter (Io_scheduler.submit s) pids;
        let runs_ok = ref true in
        let delivered = ref [] in
        (* A depth-1 queue is served as a direct read, outside the batch
           counters — count those deliveries separately. *)
        let direct = ref 0 in
        let rec go () =
          let singleton = Io_scheduler.pending_count s = 1 in
          match Io_scheduler.complete_batch ~window s with
          | None -> ()
          | Some pages ->
            let run = List.map fst pages in
            if singleton then begin
              if List.length run <> 1 then runs_ok := false;
              incr direct
            end;
            let rec contiguous = function
              | a :: (b :: _ as rest) -> b = a + 1 && contiguous rest
              | _ -> true
            in
            if not (contiguous run && List.length run <= window) then runs_ok := false;
            delivered := !delivered @ run;
            go ()
        in
        go ();
        !runs_ok
        && List.sort Stdlib.compare !delivered = List.sort_uniq Stdlib.compare pids
        && (Disk.stats d).Disk.batch_pages = List.length !delivered - !direct);
  ]

(* --- Buffer manager -------------------------------------------------------- *)

let buffer_tests =
  [
    Alcotest.test_case "fix misses then hits" `Quick (fun () ->
        with_disk 4 (fun d ->
            let b = Buffer_manager.create ~capacity:4 d in
            let f1 = Buffer_manager.fix b 2 in
            Buffer_manager.unfix b f1;
            let f2 = Buffer_manager.fix b 2 in
            Buffer_manager.unfix b f2;
            let s = Buffer_manager.stats b in
            check int "misses" 1 s.Buffer_manager.misses;
            check int "hits" 1 s.Buffer_manager.hits));
    Alcotest.test_case "eviction happens at capacity, LRU first" `Quick (fun () ->
        with_disk 3 (fun d ->
            let b = Buffer_manager.create ~capacity:2 d in
            List.iter
              (fun pid -> Buffer_manager.unfix b (Buffer_manager.fix b pid))
              [ 0; 1; 2 ];
            (* 0 was least recently used and must be gone. *)
            check bool "0 evicted" false (Buffer_manager.resident b 0);
            check bool "2 resident" true (Buffer_manager.resident b 2)));
    Alcotest.test_case "pinned frames are not evicted" `Quick (fun () ->
        with_disk 3 (fun d ->
            let b = Buffer_manager.create ~capacity:2 d in
            let f0 = Buffer_manager.fix b 0 in
            Buffer_manager.unfix b (Buffer_manager.fix b 1);
            Buffer_manager.unfix b (Buffer_manager.fix b 2);
            check bool "0 still here" true (Buffer_manager.resident b 0);
            Buffer_manager.unfix b f0));
    Alcotest.test_case "Buffer_full when everything is pinned" `Quick (fun () ->
        with_disk 3 (fun d ->
            let b = Buffer_manager.create ~capacity:2 d in
            let f0 = Buffer_manager.fix b 0 in
            let f1 = Buffer_manager.fix b 1 in
            (match Buffer_manager.fix b 2 with
            | exception Buffer_manager.Buffer_full -> ()
            | _ -> Alcotest.fail "expected Buffer_full");
            Buffer_manager.unfix b f0;
            Buffer_manager.unfix b f1));
    Alcotest.test_case "prefetch + await_one installs pages" `Quick (fun () ->
        with_disk 6 (fun d ->
            let b = Buffer_manager.create ~capacity:4 d in
            check bool "scheduled" true (Buffer_manager.prefetch b 3 = Buffer_manager.Scheduled);
            check bool "scheduled" true (Buffer_manager.prefetch b 5 = Buffer_manager.Scheduled);
            let served = ref [] in
            let rec drain () =
              match Buffer_manager.await_one b with
              | None -> ()
              | Some (pid, frame) ->
                served := pid :: !served;
                Buffer_manager.unfix b frame;
                drain ()
            in
            drain ();
            check (Alcotest.list int) "both served" [ 3; 5 ]
              (List.sort Stdlib.compare !served);
            check int "async reads" 2 (Buffer_manager.stats b).Buffer_manager.async_reads));
    Alcotest.test_case "prefetch of a resident page is instant" `Quick (fun () ->
        with_disk 2 (fun d ->
            let b = Buffer_manager.create ~capacity:2 d in
            Buffer_manager.unfix b (Buffer_manager.fix b 1);
            check bool "instant" true (Buffer_manager.prefetch b 1 = Buffer_manager.Resident);
            check bool "nothing pending" true (Buffer_manager.await_one b = None)));
    Alcotest.test_case "reset complains about pinned frames" `Quick (fun () ->
        with_disk 2 (fun d ->
            let b = Buffer_manager.create ~capacity:2 d in
            let f = Buffer_manager.fix b 0 in
            (match Buffer_manager.reset b with
            | exception Invalid_argument _ -> ()
            | _ -> Alcotest.fail "expected Invalid_argument");
            Buffer_manager.unfix b f;
            Buffer_manager.reset b;
            check int "cold" 0 (Buffer_manager.stats b).Buffer_manager.lookups));
    Alcotest.test_case "unfix of unpinned frame raises" `Quick (fun () ->
        with_disk 1 (fun d ->
            let b = Buffer_manager.create d in
            let f = Buffer_manager.fix b 0 in
            Buffer_manager.unfix b f;
            (match Buffer_manager.unfix b f with
            | exception Invalid_argument _ -> ()
            | _ -> Alcotest.fail "expected Invalid_argument")));
  ]

let buffer_props =
  let open QCheck2 in
  [
    Test.make ~name:"buffer: resident set never exceeds capacity" ~count:100
      Gen.(list_size (int_range 1 60) (int_range 0 19))
      (fun accesses ->
        with_disk 20 (fun d ->
            let b = Buffer_manager.create ~capacity:5 d in
            List.iter (fun pid -> Buffer_manager.unfix b (Buffer_manager.fix b pid)) accesses;
            let resident = ref 0 in
            for pid = 0 to 19 do
              if Buffer_manager.resident b pid then incr resident
            done;
            !resident <= 5));
    Test.make ~name:"buffer: fix always returns the page's bytes" ~count:100
      Gen.(list_size (int_range 1 40) (int_range 0 9))
      (fun accesses ->
        with_disk 10 (fun d ->
            let b = Buffer_manager.create ~capacity:3 d in
            List.for_all
              (fun pid ->
                let f = Buffer_manager.fix b pid in
                let first =
                  Bytes.get (Xnav_storage.Page.to_bytes (Buffer_manager.page f)) 0
                in
                Buffer_manager.unfix b f;
                first = Char.chr (65 + (pid mod 26)))
              accesses));
  ]

let replacement_tests =
  [
    Alcotest.test_case "replacement name round-trip" `Quick (fun () ->
        List.iter
          (fun r ->
            match
              Buffer_manager.replacement_of_string (Buffer_manager.replacement_to_string r)
            with
            | Some back -> check bool "roundtrip" true (r = back)
            | None -> Alcotest.fail "replacement name did not round-trip")
          Buffer_manager.all_replacements);
    Alcotest.test_case "mru evicts the most recent unpinned frame" `Quick (fun () ->
        with_disk 4 (fun d ->
            let b = Buffer_manager.create ~capacity:2 ~replacement:Buffer_manager.Mru d in
            Buffer_manager.unfix b (Buffer_manager.fix b 0);
            Buffer_manager.unfix b (Buffer_manager.fix b 1);
            Buffer_manager.unfix b (Buffer_manager.fix b 2);
            (* MRU victim when 2 arrived was 1; 0 survives. *)
            check bool "0 kept" true (Buffer_manager.resident b 0);
            check bool "1 evicted" false (Buffer_manager.resident b 1)));
    Alcotest.test_case "fifo evicts the first-loaded frame" `Quick (fun () ->
        with_disk 4 (fun d ->
            let b = Buffer_manager.create ~capacity:2 ~replacement:Buffer_manager.Fifo d in
            Buffer_manager.unfix b (Buffer_manager.fix b 0);
            Buffer_manager.unfix b (Buffer_manager.fix b 1);
            (* Re-touch 0: FIFO ignores recency, still evicts 0 first. *)
            Buffer_manager.unfix b (Buffer_manager.fix b 0);
            Buffer_manager.unfix b (Buffer_manager.fix b 2);
            check bool "0 evicted" false (Buffer_manager.resident b 0);
            check bool "1 kept" true (Buffer_manager.resident b 1)));
    Alcotest.test_case "clock gives referenced frames a second chance" `Quick (fun () ->
        with_disk 5 (fun d ->
            let b = Buffer_manager.create ~capacity:2 ~replacement:Buffer_manager.Clock d in
            Buffer_manager.unfix b (Buffer_manager.fix b 0);
            Buffer_manager.unfix b (Buffer_manager.fix b 1);
            Buffer_manager.unfix b (Buffer_manager.fix b 2);
            (* Ring order 0,1: both referenced -> both cleared, 0 evicted. *)
            check bool "0 evicted" false (Buffer_manager.resident b 0);
            check bool "2 resident" true (Buffer_manager.resident b 2)));
    Alcotest.test_case "all replacements behave correctly under random access" `Quick
      (fun () ->
        with_disk 12 (fun d ->
            List.iter
              (fun replacement ->
                let b = Buffer_manager.create ~capacity:4 ~replacement d in
                for i = 0 to 200 do
                  let pid = i * 7 mod 12 in
                  let f = Buffer_manager.fix b pid in
                  check bool "content" true
                    (Bytes.get (Xnav_storage.Page.to_bytes (Buffer_manager.page f)) 0
                    = Char.chr (65 + (pid mod 26)));
                  Buffer_manager.unfix b f
                done)
              Buffer_manager.all_replacements));
  ]

let scan_resist_tests =
  let touch b pid = Buffer_manager.unfix b (Buffer_manager.fix b pid) in
  [
    Alcotest.test_case "a sequential sweep does not flush the hot set" `Quick (fun () ->
        with_disk 40 (fun d ->
            (* Hot set 0-2, each promoted to the main queue by a
               re-reference, then a 20-page one-shot sweep. With 2Q on
               the sweep recycles its own probationary pages once A1
               exceeds Kin; plain LRU flushes the hot set. The knob goes
               through [set_scan_resistant] — the same entry point the
               executor's Context plumbing uses. *)
            let run scan_resistant =
              let b = Buffer_manager.create ~capacity:8 d in
              Buffer_manager.set_scan_resistant b scan_resistant;
              List.iter
                (fun pid ->
                  touch b pid;
                  touch b pid)
                [ 0; 1; 2 ];
              for pid = 10 to 29 do
                touch b pid
              done;
              List.for_all (fun pid -> Buffer_manager.resident b pid) [ 0; 1; 2 ]
            in
            check bool "2q keeps the hot set" true (run true);
            check bool "plain lru flushes it" false (run false)));
    Alcotest.test_case "protected hits count only with the knob on" `Quick (fun () ->
        with_disk 4 (fun d ->
            (* Three fixes of one page: install (probationary), the
               promoting re-reference, then one hit on the now-protected
               frame — exactly one protected hit, and none with 2Q off. *)
            let hits scan_resistant =
              let b = Buffer_manager.create ~capacity:4 ~scan_resistant d in
              touch b 0;
              touch b 0;
              touch b 0;
              (Buffer_manager.stats b).Buffer_manager.scan_resist_hits
            in
            check int "knob on" 1 (hits true);
            check int "knob off" 0 (hits false)));
    Alcotest.test_case "knob off reproduces the exact-LRU victim trace" `Quick (fun () ->
        with_disk 12 (fun d ->
            let capacity = 3 in
            let accesses = [ 0; 1; 2; 0; 3; 4; 1; 5; 0; 6; 2; 7; 3; 8; 0; 9; 1; 10; 11; 4 ] in
            (* Reference model: exact LRU, most recent first. *)
            let expected =
              let order = ref [] and victims = ref [] in
              List.iter
                (fun pid ->
                  if List.mem pid !order then order := pid :: List.filter (( <> ) pid) !order
                  else begin
                    if List.length !order >= capacity then begin
                      let v = List.nth !order (capacity - 1) in
                      victims := v :: !victims;
                      order := List.filter (( <> ) v) !order
                    end;
                    order := pid :: !order
                  end)
                accesses;
              List.rev !victims
            in
            let b = Buffer_manager.create ~capacity d in
            let trace = ref [] in
            Buffer_manager.set_evict_observer b (Some (fun pid -> trace := pid :: !trace));
            List.iter (fun pid -> touch b pid) accesses;
            check (Alcotest.list int) "victim trace" expected (List.rev !trace)));
    Alcotest.test_case "toggling the knob mid-run is safe" `Quick (fun () ->
        with_disk 20 (fun d ->
            (* Probationary pages survive the switch-off (they just become
               ordinary LRU citizens) and the pool keeps serving content
               correctly across both transitions. *)
            let b = Buffer_manager.create ~capacity:4 d in
            Buffer_manager.set_scan_resistant b true;
            for pid = 0 to 9 do
              touch b pid
            done;
            Buffer_manager.set_scan_resistant b false;
            for pid = 10 to 19 do
              touch b pid
            done;
            Buffer_manager.set_scan_resistant b true;
            for i = 0 to 19 do
              let pid = i * 3 mod 20 in
              let f = Buffer_manager.fix b pid in
              check bool "content" true
                (Bytes.get (Xnav_storage.Page.to_bytes (Buffer_manager.page f)) 0
                = Char.chr (65 + (pid mod 26)));
              Buffer_manager.unfix b f
            done;
            check int "no pins leaked" 0 (Buffer_manager.pinned_count b)));
  ]

let suite =
  [
    ("storage.page", page_tests);
    Gen.qsuite "storage.page.props" page_props;
    ("storage.disk", disk_tests);
    ("storage.sched", sched_tests);
    Gen.qsuite "storage.sched.props" sched_props;
    ("storage.batch", batch_tests);
    Gen.qsuite "storage.batch.props" batch_props;
    ("storage.buffer", buffer_tests);
    ("storage.replacement", replacement_tests);
    ("storage.2q", scan_resist_tests);
    Gen.qsuite "storage.buffer.props" buffer_props;
  ]
