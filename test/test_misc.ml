(* Remaining edge cases: scheduler corner states, ordpath codec offsets,
   query printing, path helpers, multi-document disks. *)

module Tree = Xnav_xml.Tree
module Ordpath = Xnav_xml.Ordpath
module Axis = Xnav_xml.Axis
module Disk = Xnav_storage.Disk
module Io_scheduler = Xnav_storage.Io_scheduler
module Buffer_manager = Xnav_storage.Buffer_manager
module Import = Xnav_store.Import
module Store = Xnav_store.Store
module Path = Xnav_xpath.Path
module Xpath_parser = Xnav_xpath.Xpath_parser
module Rewrite = Xnav_xpath.Rewrite
module Plan = Xnav_core.Plan
module Exec = Xnav_core.Exec
module Eval_ref = Xnav_xpath.Eval_ref

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let tests =
  [
    Alcotest.test_case "scheduler: complete_one on empty queue" `Quick (fun () ->
        let d = Disk.create () in
        let s = Io_scheduler.create d in
        check bool "none" true (Io_scheduler.complete_one s = None);
        check int "pending" 0 (Io_scheduler.pending_count s));
    Alcotest.test_case "scheduler: head beyond every pending page" `Quick (fun () ->
        let d = Disk.create () in
        for _ = 1 to 50 do
          ignore (Disk.alloc d)
        done;
        ignore (Disk.read d 49);
        List.iter
          (fun policy ->
            let s = Io_scheduler.create ~policy d in
            List.iter (Io_scheduler.submit s) [ 3; 7; 1 ];
            let rec drain acc =
              match Io_scheduler.complete_one s with
              | None -> acc
              | Some (pid, _) -> drain (pid :: acc)
            in
            check int (Io_scheduler.policy_to_string policy) 3 (List.length (drain [])))
          Io_scheduler.all_policies);
    Alcotest.test_case "ordpath: decode at a nonzero offset" `Quick (fun () ->
        let buf = Buffer.create 16 in
        Buffer.add_string buf "junk";
        let label = Ordpath.child (Ordpath.child Ordpath.root 2) 7 in
        Ordpath.encode buf label;
        let decoded, next = Ordpath.decode (Buffer.contents buf) 4 in
        check bool "equal" true (Ordpath.equal label decoded);
        check int "consumed" (Buffer.length buf) next);
    Alcotest.test_case "path helpers" `Quick (fun () ->
        check bool "downward" true (Path.is_downward (Xpath_parser.parse "//a/b"));
        check bool "not downward" false (Path.is_downward (Xpath_parser.parse "//a/.."));
        check bool "// prefix" true
          (Path.starts_with_descendant_any (Xpath_parser.parse "//a"));
        check bool "no // prefix" false
          (Path.starts_with_descendant_any (Xpath_parser.parse "/a//b"));
        let p = Xpath_parser.parse "/a/b" in
        check bool "from_root_element changes child to self" true
          (match Path.from_root_element p with
          | { Path.axis = Axis.Self; _ } :: _ -> true
          | _ -> false));
    Alcotest.test_case "path to_string round-trips through the parser" `Quick (fun () ->
        List.iter
          (fun str ->
            let p = Xpath_parser.parse str in
            let p2 = Xpath_parser.parse (Path.to_string p) in
            check bool str true (Path.equal p p2))
          [ "//a/b"; "/descendant::x/child::y"; "//*"; "/a/following-sibling::b/.." ]);
    Alcotest.test_case "rewrite composes with reordered execution" `Quick (fun () ->
        let doc = Gen.sample_doc () in
        let store, _ = Gen.import_store ~payload:200 doc in
        let raw = Xpath_parser.parse "/A//B//C" in
        let rewritten = Rewrite.normalize raw in
        List.iter
          (fun plan ->
            check int (Plan.name plan) (Eval_ref.count doc raw)
              (Exec.cold_run ~ordered:false store rewritten plan).Exec.count)
          [ Plan.simple; Plan.xschedule (); Plan.xscan () ]);
    Alcotest.test_case "queries work on the second document of a shared disk" `Quick
      (fun () ->
        let disk = Gen.small_disk ~page_size:512 () in
        let _ = Import.run disk (Gen.sample_doc ()) in
        let i2 = Import.run disk (Gen.wide_tree ~children:50 ()) in
        let buffer = Buffer_manager.create ~capacity:32 disk in
        let s2 = Store.attach buffer i2 in
        let doc2 = Gen.wide_tree ~children:50 () in
        let path = Xpath_parser.parse "//x" in
        List.iter
          (fun plan ->
            check int (Plan.name plan) (Eval_ref.count doc2 path)
              (Exec.cold_run ~ordered:false s2 path plan).Exec.count)
          [ Plan.simple; Plan.xschedule (); Plan.xscan () ]);
    Alcotest.test_case "xscan of the second document never touches the first" `Quick
      (fun () ->
        let disk = Gen.small_disk ~page_size:512 () in
        let i1 = Import.run disk (Gen.sample_doc ()) in
        let i2 = Import.run disk (Gen.wide_tree ~children:50 ()) in
        let buffer = Buffer_manager.create ~capacity:32 disk in
        let s2 = Store.attach buffer i2 in
        Disk.set_trace disk true;
        ignore (Exec.cold_run ~ordered:false s2 (Xpath_parser.parse "//x") (Plan.xscan ()));
        Disk.set_trace disk false;
        check bool "stays in its range" true
          (List.for_all (fun pid -> pid >= i2.Import.first_page) (Disk.trace disk));
        ignore i1);
    Alcotest.test_case "committed bench baseline carries the current schema tag" `Quick
      (fun () ->
        (* The schema string lives in one place (Bench_schema.version);
           the committed baseline must have been regenerated against it,
           or `bench --compare` gates against stale numbers. *)
        let ic = open_in "../BENCH_results.json" in
        let contents = really_input_string ic (in_channel_length ic) in
        close_in ic;
        let needle = Printf.sprintf "%S" Xnav_core.Bench_schema.version in
        let contains s sub =
          let n = String.length s and m = String.length sub in
          let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
          scan 0
        in
        check bool
          (Printf.sprintf "baseline mentions %s" needle)
          true (contains contents needle));
  ]

let suite = [ ("misc", tests) ]
