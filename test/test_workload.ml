(* The concurrent workload engine: admission control, round-robin with
   cost credits, cross-query coalescing, per-query timeout/abort, and
   fairness accounting — all checked against serial runs of the same
   queries. *)

module Disk = Xnav_storage.Disk
module Io_scheduler = Xnav_storage.Io_scheduler
module Buffer_manager = Xnav_storage.Buffer_manager
module Import = Xnav_store.Import
module Store = Xnav_store.Store
module Node_id = Xnav_store.Node_id
module Update = Xnav_store.Update
module Tree = Xnav_xml.Tree
module Tag = Xnav_xml.Tag
module Xpath_parser = Xnav_xpath.Xpath_parser
module Plan = Xnav_core.Plan
module Exec = Xnav_core.Exec
module Context = Xnav_core.Context
module Result_cache = Xnav_core.Result_cache
module Workload = Xnav_workload.Workload

let check = Alcotest.check

let id_list = Alcotest.testable (Fmt.Dump.list Node_id.pp) (List.equal Node_id.equal)

let doc () = Gen.wide_tree ~children:40 ()

let build ~capacity tree =
  let config = { Disk.default_config with Disk.page_size = 256 } in
  let disk = Disk.create ~config () in
  let import = Import.run ~payload:96 disk tree in
  let buffer = Buffer_manager.create ~capacity ~policy:Io_scheduler.Elevator disk in
  Store.attach buffer import

let validating = { Context.default_config with Context.validate = true }

let spec ?timeout ?(ops = []) label path plan =
  { Workload.label; path = Xpath_parser.parse path; plan; timeout; ops }

let mix () =
  [
    spec "q-root" "/child::*" Plan.simple;
    spec "q-x" "/child::*/child::x" (Plan.xschedule ());
    spec "q-y" "/descendant::y" (Plan.xscan ());
    spec "q-a" "/child::a" (Plan.xschedule ());
  ]

let ids_of nodes = List.map (fun (i : Store.info) -> i.Store.id) nodes |> List.sort Node_id.compare

let serial_ids store config s =
  ids_of (Exec.cold_run ~config store s.Workload.path s.Workload.plan).Exec.nodes

let job_by_label r label =
  List.find (fun (j : Workload.job) -> j.Workload.job_label = label) r.Workload.jobs

(* Every query run concurrently must produce exactly its serial answer,
   and the engine must end with the invariant layer clean. *)
let concurrent_equals_serial () =
  let store = build ~capacity:16 (doc ()) in
  let specs = mix () in
  let expected = List.map (fun s -> (s.Workload.label, serial_ids store validating s)) specs in
  let r = Workload.run ~config:validating ~cold:true store specs in
  check Alcotest.int "one job per query" (List.length specs) (List.length r.Workload.jobs);
  check Alcotest.(list string) "no invariant violations" [] r.Workload.violations;
  List.iter
    (fun (label, want) ->
      let j = job_by_label r label in
      check Alcotest.string "completed"
        (Workload.status_to_string Workload.Completed)
        (Workload.status_to_string j.Workload.status);
      check id_list label want (ids_of j.Workload.nodes))
    expected;
  check Alcotest.int "no pins leaked" 0 (Buffer_manager.pinned_count (Store.buffer store))

(* Admission generalises the capacity-1 rule: a pool too small for two
   queries' worst-case pin demand serialises them (but always admits a
   lone query), while a large pool runs the whole mix at once. *)
let admission_scales_with_capacity () =
  let tree = doc () in
  let small = build ~capacity:2 tree in
  let r_small = Workload.run ~config:validating ~cold:true small (mix ()) in
  check Alcotest.int "capacity 2 serialises" 1 r_small.Workload.max_concurrent;
  check Alcotest.(list string) "small pool still clean" [] r_small.Workload.violations;
  let roomy = build ~capacity:64 tree in
  let r_roomy = Workload.run ~config:validating ~cold:true roomy (mix ()) in
  check Alcotest.int "capacity 64 admits the whole mix" 4 r_roomy.Workload.max_concurrent;
  (* Serialised admission makes later queries wait for the pool: the
     wait is visible as pin-wait time on the simulated clock. *)
  let total_wait = List.fold_left (fun a j -> a +. j.Workload.pin_wait) 0.0 r_small.Workload.jobs in
  check Alcotest.bool "serialised queries waited for admission" true (total_wait > 0.0)

(* A timeout aborts the query at its deadline: the job reports Timed_out
   with no results, unwinds through abort_async without poisoning the
   pool, and the other queries still answer correctly. *)
let timeout_unwinds_cleanly () =
  let store = build ~capacity:16 (doc ()) in
  let doomed = spec ~timeout:0.0 "q-doomed" "/descendant::y" (Plan.xschedule ()) in
  let survivor = spec "q-x" "/child::*/child::x" (Plan.xschedule ()) in
  let expected = serial_ids store validating survivor in
  let r = Workload.run ~config:validating ~cold:true store [ doomed; survivor ] in
  let j_doomed = job_by_label r "q-doomed" in
  check Alcotest.string "doomed job timed out"
    (Workload.status_to_string Workload.Timed_out)
    (Workload.status_to_string j_doomed.Workload.status);
  check Alcotest.int "timed-out job has no results" 0 j_doomed.Workload.count;
  let j_survivor = job_by_label r "q-x" in
  check id_list "survivor answers correctly" expected (ids_of j_survivor.Workload.nodes);
  check Alcotest.(list string) "pool unwound cleanly" [] r.Workload.violations;
  check Alcotest.int "no pins leaked" 0 (Buffer_manager.pinned_count (Store.buffer store))

(* Fairness accounting: each turn credits the chosen query and debits
   every other runnable one, so under real concurrency every completed
   query was served at least once and somebody was made to wait. *)
let fairness_counters_advance () =
  let store = build ~capacity:16 (doc ()) in
  let r = Workload.run ~config:validating ~cold:true store (mix ()) in
  check Alcotest.bool "ran concurrently" true (r.Workload.max_concurrent > 1);
  List.iter
    (fun (j : Workload.job) ->
      check Alcotest.bool
        (Printf.sprintf "%s was served" j.Workload.job_label)
        true (j.Workload.served_ticks > 0))
    r.Workload.jobs;
  let starved = List.fold_left (fun a j -> a + j.Workload.starved_ticks) 0 r.Workload.jobs in
  check Alcotest.bool "contention was recorded" true (starved > 0);
  check Alcotest.bool "turns were taken" true (r.Workload.turns > 0)

(* Closed-loop clients: each client submits its next job as soon as the
   previous finishes, so every queued job runs exactly once. *)
let closed_loop_clients_drain () =
  let store = build ~capacity:16 (doc ()) in
  let a = spec "a" "/child::*/child::x" (Plan.xschedule ()) in
  let b = spec "b" "/descendant::y" (Plan.xscan ()) in
  let want_a = serial_ids store validating a in
  let want_b = serial_ids store validating b in
  let r = Workload.run_clients ~config:validating ~cold:true store [| [ a; b ]; [ b; a ] |] in
  check Alcotest.int "all four jobs ran" 4 (List.length r.Workload.jobs);
  List.iter
    (fun (j : Workload.job) ->
      let want = if j.Workload.job_label = "a" then want_a else want_b in
      check id_list j.Workload.job_label want (ids_of j.Workload.nodes))
    r.Workload.jobs;
  check Alcotest.(list string) "clean end" [] r.Workload.violations

(* --- writers: online updates under concurrent reads ----------------------- *)

let replay twin ops =
  List.iter
    (fun op ->
      match op with
      | Workload.Insert_child { parent; tag } -> ignore (Update.insert_element twin ~parent tag)
      | Workload.Delete_subtree victim -> ignore (Update.delete_subtree twin victim))
    ops

(* A writer client committing inserts and deletes against the shared
   store, interleaved with readers: every op commits exactly once, the
   commit log replayed serially on an identically-imported twin
   reproduces the final document, and the run ends clean. *)
let writer_mix_commits_and_replays () =
  let store, import = Gen.import_store ~payload:96 ~page_size:256 ~capacity:16 (doc ()) in
  let twin, _ = Gen.import_store ~payload:96 ~page_size:256 ~capacity:16 (doc ()) in
  let ids = import.Import.node_ids in
  let ops =
    [
      Workload.Insert_child { parent = ids.(0); tag = Tag.of_string "w" };
      Workload.Delete_subtree ids.(4);
      Workload.Insert_child { parent = ids.(0); tag = Tag.of_string "w" };
    ]
  in
  let writer = spec ~ops "w" "/child::*" Plan.simple in
  let readers =
    [
      spec "q-x" "/child::*/child::x" (Plan.xschedule ());
      spec "q-y" "/descendant::y" (Plan.xscan ());
    ]
  in
  let r = Workload.run_clients ~config:validating ~cold:true store [| readers; [ writer ] |] in
  check Alcotest.(list string) "no invariant violations" [] r.Workload.violations;
  check Alcotest.int "every op committed" (List.length ops) r.Workload.writer_commits;
  check Alcotest.int "the commit log records every commit" r.Workload.writer_commits
    (List.length r.Workload.commit_log);
  let wj = job_by_label r "w" in
  check Alcotest.string "writer completed"
    (Workload.status_to_string Workload.Completed)
    (Workload.status_to_string wj.Workload.status);
  check Alcotest.int "a writer reports no nodes" 0 wj.Workload.count;
  check Alcotest.int "commits are attributed to the writer job" (List.length ops)
    wj.Workload.writer_commits;
  check Alcotest.bool "a writer is never a cache hit" false wj.Workload.cache_hit;
  replay twin r.Workload.commit_log;
  check Alcotest.bool "replaying the commit log reproduces the document" true
    (Tree.equal (Gen.reconstruct store) (Gen.reconstruct twin));
  check Alcotest.int "no pins leaked" 0 (Buffer_manager.pinned_count (Store.buffer store))

(* A commit into a cluster a running reader has already observed must
   force the reader to restart under a fresh snapshot: the reader
   reports at least one retry and its final answer is the post-commit
   serial answer (it sees the inserted node). *)
let snapshot_conflict_restarts_reader () =
  let store, import = Gen.import_store ~payload:96 ~page_size:256 ~capacity:16 (doc ()) in
  (* Insert under the document's first child: the splice writes the
     first cluster, which the descendant scan observes on its very first
     turns — appending under the root would only write the last
     sibling's cluster, at the far end the reader hasn't reached. *)
  let first_child = import.Import.node_ids.(1) in
  let writer =
    spec ~ops:[ Workload.Insert_child { parent = first_child; tag = Tag.of_string "y" } ] "w"
      "/child::*" Plan.simple
  in
  (* Simple navigation yields on every random I/O, so the reader stays in
     flight across many turns while the writer commits. *)
  let reader = spec "q-y" "/descendant::y" Plan.simple in
  let r = Workload.run_clients ~config:validating ~cold:true store [| [ reader ]; [ writer ] |] in
  check Alcotest.(list string) "no invariant violations" [] r.Workload.violations;
  check Alcotest.int "writer committed" 1 r.Workload.writer_commits;
  let rj = job_by_label r "q-y" in
  check Alcotest.bool "the commit into an observed cluster forced a restart" true
    (rj.Workload.snapshot_retries >= 1);
  check Alcotest.int "the restarted reader finished after the commit" 1
    rj.Workload.finish_commit;
  let expected = serial_ids store validating reader in
  check id_list "reader answer equals the post-commit serial answer" expected
    (ids_of rj.Workload.nodes)

(* Cluster-granular invalidation, end to end through the front door: a
   commit whose write set is disjoint from a cached statement's
   footprint leaves the entry serving hits; a commit into the footprint
   drops exactly that entry and forces one recompute. *)
let untouched_paths_keep_hitting_across_commits () =
  (* The chain depth is modest: ordpaths grow with depth and each record
     must still fit the per-cluster payload budget. *)
  let rec chain k = if k = 0 then Tree.elt "c" [] else Tree.elt "b" [ chain (k - 1) ] in
  let tree = Tree.elt "r" [ Tree.elt "a" [ Tree.elt "x" [] ]; chain 8 ] in
  let store, _ = Gen.import_store ~payload:150 ~capacity:16 tree in
  let caching = { validating with Context.result_cache = true } in
  Result_cache.clear ();
  Result_cache.reset_stats ();
  let q = spec "q" "/child::a/child::x" Plan.simple in
  let run_q () = Workload.run ~config:caching ~cold:true store [ q ] in
  let node_at path =
    (List.hd
       (Exec.cold_run ~config:validating store (Xpath_parser.parse path) Plan.simple).Exec.nodes)
      .Store.id
  in
  let writer label parent =
    spec ~ops:[ Workload.Insert_child { parent; tag = Tag.of_string "z" } ] label "/child::a"
      Plan.simple
  in
  let r1 = run_q () in
  let j1 = job_by_label r1 "q" in
  check Alcotest.bool "first run misses" false j1.Workload.cache_hit;
  check Alcotest.int "first run installs its answer" 1 r1.Workload.cache_misses;
  (* Commit into the deep tail of the b-chain — clusters the query never
     touched. *)
  let r2 = Workload.run ~config:caching ~cold:true store [ writer "w-far" (node_at "/descendant::c") ] in
  check Alcotest.int "far writer committed" 1 r2.Workload.writer_commits;
  check Alcotest.int "a disjoint write set stales nothing" 0 r2.Workload.cluster_stales;
  let r3 = run_q () in
  let j3 = job_by_label r3 "q" in
  check Alcotest.bool "untouched-path repeat still hits the cache" true j3.Workload.cache_hit;
  check id_list "the hit serves the original answer" (ids_of j1.Workload.nodes)
    (ids_of j3.Workload.nodes);
  (* Commit into the query's own footprint: insert under [a]. *)
  let r4 = Workload.run ~config:caching ~cold:true store [ writer "w-near" (node_at "/child::a") ] in
  check Alcotest.int "near writer committed" 1 r4.Workload.writer_commits;
  check Alcotest.int "an intersecting write set stales the entry" 1 r4.Workload.cluster_stales;
  let r5 = run_q () in
  let j5 = job_by_label r5 "q" in
  check Alcotest.bool "the staled entry forces a recompute" false j5.Workload.cache_hit;
  check id_list "the recomputed answer is unchanged" (ids_of j1.Workload.nodes)
    (ids_of j5.Workload.nodes);
  Result_cache.clear ();
  Result_cache.reset_stats ()

(* --- sharded tenancy ------------------------------------------------------- *)

module Shard = Xnav_workload.Shard

let tenant_docs () =
  [ ("alpha", doc ()); ("beta", Gen.deep_tree ~depth:4 ()); ("gamma", Gen.sample_doc ()) ]

let topology ?(shards = 2) () =
  Shard.create ~capacity:16 ~page_size:256 ~payload:96 ~shards (tenant_docs ())

(* Placement is a pure function of the tenant name: stable across calls,
   in range, and what the topology actually used. *)
let stable_placement_is_deterministic () =
  let t = topology () in
  List.iter
    (fun (name, _) ->
      let s = Shard.stable_shard ~shards:2 name in
      check Alcotest.bool (name ^ " in range") true (s >= 0 && s < 2);
      check Alcotest.int (name ^ " is stable") s (Shard.stable_shard ~shards:2 name);
      check Alcotest.int (name ^ " topology agrees") s (Shard.shard_of t name))
    (tenant_docs ());
  check Alcotest.int "one shard maps everyone to it" 0 (Shard.stable_shard ~shards:1 "anything");
  (match Shard.stable_shard ~shards:0 "x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument")

(* The sharded engine is read-only and knows its tenants: writer specs
   and unknown tenants are rejected up front, before any state moves. *)
let shard_rejects_writers_and_strangers () =
  let t = topology () in
  let root =
    (List.hd
       (Exec.cold_run ~config:validating (Shard.store t "alpha")
          (Xpath_parser.parse "/child::*") Plan.simple)
       .Exec.nodes)
      .Store.id
  in
  let writer =
    spec ~ops:[ Workload.Insert_child { parent = root; tag = Tag.of_string "w" } ] "w"
      "/child::*" Plan.simple
  in
  (match Shard.run_clients ~cold:true t [| [ { Shard.tenant = "alpha"; spec = writer } ] |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for a writer spec");
  let q = spec "q" "/child::*" Plan.simple in
  (match Shard.run_clients ~cold:true t [| [ { Shard.tenant = "nobody"; spec = q } ] |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for an unknown tenant");
  match Shard.run_clients ~cold:true t [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for an empty client array"

(* End to end: every (tenant, query) job run through the two-level
   scheduler must equal its serial cold run on the same tenant store,
   stats must cover every tenant and shard, and the run must end clean. *)
let sharded_mix_equals_serial () =
  let t = topology () in
  let names = List.map fst (tenant_docs ()) in
  let clients =
    Array.of_list
      (List.concat_map
         (fun name -> List.map (fun s -> [ { Shard.tenant = name; spec = s } ]) (mix ()))
         names)
  in
  let expected =
    List.concat_map
      (fun name ->
        List.map
          (fun s ->
            ( (name, s.Workload.label),
              ids_of
                (Exec.cold_run ~config:validating (Shard.store t name) s.Workload.path
                   s.Workload.plan)
                  .Exec.nodes ))
          (mix ()))
      names
  in
  let r = Shard.run_clients ~config:validating ~cold:true t clients in
  check Alcotest.(list string) "no invariant violations" [] r.Shard.violations;
  check Alcotest.int "every job ran" (Array.length clients) (List.length r.Shard.jobs);
  List.iter
    (fun (tenant, (j : Workload.job)) ->
      let want = List.assoc (tenant, j.Workload.job_label) expected in
      check Alcotest.string
        (tenant ^ "/" ^ j.Workload.job_label ^ " completed")
        (Workload.status_to_string Workload.Completed)
        (Workload.status_to_string j.Workload.status);
      check id_list (tenant ^ "/" ^ j.Workload.job_label) want (ids_of j.Workload.nodes))
    r.Shard.jobs;
  check Alcotest.int "one stat row per tenant" (List.length names)
    (List.length r.Shard.tenant_stats);
  check Alcotest.int "one stat row per shard" 2 (List.length r.Shard.shard_stats);
  List.iter
    (fun (ts : Shard.tenant_stat) ->
      check Alcotest.int (ts.Shard.tenant ^ " job count") 4 ts.Shard.jobs;
      check Alcotest.bool (ts.Shard.tenant ^ " was served") true (ts.Shard.served_ticks > 0);
      check Alcotest.bool (ts.Shard.tenant ^ " p99 dominates p50") true
        (ts.Shard.p99 >= ts.Shard.p50))
    r.Shard.tenant_stats;
  check Alcotest.bool "ran concurrently" true (r.Shard.max_concurrent > 1);
  check Alcotest.bool "balancer turns advanced" true (r.Shard.turns > 0);
  let shard_reads =
    List.fold_left (fun a (s : Shard.shard_stat) -> a + s.Shard.page_reads) 0 r.Shard.shard_stats
  in
  check Alcotest.int "shard rows aggregate to the engine total" r.Shard.page_reads shard_reads

(* The per-tenant front door: a repeated statement from the same tenant
   is answered from the result cache at admission, while the identical
   statement from a co-located tenant recomputes — entries key on the
   tenant store's uid and content digest. *)
let shard_front_door_is_per_tenant () =
  let t = topology () in
  let caching = { validating with Context.result_cache = true } in
  Result_cache.clear ();
  Result_cache.reset_stats ();
  let q = spec "q" "/child::*/child::x" (Plan.xschedule ()) in
  let repeat = [| [ { Shard.tenant = "alpha"; spec = q }; { Shard.tenant = "alpha"; spec = q } ] |] in
  let r = Shard.run_clients ~config:caching ~cold:true t repeat in
  check Alcotest.(list string) "clean end" [] r.Shard.violations;
  check Alcotest.int "the repeat is a front-door hit" 1 r.Shard.cache_hits;
  let r2 =
    Shard.run_clients ~config:caching ~cold:false t
      [| [ { Shard.tenant = "beta"; spec = q } ] |]
  in
  check Alcotest.int "a neighbour never borrows the answer" 0 r2.Shard.cache_hits;
  Result_cache.clear ();
  Result_cache.reset_stats ()

let percentiles_are_nearest_rank () =
  let xs = [ 4.0; 1.0; 3.0; 2.0; 5.0 ] in
  check (Alcotest.float 1e-9) "p50" 3.0 (Workload.percentile xs 50.0);
  check (Alcotest.float 1e-9) "p95" 5.0 (Workload.percentile xs 95.0);
  check (Alcotest.float 1e-9) "p99" 5.0 (Workload.percentile xs 99.0);
  check (Alcotest.float 1e-9) "empty" 0.0 (Workload.percentile [] 50.0)

let suite =
  [
    ( "workload",
      [
        Alcotest.test_case "concurrent mix equals serial per query" `Quick
          concurrent_equals_serial;
        Alcotest.test_case "admission scales with pool capacity" `Quick
          admission_scales_with_capacity;
        Alcotest.test_case "timeout unwinds through abort_async" `Quick timeout_unwinds_cleanly;
        Alcotest.test_case "fairness counters advance under contention" `Quick
          fairness_counters_advance;
        Alcotest.test_case "closed-loop clients drain their job queues" `Quick
          closed_loop_clients_drain;
        Alcotest.test_case "writer mix commits and replays serially" `Quick
          writer_mix_commits_and_replays;
        Alcotest.test_case "a conflicting commit restarts the reader's snapshot" `Quick
          snapshot_conflict_restarts_reader;
        Alcotest.test_case "untouched paths keep hitting the cache across commits" `Quick
          untouched_paths_keep_hitting_across_commits;
        Alcotest.test_case "latency percentiles use nearest rank" `Quick
          percentiles_are_nearest_rank;
      ] );
    ( "workload.shards",
      [
        Alcotest.test_case "tenant placement is a stable hash" `Quick
          stable_placement_is_deterministic;
        Alcotest.test_case "writer specs and unknown tenants are rejected" `Quick
          shard_rejects_writers_and_strangers;
        Alcotest.test_case "sharded mix equals serial per tenant and query" `Quick
          sharded_mix_equals_serial;
        Alcotest.test_case "the front door is per-tenant" `Quick shard_front_door_is_per_tenant;
      ] );
  ]
