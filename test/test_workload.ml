(* The concurrent workload engine: admission control, round-robin with
   cost credits, cross-query coalescing, per-query timeout/abort, and
   fairness accounting — all checked against serial runs of the same
   queries. *)

module Disk = Xnav_storage.Disk
module Io_scheduler = Xnav_storage.Io_scheduler
module Buffer_manager = Xnav_storage.Buffer_manager
module Import = Xnav_store.Import
module Store = Xnav_store.Store
module Node_id = Xnav_store.Node_id
module Xpath_parser = Xnav_xpath.Xpath_parser
module Plan = Xnav_core.Plan
module Exec = Xnav_core.Exec
module Context = Xnav_core.Context
module Workload = Xnav_workload.Workload

let check = Alcotest.check

let id_list = Alcotest.testable (Fmt.Dump.list Node_id.pp) (List.equal Node_id.equal)

let doc () = Gen.wide_tree ~children:40 ()

let build ~capacity tree =
  let config = { Disk.default_config with Disk.page_size = 256 } in
  let disk = Disk.create ~config () in
  let import = Import.run ~payload:96 disk tree in
  let buffer = Buffer_manager.create ~capacity ~policy:Io_scheduler.Elevator disk in
  Store.attach buffer import

let validating = { Context.default_config with Context.validate = true }

let spec ?timeout label path plan =
  { Workload.label; path = Xpath_parser.parse path; plan; timeout }

let mix () =
  [
    spec "q-root" "/child::*" Plan.simple;
    spec "q-x" "/child::*/child::x" (Plan.xschedule ());
    spec "q-y" "/descendant::y" (Plan.xscan ());
    spec "q-a" "/child::a" (Plan.xschedule ());
  ]

let ids_of nodes = List.map (fun (i : Store.info) -> i.Store.id) nodes |> List.sort Node_id.compare

let serial_ids store config s =
  ids_of (Exec.cold_run ~config store s.Workload.path s.Workload.plan).Exec.nodes

let job_by_label r label =
  List.find (fun (j : Workload.job) -> j.Workload.job_label = label) r.Workload.jobs

(* Every query run concurrently must produce exactly its serial answer,
   and the engine must end with the invariant layer clean. *)
let concurrent_equals_serial () =
  let store = build ~capacity:16 (doc ()) in
  let specs = mix () in
  let expected = List.map (fun s -> (s.Workload.label, serial_ids store validating s)) specs in
  let r = Workload.run ~config:validating ~cold:true store specs in
  check Alcotest.int "one job per query" (List.length specs) (List.length r.Workload.jobs);
  check Alcotest.(list string) "no invariant violations" [] r.Workload.violations;
  List.iter
    (fun (label, want) ->
      let j = job_by_label r label in
      check Alcotest.string "completed"
        (Workload.status_to_string Workload.Completed)
        (Workload.status_to_string j.Workload.status);
      check id_list label want (ids_of j.Workload.nodes))
    expected;
  check Alcotest.int "no pins leaked" 0 (Buffer_manager.pinned_count (Store.buffer store))

(* Admission generalises the capacity-1 rule: a pool too small for two
   queries' worst-case pin demand serialises them (but always admits a
   lone query), while a large pool runs the whole mix at once. *)
let admission_scales_with_capacity () =
  let tree = doc () in
  let small = build ~capacity:2 tree in
  let r_small = Workload.run ~config:validating ~cold:true small (mix ()) in
  check Alcotest.int "capacity 2 serialises" 1 r_small.Workload.max_concurrent;
  check Alcotest.(list string) "small pool still clean" [] r_small.Workload.violations;
  let roomy = build ~capacity:64 tree in
  let r_roomy = Workload.run ~config:validating ~cold:true roomy (mix ()) in
  check Alcotest.int "capacity 64 admits the whole mix" 4 r_roomy.Workload.max_concurrent;
  (* Serialised admission makes later queries wait for the pool: the
     wait is visible as pin-wait time on the simulated clock. *)
  let total_wait = List.fold_left (fun a j -> a +. j.Workload.pin_wait) 0.0 r_small.Workload.jobs in
  check Alcotest.bool "serialised queries waited for admission" true (total_wait > 0.0)

(* A timeout aborts the query at its deadline: the job reports Timed_out
   with no results, unwinds through abort_async without poisoning the
   pool, and the other queries still answer correctly. *)
let timeout_unwinds_cleanly () =
  let store = build ~capacity:16 (doc ()) in
  let doomed = spec ~timeout:0.0 "q-doomed" "/descendant::y" (Plan.xschedule ()) in
  let survivor = spec "q-x" "/child::*/child::x" (Plan.xschedule ()) in
  let expected = serial_ids store validating survivor in
  let r = Workload.run ~config:validating ~cold:true store [ doomed; survivor ] in
  let j_doomed = job_by_label r "q-doomed" in
  check Alcotest.string "doomed job timed out"
    (Workload.status_to_string Workload.Timed_out)
    (Workload.status_to_string j_doomed.Workload.status);
  check Alcotest.int "timed-out job has no results" 0 j_doomed.Workload.count;
  let j_survivor = job_by_label r "q-x" in
  check id_list "survivor answers correctly" expected (ids_of j_survivor.Workload.nodes);
  check Alcotest.(list string) "pool unwound cleanly" [] r.Workload.violations;
  check Alcotest.int "no pins leaked" 0 (Buffer_manager.pinned_count (Store.buffer store))

(* Fairness accounting: each turn credits the chosen query and debits
   every other runnable one, so under real concurrency every completed
   query was served at least once and somebody was made to wait. *)
let fairness_counters_advance () =
  let store = build ~capacity:16 (doc ()) in
  let r = Workload.run ~config:validating ~cold:true store (mix ()) in
  check Alcotest.bool "ran concurrently" true (r.Workload.max_concurrent > 1);
  List.iter
    (fun (j : Workload.job) ->
      check Alcotest.bool
        (Printf.sprintf "%s was served" j.Workload.job_label)
        true (j.Workload.served_ticks > 0))
    r.Workload.jobs;
  let starved = List.fold_left (fun a j -> a + j.Workload.starved_ticks) 0 r.Workload.jobs in
  check Alcotest.bool "contention was recorded" true (starved > 0);
  check Alcotest.bool "turns were taken" true (r.Workload.turns > 0)

(* Closed-loop clients: each client submits its next job as soon as the
   previous finishes, so every queued job runs exactly once. *)
let closed_loop_clients_drain () =
  let store = build ~capacity:16 (doc ()) in
  let a = spec "a" "/child::*/child::x" (Plan.xschedule ()) in
  let b = spec "b" "/descendant::y" (Plan.xscan ()) in
  let want_a = serial_ids store validating a in
  let want_b = serial_ids store validating b in
  let r = Workload.run_clients ~config:validating ~cold:true store [| [ a; b ]; [ b; a ] |] in
  check Alcotest.int "all four jobs ran" 4 (List.length r.Workload.jobs);
  List.iter
    (fun (j : Workload.job) ->
      let want = if j.Workload.job_label = "a" then want_a else want_b in
      check id_list j.Workload.job_label want (ids_of j.Workload.nodes))
    r.Workload.jobs;
  check Alcotest.(list string) "clean end" [] r.Workload.violations

let percentiles_are_nearest_rank () =
  let xs = [ 4.0; 1.0; 3.0; 2.0; 5.0 ] in
  check (Alcotest.float 1e-9) "p50" 3.0 (Workload.percentile xs 50.0);
  check (Alcotest.float 1e-9) "p95" 5.0 (Workload.percentile xs 95.0);
  check (Alcotest.float 1e-9) "p99" 5.0 (Workload.percentile xs 99.0);
  check (Alcotest.float 1e-9) "empty" 0.0 (Workload.percentile [] 50.0)

let suite =
  [
    ( "workload",
      [
        Alcotest.test_case "concurrent mix equals serial per query" `Quick
          concurrent_equals_serial;
        Alcotest.test_case "admission scales with pool capacity" `Quick
          admission_scales_with_capacity;
        Alcotest.test_case "timeout unwinds through abort_async" `Quick timeout_unwinds_cleanly;
        Alcotest.test_case "fairness counters advance under contention" `Quick
          fairness_counters_advance;
        Alcotest.test_case "closed-loop clients drain their job queues" `Quick
          closed_loop_clients_drain;
        Alcotest.test_case "latency percentiles use nearest rank" `Quick
          percentiles_are_nearest_rank;
      ] );
  ]
