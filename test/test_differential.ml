(* The differential correctness tier: a deterministic sample of random
   (document, path, configuration) cases checked against the reference
   evaluator, plus focused regression tests for the I/O-scheduler
   stale-order bug, the refused-prefetch stall and pin leaks under
   near-minimal buffers. *)

module Differential = Xnav_check.Differential
module Tree = Xnav_xml.Tree
module Disk = Xnav_storage.Disk
module Io_scheduler = Xnav_storage.Io_scheduler
module Buffer_manager = Xnav_storage.Buffer_manager
module Import = Xnav_store.Import
module Store = Xnav_store.Store
module Node_id = Xnav_store.Node_id
module Path = Xnav_xpath.Path
module Eval_ref = Xnav_xpath.Eval_ref
module Xpath_parser = Xnav_xpath.Xpath_parser
module Plan = Xnav_core.Plan
module Exec = Xnav_core.Exec
module Context = Xnav_core.Context
module Result_cache = Xnav_core.Result_cache
module Update = Xnav_store.Update
module Tag = Xnav_xml.Tag

let check = Alcotest.check

(* --- the sampled differential run ---------------------------------------- *)

let differential_sample () =
  let r = Differential.run ~seed:Gen.test_seed ~cases:200 () in
  check Alcotest.int "cases run" 200 r.Differential.cases_run;
  let reproducers =
    List.map (fun f -> Differential.reproducer f.Differential.shrunk) r.Differential.failures
  in
  check Alcotest.(list string) "no plan disagrees with the reference evaluator" [] reproducers

let shrink_is_stable () =
  (* Shrinking a passing case is the identity (nothing to chase). *)
  let case =
    {
      Differential.doc_seed = 7;
      fidelity = 0.001;
      physical = Differential.default_physical;
      k = 100;
      speculative = true;
      memory_budget = 1_000_000;
      path = Xpath_parser.parse "/child::site";
    }
  in
  check Alcotest.(list string) "case passes" []
    (List.map (fun m -> m.Differential.detail) (Differential.check_case case));
  check Alcotest.bool "shrink keeps a passing case intact" true (Differential.shrink case = case)

let reproducer_round_trips () =
  (* Paths printed by the reproducer re-parse to the same path. *)
  let paths = [ "/child::a"; "/descendant::b/child::*"; "/descendant-or-self::node()/self::c" ] in
  List.iter
    (fun s ->
      let path = Xpath_parser.parse s in
      check Alcotest.string "to_string round-trips through the parser" (Path.to_string path)
        (Path.to_string (Xpath_parser.parse (Path.to_string path))))
    paths

(* --- Io_scheduler: removals must prune the order list --------------------- *)

let scheduler ?(pages = 50) policy =
  let d = Gen.small_disk () in
  for _ = 1 to pages do
    ignore (Disk.alloc d)
  done;
  Io_scheduler.create ~policy d

let assert_consistent s =
  check Alcotest.(option string) "scheduler structures agree" None
    (Io_scheduler.consistency_error s);
  check Alcotest.int "order list matches pending set" (Io_scheduler.pending_count s)
    (Io_scheduler.order_length s)

let fifo_ignores_cancelled_submission () =
  (* With C pending throughout: submit A, cancel A, submit B, re-submit
     A. FIFO order is now C, B, A — the cancelled submission of A must
     not count. (The stale-order bug kept A's dead entry, so A's
     original position made it jump the queue ahead of B.) *)
  let s = scheduler Io_scheduler.Fifo in
  Io_scheduler.submit s 30;
  Io_scheduler.submit s 10;
  check Alcotest.bool "cancel pending" true (Io_scheduler.cancel s 10);
  Io_scheduler.submit s 20;
  Io_scheduler.submit s 10;
  assert_consistent s;
  let complete expect label =
    match Io_scheduler.complete_one s with
    | Some (pid, _) -> check Alcotest.int label expect pid
    | None -> Alcotest.fail "nothing pending"
  in
  complete 30 "oldest live submission first";
  complete 20 "B precedes the re-submitted A";
  complete 10 "the re-submission comes last";
  assert_consistent s

let complete_one_prunes_order () =
  List.iter
    (fun policy ->
      let s = scheduler policy in
      List.iter (Io_scheduler.submit s) [ 30; 5; 42 ];
      ignore (Io_scheduler.complete_one s);
      (* Pre-fix, the served page's entry stayed in the order list until
         the pending set emptied. *)
      assert_consistent s;
      ignore (Io_scheduler.complete_one s);
      ignore (Io_scheduler.complete_one s);
      assert_consistent s;
      check Alcotest.int "drained" 0 (Io_scheduler.pending_count s))
    Io_scheduler.all_policies

let cancel_prunes_order () =
  List.iter
    (fun policy ->
      let s = scheduler policy in
      List.iter (Io_scheduler.submit s) [ 1; 2; 3 ];
      check Alcotest.bool "cancel" true (Io_scheduler.cancel s 2);
      assert_consistent s;
      check Alcotest.bool "cancel again is a no-op" false (Io_scheduler.cancel s 2);
      assert_consistent s)
    Io_scheduler.all_policies

(* --- plans under near-minimal buffers ------------------------------------- *)

(* A document big enough to split into many clusters at a tiny payload. *)
let doc () = Gen.wide_tree ~children:40 ()

let build ~capacity ~policy ~replacement tree =
  let d = Gen.small_disk ~page_size:256 () in
  let import = Import.run ~payload:96 d tree in
  let buffer = Buffer_manager.create ~capacity ~policy ~replacement d in
  (Store.attach buffer import, import)

let expected_ids tree (import : Import.result) path =
  Eval_ref.eval tree path
  |> List.map (fun (n : Tree.t) -> import.Import.node_ids.(n.Tree.preorder))
  |> List.sort Node_id.compare

let got_ids (r : Exec.result) =
  List.map (fun (i : Store.info) -> i.Store.id) r.Exec.nodes |> List.sort Node_id.compare

let id_list = Alcotest.testable (Fmt.Dump.list Node_id.pp) (List.equal Node_id.equal)

let validating = { Context.default_config with Context.validate = true }

let plans = [ ("simple", Plan.simple); ("xschedule", Plan.xschedule ()); ("xscan", Plan.xscan ()) ]

(* Every plan, every replacement x I/O-policy combination, two frames:
   correct answers and (via [validate]) no pin leaks, no dangling I/O.
   Pre-fix, XSchedule leaked its current pin or wedged under these
   capacities. *)
let no_pin_leaks_capacity_two () =
  let tree = doc () in
  let path = Xpath_parser.parse "/child::*/child::x" in
  List.iter
    (fun replacement ->
      List.iter
        (fun policy ->
          let store, import = build ~capacity:2 ~policy ~replacement tree in
          check Alcotest.bool "document spans multiple clusters" true (Store.page_count store > 2);
          let expected = expected_ids tree import path in
          List.iter
            (fun (name, plan) ->
              let r = Exec.cold_run ~config:validating store path plan in
              let label =
                Printf.sprintf "%s / %s / %s" name
                  (Buffer_manager.replacement_to_string replacement)
                  (Io_scheduler.policy_to_string policy)
              in
              check id_list label expected (got_ids r);
              check Alcotest.int (label ^ ": no pinned frames") 0
                (Buffer_manager.pinned_count (Store.buffer store)))
            plans)
        Io_scheduler.all_policies)
    Buffer_manager.all_replacements

(* Pre-fix, XSchedule raised Buffer_full on a one-frame buffer: the
   current cluster's pin was never released before acquiring the next
   view, and a refused prefetch was never retried. *)
let xschedule_single_frame () =
  let tree = doc () in
  List.iter
    (fun path_str ->
      let path = Xpath_parser.parse path_str in
      let store, import =
        build ~capacity:1 ~policy:Io_scheduler.Elevator ~replacement:Buffer_manager.Lru tree
      in
      let expected = expected_ids tree import path in
      List.iter
        (fun (name, plan) ->
          let r = Exec.cold_run ~config:validating store path plan in
          check id_list (name ^ " on one frame: " ^ path_str) expected (got_ids r))
        plans)
    [ "/child::*"; "/child::*/child::y"; "/descendant::b" ]

(* The refusal path: with every frame pinned by the current cluster, a
   prefetch must be refused (not raise), and the dispatch loop must
   retry it once the pin is gone. *)
let prefetch_refusal_is_retried () =
  let tree = doc () in
  let store, _ =
    build ~capacity:1 ~policy:Io_scheduler.Fifo ~replacement:Buffer_manager.Fifo tree
  in
  let buffer = Store.buffer store in
  Buffer_manager.reset buffer;
  let first = Store.first_page store in
  let frame = Buffer_manager.fix buffer first in
  (* One frame, and it is pinned: a prefetch of another page must be
     refused rather than evict or raise. *)
  (match Buffer_manager.prefetch buffer (first + 1) with
  | Buffer_manager.Refused -> ()
  | Buffer_manager.Resident | Buffer_manager.Scheduled ->
    Alcotest.fail "prefetch with all frames pinned was not refused");
  Buffer_manager.unfix buffer frame;
  check Alcotest.bool "admission possible once unpinned" true (Buffer_manager.can_admit buffer);
  (* End-to-end: a multi-cluster XSchedule run on the same store still
     terminates with the right answer (its dispatch loop retries the
     refusals it accumulates). *)
  let path = Xpath_parser.parse "/child::*/child::x" in
  let r = Exec.cold_run ~config:validating store path (Plan.xschedule ()) in
  check Alcotest.bool "run terminates with results" true (r.Exec.count > 0)

(* Fallback pressure at one frame: the post-fallback pipeline must
   restart with the simple method instead of wedging on Buffer_full. *)
let fallback_single_frame () =
  let tree = doc () in
  let cfg = { validating with Context.memory_budget = 0 } in
  List.iter
    (fun (name, plan) ->
      let store, import =
        build ~capacity:1 ~policy:Io_scheduler.Cscan ~replacement:Buffer_manager.Clock tree
      in
      let path = Xpath_parser.parse "/descendant::b/child::x" in
      let expected = expected_ids tree import path in
      let r = Exec.cold_run ~config:cfg store path plan in
      check id_list (name ^ " under fallback on one frame") expected (got_ids r);
      check Alcotest.bool (name ^ " fell back") true r.Exec.metrics.Exec.fell_back)
    [ ("xschedule", Plan.xschedule ()); ("xscan", Plan.xscan ()) ]

(* --- swizzling ------------------------------------------------------------ *)

(* The swizzle differential tier: every plan, decode cache forced on and
   off, identical answers and identical queue counters. *)
let swizzle_differential_sample () =
  let r = Differential.run_swizzle ~seed:Gen.test_seed ~cases:200 () in
  check Alcotest.int "cases run" 200 r.Differential.cases_run;
  let reproducers =
    List.map (fun f -> Differential.reproducer f.Differential.shrunk) r.Differential.failures
  in
  check Alcotest.(list string) "swizzled and unswizzled runs agree" [] reproducers

(* No swizzled handle survives its pin: every view access after release
   must raise, whether the cache is on or off. *)
let view_dies_on_release () =
  let tree = doc () in
  List.iter
    (fun swizzle ->
      let store, _ =
        build ~capacity:4 ~policy:Io_scheduler.Elevator ~replacement:Buffer_manager.Lru tree
      in
      Store.set_swizzling store swizzle;
      let label fmt = Printf.sprintf (format_of_string fmt) (if swizzle then "on" else "off") in
      let v = Store.view store (Store.first_page store) in
      check Alcotest.bool (label "view live while pinned (swizzle %s)") true (Store.view_valid v);
      ignore (Store.get v 0);
      Store.release store v;
      check Alcotest.bool (label "view dead after release (swizzle %s)") false (Store.view_valid v);
      let raises f =
        match f () with
        | () -> false
        | exception Invalid_argument _ -> true
      in
      check Alcotest.bool
        (label "get after release raises (swizzle %s)")
        true
        (raises (fun () -> ignore (Store.get v 0)));
      check Alcotest.bool
        (label "up_slots after release raises (swizzle %s)")
        true
        (raises (fun () -> ignore (Store.up_slots v)));
      check Alcotest.bool
        (label "double release raises (swizzle %s)")
        true
        (raises (fun () -> Store.release store v)))
    [ true; false ]

(* XSchedule's direct-serve pick (queued items whose cluster has no
   pending I/O) is the smallest pending page id, so the physical read
   order — the I/O trace — is a pure function of the inputs. Pre-fix the
   pick came from hash-table iteration order. *)
let xschedule_trace_is_stable () =
  let tree = doc () in
  let run_trace store path config =
    let disk = Buffer_manager.disk (Store.buffer store) in
    Disk.set_trace disk true;
    let r = Exec.cold_run ~config store path (Plan.xschedule ()) in
    (got_ids r, Disk.trace disk)
  in
  let path = Xpath_parser.parse "/child::*/child::x" in
  let config = { validating with Context.k = 2 } in
  let store, import =
    build ~capacity:2 ~policy:Io_scheduler.Elevator ~replacement:Buffer_manager.Lru tree
  in
  let ids1, trace1 = run_trace store path config in
  let ids2, trace2 = run_trace store path config in
  check id_list "answers match the reference" (expected_ids tree import path) ids1;
  check id_list "repeated cold runs agree" ids1 ids2;
  check Alcotest.bool "trace is non-trivial" true (List.length trace1 > 2);
  check Alcotest.(list int) "same store: identical I/O trace" trace1 trace2;
  (* An independently built identical store must replay the same trace:
     nothing about the pick depends on table internals or allocation
     history. *)
  let store', _ =
    build ~capacity:2 ~policy:Io_scheduler.Elevator ~replacement:Buffer_manager.Lru tree
  in
  let _, trace3 = run_trace store' path config in
  check Alcotest.(list int) "fresh store: identical I/O trace" trace1 trace3

(* --- cost-sensitive batching ---------------------------------------------- *)

(* The batching differential tier: every plan, coalescing / cost-serve /
   scan windows fully off then fully on, identical answers under the
   full invariant suite. *)
let batching_differential_sample () =
  let r = Differential.run_batching ~seed:Gen.test_seed ~cases:200 () in
  check Alcotest.int "cases run" 200 r.Differential.cases_run;
  let reproducers =
    List.map (fun f -> Differential.reproducer f.Differential.shrunk) r.Differential.failures
  in
  check Alcotest.(list string) "knobs-off and knobs-on runs agree" [] reproducers

(* The workload differential tier: every plan of each case run serially
   cold, then all at once through the concurrent engine — each query's
   answer must be identical either way. *)
let workload_differential_sample () =
  let r = Differential.run_workload ~seed:Gen.test_seed ~cases:200 () in
  check Alcotest.int "cases run" 200 r.Differential.cases_run;
  let reproducers =
    List.map (fun f -> Differential.reproducer f.Differential.shrunk) r.Differential.failures
  in
  check Alcotest.(list string) "concurrent and serial runs agree" [] reproducers

(* The writers differential tier: every plan of each case runs
   concurrently with one or two writer clients committing sampled
   inserts and deletes — each reader's answer must equal a serial
   replay of the commit schedule up to the reader's finish point on an
   identically-imported twin, and the final documents must match. *)
let writers_differential_sample () =
  let r = Differential.run_writers ~seed:Gen.test_seed ~cases:200 () in
  check Alcotest.int "cases run" 200 r.Differential.cases_run;
  let reproducers =
    List.map (fun f -> Differential.reproducer f.Differential.shrunk) r.Differential.failures
  in
  check Alcotest.(list string) "concurrent readers equal their serial replay" [] reproducers

(* The sharded tenancy tier: a small multi-tenant topology derived from
   each case (2-4 tenants over 1-3 shards), every (tenant, plan) pair
   run at once through the two-level scheduler — with the fairness
   gate, 2Q eviction and the result-cache front door each on in half
   the cases — and each job's answer compared against a serial cold run
   on the same tenant store. *)
let shards_differential_sample () =
  let r = Differential.run_shards ~seed:Gen.test_seed ~cases:200 () in
  check Alcotest.int "cases run" 200 r.Differential.cases_run;
  let reproducers =
    List.map (fun f -> Differential.reproducer f.Differential.shrunk) r.Differential.failures
  in
  check Alcotest.(list string) "sharded and per-tenant serial runs agree" [] reproducers

(* --- the structural index ------------------------------------------------- *)

(* The index differential tier: reference evaluator, XSchedule and index
   plans (covering and forced partial resolutions) must agree on every
   sampled case. *)
let index_differential_sample () =
  let r = Differential.run_index ~seed:Gen.test_seed ~cases:200 () in
  check Alcotest.int "cases run" 200 r.Differential.cases_run;
  let reproducers =
    List.map (fun f -> Differential.reproducer f.Differential.shrunk) r.Differential.failures
  in
  check Alcotest.(list string) "index plans agree with the reference evaluator" [] reproducers

(* Border-seeded residual evaluation: on a store split into many tiny
   clusters, an index plan forced to stop resolution mid-path must seed
   partial instances at entry clusters, navigate the residual suffix
   across borders (continuations served through Xindex.push), and still
   produce the reference answer — while actually touching the residual
   machinery. *)
let index_residual_borders () =
  let tree = doc () in
  List.iter
    (fun path_str ->
      let path = Xpath_parser.parse path_str in
      let store, import =
        build ~capacity:4 ~policy:Io_scheduler.Elevator ~replacement:Buffer_manager.Lru tree
      in
      check Alcotest.bool "document spans multiple clusters" true (Store.page_count store > 2);
      let expected = expected_ids tree import path in
      List.iter
        (fun resolve ->
          let r =
            Exec.cold_run ~config:validating store path (Plan.xindex ~resolve ())
          in
          let label = Printf.sprintf "%s at resolve<=%d" path_str resolve in
          check id_list label expected (got_ids r);
          check Alcotest.bool (label ^ ": residual machinery engaged") true
            (r.Exec.metrics.Exec.index_clusters > 0))
        [ 0; 1 ])
    [ "/child::*/child::x"; "/child::*/child::y"; "/descendant::b" ]

(* The covering regime reads nothing: a pure child chain on the same
   multi-cluster store is answered entirely from the partition. *)
let index_covering_reads_no_pages () =
  let tree = doc () in
  let store, import =
    build ~capacity:4 ~policy:Io_scheduler.Elevator ~replacement:Buffer_manager.Lru tree
  in
  let path = Xpath_parser.parse "/child::*/child::x" in
  let expected = expected_ids tree import path in
  let r = Exec.cold_run ~config:validating store path (Plan.xindex ()) in
  check id_list "covering answers match the reference" expected (got_ids r);
  check Alcotest.int "covering entries = results" (List.length expected)
    r.Exec.metrics.Exec.index_entries;
  check Alcotest.int "no clusters pinned by the index" 0 r.Exec.metrics.Exec.index_clusters;
  check Alcotest.int "no pages read at all" 0 r.Exec.metrics.Exec.page_reads

(* --- the result cache ----------------------------------------------------- *)

(* The cache differential tier: every plan run cache-off, cache-on miss
   and cache-on hit, plus the case's plans deduped through the workload
   front door — identical answers throughout, and the miss run must not
   perturb a single execution counter. *)
let cache_differential_sample () =
  let r = Differential.run_cache ~seed:Gen.test_seed ~cases:200 () in
  check Alcotest.int "cases run" 200 r.Differential.cases_run;
  let reproducers =
    List.map (fun f -> Differential.reproducer f.Differential.shrunk) r.Differential.failures
  in
  check Alcotest.(list string) "cache-on and cache-off runs agree" [] reproducers

let caching = { validating with Context.result_cache = true }

(* Freshness: an insert bumps the store's mutation stamp, which must
   stale the cached result — the next run recomputes (and sees the new
   node), and only then does the key serve hits again. *)
let insert_stales_cached_result () =
  let tree = doc () in
  let store, import =
    build ~capacity:8 ~policy:Io_scheduler.Elevator ~replacement:Buffer_manager.Lru tree
  in
  let path = Xpath_parser.parse "/child::*/child::x" in
  Result_cache.clear ();
  Result_cache.reset_stats ();
  let r1 = Exec.cold_run ~config:caching store path (Plan.xschedule ()) in
  check id_list "first run matches the reference" (expected_ids tree import path) (got_ids r1);
  check Alcotest.int "first run is a miss" 1 r1.Exec.metrics.Exec.cache_misses;
  let r2 = Exec.cold_run ~config:caching store path (Plan.xschedule ()) in
  check Alcotest.int "second run is a hit" 1 r2.Exec.metrics.Exec.cache_hits;
  check Alcotest.int "the hit reads no pages" 0 r2.Exec.metrics.Exec.page_reads;
  check id_list "the hit serves the cached answer" (got_ids r1) (got_ids r2);
  let stamp = Store.mutation_stamp store in
  let parent =
    (List.hd (Exec.cold_run ~config:validating store (Xpath_parser.parse "/child::*") Plan.simple)
       .Exec.nodes)
      .Store.id
  in
  let fresh = Update.insert_element store ~parent (Tag.of_string "x") in
  check Alcotest.bool "the insert advanced the mutation stamp" true
    (Store.mutation_stamp store > stamp);
  let r3 = Exec.cold_run ~config:caching store path (Plan.xschedule ()) in
  check Alcotest.int "post-insert run is not served the stale answer" 0
    r3.Exec.metrics.Exec.cache_hits;
  check Alcotest.int "post-insert run recomputes" 1 r3.Exec.metrics.Exec.cache_misses;
  check Alcotest.bool "the recomputation sees the inserted node" true
    (List.exists (fun (i : Store.info) -> Node_id.equal i.Store.id fresh) r3.Exec.nodes);
  check Alcotest.int "exactly one stale entry was dropped" 1 (Result_cache.stats ()).Result_cache.stales;
  let r4 = Exec.cold_run ~config:caching store path (Plan.xschedule ()) in
  check Alcotest.int "the fresh stamp serves hits again" 1 r4.Exec.metrics.Exec.cache_hits;
  check id_list "the new hit equals the recomputed answer" (got_ids r3) (got_ids r4);
  Result_cache.clear ()

(* Bounded capacity, LRU order: at capacity 2, touching an entry saves
   it and the least-recently-used one is evicted instead. *)
let cache_evicts_least_recently_used () =
  let tree = doc () in
  let store, _ =
    build ~capacity:4 ~policy:Io_scheduler.Elevator ~replacement:Buffer_manager.Lru tree
  in
  let saved = Result_cache.capacity () in
  Result_cache.clear ();
  Result_cache.reset_stats ();
  Result_cache.set_capacity 2;
  let resident key =
    match Result_cache.find store key with
    | Some _ -> true
    | None -> false
  in
  check Alcotest.int "no eviction below capacity" 0 (Result_cache.add store "/a" ~count:0 []);
  check Alcotest.int "no eviction at capacity" 0 (Result_cache.add store "/b" ~count:0 []);
  check Alcotest.bool "touch /a to make it most recent" true (resident "/a");
  check Alcotest.int "inserting over capacity evicts one entry" 1
    (Result_cache.add store "/c" ~count:0 []);
  check Alcotest.int "size stays at capacity" 2 (Result_cache.size ());
  check Alcotest.bool "the touched entry survives" true (resident "/a");
  check Alcotest.bool "the least-recently-used entry was evicted" false (resident "/b");
  check Alcotest.bool "the new entry is resident" true (resident "/c");
  Result_cache.set_capacity saved;
  Result_cache.clear ();
  Result_cache.reset_stats ()

(* set_capacity must clamp rather than raise: zero (and anything below)
   means disabled — adds store nothing, finds never serve. *)
let cache_capacity_clamps_to_zero () =
  let tree = doc () in
  let store, _ =
    build ~capacity:4 ~policy:Io_scheduler.Elevator ~replacement:Buffer_manager.Lru tree
  in
  let saved = Result_cache.capacity () in
  Result_cache.clear ();
  Result_cache.reset_stats ();
  Result_cache.set_capacity (-3);
  check Alcotest.int "negative capacity clamps to zero" 0 (Result_cache.capacity ());
  check Alcotest.int "a disabled cache evicts nothing on add" 0
    (Result_cache.add store "/a" ~count:0 []);
  check Alcotest.int "a disabled cache stores nothing" 0 (Result_cache.size ());
  check Alcotest.bool "and never serves" true
    (match Result_cache.find store "/a" with None -> true | Some _ -> false);
  Result_cache.set_capacity 0;
  check Alcotest.int "zero is accepted as disabled" 0 (Result_cache.capacity ());
  (* Shrinking a populated cache trims immediately. *)
  Result_cache.set_capacity 2;
  ignore (Result_cache.add store "/a" ~count:0 []);
  ignore (Result_cache.add store "/b" ~count:0 []);
  Result_cache.set_capacity 0;
  check Alcotest.int "shrinking to zero empties the cache" 0 (Result_cache.size ());
  Result_cache.set_capacity saved;
  Result_cache.clear ();
  Result_cache.reset_stats ()

(* Uid aliasing: uids are a bare per-process counter, so after a counter
   reset (a fresh process over a warm external cache — simulated here
   with [Store.reset_uids]) a new store can receive a uid some live
   entry was installed under. The content digest folded into the key
   must turn the reuse into a clean miss — never another document's
   answer. *)
let cache_misses_on_uid_reuse () =
  Result_cache.clear ();
  Result_cache.reset_stats ();
  Store.reset_uids ();
  let tree_a = doc () in
  let store_a, import_a =
    build ~capacity:8 ~policy:Io_scheduler.Elevator ~replacement:Buffer_manager.Lru tree_a
  in
  let path = Xpath_parser.parse "/child::*/child::x" in
  let ra = Exec.cold_run ~config:caching store_a path (Plan.xschedule ()) in
  check id_list "store A's answer matches the reference" (expected_ids tree_a import_a path)
    (got_ids ra);
  check Alcotest.int "store A's answer is installed" 1 (Result_cache.size ());
  Store.reset_uids ();
  let tree_b = Gen.deep_tree ~depth:6 () in
  let store_b, import_b =
    build ~capacity:8 ~policy:Io_scheduler.Elevator ~replacement:Buffer_manager.Lru tree_b
  in
  check Alcotest.int "store B reuses store A's uid" (Store.uid store_a) (Store.uid store_b);
  check Alcotest.bool "their content digests differ" true
    (Store.identity store_a <> Store.identity store_b);
  check Alcotest.bool "the aliased lookup is a clean miss" true
    (match Result_cache.find store_b (Path.to_string path) with None -> true | Some _ -> false);
  let rb = Exec.cold_run ~config:caching store_b path (Plan.xschedule ()) in
  check Alcotest.int "the aliased run is never served A's answer" 0
    rb.Exec.metrics.Exec.cache_hits;
  check id_list "store B computes its own answer" (expected_ids tree_b import_b path) (got_ids rb);
  Result_cache.clear ();
  Result_cache.reset_stats ()

(* --- the fused chain automaton -------------------------------------------- *)

(* The fused differential tier: every fused-capable plan with the
   automaton on and off — identical answers, identical I/O traces,
   identical scheduling counters. *)
let fused_differential_sample () =
  let r = Differential.run_fused ~seed:Gen.test_seed ~cases:200 () in
  check Alcotest.int "cases run" 200 r.Differential.cases_run;
  let reproducers =
    List.map (fun f -> Differential.reproducer f.Differential.shrunk) r.Differential.failures
  in
  check Alcotest.(list string) "fused and unfused runs agree" [] reproducers

(* The fused knob must be invisible in physical behaviour: with it off
   the XStep chain replays its historical I/O trace (a pure function of
   the inputs, untouched by the automaton), and with it on the fused
   operator replays the very same trace while actually running. *)
let fused_off_reproduces_chain_trace () =
  let tree = doc () in
  let path = Xpath_parser.parse "/child::*/child::x" in
  let run_trace fused =
    let store, import =
      build ~capacity:2 ~policy:Io_scheduler.Elevator ~replacement:Buffer_manager.Lru tree
    in
    let disk = Buffer_manager.disk (Store.buffer store) in
    Disk.set_trace disk true;
    let r =
      Exec.cold_run ~config:{ validating with Context.fused } store path (Plan.xscan ())
    in
    check id_list "answers match the reference" (expected_ids tree import path) (got_ids r);
    (r.Exec.metrics, Disk.trace disk)
  in
  let m_off, trace_off = run_trace false in
  let _, trace_off' = run_trace false in
  let m_on, trace_on = run_trace true in
  check Alcotest.int "fused-off: zero transitions" 0 m_off.Exec.fused_transitions;
  check Alcotest.int "fused-off: zero states" 0 m_off.Exec.fused_states;
  check Alcotest.bool "fused-on engages the automaton" true (m_on.Exec.fused_transitions > 0);
  check Alcotest.bool "trace is non-trivial" true (List.length trace_off > 2);
  check Alcotest.(list int) "fused-off trace is reproducible" trace_off trace_off';
  check Alcotest.(list int) "fused-on replays the chain trace exactly" trace_off trace_on

let knobs_off =
  {
    validating with
    Context.coalesce_window = 0;
    Context.serve_policy = Context.Serve_min_pid;
    Context.scan_threshold = 0.0;
  }

(* With every knob off, the machinery must be invisible: zero batch and
   window counters, and an I/O trace that is a pure function of the
   inputs (the historical single-page regime). *)
let knobs_off_is_the_historical_regime () =
  let tree = doc () in
  let path = Xpath_parser.parse "/child::*/child::x" in
  let run_trace () =
    let store, import =
      build ~capacity:2 ~policy:Io_scheduler.Elevator ~replacement:Buffer_manager.Lru tree
    in
    let disk = Buffer_manager.disk (Store.buffer store) in
    Disk.set_trace disk true;
    let r = Exec.cold_run ~config:knobs_off store path (Plan.xschedule ()) in
    check id_list "answers match the reference" (expected_ids tree import path) (got_ids r);
    let m = r.Exec.metrics in
    check Alcotest.int "no batched reads" 0 m.Exec.batched_reads;
    check Alcotest.int "no batch pages" 0 m.Exec.batch_pages;
    check Alcotest.int "no coalesce runs" 0 m.Exec.coalesce_runs;
    check Alcotest.int "no scan windows" 0 m.Exec.scan_windows;
    check Alcotest.int "no scan window pages" 0 m.Exec.scan_window_pages;
    Disk.trace disk
  in
  let trace1 = run_trace () in
  let trace2 = run_trace () in
  check Alcotest.bool "trace is non-trivial" true (List.length trace1 > 2);
  check Alcotest.(list int) "fresh store: identical I/O trace" trace1 trace2

(* Coalescing must actually fire on a multi-cluster run: with the window
   open (and scan windows held off to isolate the path), pending pages
   are delivered through vectored reads. *)
let coalescing_batches_async_reads () =
  let tree = doc () in
  let cfg = { validating with Context.coalesce_window = 16; Context.scan_threshold = 0.0 } in
  let store, import =
    build ~capacity:8 ~policy:Io_scheduler.Elevator ~replacement:Buffer_manager.Lru tree
  in
  let path = Xpath_parser.parse "/child::*/child::x" in
  let r = Exec.cold_run ~config:cfg store path (Plan.xschedule ()) in
  let m = r.Exec.metrics in
  check id_list "answers match the reference" (expected_ids tree import path) (got_ids r);
  check Alcotest.bool "some reads were batched" true (m.Exec.batched_reads > 0);
  check Alcotest.bool "some batches carried several pages" true (m.Exec.coalesce_runs > 0);
  check Alcotest.bool "batch pages cover batched reads" true
    (m.Exec.batch_pages >= m.Exec.batched_reads)

(* Adaptive scan windows must fire when the pending set is dense, and
   sweep pages without disturbing the answer. *)
let scan_windows_fire_when_dense () =
  let tree = doc () in
  let cfg =
    { validating with Context.coalesce_window = 0; Context.scan_threshold = 0.25 }
  in
  let store, import =
    build ~capacity:8 ~policy:Io_scheduler.Elevator ~replacement:Buffer_manager.Lru tree
  in
  let path = Xpath_parser.parse "/child::*/child::x" in
  let r = Exec.cold_run ~config:cfg store path (Plan.xschedule ()) in
  let m = r.Exec.metrics in
  check id_list "answers match the reference" (expected_ids tree import path) (got_ids r);
  check Alcotest.bool "a scan window opened" true (m.Exec.scan_windows > 0);
  check Alcotest.bool "windows swept pages" true (m.Exec.scan_window_pages > 0)

let suite =
  [
    ( "differential",
      [
        Alcotest.test_case "200 sampled cases agree with the reference evaluator" `Slow
          differential_sample;
        Alcotest.test_case "shrinking a passing case is the identity" `Quick shrink_is_stable;
        Alcotest.test_case "reproducer paths round-trip through the parser" `Quick
          reproducer_round_trips;
      ] );
    ( "swizzling",
      [
        Alcotest.test_case "200 sampled cases: swizzling on/off is observationally equal" `Slow
          swizzle_differential_sample;
        Alcotest.test_case "no swizzled handle survives an unpin" `Quick view_dies_on_release;
        Alcotest.test_case "xschedule direct-serve pick yields a stable I/O trace" `Quick
          xschedule_trace_is_stable;
      ] );
    ( "batching",
      [
        Alcotest.test_case "200 sampled cases: batching knobs on/off agree" `Slow
          batching_differential_sample;
        Alcotest.test_case "knobs off reproduces the single-page regime" `Quick
          knobs_off_is_the_historical_regime;
        Alcotest.test_case "coalescing batches async reads" `Quick coalescing_batches_async_reads;
        Alcotest.test_case "scan windows open under dense pending sets" `Quick
          scan_windows_fire_when_dense;
      ] );
    ( "workload differential",
      [
        Alcotest.test_case "200 sampled cases: concurrent equals serial per query" `Slow
          workload_differential_sample;
      ] );
    ( "writers differential",
      [
        Alcotest.test_case "200 sampled cases: readers equal their serial replay" `Slow
          writers_differential_sample;
      ] );
    ( "shards differential",
      [
        Alcotest.test_case "200 sampled cases: sharded tenants equal their serial runs" `Slow
          shards_differential_sample;
      ] );
    ( "index differential",
      [
        Alcotest.test_case "200 sampled cases: index plans equal reference and xschedule" `Slow
          index_differential_sample;
        Alcotest.test_case "border-seeded residuals reproduce the reference answer" `Quick
          index_residual_borders;
        Alcotest.test_case "covering index reads no pages" `Quick index_covering_reads_no_pages;
      ] );
    ( "result cache",
      [
        Alcotest.test_case "200 sampled cases: cache on/off is observationally equal" `Slow
          cache_differential_sample;
        Alcotest.test_case "an insert stales the cached result" `Quick insert_stales_cached_result;
        Alcotest.test_case "eviction is bounded and least-recently-used" `Quick
          cache_evicts_least_recently_used;
        Alcotest.test_case "set_capacity clamps zero and below to disabled" `Quick
          cache_capacity_clamps_to_zero;
        Alcotest.test_case "a reused uid can never serve another document's answer" `Quick
          cache_misses_on_uid_reuse;
      ] );
    ( "fused differential",
      [
        Alcotest.test_case "200 sampled cases: fused on/off is observationally equal" `Slow
          fused_differential_sample;
        Alcotest.test_case "fused off reproduces the chain's exact I/O trace" `Quick
          fused_off_reproduces_chain_trace;
      ] );
    ( "scheduler regressions",
      [
        Alcotest.test_case "fifo ignores cancelled submissions" `Quick
          fifo_ignores_cancelled_submission;
        Alcotest.test_case "complete_one prunes the order list" `Quick complete_one_prunes_order;
        Alcotest.test_case "cancel prunes the order list" `Quick cancel_prunes_order;
      ] );
    ( "buffer regressions",
      [
        Alcotest.test_case "no pin leaks: plans x replacements x policies at 2 frames" `Quick
          no_pin_leaks_capacity_two;
        Alcotest.test_case "xschedule completes on a single frame" `Quick xschedule_single_frame;
        Alcotest.test_case "refused prefetches are retried" `Quick prefetch_refusal_is_retried;
        Alcotest.test_case "fallback on a single frame restarts simple" `Quick
          fallback_single_frame;
      ] );
  ]
