(* Reproduction guards: the paper's qualitative results must keep
   holding. These are the assertions behind EXPERIMENTS.md, runnable in
   CI at reduced fidelity. *)

module Disk = Xnav_storage.Disk
module Buffer_manager = Xnav_storage.Buffer_manager
module Import = Xnav_store.Import
module Store = Xnav_store.Store
module Queries = Xnav_xmark.Queries
module Gen_x = Xnav_xmark.Gen
module Plan = Xnav_core.Plan
module Exec = Xnav_core.Exec

let check = Alcotest.check
let bool = Alcotest.bool

(* The benchmark setup at reduced fidelity: enough pages to exceed the
   buffer, deterministic documents. *)
let bench_store ?(strategy = Import.Dfs) ~scale () =
  let doc = Gen_x.generate ~config:{ Gen_x.default_config with Gen_x.scale; fidelity = 0.02 } () in
  let disk = Disk.create ~config:{ Disk.default_config with Disk.page_size = 4096 } () in
  let import = Import.run ~strategy disk doc in
  let buffer = Buffer_manager.create ~capacity:256 disk in
  Store.attach buffer import

let time store plan (q : Queries.t) =
  List.fold_left
    (fun acc path ->
      acc +. (Exec.cold_run ~ordered:false store path plan).Exec.metrics.Exec.total_time)
    0.0 q.Queries.paths

let simple = Plan.simple
let xschedule = Plan.xschedule ~speculative:false ()
let xscan = Plan.xscan ()

let tests =
  [
    Alcotest.test_case "fig 9/10: XSchedule beats Simple on every query at sf=1" `Slow
      (fun () ->
        let store = bench_store ~scale:1.0 () in
        List.iter
          (fun q ->
            check bool q.Queries.name true (time store xschedule q < time store simple q))
          [ Queries.q6'; Queries.q7 ]);
    Alcotest.test_case "fig 10: XScan wins Q7 by a large factor" `Slow (fun () ->
        let store = bench_store ~scale:1.0 () in
        let scan = time store xscan Queries.q7 in
        check bool "vs simple >= 2.5x" true (time store simple Queries.q7 > 2.5 *. scan);
        check bool "vs schedule" true (time store xschedule Queries.q7 > scan));
    Alcotest.test_case "fig 11: XScan collapses on selective Q15" `Slow (fun () ->
        let store = bench_store ~scale:1.0 () in
        check bool "scan much worse" true
          (time store xscan Queries.q15 > 2.0 *. time store simple Queries.q15));
    Alcotest.test_case "fig 9-11: costs grow with the scaling factor" `Slow (fun () ->
        let small = bench_store ~scale:0.25 () in
        let large = bench_store ~scale:1.0 () in
        List.iter
          (fun (q : Queries.t) ->
            List.iter
              (fun plan -> check bool q.Queries.name true (time large plan q > time small plan q))
              [ simple; xschedule; xscan ])
          Queries.all);
    Alcotest.test_case "tab 3: XScan has the highest CPU share" `Slow (fun () ->
        let store = bench_store ~scale:1.0 () in
        (* The paper's Table 3 profiles the pure demand scheduler over
           the XStep iterator chain, so pin both knobs to the historical
           regime: with the adaptive scan window on (the default),
           XSchedule streams Q7 much like XScan does, and with the fused
           automaton on XScan's CPU share drops below Simple's — in both
           cases the share ordering the table reports is no longer
           meaningful. *)
        let paper =
          let module Context = Xnav_core.Context in
          {
            Context.default_config with
            Context.coalesce_window = 0;
            Context.serve_policy = Context.Serve_min_pid;
            Context.scan_threshold = 0.0;
            Context.fused = false;
          }
        in
        let cpu_share plan =
          let total, cpu =
            List.fold_left
              (fun (t, c) path ->
                let m = (Exec.cold_run ~config:paper ~ordered:false store path plan).Exec.metrics in
                (t +. m.Exec.total_time, c +. m.Exec.cpu_time))
              (0., 0.) Queries.q7.Queries.paths
          in
          cpu /. total
        in
        check bool "scan > simple" true (cpu_share xscan > cpu_share simple);
        check bool "scan > schedule" true (cpu_share xscan > cpu_share xschedule));
    Alcotest.test_case "sec 2/3: XScan is robust to layout decay, Simple is not" `Slow
      (fun () ->
        let fresh = bench_store ~scale:0.5 () in
        let decayed = bench_store ~strategy:(Import.Scattered 11) ~scale:0.5 () in
        let ratio plan = time decayed plan Queries.q6' /. time fresh plan Queries.q6' in
        check bool "simple degrades badly" true (ratio simple > 10.0);
        check bool "scan barely moves" true (ratio xscan < 3.0));
  ]

let suite = [ ("shapes", tests) ]
