(* End-to-end correctness of the physical algebra: every plan shape must
   produce exactly the reference evaluator's node set, in document
   order, under every clustering strategy, buffer size, queue minimum and
   memory budget — including runs that fall back mid-flight. *)

module Tree = Xnav_xml.Tree
module Axis = Xnav_xml.Axis
module Node_id = Xnav_store.Node_id
module Import = Xnav_store.Import
module Store = Xnav_store.Store
module Buffer_manager = Xnav_storage.Buffer_manager
module Path = Xnav_xpath.Path
module Xpath_parser = Xnav_xpath.Xpath_parser
module Eval_ref = Xnav_xpath.Eval_ref
module Eval_store = Xnav_core.Eval_store
module Plan = Xnav_core.Plan
module Compile = Xnav_core.Compile
module Exec = Xnav_core.Exec
module Context = Xnav_core.Context

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let all_plans =
  [
    Plan.simple;
    Plan.Simple { dedup_intermediate = false };
    Plan.xschedule ();
    Plan.xschedule ~speculative:false ();
    Plan.xscan ();
  ]

(* Expected result as preorder ranks, via the reference evaluator. *)
let expected_preorders doc path =
  List.map (fun n -> n.Tree.preorder) (Eval_ref.eval doc path)

let preorders_of (import : Import.result) infos =
  let index = Node_id.Tbl.create 256 in
  Array.iteri (fun pre id -> Node_id.Tbl.replace index id pre) import.Import.node_ids;
  List.map (fun (i : Store.info) -> Node_id.Tbl.find index i.Store.id) infos

let run_one ?config ?contexts store plan path = Exec.cold_run ?config ?contexts store path plan

(* Check all plans against the oracle on [doc] for [path]. *)
let agree ?config ?(strategy = Import.Dfs) ?(payload = 200) ?(capacity = 16) doc path =
  let store, import = Gen.import_store ~strategy ~payload ~capacity doc in
  let expected = expected_preorders doc path in
  List.for_all
    (fun plan ->
      let result = run_one ?config store plan path in
      let got = preorders_of import result.Exec.nodes in
      let ok = got = expected in
      if not ok then
        Format.eprintf "MISMATCH plan=%s path=%s@.expected %a@.got %a@."
          (Plan.name plan) (Path.to_string path)
          Fmt.(Dump.list int) expected
          Fmt.(Dump.list int) got;
      ok && Buffer_manager.pinned_count (Store.buffer store) = 0)
    all_plans

let paths =
  [
    "/R";
    "/A";
    "//B";
    "//*";
    "/A/B";
    "/A//B";
    "//A//B";
    "//A/B/C";
    "/self::R/A/C";
    "//node()";
    "/descendant::B";
    "/descendant-or-self::node()/C";
    "//C//B";
    "/A/A/C/B";
  ]

let fixed_tests =
  List.map
    (fun path_str ->
      Alcotest.test_case path_str `Quick (fun () ->
          let path = Xpath_parser.parse path_str in
          check bool "all plans agree" true (agree (Gen.sample_doc ()) path)))
    paths

let strategy_tests =
  List.concat_map
    (fun strategy ->
      List.map
        (fun (label, doc) ->
          Alcotest.test_case
            (Printf.sprintf "%s on %s doc" (Import.strategy_to_string strategy) label)
            `Quick
            (fun () ->
              let path = Xpath_parser.parse "//b//x" in
              check bool "agree" true (agree ~strategy (doc ()) path)))
        [
          ("wide", fun () -> Gen.wide_tree ~children:70 ());
          ("deep", fun () -> Gen.deep_tree ~depth:50 ());
        ])
    [ Import.Dfs; Import.Bfs; Import.Scattered 7 ]

(* Tiny buffers force evictions mid-run; tiny k starves the scheduler of
   alternatives; tiny memory budgets force fallback. All must stay
   correct. *)
let stress_tests =
  [
    Alcotest.test_case "tiny buffer capacity" `Quick (fun () ->
        let path = Xpath_parser.parse "//b" in
        check bool "agree" true (agree ~capacity:3 (Gen.wide_tree ~children:60 ()) path));
    Alcotest.test_case "k = 1" `Quick (fun () ->
        let path = Xpath_parser.parse "//c" in
        let config = { Context.default_config with Context.k = 1 } in
        check bool "agree" true (agree ~config (Gen.wide_tree ~children:60 ()) path));
    Alcotest.test_case "fallback: zero memory budget" `Quick (fun () ->
        let path = Xpath_parser.parse "//b//x" in
        let config = { Context.default_config with Context.memory_budget = 0 } in
        check bool "agree" true (agree ~config (Gen.wide_tree ~children:60 ()) path));
    Alcotest.test_case "fallback: small budget actually triggers" `Quick (fun () ->
        (* Scattered clustering makes speculations arrive long before
           their anchors are reachable, growing S past the budget; under
           DFS the scan resolves them almost immediately. *)
        let doc = Gen.wide_tree ~children:80 () in
        let store, _ = Gen.import_store ~strategy:(Import.Scattered 5) ~payload:200 ~capacity:16 doc in
        let path = Xpath_parser.parse "//b" in
        let config = { Context.default_config with Context.memory_budget = 3 } in
        let result = run_one ~config store (Plan.xscan ()) path in
        check bool "fell back" true result.Exec.metrics.Exec.fell_back;
        check bool "still correct" true
          (result.Exec.count = Eval_ref.count doc path));
    Alcotest.test_case "huge budget does not fall back" `Quick (fun () ->
        let doc = Gen.wide_tree ~children:40 () in
        let store, _ = Gen.import_store ~payload:200 doc in
        let result = run_one store (Plan.xscan ()) (Xpath_parser.parse "//b") in
        check bool "no fallback" false result.Exec.metrics.Exec.fell_back);
  ]

(* The // optimisation: same results with dslash on and off. *)
let dslash_tests =
  [
    Alcotest.test_case "//-optimised scan agrees" `Quick (fun () ->
        let doc = Gen.wide_tree ~children:60 () in
        let store, import = Gen.import_store ~payload:200 doc in
        List.iter
          (fun path_str ->
            let path = Xpath_parser.parse path_str in
            check bool "starts with //" true (Path.starts_with_descendant_any path);
            let plain = run_one store (Plan.xscan ()) path in
            let opt = run_one store (Plan.xscan ~dslash:true ()) path in
            check bool "same results"
              true
              (preorders_of import plain.Exec.nodes = preorders_of import opt.Exec.nodes);
            check int "oracle count" (Eval_ref.count doc path) opt.Exec.count)
          [ "//b"; "//x"; "//b/x"; "//node()" ]);
  ]

(* Multiple context nodes, including duplicates-producing overlaps. *)
let context_tests =
  [
    Alcotest.test_case "multiple contexts, overlapping subtrees" `Quick (fun () ->
        let doc = Gen.sample_doc () in
        let store, import = Gen.import_store ~payload:200 doc in
        ignore (Tree.index doc);
        (* Contexts: all A nodes (computed via the reference). *)
        let contexts_ref = Eval_ref.eval doc (Xpath_parser.parse "//A") in
        let contexts =
          List.map (fun n -> import.Import.node_ids.(n.Tree.preorder)) contexts_ref
        in
        let path = Xpath_parser.parse "descendant-or-self::node()/B" in
        let expected =
          List.sort_uniq Stdlib.compare
            (List.concat_map
               (fun c -> List.map (fun n -> n.Tree.preorder) (Eval_ref.eval c path))
               contexts_ref)
        in
        List.iter
          (fun plan ->
            let result = run_one ~contexts store plan path in
            check (Alcotest.list int) (Plan.name plan) expected
              (preorders_of import result.Exec.nodes))
          all_plans);
    Alcotest.test_case "empty context list yields empty result" `Quick (fun () ->
        let store, _ = Gen.import_store (Gen.sample_doc ()) in
        List.iter
          (fun plan ->
            let r = run_one ~contexts:[] store plan (Xpath_parser.parse "//B") in
            check int (Plan.name plan) 0 r.Exec.count)
          all_plans);
  ]

(* Non-downward paths must work via Simple and be rejected by reordered
   plans. *)
let axis_guard_tests =
  [
    Alcotest.test_case "upward path on simple plan matches oracle" `Quick (fun () ->
        let doc = Gen.sample_doc () in
        let store, import = Gen.import_store ~payload:200 doc in
        let path = Xpath_parser.parse "//B/ancestor::A/following-sibling::*" in
        let result = run_one store Plan.simple path in
        check (Alcotest.list int) "oracle" (expected_preorders doc path)
          (preorders_of import result.Exec.nodes));
    Alcotest.test_case "reordered plan rejects upward axes" `Quick (fun () ->
        let store, _ = Gen.import_store (Gen.sample_doc ()) in
        (match run_one store (Plan.xscan ()) (Xpath_parser.parse "//B/..") with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument"));
    Alcotest.test_case "compile falls back to simple for upward axes" `Quick (fun () ->
        let store, _ = Gen.import_store (Gen.sample_doc ()) in
        match Compile.compile store (Xpath_parser.parse "//B/..") with
        | Plan.Simple _ -> ()
        | Plan.Reordered _ -> Alcotest.fail "expected a simple plan");
  ]

(* Eval_store (logical evaluation over physical storage) agrees too. *)
let eval_store_tests =
  [
    Alcotest.test_case "eval_store agrees with eval_ref" `Quick (fun () ->
        let doc = Gen.sample_doc () in
        let store, import = Gen.import_store ~payload:200 doc in
        List.iter
          (fun path_str ->
            let path = Xpath_parser.parse path_str in
            let got =
              preorders_of import (Eval_store.eval store (Store.root store) path)
            in
            check (Alcotest.list int) path_str (expected_preorders doc path) got)
          (paths @ [ "//B/ancestor::*"; "//C/preceding-sibling::node()" ]));
  ]

(* Randomised: every plan = oracle on arbitrary trees, strategies and
   downward paths. *)
let random_path_gen =
  let open QCheck2.Gen in
  let axis = oneofl [ Axis.Child; Axis.Descendant; Axis.Descendant_or_self; Axis.Self ] in
  let test =
    oneof
      [
        (oneofa Gen.tag_pool >|= fun name -> Path.Name (Xnav_xml.Tag.of_string name));
        return Path.Wildcard;
        return Path.Any_node;
      ]
  in
  list_size (int_range 1 4) (pair axis test)
  >|= List.map (fun (axis, test) -> Path.step axis test)

let plan_props =
  [
    QCheck2.Test.make ~name:"plans: all plans match the oracle on random inputs" ~count:120
      QCheck2.Gen.(
        triple (Gen.tree_gen ~size:45 ()) random_path_gen
          (oneofl [ Import.Dfs; Import.Bfs; Import.Scattered 3 ]))
      ~print:(fun (tree, path, strategy) ->
        Printf.sprintf "%s | %s | %s" (Gen.tree_print tree) (Path.to_string path)
          (Import.strategy_to_string strategy))
      (fun (tree, path, strategy) -> agree ~strategy tree path);
    QCheck2.Test.make ~name:"plans: correct under fallback pressure on random inputs" ~count:60
      QCheck2.Gen.(pair (Gen.tree_gen ~size:45 ()) random_path_gen)
      ~print:(fun (tree, path) ->
        Printf.sprintf "%s | %s" (Gen.tree_print tree) (Path.to_string path))
      (fun (tree, path) ->
        let config = { Context.default_config with Context.memory_budget = 1 } in
        agree ~config tree path);
  ]

(* Metric sanity: scan is sequential, schedule beats simple on I/O. *)
let metric_tests =
  [
    Alcotest.test_case "xscan reads every page exactly once, sequentially" `Quick (fun () ->
        let doc = Gen.wide_tree ~children:120 () in
        let store, import = Gen.import_store ~payload:220 ~capacity:8 doc in
        let r = run_one store (Plan.xscan ()) (Xpath_parser.parse "//b") in
        check int "page reads" import.Import.page_count r.Exec.metrics.Exec.page_reads;
        check int "all sequential" r.Exec.metrics.Exec.page_reads
          r.Exec.metrics.Exec.sequential_reads);
    Alcotest.test_case "xschedule does not visit more clusters than simple touches" `Quick
      (fun () ->
        let doc = Gen.wide_tree ~children:120 () in
        let store, _ = Gen.import_store ~payload:220 ~capacity:8 doc in
        let path = Xpath_parser.parse "//b/x" in
        let sched = run_one store (Plan.xschedule ()) path in
        let simple = run_one store Plan.simple path in
        check bool "io_time not worse" true
          (sched.Exec.metrics.Exec.io_time <= simple.Exec.metrics.Exec.io_time +. 1e-9));
    Alcotest.test_case "speculation avoids revisits" `Quick (fun () ->
        (* With speculation, each cluster is visited at most once. *)
        let doc = Gen.wide_tree ~children:120 () in
        let store, import = Gen.import_store ~payload:220 ~capacity:32 doc in
        let r = run_one store (Plan.xschedule ()) (Xpath_parser.parse "//b/x") in
        check bool "visits <= pages" true
          (r.Exec.metrics.Exec.clusters_visited <= import.Import.page_count));
  ]

let compile_tests =
  [
    Alcotest.test_case "estimate separates regimes" `Quick (fun () ->
        let doc = Gen.wide_tree ~children:200 () in
        let store, _ = Gen.import_store ~payload:220 doc in
        (* Low selectivity: // touches everything -> scan. *)
        let broad = Compile.estimate store (Xpath_parser.parse "//node()") in
        check bool "scan wins broad" true (broad.Compile.cost_scan < broad.Compile.cost_schedule);
        (* A tag that appears nowhere -> schedule. *)
        let narrow = Compile.estimate store (Xpath_parser.parse "/zzz-missing/zzz-missing") in
        check bool "schedule wins narrow" true
          (narrow.Compile.cost_schedule < narrow.Compile.cost_scan));
    Alcotest.test_case "compile honours force choices" `Quick (fun () ->
        let store, _ = Gen.import_store (Gen.sample_doc ()) in
        let path = Xpath_parser.parse "//B" in
        (match Compile.compile ~choice:Compile.Force_scan store path with
        | Plan.Reordered { io = Plan.Io_scan; dslash = true; _ } -> ()
        | plan -> Alcotest.failf "expected dslash scan, got %s" (Plan.name plan));
        match Compile.compile ~choice:Compile.Force_schedule store path with
        | Plan.Reordered { io = Plan.Io_schedule _; _ } -> ()
        | plan -> Alcotest.failf "expected schedule, got %s" (Plan.name plan));
    Alcotest.test_case "force reordered on upward axes rejected" `Quick (fun () ->
        let store, _ = Gen.import_store (Gen.sample_doc ()) in
        (match Compile.compile ~choice:Compile.Force_scan store (Xpath_parser.parse "//B/..") with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument"));
    Alcotest.test_case "auto picks the covering index for a selective child chain" `Quick
      (fun () ->
        let doc = Gen.wide_tree ~children:200 () in
        let store, _ = Gen.import_store ~payload:220 doc in
        let path = Xpath_parser.parse "/b/x" in
        let e = Compile.estimate store path in
        check bool "index beats schedule" true (e.Compile.cost_index < e.Compile.cost_schedule);
        check bool "index beats scan" true (e.Compile.cost_index < e.Compile.cost_scan);
        (match Compile.compile store path with
        | Plan.Reordered { io = Plan.Io_index _; _ } -> ()
        | plan -> Alcotest.failf "expected xindex, got %s" (Plan.name plan));
        (* Non-root contexts cannot use the partition (its classes are
           anchored at the document root). *)
        match Compile.compile ~context_is_root:false store path with
        | Plan.Reordered { io = Plan.Io_index _; _ } ->
          Alcotest.fail "non-root context must not pick xindex"
        | _ -> ());
    Alcotest.test_case "auto never picks residual index seeding for // paths" `Quick (fun () ->
        let doc = Gen.wide_tree ~children:200 () in
        let store, _ = Gen.import_store ~payload:220 doc in
        let e = Compile.estimate store (Xpath_parser.parse "//x") in
        check bool "residual index costs at least a schedule" true
          (e.Compile.cost_index >= e.Compile.cost_schedule);
        match Compile.compile store (Xpath_parser.parse "//x") with
        | Plan.Reordered { io = Plan.Io_index _; _ } ->
          Alcotest.fail "// path must not pick xindex"
        | _ -> ());
    (* Satellite regression for the honest residual pricing: Q6'
       (/site/regions//item) has an indexable /site/regions prefix in
       front of a selective descendant tail. The estimator must price
       that tail from the synopsis frontier — not as a full random-read
       sweep — so the partition-seeded plan undercuts XScan, and the
       seeded run must actually beat the scan on the benchmark store. *)
    Alcotest.test_case "q6' seeds from the partition and beats xscan" `Slow (fun () ->
        let module Gen_x = Xnav_xmark.Gen in
        let module Queries = Xnav_xmark.Queries in
        let module Disk = Xnav_storage.Disk in
        let doc =
          Gen_x.generate
            ~config:{ Gen_x.default_config with Gen_x.scale = 1.0; fidelity = 0.02 }
            ()
        in
        let disk = Disk.create ~config:{ Disk.default_config with Disk.page_size = 4096 } () in
        let import = Import.run disk doc in
        let buffer = Buffer_manager.create ~capacity:256 disk in
        let store = Store.attach buffer import in
        let path = List.hd Queries.q6'.Queries.paths in
        let e = Compile.estimate store path in
        check bool "residual index estimated under scan" true
          (e.Compile.cost_index < e.Compile.cost_scan);
        let xindex = Exec.cold_run ~ordered:false store path (Plan.xindex ()) in
        let xscan = Exec.cold_run ~ordered:false store path (Plan.xscan ()) in
        check bool "partition entries seeded the run" true
          (xindex.Exec.metrics.Exec.index_entries > 0);
        check bool "residual tail engaged" true (xindex.Exec.metrics.Exec.index_clusters > 0);
        check int "same result count as xscan" xscan.Exec.count xindex.Exec.count;
        check bool "seeded plan reads fewer pages than the sweep" true
          (xindex.Exec.metrics.Exec.page_reads < xscan.Exec.metrics.Exec.page_reads);
        check bool "seeded plan beats xscan end to end" true
          (xindex.Exec.metrics.Exec.total_time < xscan.Exec.metrics.Exec.total_time));
  ]

(* Satellite regression: with no synopsis the estimator's per-tag fold
   could reach zero touched nodes (empty and all-upward paths fold over
   no downward steps; absent tags count zero), collapsing every cost and
   letting the tie-break silently pick XScan. The no-stats branch now
   clamps to at least one touched node/page. *)
let no_stats_store () =
  let doc = Gen.wide_tree ~children:200 () in
  let store, _ = Gen.import_store ~payload:220 doc in
  Store.attach_meta (Store.buffer store) ~root:(Store.root store)
    ~first_page:(Store.first_page store) ~page_count:(Store.page_count store)
    ~node_count:(Store.node_count store) ~height:(Store.height store)
    ~tag_counts:(Store.tag_counts store)

let no_stats_tests =
  [
    Alcotest.test_case "estimate without stats clamps to one touched node" `Quick (fun () ->
        let store = no_stats_store () in
        check bool "no synopsis attached" true (Store.doc_stats store = None);
        List.iter
          (fun path ->
            let e = Compile.estimate store path in
            let label = Path.to_string path in
            check bool (label ^ ": touched >= 1") true (e.Compile.touched_nodes >= 1);
            check bool (label ^ ": est_pages >= 1") true (e.Compile.est_pages >= 1))
          [
            [];  (* depth 0: nothing to fold over *)
            Xpath_parser.parse "//B/ancestor::A";  (* upward tail *)
            Xpath_parser.parse "/zzz-missing/zzz-missing";  (* absent tags *)
          ]);
    Alcotest.test_case "no-stats narrow path schedules instead of scanning" `Quick (fun () ->
        let store = no_stats_store () in
        let e = Compile.estimate store (Xpath_parser.parse "/zzz-missing/zzz-missing") in
        check bool "schedule wins narrow" true (e.Compile.cost_schedule < e.Compile.cost_scan);
        match Compile.compile store (Xpath_parser.parse "/zzz-missing/zzz-missing") with
        | Plan.Reordered { io = Plan.Io_schedule _; _ } -> ()
        | plan -> Alcotest.failf "expected schedule, got %s" (Plan.name plan));
    Alcotest.test_case "upward paths compile to simple with or without stats" `Quick (fun () ->
        let path = Xpath_parser.parse "//B/ancestor::A" in
        let with_stats, _ = Gen.import_store (Gen.sample_doc ()) in
        let without = no_stats_store () in
        List.iter
          (fun store ->
            match Compile.compile store path with
            | Plan.Simple _ -> ()
            | plan -> Alcotest.failf "expected simple, got %s" (Plan.name plan))
          [ with_stats; without ]);
  ]

let suite =
  [
    ("plans.fixed-paths", fixed_tests);
    ("plans.strategies", strategy_tests);
    ("plans.stress", stress_tests);
    ("plans.dslash", dslash_tests);
    ("plans.contexts", context_tests);
    ("plans.axis-guards", axis_guard_tests);
    ("plans.eval-store", eval_store_tests);
    Gen.qsuite "plans.props" plan_props;
    ("plans.metrics", metric_tests);
    ("plans.compile", compile_tests);
    ("plans.no-stats", no_stats_tests);
  ]
