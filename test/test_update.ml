(* In-place updates: inserts and deletes must keep the clustered
   representation exactly equivalent to a mirrored in-memory tree —
   structure, document order (via ordpaths), navigation, and plan
   results. *)

module Tree = Xnav_xml.Tree
module Tag = Xnav_xml.Tag
module Ordpath = Xnav_xml.Ordpath
module Node_id = Xnav_store.Node_id
module Import = Xnav_store.Import
module Store = Xnav_store.Store
module Update = Xnav_store.Update
module Buffer_manager = Xnav_storage.Buffer_manager
module Xpath_parser = Xnav_xpath.Xpath_parser
module Eval_ref = Xnav_xpath.Eval_ref
module Result_cache = Xnav_core.Result_cache
module Plan = Xnav_core.Plan
module Exec = Xnav_core.Exec

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* --- mirror operations on the in-memory tree ------------------------------ *)

let array_insert arr i x =
  let n = Array.length arr in
  Array.init (n + 1) (fun j -> if j < i then arr.(j) else if j = i then x else arr.(j - 1))

let mirror_insert (parent : Tree.t) index tag =
  let fresh = Tree.leaf tag in
  fresh.Tree.parent <- Some parent;
  parent.Tree.children <- array_insert parent.Tree.children index fresh;
  fresh

let mirror_delete (node : Tree.t) =
  match node.Tree.parent with
  | None -> invalid_arg "mirror_delete: root"
  | Some parent ->
    parent.Tree.children <-
      Array.of_list (List.filter (fun c -> c != node) (Array.to_list parent.Tree.children))

let index_of (parent : Tree.t) (child : Tree.t) =
  let found = ref (-1) in
  Array.iteri (fun i c -> if c == child then found := i) parent.Tree.children;
  !found

(* --- checks ------------------------------------------------------------------ *)

let doc_order_ok store =
  (* Collect all cores via descendant-or-self from the root; the walk is
     in document order, so ordpaths must be strictly increasing. *)
  let next = Store.global_axis store Xnav_xml.Axis.Descendant_or_self (Store.root store) in
  let rec go prev =
    match next () with
    | None -> true
    | Some (info : Store.info) ->
      (match prev with
      | Some p when Ordpath.compare p info.Store.ordpath >= 0 -> false
      | _ -> go (Some info.Store.ordpath))
  in
  go None

let store_matches store mirror =
  Tree.equal mirror (Gen.reconstruct store)
  && doc_order_ok store
  && Buffer_manager.pinned_count (Store.buffer store) = 0

(* --- unit tests ---------------------------------------------------------------- *)

let fresh_setup ?(payload = 200) () =
  let doc = Gen.sample_doc () in
  let store, import = Gen.import_store ~payload doc in
  (doc, store, import)

let unit_tests =
  [
    Alcotest.test_case "append a last child" `Quick (fun () ->
        let doc, store, import = fresh_setup () in
        ignore (Tree.index doc);
        let id = Update.insert_element store ~parent:import.Import.node_ids.(0) (Tag.of_string "new") in
        let _ = mirror_insert doc (Array.length doc.Tree.children) (Tag.of_string "new") in
        check bool "structure" true (store_matches store doc);
        check bool "readable" true (Tag.equal (Store.info store id).Store.tag (Tag.of_string "new")));
    Alcotest.test_case "insert a first child" `Quick (fun () ->
        let doc, store, import = fresh_setup () in
        ignore (Tree.index doc);
        ignore
          (Update.insert_element store ~parent:import.Import.node_ids.(0) ~position:Update.First
             (Tag.of_string "front"));
        let _ = mirror_insert doc 0 (Tag.of_string "front") in
        check bool "structure" true (store_matches store doc));
    Alcotest.test_case "insert after a middle sibling" `Quick (fun () ->
        let doc, store, import = fresh_setup () in
        ignore (Tree.index doc);
        let second_child = doc.Tree.children.(1) in
        let sid = import.Import.node_ids.(second_child.Tree.preorder) in
        ignore
          (Update.insert_element store ~parent:import.Import.node_ids.(0)
             ~position:(Update.After sid) (Tag.of_string "mid"));
        let _ = mirror_insert doc 2 (Tag.of_string "mid") in
        check bool "structure" true (store_matches store doc));
    Alcotest.test_case "insert under an empty leaf" `Quick (fun () ->
        let doc, store, import = fresh_setup () in
        ignore (Tree.index doc);
        (* The deepest B of the sample doc is a leaf. *)
        let leaf = List.find (fun n -> Array.length n.Tree.children = 0) (Tree.nodes doc) in
        let lid = import.Import.node_ids.(leaf.Tree.preorder) in
        ignore (Update.insert_element store ~parent:lid (Tag.of_string "baby"));
        let _ = mirror_insert leaf 0 (Tag.of_string "baby") in
        check bool "structure" true (store_matches store doc));
    Alcotest.test_case "many inserts overflow into new pages" `Quick (fun () ->
        let doc, store, import = fresh_setup ~payload:150 () in
        ignore (Tree.index doc);
        let before_pages = Store.page_count store in
        for i = 1 to 60 do
          ignore
            (Update.insert_element store ~parent:import.Import.node_ids.(0)
               (Tag.of_string (Printf.sprintf "n%d" (i mod 7))));
          ignore (mirror_insert doc (Array.length doc.Tree.children)
                    (Tag.of_string (Printf.sprintf "n%d" (i mod 7))))
        done;
        check bool "grew" true (Store.page_count store > before_pages);
        check bool "structure" true (store_matches store doc);
        check int "node count tracked" (Tree.size doc) (Store.node_count store));
    Alcotest.test_case "insert_tree grafts a whole subtree" `Quick (fun () ->
        let doc, store, import = fresh_setup () in
        ignore (Tree.index doc);
        let subtree () = Tree.elt "g" [ Tree.elt "h" [ Tree.elt "i" [] ]; Tree.elt "h" [] ] in
        ignore (Update.insert_tree store ~parent:import.Import.node_ids.(0) (subtree ()));
        let graft = subtree () in
        graft.Tree.parent <- Some doc;
        doc.Tree.children <- array_insert doc.Tree.children (Array.length doc.Tree.children) graft;
        check bool "structure" true (store_matches store doc));
    Alcotest.test_case "delete a leaf" `Quick (fun () ->
        let doc, store, import = fresh_setup () in
        ignore (Tree.index doc);
        let leaf = List.find (fun n -> Array.length n.Tree.children = 0) (Tree.nodes doc) in
        let removed = Update.delete_subtree store import.Import.node_ids.(leaf.Tree.preorder) in
        check int "one node" 1 removed;
        mirror_delete leaf;
        check bool "structure" true (store_matches store doc));
    Alcotest.test_case "delete a subtree spanning clusters" `Quick (fun () ->
        let doc, store, import = fresh_setup ~payload:150 () in
        ignore (Tree.index doc);
        let victim = doc.Tree.children.(0) in
        let removed = Update.delete_subtree store import.Import.node_ids.(victim.Tree.preorder) in
        check int "whole subtree" (Tree.size victim) removed;
        mirror_delete victim;
        check bool "structure" true (store_matches store doc);
        check int "node count tracked" (Tree.size doc) (Store.node_count store));
    Alcotest.test_case "deleting the root is rejected" `Quick (fun () ->
        let _, store, import = fresh_setup () in
        match Update.delete_subtree store import.Import.node_ids.(0) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "After sibling under a different parent is rejected" `Quick (fun () ->
        let doc, store, import = fresh_setup () in
        ignore (Tree.index doc);
        let parent = import.Import.node_ids.(0) in
        (* A grandchild is not a child of the root. *)
        let grandchild = doc.Tree.children.(0).Tree.children.(0) in
        let gid = import.Import.node_ids.(grandchild.Tree.preorder) in
        match Update.insert_element store ~parent ~position:(Update.After gid) (Tag.of_string "z") with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "queries stay correct after updates" `Quick (fun () ->
        let doc, store, import = fresh_setup ~payload:180 () in
        ignore (Tree.index doc);
        let parent = import.Import.node_ids.(0) in
        for _ = 1 to 25 do
          ignore (Update.insert_element store ~parent (Tag.of_string "B"));
          ignore (mirror_insert doc (Array.length doc.Tree.children) (Tag.of_string "B"))
        done;
        let path = Xpath_parser.parse "//B" in
        List.iter
          (fun plan ->
            let r = Exec.cold_run ~ordered:false store path plan in
            check int (Plan.name plan) (Eval_ref.count doc path) r.Exec.count)
          [ Plan.simple; Plan.xschedule (); Plan.xscan () ]);
    Alcotest.test_case "inserts at a cluster boundary stamp exactly the written clusters" `Quick
      (fun () ->
        let doc, store, import = fresh_setup ~payload:150 () in
        ignore (Tree.index doc);
        let before_pages = Store.page_count store in
        let log = Hashtbl.create 8 in
        let saved = Store.swap_write_log store (Some log) in
        (* Append until a fresh page opens: the insert that crosses the
           cluster boundary escalates into a page its parent does not
           live in. *)
        let i = ref 0 in
        while Store.page_count store = before_pages && !i < 200 do
          incr i;
          ignore
            (Update.insert_element store ~parent:import.Import.node_ids.(0)
               (Tag.of_string "edge"));
          ignore (mirror_insert doc (Array.length doc.Tree.children) (Tag.of_string "edge"))
        done;
        ignore (Store.swap_write_log store saved);
        check bool "a new page was opened" true (Store.page_count store > before_pages);
        check bool "structure" true (store_matches store doc);
        (* Cluster-granular staleness: every written cluster is stamped,
           and no unwritten cluster is — the boundary crossing must not
           fall back to a store-global stale. *)
        check bool "the write set is non-trivial" true (Hashtbl.length log > 1);
        Hashtbl.iter
          (fun pid () ->
            check bool (Printf.sprintf "written cluster %d stamped" pid) true
              (Store.page_stamp store pid > 0))
          log;
        for pid = Store.first_page store to Store.first_page store + Store.page_count store - 1 do
          if not (Hashtbl.mem log pid) then
            check int (Printf.sprintf "unwritten cluster %d unstamped" pid) 0
              (Store.page_stamp store pid)
        done);
    Alcotest.test_case "deleting a cluster's last record empties the page cleanly" `Quick
      (fun () ->
        let doc = Gen.sample_doc () in
        ignore (Tree.index doc);
        (* Isolate one leaf in its own cluster, so the delete removes the
           cluster's final record. *)
        let leaf = List.find (fun n -> Array.length n.Tree.children = 0) (Tree.nodes doc) in
        let assignment =
          Array.init (Tree.size doc) (fun pre -> if pre = leaf.Tree.preorder then 1 else 0)
        in
        let store, import = Gen.import_store ~strategy:(Import.Explicit assignment) doc in
        let lid = import.Import.node_ids.(leaf.Tree.preorder) in
        let pid = lid.Node_id.pid in
        let stamp0 = Store.page_stamp store pid in
        let removed = Update.delete_subtree store lid in
        check int "one node" 1 removed;
        mirror_delete leaf;
        check bool "structure" true (store_matches store doc);
        check bool "the emptied cluster is stamped" true (Store.page_stamp store pid > stamp0);
        check int "the page is not reclaimed" 2 (Store.page_count store);
        (* The emptied page still hosts fresh records. *)
        ignore (Update.insert_element store ~parent:import.Import.node_ids.(0) (Tag.of_string "re"));
        ignore (mirror_insert doc (Array.length doc.Tree.children) (Tag.of_string "re"));
        check bool "structure after reuse" true (store_matches store doc));
    Alcotest.test_case "interleaved insert/delete stale a cluster's entries exactly once" `Quick
      (fun () ->
        let doc, store, import = fresh_setup () in
        ignore (Tree.index doc);
        let root_id = import.Import.node_ids.(0) in
        Result_cache.clear ();
        Result_cache.reset_stats ();
        let log = Hashtbl.create 8 in
        let saved = Store.swap_write_log store (Some log) in
        let ws () = Array.of_list (Hashtbl.fold (fun p () acc -> p :: acc) log []) in
        let fresh = Update.insert_element store ~parent:root_id (Tag.of_string "tmp") in
        let insert_set = ws () in
        (* A cached statement whose footprint is the insert's own write
           set: the interleaved delete hits the same cluster (both ops
           write the fresh node's page). *)
        ignore (Result_cache.add ~clusters:insert_set store "/probe" ~count:0 []);
        Hashtbl.reset log;
        ignore (Update.delete_subtree store fresh);
        check bool "the delete wrote the insert's cluster" true
          (Array.exists (fun p -> p = fresh.Node_id.pid) insert_set
          && Hashtbl.mem log fresh.Node_id.pid);
        check int "the delete stales the entry" 1 (Result_cache.stale_clusters store (ws ()));
        check int "a second signal for the same cluster finds nothing" 0
          (Result_cache.stale_clusters store (ws ()));
        ignore (Store.swap_write_log store saved);
        check int "staleness was signalled exactly once" 1 (Result_cache.stats ()).Result_cache.stales;
        check bool "structure" true (store_matches store doc);
        Result_cache.clear ();
        Result_cache.reset_stats ());
    Alcotest.test_case "inserts stale the synopsis and re-plan away from the index" `Quick
      (fun () ->
        let doc, store, import = fresh_setup () in
        ignore (Tree.index doc);
        let path = Xpath_parser.parse "/A/B" in
        (* Fresh import: a pure child chain is answered by the covering
           index. *)
        check bool "stats fresh before update" true (Store.stats_fresh store);
        (match Xnav_core.Compile.compile store path with
        | Plan.Reordered { io = Plan.Io_index _; _ } -> ()
        | plan -> Alcotest.failf "fresh store should pick xindex, got %s" (Plan.name plan));
        (* Insert a new B under the first A: the frozen partition no
           longer describes the store. *)
        let first_a = doc.Tree.children.(0) in
        let pid = import.Import.node_ids.(first_a.Tree.preorder) in
        ignore (Update.insert_element store ~parent:pid (Tag.of_string "B"));
        ignore (mirror_insert first_a (Array.length first_a.Tree.children) (Tag.of_string "B"));
        check bool "stats stale after insert" false (Store.stats_fresh store);
        let e = Xnav_core.Compile.estimate store path in
        check bool "cost_index infinite when stale" true
          (e.Xnav_core.Compile.cost_index = infinity);
        (match Xnav_core.Compile.compile store path with
        | Plan.Reordered { io = Plan.Io_index _; _ } ->
          Alcotest.fail "stale store must not pick xindex"
        | _ -> ());
        (* A forced index plan degrades to the schedule pipeline — and
           therefore sees the inserted node the partition missed. *)
        let forced = Exec.cold_run ~ordered:false store path (Plan.xindex ()) in
        check int "forced index sees the insert" (Eval_ref.count doc path) forced.Exec.count;
        check int "index counters untouched in degraded mode" 0
          forced.Exec.metrics.Exec.index_entries);
  ]

(* --- randomised mirror workout -------------------------------------------------- *)

type op = Op_insert of int * int * string | Op_delete of int
(* insert: (parent pick, position pick, tag); delete: victim pick. The
   int picks are reduced modulo the live node count at application time. *)

let op_gen =
  let open QCheck2.Gen in
  oneof
    [
      ( int_range 0 1000 >>= fun parent ->
        int_range 0 1000 >>= fun pos ->
        oneofa Gen.tag_pool >|= fun tag -> Op_insert (parent, pos, tag) );
      (int_range 0 1000 >|= fun victim -> Op_delete victim);
    ]

let apply_ops doc store import ops =
  ignore (Tree.index doc);
  (* id <-> tree-node correspondence, maintained across updates. *)
  let by_id = Node_id.Tbl.create 64 in
  Array.iteri
    (fun pre id ->
      let node = List.nth (Tree.nodes doc) pre in
      Node_id.Tbl.replace by_id id node)
    import.Xnav_store.Import.node_ids;
  let live () =
    (* Document-order list of (id, tree node). *)
    let next = Store.global_axis store Xnav_xml.Axis.Descendant_or_self (Store.root store) in
    let rec go acc =
      match next () with
      | None -> List.rev acc
      | Some (info : Store.info) -> go ((info.Store.id, Node_id.Tbl.find by_id info.Store.id) :: acc)
    in
    go []
  in
  List.iter
    (fun op ->
      let nodes = live () in
      let n = List.length nodes in
      match op with
      | Op_insert (ppick, pos_pick, tag_name) ->
        let pid, pnode = List.nth nodes (ppick mod n) in
        let tag = Tag.of_string tag_name in
        let arity = Array.length pnode.Tree.children in
        let position, index =
          match pos_pick mod 3 with
          | 0 -> (Update.First, 0)
          | 1 -> (Update.Last, arity)
          | _ ->
            if arity = 0 then (Update.Last, 0)
            else begin
              let k = pos_pick mod arity in
              let sibling = pnode.Tree.children.(k) in
              (* Find the sibling's id through the correspondence. *)
              let sid =
                List.find (fun (_, node) -> node == sibling) nodes |> fst
              in
              (Update.After sid, k + 1)
            end
        in
        let new_id = Update.insert_element store ~parent:pid ~position tag in
        let fresh = mirror_insert pnode index tag in
        Node_id.Tbl.replace by_id new_id fresh
      | Op_delete vpick ->
        if n > 1 then begin
          (* Skip index 0: the root. *)
          let vid, vnode = List.nth nodes (1 + (vpick mod (n - 1))) in
          ignore (Update.delete_subtree store vid);
          mirror_delete vnode
        end)
    ops

let props =
  [
    QCheck2.Test.make ~name:"update: random op sequences keep store == mirror" ~count:40
      QCheck2.Gen.(
        triple (Gen.tree_gen ~size:25 ())
          (list_size (int_range 1 25) op_gen)
          (oneofl [ Import.Dfs; Import.Scattered 13 ]))
      ~print:(fun (tree, ops, strategy) ->
        Printf.sprintf "%s | %d ops | %s" (Gen.tree_print tree) (List.length ops)
          (Import.strategy_to_string strategy))
      (fun (tree, ops, strategy) ->
        let store, import = Gen.import_store ~strategy ~payload:170 tree in
        apply_ops tree store import ops;
        store_matches store tree
        && Store.node_count store = Tree.size tree
        &&
        (* Plans agree with the oracle on the mutated document. *)
        let path = Xpath_parser.parse "//b//c" in
        let expected = Eval_ref.count tree path in
        List.for_all
          (fun plan -> (Exec.cold_run ~ordered:false store path plan).Exec.count = expected)
          [ Plan.simple; Plan.xschedule (); Plan.xscan () ]);
  ]

let suite = [ ("update", unit_tests); Gen.qsuite "update.props" props ]
