(* Disk-image persistence: save/load must round-trip documents,
   queries and catalog metadata exactly. *)

module Tree = Xnav_xml.Tree
module Import = Xnav_store.Import
module Store = Xnav_store.Store
module Image = Xnav_store.Image
module Export = Xnav_store.Export
module Update = Xnav_store.Update
module Buffer_manager = Xnav_storage.Buffer_manager
module Xpath_parser = Xnav_xpath.Xpath_parser
module Eval_ref = Xnav_xpath.Eval_ref
module Plan = Xnav_core.Plan
module Exec = Xnav_core.Exec

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let temp_path = Filename.temp_file "xnav_image" ".xnav"

let tests =
  [
    Alcotest.test_case "round-trips a document" `Quick (fun () ->
        let doc = Gen.sample_doc () in
        let store, _ = Gen.import_store ~payload:200 doc in
        Image.save temp_path [ store ];
        (match Image.load ~capacity:16 temp_path with
        | [ loaded ] ->
          check bool "tree equal" true (Tree.equal doc (Export.document loaded));
          check int "node count" (Store.node_count store) (Store.node_count loaded);
          check int "pages" (Store.page_count store) (Store.page_count loaded);
          check bool "tags kept" true (Store.tag_counts loaded = Store.tag_counts store)
        | _ -> Alcotest.fail "expected one store"));
    Alcotest.test_case "queries agree before and after persistence" `Quick (fun () ->
        let doc = Gen.wide_tree ~children:60 () in
        let store, _ = Gen.import_store ~payload:220 doc in
        Image.save temp_path [ store ];
        let loaded = List.hd (Image.load ~capacity:32 temp_path) in
        let path = Xpath_parser.parse "//b/x" in
        List.iter
          (fun plan ->
            check int (Plan.name plan) (Eval_ref.count doc path)
              (Exec.cold_run ~ordered:false loaded path plan).Exec.count)
          [ Plan.simple; Plan.xschedule (); Plan.xscan () ]);
    Alcotest.test_case "multiple documents share one image" `Quick (fun () ->
        let disk = Gen.small_disk ~page_size:512 () in
        let i1 = Import.run disk (Gen.sample_doc ()) in
        let i2 = Import.run disk (Gen.deep_tree ~depth:20 ()) in
        let buffer = Buffer_manager.create ~capacity:16 disk in
        let s1 = Store.attach buffer i1 and s2 = Store.attach buffer i2 in
        Image.save temp_path [ s1; s2 ];
        (match Image.load ~capacity:16 temp_path with
        | [ l1; l2 ] ->
          check bool "doc1" true (Tree.equal (Gen.sample_doc ()) (Export.document l1));
          check bool "doc2" true (Tree.equal (Gen.deep_tree ~depth:20 ()) (Export.document l2))
        | _ -> Alcotest.fail "expected two stores"));
    Alcotest.test_case "updates made before save survive" `Quick (fun () ->
        let doc = Gen.sample_doc () in
        let store, _ = Gen.import_store ~payload:200 doc in
        ignore
          (Update.insert_tree store ~parent:(Store.root store)
             (Tree.elt "patch" [ Tree.elt "leaf" [] ]));
        Image.save temp_path [ store ];
        let loaded = List.hd (Image.load temp_path) in
        let exported = Export.document loaded in
        check int "children" (Array.length doc.Tree.children + 1)
          (Array.length exported.Tree.children);
        check int "node count" (Tree.size doc + 2) (Store.node_count loaded));
    Alcotest.test_case "a loaded store accepts further updates" `Quick (fun () ->
        let doc = Gen.sample_doc () in
        let store, _ = Gen.import_store ~payload:200 doc in
        Image.save temp_path [ store ];
        let loaded = List.hd (Image.load temp_path) in
        ignore (Update.insert_element loaded ~parent:(Store.root loaded) (Xnav_xml.Tag.of_string "late"));
        check int "grown" (Tree.size doc + 1) (Store.node_count loaded));
    Alcotest.test_case "the path partition round-trips through the codec" `Quick (fun () ->
        let doc = Gen.wide_tree ~children:60 () in
        let _, import = Gen.import_store ~payload:220 doc in
        let partition = import.Import.partition in
        let buf = Buffer.create 1024 in
        Xnav_store.Path_partition.encode buf partition;
        let s = Buffer.contents buf in
        let decoded, consumed = Xnav_store.Path_partition.decode s 0 in
        check int "codec consumes exactly what it wrote" (String.length s) consumed;
        check bool "decoded partition equals the original" true
          (Xnav_store.Path_partition.equal partition decoded);
        check int "entries cover every node" (Tree.size doc)
          (Xnav_store.Path_partition.node_count decoded));
    Alcotest.test_case "a fresh partition survives persistence, a stale one does not" `Quick
      (fun () ->
        let doc = Gen.wide_tree ~children:60 () in
        let store, _ = Gen.import_store ~payload:220 doc in
        Image.save temp_path [ store ];
        let loaded = List.hd (Image.load ~capacity:32 temp_path) in
        (match (Store.partition store, Store.partition loaded) with
        | Some p, Some l ->
          check bool "loaded partition equals the saved one" true
            (Xnav_store.Path_partition.equal p l)
        | _ -> Alcotest.fail "fresh save must carry the partition");
        check bool "loaded partition is fresh" true (Store.stats_fresh loaded);
        (* Index plans work on the loaded store. *)
        let path = Xpath_parser.parse "/b/x" in
        check int "covering index on the loaded store" (Eval_ref.count doc path)
          (Exec.cold_run ~ordered:false loaded path (Plan.xindex ())).Exec.count;
        (* Mutate, save again: the stale synopsis must not be reborn as a
           fresh one on load. *)
        ignore (Update.insert_element loaded ~parent:(Store.root loaded) (Xnav_xml.Tag.of_string "b"));
        Image.save temp_path [ loaded ];
        let reloaded = List.hd (Image.load ~capacity:32 temp_path) in
        check bool "stale partition dropped on save" true (Store.partition reloaded = None);
        check bool "stale synopsis dropped on save" true (Store.doc_stats reloaded = None));
    Alcotest.test_case "corrupt images are rejected" `Quick (fun () ->
        let oc = open_out_bin temp_path in
        output_string oc "NOTANIMAGE-----";
        close_out oc;
        (match Image.load temp_path with
        | exception Image.Corrupt _ -> ()
        | _ -> Alcotest.fail "expected Corrupt");
        let oc = open_out_bin temp_path in
        output_string oc "XNAVIMG1";
        close_out oc;
        match Image.load temp_path with
        | exception Image.Corrupt _ -> ()
        | _ -> Alcotest.fail "expected Corrupt on truncation");
    Alcotest.test_case "save requires a shared disk" `Quick (fun () ->
        let s1, _ = Gen.import_store (Gen.sample_doc ()) in
        let s2, _ = Gen.import_store (Gen.sample_doc ()) in
        match Image.save temp_path [ s1; s2 ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
  ]

let suite = [ ("image", tests) ]
