(* Shared generators and helpers for the test suite. *)

module Tree = Xnav_xml.Tree
module Tag = Xnav_xml.Tag

let tag_pool = [| "a"; "b"; "c"; "d"; "e" |]

(* A random labeled ordered tree of at most [size] nodes. *)
let tree_gen ?(tags = tag_pool) ~size () : Tree.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let tag = oneofa tags >|= Tag.of_string in
  let rec build budget =
    if budget <= 1 then tag >|= fun t -> (Tree.leaf t, 1)
    else begin
      int_range 0 (min 5 (budget - 1)) >>= fun arity ->
      tag >>= fun t ->
      let rec children budget_left acc used = function
        | 0 -> return (List.rev acc, used)
        | k ->
          build (max 1 (budget_left / k)) >>= fun (child, n) ->
          children (budget_left - n) (child :: acc) (used + n) (k - 1)
      in
      children (budget - 1) [] 0 arity >|= fun (kids, used) -> (Tree.make t kids, used + 1)
    end
  in
  int_range 1 size >>= fun budget ->
  build budget >|= fst

let tree_print tree = Format.asprintf "%a" Tree.pp tree

(* A wide tree: a root with many children, some of which have small
   subtrees — exercises sibling-run splitting across clusters. *)
let wide_tree ~children () =
  let kid i =
    let t = Tag.of_string tag_pool.(i mod Array.length tag_pool) in
    if i mod 3 = 0 then Tree.make t [ Tree.leaf (Tag.of_string "x"); Tree.leaf (Tag.of_string "y") ]
    else Tree.leaf t
  in
  Tree.make (Tag.of_string "root") (List.init children kid)

(* A deep path-shaped tree. *)
let deep_tree ~depth () =
  let rec go d =
    let t = Tag.of_string tag_pool.(d mod Array.length tag_pool) in
    if d = 0 then Tree.leaf t else Tree.make t [ go (d - 1) ]
  in
  go depth

(* The running example document used across tests: shaped after the
   paper's Fig. 2 (tags A, B, C under a root), sized so that small
   payloads split it into several clusters. *)
let sample_doc () =
  let e = Tree.elt in
  e "R"
    [
      e "A" [ e "B" [ e "C" [] ]; e "C" [ e "B" [] ] ];
      e "C" [ e "A" [ e "B" [] ]; e "B" [] ];
      e "A" [ e "A" [ e "C" [ e "B" [] ] ] ];
    ]

(* CI determinism: every property test and differential tier runs from
   this seed, so a CI failure reproduces locally with the exact same
   cases. Override with XNAV_TEST_SEED=<int> (printed at suite start). *)
let test_seed =
  match Sys.getenv_opt "XNAV_TEST_SEED" with
  | None -> 20050614
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> n
    | None -> invalid_arg (Printf.sprintf "XNAV_TEST_SEED must be an integer, got %S" s))

let () = Printf.printf "test seed: %d (override with XNAV_TEST_SEED)\n%!" test_seed

(* Each property test gets its own generator state from the fixed seed,
   so determinism survives test filtering and reordering. *)
let qsuite name tests =
  ( name,
    List.map
      (fun t -> QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| test_seed |]) t)
      tests )

(* Fresh disk with small pages (forces clustering on small documents). *)
let small_disk ?(page_size = 512) () =
  let config = { Xnav_storage.Disk.default_config with page_size } in
  Xnav_storage.Disk.create ~config ()

let import_store ?strategy ?payload ?(page_size = 512) ?(capacity = 64) tree =
  let disk = small_disk ~page_size () in
  let import = Xnav_store.Import.run ?strategy ?payload disk tree in
  let buffer = Xnav_storage.Buffer_manager.create ~capacity disk in
  (Xnav_store.Store.attach buffer import, import)

(* Rebuild a Tree.t from the store by walking the global child axis —
   the canonical structure check used by import and update tests. *)
let reconstruct store =
  let module Store = Xnav_store.Store in
  let rec build (id : Xnav_store.Node_id.t) =
    let inf = Store.info store id in
    let next = Store.global_axis store Xnav_xml.Axis.Child id in
    let rec kids acc =
      match next () with
      | None -> List.rev acc
      | Some (child : Store.info) -> kids (build child.Store.id :: acc)
    in
    Xnav_xml.Tree.make inf.Store.tag (kids [])
  in
  build (Store.root store)
