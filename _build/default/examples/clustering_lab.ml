(* Clustering lab: how physical layout quality changes plan costs.

   The same XMark document is imported three times — document-order DFS
   packing (a fresh bulk load), BFS (siblings together, parents apart),
   and a scattered layout modelling a store fragmented by years of
   updates — and each plan runs against each layout. The reordering
   plans' robustness against layout decay is one of the paper's selling
   points: XScan's cost is layout-independent, XSchedule degrades
   gracefully, the Simple method falls off a cliff.

   Run with: dune exec examples/clustering_lab.exe *)

module Disk = Xnav_storage.Disk
module Buffer_manager = Xnav_storage.Buffer_manager
module Import = Xnav_store.Import
module Store = Xnav_store.Store
module Path = Xnav_xpath.Path
module Xpath_parser = Xnav_xpath.Xpath_parser
module Plan = Xnav_core.Plan
module Exec = Xnav_core.Exec
module Xmark = Xnav_xmark.Gen

let () =
  let config = { Xmark.default_config with Xmark.fidelity = 0.02 } in
  let doc = Xmark.generate ~config () in
  let path = Path.from_root_element (Xpath_parser.parse "/site/regions//item/name") in
  let plans = [ Plan.simple; Plan.xschedule ~speculative:false (); Plan.xscan () ] in

  Printf.printf "query: /site/regions//item/name\n\n";
  Printf.printf "%-16s" "layout";
  List.iter (fun p -> Printf.printf "%16s" (Plan.name p)) plans;
  Printf.printf "%10s%10s\n" "pages" "borders";

  List.iter
    (fun strategy ->
      (* A fresh disk per layout so page numbering starts at zero. *)
      let disk = Disk.create () in
      let import = Import.run ~strategy disk doc in
      let buffer = Buffer_manager.create ~capacity:128 disk in
      let store = Store.attach buffer import in
      Printf.printf "%-16s" (Import.strategy_to_string strategy);
      let baseline = ref 0.0 in
      List.iteri
        (fun i plan ->
          let r = Exec.cold_run ~ordered:false store path plan in
          let t = r.Exec.metrics.Exec.total_time in
          if i = 0 then baseline := t;
          Printf.printf "%9.4fs%5.1fx" t (t /. Float.max 1e-9 !baseline))
        plans;
      Printf.printf "%10d%10d\n" import.Import.page_count import.Import.border_count)
    [ Import.Dfs; Import.Bfs; Import.Scattered 99 ];

  print_newline ();
  print_endline
    "(times normalised within each row against the Simple plan; note how the\n\
     scan's absolute cost barely moves across layouts while Simple explodes\n\
     on the scattered one)"
