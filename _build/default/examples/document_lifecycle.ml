(* Document lifecycle: everything a downstream user does with the
   library, end to end — parse, cluster, query (with predicates),
   update in place, persist, reload, export.

   Run with: dune exec examples/document_lifecycle.exe *)

module Tree = Xnav_xml.Tree
module Tag = Xnav_xml.Tag
module Xml_parser = Xnav_xml.Xml_parser
module Disk = Xnav_storage.Disk
module Buffer_manager = Xnav_storage.Buffer_manager
module Import = Xnav_store.Import
module Store = Xnav_store.Store
module Update = Xnav_store.Update
module Export = Xnav_store.Export
module Image = Xnav_store.Image
module Query = Xnav_xpath.Query
module Xpath_parser = Xnav_xpath.Xpath_parser
module Query_exec = Xnav_core.Query_exec

let () =
  (* 1. Parse an XML document (a small bug tracker). *)
  let xml =
    "<tracker>\
     <project><name/><bug><status/><severity/><comment/></bug>\
     <bug><status/><comment/><comment/></bug></project>\
     <project><name/><bug><status/><severity/></bug></project>\
     </tracker>"
  in
  let doc = Xml_parser.parse_string xml in
  Printf.printf "parsed %d elements\n" (Tree.size doc);

  (* 2. Cluster onto a (simulated) disk. *)
  let disk = Disk.create ~config:{ Disk.default_config with Disk.page_size = 512 } () in
  let import = Import.run disk doc in
  let buffer = Buffer_manager.create ~capacity:32 disk in
  let store = Store.attach buffer import in
  Printf.printf "clustered onto %d pages\n" import.Import.page_count;

  (* 3. Query with a predicate: bugs that have a severity. *)
  let query = Xpath_parser.parse_query "//bug[severity]" in
  let r = Query_exec.run ~cold:true store query in
  Printf.printf "//bug[severity] -> %d of %d bugs\n" r.Query_exec.count
    (Query_exec.run ~cold:true store (Xpath_parser.parse_query "//bug")).Query_exec.count;

  (* 4. Update in place: file a new bug with two comments, close an old
     one (delete it). *)
  let projects = r.Query_exec.nodes in
  ignore projects;
  let first_project =
    match (Query_exec.run ~cold:false store (Xpath_parser.parse_query "/project")).Query_exec.nodes with
    | p :: _ -> p.Store.id
    | [] -> failwith "no project"
  in
  let new_bug =
    Tree.elt "bug" [ Tree.elt "status" []; Tree.elt "severity" []; Tree.elt "comment" [] ]
  in
  ignore (Update.insert_tree store ~parent:first_project new_bug);
  (match (Query_exec.run ~cold:false store (Xpath_parser.parse_query "//bug[not(severity)]")).Query_exec.nodes with
  | victim :: _ ->
    let removed = Update.delete_subtree store victim.Store.id in
    Printf.printf "deleted a severity-less bug (%d nodes)\n" removed
  | [] -> ());
  Printf.printf "after updates: %d elements\n" (Store.node_count store);

  (* 5. Persist, reload, and export. *)
  let path = Filename.temp_file "lifecycle" ".xnav" in
  Image.save path [ store ];
  let reloaded = List.hd (Image.load ~capacity:32 path) in
  Printf.printf "persisted and reloaded: %d elements on %d pages\n"
    (Store.node_count reloaded) (Store.page_count reloaded);
  print_endline "exported document:";
  print_endline (Export.to_xml reloaded (Store.root reloaded));
  Sys.remove path
