examples/auction_analytics.ml: Float Format List Printf Xnav_core Xnav_storage Xnav_store Xnav_xmark Xnav_xpath
