examples/quickstart.mli:
