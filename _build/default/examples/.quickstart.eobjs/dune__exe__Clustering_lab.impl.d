examples/clustering_lab.ml: Float List Printf Xnav_core Xnav_storage Xnav_store Xnav_xmark Xnav_xpath
