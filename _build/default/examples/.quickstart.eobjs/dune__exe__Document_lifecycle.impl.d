examples/document_lifecycle.ml: Filename List Printf Sys Xnav_core Xnav_storage Xnav_store Xnav_xml Xnav_xpath
