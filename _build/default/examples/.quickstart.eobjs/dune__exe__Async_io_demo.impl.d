examples/async_io_demo.ml: List Printf String Xnav_core Xnav_storage Xnav_store Xnav_xmark Xnav_xml Xnav_xpath
