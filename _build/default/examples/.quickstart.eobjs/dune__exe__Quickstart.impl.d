examples/quickstart.ml: Format List Printf Xnav_core Xnav_storage Xnav_store Xnav_xml Xnav_xpath
