examples/document_lifecycle.mli:
