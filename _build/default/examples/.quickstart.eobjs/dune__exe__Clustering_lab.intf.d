examples/clustering_lab.mli:
