examples/async_io_demo.mli:
