(* Quickstart: the full pipeline in ~40 effective lines.

   Build a document, cluster it onto a simulated disk, and evaluate one
   XPath with the three physical plans of the paper, comparing their
   simulated cost.

   Run with: dune exec examples/quickstart.exe *)

module Tree = Xnav_xml.Tree
module Disk = Xnav_storage.Disk
module Buffer_manager = Xnav_storage.Buffer_manager
module Import = Xnav_store.Import
module Store = Xnav_store.Store
module Xpath_parser = Xnav_xpath.Xpath_parser
module Plan = Xnav_core.Plan
module Exec = Xnav_core.Exec

let () =
  (* 1. A document: a tiny library catalogue. *)
  let book title_words =
    Tree.elt "book"
      [ Tree.elt "title" (List.init title_words (fun _ -> Tree.elt "word" [])); Tree.elt "author" [] ]
  in
  let shelf n = Tree.elt "shelf" (List.init n (fun i -> book (1 + (i mod 3)))) in
  let doc = Tree.elt "library" [ shelf 40; shelf 25; shelf 60 ] in
  Printf.printf "document: %d elements\n" (Tree.size doc);

  (* 2. Storage: a simulated disk with small pages so that the document
     spans many clusters, and a small buffer pool. *)
  let disk = Disk.create ~config:{ Disk.default_config with Disk.page_size = 512 } () in
  let import = Import.run ~strategy:Import.Dfs disk doc in
  let buffer = Buffer_manager.create ~capacity:16 disk in
  let store = Store.attach buffer import in
  Printf.printf "clustered into %d pages (%d border records)\n\n" import.Import.page_count
    import.Import.border_count;

  (* 3. A query, evaluated with each plan. All plans return the same
     node set; they differ in the order they touch the disk. *)
  let path = Xpath_parser.parse "//book/title/word" in
  List.iter
    (fun plan ->
      let r = Exec.cold_run store path plan in
      Printf.printf "%-15s count=%d  simulated total %.4fs (io %.4fs, cpu %.4fs)  reads=%d (%d random)\n"
        (Plan.name plan) r.Exec.count r.Exec.metrics.Exec.total_time r.Exec.metrics.Exec.io_time
        r.Exec.metrics.Exec.cpu_time r.Exec.metrics.Exec.page_reads
        r.Exec.metrics.Exec.random_reads)
    [ Plan.simple; Plan.xschedule (); Plan.xscan () ];

  (* 4. Results stream with full node information. *)
  let r = Exec.cold_run store (Xpath_parser.parse "/shelf/book") Plan.simple in
  match r.Exec.nodes with
  | first :: _ ->
    Format.printf "\nfirst /shelf/book result: id=%a tag=%a ordpath=%a\n" Xnav_store.Node_id.pp
      first.Store.id Xnav_xml.Tag.pp first.Store.tag Xnav_xml.Ordpath.pp first.Store.ordpath
  | [] -> print_endline "no results"
