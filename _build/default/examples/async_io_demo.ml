(* Async I/O demo: reproduces the paper's motivating Example 1 and shows
   how the reordering layers below XSchedule earn their keep.

   Part 1 — a flat document on a handful of pages, traversed naively:
   the page access order jumps around exactly like the 0,3,1,2 pattern
   of the paper's Figure 1.

   Part 2 — the same XSchedule plan run over every I/O scheduling policy
   (FIFO = no reordering, SSTF, elevator, C-SCAN): seek distance and
   simulated time drop as the policy gets smarter. This is the paper's
   claim that deferring and batching I/O lets "the lower system layers"
   make better decisions — here those layers are explicit and swappable.

   Run with: dune exec examples/async_io_demo.exe *)

module Tree = Xnav_xml.Tree
module Disk = Xnav_storage.Disk
module Buffer_manager = Xnav_storage.Buffer_manager
module Io_scheduler = Xnav_storage.Io_scheduler
module Import = Xnav_store.Import
module Store = Xnav_store.Store
module Path = Xnav_xpath.Path
module Xpath_parser = Xnav_xpath.Xpath_parser
module Plan = Xnav_core.Plan
module Exec = Xnav_core.Exec
module Xmark = Xnav_xmark.Gen

let () =
  (* Part 1: naive traversal's page access order. *)
  print_endline "== Example 1: page access order of a naive traversal ==";
  let doc =
    Tree.elt "a" (List.init 24 (fun i -> Tree.elt (Printf.sprintf "c%d" i) []))
  in
  let disk = Disk.create ~config:{ Disk.default_config with Disk.page_size = 256 } () in
  (* A scattered layout stands in for the paper's Figure 1, where node a
     shares page 0 with g while b..f live on later pages: traversing the
     children in document order hops across the pages. *)
  let import = Import.run ~strategy:(Import.Scattered 3) ~payload:200 disk doc in
  let buffer = Buffer_manager.create ~capacity:16 disk in
  let store = Store.attach buffer import in
  Disk.set_trace disk true;
  let r = Exec.cold_run store (Xpath_parser.parse "//node()") Plan.simple in
  Printf.printf "descendant-or-self::node() found %d nodes on %d pages\n" r.Exec.count
    import.Import.page_count;
  Printf.printf "page access order: %s\n"
    (String.concat "," (List.map string_of_int (Disk.trace disk)));
  Printf.printf "seek distance: %d pages\n\n" (Disk.stats disk).Disk.seek_distance;
  Disk.set_trace disk false;

  (* Part 2: the same plan under different I/O scheduling policies. *)
  print_endline "== XSchedule under different async I/O policies ==";
  let config = { Xmark.default_config with Xmark.fidelity = 0.02 } in
  let xmark_doc = Xmark.generate ~config () in
  let path = Path.from_root_element (Xpath_parser.parse "/site//annotation/author") in
  Printf.printf "%-10s %12s %12s %12s\n" "policy" "io[s]" "seek-dist" "random";
  List.iter
    (fun policy ->
      let disk = Disk.create () in
      let import = Import.run ~strategy:(Import.Scattered 4) disk xmark_doc in
      let buffer = Buffer_manager.create ~capacity:256 ~policy disk in
      let store = Store.attach buffer import in
      let r = Exec.cold_run ~ordered:false store path (Plan.xschedule ~speculative:false ()) in
      ignore import;
      let m = r.Exec.metrics in
      Printf.printf "%-10s %12.4f %12d %12d\n"
        (Io_scheduler.policy_to_string policy)
        m.Exec.io_time m.Exec.seek_distance m.Exec.random_reads)
    Io_scheduler.all_policies;
  ignore store
