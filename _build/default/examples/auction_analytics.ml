(* Auction analytics: the XMark workload end to end, with the cost-based
   plan chooser deciding between XSchedule and XScan per query — the
   "cost model to support the choice of the I/O-performing operator" the
   paper names as future work.

   Run with: dune exec examples/auction_analytics.exe *)

module Disk = Xnav_storage.Disk
module Buffer_manager = Xnav_storage.Buffer_manager
module Import = Xnav_store.Import
module Store = Xnav_store.Store
module Path = Xnav_xpath.Path
module Xpath_parser = Xnav_xpath.Xpath_parser
module Plan = Xnav_core.Plan
module Compile = Xnav_core.Compile
module Exec = Xnav_core.Exec
module Xmark = Xnav_xmark.Gen

let parse s = Path.from_root_element (Xpath_parser.parse s)

let analytics =
  [
    ("auction volume", "/site/closed_auctions/closed_auction/price");
    ("open bids", "/site/open_auctions/open_auction/bidder/increase");
    ("all prose markup", "/site//keyword");
    ("european items", "/site/regions/europe/item/name");
    ("buyer references", "//closed_auction/buyer");
    ("interests of people", "/site/people/person/profile/interest");
    ("deep annotation keywords", Xnav_xmark.Queries.q15.Xnav_xmark.Queries.description);
  ]

let () =
  let config = { Xmark.default_config with Xmark.fidelity = 0.03 } in
  Printf.printf "generating XMark document (scale %.2f, fidelity %.2f)...\n" config.Xmark.scale
    config.Xmark.fidelity;
  let doc = Xmark.generate ~config () in
  let disk = Disk.create () in
  let import = Import.run disk doc in
  let buffer = Buffer_manager.create ~capacity:128 disk in
  let store = Store.attach buffer import in
  Printf.printf "%d elements on %d pages\n\n" import.Import.node_count import.Import.page_count;

  Printf.printf "%-26s %-14s %8s %10s %10s %8s\n" "query" "plan (auto)" "count" "total[s]"
    "io[s]" "cpu%%";
  List.iter
    (fun (label, path_str) ->
      let path = parse path_str in
      let plan = Compile.compile store path in
      let r = Exec.cold_run ~ordered:false store path plan in
      let m = r.Exec.metrics in
      Printf.printf "%-26s %-14s %8d %10.4f %10.4f %7.0f%%\n" label (Plan.name plan) r.Exec.count
        m.Exec.total_time m.Exec.io_time
        (100. *. m.Exec.cpu_time /. Float.max 1e-9 m.Exec.total_time))
    analytics;

  (* Compare the chooser's pick against the alternatives on one query. *)
  let path = parse "/site//keyword" in
  Printf.printf "\nplan comparison for /site//keyword:\n";
  List.iter
    (fun plan ->
      let r = Exec.cold_run ~ordered:false store path plan in
      Printf.printf "  %-15s %.4fs\n" (Plan.name plan) r.Exec.metrics.Exec.total_time)
    [ Plan.simple; Plan.xschedule ~speculative:false (); Plan.xscan () ];
  Format.printf "\ncost model said: %a@." Compile.pp_estimate (Compile.estimate store path)
