type t = {
  tag : Tag.t;
  mutable children : t array;
  mutable parent : t option;
  mutable preorder : int;
}

let make tag children =
  let node = { tag; children = Array.of_list children; parent = None; preorder = -1 } in
  Array.iter
    (fun child ->
      match child.parent with
      | Some _ -> invalid_arg "Tree.make: child already has a parent"
      | None -> child.parent <- Some node)
    node.children;
  node

let leaf tag = make tag []
let elt name children = make (Tag.of_string name) children

let index root =
  let counter = ref 0 in
  let rec go node =
    node.preorder <- !counter;
    incr counter;
    Array.iter go node.children
  in
  go root;
  !counter

let rec size node = Array.fold_left (fun acc child -> acc + size child) 1 node.children

let rec height node =
  Array.fold_left (fun acc child -> max acc (1 + height child)) 0 node.children

let rec equal a b =
  Tag.equal a.tag b.tag
  && Array.length a.children = Array.length b.children
  && begin
       let ok = ref true in
       Array.iteri (fun i child -> if not (equal child b.children.(i)) then ok := false) a.children;
       !ok
     end

let rec iter f node =
  f node;
  Array.iter (iter f) node.children

let rec fold f acc node = Array.fold_left (fold f) (f acc node) node.children

let nodes node = List.rev (fold (fun acc n -> n :: acc) [] node)

let rec root node =
  match node.parent with
  | None -> node
  | Some parent -> root parent

let tag_counts node =
  let counts = Hashtbl.create 64 in
  iter
    (fun n ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt counts n.tag) in
      Hashtbl.replace counts n.tag (prev + 1))
    node;
  Hashtbl.fold (fun tag n acc -> (tag, n) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> Tag.compare a b)

let rec pp ppf node =
  if Array.length node.children = 0 then Tag.pp ppf node.tag
  else begin
    Format.fprintf ppf "@[<hov 1>(%a" Tag.pp node.tag;
    Array.iter (fun child -> Format.fprintf ppf "@ %a" pp child) node.children;
    Format.fprintf ppf ")@]"
  end
