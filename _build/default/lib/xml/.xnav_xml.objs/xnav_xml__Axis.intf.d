lib/xml/axis.mli: Format
