lib/xml/ordpath.ml: Array Buffer Char Format Stdlib String
