lib/xml/xml_parser.ml: Printf String Tag Tree
