lib/xml/xml_writer.ml: Array Buffer Tag Tree
