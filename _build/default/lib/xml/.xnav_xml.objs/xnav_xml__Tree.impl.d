lib/xml/tree.ml: Array Format Hashtbl List Option Tag
