lib/xml/ordpath.mli: Buffer Format
