lib/xml/tree.mli: Format Tag
