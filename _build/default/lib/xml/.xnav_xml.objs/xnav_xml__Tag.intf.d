lib/xml/tag.mli: Format
