lib/xml/axis.ml: Format List String
