lib/xml/tree_axes.ml: Array Axis List Option Tree
