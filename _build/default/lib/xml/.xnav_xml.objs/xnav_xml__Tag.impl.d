lib/xml/tag.ml: Array Format Hashtbl Printf Stdlib
