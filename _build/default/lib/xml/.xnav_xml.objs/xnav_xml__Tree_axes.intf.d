lib/xml/tree_axes.mli: Axis Tree
