let descendants node =
  let rec go acc node = Array.fold_left go (node :: acc) node.Tree.children in
  List.rev (Array.fold_left go [] node.Tree.children)

let ancestors node =
  let rec go acc node =
    match node.Tree.parent with
    | None -> List.rev acc
    | Some parent -> go (parent :: acc) parent
  in
  go [] node

let siblings_of node =
  match node.Tree.parent with
  | None -> [||]
  | Some parent -> parent.Tree.children

let position_among node siblings =
  let rec go i =
    if i >= Array.length siblings then invalid_arg "Tree_axes: node not among parent's children"
    else if siblings.(i) == node then i
    else go (i + 1)
  in
  go 0

let nodes axis node =
  match (axis : Axis.t) with
  | Self -> [ node ]
  | Child -> Array.to_list node.Tree.children
  | Descendant -> descendants node
  | Descendant_or_self -> node :: descendants node
  | Parent -> Option.to_list node.Tree.parent
  | Ancestor -> ancestors node
  | Ancestor_or_self -> node :: ancestors node
  | Following_sibling ->
    let siblings = siblings_of node in
    if Array.length siblings = 0 then []
    else begin
      let pos = position_among node siblings in
      Array.to_list (Array.sub siblings (pos + 1) (Array.length siblings - pos - 1))
    end
  | Preceding_sibling ->
    let siblings = siblings_of node in
    if Array.length siblings = 0 then []
    else begin
      let pos = position_among node siblings in
      List.rev (Array.to_list (Array.sub siblings 0 pos))
    end

let count axis node = List.length (nodes axis node)
