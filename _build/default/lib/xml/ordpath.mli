(** ORDPATH node labels (O'Neil et al., SIGMOD 2004).

    The paper (Sec. 5.5) assumes every node carries ordering information
    "such as ORDPATHs" so that document order can be re-established after
    cost-driven, out-of-order evaluation. An ORDPATH is a sequence of
    integer components; initial labels use only odd components, and
    inserts between existing siblings extend the gap with even "caret"
    components that do not count as tree levels. Labels therefore support
    arbitrary insertion without relabeling, unlike plain preorder ranks.

    Invariants maintained by this module: every label is non-empty and
    ends in an odd component. *)

type t
(** An immutable label. *)

val root : t
(** The label of a document root: the single component [1]. *)

val child : t -> int -> t
(** [child parent k] is the label of the [k]-th initial child
    ([k >= 0]) of [parent]: parent's components followed by [2k + 1]. *)

val next_sibling : t -> t
(** Label for an append after an existing node: last component + 2. *)

val prev_sibling : t -> t
(** Label for a prepend before an existing node: last component - 2
    (components may go negative, as in the original scheme). *)

val between : t -> t -> t
(** [between a b] is a fresh label strictly between [a] and [b] in
    document order. @raise Invalid_argument unless [compare a b < 0]. *)

val compare : t -> t -> int
(** Document order: lexicographic on components, with a proper prefix
    (an ancestor) ordering before its extensions (its descendants). *)

val equal : t -> t -> bool

val is_ancestor_or_self : t -> t -> bool
(** [is_ancestor_or_self a b] is true iff the node labeled [a] is [b]
    itself or an ancestor of [b]. *)

val level : t -> int
(** Tree depth encoded in the label: number of odd components minus one,
    so [level root = 0] and even carets are transparent. *)

val components : t -> int array
(** The raw components (a fresh array). Mostly for tests and printing. *)

val of_components : int array -> t
(** Inverse of {!components}. @raise Invalid_argument if empty or the
    last component is even. *)

val encode : Buffer.t -> t -> unit
(** Appends a self-delimiting binary encoding (LEB128 length + zig-zag
    varint components) to the buffer. *)

val decode : string -> int -> t * int
(** [decode s off] reads a label encoded by {!encode} at offset [off],
    returning it and the offset just past it. *)

val encoded_size : t -> int
(** Exact number of bytes {!encode} will append. *)

val pp : Format.formatter -> t -> unit
(** Dotted rendering, e.g. [1.5.2.1]. *)

val to_string : t -> string
