exception Parse_error of { position : int; message : string }

type state = { input : string; mutable pos : int }

let fail st message = raise (Parse_error { position = st.pos; message })
let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None
let eof st = st.pos >= String.length st.input

let advance st = st.pos <- st.pos + 1

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> fail st (Printf.sprintf "expected %C, found %C" c d)
  | None -> fail st (Printf.sprintf "expected %C, found end of input" c)

let expect_string st s =
  String.iter (fun c -> expect st c) s

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space st =
  while (not (eof st)) && is_space st.input.[st.pos] do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  let start = st.pos in
  (match peek st with
  | Some c when is_name_start c -> advance st
  | _ -> fail st "expected a name");
  while (not (eof st)) && is_name_char st.input.[st.pos] do
    advance st
  done;
  String.sub st.input start (st.pos - start)

(* Skip an attribute value (quoted string); content is discarded. *)
let skip_attr_value st =
  match peek st with
  | Some (('"' | '\'') as quote) ->
    advance st;
    let rec go () =
      match peek st with
      | Some c when c = quote -> advance st
      | Some _ -> advance st; go ()
      | None -> fail st "unterminated attribute value"
    in
    go ()
  | _ -> fail st "expected a quoted attribute value"

let skip_attributes st =
  let rec go () =
    skip_space st;
    match peek st with
    | Some c when is_name_start c ->
      let _ = parse_name st in
      skip_space st;
      expect st '=';
      skip_space st;
      skip_attr_value st;
      go ()
    | _ -> ()
  in
  go ()

(* Skip until the terminator string [stop] has been consumed. *)
let skip_until st stop =
  let n = String.length stop in
  let limit = String.length st.input - n in
  let rec go () =
    if st.pos > limit then fail st (Printf.sprintf "unterminated construct (missing %S)" stop)
    else if String.sub st.input st.pos n = stop then st.pos <- st.pos + n
    else begin
      advance st;
      go ()
    end
  in
  go ()

(* Skip misc content between markup: text, comments, PIs, CDATA. Returns
   when positioned at a '<' that starts an element tag or end tag, or at
   end of input. *)
let rec skip_misc st =
  match peek st with
  | None -> ()
  | Some '<' ->
    if st.pos + 1 < String.length st.input then begin
      match st.input.[st.pos + 1] with
      | '!' ->
        if st.pos + 3 < String.length st.input && String.sub st.input st.pos 4 = "<!--" then begin
          st.pos <- st.pos + 4;
          skip_until st "-->";
          skip_misc st
        end
        else if
          st.pos + 8 < String.length st.input && String.sub st.input st.pos 9 = "<![CDATA["
        then begin
          st.pos <- st.pos + 9;
          skip_until st "]]>";
          skip_misc st
        end
        else begin
          (* DOCTYPE or similar declaration: skip to matching '>'. *)
          skip_until st ">";
          skip_misc st
        end
      | '?' ->
        st.pos <- st.pos + 2;
        skip_until st "?>";
        skip_misc st
      | _ -> ()
    end
  | Some _ ->
    advance st;
    skip_misc st

let rec parse_element st =
  expect st '<';
  let name = parse_name st in
  skip_attributes st;
  skip_space st;
  match peek st with
  | Some '/' ->
    advance st;
    expect st '>';
    Tree.make (Tag.of_string name) []
  | Some '>' ->
    advance st;
    let children = parse_children st in
    expect_string st "</";
    let closing = parse_name st in
    if not (String.equal closing name) then
      fail st (Printf.sprintf "mismatched end tag: expected </%s>, found </%s>" name closing);
    skip_space st;
    expect st '>';
    Tree.make (Tag.of_string name) children
  | _ -> fail st "malformed start tag"

and parse_children st =
  skip_misc st;
  match peek st with
  | Some '<' when st.pos + 1 < String.length st.input && st.input.[st.pos + 1] = '/' -> []
  | Some '<' ->
    let child = parse_element st in
    child :: parse_children st
  | Some _ -> fail st "unexpected character in element content"
  | None -> fail st "unexpected end of input inside element"

let parse_string input =
  let st = { input; pos = 0 } in
  skip_misc st;
  if eof st then fail st "no root element";
  let root = parse_element st in
  skip_misc st;
  if not (eof st) then fail st "trailing content after root element";
  root

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  parse_string content
