type t = int

let table : (string, int) Hashtbl.t = Hashtbl.create 256
let names : string array ref = ref (Array.make 256 "")
let next = ref 0

let of_string name =
  match Hashtbl.find_opt table name with
  | Some id -> id
  | None ->
    let id = !next in
    incr next;
    if id >= Array.length !names then begin
      let grown = Array.make (2 * Array.length !names) "" in
      Array.blit !names 0 grown 0 (Array.length !names);
      names := grown
    end;
    !names.(id) <- name;
    Hashtbl.add table name id;
    id

let to_string tag =
  if tag < 0 || tag >= !next then
    invalid_arg (Printf.sprintf "Tag.to_string: unknown tag id %d" tag);
  !names.(tag)

let of_id i =
  if i < 0 || i >= !next then
    invalid_arg (Printf.sprintf "Tag.of_id: unknown tag id %d" i);
  i

let id tag = tag
let count () = !next
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (a : t) = a
let pp ppf tag = Format.pp_print_string ppf (to_string tag)
