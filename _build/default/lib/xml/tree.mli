(** In-memory labeled ordered trees (the paper's logical tree model,
    Sec. 3.1).

    Documents are element-only trees: each node carries a tag and an
    ordered array of children. Trees serve three purposes here: they are
    the output of the XML parser and the XMark generator, the input of the
    clustering import ({!Xnav_store}-side), and the substrate of the
    reference XPath evaluator used to validate the physical plans. *)

type t = {
  tag : Tag.t;
  mutable children : t array;
  mutable parent : t option;  (** [None] for the root. *)
  mutable preorder : int;
      (** Preorder rank within the document; assigned by {!index}. *)
}

val make : Tag.t -> t list -> t
(** [make tag children] builds a node. Parent pointers of [children] are
    set to the new node; a child must not already have a parent.
    @raise Invalid_argument on attempted node sharing. *)

val leaf : Tag.t -> t
(** [leaf tag] is [make tag []]. *)

val elt : string -> t list -> t
(** [elt name children] is [make (Tag.of_string name) children]. *)

val index : t -> int
(** [index root] assigns preorder ranks [0, 1, ...] to every node of the
    tree and returns the total node count. Must be called on a root. *)

val size : t -> int
(** Number of nodes in the subtree rooted at the argument. *)

val height : t -> int
(** Length of the longest root-to-leaf path; a leaf has height 0. *)

val equal : t -> t -> bool
(** Structural equality of tags and shape (ignores [parent]/[preorder]). *)

val iter : (t -> unit) -> t -> unit
(** Preorder traversal of the subtree. *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Preorder fold over the subtree. *)

val nodes : t -> t list
(** All nodes of the subtree in document (preorder) order. *)

val root : t -> t
(** Topmost ancestor of a node. *)

val tag_counts : t -> (Tag.t * int) list
(** Occurrences of each tag in the subtree, in interning order. *)

val pp : Format.formatter -> t -> unit
(** Compact s-expression-like rendering, for debugging. *)
