type t = int array

(* Invariant: non-empty, last component odd. Even components are carets
   inserted by [between]; they do not count as tree levels. *)

let root = [| 1 |]

let is_odd x = x land 1 = 1 || x land 1 = -1

let check_valid label =
  if Array.length label = 0 then invalid_arg "Ordpath: empty label";
  if not (is_odd label.(Array.length label - 1)) then
    invalid_arg "Ordpath: label must end in an odd component"

let append label comp =
  let n = Array.length label in
  let result = Array.make (n + 1) 0 in
  Array.blit label 0 result 0 n;
  result.(n) <- comp;
  result

let child parent k =
  if k < 0 then invalid_arg "Ordpath.child: negative index";
  append parent ((2 * k) + 1)

let with_last label f =
  let n = Array.length label in
  let result = Array.copy label in
  result.(n - 1) <- f label.(n - 1);
  result

let next_sibling label = with_last label (fun x -> x + 2)
let prev_sibling label = with_last label (fun x -> x - 2)

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i = la && i = lb then 0
    else if i = la then -1 (* proper prefix: ancestor first *)
    else if i = lb then 1
    else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
    else go (i + 1)
  in
  go 0

let equal a b = compare a b = 0

(* [prefix_with a i tail] is the first [i] components of [a] followed by
   [tail], normalised to end in an odd component. *)
let prefix_with a i tail =
  let tail = if is_odd tail.(Array.length tail - 1) then tail else Array.append tail [| 1 |] in
  Array.append (Array.sub a 0 i) tail

let between a b =
  if compare a b >= 0 then invalid_arg "Ordpath.between: arguments not ordered";
  let la = Array.length a and lb = Array.length b in
  let rec diverge i = if i < la && i < lb && a.(i) = b.(i) then diverge (i + 1) else i in
  let i = diverge 0 in
  if i = la then
    (* [a] is an ancestor of [b]: slot a new node just before [b]'s
       component, under [a]. *)
    prefix_with b i [| b.(i) - 1 |]
  else begin
    let xa = a.(i) and xb = b.(i) in
    if xb - xa >= 2 then
      (* Room at this position; prefer an odd component (no caret). *)
      let v = if is_odd (xa + 1) then xa + 1 else if xa + 2 < xb then xa + 2 else xa + 1 in
      prefix_with a i [| v |]
    else if is_odd xa then
      (* xb = xa + 1 is an even caret of [b]; descend on the [b] side. *)
      prefix_with b (i + 1) [| b.(i + 1) - 1 |]
    else
      (* xa is an even caret of [a]; extend past [a]'s caret tail. *)
      let tail = Array.sub a i (la - i) in
      let tail = with_last tail (fun x -> x + 2) in
      prefix_with a i tail
  end

let is_ancestor_or_self a b =
  let la = Array.length a in
  la <= Array.length b
  &&
  let rec go i = i = la || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let level label =
  let odds = Array.fold_left (fun acc c -> if is_odd c then acc + 1 else acc) 0 label in
  odds - 1

let components label = Array.copy label

let of_components comps =
  check_valid comps;
  Array.copy comps

(* Binary codec: LEB128 component count, then zig-zag LEB128 components. *)

let zigzag x = (x lsl 1) lxor (x asr 62)
let unzigzag x = (x lsr 1) lxor (-(x land 1))

let varint_size x =
  let rec go x n = if x < 0x80 then n else go (x lsr 7) (n + 1) in
  go x 1

let encode_varint buf x =
  let rec go x =
    if x < 0x80 then Buffer.add_char buf (Char.chr x)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (x land 0x7f)));
      go (x lsr 7)
    end
  in
  go x

let decode_varint s off =
  let rec go off shift acc =
    let byte = Char.code s.[off] in
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte < 0x80 then (acc, off + 1) else go (off + 1) (shift + 7) acc
  in
  go off 0 0

let encode buf label =
  encode_varint buf (Array.length label);
  Array.iter (fun c -> encode_varint buf (zigzag c)) label

let encoded_size label =
  Array.fold_left
    (fun acc c -> acc + varint_size (zigzag c))
    (varint_size (Array.length label))
    label

let decode s off =
  let n, off = decode_varint s off in
  let label = Array.make n 0 in
  let off = ref off in
  for i = 0 to n - 1 do
    let c, next = decode_varint s !off in
    label.(i) <- unzigzag c;
    off := next
  done;
  (label, !off)

let pp ppf label =
  Array.iteri
    (fun i c -> if i = 0 then Format.fprintf ppf "%d" c else Format.fprintf ppf ".%d" c)
    label

let to_string label = Format.asprintf "%a" pp label
