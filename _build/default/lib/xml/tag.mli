(** Interned element tags.

    Tags are the labels of document-tree nodes, drawn from the tag alphabet
    [Sigma] of the paper (Sec. 3.1). Interning gives O(1) equality and a
    compact integer representation suitable for node records on disk. The
    intern table is global and append-only; tag ids are dense and start
    at 0, so they can double as indices into statistics arrays. *)

type t = private int
(** An interned tag. Ordering of [t] follows interning order, not
    lexicographic order of the tag names. *)

val of_string : string -> t
(** [of_string name] interns [name], returning its unique tag. Idempotent:
    interning the same name twice yields the same tag. *)

val to_string : t -> string
(** [to_string tag] is the name [tag] was interned from.
    @raise Invalid_argument if [tag] was not produced by this table. *)

val of_id : int -> t
(** [of_id i] recovers the tag with intern id [i], as stored in a node
    record. @raise Invalid_argument if no such tag has been interned. *)

val id : t -> int
(** [id tag] is the dense integer id of [tag]. *)

val count : unit -> int
(** [count ()] is the number of distinct tags interned so far. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints the tag name. *)
