(** Serialization of element-only documents back to XML text.

    The counterpart of {!Xml_parser}: [parse_string (to_string t)] is
    structurally equal to [t]. Used by the CLI to export generated XMark
    documents and by the document-export example. *)

val add_to_buffer : Buffer.t -> Tree.t -> unit
(** Appends the XML rendering of the tree, without an XML declaration. *)

val to_string : ?declaration:bool -> Tree.t -> string
(** [to_string t] is the XML text of [t]. With [~declaration:true]
    (default [false]) an [<?xml version="1.0"?>] header is prepended. *)

val to_file : ?declaration:bool -> string -> Tree.t -> unit
(** Writes {!to_string} output to the named file. *)
