type t =
  | Self
  | Child
  | Descendant
  | Descendant_or_self
  | Parent
  | Ancestor
  | Ancestor_or_self
  | Following_sibling
  | Preceding_sibling

let is_downward = function
  | Self | Child | Descendant | Descendant_or_self -> true
  | Parent | Ancestor | Ancestor_or_self | Following_sibling | Preceding_sibling -> false

let to_string = function
  | Self -> "self"
  | Child -> "child"
  | Descendant -> "descendant"
  | Descendant_or_self -> "descendant-or-self"
  | Parent -> "parent"
  | Ancestor -> "ancestor"
  | Ancestor_or_self -> "ancestor-or-self"
  | Following_sibling -> "following-sibling"
  | Preceding_sibling -> "preceding-sibling"

let all =
  [
    Self;
    Child;
    Descendant;
    Descendant_or_self;
    Parent;
    Ancestor;
    Ancestor_or_self;
    Following_sibling;
    Preceding_sibling;
  ]

let of_string s = List.find_opt (fun axis -> String.equal (to_string axis) s) all
let equal (a : t) (b : t) = a = b
let pp ppf axis = Format.pp_print_string ppf (to_string axis)
