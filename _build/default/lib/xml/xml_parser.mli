(** A small, robust XML parser producing element-only {!Tree.t} documents.

    Matching the paper's logical model (Sec. 3.1), only element structure
    is retained: text content, attributes, comments, processing
    instructions, DOCTYPE declarations and CDATA sections are parsed and
    discarded. Namespace prefixes are kept as part of the tag name.

    This is the ingestion path for externally generated documents (e.g.
    dumps of the XMark generator); the generator itself builds {!Tree.t}
    values directly. *)

exception Parse_error of { position : int; message : string }
(** Raised on malformed input; [position] is a byte offset. *)

val parse_string : string -> Tree.t
(** [parse_string s] parses one XML document from [s].
    @raise Parse_error on malformed input (including trailing garbage
    after the root element, or mismatched end tags). *)

val parse_file : string -> Tree.t
(** Reads a whole file and parses it with {!parse_string}. *)
