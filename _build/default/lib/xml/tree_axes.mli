(** Axis semantics on in-memory trees.

    This is the specification the physical navigation layer is tested
    against: for every axis, the nodes reachable from a context node, in
    the axis' natural order (document order for forward axes, reverse
    document order for [Ancestor*] and [Preceding_sibling]). *)

val nodes : Axis.t -> Tree.t -> Tree.t list
(** [nodes axis context] lists the axis result for [context]. *)

val count : Axis.t -> Tree.t -> int
