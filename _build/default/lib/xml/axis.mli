(** XPath axes supported by the engine.

    The physical, cluster-aware navigation primitives (and hence the
    reordering plans XSchedule/XScan) support the downward axes — the
    ones exercised by every query in the paper's evaluation. The upward
    and sibling axes are fully supported by the logical layer and the
    border-transparent global navigation used by the Simple plan and by
    fallback mode. *)

type t =
  | Self
  | Child
  | Descendant
  | Descendant_or_self
  | Parent
  | Ancestor
  | Ancestor_or_self
  | Following_sibling
  | Preceding_sibling

val is_downward : t -> bool
(** True for [Self], [Child], [Descendant] and [Descendant_or_self] —
    the axes eligible for cost-sensitive reordering plans. *)

val to_string : t -> string
(** XPath spelling, e.g. ["descendant-or-self"]. *)

val of_string : string -> t option
val all : t list
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
