let rec add_to_buffer buf (node : Tree.t) =
  let name = Tag.to_string node.tag in
  Buffer.add_char buf '<';
  Buffer.add_string buf name;
  if Array.length node.children = 0 then Buffer.add_string buf "/>"
  else begin
    Buffer.add_char buf '>';
    Array.iter (add_to_buffer buf) node.children;
    Buffer.add_string buf "</";
    Buffer.add_string buf name;
    Buffer.add_char buf '>'
  end

let to_string ?(declaration = false) node =
  let buf = Buffer.create 4096 in
  if declaration then Buffer.add_string buf "<?xml version=\"1.0\"?>\n";
  add_to_buffer buf node;
  Buffer.contents buf

let to_file ?declaration path node =
  let oc = open_out_bin path in
  output_string oc (to_string ?declaration node);
  close_out oc
