(** Concurrent query execution (paper outlook, Sec. 7: "we also expect
    concurrent queries to strongly benefit from asynchronous I/O, as
    scheduling decisions can be made based on more pending requests" —
    and Sec. 2's warning that several concurrent {e scans} interfere,
    causing "additional disk arm movement").

    [run] executes several plans as interleaved streams over the shared
    buffer pool and disk: each scheduling round pulls one result from
    every still-live stream. Two consequences fall out of the
    architecture:

    - concurrent XSchedule plans' asynchronous requests merge in the one
      {!Xnav_storage.Io_scheduler}, so the policy reorders across
      queries — more pending choices, better sweeps;
    - concurrent XScan plans drag the head to alternating scan positions
      — the interference the paper predicts for scan-based designs.

    The harness's [abl-conc] section quantifies both. *)

type query_result = {
  count : int;
  nodes : Xnav_store.Store.info list;  (** Document order, duplicate-free. *)
  fell_back : bool;
}

type result = {
  queries : query_result array;
  io_time : float;
  cpu_time : float;
  total_time : float;
  page_reads : int;
  seek_distance : int;
}

val run :
  ?config:Context.config ->
  ?contexts:Xnav_store.Node_id.t list ->
  ?ordered:bool ->
  cold:bool ->
  Xnav_store.Store.t ->
  (Xnav_xpath.Path.t * Plan.t) list ->
  result
(** [run ~cold store queries] interleaves the queries round-robin (one
    result node each per round) until all are exhausted.
    @raise Invalid_argument on an empty query list or an empty path. *)
