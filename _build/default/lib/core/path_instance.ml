module Store = Xnav_store.Store
module Node_id = Xnav_store.Node_id
module Node_record = Xnav_store.Node_record

type right_node =
  | R_core of { view : Store.view; slot : int; core : Node_record.core }
  | R_entry of { view : Store.view; slot : int }
  | R_pending of Node_id.t
  | R_info of Store.info

type t = {
  s_l : int;
  n_l : Node_id.t;
  left_incomplete : bool;
  s_r : int;
  n_r : right_node;
}

let context view id core =
  { s_l = 0; n_l = id; left_incomplete = false; s_r = 0; n_r = R_core { view; slot = id.Node_id.slot; core } }

let right_incomplete p =
  match p.n_r with
  | R_pending _ -> true
  | R_entry _ -> true
  | R_core _ | R_info _ -> false

let full ~path_len p = (not p.left_incomplete) && (not (right_incomplete p)) && p.s_r = path_len

let right_id p =
  match p.n_r with
  | R_core { view; slot; _ } -> Store.id_of view slot
  | R_entry { view; slot } -> Store.id_of view slot
  | R_pending id -> id
  | R_info info -> info.Store.id

let pp ppf p =
  let kind =
    match p.n_r with
    | R_core _ -> "core"
    | R_entry _ -> "entry"
    | R_pending _ -> "pending"
    | R_info _ -> "info"
  in
  Format.fprintf ppf "(%d,%a%s)-(%d,%a:%s)" p.s_l Node_id.pp p.n_l
    (if p.left_incomplete then "?" else "")
    p.s_r Node_id.pp (right_id p) kind
