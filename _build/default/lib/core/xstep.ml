module Store = Xnav_store.Store
module Path = Xnav_xpath.Path
open Path_instance

type enumeration =
  | Local of { base : t; cursor : Store.cursor; view : Store.view }
      (** Intra-cluster enumeration over the pinned cluster. *)
  | Global of { base : t; next : unit -> Store.info option }
      (** Fallback: border-transparent enumeration. *)

let create ctx ~i ~step producer =
  let counters = ctx.Context.counters in
  let state = ref None in
  let extend base right =
    counters.Context.instances <- counters.Context.instances + 1;
    Some { base with s_r = i; n_r = right }
  in
  let rec next () =
    match !state with
    | Some (Local { base; cursor; view }) -> begin
      match Store.next_emission cursor with
      | Some (Store.Reached (slot, core)) ->
        if Path.matches step.Path.test core.Xnav_store.Node_record.tag then
          extend base (R_core { view; slot; core })
        else next ()
      | Some (Store.Crossing (_slot, target)) ->
        counters.Context.crossings <- counters.Context.crossings + 1;
        counters.Context.instances <- counters.Context.instances + 1;
        Context.emit ctx (fun () ->
            Printf.sprintf "XStep_%d: inter-cluster edge -> %s deferred" i
              (Xnav_store.Node_id.to_string target));
        (* Right-incomplete: S_R stays i-1, the node test is deferred. *)
        Some { base with n_r = R_pending target }
      | None ->
        state := None;
        next ()
    end
    | Some (Global { base; next = enum }) -> begin
      match enum () with
      | Some info ->
        if Path.matches step.Path.test info.Store.tag then extend base (R_info info) else next ()
      | None ->
        state := None;
        next ()
    end
    | None -> begin
      match producer () with
      | None -> None
      | Some p ->
        if p.s_r <> i - 1 then Some p (* not produced by step i-1: forward *)
        else begin
          match p.n_r with
          | R_pending _ ->
            (* A crossing some upstream operator deferred; not ours to
               process. *)
            Some p
          | R_core { view; slot; _ } ->
            let axis = step.Path.axis in
            if Context.fallback ctx then begin
              let id = Store.id_of view slot in
              state := Some (Global { base = p; next = Store.global_axis ctx.Context.store axis id })
            end
            else state := Some (Local { base = p; cursor = Store.start view axis slot; view });
            next ()
          | R_entry { view; slot } ->
            let axis = step.Path.axis in
            if Context.fallback ctx then begin
              let id = Store.id_of view slot in
              state :=
                Some (Global { base = p; next = Store.global_resume ctx.Context.store axis id })
            end
            else state := Some (Local { base = p; cursor = Store.resume view axis slot; view });
            next ()
          | R_info info ->
            state :=
              Some
                (Global
                   { base = p; next = Store.global_axis ctx.Context.store step.Path.axis info.Store.id });
            next ()
        end
    end
  in
  next
