(** Partial path instances — the first-class citizens of the physical
    algebra (paper Sec. 4).

    A partial path instance represents a consecutive fragment of a
    potential path match. Following Sec. 4.4, only the four values
    [(S_L, N_L, S_R, N_R)] are materialised; the inner nodes of the
    fragment are never needed by the operators.

    The right end exists in three physical states, implementing the
    swizzling discipline of Sec. 5.3.2.3:
    - [R_core]: a swizzled core node in the cluster currently pinned by
      the I/O operator — this is how instances travel {e down} the XStep
      chain (direct pointers, no buffer lookups).
    - [R_entry]: a swizzled [Up] border in the current cluster — a
      continuation entry the next applicable XStep resumes from.
    - [R_pending]: an unswizzled NodeID of a remote [Up] border — an
      inter-cluster edge that was {e not} traversed; the instance is
      right-incomplete and waits for I/O (paper: the XStep "returns an
      output partial path instance [with] the border node as its right
      end").
    - [R_info]: an unswizzled core node, used by fallback mode where
      navigation is border-transparent and no cluster pin exists.

    The left end is always unswizzled: it only feeds the main-memory
    bookkeeping sets [R], [S] and [Q] of XAssembly/XSchedule. *)

type right_node =
  | R_core of { view : Xnav_store.Store.view; slot : int; core : Xnav_store.Node_record.core }
  | R_entry of { view : Xnav_store.Store.view; slot : int }
  | R_pending of Xnav_store.Node_id.t
  | R_info of Xnav_store.Store.info

type t = {
  s_l : int;  (** [S_L]: step number of the left end. *)
  n_l : Xnav_store.Node_id.t;  (** [N_L]: left-end node (context or border). *)
  left_incomplete : bool;
      (** Whether [N_L] is an untraversed border ([p] speculative) rather
          than a context node. *)
  s_r : int;  (** [S_R]: last fully evaluated step (paper's offset rule). *)
  n_r : right_node;  (** [N_R]: right-end node. *)
}

val context : Xnav_store.Store.view -> Xnav_store.Node_id.t -> Xnav_store.Node_record.core -> t
(** The instance a context node [x] enters the pipeline as:
    [S_L = S_R = 0], [N_L = N_R = x] (paper Sec. 5.1), with the right end
    swizzled into [view]. *)

val right_incomplete : t -> bool
(** True iff the right end is an untraversed border. *)

val full : path_len:int -> t -> bool
(** Complete on both sides with [S_R = |pi|] (paper Sec. 4.3). *)

val right_id : t -> Xnav_store.Node_id.t
(** The NodeID of the right end (unswizzling it if needed). *)

val pp : Format.formatter -> t -> unit
