(** The XStep operator (paper Sec. 5.3.2): per-location-step navigation
    that never performs I/O.

    [XStep_i] pulls partial path instances from its producer. Instances
    whose right end was not produced by step [i-1] are forwarded
    untouched. Applicable instances are extended by enumerating step
    [pi_i] {e using intra-cluster navigation only}: each core node found
    locally (and passing the node test) yields a right-complete extension
    with [S_R = i]; each inter-cluster edge yields a right-incomplete
    instance whose right end is the untraversed border ([S_R] unchanged —
    "the step has not been fully evaluated yet"). The enumeration state
    is kept in the operator, so one input instance fans out across many
    [next] calls.

    Two kinds of applicable right end exist: a swizzled core node (a
    fresh application of the axis) and a swizzled [Up] border (a
    continuation of step [i] after a crossing, delivered by the I/O
    operator).

    In fallback mode XStep behaves as a plain Unnest-Map: it navigates
    across borders with synchronous global primitives (Sec. 5.4.6). *)

val create :
  Context.t ->
  i:int ->
  step:Xnav_xpath.Path.step ->
  (unit -> Path_instance.t option) ->
  unit ->
  Path_instance.t option
(** [create ctx ~i ~step producer] is the [next] method of [XStep_i].
    [i] is 1-based. *)
