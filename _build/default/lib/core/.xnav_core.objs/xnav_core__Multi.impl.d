lib/core/multi.ml: Array Context Exec List Path_instance Plan Queue Sys Xassembly Xnav_storage Xnav_store Xnav_xml Xnav_xpath Xstep
