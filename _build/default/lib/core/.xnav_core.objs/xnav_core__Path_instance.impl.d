lib/core/path_instance.ml: Format Xnav_store
