lib/core/interleave.mli: Context Plan Xnav_store Xnav_xpath
