lib/core/eval_store.ml: List Xnav_store Xnav_xml Xnav_xpath
