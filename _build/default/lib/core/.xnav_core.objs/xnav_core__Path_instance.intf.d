lib/core/path_instance.mli: Format Xnav_store
