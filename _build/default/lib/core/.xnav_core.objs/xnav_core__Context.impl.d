lib/core/context.ml: Xnav_store
