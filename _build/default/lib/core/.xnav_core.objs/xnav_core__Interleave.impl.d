lib/core/interleave.ml: Array Exec List Printf Sys Xnav_storage Xnav_store Xnav_xml
