lib/core/xassembly.mli: Context Path_instance Xnav_store Xschedule
