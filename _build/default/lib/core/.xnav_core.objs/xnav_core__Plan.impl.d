lib/core/plan.ml: Format List String Xnav_xpath
