lib/core/eval_store.mli: Xnav_store Xnav_xpath
