lib/core/context.mli: Xnav_store
