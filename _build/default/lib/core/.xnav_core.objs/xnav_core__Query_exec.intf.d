lib/core/query_exec.mli: Compile Context Xnav_store Xnav_xpath
