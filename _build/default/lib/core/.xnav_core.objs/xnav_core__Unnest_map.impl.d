lib/core/unnest_map.ml: Context Xnav_store Xnav_xpath
