lib/core/xscan.ml: Context List Path_instance Printf Queue Xnav_store
