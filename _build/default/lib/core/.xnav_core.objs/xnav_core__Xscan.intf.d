lib/core/xscan.mli: Context Path_instance Xnav_store
