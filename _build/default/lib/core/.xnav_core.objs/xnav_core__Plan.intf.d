lib/core/plan.mli: Format Xnav_xpath
