lib/core/unnest_map.mli: Context Xnav_store Xnav_xpath
