lib/core/multi.mli: Context Xnav_store Xnav_xpath
