lib/core/exec.ml: Context Format List Plan Printf Sys Unnest_map Xassembly Xnav_storage Xnav_store Xnav_xml Xnav_xpath Xscan Xschedule Xstep
