lib/core/xstep.ml: Context Path_instance Printf Xnav_store Xnav_xpath
