lib/core/xschedule.ml: Context Hashtbl List Path_instance Printf Queue Xnav_storage Xnav_store
