lib/core/xschedule.mli: Context Path_instance Xnav_store
