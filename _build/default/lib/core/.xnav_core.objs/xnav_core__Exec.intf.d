lib/core/exec.mli: Context Format Plan Xnav_store Xnav_xpath
