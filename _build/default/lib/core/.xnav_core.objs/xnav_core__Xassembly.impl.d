lib/core/xassembly.ml: Array Context List Option Path_instance Printf Queue Xnav_store Xschedule
