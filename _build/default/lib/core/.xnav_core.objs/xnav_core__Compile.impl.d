lib/core/compile.ml: Format List Plan Xnav_storage Xnav_store Xnav_xpath
