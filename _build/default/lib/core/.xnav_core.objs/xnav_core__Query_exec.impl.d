lib/core/query_exec.ml: Compile Exec List Sys Xnav_storage Xnav_store Xnav_xml Xnav_xpath
