lib/core/compile.mli: Format Plan Xnav_store Xnav_xpath
