lib/core/xstep.mli: Context Path_instance Xnav_xpath
