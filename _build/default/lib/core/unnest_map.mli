(** The Unnest-Map operator of the Simple method (paper Sec. 5.1).

    One operator per location step, chained: each pulls a context node
    from its producer and enumerates the step's result nodes with the
    border-transparent global primitives — traversing inter-cluster
    edges the moment they are met, which is precisely the random-I/O
    behaviour the reordered plans avoid. Optional per-step duplicate
    elimination implements the refinement the paper cites from
    Hidders/Michiels to avoid the exponential blow-up of nested
    duplicates. *)

val create :
  Context.t ->
  step:Xnav_xpath.Path.step ->
  dedup:bool ->
  (unit -> Xnav_store.Store.info option) ->
  unit ->
  Xnav_store.Store.info option
