(** Multi-query evaluation with a single I/O-performing operator — the
    paper's outlook (Sec. 7): "Our method can be easily extended to
    evaluate multiple location paths with a single I/O-performing
    operator."

    [run] evaluates several location paths in {e one} sequential pass
    over the document: each cluster is pinned once and fed to every
    path's XStep chain + XAssembly (contexts located there, plus that
    path's speculative instances for every Up border), exactly as a
    per-path XScan would, but sharing the physical scan. For a workload
    like XMark Q7 — three separate descendant paths — this cuts the scan
    I/O by the number of paths.

    If a path's speculation store outgrows the memory budget mid-scan,
    that path alone is transparently re-evaluated with the Simple method
    afterwards (the shared scan cannot restart for one path), flagged in
    [fell_back]. *)

type result = {
  per_path : Xnav_store.Store.info list array;
      (** Result nodes per input path (duplicate-free; document order
          unless [ordered:false]). *)
  counts : int array;
  fell_back : bool array;
  io_time : float;
  cpu_time : float;
  total_time : float;
  page_reads : int;
}

val run :
  ?config:Context.config ->
  ?contexts:Xnav_store.Node_id.t list ->
  ?ordered:bool ->
  cold:bool ->
  Xnav_store.Store.t ->
  Xnav_xpath.Path.t list ->
  result
(** [run ~cold store paths] evaluates all [paths] from [contexts]
    (default: the document root) in one shared scan. [cold] resets the
    buffer pool and disk clock first.

    @raise Invalid_argument if [paths] is empty, any path is empty, or
    any path uses a non-downward axis. *)
