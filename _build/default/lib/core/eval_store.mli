(** Reference evaluator over the clustered store.

    The same node-set semantics as {!Eval_ref}, but computed through
    {!Xnav_store.Store.global_axis} — i.e. navigating the physical
    representation with synchronous border-transparent primitives. It
    serves two roles: an independent oracle proving that the physical
    representation faithfully encodes the document, and a baseline for
    what a logical-only evaluator costs on clustered storage. *)

val eval : Xnav_store.Store.t -> Xnav_store.Node_id.t -> Xnav_xpath.Path.t -> Xnav_store.Store.info list
(** [eval store context path] is the result list in document order
    (by ordpath), without duplicates. *)

val count : Xnav_store.Store.t -> Xnav_store.Node_id.t -> Xnav_xpath.Path.t -> int
