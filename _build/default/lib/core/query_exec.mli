(** Hybrid physical execution of extended queries.

    The paper's operators only evaluate predicate-free location paths;
    it positions them "as part of a more expressive algebra" (Sec. 5).
    This executor is that composition: each union branch is decomposed
    into maximal predicate-free trunk segments, every segment runs
    through the cost-chosen reordered plan (XSchedule/XScan/Simple), and
    the survivors of each segment are filtered through its trailing
    step's predicates using the border-transparent navigation primitives
    (with early exit) before becoming the next segment's context nodes.
    Union results are merged, deduplicated and put in document order. *)

type result = {
  nodes : Xnav_store.Store.info list;
  count : int;
  io_time : float;
  cpu_time : float;
  total_time : float;
  segments : int;  (** Trunk segments executed across all branches. *)
  predicate_checks : int;  (** Candidate nodes tested against predicates. *)
}

val run :
  ?choice:Compile.choice ->
  ?config:Context.config ->
  ?contexts:Xnav_store.Node_id.t list ->
  ?ordered:bool ->
  cold:bool ->
  Xnav_store.Store.t ->
  Xnav_xpath.Query.t ->
  result
(** @raise Invalid_argument on an empty query. *)

val holds : Xnav_store.Store.t -> Xnav_store.Node_id.t -> Xnav_xpath.Query.predicate -> bool
(** Predicate evaluation at one node, via global navigation with early
    exit. *)
