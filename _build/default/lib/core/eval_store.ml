module Store = Xnav_store.Store
module Node_id = Xnav_store.Node_id
module Path = Xnav_xpath.Path

let eval store context path =
  let step acc (s : Path.step) =
    let seen = ref Node_id.Set.empty in
    let out = ref [] in
    List.iter
      (fun (inf : Store.info) ->
        let next = Store.global_axis store s.axis inf.id in
        let rec drain () =
          match next () with
          | None -> ()
          | Some (result : Store.info) ->
            if Path.matches s.test result.tag && not (Node_id.Set.mem result.id !seen) then begin
              seen := Node_id.Set.add result.id !seen;
              out := result :: !out
            end;
            drain ()
        in
        drain ())
      acc;
    List.sort
      (fun (a : Store.info) (b : Store.info) -> Xnav_xml.Ordpath.compare a.ordpath b.ordpath)
      !out
  in
  List.fold_left step [ Store.info store context ] path

let count store context path = List.length (eval store context path)
