(** Deterministic pseudo-random numbers (splitmix64) for the document
    generator. Fixed seeds make every generated document — and hence
    every benchmark figure — bit-reproducible. *)

type t

val create : int -> t
(** Seeded generator. *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n)]. @raise Invalid_argument if [n <= 0]. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [lo, hi] (inclusive). *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform choice. @raise Invalid_argument on an empty array. *)

val split : t -> t
(** An independent generator derived from the current state. *)
