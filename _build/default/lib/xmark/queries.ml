module Xpath_parser = Xnav_xpath.Xpath_parser
module Path = Xnav_xpath.Path

(* The paper's queries are absolute paths; evaluation starts at the root
   [site] element, so leading [/site] steps become [self::site]. *)
let parse s = Path.from_root_element (Xpath_parser.parse s)

type t = {
  name : string;
  description : string;
  paths : Xnav_xpath.Path.t list;
  selective : bool;
}

let q6' =
  {
    name = "q6'";
    description = "count(/site/regions//item)";
    paths = [ parse "/site/regions//item" ];
    selective = false;
  }

let q7 =
  {
    name = "q7";
    description = "count(/site//description)+count(/site//annotation)+count(/site//email)";
    paths =
      [
        parse "/site//description";
        parse "/site//annotation";
        parse "/site//email";
      ];
    selective = false;
  }

let q15 =
  {
    name = "q15";
    description =
      "/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword";
    paths =
      [
        parse
          "/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword";
      ];
    selective = true;
  }

let all = [ q6'; q7; q15 ]

let find name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun q -> String.equal q.name name) all
