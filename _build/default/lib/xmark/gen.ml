module Tree = Xnav_xml.Tree

type config = { scale : float; fidelity : float; seed : int }

let default_config = { scale = 1.0; fidelity = 0.05; seed = 20050614 }

(* XMark entity counts at scaling factor 1. *)
let base_items_per_region =
  [ ("africa", 550); ("asia", 2000); ("australia", 2200); ("europe", 6000);
    ("namerica", 10000); ("samerica", 1000) ]

let base_persons = 25500
let base_open_auctions = 12000
let base_closed_auctions = 9750
let base_categories = 1000

let scaled config base =
  max 1 (int_of_float (Float.round (float_of_int base *. config.scale *. config.fidelity)))

let entity_counts config =
  let items =
    List.fold_left (fun acc (_, n) -> acc + scaled config n) 0 base_items_per_region
  in
  ( items,
    scaled config base_persons,
    scaled config base_open_auctions,
    scaled config base_closed_auctions )

let e = Tree.elt
let leaf name = Tree.elt name []

(* [text] elements carry keyword/bold/emph children (the prose markup of
   XMark); [rich] raises the chance of an [emph] with a nested [keyword],
   the pattern query Q15 selects. *)
let text_elt rng ~rich =
  let markup = ref [] in
  let n = Rng.range rng 0 3 in
  for _ = 1 to n do
    match Rng.int rng 3 with
    | 0 -> markup := leaf "keyword" :: !markup
    | 1 -> markup := leaf "bold" :: !markup
    | _ -> markup := e "emph" (if Rng.bool rng 0.5 then [ leaf "keyword" ] else []) :: !markup
  done;
  if rich && Rng.bool rng 0.7 then markup := e "emph" [ leaf "keyword" ] :: !markup;
  e "text" !markup

(* description ::= text | parlist; parlist ::= listitem+;
   listitem ::= text | parlist (recursive). [depth] bounds the nesting;
   [rich] flows down so closed-auction annotations contain the deep
   parlist/listitem/parlist/listitem/text/emph/keyword chains of Q15. *)
let rec parlist rng ~rich ~depth =
  let items = Rng.range rng 1 3 in
  e "parlist"
    (List.init items (fun _ ->
         let nest = depth > 0 && Rng.bool rng (if rich then 0.55 else 0.25) in
         e "listitem" [ (if nest then parlist rng ~rich ~depth:(depth - 1) else text_elt rng ~rich) ]))

let description rng ~rich =
  let p = if rich then 0.8 else 0.35 in
  e "description"
    [ (if Rng.bool rng p then parlist rng ~rich ~depth:2 else text_elt rng ~rich) ]

let mail rng =
  e "mail" [ leaf "from"; leaf "to"; leaf "date"; text_elt rng ~rich:false ]

let item rng =
  let incategories = List.init (Rng.range rng 1 3) (fun _ -> leaf "incategory") in
  let mails = List.init (Rng.range rng 0 2) (fun _ -> mail rng) in
  e "item"
    ([ leaf "location"; leaf "quantity"; leaf "name"; leaf "payment";
       description rng ~rich:false; leaf "shipping" ]
    @ incategories
    @ [ e "mailbox" mails ])

let person rng =
  let optional p node = if Rng.bool rng p then [ node () ] else [] in
  let address () =
    e "address" ([ leaf "street"; leaf "city"; leaf "country" ] @ optional 0.5 (fun () -> leaf "province") @ [ leaf "zipcode" ])
  in
  let profile () =
    e "profile"
      (List.init (Rng.range rng 0 3) (fun _ -> leaf "interest")
      @ optional 0.6 (fun () -> leaf "education")
      @ optional 0.8 (fun () -> leaf "gender")
      @ [ leaf "business" ]
      @ optional 0.7 (fun () -> leaf "age"))
  in
  let watches () = e "watches" (List.init (Rng.range rng 0 3) (fun _ -> leaf "watch")) in
  e "person"
    ([ leaf "name"; leaf "email"; leaf "phone" ]
    @ optional 0.6 address
    @ optional 0.3 (fun () -> leaf "homepage")
    @ optional 0.4 (fun () -> leaf "creditcard")
    @ optional 0.9 profile
    @ optional 0.5 watches)

let bidder rng =
  ignore rng;
  e "bidder" [ leaf "date"; leaf "time"; leaf "personref"; leaf "increase" ]

let annotation rng ~rich =
  e "annotation" [ leaf "author"; description rng ~rich; leaf "happiness" ]

let open_auction rng =
  let optional p node = if Rng.bool rng p then [ node () ] else [] in
  e "open_auction"
    ([ leaf "initial" ]
    @ optional 0.5 (fun () -> leaf "reserve")
    @ List.init (Rng.range rng 0 4) (fun _ -> bidder rng)
    @ [ leaf "current" ]
    @ optional 0.3 (fun () -> leaf "privacy")
    @ [ leaf "itemref"; leaf "seller"; annotation rng ~rich:false; leaf "quantity";
        leaf "type"; e "interval" [ leaf "start"; leaf "end" ] ])

let closed_auction rng =
  e "closed_auction"
    [ leaf "seller"; leaf "buyer"; leaf "itemref"; leaf "price"; leaf "date";
      leaf "quantity"; leaf "type"; annotation rng ~rich:true ]

let category rng = e "category" [ leaf "name"; description rng ~rich:false ]

let generate ?(config = default_config) () =
  let rng = Rng.create config.seed in
  let regions =
    e "regions"
      (List.map
         (fun (name, base) -> e name (List.init (scaled config base) (fun _ -> item rng)))
         base_items_per_region)
  in
  let categories =
    e "categories" (List.init (scaled config base_categories) (fun _ -> category rng))
  in
  let catgraph =
    e "catgraph" (List.init (scaled config base_categories) (fun _ -> leaf "edge"))
  in
  let people = e "people" (List.init (scaled config base_persons) (fun _ -> person rng)) in
  let open_auctions =
    e "open_auctions" (List.init (scaled config base_open_auctions) (fun _ -> open_auction rng))
  in
  let closed_auctions =
    e "closed_auctions"
      (List.init (scaled config base_closed_auctions) (fun _ -> closed_auction rng))
  in
  e "site" [ regions; categories; catgraph; people; open_auctions; closed_auctions ]
