lib/xmark/gen.mli: Xnav_xml
