lib/xmark/rng.mli:
