lib/xmark/queries.ml: List String Xnav_xpath
