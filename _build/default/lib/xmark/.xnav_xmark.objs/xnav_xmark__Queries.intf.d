lib/xmark/queries.mli: Xnav_xpath
