lib/xmark/gen.ml: Float List Rng Xnav_xml
