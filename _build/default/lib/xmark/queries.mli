(** The XMark queries of the paper's evaluation (Table 2).

    Of the twenty XMark queries, the paper selects the ones expressible
    with XAssembly/XStep/XScan/XSchedule alone:

    - Q6': [count(/site/regions//item)] — Q6 with an extra aggregation
      over the regions;
    - Q7: [count(/site//description) + count(/site//annotation) +
      count(/site//email)];
    - Q15: the long, highly selective child chain down to the keywords
      inside closed-auction annotations.

    Each benchmark query is a list of location paths whose counts are
    summed (Q7 sums three; the others are single paths). *)

type t = {
  name : string;
  description : string;
  paths : Xnav_xpath.Path.t list;
  selective : bool;
      (** Whether the paper classifies it as highly selective (Q15) —
          the regime where XScan loses. *)
}

val q6' : t
val q7 : t
val q15 : t
val all : t list

val find : string -> t option
(** Lookup by [name] ("q6'", "q7", "q15" — case-insensitive). *)
