(** XMark-schema document generator — our stand-in for the benchmark's
    [xmlgen] tool (Schmidt et al., VLDB 2002), which the paper uses to
    produce its evaluation documents (Sec. 6.2).

    The generator reproduces the XMark element hierarchy (auction site:
    regions with items, people, open and closed auctions with annotations
    and recursive [parlist] descriptions) and the entity proportions of
    the original at a given {e scaling factor}. Two deliberate deviations:

    - text content is not generated (the paper's model is element-only,
      Sec. 3.1); [text] {e elements} with [keyword]/[bold]/[emph] children
      are kept, since query Q15 navigates through them;
    - the person's [emailaddress] element is named [email] so the paper's
      formulation of Q7 ([count(/site//email)]) matches literally;
    - a [fidelity] knob scales all entity counts, so a scaling-factor
      sweep runs in seconds instead of hours. At [fidelity = 1.0] and
      [scale = 1.0] the document has the full XMark entity counts
      (21750 items, 25500 persons, 12000 open / 9750 closed auctions,
      1000 categories — roughly 1.3 million elements). *)

type config = {
  scale : float;  (** The XMark scaling factor (paper sweeps 0.1 - 2.0). *)
  fidelity : float;  (** Multiplier on all entity counts (default 0.05). *)
  seed : int;
}

val default_config : config
(** [scale = 1.0], [fidelity = 0.05], [seed = 20050614]. *)

val generate : ?config:config -> unit -> Xnav_xml.Tree.t
(** A fresh document tree. Deterministic in [config]. *)

val entity_counts : config -> int * int * int * int
(** [(items, persons, open_auctions, closed_auctions)] the configuration
    will produce. *)
