lib/storage/io_scheduler.mli: Bytes Disk
