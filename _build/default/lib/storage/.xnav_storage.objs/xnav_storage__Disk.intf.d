lib/storage/disk.mli: Bytes Format
