lib/storage/buffer_manager.mli: Disk Format Io_scheduler Page
