lib/storage/page.ml: Bytes List Printf String
