lib/storage/io_scheduler.ml: Disk Int List Set
