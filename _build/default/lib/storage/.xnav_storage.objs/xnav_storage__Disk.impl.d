lib/storage/disk.ml: Array Bytes Format List Printf
