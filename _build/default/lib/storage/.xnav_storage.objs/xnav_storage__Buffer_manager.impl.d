lib/storage/buffer_manager.ml: Disk Format Hashtbl Io_scheduler List Page Printf Queue String
