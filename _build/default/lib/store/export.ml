module Tree = Xnav_xml.Tree
module Axis = Xnav_xml.Axis

let subtree store (id : Node_id.t) =
  let rec build (id : Node_id.t) =
    let info = Store.info store id in
    let next = Store.global_axis store Axis.Child id in
    let rec kids acc =
      match next () with
      | None -> List.rev acc
      | Some (child : Store.info) -> kids (build child.Store.id :: acc)
    in
    Tree.make info.Store.tag (kids [])
  in
  build id

let subtree_scanned store (id : Node_id.t) =
  (* One sequential pass: decode every record of every page into memory. *)
  let first = Store.first_page store in
  let count = Store.page_count store in
  let records : (int, Node_record.t) Hashtbl.t array = Array.init count (fun _ -> Hashtbl.create 64) in
  for pid = first to first + count - 1 do
    let view = Store.view store pid in
    let frame_records = records.(pid - first) in
    Store.iter_records view (fun slot record -> Hashtbl.replace frame_records slot record);
    Store.release store view
  done;
  (* Pure in-memory assembly. *)
  let record (nid : Node_id.t) = Hashtbl.find records.(nid.Node_id.pid - first) nid.Node_id.slot in
  let rec build (nid : Node_id.t) =
    match record nid with
    | Node_record.Core c ->
      Tree.make c.Node_record.tag (chain nid.Node_id.pid c.Node_record.first_child)
    | Node_record.Down _ | Node_record.Up _ ->
      invalid_arg "Export.subtree_scanned: not a core record"
  and chain pid slot_opt =
    match slot_opt with
    | None -> []
    | Some slot -> begin
      let nid = Node_id.make ~pid ~slot in
      match record nid with
      | Node_record.Core c -> build nid :: chain pid c.Node_record.next_sibling
      | Node_record.Down d -> begin
        match record d.Node_record.target with
        | Node_record.Up u ->
          chain d.Node_record.target.Node_id.pid u.Node_record.first_child
          @ chain pid d.Node_record.next_sibling
        | Node_record.Core _ | Node_record.Down _ -> assert false
      end
      | Node_record.Up _ -> assert false
    end
  in
  build id

let document ?(scan = true) store =
  if scan then subtree_scanned store (Store.root store) else subtree store (Store.root store)

let to_xml ?(scan = true) store id =
  let tree = if scan then subtree_scanned store id else subtree store id in
  Xnav_xml.Xml_writer.to_string ~declaration:true tree
