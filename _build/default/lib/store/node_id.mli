(** Node identifiers: RIDs of node records (paper Sec. 3.2, Example 2).

    A NodeID names one record — core or border — as a (page, slot) pair.
    The cluster a node belongs to is derivable from its NodeID (paper
    Sec. 3.3): here the cluster simply {e is} the page. *)

type t = { pid : int; slot : int }

val make : pid:int -> slot:int -> t

val cluster : t -> int
(** The cluster id — the page number. Cost-driven scheduling groups and
    orders pending work by this value. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Orders by cluster first, then slot — the order XSchedule keeps its
    queue in. *)

val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

module Tbl : Hashtbl.S with type key = t
