(** Disk-image persistence: one file holds the simulated disk's pages
    plus a catalog of the documents stored on it, so a clustered store
    survives process restarts (the CLI's [import] / [--image] flow).

    Format (little-endian, versioned):
    {v
    "XNAVIMG1"                magic
    disk config               page_size u32, five cost floats
    page count u32, pages     raw page bytes
    catalog count u32         per document: root (pid,slot), first page,
                              page count, node count, height,
                              tag list (name, count)
    v}

    Buffer state is deliberately not persisted — a loaded image starts
    with a cold cache, matching the benchmark regime. *)

exception Corrupt of string
(** Raised by {!load} on bad magic, truncation, or version mismatch. *)

val save : string -> Store.t list -> unit
(** [save path stores] writes the shared disk of [stores] and their
    catalog to [path].
    @raise Invalid_argument if [stores] is empty or they do not share
    one disk. *)

val load :
  ?capacity:int -> ?policy:Xnav_storage.Io_scheduler.policy -> string -> Store.t list
(** [load path] recreates the disk, one buffer pool (default 1000
    frames, elevator policy) and every catalogued store, in the order
    they were saved. *)
