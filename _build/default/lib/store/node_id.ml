type t = { pid : int; slot : int }

let make ~pid ~slot = { pid; slot }
let cluster id = id.pid
let equal a b = a.pid = b.pid && a.slot = b.slot

let compare a b =
  match Stdlib.compare a.pid b.pid with
  | 0 -> Stdlib.compare a.slot b.slot
  | c -> c

let hash a = (a.pid * 65599) + a.slot
let pp ppf id = Format.fprintf ppf "%d.%d" id.pid id.slot
let to_string id = Format.asprintf "%a" pp id

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
