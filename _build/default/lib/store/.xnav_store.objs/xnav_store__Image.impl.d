lib/store/image.ml: Buffer Bytes Doc_stats Int32 Int64 List Node_id Store String Xnav_storage Xnav_xml
