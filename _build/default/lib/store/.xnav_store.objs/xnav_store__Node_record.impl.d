lib/store/node_record.ml: Buffer Char Format Node_id Printf String Xnav_storage Xnav_xml
