lib/store/update.ml: Array Node_id Node_record Option Printf Store String Xnav_storage Xnav_xml
