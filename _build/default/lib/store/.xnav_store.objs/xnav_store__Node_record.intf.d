lib/store/node_record.mli: Format Node_id Xnav_xml
