lib/store/export.mli: Node_id Store Xnav_xml
