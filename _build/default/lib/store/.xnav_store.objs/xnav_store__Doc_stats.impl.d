lib/store/doc_stats.ml: Array Buffer Float Hashtbl Int32 List Option String Xnav_xml Xnav_xpath
