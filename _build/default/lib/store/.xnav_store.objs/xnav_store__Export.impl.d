lib/store/export.ml: Array Hashtbl List Node_id Node_record Store Xnav_xml
