lib/store/image.mli: Store Xnav_storage
