lib/store/node_id.ml: Format Hashtbl Map Set Stdlib
