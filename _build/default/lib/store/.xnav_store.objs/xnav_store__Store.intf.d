lib/store/store.mli: Doc_stats Import Node_id Node_record Xnav_storage Xnav_xml
