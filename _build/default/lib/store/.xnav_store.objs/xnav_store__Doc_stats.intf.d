lib/store/doc_stats.mli: Buffer Xnav_xml Xnav_xpath
