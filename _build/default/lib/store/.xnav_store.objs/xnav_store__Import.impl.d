lib/store/import.ml: Array Doc_stats Int64 List Node_id Node_record Printf Queue Stdlib Xnav_storage Xnav_xml
