lib/store/node_id.mli: Format Hashtbl Map Set
