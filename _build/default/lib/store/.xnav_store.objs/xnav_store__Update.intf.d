lib/store/update.mli: Node_id Store Xnav_xml
