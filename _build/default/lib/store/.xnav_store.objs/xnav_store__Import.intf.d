lib/store/import.mli: Doc_stats Node_id Xnav_storage Xnav_xml
