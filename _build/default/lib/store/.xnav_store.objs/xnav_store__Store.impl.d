lib/store/store.ml: Doc_stats Import List Node_id Node_record Printf String Xnav_storage Xnav_xml
