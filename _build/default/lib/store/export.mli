(** Document export: materialising stored (sub)trees back into memory —
    the paper's outlook application ("how our method can be used to
    speed up document export, where our 'path instance' becomes the
    textual representation of a whole document", Sec. 7).

    Two strategies with the familiar cost profile:

    - {!subtree} follows the tree structure with the global navigation
      primitives — random I/O proportional to the subtree's page
      footprint, but only touching pages the subtree lives on;
    - {!subtree_scanned} reads {e every} page of the document once,
      sequentially, into a record table and assembles the result purely
      in memory — linear in document size, layout-independent, and the
      clear winner for whole-document export (the usual scan-vs-navigate
      crossover applies to small subtrees). *)

val subtree : Store.t -> Node_id.t -> Xnav_xml.Tree.t
(** Rebuild the subtree rooted at the core node, by navigation.
    @raise Invalid_argument on a border record. *)

val subtree_scanned : Store.t -> Node_id.t -> Xnav_xml.Tree.t
(** Same result via one sequential scan of the whole document. *)

val document : ?scan:bool -> Store.t -> Xnav_xml.Tree.t
(** The whole document ([scan] defaults to [true]). *)

val to_xml : ?scan:bool -> Store.t -> Node_id.t -> string
(** XML text of the subtree (via {!Xnav_xml.Xml_writer}). *)
