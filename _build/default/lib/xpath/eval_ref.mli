(** Reference evaluator over in-memory trees.

    Straightforward node-set semantics: each step maps the current
    context set through its axis, filters by the node test, removes
    duplicates and restores document order. This is the semantic oracle
    every physical plan is validated against in the test suite.

    The tree must have been indexed ({!Xnav_xml.Tree.index}) so that
    preorder ranks identify nodes; {!eval} (re)indexes the root it is
    given. *)

val eval : Xnav_xml.Tree.t -> Path.t -> Xnav_xml.Tree.t list
(** [eval context path] is the result node list, in document order,
    without duplicates. [context] is the context node (step 0); it need
    not be the document root. *)

val count : Xnav_xml.Tree.t -> Path.t -> int
