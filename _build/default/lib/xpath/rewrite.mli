(** Logical path rewrites — the "orthogonal logical optimization
    techniques" the paper's requirement 4 demands interoperability with
    (citing Hidders/Michiels-style normalisation).

    All rules preserve node-set semantics (property-tested against the
    reference evaluator):

    - [descendant-or-self::node()/child::t  ==>  descendant::t]
      (the classic [//] compression — shortens the XStep chain and, for
      reordered plans, reduces the number of speculative instances per
      border, which are generated per step);
    - [descendant-or-self::node()/descendant(-or-self)::t  ==>
       descendant(-or-self)::t];
    - [descendant(-or-self)::node()/descendant-or-self::n ==> fused]
      symmetrically;
    - [self::node()] steps are dropped (unless the path would become
      empty);
    - [child::node()] is left alone ([node()] matches only elements in
      this model, but the step still moves). *)

val normalize : Path.t -> Path.t
(** Applies all rules to a fixpoint. *)

val compress_descendant : Path.t -> Path.t
(** Only the [//]-compression rule, once over the path. *)

val drop_trivial_self : Path.t -> Path.t
(** Only the [self::node()] elimination. *)
