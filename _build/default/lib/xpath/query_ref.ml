module Tree = Xnav_xml.Tree
module Tree_axes = Xnav_xml.Tree_axes

let rec holds node = function
  | Query.Exists steps -> eval_branch [ node ] steps <> []
  | Query.And (a, b) -> holds node a && holds node b
  | Query.Or (a, b) -> holds node a || holds node b
  | Query.Not p -> not (holds node p)

and eval_branch contexts branch =
  let module Int_set = Set.Make (Int) in
  let qstep acc (q : Query.qstep) =
    let seen = ref Int_set.empty in
    let out = ref [] in
    List.iter
      (fun node ->
        List.iter
          (fun result ->
            if
              Path.matches q.Query.step.Path.test result.Tree.tag
              && (not (Int_set.mem result.Tree.preorder !seen))
              && List.for_all (holds result) q.Query.predicates
            then begin
              seen := Int_set.add result.Tree.preorder !seen;
              out := result :: !out
            end)
          (Tree_axes.nodes q.Query.step.Path.axis node))
      acc;
    List.sort (fun a b -> Stdlib.compare a.Tree.preorder b.Tree.preorder) !out
  in
  List.fold_left qstep contexts branch

let eval context query =
  ignore (Tree.index (Tree.root context));
  let results = List.concat_map (eval_branch [ context ]) query in
  let module Int_set = Set.Make (Int) in
  let seen = ref Int_set.empty in
  List.filter
    (fun node ->
      if Int_set.mem node.Tree.preorder !seen then false
      else begin
        seen := Int_set.add node.Tree.preorder !seen;
        true
      end)
    (List.sort (fun a b -> Stdlib.compare a.Tree.preorder b.Tree.preorder) results)

let count context query = List.length (eval context query)

let holds context predicate =
  ignore (Tree.index (Tree.root context));
  holds context predicate
