module Axis = Xnav_xml.Axis
module Tag = Xnav_xml.Tag

type node_test = Name of Tag.t | Wildcard | Any_node
type step = { axis : Axis.t; test : node_test }
type t = step list

let step axis test = { axis; test }
let child name = { axis = Axis.Child; test = Name (Tag.of_string name) }
let descendant name = { axis = Axis.Descendant; test = Name (Tag.of_string name) }
let descendant_or_self_any = { axis = Axis.Descendant_or_self; test = Any_node }

let matches test tag =
  match test with
  | Name expected -> Tag.equal expected tag
  | Wildcard | Any_node -> true

let length path = List.length path
let is_downward path = List.for_all (fun s -> Axis.is_downward s.axis) path

let from_root_element = function
  | { axis = Axis.Child; test } :: rest -> { axis = Axis.Self; test } :: rest
  | path -> path

let starts_with_descendant_any = function
  | { axis = Axis.Descendant_or_self; test = Any_node } :: _ -> true
  | _ -> false

let test_to_string = function
  | Name tag -> Tag.to_string tag
  | Wildcard -> "*"
  | Any_node -> "node()"

let pp_step ppf s = Format.fprintf ppf "%a::%s" Axis.pp s.axis (test_to_string s.test)

let pp ppf path =
  List.iter (fun s -> Format.fprintf ppf "/%a" pp_step s) path

let to_string path = Format.asprintf "%a" pp path

let equal_step a b = Axis.equal a.axis b.axis && a.test = b.test
let equal a b = List.length a = List.length b && List.for_all2 equal_step a b
