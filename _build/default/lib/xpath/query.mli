(** Queries beyond plain location paths: per-step predicates and
    top-level unions.

    The paper's algebra covers predicate-free location paths and is
    explicitly designed to be "part of a more expressive algebra capable
    of representing access plans for larger subsets of XPath" (Sec. 5).
    This module is that larger layer: a query is a union of branches,
    each a chain of steps that may carry existential predicates
    (relative sub-queries combined with [and]/[or]/[not]).

    Physical evaluation ({!Xnav_core.Query_exec}) decomposes each branch
    into predicate-free trunk segments — which run through the reordered
    operator plans — interleaved with predicate filtering via the global
    navigation primitives. *)

type qstep = { step : Path.step; predicates : predicate list }

and predicate =
  | Exists of qstep list  (** A relative sub-query with at least one result. *)
  | And of predicate * predicate
  | Or of predicate * predicate
  | Not of predicate

type branch = qstep list

type t = branch list
(** Non-empty; a singleton is a plain (possibly predicated) path. *)

val of_path : Path.t -> t
(** A plain path as a one-branch, predicate-free query. *)

val trunk : branch -> Path.t
(** The branch's steps with predicates stripped. *)

val has_predicates : t -> bool

val from_root_element : t -> t
(** {!Path.from_root_element} applied to every branch. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
