(** Location-path ASTs: the query language fragment of the paper
    (Sec. 4.1).

    A location path is a sequence of steps, each an axis plus a node
    test. Node tests are "a subset of the tag alphabet": a tag name, the
    wildcard [*], or [node()]. Predicates are outside the model, exactly
    as in the paper; the physical algebra is designed to slot into a
    fuller algebra that provides them. *)

type node_test =
  | Name of Xnav_xml.Tag.t
  | Wildcard  (** [*] — any element. *)
  | Any_node  (** [node()] — any node (elements only in this model). *)

type step = { axis : Xnav_xml.Axis.t; test : node_test }

type t = step list
(** Steps [pi_1 .. pi_n]; step 0 (the context) is implicit. *)

val step : Xnav_xml.Axis.t -> node_test -> step
val child : string -> step
val descendant : string -> step
val descendant_or_self_any : step
(** The step inserted for the [//] abbreviation. *)

val matches : node_test -> Xnav_xml.Tag.t -> bool

val length : t -> int
(** [|pi|], the number of location steps. *)

val is_downward : t -> bool
(** Whether every step uses a downward axis — the condition for the
    reordering plans (XSchedule / XScan). *)

val from_root_element : t -> t
(** Adjusts an absolute path for evaluation from the {e root element}
    rather than the standard XPath document node above it: a leading
    [child::] step becomes [self::] (so [/site/...] evaluated from the
    [site] element behaves as from the document node). Paths beginning
    with [//] are returned unchanged — their result from the root element
    differs from the document-node result only for the root element's
    own tag. *)

val starts_with_descendant_any : t -> bool
(** Whether the path begins with [descendant-or-self::node()] — enables
    the paper's [//] optimisation for scan plans (Sec. 5.4.5.4). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val pp_step : Format.formatter -> step -> unit
val equal : t -> t -> bool
