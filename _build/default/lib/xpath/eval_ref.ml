module Tree = Xnav_xml.Tree
module Tree_axes = Xnav_xml.Tree_axes

let eval context path =
  ignore (Tree.index (Tree.root context));
  let step acc (s : Path.step) =
    let module Int_set = Set.Make (Int) in
    let seen = ref Int_set.empty in
    let out = ref [] in
    List.iter
      (fun node ->
        List.iter
          (fun result ->
            if Path.matches s.test result.Tree.tag && not (Int_set.mem result.Tree.preorder !seen)
            then begin
              seen := Int_set.add result.Tree.preorder !seen;
              out := result :: !out
            end)
          (Tree_axes.nodes s.axis node))
      acc;
    List.sort (fun a b -> Stdlib.compare a.Tree.preorder b.Tree.preorder) !out
  in
  List.fold_left step [ context ] path

let count context path = List.length (eval context path)
