lib/xpath/path.ml: Format List Xnav_xml
