lib/xpath/xpath_parser.mli: Path Query
