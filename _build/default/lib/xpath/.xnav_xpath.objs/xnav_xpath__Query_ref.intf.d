lib/xpath/query_ref.mli: Query Xnav_xml
