lib/xpath/path.mli: Format Xnav_xml
