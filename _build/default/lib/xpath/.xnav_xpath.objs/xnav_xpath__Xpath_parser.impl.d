lib/xpath/xpath_parser.ml: List Path Printf Query String Xnav_xml
