lib/xpath/rewrite.ml: List Path Xnav_xml
