lib/xpath/query.ml: Format List Path
