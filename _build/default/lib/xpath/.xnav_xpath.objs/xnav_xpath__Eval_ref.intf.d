lib/xpath/eval_ref.mli: Path Xnav_xml
