lib/xpath/query_ref.ml: Int List Path Query Set Stdlib Xnav_xml
