lib/xpath/eval_ref.ml: Int List Path Set Stdlib Xnav_xml
