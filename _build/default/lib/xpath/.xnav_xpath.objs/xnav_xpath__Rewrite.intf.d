lib/xpath/rewrite.mli: Path
