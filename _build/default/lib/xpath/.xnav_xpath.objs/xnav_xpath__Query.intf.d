lib/xpath/query.mli: Format Path
