(** Reference evaluator for extended queries (predicates, unions) over
    in-memory trees — the semantic oracle for the hybrid physical
    executor ({!Xnav_core.Query_exec}). *)

val eval : Xnav_xml.Tree.t -> Query.t -> Xnav_xml.Tree.t list
(** Result nodes in document order, duplicate-free. The tree is
    (re)indexed by the call. *)

val count : Xnav_xml.Tree.t -> Query.t -> int

val holds : Xnav_xml.Tree.t -> Query.predicate -> bool
(** Whether the predicate holds at the given context node. *)
