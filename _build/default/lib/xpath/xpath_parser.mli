(** Parser for the location-path fragment.

    Grammar (whitespace-insensitive):
    {v
    path  ::= '/'? relstep ( '/' relstep | '//' step )*
            | '//' step ( '/' relstep | '//' step )*
    relstep ::= step
    step  ::= ( axis '::' )? test  |  '.'  |  '..'
    axis  ::= 'self' | 'child' | 'descendant' | 'descendant-or-self'
            | 'parent' | 'ancestor' | 'ancestor-or-self'
            | 'following-sibling' | 'preceding-sibling'
    test  ::= NAME | '*' | 'node()'
    v}

    ['//'] abbreviates a [descendant-or-self::node()] step followed by
    the next step; ['.'] is [self::node()]; ['..'] is [parent::node()].
    The default axis is [child]. A leading ['/'] only marks the path as
    starting at the document root — the produced step list is the same;
    evaluation always starts from an explicit context node. *)

exception Parse_error of { position : int; message : string }

val parse : string -> Path.t
(** Parses a plain location path.
    @raise Parse_error on malformed input, or if the input uses
    predicates or unions (use {!parse_query} for those). *)

val parse_query : string -> Query.t
(** Parses the extended syntax: per-step predicates
    ([step\[rel-path and not(other)\]]) and top-level unions
    ([p1 | p2]). Predicates contain relative sub-queries combined with
    [and], [or] and [not(...)]; a bare relative sub-query is an
    existence test. @raise Parse_error on malformed input. *)
