type qstep = { step : Path.step; predicates : predicate list }

and predicate =
  | Exists of qstep list
  | And of predicate * predicate
  | Or of predicate * predicate
  | Not of predicate

type branch = qstep list
type t = branch list

let of_path path = [ List.map (fun step -> { step; predicates = [] }) path ]
let trunk branch = List.map (fun q -> q.step) branch

let has_predicates query =
  List.exists (fun branch -> List.exists (fun q -> q.predicates <> []) branch) query

let from_root_element query =
  List.map
    (fun branch ->
      match branch with
      | first :: rest -> begin
        match Path.from_root_element [ first.step ] with
        | [ adjusted ] -> { first with step = adjusted } :: rest
        | _ -> branch
      end
      | [] -> [])
    query

let rec pp_predicate ppf = function
  | Exists steps -> pp_branch_inner ppf steps
  | And (a, b) -> Format.fprintf ppf "%a and %a" pp_predicate a pp_predicate b
  | Or (a, b) -> Format.fprintf ppf "%a or %a" pp_predicate a pp_predicate b
  | Not p -> Format.fprintf ppf "not(%a)" pp_predicate p

and pp_qstep ppf q =
  Path.pp_step ppf q.step;
  List.iter (fun p -> Format.fprintf ppf "[%a]" pp_predicate p) q.predicates

and pp_branch_inner ppf = function
  | [] -> ()
  | [ q ] -> pp_qstep ppf q
  | q :: rest ->
    pp_qstep ppf q;
    Format.pp_print_char ppf '/';
    pp_branch_inner ppf rest

let pp_branch ppf branch =
  List.iter (fun q -> Format.fprintf ppf "/%a" pp_qstep q) branch

let pp ppf = function
  | [] -> ()
  | [ branch ] -> pp_branch ppf branch
  | first :: rest ->
    pp_branch ppf first;
    List.iter (fun branch -> Format.fprintf ppf " | %a" pp_branch branch) rest

let to_string query = Format.asprintf "%a" pp query
