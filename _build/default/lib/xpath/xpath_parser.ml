module Axis = Xnav_xml.Axis
module Tag = Xnav_xml.Tag

exception Parse_error of { position : int; message : string }

type state = { input : string; mutable pos : int }

let fail st message = raise (Parse_error { position = st.pos; message })
let eof st = st.pos >= String.length st.input
let peek st = if eof st then None else Some st.input.[st.pos]

let skip_space st =
  while (not (eof st)) && (st.input.[st.pos] = ' ' || st.input.[st.pos] = '\t') do
    st.pos <- st.pos + 1
  done

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.input && String.sub st.input st.pos n = s

let eat st s =
  if looking_at st s then begin
    st.pos <- st.pos + String.length s;
    true
  end
  else false

let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_name_char c = is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

(* Names may contain '-', so axis keywords are recognised by checking for
   the '::' separator after a full name. A single ':' (namespace prefix)
   is part of the name; '::' is the axis separator and stops it. *)
let parse_name st =
  let start = st.pos in
  (match peek st with
  | Some c when is_name_start c -> st.pos <- st.pos + 1
  | _ -> fail st "expected a name");
  let continues () =
    (not (eof st))
    &&
    let c = st.input.[st.pos] in
    is_name_char c
    || (c = ':' && st.pos + 1 < String.length st.input && st.input.[st.pos + 1] <> ':'
       && is_name_char st.input.[st.pos + 1])
  in
  while continues () do
    st.pos <- st.pos + 1
  done;
  String.sub st.input start (st.pos - start)

let parse_test st =
  skip_space st;
  if eat st "*" then Path.Wildcard
  else begin
    let name = parse_name st in
    if String.equal name "node" && eat st "()" then Path.Any_node
    else Path.Name (Tag.of_string name)
  end

let parse_step st =
  skip_space st;
  if eat st ".." then Path.step Axis.Parent Path.Any_node
  else if eat st "." then Path.step Axis.Self Path.Any_node
  else if eat st "*" then Path.step Axis.Child Path.Wildcard
  else begin
    let start = st.pos in
    let name = parse_name st in
    if eat st "::" then begin
      match Axis.of_string name with
      | Some axis -> Path.step axis (parse_test st)
      | None ->
        st.pos <- start;
        fail st (Printf.sprintf "unknown axis %S" name)
    end
    else if String.equal name "node" && eat st "()" then Path.step Axis.Child Path.Any_node
    else Path.step Axis.Child (Path.Name (Tag.of_string name))
  end

(* A keyword is only a keyword when not part of a longer name. *)
let eat_keyword st kw =
  skip_space st;
  let start = st.pos in
  if eat st kw then begin
    if (not (eof st)) && is_name_char st.input.[st.pos] then begin
      st.pos <- start;
      false
    end
    else true
  end
  else false

(* qstep := step predicate*  ;  predicate := '[' or_expr ']' *)
let rec parse_qstep st =
  let step = parse_step st in
  let rec predicates acc =
    skip_space st;
    if eat st "[" then begin
      let p = parse_or st in
      skip_space st;
      if not (eat st "]") then fail st "expected ']'";
      predicates (p :: acc)
    end
    else List.rev acc
  in
  { Query.step; predicates = predicates [] }

and parse_or st =
  let left = parse_and st in
  if eat_keyword st "or" then Query.Or (left, parse_or st) else left

and parse_and st =
  let left = parse_unary st in
  if eat_keyword st "and" then Query.And (left, parse_and st) else left

and parse_unary st =
  skip_space st;
  if eat_keyword st "not" then begin
    skip_space st;
    if not (eat st "(") then fail st "expected '(' after not";
    let inner = parse_or st in
    skip_space st;
    if not (eat st ")") then fail st "expected ')'";
    Query.Not inner
  end
  else if eat st "(" then begin
    let inner = parse_or st in
    skip_space st;
    if not (eat st ")") then fail st "expected ')'";
    inner
  end
  else Query.Exists (parse_relative st)

(* A relative sub-query inside a predicate: qsteps joined by / and //. *)
and parse_relative st =
  skip_space st;
  let steps = ref [] in
  let push q = steps := q :: !steps in
  if eat st "//" then push { Query.step = Path.descendant_or_self_any; predicates = [] };
  push (parse_qstep st);
  let rec more () =
    if eat st "//" then begin
      push { Query.step = Path.descendant_or_self_any; predicates = [] };
      push (parse_qstep st);
      more ()
    end
    else if looking_at st "/" && not (looking_at st "//") then begin
      ignore (eat st "/");
      push (parse_qstep st);
      more ()
    end
  in
  more ();
  List.rev !steps

let parse_branch st =
  skip_space st;
  if eof st then fail st "empty path";
  let steps = ref [] in
  let push q = steps := q :: !steps in
  if eat st "//" then push { Query.step = Path.descendant_or_self_any; predicates = [] }
  else ignore (eat st "/");
  skip_space st;
  if eof st then fail st "path has no steps";
  push (parse_qstep st);
  let rec more () =
    skip_space st;
    if eat st "//" then begin
      push { Query.step = Path.descendant_or_self_any; predicates = [] };
      push (parse_qstep st);
      more ()
    end
    else if looking_at st "/" && not (looking_at st "//") then begin
      ignore (eat st "/");
      push (parse_qstep st);
      more ()
    end
  in
  more ();
  List.rev !steps

let parse_query input =
  let st = { input; pos = 0 } in
  let branches = ref [ parse_branch st ] in
  let rec unions () =
    skip_space st;
    if eat st "|" then begin
      branches := parse_branch st :: !branches;
      unions ()
    end
    else if not (eof st) then fail st "trailing characters after path"
  in
  unions ();
  List.rev !branches

let parse input =
  match parse_query input with
  | [ branch ] when List.for_all (fun q -> q.Query.predicates = []) branch ->
    Query.trunk branch
  | [ _ ] ->
    raise
      (Parse_error
         { position = 0; message = "predicates require parse_query, not parse" })
  | _ ->
    raise (Parse_error { position = 0; message = "unions require parse_query, not parse" })
