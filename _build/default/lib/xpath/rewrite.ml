module Axis = Xnav_xml.Axis
open Path

let is_dos_any (s : step) = s.axis = Axis.Descendant_or_self && s.test = Any_node
let is_desc_any (s : step) = s.axis = Axis.Descendant && s.test = Any_node

(* descendant-or-self::node() followed by a downward step fuses. *)
let fuse_pair a b =
  if is_dos_any a then begin
    match b.axis with
    | Axis.Child -> Some { b with axis = Axis.Descendant }
    | Axis.Descendant | Axis.Descendant_or_self -> Some b
    | Axis.Self -> Some { b with axis = Axis.Descendant_or_self }
    | Axis.Parent | Axis.Ancestor | Axis.Ancestor_or_self | Axis.Following_sibling
    | Axis.Preceding_sibling ->
      None
  end
  else if is_desc_any a then begin
    (* descendant::node()/descendant-or-self::t == descendant::t, and
       descendant::node()/self::t == descendant::t. Note that
       descendant::node()/descendant::t is NOT descendant::t (it misses
       depth-1 children) and must not fuse. *)
    match b.axis with
    | Axis.Descendant_or_self | Axis.Self -> Some { b with axis = Axis.Descendant }
    | Axis.Descendant | Axis.Child | Axis.Parent | Axis.Ancestor | Axis.Ancestor_or_self
    | Axis.Following_sibling | Axis.Preceding_sibling ->
      None
  end
  else None

let compress_descendant path =
  let rec go = function
    | a :: b :: rest -> begin
      match fuse_pair a b with
      | Some fused -> go (fused :: rest)
      | None -> a :: go (b :: rest)
    end
    | short -> short
  in
  go path

let is_trivial_self (s : step) = s.axis = Axis.Self && s.test = Any_node

let drop_trivial_self path =
  match List.filter (fun s -> not (is_trivial_self s)) path with
  | [] -> (
    (* A path of pure self::node() steps reduces to a single one. *)
    match path with [] -> [] | s :: _ -> [ s ])
  | reduced -> reduced

let rec normalize path =
  let next = compress_descendant (drop_trivial_self path) in
  if Path.equal next path then path else normalize next
