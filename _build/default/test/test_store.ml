(* Tests for xnav_store: NodeIDs, the record codec, the clustering
   import, and both navigation layers (global and intra-cluster cursors),
   validated against the in-memory tree oracle. *)

module Tag = Xnav_xml.Tag
module Tree = Xnav_xml.Tree
module Axis = Xnav_xml.Axis
module Tree_axes = Xnav_xml.Tree_axes
module Ordpath = Xnav_xml.Ordpath
module Disk = Xnav_storage.Disk
module Buffer_manager = Xnav_storage.Buffer_manager
module Node_id = Xnav_store.Node_id
module Node_record = Xnav_store.Node_record
module Import = Xnav_store.Import
module Store = Xnav_store.Store

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let all_strategies = [ Import.Dfs; Import.Bfs; Import.Scattered 42 ]

(* --- Node_id -------------------------------------------------------------- *)

let node_id_tests =
  [
    Alcotest.test_case "compare orders by cluster first" `Quick (fun () ->
        let a = Node_id.make ~pid:1 ~slot:9 and b = Node_id.make ~pid:2 ~slot:0 in
        check bool "cluster order" true (Node_id.compare a b < 0);
        check int "cluster" 1 (Node_id.cluster a));
    Alcotest.test_case "set and table behave" `Quick (fun () ->
        let a = Node_id.make ~pid:1 ~slot:2 in
        let s = Node_id.Set.add a Node_id.Set.empty in
        check bool "mem" true (Node_id.Set.mem (Node_id.make ~pid:1 ~slot:2) s);
        let t = Node_id.Tbl.create 4 in
        Node_id.Tbl.replace t a 42;
        check (Alcotest.option int) "tbl" (Some 42)
          (Node_id.Tbl.find_opt t (Node_id.make ~pid:1 ~slot:2)));
  ]

(* --- Node_record codec ----------------------------------------------------- *)

let record_gen =
  let open QCheck2.Gen in
  let slot = oneof [ return None; int_range 0 1000 >|= Option.some ] in
  let node_id = pair (int_range 0 100000) (int_range 0 2000) >|= fun (pid, slot) ->
    Node_id.make ~pid ~slot
  in
  let ordpath =
    list_size (int_range 0 5) (int_range 0 40) >|= fun steps ->
    List.fold_left (fun l k -> Ordpath.child l k) Ordpath.root steps
  in
  oneof
    [
      ( ordpath >>= fun ordpath ->
        slot >>= fun parent ->
        slot >>= fun first_child ->
        slot >>= fun last_child ->
        slot >>= fun next_sibling ->
        slot >|= fun prev_sibling ->
        Node_record.Core
          {
            tag = Tag.of_string "rec";
            ordpath;
            parent;
            first_child;
            last_child;
            next_sibling;
            prev_sibling;
          } );
      ( slot >>= fun parent ->
        slot >>= fun next_sibling ->
        slot >>= fun prev_sibling ->
        node_id >|= fun target -> Node_record.Down { parent; next_sibling; prev_sibling; target }
      );
      ( slot >>= fun first_child ->
        slot >>= fun last_child ->
        node_id >>= fun target ->
        pair node_id bool >|= fun (owner, continues) ->
        Node_record.Up { first_child; last_child; target; owner; continues } );
    ]

let record_props =
  [
    QCheck2.Test.make ~name:"node_record: codec round-trip" ~count:500 record_gen
      ~print:(fun r -> Format.asprintf "%a" Node_record.pp r)
      (fun record ->
        Node_record.equal record (Node_record.decode (Node_record.encode record))
        && Node_record.encoded_size record = String.length (Node_record.encode record));
  ]

let record_tests =
  [
    Alcotest.test_case "target of a core record raises" `Quick (fun () ->
        let core =
          Node_record.Core
            {
              tag = Tag.of_string "x";
              ordpath = Ordpath.root;
              parent = None;
              first_child = None;
              last_child = None;
              next_sibling = None;
              prev_sibling = None;
            }
        in
        (match Node_record.target core with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument"));
    Alcotest.test_case "is_border" `Quick (fun () ->
        let down =
          Node_record.Down
            {
              parent = None;
              next_sibling = None;
              prev_sibling = None;
              target = Node_id.make ~pid:0 ~slot:0;
            }
        in
        check bool "down" true (Node_record.is_border down));
  ]

(* --- Import invariants ------------------------------------------------------ *)

let reconstruct = Gen.reconstruct

let import_tests =
  List.concat_map
    (fun strategy ->
      let name suffix = Printf.sprintf "%s: %s" (Import.strategy_to_string strategy) suffix in
      [
        Alcotest.test_case (name "reconstruction equals the original") `Quick (fun () ->
            let doc = Gen.sample_doc () in
            let store, _ = Gen.import_store ~strategy ~payload:200 doc in
            check bool "equal" true (Tree.equal doc (reconstruct store)));
        Alcotest.test_case (name "multiple clusters arise under small payloads") `Quick
          (fun () ->
            let doc = Gen.wide_tree ~children:60 () in
            let _, import = Gen.import_store ~strategy ~payload:300 doc in
            check bool "several pages" true (import.Import.page_count > 3);
            check bool "borders exist" true (import.Import.border_count > 0));
        Alcotest.test_case (name "node ids are core records") `Quick (fun () ->
            let doc = Gen.sample_doc () in
            let store, import = Gen.import_store ~strategy ~payload:200 doc in
            Array.iter
              (fun id ->
                match Store.read store id with
                | Node_record.Core _ -> ()
                | _ -> Alcotest.fail "node_ids must point at core records")
              import.Import.node_ids);
      ])
    all_strategies
  @ [
      Alcotest.test_case "single-page document has no borders" `Quick (fun () ->
          let doc = Gen.sample_doc () in
          let _, import = Gen.import_store ~page_size:4096 doc in
          check int "pages" 1 import.Import.page_count;
          check int "borders" 0 import.Import.border_count);
      Alcotest.test_case "tag_counts flow through to the store" `Quick (fun () ->
          let doc = Gen.sample_doc () in
          let store, _ = Gen.import_store doc in
          check int "A count" 4 (Store.tag_count store (Tag.of_string "A"));
          check int "missing tag" 0 (Store.tag_count store (Tag.of_string "no-such-tag")));
      Alcotest.test_case "rejects pages too small for a node" `Quick (fun () ->
          let doc = Gen.sample_doc () in
          let disk = Gen.small_disk ~page_size:64 () in
          (match Import.run disk doc with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.fail "expected Invalid_argument"));
      Alcotest.test_case "two documents coexist on one disk" `Quick (fun () ->
          let disk = Gen.small_disk ~page_size:512 () in
          let i1 = Import.run disk (Gen.sample_doc ()) in
          let i2 = Import.run disk (Gen.deep_tree ~depth:30 ()) in
          check bool "disjoint pages" true
            (i2.Import.first_page >= i1.Import.first_page + i1.Import.page_count);
          let buffer = Buffer_manager.create ~capacity:16 disk in
          let s1 = Store.attach buffer i1 and s2 = Store.attach buffer i2 in
          check bool "doc1 intact" true (Tree.equal (Gen.sample_doc ()) (reconstruct s1));
          check bool "doc2 intact" true (Tree.equal (Gen.deep_tree ~depth:30 ()) (reconstruct s2)));
    ]

(* --- Global navigation vs the tree oracle ----------------------------------- *)

let drain next =
  let rec go acc = match next () with None -> List.rev acc | Some x -> go (x :: acc) in
  go []

(* Check every axis from every node of [doc] against the oracle. *)
let check_navigation ?strategy ?payload ?page_size doc =
  let store, import = Gen.import_store ?strategy ?payload ?page_size doc in
  ignore (Tree.index doc);
  let ok = ref true in
  Tree.iter
    (fun node ->
      let id = import.Import.node_ids.(node.Tree.preorder) in
      List.iter
        (fun axis ->
          let expected =
            List.map (fun n -> n.Tree.preorder) (Tree_axes.nodes axis node)
          in
          let actual =
            List.map
              (fun (inf : Store.info) ->
                (* Recover preorder through the node_ids array. *)
                let found = ref (-1) in
                Array.iteri
                  (fun pre nid -> if Node_id.equal nid inf.id then found := pre)
                  import.Import.node_ids;
                !found)
              (drain (Store.global_axis store axis id))
          in
          if expected <> actual then ok := false)
        Axis.all)
    doc;
  !ok && Buffer_manager.pinned_count (Store.buffer store) = 0

let navigation_tests =
  List.concat_map
    (fun strategy ->
      let name suffix = Printf.sprintf "%s: %s" (Import.strategy_to_string strategy) suffix in
      [
        Alcotest.test_case (name "all axes on the sample doc") `Quick (fun () ->
            check bool "oracle match" true
              (check_navigation ~strategy ~payload:200 (Gen.sample_doc ())));
        Alcotest.test_case (name "all axes on a wide tree (run splitting)") `Quick (fun () ->
            check bool "oracle match" true
              (check_navigation ~strategy ~payload:250 (Gen.wide_tree ~children:80 ())));
        Alcotest.test_case (name "all axes on a deep tree") `Quick (fun () ->
            check bool "oracle match" true
              (check_navigation ~strategy ~payload:200 (Gen.deep_tree ~depth:40 ())));
      ])
    all_strategies

let navigation_props =
  [
    QCheck2.Test.make ~name:"store: global navigation matches the tree oracle" ~count:60
      (QCheck2.Gen.pair (Gen.tree_gen ~size:50 ()) (QCheck2.Gen.oneofl all_strategies))
      ~print:(fun (tree, strategy) ->
        Printf.sprintf "%s / %s" (Gen.tree_print tree) (Import.strategy_to_string strategy))
      (fun (tree, strategy) -> check_navigation ~strategy ~payload:180 tree);
  ]

(* --- Intra-cluster cursors + crossing resolution ----------------------------- *)

(* Evaluate one axis step the way the physical operators do: cursors on
   the context cluster, recursing into target clusters at crossings. *)
let collect_via_cursors store axis (id : Node_id.t) =
  let out = ref [] in
  let rec process view cursor =
    match Store.next_emission cursor with
    | None -> ()
    | Some (Store.Reached (slot, core)) ->
      out := (Store.id_of view slot, core.Node_record.tag) :: !out;
      process view cursor
    | Some (Store.Crossing (_slot, target)) ->
      let tview = Store.view store (Node_id.cluster target) in
      process tview (Store.resume tview axis target.Node_id.slot);
      Store.release store tview;
      process view cursor
  in
  let view = Store.view store (Node_id.cluster id) in
  process view (Store.start view axis id.Node_id.slot);
  Store.release store view;
  List.rev !out

let cursor_tests =
  [
    Alcotest.test_case "cursors reject non-downward axes" `Quick (fun () ->
        let store, import = Gen.import_store (Gen.sample_doc ()) in
        let id = import.Import.node_ids.(0) in
        let view = Store.view store (Node_id.cluster id) in
        (match Store.start view Axis.Parent id.Node_id.slot with
        | exception Invalid_argument _ -> Store.release store view
        | _ -> Alcotest.fail "expected Invalid_argument"));
    Alcotest.test_case "start on a border slot is rejected" `Quick (fun () ->
        let doc = Gen.wide_tree ~children:80 () in
        let store, _ = Gen.import_store ~payload:250 doc in
        (* Find some page with an Up record. *)
        let found = ref false in
        for pid = Store.first_page store to Store.first_page store + Store.page_count store - 1 do
          if not !found then begin
            let view = Store.view store pid in
            (match Store.up_slots view with
            | slot :: _ ->
              found := true;
              (match Store.start view Axis.Child slot with
              | exception Invalid_argument _ -> ()
              | _ -> Alcotest.fail "expected Invalid_argument")
            | [] -> ());
            Store.release store view
          end
        done;
        check bool "found an Up to test" true !found);
  ]

let cursor_props =
  let mk_test name axis =
    QCheck2.Test.make ~name ~count:40
      (QCheck2.Gen.pair (Gen.tree_gen ~size:50 ()) (QCheck2.Gen.oneofl all_strategies))
      ~print:(fun (tree, strategy) ->
        Printf.sprintf "%s / %s" (Gen.tree_print tree) (Import.strategy_to_string strategy))
      (fun (tree, strategy) ->
        let store, import = Gen.import_store ~strategy ~payload:180 tree in
        ignore (Tree.index tree);
        let ok = ref true in
        Tree.iter
          (fun node ->
            let id = import.Import.node_ids.(node.Tree.preorder) in
            let via_cursors = List.map fst (collect_via_cursors store axis id) in
            let via_global =
              List.map (fun (i : Store.info) -> i.id) (drain (Store.global_axis store axis id))
            in
            (* Cursor traversal resolves crossings depth-first, which for
               downward axes is exactly document order. *)
            if via_cursors <> via_global then ok := false)
          tree;
        !ok && Buffer_manager.pinned_count (Store.buffer store) = 0)
  in
  [
    mk_test "cursors+crossings = global (child)" Axis.Child;
    mk_test "cursors+crossings = global (descendant)" Axis.Descendant;
    mk_test "cursors+crossings = global (descendant-or-self)" Axis.Descendant_or_self;
    mk_test "cursors+crossings = global (self)" Axis.Self;
  ]

(* --- Store info / ordpath order ---------------------------------------------- *)

let info_tests =
  [
    Alcotest.test_case "ordpath order equals document order" `Quick (fun () ->
        let doc = Gen.wide_tree ~children:40 () in
        let store, import = Gen.import_store ~payload:250 doc in
        ignore (Tree.index doc);
        let infos =
          Array.to_list (Array.map (fun id -> Store.info store id) import.Import.node_ids)
        in
        let sorted =
          List.sort (fun (a : Store.info) b -> Ordpath.compare a.ordpath b.ordpath) infos
        in
        check bool "sorted = preorder" true
          (List.for_all2 (fun (a : Store.info) b -> Node_id.equal a.id b.Store.id) infos sorted));
    Alcotest.test_case "info on a border record raises" `Quick (fun () ->
        let doc = Gen.wide_tree ~children:80 () in
        let store, _ = Gen.import_store ~payload:250 doc in
        let border = ref None in
        for pid = Store.first_page store to Store.first_page store + Store.page_count store - 1 do
          if !border = None then begin
            let view = Store.view store pid in
            (match Store.up_slots view with
            | slot :: _ -> border := Some (Store.id_of view slot)
            | [] -> ());
            Store.release store view
          end
        done;
        match !border with
        | None -> Alcotest.fail "no border found"
        | Some id -> (
          match Store.info store id with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.fail "expected Invalid_argument"));
  ]

let suite =
  [
    ("store.node_id", node_id_tests);
    ("store.record", record_tests);
    Gen.qsuite "store.record.props" record_props;
    ("store.import", import_tests);
    ("store.navigation", navigation_tests);
    Gen.qsuite "store.navigation.props" navigation_props;
    ("store.cursors", cursor_tests);
    Gen.qsuite "store.cursors.props" cursor_props;
    ("store.info", info_tests);
  ]
