test/test_store.ml: Alcotest Array Format Gen List Option Printf QCheck2 String Xnav_storage Xnav_store Xnav_xml
