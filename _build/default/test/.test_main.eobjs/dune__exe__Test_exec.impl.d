test/test_exec.ml: Alcotest Format Gen List String Xnav_core Xnav_storage Xnav_store Xnav_xml Xnav_xpath
