test/test_plans.ml: Alcotest Array Dump Fmt Format Gen List Printf QCheck2 Stdlib Xnav_core Xnav_storage Xnav_store Xnav_xml Xnav_xpath
