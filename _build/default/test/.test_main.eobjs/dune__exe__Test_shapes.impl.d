test/test_shapes.ml: Alcotest List Xnav_core Xnav_storage Xnav_store Xnav_xmark
