test/test_storage.ml: Alcotest Bytes Char Fmt Gen Hashtbl List Option QCheck2 Stdlib String Test Xnav_storage
