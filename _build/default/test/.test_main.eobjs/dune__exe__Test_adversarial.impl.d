test/test_adversarial.ml: Alcotest Array Gen List Printf QCheck2 String Xnav_core Xnav_storage Xnav_store Xnav_xml Xnav_xpath
