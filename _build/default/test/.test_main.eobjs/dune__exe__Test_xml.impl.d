test/test_xml.ml: Alcotest Array Buffer Fun Gen Hashtbl List Printf QCheck2 String Xnav_xml
