test/test_multi.ml: Alcotest Array Fun Gen List Printf QCheck2 Xnav_core Xnav_storage Xnav_store Xnav_xml Xnav_xpath
