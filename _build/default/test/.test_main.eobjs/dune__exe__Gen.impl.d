test/gen.ml: Array Format List QCheck2 QCheck_alcotest Xnav_storage Xnav_store Xnav_xml
