test/test_rewrite.ml: Alcotest Gen List Printf QCheck2 Xnav_xml Xnav_xpath
