test/test_export.ml: Alcotest Array Gen Xnav_storage Xnav_store Xnav_xml
