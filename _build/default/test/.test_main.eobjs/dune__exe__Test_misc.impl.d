test/test_misc.ml: Alcotest Buffer Gen List Xnav_core Xnav_storage Xnav_store Xnav_xml Xnav_xpath
