test/test_update.ml: Alcotest Array Gen List Printf QCheck2 Xnav_core Xnav_storage Xnav_store Xnav_xml Xnav_xpath
