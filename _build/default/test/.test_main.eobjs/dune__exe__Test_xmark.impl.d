test/test_xmark.ml: Alcotest Array Gen List Printf Xnav_core Xnav_xmark Xnav_xml Xnav_xpath
