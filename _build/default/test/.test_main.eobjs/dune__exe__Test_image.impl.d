test/test_image.ml: Alcotest Array Filename Gen List Xnav_core Xnav_storage Xnav_store Xnav_xml Xnav_xpath
