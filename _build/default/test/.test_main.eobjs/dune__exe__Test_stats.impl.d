test/test_stats.ml: Alcotest Array Buffer Filename Gen List Printf QCheck2 Sys Xnav_core Xnav_store Xnav_xmark Xnav_xml Xnav_xpath
