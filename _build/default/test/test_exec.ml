(* Executor-level behaviours: streams, metrics invariants, the async
   dispatch overhead, plan explain, and compile plan_for. *)

module Tree = Xnav_xml.Tree
module Disk = Xnav_storage.Disk
module Buffer_manager = Xnav_storage.Buffer_manager
module Import = Xnav_store.Import
module Store = Xnav_store.Store
module Path = Xnav_xpath.Path
module Xpath_parser = Xnav_xpath.Xpath_parser
module Eval_ref = Xnav_xpath.Eval_ref
module Plan = Xnav_core.Plan
module Exec = Xnav_core.Exec
module Compile = Xnav_core.Compile

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let tests =
  [
    Alcotest.test_case "stream pulls lazily and ends with None" `Quick (fun () ->
        let doc = Gen.wide_tree ~children:40 () in
        let store, _ = Gen.import_store ~payload:220 doc in
        let path = Xpath_parser.parse "//b" in
        let stream = Exec.prepare store path (Plan.xscan ()) in
        let rec drain n =
          match Exec.stream_next stream with None -> n | Some _ -> drain (n + 1)
        in
        let n = drain 0 in
        check int "all results" (Eval_ref.count doc path) n;
        check bool "None is final" true (Exec.stream_next stream = None);
        check bool "no fallback" false (Exec.stream_fell_back stream));
    Alcotest.test_case "abandoned stream leaves pins only until released" `Quick (fun () ->
        (* XSchedule holds its current cluster pinned between pulls — an
           abandoned stream may keep one pin (documented behaviour); a
           drained one must not. *)
        let doc = Gen.wide_tree ~children:40 () in
        let store, _ = Gen.import_store ~payload:220 doc in
        let stream = Exec.prepare store (Xpath_parser.parse "//b") (Plan.xschedule ()) in
        let rec drain () = match Exec.stream_next stream with None -> () | Some _ -> drain () in
        drain ();
        check int "pins" 0 (Buffer_manager.pinned_count (Store.buffer store)));
    Alcotest.test_case "metrics: total = io + cpu; reads split cleanly" `Quick (fun () ->
        let doc = Gen.wide_tree ~children:80 () in
        let store, _ = Gen.import_store ~payload:220 ~capacity:8 doc in
        List.iter
          (fun plan ->
            let m = (Exec.cold_run ~ordered:false store (Xpath_parser.parse "//x") plan).Exec.metrics in
            check bool "total" true
              (abs_float (m.Exec.total_time -. (m.Exec.io_time +. m.Exec.cpu_time)) < 1e-9);
            check int "split" m.Exec.page_reads (m.Exec.sequential_reads + m.Exec.random_reads);
            check bool "io nonneg" true (m.Exec.io_time >= 0.))
          [ Plan.simple; Plan.xschedule (); Plan.xscan () ]);
    Alcotest.test_case "async requests pay the dispatch overhead" `Quick (fun () ->
        let d = Disk.create () in
        for _ = 1 to 10 do
          ignore (Disk.alloc d)
        done;
        Disk.reset_clock d;
        let sched = Xnav_storage.Io_scheduler.create d in
        Xnav_storage.Io_scheduler.submit sched 5;
        (match Xnav_storage.Io_scheduler.complete_one sched with
        | Some _ -> ()
        | None -> Alcotest.fail "expected completion");
        let direct = Disk.read_cost d 5 in
        check bool "overhead charged" true
          (Disk.elapsed d > direct -. 1e-12));
    Alcotest.test_case "Disk.charge advances the clock verbatim" `Quick (fun () ->
        let d = Disk.create () in
        Disk.charge d 0.125;
        check bool "charged" true (abs_float (Disk.elapsed d -. 0.125) < 1e-12));
    Alcotest.test_case "ordered=false skips sorting but not dedup" `Quick (fun () ->
        let doc = Gen.sample_doc () in
        let store, _ = Gen.import_store ~payload:200 doc in
        let path = Xpath_parser.parse "//A//B" in
        let r = Exec.cold_run ~ordered:false store path (Plan.Simple { dedup_intermediate = false }) in
        check int "dedup still applies" (Eval_ref.count doc path) r.Exec.count);
    Alcotest.test_case "plan explain renders all shapes" `Quick (fun () ->
        let path = Xpath_parser.parse "/a//b" in
        List.iter
          (fun plan ->
            let rendered = Format.asprintf "%a" Plan.explain (path, plan) in
            check bool (Plan.name plan) true (String.length rendered > 10))
          [ Plan.simple; Plan.xschedule (); Plan.xscan ~dslash:true (); Plan.xscan () ]);
    Alcotest.test_case "plan_for rewrites when asked" `Quick (fun () ->
        let store, _ = Gen.import_store (Gen.sample_doc ()) in
        let raw = Xpath_parser.parse "/A//B" in
        let rewritten, _ = Compile.plan_for ~rewrite:true store raw in
        let untouched, _ = Compile.plan_for store raw in
        check int "shorter" (Path.length raw - 1) (Path.length rewritten);
        check bool "same without flag" true (Path.equal raw untouched));
    Alcotest.test_case "trace hook fires for reordered plans" `Quick (fun () ->
        let doc = Gen.wide_tree ~children:50 () in
        let store, _ = Gen.import_store ~payload:220 doc in
        let events = ref 0 in
        ignore
          (Exec.cold_run ~trace:(fun _ -> incr events) ~ordered:false store
             (Xpath_parser.parse "//b") (Plan.xscan ()));
        check bool "events seen" true (!events > 0));
    Alcotest.test_case "empty path is rejected" `Quick (fun () ->
        let store, _ = Gen.import_store (Gen.sample_doc ()) in
        match Exec.cold_run store [] Plan.simple with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
  ]

let suite = [ ("exec", tests) ]
