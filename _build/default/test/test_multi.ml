(* Shared-scan multi-query evaluation (paper outlook Sec. 7): one
   sequential pass must produce, for every path, exactly what a
   standalone plan produces — at a fraction of the I/O. *)

module Tree = Xnav_xml.Tree
module Node_id = Xnav_store.Node_id
module Import = Xnav_store.Import
module Store = Xnav_store.Store
module Buffer_manager = Xnav_storage.Buffer_manager
module Path = Xnav_xpath.Path
module Xpath_parser = Xnav_xpath.Xpath_parser
module Eval_ref = Xnav_xpath.Eval_ref
module Plan = Xnav_core.Plan
module Exec = Xnav_core.Exec
module Multi = Xnav_core.Multi
module Context = Xnav_core.Context

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let multi_agrees ?config ?(strategy = Import.Dfs) doc path_strs =
  let store, _ = Gen.import_store ~strategy ~payload:200 ~capacity:16 doc in
  let paths = List.map Xpath_parser.parse path_strs in
  let multi = Multi.run ?config ~cold:true store paths in
  List.iteri
    (fun i path ->
      let expected = Eval_ref.count doc path in
      check int (Printf.sprintf "count[%d] vs oracle" i) expected multi.Multi.counts.(i);
      let standalone = Exec.cold_run ?config store path (Plan.xscan ()) in
      check bool
        (Printf.sprintf "nodes[%d] vs standalone scan" i)
        true
        (List.for_all2
           (fun (a : Store.info) (b : Store.info) -> Node_id.equal a.id b.id)
           multi.Multi.per_path.(i) standalone.Exec.nodes))
    paths;
  check int "no pins leaked" 0 (Buffer_manager.pinned_count (Store.buffer store))

let tests =
  [
    Alcotest.test_case "three paths on the sample doc" `Quick (fun () ->
        multi_agrees (Gen.sample_doc ()) [ "//B"; "//A/C"; "/A//B" ]);
    Alcotest.test_case "paths of different lengths" `Quick (fun () ->
        multi_agrees (Gen.wide_tree ~children:60 ()) [ "//x"; "//b/x"; "/b"; "//node()" ]);
    Alcotest.test_case "scattered layout" `Quick (fun () ->
        multi_agrees ~strategy:(Import.Scattered 9) (Gen.wide_tree ~children:60 ())
          [ "//y"; "//c//x" ]);
    Alcotest.test_case "shared scan reads the document once, not once per path" `Quick
      (fun () ->
        let doc = Gen.wide_tree ~children:80 () in
        let store, import = Gen.import_store ~payload:220 ~capacity:16 doc in
        let paths = List.map Xpath_parser.parse [ "//b"; "//x"; "//y" ] in
        let multi = Multi.run ~cold:true store paths in
        check int "one scan" import.Import.page_count multi.Multi.page_reads;
        (* Three standalone scans would read three times as much. *)
        let separate =
          List.fold_left
            (fun acc path ->
              acc + (Exec.cold_run store path (Plan.xscan ())).Exec.metrics.Exec.page_reads)
            0 paths
        in
        check int "3x separately" (3 * import.Import.page_count) separate);
    Alcotest.test_case "per-lane fallback recomputes correctly" `Quick (fun () ->
        let doc = Gen.wide_tree ~children:80 () in
        let config = { Context.default_config with Context.memory_budget = 2 } in
        let store, _ =
          Gen.import_store ~strategy:(Import.Scattered 5) ~payload:200 ~capacity:16 doc
        in
        let paths = List.map Xpath_parser.parse [ "//b"; "//b/x" ] in
        let multi = Multi.run ~config ~cold:true store paths in
        check bool "at least one lane fell back" true
          (Array.exists Fun.id multi.Multi.fell_back);
        List.iteri
          (fun i path -> check int "oracle count" (Eval_ref.count doc path) multi.Multi.counts.(i))
          paths);
    Alcotest.test_case "rejects upward axes and empty input" `Quick (fun () ->
        let store, _ = Gen.import_store (Gen.sample_doc ()) in
        (match Multi.run ~cold:true store [] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
        match Multi.run ~cold:true store [ Xpath_parser.parse "//B/.." ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "document order is restored per path" `Quick (fun () ->
        let doc = Gen.sample_doc () in
        let store, _ = Gen.import_store ~payload:200 doc in
        let multi = Multi.run ~cold:true store [ Xpath_parser.parse "//B" ] in
        let ordpaths = List.map (fun (i : Store.info) -> i.Store.ordpath) multi.Multi.per_path.(0) in
        let sorted = List.sort Xnav_xml.Ordpath.compare ordpaths in
        check bool "sorted" true (List.for_all2 Xnav_xml.Ordpath.equal ordpaths sorted));
  ]

let props =
  [
    QCheck2.Test.make ~name:"multi: shared scan equals per-path oracle on random inputs"
      ~count:60
      QCheck2.Gen.(pair (Gen.tree_gen ~size:40 ()) (oneofl [ Import.Dfs; Import.Scattered 3 ]))
      ~print:(fun (tree, strategy) ->
        Printf.sprintf "%s / %s" (Gen.tree_print tree) (Import.strategy_to_string strategy))
      (fun (tree, strategy) ->
        let store, _ = Gen.import_store ~strategy ~payload:180 tree in
        let paths = List.map Xpath_parser.parse [ "//a"; "//b//c"; "/descendant::d" ] in
        let multi = Multi.run ~cold:true store paths in
        List.for_all
          (fun (i, path) -> multi.Multi.counts.(i) = Eval_ref.count tree path)
          (List.mapi (fun i p -> (i, p)) paths));
  ]

let suite = [ ("multi", tests); Gen.qsuite "multi.props" props ]
