(* Logical path rewrites must preserve node-set semantics exactly. *)

module Tree = Xnav_xml.Tree
module Axis = Xnav_xml.Axis
module Path = Xnav_xpath.Path
module Xpath_parser = Xnav_xpath.Xpath_parser
module Rewrite = Xnav_xpath.Rewrite
module Eval_ref = Xnav_xpath.Eval_ref

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let tests =
  [
    Alcotest.test_case "// compresses to descendant" `Quick (fun () ->
        let path = Xpath_parser.parse "/a//b" in
        let normalized = Rewrite.normalize path in
        check int "shorter" (Path.length path - 1) (Path.length normalized);
        check bool "descendant step" true
          (List.exists (fun (s : Path.step) -> s.Path.axis = Axis.Descendant) normalized));
    Alcotest.test_case "stacked // collapses" `Quick (fun () ->
        let path =
          Xpath_parser.parse "descendant-or-self::node()/descendant-or-self::node()/b"
        in
        check int "one step left" 1 (Path.length (Rewrite.normalize path)));
    Alcotest.test_case "self::node() is dropped" `Quick (fun () ->
        let path = Xpath_parser.parse "./a/./b" in
        check int "two steps" 2 (Path.length (Rewrite.normalize path)));
    Alcotest.test_case "a lone self step survives" `Quick (fun () ->
        check int "one step" 1 (Path.length (Rewrite.normalize (Xpath_parser.parse "."))));
    Alcotest.test_case "descendant::node()/descendant::t must NOT fuse" `Quick (fun () ->
        (* /a/a: descendant::node()/descendant::a excludes depth-1 a's. *)
        let doc = Tree.elt "r" [ Tree.elt "a" [ Tree.elt "a" [] ] ] in
        let path = Xpath_parser.parse "/descendant::node()/descendant::a" in
        let normalized = Rewrite.normalize path in
        check int "semantics kept" (Eval_ref.count doc path) (Eval_ref.count doc normalized);
        check int "only the deep a" 1 (Eval_ref.count doc path));
    Alcotest.test_case "upward steps block fusion" `Quick (fun () ->
        let path = Xpath_parser.parse "//a/ancestor::b" in
        let normalized = Rewrite.normalize path in
        check bool "ancestor kept" true
          (List.exists (fun (s : Path.step) -> s.Path.axis = Axis.Ancestor) normalized));
  ]

let props =
  let random_path_gen =
    let open QCheck2.Gen in
    let axis =
      oneofl
        [ Axis.Child; Axis.Descendant; Axis.Descendant_or_self; Axis.Self; Axis.Parent ]
    in
    let test =
      oneof
        [
          (oneofa Gen.tag_pool >|= fun name -> Path.Name (Xnav_xml.Tag.of_string name));
          return Path.Wildcard;
          return Path.Any_node;
        ]
    in
    list_size (int_range 1 5) (pair axis test)
    >|= List.map (fun (axis, test) -> Path.step axis test)
  in
  [
    QCheck2.Test.make ~name:"rewrite: normalize preserves semantics" ~count:300
      QCheck2.Gen.(pair (Gen.tree_gen ~size:40 ()) random_path_gen)
      ~print:(fun (tree, path) ->
        Printf.sprintf "%s | %s" (Gen.tree_print tree) (Path.to_string path))
      (fun (tree, path) ->
        let normalized = Rewrite.normalize path in
        let pre n = List.map (fun (x : Tree.t) -> x.Tree.preorder) n in
        pre (Eval_ref.eval tree path) = pre (Eval_ref.eval tree normalized));
    QCheck2.Test.make ~name:"rewrite: normalize is idempotent" ~count:200 random_path_gen
      ~print:Path.to_string
      (fun path ->
        let once = Rewrite.normalize path in
        Path.equal once (Rewrite.normalize once));
    QCheck2.Test.make ~name:"rewrite: normalize never lengthens a path" ~count:200
      random_path_gen ~print:Path.to_string
      (fun path -> Path.length (Rewrite.normalize path) <= Path.length path);
  ]

let suite = [ ("rewrite", tests); Gen.qsuite "rewrite.props" props ]
