(* Document statistics and cardinality estimation. *)

module Tree = Xnav_xml.Tree
module Tag = Xnav_xml.Tag
module Axis = Xnav_xml.Axis
module Doc_stats = Xnav_store.Doc_stats
module Store = Xnav_store.Store
module Image = Xnav_store.Image
module Path = Xnav_xpath.Path
module Xpath_parser = Xnav_xpath.Xpath_parser
module Eval_ref = Xnav_xpath.Eval_ref
module Compile = Xnav_core.Compile

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let tag = Tag.of_string

let unit_tests =
  [
    Alcotest.test_case "counts and pairs on the sample doc" `Quick (fun () ->
        let doc = Gen.sample_doc () in
        let s = Doc_stats.collect doc in
        check int "nodes" (Tree.size doc) (Doc_stats.node_count s);
        check int "A count" 4 (Doc_stats.tag_count s (tag "A"));
        check int "R->A edges" 2 (Doc_stats.pair_count s ~parent:(tag "R") ~child:(tag "A"));
        check int "A->A edges" 1 (Doc_stats.pair_count s ~parent:(tag "A") ~child:(tag "A"));
        check int "no B->A edges" 0 (Doc_stats.pair_count s ~parent:(tag "B") ~child:(tag "A"));
        check bool "root" true (Tag.equal (Doc_stats.root_tag s) (tag "R")));
    Alcotest.test_case "avg subtree of the root is the document size" `Quick (fun () ->
        let doc = Gen.sample_doc () in
        let s = Doc_stats.collect doc in
        check bool "root subtree" true
          (abs_float (Doc_stats.avg_subtree s (tag "R") -. float_of_int (Tree.size doc)) < 1e-9));
    Alcotest.test_case "child steps from a unique parent are estimated exactly" `Quick
      (fun () ->
        (* Every step along /R/A has a unique parent tag, so the pair
           statistics give the exact answer. *)
        let doc = Gen.sample_doc () in
        let s = Doc_stats.collect doc in
        let est = Doc_stats.estimate_path s (Xpath_parser.parse "/A") in
        (match est with
        | [ first ] -> check bool "exact" true (abs_float (first -. 2.0) < 1e-9)
        | _ -> Alcotest.fail "one step expected"));
    Alcotest.test_case "estimates are capped by tag totals" `Quick (fun () ->
        let doc = Gen.wide_tree ~children:100 () in
        let s = Doc_stats.collect doc in
        List.iter
          (fun path_str ->
            let path = Xpath_parser.parse path_str in
            let est = Doc_stats.estimate_path s path in
            let final = List.nth est (List.length est - 1) in
            check bool path_str true (final <= float_of_int (Doc_stats.node_count s) +. 1e-6))
          [ "//node()"; "//b"; "//b/x"; "/b//x" ]);
    Alcotest.test_case "descendant estimates are roughly right on XMark" `Quick (fun () ->
        let config = { Xnav_xmark.Gen.default_config with Xnav_xmark.Gen.fidelity = 0.01 } in
        let doc = Xnav_xmark.Gen.generate ~config () in
        let s = Doc_stats.collect doc in
        List.iter
          (fun path_str ->
            let path = Path.from_root_element (Xpath_parser.parse path_str) in
            let actual = float_of_int (Eval_ref.count doc path) in
            let est =
              List.nth (Doc_stats.estimate_path s path) (List.length path - 1)
            in
            (* Within a factor of three either way (the crude v1 bound is
               off by orders of magnitude on these). *)
            if actual > 0. then
              check bool
                (Printf.sprintf "%s est=%.1f actual=%.0f" path_str est actual)
                true
                (est < 3.0 *. actual +. 10. && est > (actual /. 3.0) -. 10.))
          [ "/site/regions//item"; "/site//description"; "/site/people/person/email" ]);
    Alcotest.test_case "frontier respects self filters" `Quick (fun () ->
        let doc = Gen.sample_doc () in
        let s = Doc_stats.collect doc in
        let est = Doc_stats.estimate_path s (Xpath_parser.parse "/self::R/A") in
        check int "steps" 2 (List.length est);
        let miss = Doc_stats.estimate_path s (Xpath_parser.parse "/self::B/A") in
        check bool "dead frontier" true (List.nth miss 1 < 1e-9));
    Alcotest.test_case "synopsis survives persistence" `Quick (fun () ->
        let doc = Gen.sample_doc () in
        let store, _ = Gen.import_store ~payload:200 doc in
        let path = Filename.temp_file "xnav_stats" ".xnav" in
        Image.save path [ store ];
        let loaded = List.hd (Image.load path) in
        (match Store.doc_stats loaded with
        | None -> Alcotest.fail "stats lost"
        | Some s ->
          check int "A count" 4 (Doc_stats.tag_count s (tag "A"));
          check int "R->A" 2 (Doc_stats.pair_count s ~parent:(tag "R") ~child:(tag "A")));
        Sys.remove path);
    Alcotest.test_case "compile uses the synopsis" `Quick (fun () ->
        (* A path to a tag that exists but is unreachable through the
           given chain: the synopsis knows the chain is dead, the v1
           bound does not. *)
        let doc = Gen.sample_doc () in
        let store, _ = Gen.import_store ~payload:200 doc in
        let dead = Xpath_parser.parse "/B/R" in
        let est = Compile.estimate store dead in
        check int "dead chain touches ~nothing" 1 est.Compile.touched_nodes);
  ]

let props =
  [
    QCheck2.Test.make ~name:"stats: exact child estimates under unique-parent chains" ~count:100
      (Gen.tree_gen ~size:40 ())
      ~print:Gen.tree_print
      (fun doc ->
        let s = Doc_stats.collect doc in
        (* Sum over tags of pair_count(root_tag -> c) equals the root's
           arity when the root tag is unique. *)
        ignore (Tree.index doc);
        if Doc_stats.tag_count s doc.Tree.tag = 1 then begin
          let est = Doc_stats.step s (Doc_stats.root_frontier s) (Path.step Axis.Child Path.Wildcard) in
          abs_float (Doc_stats.cardinality est -. float_of_int (Array.length doc.Tree.children))
          < 1e-6
        end
        else true);
    QCheck2.Test.make ~name:"stats: codec round-trip" ~count:60
      (Gen.tree_gen ~size:40 ())
      ~print:Gen.tree_print
      (fun doc ->
        let s = Doc_stats.collect doc in
        let buf = Buffer.create 256 in
        Doc_stats.encode buf s;
        let decoded, consumed = Doc_stats.decode (Buffer.contents buf) 0 in
        consumed = Buffer.length buf
        && Doc_stats.node_count decoded = Doc_stats.node_count s
        && List.for_all
             (fun (t, n) -> Doc_stats.tag_count decoded t = n)
             (Tree.tag_counts doc));
  ]

let suite = [ ("stats", unit_tests); Gen.qsuite "stats.props" props ]
