(* Tests for the XMark generator and benchmark queries. *)

module Tree = Xnav_xml.Tree
module Tag = Xnav_xml.Tag
module Gen_x = Xnav_xmark.Gen
module Rng = Xnav_xmark.Rng
module Queries = Xnav_xmark.Queries
module Eval_ref = Xnav_xpath.Eval_ref
module Path = Xnav_xpath.Path

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let small = { Gen_x.default_config with Gen_x.fidelity = 0.01 }

let rng_tests =
  [
    Alcotest.test_case "determinism" `Quick (fun () ->
        let a = Rng.create 7 and b = Rng.create 7 in
        for _ = 1 to 100 do
          check int "same stream" (Rng.int a 1000) (Rng.int b 1000)
        done);
    Alcotest.test_case "int respects bounds" `Quick (fun () ->
        let r = Rng.create 1 in
        for _ = 1 to 1000 do
          let v = Rng.int r 10 in
          check bool "in range" true (v >= 0 && v < 10)
        done);
    Alcotest.test_case "range inclusive" `Quick (fun () ->
        let r = Rng.create 2 in
        let seen = Array.make 3 false in
        for _ = 1 to 200 do
          seen.(Rng.range r 0 2) <- true
        done;
        Array.iter (fun s -> check bool "hit" true s) seen);
    Alcotest.test_case "bool probabilities are sane" `Quick (fun () ->
        let r = Rng.create 3 in
        let hits = ref 0 in
        for _ = 1 to 10_000 do
          if Rng.bool r 0.3 then incr hits
        done;
        check bool "rough fraction" true (!hits > 2500 && !hits < 3500));
    Alcotest.test_case "split decorrelates" `Quick (fun () ->
        let a = Rng.create 7 in
        let b = Rng.split a in
        let same = ref 0 in
        for _ = 1 to 100 do
          if Rng.int a 1000 = Rng.int b 1000 then incr same
        done;
        check bool "mostly different" true (!same < 10));
  ]

let gen_tests =
  [
    Alcotest.test_case "deterministic generation" `Quick (fun () ->
        let a = Gen_x.generate ~config:small () in
        let b = Gen_x.generate ~config:small () in
        check bool "equal" true (Tree.equal a b));
    Alcotest.test_case "root structure follows the XMark schema" `Quick (fun () ->
        let doc = Gen_x.generate ~config:small () in
        check Alcotest.string "root" "site" (Tag.to_string doc.Tree.tag);
        let section i = Tag.to_string doc.Tree.children.(i).Tree.tag in
        check Alcotest.string "regions" "regions" (section 0);
        check Alcotest.string "categories" "categories" (section 1);
        check Alcotest.string "catgraph" "catgraph" (section 2);
        check Alcotest.string "people" "people" (section 3);
        check Alcotest.string "open_auctions" "open_auctions" (section 4);
        check Alcotest.string "closed_auctions" "closed_auctions" (section 5));
    Alcotest.test_case "entity counts scale with the scaling factor" `Quick (fun () ->
        let count scale =
          let config = { small with Gen_x.scale } in
          let items, persons, opens, closeds = Gen_x.entity_counts config in
          items + persons + opens + closeds
        in
        check bool "monotone" true (count 0.5 < count 1.0 && count 1.0 < count 2.0));
    Alcotest.test_case "document size grows roughly linearly" `Quick (fun () ->
        let size scale =
          Tree.size (Gen_x.generate ~config:{ small with Gen_x.scale } ())
        in
        let s1 = size 1.0 and s2 = size 2.0 in
        check bool "about double" true
          (float_of_int s2 > 1.6 *. float_of_int s1 && float_of_int s2 < 2.4 *. float_of_int s1));
    Alcotest.test_case "different seeds give different documents" `Quick (fun () ->
        let a = Gen_x.generate ~config:small () in
        let b = Gen_x.generate ~config:{ small with Gen_x.seed = 1 } () in
        check bool "different" false (Tree.equal a b));
  ]

let query_tests =
  [
    Alcotest.test_case "all three queries yield nonempty results" `Quick (fun () ->
        let config = { Gen_x.default_config with Gen_x.fidelity = 0.02 } in
        let doc = Gen_x.generate ~config () in
        List.iter
          (fun (q : Queries.t) ->
            let total =
              List.fold_left (fun acc path -> acc + Eval_ref.count doc path) 0 q.Queries.paths
            in
            if total = 0 then Alcotest.failf "%s returned nothing" q.Queries.name)
          Queries.all);
    Alcotest.test_case "q15 is much more selective than q7" `Quick (fun () ->
        let config = { Gen_x.default_config with Gen_x.fidelity = 0.02 } in
        let doc = Gen_x.generate ~config () in
        let total q =
          List.fold_left (fun acc path -> acc + Eval_ref.count doc path) 0 q.Queries.paths
        in
        check bool "selectivity" true (10 * total Queries.q15 < total Queries.q7));
    Alcotest.test_case "queries are downward-only (reorderable)" `Quick (fun () ->
        List.iter
          (fun (q : Queries.t) ->
            List.iter
              (fun path -> check bool q.Queries.name true (Path.is_downward path))
              q.Queries.paths)
          Queries.all);
    Alcotest.test_case "find is case-insensitive" `Quick (fun () ->
        check bool "q7" true (Queries.find "Q7" <> None);
        check bool "missing" true (Queries.find "q99" = None));
    Alcotest.test_case "q15 starts at the root element" `Quick (fun () ->
        match Queries.q15.Queries.paths with
        | [ { Path.axis = Xnav_xml.Axis.Self; _ } :: _ ] -> ()
        | _ -> Alcotest.fail "expected a self::site first step");
  ]

let plan_agreement_tests =
  [
    Alcotest.test_case "all plans agree on all queries (small doc)" `Slow (fun () ->
        let config = { Gen_x.default_config with Gen_x.fidelity = 0.005 } in
        let doc = Gen_x.generate ~config () in
        let store, _ = Gen.import_store ~page_size:1024 ~capacity:32 doc in
        List.iter
          (fun (q : Queries.t) ->
            List.iter
              (fun path ->
                let expected = Eval_ref.count doc path in
                List.iter
                  (fun plan ->
                    let r = Xnav_core.Exec.cold_run ~ordered:false store path plan in
                    check int
                      (Printf.sprintf "%s/%s" q.Queries.name (Xnav_core.Plan.name plan))
                      expected r.Xnav_core.Exec.count)
                  [
                    Xnav_core.Plan.simple;
                    Xnav_core.Plan.xschedule ();
                    Xnav_core.Plan.xschedule ~speculative:false ();
                    Xnav_core.Plan.xscan ();
                  ])
              q.Queries.paths)
          Queries.all);
  ]

let suite =
  [
    ("xmark.rng", rng_tests);
    ("xmark.gen", gen_tests);
    ("xmark.queries", query_tests);
    ("xmark.plans", plan_agreement_tests);
  ]
