(* Interleaved (concurrent) query execution over the shared buffer pool
   and asynchronous I/O queue. *)

module Import = Xnav_store.Import
module Store = Xnav_store.Store
module Buffer_manager = Xnav_storage.Buffer_manager
module Xpath_parser = Xnav_xpath.Xpath_parser
module Eval_ref = Xnav_xpath.Eval_ref
module Plan = Xnav_core.Plan
module Interleave = Xnav_core.Interleave
module Context = Xnav_core.Context

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let tests =
  [
    Alcotest.test_case "two schedule plans agree with the oracle" `Quick (fun () ->
        let doc = Gen.wide_tree ~children:80 () in
        let store, _ = Gen.import_store ~payload:220 ~capacity:16 doc in
        let q1 = Xpath_parser.parse "//b" and q2 = Xpath_parser.parse "//x" in
        let r =
          Interleave.run ~cold:true store
            [ (q1, Plan.xschedule ()); (q2, Plan.xschedule ()) ]
        in
        check int "q1" (Eval_ref.count doc q1) r.Interleave.queries.(0).Interleave.count;
        check int "q2" (Eval_ref.count doc q2) r.Interleave.queries.(1).Interleave.count);
    Alcotest.test_case "mixed plan kinds coexist" `Quick (fun () ->
        let doc = Gen.wide_tree ~children:60 () in
        let store, _ = Gen.import_store ~payload:220 ~capacity:16 doc in
        let queries =
          [
            (Xpath_parser.parse "//b", Plan.simple);
            (Xpath_parser.parse "//x", Plan.xscan ());
            (Xpath_parser.parse "//y", Plan.xschedule ~speculative:false ());
          ]
        in
        let r = Interleave.run ~cold:true store queries in
        List.iteri
          (fun i (path, _) ->
            check int (Printf.sprintf "query %d" i) (Eval_ref.count doc path)
              r.Interleave.queries.(i).Interleave.count)
          queries;
        check int "no pins" 0 (Buffer_manager.pinned_count (Store.buffer store)));
    Alcotest.test_case "duplicate simple results are filtered per lane" `Quick (fun () ->
        let doc = Gen.sample_doc () in
        let store, _ = Gen.import_store ~payload:200 doc in
        let path = Xpath_parser.parse "//A//B" in
        let r =
          Interleave.run ~cold:true store
            [ (path, Plan.Simple { dedup_intermediate = false }) ]
        in
        check int "deduped" (Eval_ref.count doc path) r.Interleave.queries.(0).Interleave.count);
    Alcotest.test_case "concurrent scans interfere; concurrent schedules do not" `Quick
      (fun () ->
        (* Two sequential scans have zero seek distance. Interleaved, the
           head ping-pongs between two scan positions. *)
        let doc = Gen.wide_tree ~children:200 () in
        let store, _ = Gen.import_store ~payload:220 ~capacity:64 doc in
        let p1 = Xpath_parser.parse "//b" and p2 = Xpath_parser.parse "//x" in
        let both = Interleave.run ~cold:true store [ (p1, Plan.xscan ()); (p2, Plan.xscan ()) ] in
        check bool "scans fight for the head" true (both.Interleave.seek_distance > 0));
    Alcotest.test_case "same query twice: second lane rides the buffer" `Quick (fun () ->
        let doc = Gen.wide_tree ~children:80 () in
        let store, import = Gen.import_store ~payload:220 ~capacity:256 doc in
        let path = Xpath_parser.parse "//b" in
        let r =
          Interleave.run ~cold:true store [ (path, Plan.xscan ()); (path, Plan.xscan ()) ]
        in
        check bool "reads less than two full scans" true
          (r.Interleave.page_reads < 2 * import.Import.page_count);
        check int "same counts" r.Interleave.queries.(0).Interleave.count
          r.Interleave.queries.(1).Interleave.count);
    Alcotest.test_case "empty query list rejected" `Quick (fun () ->
        let store, _ = Gen.import_store (Gen.sample_doc ()) in
        match Interleave.run ~cold:true store [] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
  ]

let props =
  [
    QCheck2.Test.make ~name:"interleave: all lanes match the oracle on random inputs" ~count:40
      QCheck2.Gen.(pair (Gen.tree_gen ~size:40 ()) (oneofl [ Import.Dfs; Import.Scattered 6 ]))
      ~print:(fun (tree, strategy) ->
        Printf.sprintf "%s / %s" (Gen.tree_print tree) (Import.strategy_to_string strategy))
      (fun (tree, strategy) ->
        let store, _ = Gen.import_store ~strategy ~payload:180 ~capacity:16 tree in
        let queries =
          [
            (Xpath_parser.parse "//a", Plan.xschedule ());
            (Xpath_parser.parse "//b//c", Plan.xscan ());
            (Xpath_parser.parse "//d", Plan.simple);
          ]
        in
        let r = Interleave.run ~cold:true store queries in
        List.for_all
          (fun (i, (path, _)) ->
            r.Interleave.queries.(i).Interleave.count = Eval_ref.count tree path)
          (List.mapi (fun i q -> (i, q)) queries));
  ]

let suite = [ ("interleave", tests); Gen.qsuite "interleave.props" props ]
