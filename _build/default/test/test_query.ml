(* Extended queries: predicates and unions — parser, reference
   evaluator, and the hybrid physical executor. *)

module Tree = Xnav_xml.Tree
module Axis = Xnav_xml.Axis
module Import = Xnav_store.Import
module Buffer_manager = Xnav_storage.Buffer_manager
module Store = Xnav_store.Store
module Path = Xnav_xpath.Path
module Query = Xnav_xpath.Query
module Query_ref = Xnav_xpath.Query_ref
module Xpath_parser = Xnav_xpath.Xpath_parser
module Query_exec = Xnav_core.Query_exec
module Compile = Xnav_core.Compile

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let parse = Xpath_parser.parse_query

(* --- parser ------------------------------------------------------------------ *)

let parser_tests =
  [
    Alcotest.test_case "plain path parses as one clean branch" `Quick (fun () ->
        match parse "/a/b//c" with
        | [ branch ] ->
          check int "steps" 4 (List.length branch);
          check bool "no predicates" true (List.for_all (fun q -> q.Query.predicates = []) branch)
        | _ -> Alcotest.fail "expected one branch");
    Alcotest.test_case "predicate with a relative path" `Quick (fun () ->
        match parse "//item[mailbox/mail]" with
        | [ branch ] -> begin
          match List.rev branch with
          | last :: _ -> begin
            match last.Query.predicates with
            | [ Query.Exists steps ] -> check int "sub-steps" 2 (List.length steps)
            | _ -> Alcotest.fail "expected one Exists predicate"
          end
          | [] -> Alcotest.fail "empty branch"
        end
        | _ -> Alcotest.fail "expected one branch");
    Alcotest.test_case "and / or / not combine" `Quick (fun () ->
        match parse "//a[b and not(c) or d]" with
        | [ branch ] -> begin
          match (List.rev branch : Query.qstep list) with
          | { predicates = [ Query.Or (Query.And (_, Query.Not _), Query.Exists _) ]; _ } :: _ ->
            ()
          | _ -> Alcotest.fail "unexpected predicate shape"
        end
        | _ -> Alcotest.fail "expected one branch");
    Alcotest.test_case "nested predicates" `Quick (fun () ->
        match parse "//a[b[c]]" with
        | [ branch ] -> begin
          match List.rev branch with
          | { Query.predicates = [ Query.Exists [ sub ] ]; _ } :: _ ->
            check int "inner preds" 1 (List.length sub.Query.predicates)
          | _ -> Alcotest.fail "unexpected shape"
        end
        | _ -> Alcotest.fail "expected one branch");
    Alcotest.test_case "union of three branches" `Quick (fun () ->
        check int "branches" 3 (List.length (parse "/a | //b | /c/d")));
    Alcotest.test_case "element named 'and' still works as a step" `Quick (fun () ->
        match parse "//a[x/and/y]" with
        | [ _ ] -> ()
        | _ -> Alcotest.fail "expected one branch");
    Alcotest.test_case "plain parse rejects predicates and unions" `Quick (fun () ->
        (match Xpath_parser.parse "//a[b]" with
        | exception Xpath_parser.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected Parse_error");
        match Xpath_parser.parse "/a | /b" with
        | exception Xpath_parser.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected Parse_error");
    Alcotest.test_case "unbalanced bracket is rejected" `Quick (fun () ->
        match parse "//a[b" with
        | exception Xpath_parser.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected Parse_error");
    Alcotest.test_case "to_string round-trips through the parser" `Quick (fun () ->
        let q = parse "//a[b and not(c//d)]/e | /f" in
        let reparsed = parse (Query.to_string q) in
        check bool "same rendering" true
          (String.equal (Query.to_string q) (Query.to_string reparsed)));
  ]

(* --- reference evaluator ------------------------------------------------------- *)

let ref_tests =
  [
    Alcotest.test_case "existence predicate filters" `Quick (fun () ->
        (* A's with a C child: first child (has C), third child (no C child
           directly — its child is A). *)
        let doc = Gen.sample_doc () in
        check int "A[C]" 1 (Query_ref.count doc (parse "/A[C]")));
    Alcotest.test_case "not() inverts" `Quick (fun () ->
        let doc = Gen.sample_doc () in
        let total = Query_ref.count doc (parse "/A") in
        let with_c = Query_ref.count doc (parse "/A[C]") in
        check int "complement" (total - with_c) (Query_ref.count doc (parse "/A[not(C)]")));
    Alcotest.test_case "union merges and deduplicates" `Quick (fun () ->
        let doc = Gen.sample_doc () in
        let a = Query_ref.count doc (parse "//A") in
        let all = Query_ref.count doc (parse "//A | //A") in
        check int "dedup" a all);
    Alcotest.test_case "predicates may look upward" `Quick (fun () ->
        let doc = Gen.sample_doc () in
        (* B's whose parent is an A. *)
        let n = Query_ref.count doc (parse "//B[parent::A]") in
        check bool "some but not all" true (n > 0 && n < Query_ref.count doc (parse "//B")));
  ]

(* --- hybrid executor vs the oracle ---------------------------------------------- *)

let agree ?(strategy = Import.Dfs) doc query_str =
  let store, import = Gen.import_store ~strategy ~payload:200 ~capacity:16 doc in
  let query = parse query_str in
  let r = Query_exec.run ~cold:true store query in
  let expected = Query_ref.eval doc query in
  ignore (Tree.index doc);
  let expected_pre = List.map (fun (n : Tree.t) -> n.Tree.preorder) expected in
  let index = Xnav_store.Node_id.Tbl.create 64 in
  Array.iteri (fun pre id -> Xnav_store.Node_id.Tbl.replace index id pre) import.Import.node_ids;
  let got_pre =
    List.map (fun (i : Store.info) -> Xnav_store.Node_id.Tbl.find index i.Store.id) r.Query_exec.nodes
  in
  got_pre = expected_pre && Buffer_manager.pinned_count (Store.buffer store) = 0

let exec_tests =
  List.map
    (fun q ->
      Alcotest.test_case q `Quick (fun () ->
          check bool "hybrid = oracle" true (agree (Gen.sample_doc ()) q)))
    [
      "/A[C]";
      "/A[not(C)]/B";
      "//A[B and C]";
      "//A[B or C]";
      "//C[A//B]";
      "//B[parent::A]";
      "//A[C]/C[B]";
      "//A | //B";
      "/A[C] | //C[B] | /R";
      "//node()[B]";
    ]
  @ [
      Alcotest.test_case "segments and checks are counted" `Quick (fun () ->
          let store, _ = Gen.import_store ~payload:200 (Gen.sample_doc ()) in
          let r = Query_exec.run ~cold:true store (parse "//A[C]/B") in
          check bool "two segments" true (r.Query_exec.segments = 2);
          check bool "checked candidates" true (r.Query_exec.predicate_checks > 0));
      Alcotest.test_case "forced plan choice is honoured on trunks" `Quick (fun () ->
          let doc = Gen.sample_doc () in
          let store, _ = Gen.import_store ~payload:200 doc in
          let r =
            Query_exec.run ~choice:Compile.Force_scan ~cold:true store (parse "//A[C]")
          in
          check int "count" (Query_ref.count doc (parse "//A[C]")) r.Query_exec.count);
    ]

(* --- randomised --------------------------------------------------------------- *)

let query_gen =
  let open QCheck2.Gen in
  let tag = oneofa Gen.tag_pool >|= fun n -> Path.Name (Xnav_xml.Tag.of_string n) in
  let test = oneof [ tag; return Path.Wildcard ] in
  let axis = oneofl [ Axis.Child; Axis.Descendant; Axis.Descendant_or_self ] in
  let plain_qstep =
    pair axis test >|= fun (a, t) -> { Query.step = Path.step a t; predicates = [] }
  in
  let rec predicate depth =
    if depth = 0 then
      list_size (int_range 1 2) plain_qstep >|= fun steps -> Query.Exists steps
    else
      oneof
        [
          (list_size (int_range 1 2) plain_qstep >|= fun steps -> Query.Exists steps);
          (pair (predicate (depth - 1)) (predicate (depth - 1)) >|= fun (a, b) -> Query.And (a, b));
          (pair (predicate (depth - 1)) (predicate (depth - 1)) >|= fun (a, b) -> Query.Or (a, b));
          (predicate (depth - 1) >|= fun p -> Query.Not p);
        ]
  in
  let qstep =
    pair axis test >>= fun (a, t) ->
    oneof [ return []; (predicate 1 >|= fun p -> [ p ]) ] >|= fun predicates ->
    { Query.step = Path.step a t; predicates }
  in
  let branch = list_size (int_range 1 3) qstep in
  list_size (int_range 1 2) branch

let props =
  [
    QCheck2.Test.make ~name:"query: hybrid executor matches the oracle" ~count:80
      QCheck2.Gen.(pair (Gen.tree_gen ~size:35 ()) query_gen)
      ~print:(fun (tree, query) ->
        Printf.sprintf "%s | %s" (Gen.tree_print tree) (Query.to_string query))
      (fun (tree, query) ->
        let store, import = Gen.import_store ~payload:180 tree in
        let r = Query_exec.run ~cold:true store query in
        ignore (Tree.index tree);
        let index = Xnav_store.Node_id.Tbl.create 64 in
        Array.iteri
          (fun pre id -> Xnav_store.Node_id.Tbl.replace index id pre)
          import.Import.node_ids;
        let got =
          List.map
            (fun (i : Store.info) -> Xnav_store.Node_id.Tbl.find index i.Store.id)
            r.Query_exec.nodes
        in
        let expected = List.map (fun (n : Tree.t) -> n.Tree.preorder) (Query_ref.eval tree query) in
        got = expected);
    QCheck2.Test.make ~name:"query: parser round-trips its own rendering" ~count:100 query_gen
      ~print:Query.to_string
      (fun query ->
        let rendered = Query.to_string query in
        String.equal rendered (Query.to_string (Xpath_parser.parse_query rendered)));
  ]

let suite =
  [
    ("query.parser", parser_tests);
    ("query.ref", ref_tests);
    ("query.exec", exec_tests);
    Gen.qsuite "query.props" props;
  ]
