(* Tests for the xnav_xml library: tags, trees, ordpaths, parser/writer,
   axis semantics. *)

module Tag = Xnav_xml.Tag
module Tree = Xnav_xml.Tree
module Ordpath = Xnav_xml.Ordpath
module Axis = Xnav_xml.Axis
module Tree_axes = Xnav_xml.Tree_axes
module Xml_parser = Xnav_xml.Xml_parser
module Xml_writer = Xnav_xml.Xml_writer

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

(* --- Tag ---------------------------------------------------------------- *)

let tag_tests =
  [
    Alcotest.test_case "interning is idempotent" `Quick (fun () ->
        check bool "same tag" true (Tag.equal (Tag.of_string "item") (Tag.of_string "item")));
    Alcotest.test_case "distinct names get distinct tags" `Quick (fun () ->
        check bool "different" false (Tag.equal (Tag.of_string "foo") (Tag.of_string "bar")));
    Alcotest.test_case "to_string round-trips" `Quick (fun () ->
        check string "name" "listitem" (Tag.to_string (Tag.of_string "listitem")));
    Alcotest.test_case "of_id inverts id" `Quick (fun () ->
        let t = Tag.of_string "quux" in
        check bool "same" true (Tag.equal t (Tag.of_id (Tag.id t))));
    Alcotest.test_case "of_id rejects unknown ids" `Quick (fun () ->
        Alcotest.check_raises "invalid" (Invalid_argument "Tag.of_id: unknown tag id -1")
          (fun () -> ignore (Tag.of_id (-1))));
  ]

(* --- Tree --------------------------------------------------------------- *)

let tree_tests =
  [
    Alcotest.test_case "size and height" `Quick (fun () ->
        let t = Gen.sample_doc () in
        check int "size" 14 (Tree.size t);
        check int "height" 4 (Tree.height t));
    Alcotest.test_case "index assigns dense preorder" `Quick (fun () ->
        let t = Gen.sample_doc () in
        let n = Tree.index t in
        check int "count" (Tree.size t) n;
        let seen = Array.make n false in
        Tree.iter (fun node -> seen.(node.Tree.preorder) <- true) t;
        Array.iteri (fun i s -> check bool (Printf.sprintf "preorder %d" i) true s) seen);
    Alcotest.test_case "nodes are in document order" `Quick (fun () ->
        let t = Gen.sample_doc () in
        ignore (Tree.index t);
        let pres = List.map (fun n -> n.Tree.preorder) (Tree.nodes t) in
        check (Alcotest.list int) "preorder" (List.init (Tree.size t) Fun.id) pres);
    Alcotest.test_case "make rejects node sharing" `Quick (fun () ->
        let shared = Tree.leaf (Tag.of_string "s") in
        let _parent = Tree.make (Tag.of_string "p") [ shared ] in
        Alcotest.check_raises "sharing" (Invalid_argument "Tree.make: child already has a parent")
          (fun () -> ignore (Tree.make (Tag.of_string "q") [ shared ])));
    Alcotest.test_case "equal ignores parent and preorder" `Quick (fun () ->
        check bool "equal" true (Tree.equal (Gen.sample_doc ()) (Gen.sample_doc ())));
    Alcotest.test_case "tag_counts sums to size" `Quick (fun () ->
        let t = Gen.sample_doc () in
        let total = List.fold_left (fun acc (_, n) -> acc + n) 0 (Tree.tag_counts t) in
        check int "total" (Tree.size t) total);
    Alcotest.test_case "root finds the top" `Quick (fun () ->
        let t = Gen.sample_doc () in
        let some_leaf = List.nth (Tree.nodes t) (Tree.size t - 1) in
        check bool "root" true (Tree.root some_leaf == t));
  ]

(* --- Ordpath ------------------------------------------------------------ *)

let ordpath_pair_gen =
  let open QCheck2.Gen in
  (* A pair of distinct sibling-ish labels built by random child/sibling
     steps from the root. *)
  let label_gen =
    list_size (int_range 0 6) (int_range 0 4) >|= fun steps ->
    List.fold_left (fun l k -> Ordpath.child l k) Ordpath.root steps
  in
  pair label_gen label_gen

let ordpath_tests =
  [
    Alcotest.test_case "root is its own ancestor" `Quick (fun () ->
        check bool "aos" true (Ordpath.is_ancestor_or_self Ordpath.root Ordpath.root));
    Alcotest.test_case "child is after parent" `Quick (fun () ->
        let c = Ordpath.child Ordpath.root 0 in
        check bool "order" true (Ordpath.compare Ordpath.root c < 0);
        check bool "ancestor" true (Ordpath.is_ancestor_or_self Ordpath.root c);
        check int "level" 1 (Ordpath.level c));
    Alcotest.test_case "children are ordered by index" `Quick (fun () ->
        let c0 = Ordpath.child Ordpath.root 0 and c5 = Ordpath.child Ordpath.root 5 in
        check bool "order" true (Ordpath.compare c0 c5 < 0));
    Alcotest.test_case "next/prev siblings order correctly" `Quick (fun () ->
        let c = Ordpath.child Ordpath.root 3 in
        check bool "next" true (Ordpath.compare c (Ordpath.next_sibling c) < 0);
        check bool "prev" true (Ordpath.compare (Ordpath.prev_sibling c) c < 0));
    Alcotest.test_case "between on adjacent siblings uses a caret" `Quick (fun () ->
        let a = Ordpath.child Ordpath.root 0 and b = Ordpath.child Ordpath.root 1 in
        let m = Ordpath.between a b in
        check bool "a<m" true (Ordpath.compare a m < 0);
        check bool "m<b" true (Ordpath.compare m b < 0);
        check int "level preserved" (Ordpath.level a) (Ordpath.level m));
    Alcotest.test_case "between parent and first child" `Quick (fun () ->
        let c = Ordpath.child Ordpath.root 0 in
        let m = Ordpath.between Ordpath.root c in
        check bool "root<m" true (Ordpath.compare Ordpath.root m < 0);
        check bool "m<c" true (Ordpath.compare m c < 0));
    Alcotest.test_case "between rejects unordered arguments" `Quick (fun () ->
        let c = Ordpath.child Ordpath.root 0 in
        Alcotest.check_raises "unordered"
          (Invalid_argument "Ordpath.between: arguments not ordered") (fun () ->
            ignore (Ordpath.between c Ordpath.root)));
    Alcotest.test_case "repeated between keeps nesting bounded labels ordered" `Quick (fun () ->
        (* Insert 50 labels between two adjacent siblings; all must stay
           strictly ordered. *)
        let a = ref (Ordpath.child Ordpath.root 0) in
        let b = Ordpath.child Ordpath.root 1 in
        for _ = 1 to 50 do
          let m = Ordpath.between !a b in
          assert (Ordpath.compare !a m < 0 && Ordpath.compare m b < 0);
          a := m
        done);
    Alcotest.test_case "encode/decode round-trips" `Quick (fun () ->
        let label = Ordpath.of_components [| 1; -3; 4; 1; 255 |] in
        let buf = Buffer.create 16 in
        Ordpath.encode buf label;
        check int "size" (Buffer.length buf) (Ordpath.encoded_size label);
        let decoded, consumed = Ordpath.decode (Buffer.contents buf) 0 in
        check bool "equal" true (Ordpath.equal label decoded);
        check int "consumed" (Buffer.length buf) consumed);
    Alcotest.test_case "of_components validates" `Quick (fun () ->
        Alcotest.check_raises "even end"
          (Invalid_argument "Ordpath: label must end in an odd component") (fun () ->
            ignore (Ordpath.of_components [| 1; 2 |])));
  ]

let ordpath_props =
  [
    QCheck2.Test.make ~name:"ordpath: compare is a total order consistent with between"
      ~count:300 ordpath_pair_gen (fun (a, b) ->
        let c = Ordpath.compare a b in
        if c = 0 then Ordpath.equal a b
        else begin
          let lo, hi = if c < 0 then (a, b) else (b, a) in
          let m = Ordpath.between lo hi in
          Ordpath.compare lo m < 0 && Ordpath.compare m hi < 0
        end);
    QCheck2.Test.make ~name:"ordpath: codec round-trip" ~count:300 ordpath_pair_gen
      (fun (a, b) ->
        let roundtrip l =
          let buf = Buffer.create 16 in
          Ordpath.encode buf l;
          let decoded, _ = Ordpath.decode (Buffer.contents buf) 0 in
          Ordpath.equal l decoded
        in
        roundtrip a && roundtrip b);
    QCheck2.Test.make ~name:"ordpath: document order matches preorder on generated trees"
      ~count:100
      (Gen.tree_gen ~size:60 ())
      ~print:Gen.tree_print
      (fun tree ->
        ignore (Tree.index tree);
        (* Label the tree, then check label order == preorder. *)
        let labels = Hashtbl.create 64 in
        let rec label node path =
          Hashtbl.add labels node.Tree.preorder path;
          Array.iteri (fun i child -> label child (Ordpath.child path i)) node.Tree.children
        in
        label tree Ordpath.root;
        let nodes = Tree.nodes tree in
        let sorted =
          List.sort
            (fun x y ->
              Ordpath.compare
                (Hashtbl.find labels x.Tree.preorder)
                (Hashtbl.find labels y.Tree.preorder))
            nodes
        in
        List.for_all2 (fun a b -> a == b) nodes sorted);
    QCheck2.Test.make ~name:"ordpath: is_ancestor_or_self matches tree structure" ~count:60
      (Gen.tree_gen ~size:30 ())
      ~print:Gen.tree_print
      (fun tree ->
        ignore (Tree.index tree);
        let labels = Hashtbl.create 64 in
        let rec label node path =
          Hashtbl.add labels node.Tree.preorder path;
          Array.iteri (fun i child -> label child (Ordpath.child path i)) node.Tree.children
        in
        label tree Ordpath.root;
        let nodes = Tree.nodes tree in
        List.for_all
          (fun a ->
            List.for_all
              (fun b ->
                let expected =
                  List.memq a (b :: Tree_axes.nodes Axis.Ancestor b)
                in
                Ordpath.is_ancestor_or_self
                  (Hashtbl.find labels a.Tree.preorder)
                  (Hashtbl.find labels b.Tree.preorder)
                = expected)
              nodes)
          nodes);
  ]

(* --- XML parser / writer ------------------------------------------------- *)

let parser_tests =
  [
    Alcotest.test_case "parses a simple document" `Quick (fun () ->
        let t = Xml_parser.parse_string "<a><b/><c><d/></c></a>" in
        check int "size" 4 (Tree.size t);
        check string "root" "a" (Tag.to_string t.Tree.tag));
    Alcotest.test_case "skips declaration, comments, text, attributes" `Quick (fun () ->
        let doc =
          "<?xml version=\"1.0\"?><!-- hi --><a x=\"1\" y='2'>text<b/><!-- there \
           -->more<![CDATA[<raw>]]><c/></a>"
        in
        let t = Xml_parser.parse_string doc in
        check int "children" 2 (Array.length t.Tree.children));
    Alcotest.test_case "rejects mismatched tags" `Quick (fun () ->
        match Xml_parser.parse_string "<a><b></a></b>" with
        | exception Xml_parser.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected parse error");
    Alcotest.test_case "rejects trailing garbage" `Quick (fun () ->
        match Xml_parser.parse_string "<a/><b/>" with
        | exception Xml_parser.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected parse error");
    Alcotest.test_case "rejects empty input" `Quick (fun () ->
        match Xml_parser.parse_string "   " with
        | exception Xml_parser.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected parse error");
    Alcotest.test_case "writer emits self-closing leaves" `Quick (fun () ->
        let t = Tree.elt "a" [ Tree.elt "b" [] ] in
        check string "xml" "<a><b/></a>" (Xml_writer.to_string t));
    Alcotest.test_case "declaration flag" `Quick (fun () ->
        let t = Tree.elt "doc" [] in
        check bool "has decl" true
          (String.length (Xml_writer.to_string ~declaration:true t) > String.length "<doc/>"));
  ]

let parser_props =
  [
    QCheck2.Test.make ~name:"xml: parse . write = id" ~count:150
      (Gen.tree_gen ~size:80 ())
      ~print:Gen.tree_print
      (fun tree -> Tree.equal tree (Xml_parser.parse_string (Xml_writer.to_string tree)));
  ]

(* --- Axis semantics ------------------------------------------------------ *)

let axis_tests =
  [
    Alcotest.test_case "axes on the sample document" `Quick (fun () ->
        let t = Gen.sample_doc () in
        ignore (Tree.index t);
        check int "children of root" 3 (Tree_axes.count Axis.Child t);
        check int "descendants of root" 13 (Tree_axes.count Axis.Descendant t);
        check int "descendant-or-self" 14 (Tree_axes.count Axis.Descendant_or_self t);
        let first = t.Tree.children.(0) in
        check int "following-siblings" 2 (Tree_axes.count Axis.Following_sibling first);
        check int "preceding-siblings" 0 (Tree_axes.count Axis.Preceding_sibling first);
        check int "self" 1 (Tree_axes.count Axis.Self first);
        check int "parent of root" 0 (Tree_axes.count Axis.Parent t);
        let deep = first.Tree.children.(0).Tree.children.(0) in
        check int "ancestors" 3 (Tree_axes.count Axis.Ancestor deep);
        check int "ancestor-or-self" 4 (Tree_axes.count Axis.Ancestor_or_self deep));
    Alcotest.test_case "axis string round-trip" `Quick (fun () ->
        List.iter
          (fun axis ->
            match Axis.of_string (Axis.to_string axis) with
            | Some back -> check bool "roundtrip" true (Axis.equal axis back)
            | None -> Alcotest.fail "axis name did not round-trip")
          Axis.all);
  ]

let axis_props =
  [
    QCheck2.Test.make ~name:"axes: descendant-or-self = self + descendant" ~count:100
      (Gen.tree_gen ~size:40 ())
      ~print:Gen.tree_print
      (fun tree ->
        ignore (Tree.index tree);
        List.for_all
          (fun node ->
            Tree_axes.count Axis.Descendant_or_self node
            = Tree_axes.count Axis.Descendant node + 1)
          (Tree.nodes tree));
    QCheck2.Test.make ~name:"axes: siblings partition parent's other children" ~count:100
      (Gen.tree_gen ~size:40 ())
      ~print:Gen.tree_print
      (fun tree ->
        ignore (Tree.index tree);
        List.for_all
          (fun node ->
            match node.Tree.parent with
            | None -> true
            | Some parent ->
              Tree_axes.count Axis.Following_sibling node
              + Tree_axes.count Axis.Preceding_sibling node
              + 1
              = Array.length parent.Tree.children)
          (Tree.nodes tree));
  ]

let suite =
  [
    ("xml.tag", tag_tests);
    ("xml.tree", tree_tests);
    ("xml.ordpath", ordpath_tests);
    Gen.qsuite "xml.ordpath.props" ordpath_props;
    ("xml.parser", parser_tests);
    Gen.qsuite "xml.parser.props" parser_props;
    ("xml.axes", axis_tests);
    Gen.qsuite "xml.axes.props" axis_props;
  ]
