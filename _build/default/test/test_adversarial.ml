(* Adversarial and edge-case coverage across layers. *)

module Tree = Xnav_xml.Tree
module Tag = Xnav_xml.Tag
module Ordpath = Xnav_xml.Ordpath
module Import = Xnav_store.Import
module Store = Xnav_store.Store
module Node_id = Xnav_store.Node_id
module Node_record = Xnav_store.Node_record
module Update = Xnav_store.Update
module Buffer_manager = Xnav_storage.Buffer_manager
module Path = Xnav_xpath.Path
module Xpath_parser = Xnav_xpath.Xpath_parser
module Eval_ref = Xnav_xpath.Eval_ref
module Plan = Xnav_core.Plan
module Exec = Xnav_core.Exec
module Compile = Xnav_core.Compile
module Context = Xnav_core.Context

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let scheduler_tests =
  [
    Alcotest.test_case "non-speculative schedule revisits scattered clusters" `Quick (fun () ->
        (* A three-step path over a scattered layout bounces between
           clusters; without speculation clusters are revisited, with it
           each cluster is loaded at most once. *)
        let doc = Gen.wide_tree ~children:90 () in
        let store, import =
          Gen.import_store ~strategy:(Import.Scattered 23) ~payload:200 ~capacity:64 doc
        in
        let path = Xpath_parser.parse "//b/x" in
        let spec = Exec.cold_run ~ordered:false store path (Plan.xschedule ()) in
        let nospec =
          Exec.cold_run ~ordered:false store path (Plan.xschedule ~speculative:false ())
        in
        check int "same result" nospec.Exec.count spec.Exec.count;
        check bool "speculation caps visits" true
          (spec.Exec.metrics.Exec.clusters_visited <= import.Import.page_count);
        check bool "revisits without speculation" true
          (nospec.Exec.metrics.Exec.clusters_visited
          >= spec.Exec.metrics.Exec.clusters_visited));
    Alcotest.test_case "speculative schedule resolves some speculations" `Quick (fun () ->
        let doc = Gen.wide_tree ~children:90 () in
        let store, _ =
          Gen.import_store ~strategy:(Import.Scattered 23) ~payload:200 ~capacity:64 doc
        in
        let r = Exec.cold_run ~ordered:false store (Xpath_parser.parse "//b/x") (Plan.xschedule ()) in
        check bool "specs created" true (r.Exec.metrics.Exec.specs_created > 0));
  ]

let compile_tests =
  [
    Alcotest.test_case "dslash only applies with a root context" `Quick (fun () ->
        let store, _ = Gen.import_store (Gen.sample_doc ()) in
        (match Compile.compile ~choice:Compile.Force_scan ~context_is_root:false store
                 (Xpath_parser.parse "//B")
         with
        | Plan.Reordered { dslash = false; _ } -> ()
        | _ -> Alcotest.fail "expected a plain scan"));
  ]

let explicit_props =
  [
    QCheck2.Test.make ~name:"explicit clustering: any assignment navigates correctly" ~count:50
      QCheck2.Gen.(pair (Gen.tree_gen ~size:30 ()) (int_range 1 6))
      ~print:(fun (tree, clusters) -> Printf.sprintf "%s | %d clusters" (Gen.tree_print tree) clusters)
      (fun (tree, clusters) ->
        let n = Tree.index tree in
        (* Deterministic pseudo-random assignment from preorder. *)
        let assignment = Array.init n (fun pre -> pre * 2654435761 mod clusters) in
        let disk = Gen.small_disk ~page_size:4096 () in
        let import = Import.run ~strategy:(Import.Explicit assignment) disk tree in
        let buffer = Buffer_manager.create ~capacity:16 disk in
        let store = Store.attach buffer import in
        Tree.equal tree (Gen.reconstruct store)
        &&
        let path = Xpath_parser.parse "//b//c" in
        let expected = Eval_ref.count tree path in
        List.for_all
          (fun plan -> (Exec.cold_run ~ordered:false store path plan).Exec.count = expected)
          [ Plan.simple; Plan.xschedule (); Plan.xscan () ]);
  ]

let ordpath_growth_tests =
  [
    Alcotest.test_case "adversarial between-chains stay comparable and bounded" `Quick (fun () ->
        (* Alternate left- and right-leaning insertions; labels must stay
           totally ordered and grow at most linearly. *)
        let lo = ref (Ordpath.child Ordpath.root 0) in
        let hi = ref (Ordpath.child Ordpath.root 1) in
        let all = ref [ !lo; !hi ] in
        for i = 1 to 200 do
          let mid = Ordpath.between !lo !hi in
          all := mid :: !all;
          if i mod 2 = 0 then lo := mid else hi := mid
        done;
        let sorted = List.sort Ordpath.compare !all in
        let rec strictly_increasing = function
          | a :: (b :: _ as rest) -> Ordpath.compare a b < 0 && strictly_increasing rest
          | _ -> true
        in
        check bool "strict order" true (strictly_increasing sorted);
        let deepest =
          List.fold_left (fun acc l -> max acc (Array.length (Ordpath.components l))) 0 !all
        in
        check bool "bounded growth" true (deepest <= 205));
  ]

let update_overflow_tests =
  [
    Alcotest.test_case "insert First under overflow pressure" `Quick (fun () ->
        let doc = Gen.wide_tree ~children:30 () in
        let store, _ = Gen.import_store ~payload:150 ~page_size:256 doc in
        (* Fill the root page, then keep prepending. *)
        for i = 1 to 40 do
          ignore
            (Update.insert_element store ~parent:(Store.root store) ~position:Update.First
               (Tag.of_string (Printf.sprintf "f%d" (i mod 5))))
        done;
        let exported = Gen.reconstruct store in
        check int "arity" (30 + 40) (Array.length exported.Tree.children);
        (* Prepends arrive newest-first. *)
        check Alcotest.string "newest first" "f0"
          (Tag.to_string exported.Tree.children.(0).Tree.tag));
    Alcotest.test_case "interleaved inserts and deletes under tiny pages" `Quick (fun () ->
        let doc = Gen.wide_tree ~children:20 () in
        let store, _ = Gen.import_store ~payload:150 ~page_size:256 doc in
        let root = Store.root store in
        for round = 1 to 30 do
          let id = Update.insert_element store ~parent:root (Tag.of_string "tmp") in
          if round mod 2 = 0 then ignore (Update.delete_subtree store id)
        done;
        let exported = Gen.reconstruct store in
        check int "net growth" (20 + 15) (Array.length exported.Tree.children);
        check int "no pins" 0 (Buffer_manager.pinned_count (Store.buffer store)));
  ]

let continues_flag_tests =
  [
    Alcotest.test_case "bulk import creates only terminal runs" `Quick (fun () ->
        let doc = Gen.wide_tree ~children:80 () in
        let store, _ = Gen.import_store ~strategy:(Import.Scattered 3) ~payload:200 doc in
        for pid = Store.first_page store to Store.first_page store + Store.page_count store - 1 do
          let view = Store.view store pid in
          List.iter
            (fun slot ->
              match Store.get view slot with
              | Node_record.Up u -> check bool "terminal" false u.Node_record.continues
              | _ -> ())
            (Store.up_slots view);
          Store.release store view
        done);
    Alcotest.test_case "stale continues flag after deletes stays correct" `Quick (fun () ->
        (* Force a mid-chain run (First insert into a full page), then
           delete everything after it: the flag stays set but the walk
           must terminate cleanly with the right children. *)
        let doc = Gen.wide_tree ~children:30 () in
        let store, _ = Gen.import_store ~payload:150 ~page_size:256 doc in
        let root = Store.root store in
        for i = 1 to 15 do
          ignore
            (Update.insert_element store ~parent:root ~position:Update.First
               (Tag.of_string (Printf.sprintf "p%d" i)))
        done;
        (* Delete all the original children (everything not p-prefixed). *)
        let next = Store.global_axis store Xnav_xml.Axis.Child root in
        let rec collect acc =
          match next () with
          | None -> List.rev acc
          | Some (info : Store.info) -> collect (info :: acc)
        in
        List.iter
          (fun (info : Store.info) ->
            if (Tag.to_string info.Store.tag).[0] <> 'p' then
              ignore (Update.delete_subtree store info.Store.id))
          (collect []);
        let exported = Gen.reconstruct store in
        check int "only prepends remain" 15 (Array.length exported.Tree.children);
        check bool "order kept" true
          (Tag.equal exported.Tree.children.(0).Tree.tag (Tag.of_string "p15")));
  ]

let record_robustness_tests =
  [
    Alcotest.test_case "decode rejects unknown record kinds" `Quick (fun () ->
        match Node_record.decode "\x07garbage" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "read of an out-of-range page raises" `Quick (fun () ->
        let store, _ = Gen.import_store (Gen.sample_doc ()) in
        match Store.read store (Node_id.make ~pid:99999 ~slot:0) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
  ]

let suite =
  [
    ("adversarial.scheduler", scheduler_tests);
    ("adversarial.compile", compile_tests);
    Gen.qsuite "adversarial.explicit" explicit_props;
    ("adversarial.ordpath", ordpath_growth_tests);
    ("adversarial.update", update_overflow_tests);
    ("adversarial.continues", continues_flag_tests);
    ("adversarial.records", record_robustness_tests);
  ]
