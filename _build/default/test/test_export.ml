(* Document export: both strategies must reproduce the original tree
   exactly, with the expected I/O profiles. *)

module Tree = Xnav_xml.Tree
module Import = Xnav_store.Import
module Store = Xnav_store.Store
module Export = Xnav_store.Export
module Update = Xnav_store.Update
module Buffer_manager = Xnav_storage.Buffer_manager
module Disk = Xnav_storage.Disk
module Xml_parser = Xnav_xml.Xml_parser

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let tests =
  [
    Alcotest.test_case "navigational export reproduces the document" `Quick (fun () ->
        let doc = Gen.sample_doc () in
        let store, _ = Gen.import_store ~payload:200 doc in
        check bool "equal" true (Tree.equal doc (Export.document ~scan:false store)));
    Alcotest.test_case "scan export reproduces the document" `Quick (fun () ->
        let doc = Gen.wide_tree ~children:60 () in
        let store, _ = Gen.import_store ~payload:220 doc in
        check bool "equal" true (Tree.equal doc (Export.document ~scan:true store)));
    Alcotest.test_case "subtree export" `Quick (fun () ->
        let doc = Gen.sample_doc () in
        ignore (Tree.index doc);
        let store, import = Gen.import_store ~payload:200 doc in
        let child = doc.Tree.children.(1) in
        let id = import.Import.node_ids.(child.Tree.preorder) in
        check bool "nav" true (Tree.equal child (Export.subtree store id));
        check bool "scan" true (Tree.equal child (Export.subtree_scanned store id)));
    Alcotest.test_case "to_xml parses back to the same tree" `Quick (fun () ->
        let doc = Gen.sample_doc () in
        let store, _ = Gen.import_store ~payload:200 doc in
        let xml = Export.to_xml store (Store.root store) in
        check bool "roundtrip" true (Tree.equal doc (Xml_parser.parse_string xml)));
    Alcotest.test_case "scan export is sequential; nav export is not" `Quick (fun () ->
        let doc = Gen.wide_tree ~children:150 () in
        let store, import =
          Gen.import_store ~strategy:(Import.Scattered 17) ~payload:220 ~capacity:16 doc
        in
        let disk = Buffer_manager.disk (Store.buffer store) in
        Buffer_manager.reset (Store.buffer store);
        Disk.reset_clock disk;
        ignore (Export.document ~scan:true store);
        let scan_stats = Disk.stats disk in
        check int "one pass" import.Import.page_count scan_stats.Disk.reads;
        check int "no random reads" 0 scan_stats.Disk.random_reads;
        Buffer_manager.reset (Store.buffer store);
        Disk.reset_clock disk;
        ignore (Export.document ~scan:false store);
        check bool "nav is seeky" true ((Disk.stats disk).Disk.random_reads > 0));
    Alcotest.test_case "export after updates includes the changes" `Quick (fun () ->
        let doc = Gen.sample_doc () in
        let store, _ = Gen.import_store ~payload:200 doc in
        ignore
          (Update.insert_tree store ~parent:(Store.root store)
             (Tree.elt "appendix" [ Tree.elt "note" [] ]));
        let exported = Export.document store in
        check int "one more child" (Array.length doc.Tree.children + 1)
          (Array.length exported.Tree.children));
  ]

let suite = [ ("export", tests) ]
