#!/usr/bin/env python3
"""Render a compact baseline-vs-run delta table for the CI step summary.

Usage: bench_delta.py BASELINE.json RUN.json [SHARDS.json]

Matches rows on (query, plan, scale) and prints one GitHub-markdown line
per plan: row count, mean io_time / total_time delta, and the worst
single-row total_time delta with the row that produced it. When a
sharded-workload JSON (bench --workload --shards) is given and present,
its shards_summary counters — shard_reads, tenant_p99, rebalance_moves,
scan_resist_hits — are appended as a second table. Purely informational
— the hard gates are bench --compare and the shard run's own exit code.
"""

import json
import os
import sys
from collections import defaultdict


def rows_by_key(doc):
    return {(r["query"], r["plan"], round(float(r["scale"]), 3)): r for r in doc.get("rows", [])}


def pct(new, old):
    if old <= 0.0:
        return 0.0
    return 100.0 * (new - old) / old


def shard_summary(shards_file):
    with open(shards_file) as f:
        doc = json.load(f)
    summary = doc.get("shards_summary")
    if summary is None:
        return
    print()
    print(f"### Sharded workload (`{doc.get('schema', '?')}`)")
    print()
    cfg = doc.get("config", {})
    print(
        f"{summary.get('jobs', '?')} jobs over {cfg.get('shards', '?')} shards / "
        f"{cfg.get('tenants', '?')} tenants — "
        f"wall {summary.get('wall_simulated', '?')}s "
        f"(single-shard {summary.get('single_shard_wall', '?')}s), "
        f"throughput {summary.get('throughput', '?')} jobs/s."
    )
    print()
    print("| shard_reads | tenant_p99 | tenant_p99_median | rebalance_moves | scan_resist_hits |")
    print("|---|---|---|---|---|")
    print(
        f"| {summary.get('shard_reads', '?')} | {summary.get('tenant_p99', '?')} "
        f"| {summary.get('tenant_p99_median', '?')} | {summary.get('rebalance_moves', '?')} "
        f"| {summary.get('scan_resist_hits', '?')} |"
    )


def main():
    base_file, run_file = sys.argv[1], sys.argv[2]
    with open(base_file) as f:
        base = json.load(f)
    with open(run_file) as f:
        run = json.load(f)

    base_rows, run_rows = rows_by_key(base), rows_by_key(run)
    matched = sorted(set(base_rows) & set(run_rows))

    print("### Bench: run vs committed baseline")
    print()
    print(
        f"Baseline schema `{base.get('schema', '?')}`, run schema `{run.get('schema', '?')}`, "
        f"{len(matched)} matched rows "
        f"({len(run_rows) - len(matched)} new, {len(base_rows) - len(matched)} dropped)."
    )
    print()
    print("| plan | rows | mean io Δ | mean total Δ | worst total Δ |")
    print("|---|---|---|---|---|")

    by_plan = defaultdict(list)
    for key in matched:
        by_plan[key[1]].append(key)
    for plan in sorted(by_plan):
        keys = by_plan[plan]
        io_deltas = [pct(run_rows[k]["io_time"], base_rows[k]["io_time"]) for k in keys]
        tot_deltas = [pct(run_rows[k]["total_time"], base_rows[k]["total_time"]) for k in keys]
        worst = max(zip(tot_deltas, keys), key=lambda kv: kv[0])
        print(
            f"| {plan} | {len(keys)} | {sum(io_deltas) / len(keys):+.1f}% "
            f"| {sum(tot_deltas) / len(keys):+.1f}% "
            f"| {worst[0]:+.1f}% ({worst[1][0]} @ sf {worst[1][2]}) |"
        )

    if len(sys.argv) > 3 and os.path.exists(sys.argv[3]):
        shard_summary(sys.argv[3])


if __name__ == "__main__":
    main()
