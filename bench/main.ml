(* Benchmark harness: regenerates every figure and table of the paper's
   evaluation (Sec. 6), the motivating example, the operator traces of
   Examples 6/7, and ablations over the design parameters. See
   EXPERIMENTS.md for the experiment index and recorded outputs.

   Usage:
     dune exec bench/main.exe                 run every section
     dune exec bench/main.exe -- --filter fig9
     dune exec bench/main.exe -- --quick      smaller sweep
     dune exec bench/main.exe -- --micro      fused vs iterator chain ns/extension
     dune exec bench/main.exe -- micro        Bechamel microbenches *)

module Tree = Xnav_xml.Tree
module Disk = Xnav_storage.Disk
module Buffer_manager = Xnav_storage.Buffer_manager
module Io_scheduler = Xnav_storage.Io_scheduler
module Import = Xnav_store.Import
module Store = Xnav_store.Store
module Node_id = Xnav_store.Node_id
module Path = Xnav_xpath.Path
module Xpath_parser = Xnav_xpath.Xpath_parser
module Plan = Xnav_core.Plan
module Exec = Xnav_core.Exec
module Context = Xnav_core.Context
module Result_cache = Xnav_core.Result_cache
module Bench_schema = Xnav_core.Bench_schema
module Xmark = Xnav_xmark.Gen
module Queries = Xnav_xmark.Queries
module Workload = Xnav_workload.Workload
module Shard = Xnav_workload.Shard

(* --- configuration --------------------------------------------------------- *)

type bench_config = {
  fidelity : float;
  page_size : int;
  buffer : int;
  scale_factors : float list;
}

let full_config =
  {
    fidelity = 0.05;
    page_size = 4096;
    buffer = 256;
    scale_factors = [ 0.1; 0.25; 0.5; 0.75; 1.0; 1.25; 1.5; 1.75; 2.0 ];
  }

let quick_config =
  { full_config with fidelity = 0.02; scale_factors = [ 0.1; 0.5; 1.0; 2.0 ] }

(* Tiny profile for the @bench-smoke gate: small documents, two scale
   factors — enough to exercise every plan end to end in seconds. *)
let smoke_config = { full_config with fidelity = 0.005; scale_factors = [ 0.25; 1.0 ] }

let section_header title =
  Printf.printf "\n== %s ==\n" title

(* The three plans of the paper's evaluation (Sec. 6.2) — Simple,
   XSchedule with speculative = false, XScan — plus the structural-index
   plan added on top of the paper's algebra (ISSUE 6). *)
let paper_plans =
  [
    ("simple", Plan.simple);
    ("xschedule", Plan.xschedule ~speculative:false ());
    ("xscan", Plan.xscan ());
    ("xindex", Plan.xindex ());
  ]

let make_store ?(strategy = Import.Dfs) cfg doc =
  let disk = Disk.create ~config:{ Disk.default_config with Disk.page_size = cfg.page_size } () in
  let import = Import.run ~strategy disk doc in
  let buffer = Buffer_manager.create ~capacity:cfg.buffer disk in
  (Store.attach buffer import, import)

(* Evaluate a benchmark query (summing over its paths, each started
   cold as in the paper) and return (count, total, cpu, io). *)
let run_query ?config store plan (q : Queries.t) =
  List.fold_left
    (fun (count, total, cpu, io) path ->
      let r = Exec.cold_run ?config ~ordered:false store path plan in
      ( count + r.Exec.count,
        total +. r.Exec.metrics.Exec.total_time,
        cpu +. r.Exec.metrics.Exec.cpu_time,
        io +. r.Exec.metrics.Exec.io_time ))
    (0, 0., 0., 0.) q.Queries.paths

(* Aggregation of full metric records across a query's paths: times and
   event counters add, peaks take the maximum, [fell_back] is sticky. *)
let zero_metrics =
  {
    Exec.io_time = 0.;
    cpu_time = 0.;
    total_time = 0.;
    page_reads = 0;
    sequential_reads = 0;
    random_reads = 0;
    seek_distance = 0;
    buffer_lookups = 0;
    buffer_hits = 0;
    buffer_misses = 0;
    async_reads = 0;
    batched_reads = 0;
    batch_pages = 0;
    coalesce_runs = 0;
    scan_windows = 0;
    scan_window_pages = 0;
    instances = 0;
    crossings = 0;
    specs_created = 0;
    specs_stored = 0;
    specs_resolved = 0;
    s_peak = 0;
    q_peak = 0;
    q_enqueued = 0;
    q_served = 0;
    clusters_visited = 0;
    swizzle_hits = 0;
    swizzle_misses = 0;
    index_entries = 0;
    index_clusters = 0;
    index_residuals = 0;
    fused_transitions = 0;
    fused_states = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_evictions = 0;
    shared_demand = 0;
    writer_commits = 0;
    latch_waits = 0;
    snapshot_retries = 0;
    cluster_stales = 0;
    scan_resist_hits = 0;
    fell_back = false;
  }

let add_metrics (a : Exec.metrics) (b : Exec.metrics) =
  {
    Exec.io_time = a.Exec.io_time +. b.Exec.io_time;
    cpu_time = a.Exec.cpu_time +. b.Exec.cpu_time;
    total_time = a.Exec.total_time +. b.Exec.total_time;
    page_reads = a.Exec.page_reads + b.Exec.page_reads;
    sequential_reads = a.Exec.sequential_reads + b.Exec.sequential_reads;
    random_reads = a.Exec.random_reads + b.Exec.random_reads;
    seek_distance = a.Exec.seek_distance + b.Exec.seek_distance;
    buffer_lookups = a.Exec.buffer_lookups + b.Exec.buffer_lookups;
    buffer_hits = a.Exec.buffer_hits + b.Exec.buffer_hits;
    buffer_misses = a.Exec.buffer_misses + b.Exec.buffer_misses;
    async_reads = a.Exec.async_reads + b.Exec.async_reads;
    batched_reads = a.Exec.batched_reads + b.Exec.batched_reads;
    batch_pages = a.Exec.batch_pages + b.Exec.batch_pages;
    coalesce_runs = a.Exec.coalesce_runs + b.Exec.coalesce_runs;
    scan_windows = a.Exec.scan_windows + b.Exec.scan_windows;
    scan_window_pages = a.Exec.scan_window_pages + b.Exec.scan_window_pages;
    instances = a.Exec.instances + b.Exec.instances;
    crossings = a.Exec.crossings + b.Exec.crossings;
    specs_created = a.Exec.specs_created + b.Exec.specs_created;
    specs_stored = a.Exec.specs_stored + b.Exec.specs_stored;
    specs_resolved = a.Exec.specs_resolved + b.Exec.specs_resolved;
    s_peak = max a.Exec.s_peak b.Exec.s_peak;
    q_peak = max a.Exec.q_peak b.Exec.q_peak;
    q_enqueued = a.Exec.q_enqueued + b.Exec.q_enqueued;
    q_served = a.Exec.q_served + b.Exec.q_served;
    clusters_visited = a.Exec.clusters_visited + b.Exec.clusters_visited;
    swizzle_hits = a.Exec.swizzle_hits + b.Exec.swizzle_hits;
    swizzle_misses = a.Exec.swizzle_misses + b.Exec.swizzle_misses;
    index_entries = a.Exec.index_entries + b.Exec.index_entries;
    index_clusters = a.Exec.index_clusters + b.Exec.index_clusters;
    index_residuals = a.Exec.index_residuals + b.Exec.index_residuals;
    fused_transitions = a.Exec.fused_transitions + b.Exec.fused_transitions;
    fused_states = a.Exec.fused_states + b.Exec.fused_states;
    cache_hits = a.Exec.cache_hits + b.Exec.cache_hits;
    cache_misses = a.Exec.cache_misses + b.Exec.cache_misses;
    cache_evictions = a.Exec.cache_evictions + b.Exec.cache_evictions;
    shared_demand = a.Exec.shared_demand + b.Exec.shared_demand;
    writer_commits = a.Exec.writer_commits + b.Exec.writer_commits;
    latch_waits = a.Exec.latch_waits + b.Exec.latch_waits;
    snapshot_retries = a.Exec.snapshot_retries + b.Exec.snapshot_retries;
    cluster_stales = a.Exec.cluster_stales + b.Exec.cluster_stales;
    scan_resist_hits = a.Exec.scan_resist_hits + b.Exec.scan_resist_hits;
    fell_back = a.Exec.fell_back || b.Exec.fell_back;
  }

let run_query_full ?config store plan (q : Queries.t) =
  List.fold_left
    (fun (count, m) path ->
      let r = Exec.cold_run ?config ~ordered:false store path plan in
      (count + r.Exec.count, add_metrics m r.Exec.metrics))
    (0, zero_metrics) q.Queries.paths

(* --- figures 9, 10, 11 and table 3 ------------------------------------------ *)

(* One shared sweep: for each scaling factor, build the document once and
   run every query with every plan. *)
let sweep cfg =
  List.map
    (fun scale ->
      let doc =
        Xmark.generate ~config:{ Xmark.default_config with Xmark.scale; fidelity = cfg.fidelity } ()
      in
      let store, import = make_store cfg doc in
      let rows =
        List.map
          (fun (q : Queries.t) ->
            ( q.Queries.name,
              List.map (fun (pname, plan) -> (pname, run_query store plan q)) paper_plans ))
          Queries.all
      in
      (scale, import.Import.node_count, import.Import.page_count, rows))
    cfg.scale_factors

let figure sweep_data fig_no (q : Queries.t) =
  section_header
    (Printf.sprintf "Figure %d: %s — %s (total simulated seconds vs scaling factor)" fig_no
       q.Queries.name q.Queries.description);
  Printf.printf "%-6s %9s %9s %11s %11s %11s\n" "sf" "nodes" "pages" "simple" "xschedule" "xscan";
  let worst_ratio = ref infinity and scan_vs_simple = ref 0.0 in
  List.iter
    (fun (scale, nodes, pages, rows) ->
      let cells = List.assoc q.Queries.name rows in
      let t name =
        let _, total, _, _ = List.assoc name cells in
        total
      in
      Printf.printf "%-6.2f %9d %9d %11.4f %11.4f %11.4f\n" scale nodes pages (t "simple")
        (t "xschedule") (t "xscan");
      worst_ratio := min !worst_ratio (t "simple" /. t "xschedule");
      scan_vs_simple := max !scan_vs_simple (t "simple" /. t "xscan"))
    sweep_data;
  Printf.printf "shape: simple/xschedule >= %.2fx at every sf; best simple/xscan = %.2fx\n"
    !worst_ratio !scan_vs_simple

let table3 sweep_data =
  section_header "Table 3: total and CPU time at XMark scaling factor 1";
  (match List.find_opt (fun (scale, _, _, _) -> scale = 1.0) sweep_data with
  | None -> print_endline "(no sf=1.0 in this sweep)"
  | Some (_, _, _, rows) ->
    Printf.printf "%-6s %-9s | %10s %10s %6s\n" "query" "plan" "total[s]" "CPU[s]" "CPU%%";
    List.iter
      (fun (qname, cells) ->
        List.iter
          (fun (pname, (_, total, cpu, _)) ->
            Printf.printf "%-6s %-9s | %10.4f %10.4f %5.0f%%\n" qname pname total cpu
              (100. *. cpu /. Float.max 1e-9 total))
          cells)
      rows;
    print_endline
      "shape: the scan plan does most of its work on the CPU (highest CPU share),\n\
       the simple plan is I/O bound (lowest CPU share)")

(* --- example 1: motivation -------------------------------------------------- *)

let example1 () =
  section_header "Example 1: page access order of naive navigation (paper Fig. 1)";
  (* Root a and its children b..g live on page 0; each child's small
     subtree sits on its own page, and those pages are jumbled on disk
     (an update-worn layout, like the paper's 0,3,1,2 figure). *)
  let subtree i =
    Tree.elt
      (Printf.sprintf "%c" (Char.chr (Char.code 'b' + i)))
      [ Tree.elt "x" []; Tree.elt "y" [] ]
  in
  let doc = Tree.elt "a" (List.init 6 subtree) in
  ignore (Tree.index doc);
  let page_of_subtree = [| 4; 0; 5; 2; 1; 3 |] in
  let assignment = Array.make (Tree.size doc) 0 in
  Tree.iter
    (fun node ->
      let pre = node.Tree.preorder in
      if pre > 0 then begin
        let subtree_index = (pre - 1) / 3 in
        if (pre - 1) mod 3 <> 0 then
          (* x/y grandchildren: the subtree's own jumbled page. *)
          assignment.(pre) <- 1 + page_of_subtree.(subtree_index)
      end)
    doc;
  let disk = Disk.create ~config:{ Disk.default_config with Disk.page_size = 512 } () in
  let import = Import.run ~strategy:(Import.Explicit assignment) disk doc in
  let buffer = Buffer_manager.create ~capacity:16 disk in
  let store = Store.attach buffer import in
  let path = Xpath_parser.parse "//node()" in
  Disk.set_trace disk true;
  let naive = Exec.cold_run store path Plan.simple in
  let naive_order = Disk.trace disk in
  let naive_seek = (Disk.stats disk).Disk.seek_distance in
  Disk.set_trace disk true;
  let sched = Exec.cold_run store path (Plan.xschedule ()) in
  let sched_order = Disk.trace disk in
  let sched_seek = (Disk.stats disk).Disk.seek_distance in
  Disk.set_trace disk false;
  let show order = String.concat "," (List.map string_of_int order) in
  Printf.printf "document: %d nodes over %d pages\n" (Tree.size doc) import.Import.page_count;
  Printf.printf "naive (simple) access order:     %s   seek distance %d\n" (show naive_order)
    naive_seek;
  Printf.printf "xschedule (async) access order:  %s   seek distance %d\n" (show sched_order)
    sched_seek;
  Printf.printf "both return %d = %d nodes; reordering cut seeks by %.1fx\n" naive.Exec.count
    sched.Exec.count
    (float_of_int naive_seek /. Float.max 1.0 (float_of_int sched_seek))

(* --- table 1: path instance classification ---------------------------------- *)

(* The paper's Table 1 classifies partial path instances for /A//B; the
   classification predicate mirrors Sec. 4.3: an instance is F(ull),
   L(eft-complete), R(ight-complete), C(omplete) from (l, r), whether the
   end nodes are border nodes, and the path length. *)
let table1 () =
  section_header "Table 1: partial path instances for /A//B (classification per Sec. 4.3)";
  let path_len = 2 in
  let classify ~l ~r ~left_border ~right_border =
    let left_complete = not left_border in
    let right_complete = not right_border in
    let complete = left_complete && right_complete in
    let full = complete && l = 0 && r = path_len in
    (full, left_complete, right_complete, complete)
  in
  let rows =
    (* (no, ctx, step1, step2, l, r, left_border, right_border) — the
       nine rows of the paper's table on its sample tree (Fig. 3). *)
    [
      (1, "d1", "eps", "eps", 0, 0, false, false);
      (2, "d1", "a2", "eps", 0, 1, false, false);
      (3, "d1", "c2", "eps", 0, 1, false, false);
      (4, "d1", "c2", "c4", 0, 2, false, false);
      (5, "d1", "a2", "a3", 0, 2, false, false);
      (6, "d1", "d2", "eps", 0, 1, false, true);
      (7, "d1", "d3", "eps", 0, 1, false, true);
      (8, "c1", "c2", "c4", 0, 2, true, false);
      (9, "a1", "a2", "a3", 0, 2, true, false);
    ]
  in
  let expected =
    (* F L R C from the paper. *)
    [
      (false, true, true, true); (false, true, true, true); (false, true, true, true);
      (true, true, true, true); (true, true, true, true); (false, true, false, false);
      (false, true, false, false); (false, false, true, false); (false, false, true, false);
    ]
  in
  Printf.printf "%-3s %-8s %-6s %-6s %2s %2s | %2s %2s %2s %2s | paper\n" "no" "context" "pi1"
    "pi2" "l" "r" "F" "L" "R" "C";
  let all_match = ref true in
  List.iter2
    (fun (no, ctx, s1, s2, l, r, lb, rb) (ef, el, er, ec) ->
      let f, lc, rc, c = classify ~l ~r ~left_border:lb ~right_border:rb in
      let mark b = if b then "+" else "-" in
      if (f, lc, rc, c) <> (ef, el, er, ec) then all_match := false;
      Printf.printf "%-3d %-8s %-6s %-6s %2d %2d | %2s %2s %2s %2s | %s\n" no ctx s1 s2 l r
        (mark f) (mark lc) (mark rc) (mark c)
        (if (f, lc, rc, c) = (ef, el, er, ec) then "match" else "MISMATCH"))
    rows expected;
  Printf.printf "all nine rows match the paper: %b\n" !all_match

(* --- table 2: the selected XMark queries -------------------------------------- *)

let table2 cfg =
  section_header "Table 2: selected XMark queries (with result counts at sf=1)";
  let doc =
    Xmark.generate
      ~config:{ Xmark.default_config with Xmark.scale = 1.0; fidelity = cfg.fidelity }
      ()
  in
  let store, _ = make_store cfg doc in
  Printf.printf "%-5s %-70s %8s\n" "No." "XPath queries" "count";
  List.iter
    (fun (q : Queries.t) ->
      let count, _, _, _ = run_query store Plan.simple q in
      let desc = q.Queries.description in
      let desc = if String.length desc > 70 then String.sub desc 0 70 else desc in
      Printf.printf "%-5s %-70s %8d\n" (String.uppercase_ascii q.Queries.name) desc count)
    Queries.all

(* --- examples 6/7: operator trace -------------------------------------------- *)

let trace_section () =
  section_header "Examples 6/7: operator cooperation trace for /A//B on a clustered tree";
  let e = Tree.elt in
  (* A small document in the spirit of the paper's Fig. 5. *)
  let doc =
    e "R" [ e "A" [ e "B" [] ; e "C" [ e "B" [] ] ]; e "C" [ e "A" [ e "B" [] ] ] ]
  in
  let path = Path.from_root_element (Xpath_parser.parse "/R/A//B") in
  List.iter
    (fun (label, plan) ->
      Printf.printf "--- %s plan ---\n" label;
      let disk = Disk.create ~config:{ Disk.default_config with Disk.page_size = 256 } () in
      let import = Import.run ~payload:120 ~strategy:Import.Bfs disk doc in
      let buffer = Buffer_manager.create ~capacity:16 disk in
      let store = Store.attach buffer import in
      let r =
        Exec.cold_run ~trace:(fun msg -> Printf.printf "  %s\n" msg) store path plan
      in
      Printf.printf "  => %d result nodes from %d pages\n" r.Exec.count import.Import.page_count)
    [ ("XSchedule (Example 6)", Plan.xschedule ()); ("XScan (Example 7)", Plan.xscan ()) ]

(* --- ablations ----------------------------------------------------------------- *)

let xmark_store ?(strategy = Import.Dfs) cfg ~scale =
  let doc =
    Xmark.generate ~config:{ Xmark.default_config with Xmark.scale; fidelity = cfg.fidelity } ()
  in
  make_store ~strategy cfg doc

let ablation_k cfg =
  section_header "Ablation: XSchedule queue minimum k (//item from region contexts, scattered layout)";
  let store, _ = xmark_store ~strategy:(Import.Scattered 11) cfg ~scale:0.5 in
  (* To give k something to do, evaluate the //item step from many
     region contexts instead of the single document root. *)
  let contexts_path = Path.from_root_element (Xpath_parser.parse "/site/regions/*") in
  let contexts =
    (Exec.cold_run store contexts_path Plan.simple).Exec.nodes
    |> List.map (fun (i : Store.info) -> i.Store.id)
  in
  let item_path = Xpath_parser.parse "descendant-or-self::node()/item" in
  Printf.printf "%-8s %10s %12s %10s\n" "k" "io[s]" "seek-dist" "count";
  List.iter
    (fun k ->
      let config = { Context.default_config with Context.k; speculative = false } in
      let r =
        Exec.cold_run ~config ~contexts ~ordered:false store item_path
          (Plan.xschedule ~speculative:false ())
      in
      Printf.printf "%-8d %10.4f %12d %10d\n" k r.Exec.metrics.Exec.io_time
        r.Exec.metrics.Exec.seek_distance r.Exec.count)
    [ 1; 10; 100; 1000 ]

let ablation_sched cfg =
  section_header "Ablation: asynchronous I/O policy (Q6' on a scattered layout)";
  Printf.printf "%-10s %10s %12s %10s\n" "policy" "io[s]" "seek-dist" "random";
  let doc =
    Xmark.generate
      ~config:{ Xmark.default_config with Xmark.scale = 1.0; fidelity = cfg.fidelity }
      ()
  in
  List.iter
    (fun policy ->
      let disk =
        Disk.create ~config:{ Disk.default_config with Disk.page_size = cfg.page_size } ()
      in
      let import = Import.run ~strategy:(Import.Scattered 11) disk doc in
      let buffer = Buffer_manager.create ~capacity:cfg.buffer ~policy disk in
      let store = Store.attach buffer import in
      ignore import;
      let q = Queries.q6' in
      let _, _, _, io = run_query store (Plan.xschedule ~speculative:false ()) q in
      let stats = Disk.stats disk in
      Printf.printf "%-10s %10.4f %12d %10d\n"
        (Io_scheduler.policy_to_string policy)
        io stats.Disk.seek_distance stats.Disk.random_reads)
    Io_scheduler.all_policies

let ablation_batching cfg =
  section_header
    "Ablation: coalescing window x adaptive scan threshold (XSchedule, simulated io seconds)";
  let store, _ = xmark_store cfg ~scale:1.0 in
  let queries = [ Queries.q6'; Queries.q7; Queries.q15 ] in
  Printf.printf "%-8s %-10s %10s %10s %10s %9s %9s %8s\n" "window" "threshold" "q6'[s]" "q7[s]"
    "q15[s]" "batches" "pages" "windows";
  List.iter
    (fun coalesce_window ->
      List.iter
        (fun scan_threshold ->
          let config =
            {
              Context.default_config with
              Context.speculative = false;
              coalesce_window;
              scan_threshold;
            }
          in
          let results =
            List.map
              (fun q -> run_query_full ~config store (Plan.xschedule ~speculative:false ()) q)
              queries
          in
          let agg = List.fold_left (fun acc (_, m) -> add_metrics acc m) zero_metrics results in
          let io i =
            let _, m = List.nth results i in
            m.Exec.io_time
          in
          Printf.printf "%-8d %-10s %10.4f %10.4f %10.4f %9d %9d %8d\n" coalesce_window
            (if scan_threshold <= 0.0 then "off" else Printf.sprintf "%.2f" scan_threshold)
            (io 0) (io 1) (io 2) agg.Exec.batched_reads agg.Exec.batch_pages
            agg.Exec.scan_windows)
        [ 0.0; 0.25; 0.5 ])
    [ 0; 4; 16; 64 ]

let ablation_clustering cfg =
  section_header "Ablation: clustering strategy (Q6', all plans)";
  Printf.printf "%-16s %11s %11s %11s\n" "layout" "simple" "xschedule" "xscan";
  List.iter
    (fun strategy ->
      let store, _ = xmark_store ~strategy cfg ~scale:1.0 in
      Printf.printf "%-16s" (Import.strategy_to_string strategy);
      List.iter
        (fun (_, plan) ->
          let _, total, _, _ = run_query store plan Queries.q6' in
          Printf.printf " %10.4f " total)
        paper_plans;
      print_newline ())
    [ Import.Dfs; Import.Bfs; Import.Scattered 11 ]

let ablation_buffer cfg =
  section_header "Ablation: buffer capacity (Q7)";
  let doc =
    Xmark.generate
      ~config:{ Xmark.default_config with Xmark.scale = 1.0; fidelity = cfg.fidelity }
      ()
  in
  Printf.printf "%-8s %11s %11s %11s\n" "pages" "simple" "xschedule" "xscan";
  List.iter
    (fun capacity ->
      let store, _ = make_store { cfg with buffer = capacity } doc in
      Printf.printf "%-8d" capacity;
      List.iter
        (fun (_, plan) ->
          let _, total, _, _ = run_query store plan Queries.q7 in
          Printf.printf " %10.4f " total)
        paper_plans;
      print_newline ())
    [ 32; 64; 128; 256; 512; 1024 ]

let ablation_fallback cfg =
  section_header "Ablation: fallback memory budget (Q7 first path, XScan, scattered layout)";
  let store, _ = xmark_store ~strategy:(Import.Scattered 11) cfg ~scale:0.5 in
  let path = List.hd Queries.q7.Queries.paths in
  Printf.printf "%-12s %11s %8s %8s %10s\n" "budget |S|" "total[s]" "S-peak" "fellback" "count";
  List.iter
    (fun memory_budget ->
      let config = { Context.default_config with Context.memory_budget } in
      let r = Exec.cold_run ~config ~ordered:false store path (Plan.xscan ()) in
      Printf.printf "%-12d %11.4f %8d %8b %10d\n" memory_budget r.Exec.metrics.Exec.total_time
        r.Exec.metrics.Exec.s_peak r.Exec.metrics.Exec.fell_back r.Exec.count)
    [ 0; 100; 1000; 10000; 1000000 ]

let ablation_multi cfg =
  section_header
    "Ablation (outlook Sec. 7): Q7's three paths — one shared scan vs three XScan plans";
  let store, import = xmark_store cfg ~scale:1.0 in
  let paths = Queries.q7.Queries.paths in
  let sep_count, sep_total, _, _ = run_query store (Plan.xscan ()) Queries.q7 in
  let multi = Xnav_core.Multi.run ~cold:true ~ordered:false store paths in
  let multi_count = Array.fold_left ( + ) 0 multi.Xnav_core.Multi.counts in
  Printf.printf "%-22s %10s %12s %10s\n" "strategy" "count" "page-reads" "total[s]";
  Printf.printf "%-22s %10d %12d %10.4f\n" "three XScan plans" sep_count
    (3 * import.Import.page_count) sep_total;
  Printf.printf "%-22s %10d %12d %10.4f\n" "one shared scan" multi_count
    multi.Xnav_core.Multi.page_reads multi.Xnav_core.Multi.total_time;
  Printf.printf "shared scan saves %.1fx of the I/O passes\n"
    (float_of_int (3 * import.Import.page_count)
    /. Float.max 1.0 (float_of_int multi.Xnav_core.Multi.page_reads))

let ablation_concurrency cfg =
  section_header
    "Ablation (outlook Sec. 7): two concurrent queries, interleaved vs sequential";
  let store, _ = xmark_store cfg ~scale:1.0 in
  let p1 = List.hd Queries.q7.Queries.paths in
  let p2 = List.nth Queries.q7.Queries.paths 1 in
  let sequential plan =
    let a = Exec.cold_run ~ordered:false store p1 plan in
    let b = Exec.run ~ordered:false store p2 plan in
    ( a.Exec.metrics.Exec.io_time +. b.Exec.metrics.Exec.io_time,
      a.Exec.metrics.Exec.seek_distance + b.Exec.metrics.Exec.seek_distance )
  in
  let interleaved plan =
    let r = Xnav_core.Interleave.run ~cold:true ~ordered:false store [ (p1, plan); (p2, plan) ] in
    (r.Xnav_core.Interleave.io_time, r.Xnav_core.Interleave.seek_distance)
  in
  Printf.printf "%-24s %12s %12s\n" "configuration" "io[s]" "seek-dist";
  let show label (io, seek) = Printf.printf "%-24s %12.4f %12d\n" label io seek in
  show "2 x xscan, sequential" (sequential (Plan.xscan ()));
  show "2 x xscan, concurrent" (interleaved (Plan.xscan ()));
  show "2 x xschedule, sequential" (sequential (Plan.xschedule ~speculative:false ()));
  show "2 x xschedule, concurrent" (interleaved (Plan.xschedule ~speculative:false ()));
  print_endline
    "(concurrent scans drag the disk arm between two sweep positions — the\n\
     interference the paper warns about for scan-only designs; concurrent\n\
     schedules pool their pending requests in one queue)"

let ablation_rewrite cfg =
  section_header
    "Ablation (requirement 4): logical //-compression before physical reordering (Q7 paths)";
  let store, _ = xmark_store cfg ~scale:1.0 in
  Printf.printf "%-30s %-9s %10s %12s %10s\n" "path" "form" "steps" "specs" "total[s]";
  List.iter
    (fun path ->
      List.iter
        (fun (form, p) ->
          let r = Exec.cold_run ~ordered:false store p (Plan.xscan ()) in
          Printf.printf "%-30s %-9s %10d %12d %10.4f\n"
            (String.concat "/" (List.filteri (fun i _ -> i < 1) [ Path.to_string path ])
            |> fun s -> if String.length s > 30 then String.sub s 0 30 else s)
            form (Path.length p) r.Exec.metrics.Exec.specs_created
            r.Exec.metrics.Exec.total_time)
        [ ("raw", path); ("rewritten", Xnav_xpath.Rewrite.normalize path) ])
    Queries.q7.Queries.paths

let ablation_decay cfg =
  section_header
    "Ablation: layout decay through real updates (bulk load, then grow the document in place)";
  let doc =
    Xmark.generate
      ~config:{ Xmark.default_config with Xmark.scale = 0.5; fidelity = cfg.fidelity }
      ()
  in
  let store, _ = make_store cfg doc in
  let q = Queries.q6' in
  let measure label =
    Printf.printf "%-28s %9d pages |" label (Store.page_count store);
    List.iter
      (fun (_, plan) ->
        let _, total, _, _ = run_query store plan q in
        Printf.printf " %10.4f" total)
      paper_plans;
    print_newline ()
  in
  Printf.printf "%-28s %15s %10s %10s %10s\n" "state" "" "simple" "xschedule" "xscan";
  measure "freshly bulk-loaded";
  (* Age the store: append new items to every region and graft bidders
     into open auctions — the new records land in overflow pages far from
     their logical neighbours. *)
  let parse p = Path.from_root_element (Xpath_parser.parse p) in
  let ids path =
    (Exec.run ~ordered:false store (parse path) Plan.simple).Exec.nodes
    |> List.map (fun (i : Store.info) -> i.Store.id)
  in
  let new_item () =
    Tree.elt "item"
      [ Tree.elt "location" []; Tree.elt "name" []; Tree.elt "description" [ Tree.elt "text" [] ] ]
  in
  let regions = ids "/site/regions/*" in
  let initial_pages = Store.page_count store in
  let target = initial_pages + (initial_pages / 4) in
  let rounds = ref 0 in
  (* Churn: every round deletes the oldest item of each region and
     appends a fresh one — freed slots get reused by whatever inserts
     next, interleaving unrelated subtrees on the same pages. *)
  while Store.page_count store < target && !rounds < 400 do
    incr rounds;
    List.iter
      (fun region ->
        (match
           (Exec.run ~ordered:false store ~contexts:[ region ]
              (Xpath_parser.parse "child::item") Plan.simple).Exec.nodes
         with
        | (oldest : Store.info) :: _ ->
          ignore (Xnav_store.Update.delete_subtree store oldest.Store.id)
        | [] -> ());
        ignore (Xnav_store.Update.insert_tree store ~parent:region (new_item ()));
        ignore (Xnav_store.Update.insert_tree store ~parent:region (new_item ())))
      regions
  done;
  let auctions = ids "/site/open_auctions/open_auction" in
  List.iteri
    (fun i auction ->
      if i mod 2 = 0 then
        ignore
          (Xnav_store.Update.insert_tree store ~parent:auction
             (Tree.elt "bidder" [ Tree.elt "date" []; Tree.elt "increase" [] ])))
    auctions;
  measure "after in-place churn";
  print_endline
    "(churned records land in overflow pages linked by fresh border pairs;\n\
     every plan pays for the fragmentation, and the layout-independent scan\n\
     overtakes the schedule plan as decay progresses -- update wear shifts\n\
     the optimizer's crossover toward scans, which is why the plan choice\n\
     must be cost-based rather than fixed)"

let ablation_replacement cfg =
  section_header "Ablation: buffer replacement policy (Q7 first path, Simple plan, small buffer)";
  let doc =
    Xmark.generate
      ~config:{ Xmark.default_config with Xmark.scale = 1.0; fidelity = cfg.fidelity }
      ()
  in
  let path = List.hd Queries.q7.Queries.paths in
  Printf.printf "%-8s %11s %10s %10s\n" "policy" "total[s]" "hits" "misses";
  List.iter
    (fun replacement ->
      let disk =
        Disk.create ~config:{ Disk.default_config with Disk.page_size = cfg.page_size } ()
      in
      let import = Import.run disk doc in
      let buffer = Buffer_manager.create ~capacity:64 ~replacement disk in
      let store = Store.attach buffer import in
      ignore import;
      let r = Exec.cold_run ~ordered:false store path Plan.simple in
      let stats = Buffer_manager.stats buffer in
      Printf.printf "%-8s %11.4f %10d %10d\n"
        (Buffer_manager.replacement_to_string replacement)
        r.Exec.metrics.Exec.total_time stats.Buffer_manager.hits stats.Buffer_manager.misses)
    Buffer_manager.all_replacements

let ablation_estimate cfg =
  section_header
    "Ablation: cardinality estimation — per-tag bound (v1) vs path synopsis (v2) vs actual";
  let store, _ = xmark_store cfg ~scale:1.0 in
  Printf.printf "%-34s %12s %12s %12s\n" "path" "v1 bound" "v2 synopsis" "actual";
  List.iter
    (fun path ->
      let v1 =
        List.fold_left
          (fun acc (s : Path.step) ->
            acc
            + (match s.Path.test with
              | Path.Name tag -> Store.tag_count store tag
              | Path.Wildcard | Path.Any_node -> Store.node_count store))
          0 path
      in
      let v2 =
        match Store.doc_stats store with
        | Some stats ->
          let per_step = Xnav_store.Doc_stats.estimate_path stats path in
          List.nth per_step (List.length per_step - 1)
        | None -> nan
      in
      let actual = (Exec.cold_run ~ordered:false store path Plan.simple).Exec.count in
      let label = Path.to_string path in
      let label =
        if String.length label > 34 then String.sub label (String.length label - 34) 34
        else label
      in
      Printf.printf "%-34s %12d %12.0f %12d\n" label v1 v2 actual)
    (List.concat_map (fun (q : Queries.t) -> q.Queries.paths) Queries.all);
  print_endline
    "(v1 sums per-tag totals over the steps — a wild over-estimate; the v2\n\
     synopsis propagates parent/child pair statistics down the path)"

(* --- swizzled vs unswizzled navigation fixtures ----------------------------- *)

(* [reps] cursor walks over one pinned view: the access pattern of an
   XStep chain re-walking its cluster once per path instance. With the
   decode cache on, only the first walk pays the record codec. *)
let cursor_walk store ~reps axis =
  let root = Store.root store in
  let v = Store.view store root.Node_id.pid in
  let total = ref 0 in
  for _ = 1 to reps do
    let c = Store.start v axis root.Node_id.slot in
    let rec go () =
      match Store.next_emission c with
      | None -> ()
      | Some _ ->
        incr total;
        go ()
    in
    go ()
  done;
  Store.release store v;
  !total

(* One single-page document and one spanning ~100 pages (only the root
   cluster is walked; the many-page layout gives it border records). *)
let swizzle_fixtures () =
  let one_page =
    Tree.elt "root" (List.init 40 (fun i -> Tree.elt (Printf.sprintf "c%d" (i mod 7)) []))
  in
  let hundred_pages =
    Tree.elt "root"
      (List.init 850 (fun _ ->
           Tree.elt "item"
             [ Tree.elt "name" []; Tree.elt "description" [ Tree.elt "text" [] ] ]))
  in
  List.map
    (fun (label, doc, payload) ->
      let disk = Disk.create ~config:{ Disk.default_config with Disk.page_size = 4096 } () in
      let import = Import.run ~payload disk doc in
      let buffer = Buffer_manager.create ~capacity:256 disk in
      (label, Store.attach buffer import, import.Import.page_count))
    [ ("1page", one_page, 3800); ("100page", hundred_pages, 3400) ]

let swizzle_axes = [ ("child", Xnav_xml.Axis.Child); ("descendant", Xnav_xml.Axis.Descendant) ]

(* --- machine-readable output (--json) --------------------------------------- *)

exception Malformed of string

let jfloat v =
  if not (Float.is_finite v) then raise (Malformed (Printf.sprintf "non-finite float %h" v));
  Printf.sprintf "%.6f" v

let jstring s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let jobj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> jstring k ^ ":" ^ v) fields) ^ "}"

let jarr items = "[" ^ String.concat "," items ^ "]"

(* Structural self-check on the emitted text: the file is written by
   string concatenation, so guard against an unbalanced or truncated
   document before it lands on disk. *)
let check_json_shape s =
  let depth = ref 0 and in_str = ref false and escaped = ref false in
  String.iter
    (fun c ->
      if !in_str then begin
        if !escaped then escaped := false
        else if c = '\\' then escaped := true
        else if c = '"' then in_str := false
      end
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
          decr depth;
          if !depth < 0 then raise (Malformed "closing bracket without opener")
        | _ -> ())
    s;
  if String.length s = 0 || !depth <> 0 || !in_str then
    raise (Malformed "unbalanced braces or unterminated string")

let metrics_fields count (m : Exec.metrics) =
  [
    ("count", string_of_int count);
    ("io_time", jfloat m.Exec.io_time);
    ("cpu_time", jfloat m.Exec.cpu_time);
    ("total_time", jfloat m.Exec.total_time);
    ("page_reads", string_of_int m.Exec.page_reads);
    ("sequential_reads", string_of_int m.Exec.sequential_reads);
    ("random_reads", string_of_int m.Exec.random_reads);
    ("seek_distance", string_of_int m.Exec.seek_distance);
    ("buffer_lookups", string_of_int m.Exec.buffer_lookups);
    ("buffer_hits", string_of_int m.Exec.buffer_hits);
    ("buffer_misses", string_of_int m.Exec.buffer_misses);
    ("async_reads", string_of_int m.Exec.async_reads);
    ("batched_reads", string_of_int m.Exec.batched_reads);
    ("batch_pages", string_of_int m.Exec.batch_pages);
    ("coalesce_runs", string_of_int m.Exec.coalesce_runs);
    ("scan_windows", string_of_int m.Exec.scan_windows);
    ("scan_window_pages", string_of_int m.Exec.scan_window_pages);
    ("instances", string_of_int m.Exec.instances);
    ("crossings", string_of_int m.Exec.crossings);
    ("specs_created", string_of_int m.Exec.specs_created);
    ("specs_stored", string_of_int m.Exec.specs_stored);
    ("specs_resolved", string_of_int m.Exec.specs_resolved);
    ("s_peak", string_of_int m.Exec.s_peak);
    ("q_peak", string_of_int m.Exec.q_peak);
    ("q_enqueued", string_of_int m.Exec.q_enqueued);
    ("q_served", string_of_int m.Exec.q_served);
    ("clusters_visited", string_of_int m.Exec.clusters_visited);
    ("swizzle_hits", string_of_int m.Exec.swizzle_hits);
    ("swizzle_misses", string_of_int m.Exec.swizzle_misses);
    ("swizzle_hit_rate", jfloat (Exec.swizzle_hit_rate m));
    ("index_entries", string_of_int m.Exec.index_entries);
    ("index_clusters", string_of_int m.Exec.index_clusters);
    ("index_residuals", string_of_int m.Exec.index_residuals);
    ("fused_transitions", string_of_int m.Exec.fused_transitions);
    ("fused_states", string_of_int m.Exec.fused_states);
    ("cache_hits", string_of_int m.Exec.cache_hits);
    ("cache_misses", string_of_int m.Exec.cache_misses);
    ("cache_evictions", string_of_int m.Exec.cache_evictions);
    ("shared_demand", string_of_int m.Exec.shared_demand);
    ("scan_resist_hits", string_of_int m.Exec.scan_resist_hits);
    ("fell_back", if m.Exec.fell_back then "true" else "false");
  ]

(* CPU-time a thunk, growing the iteration count until the sample is
   long enough to trust; returns nanoseconds per call. *)
let time_ns f =
  ignore (f ());
  let rec measure iters =
    let t0 = Sys.time () in
    for _ = 1 to iters do
      ignore (f ())
    done;
    let dt = Sys.time () -. t0 in
    if dt < 0.02 && iters < 1_000_000 then measure (iters * 4)
    else dt *. 1e9 /. float_of_int iters
  in
  measure 1

(* Per-extension CPU cost of the fused automaton vs the XStep iterator
   chain, on synthetic deep paths whose evaluation is pure chain work
   (warm buffer, scan I/O amortised away by the iteration count). The
   denominator is the number of automaton transitions — one per cursor
   emission, identical for both chain implementations by construction. *)
let fused_micro_fixtures () =
  let rec nest tag d = Tree.elt tag (if d = 0 then [] else [ nest tag (d - 1) ]) in
  let deep = Tree.elt "root" (List.init 96 (fun _ -> nest "a" 11)) in
  let bushy =
    Tree.elt "root"
      (List.init 64 (fun _ ->
           Tree.elt "item" [ Tree.elt "name" []; Tree.elt "description" [ Tree.elt "text" [] ] ]))
  in
  let attach doc =
    let disk = Disk.create ~config:{ Disk.default_config with Disk.page_size = 4096 } () in
    let import = Import.run disk doc in
    let buffer = Buffer_manager.create ~capacity:256 disk in
    (Store.attach buffer import, import.Import.page_count)
  in
  let chain tag n =
    List.init n (fun _ ->
        { Path.axis = Xnav_xml.Axis.Child; Path.test = Path.Name (Xnav_xml.Tag.of_string tag) })
  in
  let descend tag =
    [
      { Path.axis = Xnav_xml.Axis.Descendant; Path.test = Path.Name (Xnav_xml.Tag.of_string tag) };
    ]
  in
  [
    ("deep-child-12", attach deep, chain "a" 12);
    ("deep-child-6", attach deep, chain "a" 6);
    ("bushy-descendant", attach bushy, descend "text");
  ]

let fused_micro_rows () =
  List.map
    (fun (name, (store, pages), path) ->
      let run fused =
        let config = Context.set_fused fused Context.default_config in
        Exec.run ~config ~ordered:false store path (Plan.xscan ())
      in
      let transitions = (run true).Exec.metrics.Exec.fused_transitions in
      let per_ext fused = time_ns (fun () -> run fused) /. float_of_int (max 1 transitions) in
      let fused_ns = per_ext true in
      let chain_ns = per_ext false in
      jobj
        [
          ("name", jstring name);
          ("pages", string_of_int pages);
          ("steps", string_of_int (Path.length path));
          ("transitions", string_of_int transitions);
          ("fused_ns_per_ext", jfloat fused_ns);
          ("chain_ns_per_ext", jfloat chain_ns);
          ("speedup", jfloat (chain_ns /. Float.max 1e-9 fused_ns));
        ])
    (fused_micro_fixtures ())

let swizzle_micro_rows () =
  List.concat_map
    (fun (label, store, pages) ->
      List.map
        (fun (aname, axis) ->
          let timed on =
            Store.set_swizzling store on;
            time_ns (fun () -> cursor_walk store ~reps:8 axis)
          in
          let on = timed true in
          let off = timed false in
          jobj
            [
              ("name", jstring (Printf.sprintf "%s-step-%s" aname label));
              ("pages", string_of_int pages);
              ("swizzled_ns", jfloat on);
              ("unswizzled_ns", jfloat off);
              ("speedup", jfloat (off /. Float.max 1.0 on));
            ])
        swizzle_axes)
    (swizzle_fixtures ())

(* --- skewed repeat-query mix (--workload --skew) ------------------------------- *)

(* The repeat-traffic benchmark: each path of q6'/q7/q15 is one statement
   variant, and closed-loop clients draw from the variants with a
   zipfian rank distribution — the hot statement dominates, the tail
   reappears occasionally. This is the workload the result-cache front
   door exists for: the same run is measured with the cache off (every
   job plans and executes from scratch — the historical regime) and on
   (repeats are served from the cache or deduped into in-flight
   identical scans). *)
let skew_variants () =
  List.concat_map
    (fun (q : Queries.t) ->
      List.mapi
        (fun i path -> (Printf.sprintf "%s.%d" q.Queries.name i, path))
        q.Queries.paths)
    [ Queries.q6'; Queries.q7; Queries.q15 ]

let skew_exponent = 1.1

(* Deterministic zipfian job queues: one list per client, sampled with a
   fixed-seed LCG so every run (and CI) draws the same mix. *)
let skew_mix ~clients ~per_client =
  let variants = Array.of_list (skew_variants ()) in
  let n = Array.length variants in
  let weights = Array.init n (fun r -> 1.0 /. (float_of_int (r + 1) ** skew_exponent)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  (* The 48-bit drand48 LCG, seeded fixed. *)
  let state = ref 0x1234ABCD330E in
  let next () =
    state := ((!state * 25214903917) + 11) land 0xFFFFFFFFFFFF;
    float_of_int (!state lsr 17) /. float_of_int 0x80000000
  in
  Array.init clients (fun c ->
      List.init per_client (fun j ->
          let u = next () *. total in
          let rec pick r acc =
            let acc = acc +. weights.(r) in
            if u <= acc || r = n - 1 then r else pick (r + 1) acc
          in
          let rank = pick 0 0.0 in
          let label, path = variants.(rank) in
          {
            Workload.label = Printf.sprintf "%s#c%d.%d" label c j;
            path;
            plan = Plan.xschedule ~speculative:false ();
            timeout = None;
            ops = [];
          }))

type skew_summary = {
  sk_clients : int;
  sk_per_client : int;
  sk_jobs : int;
  sk_distinct : int;
  sk_served_on : float;
  sk_served_off : float;
  sk_speedup : float;
  sk_hits : int;
  sk_shared : int;
  sk_installs : int;
  sk_reads_on : int;
  sk_reads_off : int;
  sk_time_on : float;
  sk_time_off : float;
}

let skew_measure cfg ~clients ~per_client =
  let doc =
    Xmark.generate
      ~config:{ Xmark.default_config with Xmark.scale = 1.0; fidelity = cfg.fidelity }
      ()
  in
  let store, _import = make_store cfg doc in
  let queues = skew_mix ~clients ~per_client in
  let jobs = clients * per_client in
  let distinct =
    Array.to_list queues
    |> List.concat_map (List.map (fun (s : Workload.spec) -> Path.to_string s.Workload.path))
    |> List.sort_uniq compare |> List.length
  in
  let run cache =
    Result_cache.clear ();
    let config =
      { Context.default_config with Context.validate = true; Context.result_cache = cache }
    in
    let r = Workload.run_clients ~config ~cold:true store queues in
    if r.Workload.violations <> [] then begin
      Printf.eprintf "bench --skew (cache %s): invariant violations:\n"
        (if cache then "on" else "off");
      List.iter (fun v -> Printf.eprintf "  %s\n" v) r.Workload.violations;
      exit 1
    end;
    if List.length r.Workload.jobs <> jobs then begin
      Printf.eprintf "bench --skew (cache %s): %d of %d jobs completed\n"
        (if cache then "on" else "off")
        (List.length r.Workload.jobs) jobs;
      exit 1
    end;
    r
  in
  let off = run false in
  if off.Workload.cache_hits + off.Workload.shared_jobs + off.Workload.cache_misses <> 0 then begin
    Printf.eprintf "bench --skew: cache-off run touched the front door\n";
    exit 1
  end;
  let on = run true in
  Result_cache.clear ();
  let served (r : Workload.result) =
    if r.Workload.total_time > 0.0 then float_of_int jobs /. r.Workload.total_time else 0.0
  in
  let served_on = served on and served_off = served off in
  {
    sk_clients = clients;
    sk_per_client = per_client;
    sk_jobs = jobs;
    sk_distinct = distinct;
    sk_served_on = served_on;
    sk_served_off = served_off;
    sk_speedup = (if served_off > 0.0 then served_on /. served_off else 0.0);
    sk_hits = on.Workload.cache_hits;
    sk_shared = on.Workload.shared_jobs;
    sk_installs = on.Workload.cache_misses;
    sk_reads_on = on.Workload.page_reads;
    sk_reads_off = off.Workload.page_reads;
    sk_time_on = on.Workload.total_time;
    sk_time_off = off.Workload.total_time;
  }

(* The front door must pay for itself by an order of magnitude on repeat
   traffic — the within-run ratio is machine-independent (both runs use
   the same simulated disk and the same host), so it is gated hard. *)
let skew_gate_factor = 10.0

let skew_check s =
  if s.sk_speedup < skew_gate_factor then begin
    Printf.eprintf
      "bench --skew: cache-on served %.1f queries/s vs %.1f off — %.1fx, below the %.0fx gate\n"
      s.sk_served_on s.sk_served_off s.sk_speedup skew_gate_factor;
    exit 1
  end

let skew_fields s =
  [
    ("clients", string_of_int s.sk_clients);
    ("jobs_per_client", string_of_int s.sk_per_client);
    ("jobs", string_of_int s.sk_jobs);
    ("distinct_paths", string_of_int s.sk_distinct);
    ("exponent", jfloat skew_exponent);
    ("served_per_sec_cache_on", jfloat s.sk_served_on);
    ("served_per_sec_cache_off", jfloat s.sk_served_off);
    ("speedup", jfloat s.sk_speedup);
    ("cache_hits", string_of_int s.sk_hits);
    ("shared_jobs", string_of_int s.sk_shared);
    ("cache_installs", string_of_int s.sk_installs);
    ("page_reads_cache_on", string_of_int s.sk_reads_on);
    ("page_reads_cache_off", string_of_int s.sk_reads_off);
    ("total_time_cache_on", jfloat s.sk_time_on);
    ("total_time_cache_off", jfloat s.sk_time_off);
  ]

(* Enough repeats that the fixed cost of first-executing each distinct
   statement — and its cold I/O, which both regimes pay — stops
   dominating the ratio. The tiny smoke store needs more repeats than
   the quick/full stores, whose per-execution work is bigger relative
   to the front door's per-hit overhead. *)
let skew_per_client ~smoke = if smoke then 128 else 32

let skew_mode ~profile ~smoke cfg ~clients out_file =
  section_header
    (Printf.sprintf "skewed repeat-query mix — %d clients, zipf(%.1f) over the q6'/q7/q15 variants"
       clients skew_exponent);
  let s = skew_measure cfg ~clients ~per_client:(skew_per_client ~smoke) in
  Printf.printf "%d jobs over %d distinct statements\n" s.sk_jobs s.sk_distinct;
  Printf.printf "cache off: %8.1f served/s  (%d page reads, %.4fs)\n" s.sk_served_off s.sk_reads_off
    s.sk_time_off;
  Printf.printf "cache on:  %8.1f served/s  (%d page reads, %.4fs)\n" s.sk_served_on s.sk_reads_on
    s.sk_time_on;
  Printf.printf "speedup %.1fx — %d hits, %d shared scans, %d installs\n" s.sk_speedup s.sk_hits
    s.sk_shared s.sk_installs;
  skew_check s;
  let out =
    jobj
      [
        ("schema", jstring Bench_schema.version);
        ("mode", jstring "workload-skew");
        ("profile", jstring profile);
        ( "config",
          jobj
            [
              ("fidelity", jfloat cfg.fidelity);
              ("page_size", string_of_int cfg.page_size);
              ("buffer", string_of_int cfg.buffer);
              ("scale", jfloat 1.0);
            ] );
        ("skew", jobj (skew_fields s));
      ]
  in
  check_json_shape out;
  let oc = open_out out_file in
  output_string oc out;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote skew summary to %s\n" out_file

let json_mode ~profile cfg out_file =
  let rows = ref [] in
  List.iter
    (fun scale ->
      let doc =
        Xmark.generate ~config:{ Xmark.default_config with Xmark.scale; fidelity = cfg.fidelity } ()
      in
      let store, import = make_store cfg doc in
      List.iter
        (fun (q : Queries.t) ->
          List.iter
            (fun (pname, plan) ->
              match run_query_full store plan q with
              | count, m ->
                rows :=
                  jobj
                    ([
                       ("query", jstring q.Queries.name);
                       ("plan", jstring pname);
                       ("scale", jfloat scale);
                       ("nodes", string_of_int import.Import.node_count);
                       ("pages", string_of_int import.Import.page_count);
                     ]
                    @ metrics_fields count m)
                  :: !rows
              | exception e ->
                Printf.eprintf "bench --json: plan %s on %s at sf %.2f raised %s\n" pname
                  q.Queries.name scale (Printexc.to_string e);
                exit 1)
            paper_plans)
        Queries.all)
    cfg.scale_factors;
  let micro_rows = swizzle_micro_rows () in
  let fused_rows = fused_micro_rows () in
  (* The skewed repeat-query summary rides along in every --json run, so
     the committed baseline carries the front door's served/s figures and
     --compare can gate them. *)
  let skew = skew_measure cfg ~clients:8 ~per_client:(skew_per_client ~smoke:(profile = "smoke")) in
  let out =
    jobj
      [
        ("schema", jstring Bench_schema.version);
        ("profile", jstring profile);
        ( "config",
          jobj
            [
              ("fidelity", jfloat cfg.fidelity);
              ("page_size", string_of_int cfg.page_size);
              ("buffer", string_of_int cfg.buffer);
              ("scale_factors", jarr (List.map jfloat cfg.scale_factors));
            ] );
        ("rows", jarr (List.rev !rows));
        ("micro", jarr micro_rows);
        ("micro_fused", jarr fused_rows);
        ("skew", jobj (skew_fields skew));
      ]
  in
  check_json_shape out;
  let oc = open_out out_file in
  output_string oc out;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %d benchmark rows and %d micro rows to %s\n" (List.length !rows)
    (List.length micro_rows) out_file;
  out

(* --- concurrent workload mode (--workload) ------------------------------------ *)

(* The paper's evaluation mix run as a session workload: every path of
   q6'/q7/q15 becomes one job, planned with XSchedule (speculative off,
   as in Sec. 6.2). *)
let workload_mix () =
  List.concat_map
    (fun (q : Queries.t) ->
      List.mapi
        (fun i path ->
          {
            Workload.label = Printf.sprintf "%s.%d" q.Queries.name i;
            path;
            plan = Plan.xschedule ~speculative:false ();
            timeout = None;
            ops = [];
          })
        q.Queries.paths)
    [ Queries.q6'; Queries.q7; Queries.q15 ]

let workload_mode ~profile cfg ~clients ?(writers = 0) out_file =
  section_header
    (Printf.sprintf "concurrent workload — %d closed-loop clients over the q6'/q7/q15 mix%s"
       clients
       (if writers > 0 then Printf.sprintf ", %d writer clients" writers else ""));
  let doc =
    Xmark.generate
      ~config:{ Xmark.default_config with Xmark.scale = 1.0; fidelity = cfg.fidelity }
      ()
  in
  let store, import = make_store cfg doc in
  let config = { Context.default_config with Context.validate = true } in
  (* With writers, the front door rides along so the run exercises
     cluster-granular invalidation (a commit stales only the cache
     entries whose footprint it wrote). *)
  let config_run =
    if writers > 0 then { config with Context.result_cache = true } else config
  in
  let mix = workload_mix () in
  (* Serial baseline: each job of the mix run alone, started cold. The
     concurrent run must beat [clients] independent serial passes, or the
     session layer is not sharing any I/O across queries. *)
  let serial_reads =
    List.fold_left
      (fun acc (s : Workload.spec) ->
        let r = Exec.cold_run ~config ~ordered:false store s.Workload.path s.Workload.plan in
        acc + r.Exec.metrics.Exec.page_reads)
      0 mix
  in
  (* Each client works through the whole mix, rotated by its index so the
     clients are out of phase and every query sees contention. *)
  let rotate k xs =
    let k = k mod List.length xs in
    let rec go i acc = function
      | rest when i = 0 -> rest @ List.rev acc
      | x :: rest -> go (i - 1) (x :: acc) rest
      | [] -> List.rev acc
    in
    go k [] xs
  in
  let queues = Array.init clients (fun i -> rotate i mix) in
  (* Writer clients: deterministic in-place insert/delete schedules over
     the imported NodeIDs (an LCG keeps the sample CI-stable). *)
  let writer_specs =
    if writers = 0 then []
    else begin
      let ids = import.Import.node_ids in
      let n = Array.length ids in
      let tags = Array.of_list (List.map fst (Store.tag_counts store)) in
      let state = ref 0x5DEECE66D in
      let rand bound =
        state := ((!state * 25214903917) + 11) land 0x3FFFFFFFFFFF;
        !state mod bound
      in
      List.init writers (fun w ->
          let ops =
            List.init
              (4 + rand 4)
              (fun _ ->
                if n > 1 && rand 2 = 0 then Workload.Delete_subtree ids.(1 + rand (n - 1))
                else
                  Workload.Insert_child
                    { parent = ids.(rand n); tag = tags.(rand (Array.length tags)) })
          in
          {
            Workload.label = Printf.sprintf "writer.%d" w;
            path = (List.hd mix).Workload.path;
            plan = Plan.simple;
            timeout = None;
            ops;
          })
    end
  in
  let is_writer (j : Workload.job) =
    List.exists (fun (s : Workload.spec) -> s.Workload.label = j.Workload.job_label) writer_specs
  in
  (* With writers, first measure the same reader mix without them (same
     config, pristine store — writers only run afterwards) to bound the
     latency cost the writer traffic may impose on readers. *)
  let baseline_reader_p99 =
    if writers = 0 then None
    else begin
      Result_cache.clear ();
      let r0 = Workload.run_clients ~config:config_run ~cold:true store queues in
      Result_cache.clear ();
      Some
        (Workload.percentile
           (List.map (fun (j : Workload.job) -> j.Workload.latency) r0.Workload.jobs)
           99.0)
    end
  in
  let queues =
    Array.append queues (Array.of_list (List.map (fun s -> [ s ]) writer_specs))
  in
  let r = Workload.run_clients ~config:config_run ~cold:true store queues in
  if r.Workload.violations <> [] then begin
    Printf.eprintf "bench --workload: invariant violations after the run:\n";
    List.iter (fun v -> Printf.eprintf "  %s\n" v) r.Workload.violations;
    exit 1
  end;
  let pinned = Buffer_manager.pinned_count (Store.buffer store) in
  if pinned <> 0 then begin
    Printf.eprintf "bench --workload: %d frame(s) left pinned\n" pinned;
    exit 1
  end;
  let total_jobs = List.length r.Workload.jobs in
  let expected_jobs = (clients * List.length mix) + writers in
  if total_jobs <> expected_jobs then begin
    Printf.eprintf "bench --workload: %d of %d jobs completed\n" total_jobs expected_jobs;
    exit 1
  end;
  (* Writer gates: the writers must actually commit, and reader tail
     latency must stay within an order of magnitude of the writer-free
     run — a livelocked latch or restart storm fails loudly here. *)
  let reader_p99 =
    Workload.percentile
      (List.filter_map
         (fun (j : Workload.job) -> if is_writer j then None else Some j.Workload.latency)
         r.Workload.jobs)
      99.0
  in
  if writers > 0 then begin
    if r.Workload.writer_commits = 0 then begin
      Printf.eprintf "bench --workload --writers: no writer op committed\n";
      exit 1
    end;
    match baseline_reader_p99 with
    | Some base when reader_p99 > (10.0 *. base) +. 1.0 ->
      Printf.eprintf
        "bench --workload --writers: reader p99 %.4fs blew past the writer-free baseline %.4fs\n"
        reader_p99 base;
      exit 1
    | _ -> ()
  end;
  let read_budget = clients * serial_reads in
  if serial_reads > 0 && r.Workload.page_reads >= read_budget then begin
    Printf.eprintf
      "bench --workload: no cross-query sharing: %d page reads, budget %d (%d clients x %d serial)\n"
      r.Workload.page_reads read_budget clients serial_reads;
    exit 1
  end;
  let latencies = List.map (fun (j : Workload.job) -> j.Workload.latency) r.Workload.jobs in
  let p50 = Workload.percentile latencies 50.0 in
  let p95 = Workload.percentile latencies 95.0 in
  let p99 = Workload.percentile latencies 99.0 in
  let throughput =
    if r.Workload.total_time > 0.0 then float_of_int total_jobs /. r.Workload.total_time else 0.0
  in
  let count_status st =
    List.length (List.filter (fun (j : Workload.job) -> j.Workload.status = st) r.Workload.jobs)
  in
  let yields = List.fold_left (fun a (j : Workload.job) -> a + j.Workload.yields) 0 r.Workload.jobs in
  let boosts = List.fold_left (fun a (j : Workload.job) -> a + j.Workload.boosts) 0 r.Workload.jobs in
  Printf.printf "%d jobs (%d completed, %d recovered, %d timed out), max %d concurrent, %d turns\n"
    total_jobs (count_status Workload.Completed) (count_status Workload.Recovered)
    (count_status Workload.Timed_out) r.Workload.max_concurrent r.Workload.turns;
  Printf.printf "throughput %.1f jobs/s   latency p50 %.4fs  p95 %.4fs  p99 %.4fs\n" throughput p50
    p95 p99;
  Printf.printf "page reads %d vs budget %d (%d clients x %d serial) — sharing factor %.2fx\n"
    r.Workload.page_reads read_budget clients serial_reads
    (float_of_int read_budget /. float_of_int (max 1 r.Workload.page_reads));
  Printf.printf "coalescing: %d batched reads over %d pages in %d runs; %d yields, %d boosts\n"
    r.Workload.batched_reads r.Workload.batch_pages r.Workload.coalesce_runs yields boosts;
  if writers > 0 then
    Printf.printf
      "writers: %d commits, %d latch waits, %d snapshot retries, %d cluster stales; reader p99 \
       %.4fs (writer-free %.4fs)\n"
      r.Workload.writer_commits r.Workload.latch_waits r.Workload.snapshot_retries
      r.Workload.cluster_stales reader_p99
      (Option.value baseline_reader_p99 ~default:0.0);
  let job_rows =
    List.map
      (fun (j : Workload.job) ->
        jobj
          [
            ("label", jstring j.Workload.job_label);
            ("client", string_of_int j.Workload.client);
            ("status", jstring (Workload.status_to_string j.Workload.status));
            ("count", string_of_int j.Workload.count);
            ("submitted", jfloat j.Workload.submitted);
            ("started", jfloat j.Workload.started);
            ("finished", jfloat j.Workload.finished);
            ("latency", jfloat j.Workload.latency);
            ("pin_wait", jfloat j.Workload.pin_wait);
            ("served_ticks", string_of_int j.Workload.served_ticks);
            ("starved_ticks", string_of_int j.Workload.starved_ticks);
            ("yields", string_of_int j.Workload.yields);
            ("boosts", string_of_int j.Workload.boosts);
            ("writer_commits", string_of_int j.Workload.writer_commits);
            ("latch_waits", string_of_int j.Workload.latch_waits);
            ("snapshot_retries", string_of_int j.Workload.snapshot_retries);
            ("finish_commit", string_of_int j.Workload.finish_commit);
            ("fell_back", if j.Workload.fell_back then "true" else "false");
          ])
      r.Workload.jobs
  in
  let out =
    jobj
      [
        ("schema", jstring Bench_schema.version);
        ("mode", jstring "workload");
        ("profile", jstring profile);
        ( "config",
          jobj
            [
              ("fidelity", jfloat cfg.fidelity);
              ("page_size", string_of_int cfg.page_size);
              ("buffer", string_of_int cfg.buffer);
              ("scale", jfloat 1.0);
              ("clients", string_of_int clients);
              ("nodes", string_of_int import.Import.node_count);
              ("pages", string_of_int import.Import.page_count);
            ] );
        ( "workload",
          jobj
            [
              ("clients", string_of_int clients);
              ("jobs", string_of_int total_jobs);
              ("completed", string_of_int (count_status Workload.Completed));
              ("recovered", string_of_int (count_status Workload.Recovered));
              ("timed_out", string_of_int (count_status Workload.Timed_out));
              ("throughput", jfloat throughput);
              ("latency_p50", jfloat p50);
              ("latency_p95", jfloat p95);
              ("latency_p99", jfloat p99);
              ("page_reads", string_of_int r.Workload.page_reads);
              ("serial_page_reads", string_of_int serial_reads);
              ("read_budget", string_of_int read_budget);
              ("io_time", jfloat r.Workload.io_time);
              ("cpu_time", jfloat r.Workload.cpu_time);
              ("total_time", jfloat r.Workload.total_time);
              ("seek_distance", string_of_int r.Workload.seek_distance);
              ("batched_reads", string_of_int r.Workload.batched_reads);
              ("batch_pages", string_of_int r.Workload.batch_pages);
              ("coalesce_runs", string_of_int r.Workload.coalesce_runs);
              ("max_concurrent", string_of_int r.Workload.max_concurrent);
              ("turns", string_of_int r.Workload.turns);
              ("yields", string_of_int yields);
              ("boosts", string_of_int boosts);
              ("writers", string_of_int writers);
              ("writer_commits", string_of_int r.Workload.writer_commits);
              ("latch_waits", string_of_int r.Workload.latch_waits);
              ("snapshot_retries", string_of_int r.Workload.snapshot_retries);
              ("cluster_stales", string_of_int r.Workload.cluster_stales);
              ("reader_p99", jfloat reader_p99);
            ] );
        ("jobs", jarr job_rows);
      ]
  in
  check_json_shape out;
  let oc = open_out out_file in
  output_string oc out;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %d workload job rows to %s\n" total_jobs out_file

(* --- sharded tenancy mode (--workload --shards) -------------------------------- *)

(* Multi-document tenancy through the Shard engine: M XMark tenant
   documents placed on K shards by the stable hash, closed-loop clients
   each pinned to a home tenant, the q6'/q7/q15 mix plus one
   deliberately antagonistic XScan sweep per client rotation — the
   co-located sequential scan the 2Q policy must absorb. Three hard
   gates: every submitted job must come back, no tenant's p99 may
   collapse relative to the median tenant (the cross-tenant fairness
   gate made observable), and the sharded wall-clock (the busiest
   shard's simulated disk time) must not exceed the same workload forced
   onto a single shard — sharding that loses to colocation is a routing
   bug, not a topology choice. *)
let shard_mode ~profile cfg ~clients ~shards ~tenants out_file =
  section_header
    (Printf.sprintf "sharded tenancy — %d clients, %d tenants on %d shards (q6'/q7/q15 + scan mix)"
       clients tenants shards);
  (* Many small documents model tenancy better than one big one: the
     interesting costs are routing, per-shard contention and fairness,
     not per-document depth. *)
  let tenant_fidelity = Float.max 0.002 (cfg.fidelity *. 0.1) in
  let tenant_name i = Printf.sprintf "tenant-%02d" i in
  let tenant_docs =
    List.init tenants (fun i ->
        ( tenant_name i,
          Xmark.generate
            ~config:
              { Xmark.scale = 1.0; fidelity = tenant_fidelity; seed = Xmark.default_config.Xmark.seed + i }
            () ))
  in
  let config =
    { Context.default_config with Context.validate = true; scan_resistant = true }
  in
  let mix =
    workload_mix ()
    @ [
        (* The antagonist: a full sequential sweep of the tenant's pages.
           With 2Q on, its one-shot pages stay probationary and recycle
           against themselves instead of flushing the mix's hot set. *)
        (match Queries.q7.Queries.paths with
        | p :: _ ->
          { Workload.label = "scan"; path = p; plan = Plan.xscan (); timeout = None; ops = [] }
        | [] -> assert false);
      ]
  in
  let rotate k xs =
    let k = k mod List.length xs in
    let rec go i acc = function
      | rest when i = 0 -> rest @ List.rev acc
      | x :: rest -> go (i - 1) (x :: acc) rest
      | [] -> List.rev acc
    in
    go k [] xs
  in
  let rec take n = function x :: rest when n > 0 -> x :: take (n - 1) rest | _ -> [] in
  let per_client = if profile = "smoke" then 4 else 6 in
  let queues =
    Array.init clients (fun i ->
        let tenant = tenant_name (i mod tenants) in
        List.map (fun spec -> { Shard.tenant; spec }) (take per_client (rotate i mix)))
  in
  let expected_jobs = Array.fold_left (fun a q -> a + List.length q) 0 queues in
  let run_topology k =
    let t =
      Shard.create ~capacity:cfg.buffer ~page_size:cfg.page_size ~shards:k tenant_docs
    in
    (t, Shard.run_clients ~config ~cold:true t queues)
  in
  let _t, r = run_topology shards in
  let wall_of (res : Shard.result) =
    List.fold_left (fun a (s : Shard.shard_stat) -> Float.max a s.Shard.io_time) 0.0
      res.Shard.shard_stats
  in
  let wall = wall_of r in
  (* The colocation reference: same tenants, same clients, one stack. *)
  let _t1, r1 = run_topology 1 in
  let single_wall = wall_of r1 in
  if r.Shard.violations <> [] then begin
    Printf.eprintf "bench --shards: invariant violations after the run:\n";
    List.iter (fun v -> Printf.eprintf "  %s\n" v) r.Shard.violations;
    exit 1
  end;
  let total_jobs = List.length r.Shard.jobs in
  if total_jobs <> expected_jobs then begin
    Printf.eprintf "bench --shards: %d of %d jobs reported\n" total_jobs expected_jobs;
    exit 1
  end;
  let active_tenants =
    List.filter (fun (ts : Shard.tenant_stat) -> ts.Shard.jobs > 0) r.Shard.tenant_stats
  in
  let p99s = List.map (fun (ts : Shard.tenant_stat) -> ts.Shard.p99) active_tenants in
  let tenant_p99 = List.fold_left Float.max 0.0 p99s in
  let tenant_p99_median = Workload.percentile p99s 50.0 in
  (* The per-tenant tail gate: a collapsing tenant shows up as a p99 far
     off the median. The absolute floor keeps tiny smoke runs (median
     near zero) from tripping on scheduler quantisation. *)
  let p99_bound = (10.0 *. tenant_p99_median) +. 1.0 in
  if tenant_p99 > p99_bound then begin
    Printf.eprintf
      "bench --shards: tenant p99 %.4fs blew past the fairness bound %.4fs (median %.4fs)\n"
      tenant_p99 p99_bound tenant_p99_median;
    exit 1
  end;
  if wall > (single_wall *. 1.05) +. 1e-6 then begin
    Printf.eprintf
      "bench --shards: sharded wall-clock %.4fs exceeds the single-shard reference %.4fs\n" wall
      single_wall;
    exit 1
  end;
  let shard_reads = r.Shard.page_reads in
  let scan_resist_hits =
    List.fold_left (fun a (s : Shard.shard_stat) -> a + s.Shard.scan_resist_hits) 0
      r.Shard.shard_stats
  in
  let throughput = if wall > 0.0 then float_of_int total_jobs /. wall else 0.0 in
  let count_status st =
    List.length
      (List.filter (fun ((_, j) : string * Workload.job) -> j.Workload.status = st) r.Shard.jobs)
  in
  Printf.printf "%d jobs (%d completed, %d recovered, %d timed out), max %d concurrent, %d turns\n"
    total_jobs (count_status Workload.Completed) (count_status Workload.Recovered)
    (count_status Workload.Timed_out) r.Shard.max_concurrent r.Shard.turns;
  Printf.printf
    "wall %.4fs (single-shard %.4fs)   throughput %.1f jobs/s   tenant p99 max %.4fs / median %.4fs\n"
    wall single_wall throughput tenant_p99 tenant_p99_median;
  Printf.printf "%d page reads over %d shards; %d rebalance moves, %d 2q protected hits\n"
    shard_reads shards r.Shard.rebalance_moves scan_resist_hits;
  let shard_rows =
    List.map
      (fun (s : Shard.shard_stat) ->
        jobj
          [
            ("shard", string_of_int s.Shard.shard);
            ("tenants", string_of_int s.Shard.tenants);
            ("page_reads", string_of_int s.Shard.page_reads);
            ("io_time", jfloat s.Shard.io_time);
            ("turns", string_of_int s.Shard.turns);
            ("scan_resist_hits", string_of_int s.Shard.scan_resist_hits);
          ])
      r.Shard.shard_stats
  in
  let tenant_rows =
    List.map
      (fun (ts : Shard.tenant_stat) ->
        jobj
          [
            ("tenant", jstring ts.Shard.tenant);
            ("shard", string_of_int ts.Shard.shard);
            ("jobs", string_of_int ts.Shard.jobs);
            ("latency_p50", jfloat ts.Shard.p50);
            ("latency_p99", jfloat ts.Shard.p99);
            ("served_ticks", string_of_int ts.Shard.served_ticks);
            ("starved_ticks", string_of_int ts.Shard.starved_ticks);
            ("cache_hits", string_of_int ts.Shard.cache_hits);
          ])
      r.Shard.tenant_stats
  in
  let out =
    jobj
      [
        ("schema", jstring Bench_schema.version);
        ("mode", jstring "workload-shards");
        ("profile", jstring profile);
        ( "config",
          jobj
            [
              ("fidelity", jfloat tenant_fidelity);
              ("page_size", string_of_int cfg.page_size);
              ("buffer", string_of_int cfg.buffer);
              ("clients", string_of_int clients);
              ("shards", string_of_int shards);
              ("tenants", string_of_int tenants);
              ("per_client", string_of_int per_client);
            ] );
        ( "shards_summary",
          jobj
            [
              ("jobs", string_of_int total_jobs);
              ("completed", string_of_int (count_status Workload.Completed));
              ("recovered", string_of_int (count_status Workload.Recovered));
              ("timed_out", string_of_int (count_status Workload.Timed_out));
              ("shard_reads", string_of_int shard_reads);
              ("tenant_p99", jfloat tenant_p99);
              ("tenant_p99_median", jfloat tenant_p99_median);
              ("rebalance_moves", string_of_int r.Shard.rebalance_moves);
              ("scan_resist_hits", string_of_int scan_resist_hits);
              ("throughput", jfloat throughput);
              ("wall_simulated", jfloat wall);
              ("single_shard_wall", jfloat single_wall);
              ("turns", string_of_int r.Shard.turns);
              ("max_concurrent", string_of_int r.Shard.max_concurrent);
              ("cache_hits", string_of_int r.Shard.cache_hits);
              ("cpu_time", jfloat r.Shard.cpu_time);
              ("io_time", jfloat r.Shard.io_time);
            ] );
        ("shards", jarr shard_rows);
        ("tenants", jarr tenant_rows);
      ]
  in
  check_json_shape out;
  let oc = open_out out_file in
  output_string oc out;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %d shard rows and %d tenant rows to %s\n" (List.length shard_rows)
    (List.length tenant_rows) out_file

(* --- baseline comparison (--compare) ------------------------------------------ *)

(* A minimal JSON reader, enough for the --json files this harness writes
   itself (there is no JSON library in the tree). *)
type jv =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of jv list
  | Jobj of (string * jv) list

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Malformed (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos else fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        if !pos >= n then fail "unterminated escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if !pos + 4 >= n then fail "truncated unicode escape";
          (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
          | Some code when code < 128 -> Buffer.add_char b (Char.chr code)
          | Some _ -> Buffer.add_char b '?'
          | None -> fail "bad unicode escape");
          pos := !pos + 4
        | c -> fail (Printf.sprintf "bad escape '%c'" c));
        incr pos;
        go ()
      | c ->
        Buffer.add_char b c;
        incr pos;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let keyword w v =
    let l = String.length w in
    if !pos + l <= n && String.sub s !pos l = w then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected '%s'" w)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstr (parse_string ())
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Jobj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Jobj (members [])
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Jarr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            items (v :: acc)
          | Some ']' ->
            incr pos;
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Jarr (items [])
      end
    | Some 't' -> keyword "true" (Jbool true)
    | Some 'f' -> keyword "false" (Jbool false)
    | Some 'n' -> keyword "null" Jnull
    | Some _ ->
      let start = !pos in
      while
        !pos < n
        && match s.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
      do
        incr pos
      done;
      if !pos = start then fail "unexpected character";
      (match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Jnum f
      | None -> fail "bad number")
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let jget row key = match row with Jobj fields -> List.assoc_opt key fields | _ -> None
let jnum_exn what v = match v with Some (Jnum f) -> f | _ -> raise (Malformed (what ^ ": expected a number"))
let jstr_exn what v = match v with Some (Jstr s) -> s | _ -> raise (Malformed (what ^ ": expected a string"))

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  contents

let rows_of_json what j =
  match jget j "rows" with
  | Some (Jarr rows) -> rows
  | _ -> raise (Malformed (what ^ ": no rows array"))

(* Gate a fresh --json run against a committed baseline: every baseline
   plan x query x scale row must reappear with the same result [count]
   and a [total_time] no worse than [tolerance] (relative, with a small
   absolute floor absorbing wall-clock jitter in the cpu_time component —
   io_time is deterministic but total_time is not). Exits non-zero on any
   regression so CI can gate on it. *)
let compare_with_baseline ~tolerance current baseline_file =
  let baseline = parse_json (String.trim (read_file baseline_file)) in
  let base_rows = rows_of_json baseline_file baseline in
  let current_json = parse_json (String.trim current) in
  let current_rows = rows_of_json "current run" current_json in
  let key row =
    ( jstr_exn "row.query" (jget row "query"),
      jstr_exn "row.plan" (jget row "plan"),
      jnum_exn "row.scale" (jget row "scale") )
  in
  let floor_s = 0.02 in
  let failures = ref 0 in
  List.iter
    (fun brow ->
      let q, p, sc = key brow in
      let label = Printf.sprintf "%s/%s/sf%.2f" q p sc in
      match List.find_opt (fun crow -> key crow = (q, p, sc)) current_rows with
      | None ->
        incr failures;
        Printf.printf "compare: %-28s missing from the current run\n" label
      | Some crow ->
        let bc = int_of_float (jnum_exn "row.count" (jget brow "count")) in
        let cc = int_of_float (jnum_exn "row.count" (jget crow "count")) in
        if bc <> cc then begin
          incr failures;
          Printf.printf "compare: %-28s result count changed %d -> %d\n" label bc cc
        end
        else begin
          (* io_time is deterministic (simulated clock), so its floor
             only absorbs rounding in the serialised floats; total_time
             includes wall-clock cpu_time and needs the larger floor. *)
          let gate field floor_s =
            let bt = jnum_exn ("row." ^ field) (jget brow field) in
            let ct = jnum_exn ("row." ^ field) (jget crow field) in
            if ct > bt *. (1. +. tolerance) && ct -. bt > floor_s then begin
              incr failures;
              Printf.printf
                "compare: %-28s %s regressed %.4fs -> %.4fs (+%.0f%%, tolerance %.0f%%)\n"
                label field bt ct
                (100. *. (ct -. bt) /. bt)
                (100. *. tolerance)
            end
          in
          gate "total_time" floor_s;
          gate "io_time" 0.002;
          (* cpu_time is process CPU (Sys.time), but cache/SMT
             contention from co-running jobs still inflates it 50-100%
             (e.g. when the compare runs under a parallel dune build),
             so an absolute cross-run gate at the standard tolerance
             flaps. Gate it (since xnav-bench/5) as the plan's CPU
             relative to the Simple plan measured in the *same* run —
             both inflate together under load, so the ratio isolates
             plan-specific regressions such as losing the fused
             automaton — plus a loose absolute backstop (5x tolerance)
             that catches uniform slowdowns hitting every plan,
             Simple included. *)
          let cpu field = jnum_exn ("row." ^ field) in
          let simple_cpu rows =
            match List.find_opt (fun r -> key r = (q, "simple", sc)) rows with
            | Some r -> cpu "cpu_time" (jget r "cpu_time")
            | None -> 0.
          in
          let bt = cpu "cpu_time" (jget brow "cpu_time") in
          let ct = cpu "cpu_time" (jget crow "cpu_time") in
          let bs = simple_cpu base_rows and cs = simple_cpu current_rows in
          if p <> "simple" && bs > 0. && cs > 0. then begin
            let bratio = bt /. bs and cratio = ct /. cs in
            if cratio > bratio *. (1. +. tolerance) && ct -. (bratio *. cs) > 0.005 then begin
              incr failures;
              Printf.printf
                "compare: %-28s cpu_time/simple regressed %.3f -> %.3f (+%.0f%%, tolerance \
                 %.0f%%)\n"
                label bratio cratio
                (100. *. (cratio -. bratio) /. bratio)
                (100. *. tolerance)
            end
          end;
          if ct > bt *. (1. +. (5. *. tolerance)) && ct -. bt > 0.01 then begin
            incr failures;
            Printf.printf
              "compare: %-28s cpu_time regressed %.4fs -> %.4fs (+%.0f%%, backstop tolerance \
               %.0f%%)\n"
              label bt ct
              (100. *. (ct -. bt) /. bt)
              (100. *. 5. *. tolerance)
          end
        end)
    base_rows;
  (* Index gate (since xnav-bench/4): the structural index must actually
     pay off on the selective query — q15's page reads with the index
     plan must stay below 20% of the XSchedule plan's at every scale the
     current run covers. Computed from the current rows, not the
     baseline, so the gate always tests the run at hand. *)
  let row_for q p sc = List.find_opt (fun r -> key r = (q, p, sc)) current_rows in
  let index_scales =
    List.filter_map
      (fun r ->
        let q, p, sc = key r in
        if q = "q15" && p = "xindex" then Some sc else None)
      current_rows
    |> List.sort_uniq compare
  in
  List.iter
    (fun sc ->
      match (row_for "q15" "xindex" sc, row_for "q15" "xschedule" sc) with
      | Some irow, Some srow ->
        let ip = jnum_exn "row.page_reads" (jget irow "page_reads") in
        let sp = jnum_exn "row.page_reads" (jget srow "page_reads") in
        if ip >= 0.2 *. sp then begin
          incr failures;
          Printf.printf
            "compare: q15/xindex/sf%.2f           page reads %.0f not < 20%% of xschedule's %.0f\n"
            sc ip sp
        end
      | _ -> ())
    index_scales;
  (* Skew gate (since xnav-bench/6): the result-cache front door must
     serve the skewed repeat-query mix at least [skew_gate_factor] times
     faster than cache-off. The within-run ratio is gated hard (both
     runs share the simulated disk and the host, so it is stable); the
     cross-run comparison against the baseline's ratio only backstops at
     a loose 5x tolerance, because served/s includes wall-clock CPU. *)
  (match jget current_json "skew" with
  | None ->
    incr failures;
    Printf.printf "compare: current run has no skew section (schema %s)\n" Bench_schema.version
  | Some skew ->
    let speedup = jnum_exn "skew.speedup" (jget skew "speedup") in
    if speedup < skew_gate_factor then begin
      incr failures;
      Printf.printf "compare: skew speedup %.1fx below the %.0fx front-door gate\n" speedup
        skew_gate_factor
    end;
    (match jget baseline "skew" with
    | None -> ()
    | Some bskew ->
      let bspeedup = jnum_exn "skew.speedup" (jget bskew "speedup") in
      if speedup < bspeedup /. (1. +. (5. *. tolerance)) then begin
        incr failures;
        Printf.printf
          "compare: skew speedup regressed %.1fx -> %.1fx (backstop tolerance %.0f%%)\n" bspeedup
          speedup
          (100. *. 5. *. tolerance)
      end));
  if !failures = 0 then
    Printf.printf "compare: no regressions vs %s (%d rows, tolerance %.0f%%)\n" baseline_file
      (List.length base_rows) (100. *. tolerance)
  else begin
    Printf.printf "compare: %d regression(s) vs %s\n" !failures baseline_file;
    exit 1
  end

(* --- Bechamel microbenches ------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  section_header "Bechamel microbenches (one per table/figure, plus operator kernels)";
  (* Fixture shared by the query benches: a small XMark store. *)
  let cfg = { quick_config with fidelity = 0.005 } in
  let store, _ = xmark_store cfg ~scale:1.0 in
  let query_test name plan (q : Queries.t) =
    Test.make ~name (Staged.stage (fun () -> ignore (run_query store plan q)))
  in
  let fig_tests =
    List.concat_map
      (fun (fig, q) ->
        List.map
          (fun (pname, plan) -> query_test (Printf.sprintf "%s-%s-%s" fig q.Queries.name pname) plan q)
          paper_plans)
      [ ("fig9", Queries.q6'); ("fig10", Queries.q7); ("fig11", Queries.q15) ]
  in
  let ordpath_a = Xnav_xml.Ordpath.child (Xnav_xml.Ordpath.child Xnav_xml.Ordpath.root 3) 5 in
  let ordpath_b = Xnav_xml.Ordpath.next_sibling ordpath_a in
  let record =
    Xnav_store.Node_record.Core
      {
        tag = Xnav_xml.Tag.of_string "bench";
        ordpath = ordpath_a;
        parent = Some 1;
        first_child = Some 2;
        last_child = Some 9;
        next_sibling = None;
        prev_sibling = Some 0;
      }
  in
  let encoded = Xnav_store.Node_record.encode record in
  let kernel_tests =
    [
      Test.make ~name:"kernel-ordpath-compare"
        (Staged.stage (fun () -> ignore (Xnav_xml.Ordpath.compare ordpath_a ordpath_b)));
      Test.make ~name:"kernel-ordpath-between"
        (Staged.stage (fun () -> ignore (Xnav_xml.Ordpath.between ordpath_a ordpath_b)));
      Test.make ~name:"kernel-record-decode"
        (Staged.stage (fun () -> ignore (Xnav_store.Node_record.decode encoded)));
      Test.make ~name:"kernel-record-encode"
        (Staged.stage (fun () -> ignore (Xnav_store.Node_record.encode record)));
    ]
  in
  (* Swizzled vs unswizzled intra-cluster step throughput (child and
     descendant cursors over one pinned view, 8 re-walks per run). *)
  let swizzle_tests =
    List.concat_map
      (fun (label, store, _pages) ->
        List.concat_map
          (fun (aname, axis) ->
            List.map
              (fun (mode, on) ->
                Test.make
                  ~name:(Printf.sprintf "swizzle-%s-%s-%s" mode aname label)
                  (Staged.stage (fun () ->
                       Store.set_swizzling store on;
                       ignore (cursor_walk store ~reps:8 axis))))
              [ ("on", true); ("off", false) ])
          swizzle_axes)
      (swizzle_fixtures ())
  in
  let tests =
    Test.make_grouped ~name:"xnav" ~fmt:"%s/%s" (fig_tests @ kernel_tests @ swizzle_tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let benchmark_cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all benchmark_cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "%-36s %16s\n" "benchmark" "ns/run";
  Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (name, ols_result) ->
         match Analyze.OLS.estimates ols_result with
         | Some [ est ] -> Printf.printf "%-36s %16.1f\n" name est
         | Some _ | None -> Printf.printf "%-36s %16s\n" name "n/a")

(* --- main ------------------------------------------------------------------------- *)

let sections cfg =
  let sweep_data = lazy (sweep cfg) in
  [
    ("example1", fun () -> example1 ());
    ("table1", fun () -> table1 ());
    ("table2", fun () -> table2 cfg);
    ("trace", fun () -> trace_section ());
    ("fig9", fun () -> figure (Lazy.force sweep_data) 9 Queries.q6');
    ("fig10", fun () -> figure (Lazy.force sweep_data) 10 Queries.q7);
    ("fig11", fun () -> figure (Lazy.force sweep_data) 11 Queries.q15);
    ("table3", fun () -> table3 (Lazy.force sweep_data));
    ("abl-k", fun () -> ablation_k cfg);
    ("abl-sched", fun () -> ablation_sched cfg);
    ("abl-batch", fun () -> ablation_batching cfg);
    ("abl-clust", fun () -> ablation_clustering cfg);
    ("abl-buf", fun () -> ablation_buffer cfg);
    ("abl-fb", fun () -> ablation_fallback cfg);
    ("abl-multi", fun () -> ablation_multi cfg);
    ("abl-conc", fun () -> ablation_concurrency cfg);
    ("abl-rewrite", fun () -> ablation_rewrite cfg);
    ("abl-decay", fun () -> ablation_decay cfg);
    ("abl-repl", fun () -> ablation_replacement cfg);
    ("abl-estimate", fun () -> ablation_estimate cfg);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let smoke = List.mem "--smoke" args in
  let rec find_value flag = function
    | f :: v :: _ when f = flag -> Some v
    | _ :: rest -> find_value flag rest
    | [] -> None
  in
  let filter = find_value "--filter" args in
  let compare_file = find_value "--compare" args in
  let json =
    (* --compare needs a fresh run to compare; without an explicit --json
       target the rows land in a scratch file. *)
    match (find_value "--json" args, compare_file) with
    | None, Some _ -> Some "bench-current.json"
    | j, _ -> j
  in
  if List.mem "micro" args then micro ()
  else if List.mem "--micro" args then begin
    (* The fused-chain micro tier on its own: per-extension CPU cost of
       the fused automaton vs the XStep iterator chain. Exits non-zero
       on non-finite measurements (jfloat raises) — the CI smoke step. *)
    section_header "fused vs iterator chain (ns per extension)";
    try
      let rows = fused_micro_rows () in
      List.iter print_endline rows;
      check_json_shape (jarr rows)
    with Malformed msg ->
      Printf.eprintf "bench --micro: malformed output: %s\n" msg;
      exit 1
  end
  else begin
    let profile, cfg =
      if smoke then ("smoke", smoke_config)
      else if quick then ("quick", quick_config)
      else ("full", full_config)
    in
    if List.mem "--workload" args then begin
      let clients =
        match find_value "--clients" args with
        | None -> 8
        | Some v -> (
          match int_of_string_opt v with
          | Some n when n > 0 -> n
          | _ ->
            Printf.eprintf "bench --clients: not a positive integer: %s\n" v;
            exit 1)
      in
      let writers =
        match find_value "--writers" args with
        | None -> 0
        | Some v -> (
          match int_of_string_opt v with
          | Some n when n >= 0 -> n
          | _ ->
            Printf.eprintf "bench --writers: not a non-negative integer: %s\n" v;
            exit 1)
      in
      let pos_int flag default =
        match find_value flag args with
        | None -> default
        | Some v -> (
          match int_of_string_opt v with
          | Some n when n > 0 -> n
          | _ ->
            Printf.eprintf "bench %s: not a positive integer: %s\n" flag v;
            exit 1)
      in
      let out_file = Option.value (find_value "--json" args) ~default:"bench-workload.json" in
      try
        if List.mem "--shards" args then begin
          let shards = pos_int "--shards" 4 in
          let tenants = pos_int "--tenants" (2 * shards) in
          shard_mode ~profile cfg ~clients ~shards ~tenants out_file
        end
        else if List.mem "--skew" args then skew_mode ~profile ~smoke cfg ~clients out_file
        else workload_mode ~profile cfg ~clients ~writers out_file
      with Malformed msg ->
        Printf.eprintf "bench --workload: malformed output: %s\n" msg;
        exit 1
    end
    else
    match json with
    | Some out_file -> begin
      try
        let out = json_mode ~profile cfg out_file in
        match compare_file with
        | None -> ()
        | Some baseline ->
          let tolerance =
            match find_value "--tolerance" args with
            | Some t -> (
              match float_of_string_opt t with
              | Some f when f >= 0.0 -> f
              | _ ->
                Printf.eprintf "bench --tolerance: not a non-negative number: %s\n" t;
                exit 1)
            | None -> 0.25
          in
          compare_with_baseline ~tolerance out baseline
      with Malformed msg ->
        Printf.eprintf "bench --json: malformed output: %s\n" msg;
        exit 1
    end
    | None ->
      Printf.printf
        "xnav benchmark harness — fidelity %.3f, %d-byte pages, %d-page buffer\n\
         (simulated seconds from the deterministic disk model; see EXPERIMENTS.md)\n"
        cfg.fidelity cfg.page_size cfg.buffer;
      let sections = sections cfg in
      (match filter with
      | Some name -> begin
        match List.assoc_opt name sections with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown section %s; available: %s\n" name
            (String.concat ", " (List.map fst sections));
          exit 1
      end
      | None -> List.iter (fun (_, f) -> f ()) sections)
  end
