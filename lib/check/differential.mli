(** Differential correctness harness.

    Samples random (document, location path, physical configuration)
    triples, runs every physical plan — Simple (with and without
    intermediate duplicate elimination), XSchedule, XScan (plus the
    //-scan variant when applicable), and the Multi / Interleave
    drivers — and compares the result node-id multiset of each against
    the tree-walking reference evaluator {!Xnav_xpath.Eval_ref}. Each
    run also executes with {!Xnav_core.Context.config.validate} set, so
    post-run invariants (no pinned frames, no dangling I/O, balanced
    counters) are enforced on every sampled case.

    Sampling is driven by a self-contained splitmix64 generator: a given
    [seed] always reproduces the same cases, independent of the OCaml
    release. On a mismatch the harness shrinks the case toward a minimal
    failing triple and prints an [xnav check ...] reproducer command. *)

(** Storage-level layout and buffer configuration of a sampled case. *)
type physical = {
  strategy : Xnav_store.Import.strategy;
  page_size : int;
  payload : int;
  capacity : int;  (** Buffer frames; sampled down to 1. *)
  policy : Xnav_storage.Io_scheduler.policy;
  replacement : Xnav_storage.Buffer_manager.replacement;
}

(** One sampled differential test case. *)
type case = {
  doc_seed : int;  (** XMark generator seed. *)
  fidelity : float;  (** XMark fidelity (document size knob). *)
  physical : physical;
  k : int;  (** XSchedule agenda bound. *)
  speculative : bool;
  memory_budget : int;  (** Small values force the fallback path. *)
  path : Xnav_xpath.Path.t;
}

val default_physical : physical

type mismatch = { plan : string; detail : string }

val check_case : case -> mismatch list
(** Build the case's store, run every plan and compare against the
    reference evaluator. Returns one entry per disagreeing (or raising)
    plan; [[]] means the case passes. *)

val check_swizzle_case : case -> mismatch list
(** Differential check of the swizzling layer itself: build the case's
    store and run every plan twice — decode cache forced on, then forced
    off — asserting identical result node ids, identical
    [q_enqueued]/[q_served] scheduling counters, and zero cache hits in
    the unswizzled run. A non-empty result means the cache changed plan
    semantics. *)

val check_batching_case : case -> mismatch list
(** Differential check of the cost-sensitive I/O machinery: build the
    case's store and run every plan twice — coalescing, cost-sensitive
    serving and scan windows fully off (the historical single-page
    regime), then fully on — asserting identical result node ids under
    the full invariant suite, and that the knobs-off run left every
    batch/window counter at zero. *)

val check_workload_case : case -> mismatch list
(** Differential check of the concurrent workload engine: build the
    case's store, run every plan serially cold, then run them all {e at
    once} through {!Xnav_workload.Workload.run} — asserting each query's
    concurrent node set equals its serial one, that the engine reported
    one job per query with no invariant violations, and that the storage
    layer ends clean. Capacities sampled down to 1 exercise the
    serialising admission path. *)

val check_shards_case : case -> mismatch list
(** Differential check of the sharded tenancy engine: derive a small
    multi-tenant topology from the case (2–4 XMark tenants over 1–3
    shards, the case's physical configuration per shard), run every
    (tenant, plan) pair at once through
    {!Xnav_workload.Shard.run_clients} — per-shard admission, the
    two-level cost-credit scheduler with its cross-tenant fairness gate,
    scan-resistant (2Q) eviction and the result-cache front door each on
    in half the cases — and assert each job's node set equals a serial
    cold run of the same plan on the same tenant store, that placement
    matches {!Xnav_workload.Shard.stable_shard}, and that every shard's
    storage layer ends clean. *)

val check_fused_case : case -> mismatch list
(** Differential check of the fused chain automaton: build the case's
    store and run every fused-capable plan (XSchedule, XScan and its
    //-variant, XIndex at full and zero resolution) twice —
    {!Xnav_core.Context.config.fused} on, then off — asserting
    identical result node ids, the identical physical I/O trace
    (page-by-page, in order), identical scheduling and speculation
    counters, and that the knob-off run left both fused counters at
    zero. Trace equality pins the knob-off run — and therefore the
    automaton — to the historical XStep-chain I/O behaviour. *)

val check_cache_case : case -> mismatch list
(** Differential check of the result-cache front door: build the case's
    store and run every plan three times cold — cache off (the
    historical baseline), cache on against an empty cache (the miss run
    must reproduce every execution counter of the baseline exactly),
    and cache on again (the hit run must return the identical node set
    with zero I/O and zero operator work) — then run all the case's
    plans {e at once} through {!Xnav_workload.Workload.run} with the
    front door on, asserting each deduped/shared job still reports the
    serial cache-off answer and that identical concurrent statements
    were in fact shared. The process-wide cache is cleared before and
    after. *)

val check_index_case : case -> mismatch list
(** Differential check of the structural index: build the case's store
    and compare the reference evaluator, the XSchedule plan, the default
    index plan (covering whenever the path is a pure self/child chain)
    and index plans at forced partial resolutions (down to [resolve 0])
    — all under the full invariant suite. Partial resolutions exercise
    the border-continuation path: seeds enter the XStep tail mid-chain
    and residual crossings are served cluster by cluster. *)

val shrink : ?budget:int -> case -> case
(** Greedily simplify a failing case — drop path steps, lower fidelity,
    move the physical configuration and run parameters toward defaults —
    keeping each change only if the case still fails. [budget] bounds
    the number of candidate re-executions (default 120). *)

val reproducer : case -> string
(** The [xnav check ...] command line that replays exactly this case. *)

val pp_case : Format.formatter -> case -> unit

type failure = { case : case; shrunk : case; mismatches : mismatch list }

type report = { cases_run : int; plan_runs : int; failures : failure list }

val default_seed : int
(** Seed used by [dune runtest] and [xnav check] when none is given. *)

val run :
  ?seed:int ->
  ?cases:int ->
  ?paths_per_store:int ->
  ?log:(string -> unit) ->
  unit ->
  report
(** [run ()] samples and checks [cases] cases (default 200). Documents
    and stores are shared across [paths_per_store] consecutive cases
    (default 8) to keep generation cost bounded; plans always run cold.
    [log] receives progress lines and reproducers for any failures. *)

val run_swizzle :
  ?seed:int ->
  ?cases:int ->
  ?paths_per_store:int ->
  ?log:(string -> unit) ->
  unit ->
  report
(** Like {!run} but applying {!check_swizzle_case}'s swizzled/unswizzled
    comparison to every sampled case (two executions per plan). *)

val run_batching :
  ?seed:int ->
  ?cases:int ->
  ?paths_per_store:int ->
  ?log:(string -> unit) ->
  unit ->
  report
(** Like {!run} but applying {!check_batching_case}'s knobs-off/knobs-on
    comparison to every sampled case (two executions per plan). *)

val run_workload :
  ?seed:int ->
  ?cases:int ->
  ?paths_per_store:int ->
  ?log:(string -> unit) ->
  unit ->
  report
(** Like {!run} but applying {!check_workload_case}'s serial/concurrent
    comparison to every sampled case (two executions per plan: one
    serial, one through the workload engine). *)

val run_writers :
  ?seed:int ->
  ?cases:int ->
  ?paths_per_store:int ->
  ?log:(string -> unit) ->
  unit ->
  report
(** Like {!run} but mixing writer jobs into the workload: every plan of
    the case runs concurrently with one or two writer clients applying
    sampled in-place inserts and deletes through the engine's
    latch/snapshot protocol. Each reader's concurrent answer must equal
    a serial replay of the committed-op schedule up to the reader's
    finish point on an identically-imported twin store, the final
    documents must match, and the run must report zero invariant
    violations and leave the storage layer clean. Stores are built fresh
    per case (writes would leak across the batch's shared store). *)

val run_shards :
  ?seed:int ->
  ?cases:int ->
  ?paths_per_store:int ->
  ?log:(string -> unit) ->
  unit ->
  report
(** Like {!run} but applying {!check_shards_case}'s sharded/serial
    comparison to every sampled case (one sharded engine run plus one
    serial execution per (tenant, plan) pair). *)

val run_fused :
  ?seed:int ->
  ?cases:int ->
  ?paths_per_store:int ->
  ?log:(string -> unit) ->
  unit ->
  report
(** Like {!run} but applying {!check_fused_case}'s fused/unfused
    comparison to every sampled case (two executions per fused-capable
    plan). *)

val run_cache :
  ?seed:int ->
  ?cases:int ->
  ?paths_per_store:int ->
  ?log:(string -> unit) ->
  unit ->
  report
(** Like {!run} but applying {!check_cache_case}'s off/miss/hit and
    shared-workload comparison to every sampled case (four executions
    per plan plus one workload run). *)

val run_index :
  ?seed:int ->
  ?cases:int ->
  ?paths_per_store:int ->
  ?log:(string -> unit) ->
  unit ->
  report
(** Like {!run} but applying {!check_index_case}'s three-way comparison
    (reference evaluator / XSchedule / index plans at several
    resolutions) to every sampled case. *)
