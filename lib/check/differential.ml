module Tree = Xnav_xml.Tree
module Axis = Xnav_xml.Axis
module Tag = Xnav_xml.Tag
module Disk = Xnav_storage.Disk
module Buffer_manager = Xnav_storage.Buffer_manager
module Io_scheduler = Xnav_storage.Io_scheduler
module Import = Xnav_store.Import
module Store = Xnav_store.Store
module Node_id = Xnav_store.Node_id
module Path = Xnav_xpath.Path
module Eval_ref = Xnav_xpath.Eval_ref
module Plan = Xnav_core.Plan
module Exec = Xnav_core.Exec
module Multi = Xnav_core.Multi
module Interleave = Xnav_core.Interleave
module Workload = Xnav_workload.Workload
module Shard = Xnav_workload.Shard
module Update = Xnav_store.Update
module Context = Xnav_core.Context
module Result_cache = Xnav_core.Result_cache
module Xmark_gen = Xnav_xmark.Gen

(* --- deterministic sampling ---------------------------------------------- *)

(* Self-contained splitmix64: the sample must be reproducible across OCaml
   releases, which Stdlib.Random does not promise. *)
module Prng = struct
  type t = { mutable state : int64 }

  let create seed = { state = Int64.logxor (Int64.of_int seed) 0x5DEECE66DL }

  let next64 t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let int t bound =
    if bound <= 0 then invalid_arg "Prng.int";
    Int64.to_int (Int64.rem (Int64.shift_right_logical (next64 t) 1) (Int64.of_int bound))

  let pick t arr = arr.(int t (Array.length arr))
  let bool t = int t 2 = 0
end

(* --- the sampled space ---------------------------------------------------- *)

type physical = {
  strategy : Import.strategy;
  page_size : int;
  payload : int;
  capacity : int;
  policy : Io_scheduler.policy;
  replacement : Buffer_manager.replacement;
}

type case = {
  doc_seed : int;
  fidelity : float;
  physical : physical;
  k : int;
  speculative : bool;
  memory_budget : int;
  path : Path.t;
}

let default_physical =
  {
    strategy = Import.Dfs;
    page_size = 512;
    payload = 220;
    capacity = 16;
    policy = Io_scheduler.Elevator;
    replacement = Buffer_manager.Lru;
  }

let fidelities = [| 0.001; 0.002; 0.003 |]

let sample_physical prng =
  {
    strategy =
      (match Prng.int prng 4 with
      | 0 -> Import.Dfs
      | 1 -> Import.Bfs
      | _ -> Import.Scattered (1 + Prng.int prng 97));
    page_size = Prng.pick prng [| 512; 1024 |];
    payload = 160 + (20 * Prng.int prng 12);
    capacity = Prng.pick prng [| 1; 2; 2; 3; 4; 8; 32 |];
    policy = Prng.pick prng (Array.of_list Io_scheduler.all_policies);
    replacement = Prng.pick prng (Array.of_list Buffer_manager.all_replacements);
  }

let sample_path prng tags =
  let len = 1 + Prng.int prng 3 in
  List.init len (fun _ ->
      let axis =
        Prng.pick prng [| Axis.Child; Axis.Child; Axis.Descendant; Axis.Descendant_or_self; Axis.Self |]
      in
      let test =
        match Prng.int prng 5 with
        | 0 -> Path.Wildcard
        | 1 -> Path.Any_node
        | _ -> Path.Name (Prng.pick prng tags)
      in
      Path.step axis test)

let sample_case prng ~doc_seed ~fidelity ~physical ~tags =
  {
    doc_seed;
    fidelity;
    physical;
    k = Prng.pick prng [| 1; 2; 8; 100 |];
    speculative = Prng.bool prng;
    memory_budget = Prng.pick prng [| 0; 16; 1_000_000; 1_000_000 |];
    path = sample_path prng tags;
  }

(* --- building the physical document -------------------------------------- *)

let document ~doc_seed ~fidelity =
  Xmark_gen.generate ~config:{ Xmark_gen.scale = 1.0; fidelity; seed = doc_seed } ()

(* Documents are pure functions of (seed, fidelity); generation dominates
   the harness runtime, so memoise them. *)
let doc_cache : (int * float, Tree.t) Hashtbl.t = Hashtbl.create 16

let cached_document ~doc_seed ~fidelity =
  match Hashtbl.find_opt doc_cache (doc_seed, fidelity) with
  | Some doc -> doc
  | None ->
    let doc = document ~doc_seed ~fidelity in
    Hashtbl.replace doc_cache (doc_seed, fidelity) doc;
    doc

let build_store ~doc (p : physical) =
  let config = { Disk.default_config with Disk.page_size = p.page_size } in
  let disk = Disk.create ~config () in
  let import = Import.run ~strategy:p.strategy ~payload:p.payload disk doc in
  let buffer =
    Buffer_manager.create ~capacity:p.capacity ~policy:p.policy ~replacement:p.replacement disk
  in
  (Store.attach buffer import, import)

(* --- one case: every plan against the reference evaluator ----------------- *)

type mismatch = { plan : string; detail : string }

let context_config case =
  {
    Context.default_config with
    Context.k = case.k;
    speculative = case.speculative;
    memory_budget = case.memory_budget;
    validate = true;
  }

let expected_ids doc (import : Import.result) path =
  Eval_ref.eval doc path
  |> List.map (fun n -> import.Import.node_ids.(n.Tree.preorder))
  |> List.sort Node_id.compare

let ids_of infos = List.map (fun (i : Store.info) -> i.Store.id) infos |> List.sort Node_id.compare

let pp_ids ppf ids = Fmt.(Dump.list (fun ppf id -> Node_id.pp ppf id)) ppf ids

let plans_for case =
  [
    ("simple", Plan.simple);
    ("simple-nodedup", Plan.Simple { dedup_intermediate = false });
    ("xschedule", Plan.xschedule ~speculative:case.speculative ());
    ("xscan", Plan.xscan ());
  ]
  @
  if Path.starts_with_descendant_any case.path then [ ("xscan-dslash", Plan.xscan ~dslash:true ()) ]
  else []

(* Post-run storage sweep for the execution paths that do not go through
   [Exec.run]'s invariant hook (Multi, Interleave). *)
let storage_clean store =
  let buffer = Store.buffer store in
  let pinned = Buffer_manager.pinned_count buffer in
  if pinned <> 0 then Some (Printf.sprintf "%d frames left pinned" pinned)
  else begin
    let sched = Buffer_manager.scheduler buffer in
    let pending = Io_scheduler.pending_count sched in
    if pending <> 0 then Some (Printf.sprintf "%d I/O requests left pending" pending)
    else Io_scheduler.consistency_error sched
  end

let check_built ~doc ~store ~import case =
  let config = context_config case in
  let expected = expected_ids doc import case.path in
  let mismatches = ref [] in
  let record plan detail = mismatches := { plan; detail } :: !mismatches in
  let compare_ids plan got =
    if got <> expected then
      record plan
        (Format.asprintf "expected %d nodes %a, got %d nodes %a" (List.length expected) pp_ids
           expected (List.length got) pp_ids got)
  in
  let guarded plan f =
    match f () with
    | got ->
      compare_ids plan got;
      (match storage_clean store with
      | None -> ()
      | Some msg -> record plan msg)
    | exception e -> record plan (Printf.sprintf "raised %s" (Printexc.to_string e))
  in
  List.iter
    (fun (name, plan) ->
      guarded name (fun () -> (Exec.cold_run ~config store case.path plan).Exec.nodes |> ids_of))
    (plans_for case);
  guarded "multi" (fun () ->
      let r = Multi.run ~config ~cold:true store [ case.path ] in
      ids_of r.Multi.per_path.(0));
  guarded "interleave" (fun () ->
      let r =
        Interleave.run ~config ~cold:true store
          [ (case.path, Plan.xschedule ~speculative:case.speculative ()) ]
      in
      ids_of r.Interleave.queries.(0).Interleave.nodes);
  List.rev !mismatches

let check_case case =
  let doc = cached_document ~doc_seed:case.doc_seed ~fidelity:case.fidelity in
  let store, import = build_store ~doc case.physical in
  check_built ~doc ~store ~import case

(* --- swizzling tier ------------------------------------------------------- *)

(* Swizzling is a pure caching layer: with it forced off every view access
   re-decodes from the page, i.e. the pre-swizzling regime. Running each
   plan both ways must give identical results AND identical scheduling
   behaviour (the queue counters) — a divergence means the cache leaked
   into plan semantics. *)
let check_swizzle_built ~store case =
  let config = context_config case in
  let mismatches = ref [] in
  let record plan detail = mismatches := { plan; detail } :: !mismatches in
  let saved = Store.swizzling store in
  let run_plan plan on =
    Store.set_swizzling store on;
    Exec.cold_run ~config store case.path plan
  in
  List.iter
    (fun (name, plan) ->
      match
        let on = run_plan plan true in
        let off = run_plan plan false in
        (on, off)
      with
      | on, off ->
        let on_ids = ids_of on.Exec.nodes and off_ids = ids_of off.Exec.nodes in
        if on_ids <> off_ids then
          record name
            (Format.asprintf "swizzled: %d nodes %a, unswizzled: %d nodes %a"
               (List.length on_ids) pp_ids on_ids (List.length off_ids) pp_ids off_ids);
        let mon = on.Exec.metrics and moff = off.Exec.metrics in
        if
          mon.Exec.q_enqueued <> moff.Exec.q_enqueued
          || mon.Exec.q_served <> moff.Exec.q_served
        then
          record name
            (Printf.sprintf
               "queue counters diverge: swizzled enqueued/served %d/%d, unswizzled %d/%d"
               mon.Exec.q_enqueued mon.Exec.q_served moff.Exec.q_enqueued moff.Exec.q_served);
        if moff.Exec.swizzle_hits <> 0 then
          record name
            (Printf.sprintf "%d decode-cache hits recorded with swizzling off"
               moff.Exec.swizzle_hits)
      | exception e -> record name (Printf.sprintf "raised %s" (Printexc.to_string e)))
    (plans_for case);
  Store.set_swizzling store saved;
  List.rev !mismatches

let check_swizzle_case case =
  let doc = cached_document ~doc_seed:case.doc_seed ~fidelity:case.fidelity in
  let store, _import = build_store ~doc case.physical in
  check_swizzle_built ~store case

(* --- batching tier -------------------------------------------------------- *)

(* Coalesced reads, cost-sensitive queue serving and adaptive scan
   windows reorder and batch physical I/O, but must not change what a
   plan computes: with the knobs fully off (the historical single-page
   regime) and fully on (the defaults), every plan must produce the same
   result set — under the full invariant suite — and the off run must not
   touch any batch path. *)
let knobs_off config =
  {
    config with
    Context.coalesce_window = 0;
    serve_policy = Context.Serve_min_pid;
    scan_threshold = 0.0;
  }

let knobs_on config =
  {
    config with
    Context.coalesce_window = 16;
    serve_policy = Context.Serve_cost;
    scan_threshold = 0.5;
  }

let check_batching_built ~store case =
  let config = context_config case in
  let mismatches = ref [] in
  let record plan detail = mismatches := { plan; detail } :: !mismatches in
  List.iter
    (fun (name, plan) ->
      match
        let off = Exec.cold_run ~config:(knobs_off config) store case.path plan in
        let on = Exec.cold_run ~config:(knobs_on config) store case.path plan in
        (off, on)
      with
      | off, on ->
        let off_ids = ids_of off.Exec.nodes and on_ids = ids_of on.Exec.nodes in
        if off_ids <> on_ids then
          record name
            (Format.asprintf "knobs off: %d nodes %a, knobs on: %d nodes %a"
               (List.length off_ids) pp_ids off_ids (List.length on_ids) pp_ids on_ids);
        let m = off.Exec.metrics in
        if
          m.Exec.batched_reads <> 0 || m.Exec.batch_pages <> 0 || m.Exec.coalesce_runs <> 0
          || m.Exec.scan_windows <> 0
          || m.Exec.scan_window_pages <> 0
        then
          record name
            (Printf.sprintf
               "knobs-off run touched the batch path: batches %d (%d pages, %d coalesced), \
                windows %d (%d pages)"
               m.Exec.batched_reads m.Exec.batch_pages m.Exec.coalesce_runs m.Exec.scan_windows
               m.Exec.scan_window_pages)
      | exception e -> record name (Printf.sprintf "raised %s" (Printexc.to_string e)))
    (plans_for case);
  List.rev !mismatches

let check_batching_case case =
  let doc = cached_document ~doc_seed:case.doc_seed ~fidelity:case.fidelity in
  let store, _import = build_store ~doc case.physical in
  check_batching_built ~store case

(* --- workload tier -------------------------------------------------------- *)

(* Concurrency must be invisible in the answers: running every plan of
   the case at once through the workload engine — admission control,
   interleaved streams, cross-query coalescing, Buffer_full recovery and
   all — must give each query exactly the node set its serial cold run
   produces. The sampled capacities go down to 1, which exercises the
   degenerate serialising admission path. *)
let check_workload_built ~store case =
  let config = context_config case in
  let mismatches = ref [] in
  let record plan detail = mismatches := { plan; detail } :: !mismatches in
  let plans = plans_for case in
  let serial =
    List.map
      (fun (name, plan) ->
        (name, ids_of (Exec.cold_run ~config store case.path plan).Exec.nodes))
      plans
  in
  let specs =
    List.map
      (fun (name, plan) ->
        { Workload.label = name; path = case.path; plan; timeout = None; ops = [] })
      plans
  in
  (match Workload.run ~config ~cold:true store specs with
  | r ->
    List.iter
      (fun (job : Workload.job) ->
        let expected = List.assoc job.Workload.job_label serial in
        let got = ids_of job.Workload.nodes in
        if got <> expected then
          record job.Workload.job_label
            (Format.asprintf "serial: %d nodes %a, concurrent (%s): %d nodes %a"
               (List.length expected) pp_ids expected
               (Workload.status_to_string job.Workload.status)
               (List.length got) pp_ids got))
      r.Workload.jobs;
    if List.length r.Workload.jobs <> List.length plans then
      record "workload"
        (Printf.sprintf "%d queries submitted but %d jobs reported" (List.length plans)
           (List.length r.Workload.jobs));
    List.iter (fun msg -> record "workload" msg) r.Workload.violations;
    (match storage_clean store with
    | None -> ()
    | Some msg -> record "workload" msg)
  | exception e -> record "workload" (Printf.sprintf "raised %s" (Printexc.to_string e)));
  List.rev !mismatches

let check_workload_case case =
  let doc = cached_document ~doc_seed:case.doc_seed ~fidelity:case.fidelity in
  let store, _import = build_store ~doc case.physical in
  check_workload_built ~store case

(* --- writers tier --------------------------------------------------------- *)

(* Concurrent reads and in-place writes must equal a serial replay of the
   same commit schedule. The engine reports each reader's [finish_commit]
   (how many writer ops had committed when it finished) and the
   [commit_log] (the committed ops in serial order); on a twin store —
   the deterministic import gives it identical physical NodeIDs — we
   apply the log prefix up to each reader's finish point and evaluate its
   statement serially. The snapshot rule makes the reader's concurrent
   answer exactly that serial answer; after the full log, both stores
   must hold the identical document (id/tag/ordpath fingerprint). *)
let everything = [ Path.step Axis.Descendant_or_self Path.Any_node ]

let fingerprint ~config store =
  (Exec.run ~config ~ordered:true store everything Plan.simple).Exec.nodes
  |> List.map (fun (i : Store.info) -> (i.Store.id, i.Store.tag, i.Store.ordpath))

let fingerprint_equal a b =
  List.equal
    (fun (ida, ta, oa) (idb, tb, ob) ->
      Node_id.equal ida idb && Tag.equal ta tb && Xnav_xml.Ordpath.compare oa ob = 0)
    a b

let apply_op store = function
  | Workload.Insert_child { parent; tag } -> ignore (Update.insert_element store ~parent tag)
  | Workload.Delete_subtree victim -> ignore (Update.delete_subtree store victim)

let sample_ops prng (import : Import.result) tags =
  let ids = import.Import.node_ids in
  let n = Array.length ids in
  let count = 2 + Prng.int prng 3 in
  List.init count (fun _ ->
      if n <= 1 || Prng.bool prng then
        Workload.Insert_child { parent = ids.(Prng.int prng n); tag = Prng.pick prng tags }
      else Workload.Delete_subtree ids.(1 + Prng.int prng (n - 1)))

let check_writers_built ~doc ~import case =
  (* Writers mutate the store, so this tier never touches the batch's
     shared one: the concurrent run and the serial replay each get a
     fresh, identically-imported twin. *)
  let store, _ = build_store ~doc case.physical in
  let twin, _ = build_store ~doc case.physical in
  let config = context_config case in
  let mismatches = ref [] in
  let record plan detail = mismatches := { plan; detail } :: !mismatches in
  let tags = Array.of_list (List.map fst (Store.tag_counts store)) in
  (* Ops are a pure function of the case (not of global sampling state),
     so a shrunk case replays the same schedule. *)
  let prng =
    Prng.create (case.doc_seed lxor (31 * List.length case.path) lxor (997 * case.k))
  in
  let writers =
    List.init
      (1 + Prng.int prng 2)
      (fun i ->
        {
          Workload.label = Printf.sprintf "writer-%d" i;
          path = case.path;
          plan = Plan.simple;
          timeout = None;
          ops = sample_ops prng import tags;
        })
  in
  let readers =
    List.map
      (fun (name, plan) ->
        { Workload.label = name; path = case.path; plan; timeout = None; ops = [] })
      (plans_for case)
  in
  let clients = Array.of_list (List.map (fun s -> [ s ]) (readers @ writers)) in
  (match Workload.run_clients ~config ~cold:true store clients with
  | r ->
    List.iter (fun msg -> record "writers" msg) r.Workload.violations;
    (match storage_clean store with
    | None -> ()
    | Some msg -> record "writers" msg);
    (* Serial replay: walk the readers in finish order, applying the
       commit log up to each one's finish point before evaluating. *)
    let applied = ref 0 in
    let log = ref r.Workload.commit_log in
    let advance_to k =
      while !applied < k do
        (match !log with
        | op :: rest ->
          log := rest;
          apply_op twin op
        | [] -> failwith "commit log shorter than a finish_commit point");
        incr applied
      done
    in
    let reader_jobs =
      List.filter
        (fun (j : Workload.job) ->
          not
            (List.exists
               (fun (w : Workload.spec) -> w.Workload.label = j.Workload.job_label)
               writers))
        r.Workload.jobs
    in
    List.iter
      (fun (j : Workload.job) ->
        match advance_to j.Workload.finish_commit with
        | () ->
          let expected =
            ids_of (Exec.run ~config ~ordered:false twin case.path Plan.simple).Exec.nodes
          in
          let got = ids_of j.Workload.nodes in
          if got <> expected then
            record j.Workload.job_label
              (Format.asprintf
                 "serial replay at commit %d: %d nodes %a, concurrent (%s): %d nodes %a"
                 j.Workload.finish_commit (List.length expected) pp_ids expected
                 (Workload.status_to_string j.Workload.status)
                 (List.length got) pp_ids got)
        | exception e ->
          record j.Workload.job_label
            (Printf.sprintf "replay raised %s" (Printexc.to_string e)))
      (List.sort
         (fun (a : Workload.job) b -> compare a.Workload.finish_commit b.Workload.finish_commit)
         reader_jobs);
    (* Drain the rest of the log and compare the final documents. *)
    (match advance_to r.Workload.writer_commits with
    | () ->
      if not (fingerprint_equal (fingerprint ~config store) (fingerprint ~config twin)) then
        record "writers" "final documents diverge between the concurrent store and the replay"
    | exception e -> record "writers" (Printf.sprintf "final replay raised %s" (Printexc.to_string e)))
  | exception e -> record "writers" (Printf.sprintf "raised %s" (Printexc.to_string e)));
  List.rev !mismatches

let check_writers_case case =
  let doc = cached_document ~doc_seed:case.doc_seed ~fidelity:case.fidelity in
  let _, import = build_store ~doc case.physical in
  check_writers_built ~doc ~import case

(* --- shards tier ----------------------------------------------------------- *)

(* Sharded tenancy must be invisible in the answers: running every
   (tenant, plan) pair at once through the two-level Shard scheduler —
   stable placement, per-shard admission, the cross-tenant fairness
   gate, scan-resistant (2Q) eviction in half the cases and the
   result-cache front door in half — must give each job exactly the
   node set a serial cold run of the same plan on the same tenant store
   produces. Tenant documents and the shard count derive from the case
   seed, so every topology is reproducible from the reproducer line. *)
let check_shards_case case =
  let tenant_count = 2 + (case.doc_seed mod 3) in
  let shard_count = 1 + (case.doc_seed / 3 mod 3) in
  let tenants =
    List.init tenant_count (fun i ->
        ( Printf.sprintf "tenant-%d" i,
          cached_document ~doc_seed:(case.doc_seed + (7 * i)) ~fidelity:case.fidelity ))
  in
  let t =
    Shard.create ~capacity:case.physical.capacity ~policy:case.physical.policy
      ~replacement:case.physical.replacement ~strategy:case.physical.strategy
      ~page_size:case.physical.page_size ~payload:case.physical.payload ~shards:shard_count
      tenants
  in
  let config =
    {
      (context_config case) with
      Context.scan_resistant = case.doc_seed land 1 = 1;
      result_cache = case.doc_seed land 2 = 2;
    }
  in
  (* The serial replays must recompute, not echo entries the concurrent
     run installed. *)
  let serial_config = { config with Context.result_cache = false } in
  if config.Context.result_cache then Result_cache.clear ();
  let mismatches = ref [] in
  let record plan detail = mismatches := { plan; detail } :: !mismatches in
  let plans = plans_for case in
  let clients =
    Array.of_list
      (List.concat_map
         (fun (name, _) ->
           List.map
             (fun (pname, plan) ->
               [
                 {
                   Shard.tenant = name;
                   spec =
                     { Workload.label = pname; path = case.path; plan; timeout = None; ops = [] };
                 };
               ])
             plans)
         tenants)
  in
  (match Shard.run_clients ~config ~cold:true t clients with
  | r ->
    let serial =
      List.concat_map
        (fun (name, _) ->
          let store = Shard.store t name in
          List.map
            (fun (pname, plan) ->
              ( (name, pname),
                ids_of (Exec.cold_run ~config:serial_config store case.path plan).Exec.nodes ))
            plans)
        tenants
    in
    List.iter
      (fun (tenant, (job : Workload.job)) ->
        let expected = List.assoc (tenant, job.Workload.job_label) serial in
        let got = ids_of job.Workload.nodes in
        if got <> expected then
          record
            (Printf.sprintf "%s/%s" tenant job.Workload.job_label)
            (Format.asprintf "serial: %d nodes %a, sharded (%s): %d nodes %a"
               (List.length expected) pp_ids expected
               (Workload.status_to_string job.Workload.status)
               (List.length got) pp_ids got))
      r.Shard.jobs;
    if List.length r.Shard.jobs <> Array.length clients then
      record "shards"
        (Printf.sprintf "%d jobs submitted but %d reported" (Array.length clients)
           (List.length r.Shard.jobs));
    List.iter (fun msg -> record "shards" msg) r.Shard.violations;
    List.iter
      (fun (name, _) ->
        let expected = Shard.stable_shard ~shards:shard_count name in
        let got = Shard.shard_of t name in
        if got <> expected then
          record "shards"
            (Printf.sprintf "tenant %s placed on shard %d, expected %d" name got expected))
      tenants
  | exception e -> record "shards" (Printf.sprintf "raised %s" (Printexc.to_string e)));
  if config.Context.result_cache then Result_cache.clear ();
  List.rev !mismatches

(* --- index tier ----------------------------------------------------------- *)

(* The structural-index tier: index plans — covering when the path is a
   pure self/child chain, residual-seeded otherwise, plus forced partial
   resolutions down to zero — must agree with the reference evaluator
   AND with the XSchedule plan on every sampled case. Partial
   resolutions exercise the border-continuation path ({!Xnav_core.Xindex.push}):
   seeds enter the XStep tail mid-chain and crossings are served
   cluster by cluster. *)
let check_index_built ~doc ~store ~import case =
  let config = context_config case in
  let expected = expected_ids doc import case.path in
  let mismatches = ref [] in
  let record plan detail = mismatches := { plan; detail } :: !mismatches in
  let guarded plan f =
    match f () with
    | got ->
      if got <> expected then
        record plan
          (Format.asprintf "expected %d nodes %a, got %d nodes %a" (List.length expected) pp_ids
             expected (List.length got) pp_ids got)
      else begin
        match storage_clean store with
        | None -> ()
        | Some msg -> record plan msg
      end
    | exception e -> record plan (Printf.sprintf "raised %s" (Printexc.to_string e))
  in
  guarded "xschedule" (fun () ->
      ids_of (Exec.cold_run ~config store case.path (Plan.xschedule ())).Exec.nodes);
  guarded "xindex" (fun () ->
      ids_of (Exec.cold_run ~config store case.path (Plan.xindex ())).Exec.nodes);
  let exact = Path.indexable_prefix case.path in
  List.iter
    (fun k ->
      guarded
        (Printf.sprintf "xindex[resolve<=%d]" k)
        (fun () ->
          ids_of
            (Exec.cold_run ~config store case.path (Plan.xindex ~resolve:k ())).Exec.nodes))
    (List.sort_uniq compare [ 0; exact / 2; exact ]);
  List.rev !mismatches

let check_index_case case =
  let doc = cached_document ~doc_seed:case.doc_seed ~fidelity:case.fidelity in
  let store, import = build_store ~doc case.physical in
  check_index_built ~doc ~store ~import case

(* --- fused tier ----------------------------------------------------------- *)

(* The fused automaton compiles the XStep chain away, but below
   XAssembly it must be observationally equivalent: running each
   fused-capable plan with the knob on and off — same store, cold —
   must produce identical result node ids, the identical physical I/O
   trace (page-by-page, in order), and identical scheduling and
   speculation counters. The knob-off run must never touch the
   automaton (zero fused counters); since the knob-on trace is checked
   equal to it, knob-off also pins the automaton to the historical
   chain regime. Swizzle counters are exempt: the automaton reads
   packed navigation words where the chain decodes full records, so
   the hit/miss split legitimately differs. [instances] is exempt for
   the same reason — the chain materialises one instance per step
   extension, the automaton only per crossing and per result. *)
let fused_plans case =
  [
    ("xschedule", Plan.xschedule ~speculative:case.speculative ());
    ("xscan", Plan.xscan ());
    ("xindex", Plan.xindex ());
    ("xindex[resolve=0]", Plan.xindex ~resolve:0 ());
  ]
  @
  if Path.starts_with_descendant_any case.path then [ ("xscan-dslash", Plan.xscan ~dslash:true ()) ]
  else []

let check_fused_built ~store case =
  let config = context_config case in
  let disk = Buffer_manager.disk (Store.buffer store) in
  let mismatches = ref [] in
  let record plan detail = mismatches := { plan; detail } :: !mismatches in
  let run_with plan fused =
    Disk.set_trace disk true;
    let r = Exec.cold_run ~config:{ config with Context.fused } store case.path plan in
    let trace = Disk.trace disk in
    Disk.set_trace disk false;
    (r, trace)
  in
  List.iter
    (fun (name, plan) ->
      match
        let on = run_with plan true in
        let off = run_with plan false in
        (on, off)
      with
      | (on, on_trace), (off, off_trace) ->
        let on_ids = ids_of on.Exec.nodes and off_ids = ids_of off.Exec.nodes in
        if on_ids <> off_ids then
          record name
            (Format.asprintf "fused: %d nodes %a, unfused: %d nodes %a" (List.length on_ids)
               pp_ids on_ids (List.length off_ids) pp_ids off_ids);
        if on_trace <> off_trace then
          record name
            (Printf.sprintf "I/O traces diverge: fused read %d pages, unfused %d"
               (List.length on_trace) (List.length off_trace));
        let mon = on.Exec.metrics and moff = off.Exec.metrics in
        List.iter
          (fun (label, proj) ->
            let a = proj mon and b = proj moff in
            if a <> b then
              record name (Printf.sprintf "%s diverges: fused %d, unfused %d" label a b))
          [
            ("page_reads", fun m -> m.Exec.page_reads);
            ("seek_distance", fun m -> m.Exec.seek_distance);
            ("q_enqueued", fun m -> m.Exec.q_enqueued);
            ("q_served", fun m -> m.Exec.q_served);
            ("clusters_visited", fun m -> m.Exec.clusters_visited);
            ("crossings", fun m -> m.Exec.crossings);
            ("specs_created", fun m -> m.Exec.specs_created);
            ("specs_resolved", fun m -> m.Exec.specs_resolved);
          ];
        if moff.Exec.fused_transitions <> 0 || moff.Exec.fused_states <> 0 then
          record name
            (Printf.sprintf "unfused run touched the automaton: %d transitions, %d states"
               moff.Exec.fused_transitions moff.Exec.fused_states)
      | exception e -> record name (Printf.sprintf "raised %s" (Printexc.to_string e)))
    (fused_plans case);
  List.rev !mismatches

let check_fused_case case =
  let doc = cached_document ~doc_seed:case.doc_seed ~fidelity:case.fidelity in
  let store, _import = build_store ~doc case.physical in
  check_fused_built ~store case

(* --- cache tier ----------------------------------------------------------- *)

(* The result cache must be semantically invisible. Per plan, three cold
   runs: cache off (the historical baseline), cache on against an empty
   cache (a miss — the consult-and-install machinery must not perturb a
   single execution counter), cache on again (a hit — the same answer
   with zero I/O and zero operator work). Then level 2: every plan of
   the case at once through the workload engine with the front door on,
   which dedupes the identical statements into one shared scan — each
   job must still report exactly the serial cache-off node set. *)
let check_cache_built ~store case =
  let config = context_config case in
  let cache_on = { config with Context.result_cache = true } in
  let mismatches = ref [] in
  let record plan detail = mismatches := { plan; detail } :: !mismatches in
  List.iter
    (fun (name, plan) ->
      Result_cache.clear ();
      match
        let off = Exec.cold_run ~config store case.path plan in
        let miss = Exec.cold_run ~config:cache_on store case.path plan in
        let hit = Exec.cold_run ~config:cache_on store case.path plan in
        (off, miss, hit)
      with
      | off, miss, hit ->
        let off_ids = ids_of off.Exec.nodes in
        let miss_ids = ids_of miss.Exec.nodes in
        let hit_ids = ids_of hit.Exec.nodes in
        if miss_ids <> off_ids then
          record name
            (Format.asprintf "miss run: %d nodes %a, cache-off: %d nodes %a"
               (List.length miss_ids) pp_ids miss_ids (List.length off_ids) pp_ids off_ids);
        if hit_ids <> off_ids then
          record name
            (Format.asprintf "hit run: %d nodes %a, cache-off: %d nodes %a"
               (List.length hit_ids) pp_ids hit_ids (List.length off_ids) pp_ids off_ids);
        let moff = off.Exec.metrics and mmiss = miss.Exec.metrics and mhit = hit.Exec.metrics in
        (* The miss is the cache machinery being invisible: every
           execution counter equals the cache-off run. *)
        List.iter
          (fun (label, proj) ->
            let a = proj moff and b = proj mmiss in
            if a <> b then
              record name (Printf.sprintf "%s diverges: cache-off %d, miss %d" label a b))
          [
            ("page_reads", fun m -> m.Exec.page_reads);
            ("seek_distance", fun m -> m.Exec.seek_distance);
            ("q_enqueued", fun m -> m.Exec.q_enqueued);
            ("q_served", fun m -> m.Exec.q_served);
            ("clusters_visited", fun m -> m.Exec.clusters_visited);
            ("crossings", fun m -> m.Exec.crossings);
            ("instances", fun m -> m.Exec.instances);
            ("specs_created", fun m -> m.Exec.specs_created);
            ("specs_stored", fun m -> m.Exec.specs_stored);
            ("specs_resolved", fun m -> m.Exec.specs_resolved);
            ("fused_transitions", fun m -> m.Exec.fused_transitions);
            ("fused_states", fun m -> m.Exec.fused_states);
          ];
        if moff.Exec.cache_hits + moff.Exec.cache_misses + moff.Exec.cache_evictions > 0 then
          record name
            (Printf.sprintf "cache-off run touched the cache: hits %d misses %d evictions %d"
               moff.Exec.cache_hits moff.Exec.cache_misses moff.Exec.cache_evictions);
        if mmiss.Exec.cache_misses <> 1 || mmiss.Exec.cache_hits <> 0 then
          record name
            (Printf.sprintf "miss run counted hits %d / misses %d (want 0/1)"
               mmiss.Exec.cache_hits mmiss.Exec.cache_misses);
        if mhit.Exec.cache_hits <> 1 || mhit.Exec.cache_misses <> 0 then
          record name
            (Printf.sprintf "hit run counted hits %d / misses %d (want 1/0)" mhit.Exec.cache_hits
               mhit.Exec.cache_misses);
        if mhit.Exec.page_reads <> 0 || mhit.Exec.clusters_visited <> 0 || mhit.Exec.instances <> 0
        then
          record name
            (Printf.sprintf "hit run executed: %d reads, %d clusters, %d instances"
               mhit.Exec.page_reads mhit.Exec.clusters_visited mhit.Exec.instances)
      | exception e -> record name (Printf.sprintf "raised %s" (Printexc.to_string e)))
    (plans_for case);
  (* Level 2: identical concurrent statements share one scan. *)
  Result_cache.clear ();
  let plans = plans_for case in
  let serial =
    List.map
      (fun (name, plan) ->
        (name, ids_of (Exec.cold_run ~config store case.path plan).Exec.nodes))
      plans
  in
  let specs =
    List.map
      (fun (name, plan) ->
        { Workload.label = name; path = case.path; plan; timeout = None; ops = [] })
      plans
  in
  Result_cache.clear ();
  (match Workload.run ~config:cache_on ~cold:true store specs with
  | r ->
    List.iter
      (fun (job : Workload.job) ->
        let expected = List.assoc job.Workload.job_label serial in
        let got = ids_of job.Workload.nodes in
        if got <> expected then
          record job.Workload.job_label
            (Format.asprintf "serial: %d nodes %a, shared (%s%s): %d nodes %a"
               (List.length expected) pp_ids expected
               (Workload.status_to_string job.Workload.status)
               (if job.Workload.shared then ", follower" else "")
               (List.length got) pp_ids got))
      r.Workload.jobs;
    if List.length plans >= 2 && r.Workload.shared_jobs + r.Workload.cache_hits = 0 then
      record "workload"
        (Printf.sprintf "%d identical statements ran concurrently but none was deduped or \
                         served from cache"
           (List.length plans));
    List.iter (fun msg -> record "workload" msg) r.Workload.violations;
    (match storage_clean store with
    | None -> ()
    | Some msg -> record "workload" msg)
  | exception e -> record "workload" (Printf.sprintf "raised %s" (Printexc.to_string e)));
  Result_cache.clear ();
  List.rev !mismatches

let check_cache_case case =
  let doc = cached_document ~doc_seed:case.doc_seed ~fidelity:case.fidelity in
  let store, _import = build_store ~doc case.physical in
  check_cache_built ~store case

(* --- shrinking ------------------------------------------------------------ *)

(* Move one dimension of the case toward the default / a smaller input.
   Any candidate that still fails replaces the case; iterate to a
   fixpoint under a global evaluation budget. *)
let shrink_candidates case =
  let with_path path = { case with path } in
  let drop_step i = List.filteri (fun j _ -> j <> i) case.path in
  let n = List.length case.path in
  let path_shrinks =
    if n <= 1 then [] else List.init n (fun i -> with_path (drop_step i))
  in
  let fidelity_shrinks =
    List.filter_map
      (fun f -> if f < case.fidelity then Some { case with fidelity = f } else None)
      [ 0.001; 0.002 ]
  in
  let p = case.physical in
  let d = default_physical in
  let phys_shrinks =
    List.filter_map
      (fun (differs, simplified) -> if differs then Some { case with physical = simplified } else None)
      [
        (p.strategy <> d.strategy, { p with strategy = d.strategy });
        (p.policy <> d.policy, { p with policy = d.policy });
        (p.replacement <> d.replacement, { p with replacement = d.replacement });
        (p.capacity < d.capacity, { p with capacity = d.capacity });
        (p.page_size <> d.page_size, { p with page_size = d.page_size });
        (p.payload <> d.payload, { p with payload = d.payload });
      ]
  in
  let cfg_shrinks =
    List.filter_map
      (fun (differs, simplified) -> if differs then Some simplified else None)
      [
        (case.k <> 100, { case with k = 100 });
        ((not case.speculative), { case with speculative = true });
        (case.memory_budget <> 1_000_000, { case with memory_budget = 1_000_000 });
      ]
  in
  path_shrinks @ fidelity_shrinks @ phys_shrinks @ cfg_shrinks

let shrink_with ~check ?(budget = 120) case =
  let budget = ref budget in
  let still_fails c =
    !budget > 0
    &&
    (decr budget;
     match check c with _ :: _ -> true | [] | (exception _) -> false)
  in
  let rec improve case =
    match List.find_opt still_fails (shrink_candidates case) with
    | Some simpler -> improve simpler
    | None -> case
  in
  improve case

let shrink ?budget case = shrink_with ~check:check_case ?budget case

(* --- reporting ------------------------------------------------------------ *)

let reproducer case =
  let p = case.physical in
  Printf.sprintf
    "xnav check --doc-seed %d --fidelity %g --clustering %s --page-size %d --payload %d \
     --buffer %d --io-policy %s --replacement %s -k %d --memory-budget %d%s --path '%s'"
    case.doc_seed case.fidelity
    (Import.strategy_to_string p.strategy)
    p.page_size p.payload p.capacity
    (Io_scheduler.policy_to_string p.policy)
    (Buffer_manager.replacement_to_string p.replacement)
    case.k case.memory_budget
    (if case.speculative then "" else " --no-speculation")
    (Path.to_string case.path)

let pp_case ppf case =
  let p = case.physical in
  Format.fprintf ppf
    "@[<v>path:       %s@,\
     document:   XMark seed=%d fidelity=%g@,\
     clustering: %s, page %dB, payload %dB@,\
     buffer:     %d frames, %s replacement, %s I/O policy@,\
     run:        k=%d%s, memory budget %d@]"
    (Path.to_string case.path) case.doc_seed case.fidelity
    (Import.strategy_to_string p.strategy)
    p.page_size p.payload p.capacity
    (Buffer_manager.replacement_to_string p.replacement)
    (Io_scheduler.policy_to_string p.policy)
    case.k
    (if case.speculative then ", speculative" else "")
    case.memory_budget

type failure = { case : case; shrunk : case; mismatches : mismatch list }

type report = { cases_run : int; plan_runs : int; failures : failure list }

let default_seed = 20050614

(* Shared sampling loop: [check_one] evaluates a case against the store,
   [runs_of] counts the plan executions it performs (for the report), and
   [shrink_check] is the per-case predicate driving shrinking. *)
let run_tier ~check_one ~runs_of ~shrink_check ~seed ~cases ~paths_per_store ~log =
  let prng = Prng.create seed in
  let cases_run = ref 0 in
  let plan_runs = ref 0 in
  let failures = ref [] in
  while !cases_run < cases do
    let doc_seed = Prng.int prng 1_000_000 in
    let fidelity = Prng.pick prng fidelities in
    let physical = sample_physical prng in
    let doc = cached_document ~doc_seed ~fidelity in
    let store, import = build_store ~doc physical in
    let tags = Array.of_list (List.map fst (Store.tag_counts store)) in
    let batch = min paths_per_store (cases - !cases_run) in
    for _ = 1 to batch do
      let case = sample_case prng ~doc_seed ~fidelity ~physical ~tags in
      incr cases_run;
      plan_runs := !plan_runs + runs_of case;
      match check_one ~doc ~store ~import case with
      | [] -> ()
      | mismatches ->
        log
          (Format.asprintf "MISMATCH (%s): %s" (List.hd mismatches).plan
             (reproducer case));
        let shrunk = shrink_with ~check:shrink_check case in
        log (Printf.sprintf "shrunk reproducer: %s" (reproducer shrunk));
        failures := { case; shrunk; mismatches } :: !failures
    done;
    if !cases_run mod 40 = 0 then
      log (Printf.sprintf "%d/%d cases checked, %d failures" !cases_run cases
             (List.length !failures))
  done;
  { cases_run = !cases_run; plan_runs = !plan_runs; failures = List.rev !failures }

let run ?(seed = default_seed) ?(cases = 200) ?(paths_per_store = 8) ?(log = ignore) () =
  run_tier ~check_one:check_built
    ~runs_of:(fun case -> List.length (plans_for case) + 2)
    ~shrink_check:check_case ~seed ~cases ~paths_per_store ~log

let run_swizzle ?(seed = default_seed) ?(cases = 200) ?(paths_per_store = 8) ?(log = ignore) () =
  run_tier
    ~check_one:(fun ~doc:_ ~store ~import:_ case -> check_swizzle_built ~store case)
    ~runs_of:(fun case -> 2 * List.length (plans_for case))
    ~shrink_check:check_swizzle_case ~seed ~cases ~paths_per_store ~log

let run_batching ?(seed = default_seed) ?(cases = 200) ?(paths_per_store = 8) ?(log = ignore) () =
  run_tier
    ~check_one:(fun ~doc:_ ~store ~import:_ case -> check_batching_built ~store case)
    ~runs_of:(fun case -> 2 * List.length (plans_for case))
    ~shrink_check:check_batching_case ~seed ~cases ~paths_per_store ~log

let run_workload ?(seed = default_seed) ?(cases = 200) ?(paths_per_store = 8) ?(log = ignore) () =
  run_tier
    ~check_one:(fun ~doc:_ ~store ~import:_ case -> check_workload_built ~store case)
    ~runs_of:(fun case -> 2 * List.length (plans_for case))
    ~shrink_check:check_workload_case ~seed ~cases ~paths_per_store ~log

let run_writers ?(seed = default_seed) ?(cases = 200) ?(paths_per_store = 8) ?(log = ignore) () =
  run_tier
    ~check_one:(fun ~doc ~store:_ ~import case -> check_writers_built ~doc ~import case)
    ~runs_of:(fun case -> (2 * List.length (plans_for case)) + 2)
    ~shrink_check:check_writers_case ~seed ~cases ~paths_per_store ~log

let run_shards ?(seed = default_seed) ?(cases = 200) ?(paths_per_store = 8) ?(log = ignore) () =
  run_tier
    ~check_one:(fun ~doc:_ ~store:_ ~import:_ case -> check_shards_case case)
    ~runs_of:(fun case -> 2 * (2 + (case.doc_seed mod 3)) * List.length (plans_for case))
    ~shrink_check:check_shards_case ~seed ~cases ~paths_per_store ~log

let run_fused ?(seed = default_seed) ?(cases = 200) ?(paths_per_store = 8) ?(log = ignore) () =
  run_tier
    ~check_one:(fun ~doc:_ ~store ~import:_ case -> check_fused_built ~store case)
    ~runs_of:(fun case -> 2 * List.length (fused_plans case))
    ~shrink_check:check_fused_case ~seed ~cases ~paths_per_store ~log

let run_cache ?(seed = default_seed) ?(cases = 200) ?(paths_per_store = 8) ?(log = ignore) () =
  run_tier
    ~check_one:(fun ~doc:_ ~store ~import:_ case -> check_cache_built ~store case)
    ~runs_of:(fun case -> 4 * List.length (plans_for case) + 1)
    ~shrink_check:check_cache_case ~seed ~cases ~paths_per_store ~log

let run_index ?(seed = default_seed) ?(cases = 200) ?(paths_per_store = 8) ?(log = ignore) () =
  run_tier ~check_one:check_index_built
    ~runs_of:(fun case -> 3 + List.length (List.sort_uniq compare [ 0; Path.indexable_prefix case.path / 2 ]))
    ~shrink_check:check_index_case ~seed ~cases ~paths_per_store ~log
