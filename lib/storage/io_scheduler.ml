type policy = Fifo | Sstf | Elevator | Cscan

let policy_of_string = function
  | "fifo" -> Some Fifo
  | "sstf" -> Some Sstf
  | "elevator" | "scan" -> Some Elevator
  | "cscan" -> Some Cscan
  | _ -> None

let policy_to_string = function
  | Fifo -> "fifo"
  | Sstf -> "sstf"
  | Elevator -> "elevator"
  | Cscan -> "cscan"

let all_policies = [ Fifo; Sstf; Elevator; Cscan ]

module Int_set = Set.Make (Int)

type t = {
  disk : Disk.t;
  policy : policy;
  mutable pending : Int_set.t;
  mutable order : int list;  (* submission order, newest first; for Fifo *)
  mutable upward : bool;  (* current elevator direction *)
}

let create ?(policy = Elevator) disk = { disk; policy; pending = Int_set.empty; order = []; upward = true }

let policy t = t.policy

let submit t pid =
  if not (Int_set.mem pid t.pending) then begin
    t.pending <- Int_set.add pid t.pending;
    t.order <- pid :: t.order
  end

let is_pending t pid = Int_set.mem pid t.pending
let pending_count t = Int_set.cardinal t.pending

let nearest t head =
  (* Closest pending page to [head] in either direction. *)
  let below = Int_set.find_last_opt (fun p -> p <= head) t.pending in
  let above = Int_set.find_first_opt (fun p -> p >= head) t.pending in
  match below, above with
  | None, None -> None
  | Some p, None | None, Some p -> Some p
  | Some b, Some a -> Some (if head - b <= a - head then b else a)

let pick t =
  if Int_set.is_empty t.pending then None
  else begin
    let head = max 0 (Disk.head t.disk) in
    match t.policy with
    | Fifo ->
      (* [order] is newest first and holds exactly the pending pids
         (see [remove]); the oldest submission is its last element. *)
      let rec last_submitted = function
        | [] -> None
        | [ p ] -> Some p
        | _ :: rest -> last_submitted rest
      in
      last_submitted t.order
    | Sstf -> nearest t head
    | Elevator -> begin
      let in_direction =
        if t.upward then Int_set.find_first_opt (fun p -> p >= head) t.pending
        else Int_set.find_last_opt (fun p -> p <= head) t.pending
      in
      match in_direction with
      | Some p -> Some p
      | None ->
        t.upward <- not t.upward;
        if t.upward then Int_set.find_first_opt (fun p -> p >= head) t.pending
        else Int_set.find_last_opt (fun p -> p <= head) t.pending
    end
    | Cscan -> begin
      match Int_set.find_first_opt (fun p -> p >= head) t.pending with
      | Some p -> Some p
      | None -> Int_set.min_elt_opt t.pending
    end
  end

(* Every removal from [pending] must also prune [order]: a stale entry
   would make Fifo re-filter an ever-growing list and, worse, mistake a
   cancelled-then-resubmitted page's original position for its current
   one. *)
let remove t pid =
  t.pending <- Int_set.remove pid t.pending;
  t.order <- List.filter (fun p -> p <> pid) t.order

let complete_one t =
  match pick t with
  | None -> None
  | Some pid ->
    remove t pid;
    let bytes = Disk.read t.disk pid in
    Disk.charge t.disk (Disk.config t.disk).Disk.async_overhead;
    Some (pid, bytes)

(* Strictly contiguous run of pending pages starting at [head_pid],
   carrying at most [min window limit] pages. Contiguity is the
   cost-sensitive part: a batched page costs one [transfer] while a
   separately completed one costs [transfer + async_overhead], so
   absorbing an adjacent pending page always wins — but crossing even a
   one-page gap reads a page nobody asked for, and on a demand stream
   that revisits every page it also strands later requests *behind* the
   head, turning sequential reads into random ones. Duplicate
   submissions cannot appear: [pending] is a set. *)
let absorb t head_pid ~window ~limit =
  let cap = min window limit in
  let rec go last acc n =
    if n >= cap then List.rev acc
    else if Int_set.mem (last + 1) t.pending then go (last + 1) (last + 1 :: acc) (n + 1)
    else List.rev acc
  in
  go head_pid [ head_pid ] 1

let complete_batch ?(window = 0) ?(limit = max_int) t =
  if window <= 0 then
    (* Window 0 is exactly the single-page path: same pick, same cost,
       same trace — the batch layer adds nothing. *)
    match complete_one t with
    | None -> None
    | Some page -> Some [ page ]
  else if Int_set.cardinal t.pending = 1 then
    (* A queue of depth 1 is a sparse demand stream: there is nothing to
       coalesce with, so the asynchronous completion bookkeeping
       ([async_overhead]) would be pure loss on every page. Serve the
       lone request as a direct demand read instead — q15-style streams
       (one navigation, one page, repeat) then cost exactly what the
       synchronous path charges. *)
    match pick t with
    | None -> None
    | Some pid ->
      remove t pid;
      Some [ (pid, Disk.read t.disk pid) ]
  else
    match pick t with
    | None -> None
    | Some pid ->
      let run = absorb t pid ~window ~limit:(max 1 limit) in
      List.iter (remove t) run;
      let pages = Disk.read_batch t.disk run in
      Disk.charge t.disk (Disk.config t.disk).Disk.async_overhead;
      Some pages

let cancel t pid =
  let was = Int_set.mem pid t.pending in
  if was then remove t pid;
  was

let drain t =
  t.pending <- Int_set.empty;
  t.order <- []

let order_length t = List.length t.order

let consistency_error t =
  let n_pending = Int_set.cardinal t.pending in
  let n_order = List.length t.order in
  if n_order <> n_pending then
    Some (Printf.sprintf "order holds %d entries but %d requests are pending" n_order n_pending)
  else begin
    let dead = List.filter (fun p -> not (Int_set.mem p t.pending)) t.order in
    match dead with
    | p :: _ -> Some (Printf.sprintf "order holds dead entry for page %d" p)
    | [] ->
      let sorted = List.sort_uniq compare t.order in
      if List.length sorted <> n_order then Some "order holds duplicate entries" else None
  end
