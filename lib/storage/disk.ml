type config = {
  page_size : int;
  seek_base : float;
  seek_factor : float;
  seek_max : float;
  rotational : float;
  transfer : float;
  async_overhead : float;
}

let default_config =
  {
    page_size = 8192;
    seek_base = 0.0010;
    seek_factor = 0.00007;
    seek_max = 0.0080;
    rotational = 0.0030;
    transfer = 0.00013;
    async_overhead = 0.00015;
  }

type stats = {
  reads : int;
  writes : int;
  sequential_reads : int;
  random_reads : int;
  seek_distance : int;
  batched_reads : int;
  batch_pages : int;
  coalesce_runs : int;
}

type t = {
  config : config;
  mutable pages : Bytes.t array;
  mutable count : int;
  mutable head : int;
  mutable clock : float;
  (* Individually mutable counters: [account] runs once per page access,
     and copying a stats record there showed up in scan profiles. The
     public [stats] record is materialised on read. *)
  mutable reads : int;
  mutable writes : int;
  mutable sequential_reads : int;
  mutable random_reads : int;
  mutable seek_distance : int;
  mutable batched_reads : int;
  mutable batch_pages : int;
  mutable coalesce_runs : int;
  mutable tracing : bool;
  mutable trace : int list;  (* newest first *)
}

let create ?(config = default_config) () =
  {
    config;
    pages = Array.make 64 Bytes.empty;
    count = 0;
    head = -1;
    clock = 0.0;
    reads = 0;
    writes = 0;
    sequential_reads = 0;
    random_reads = 0;
    seek_distance = 0;
    batched_reads = 0;
    batch_pages = 0;
    coalesce_runs = 0;
    tracing = false;
    trace = [];
  }

let config disk = disk.config
let page_count disk = disk.count

let alloc disk =
  if disk.count = Array.length disk.pages then begin
    let grown = Array.make (2 * Array.length disk.pages) Bytes.empty in
    Array.blit disk.pages 0 grown 0 disk.count;
    disk.pages <- grown
  end;
  let pid = disk.count in
  disk.pages.(pid) <- Bytes.make disk.config.page_size '\000';
  disk.count <- pid + 1;
  pid

let check_pid disk pid =
  if pid < 0 || pid >= disk.count then
    invalid_arg (Printf.sprintf "Disk: page %d out of range (0..%d)" pid (disk.count - 1))

(* Cost of moving the head from its current position to [pid]: nothing
   extra at the current position or the immediately following page (track
   buffer / read-ahead), seek + rotational latency otherwise. *)
let access_cost disk pid =
  let c = disk.config in
  if disk.head = -1 || pid = disk.head || pid = disk.head + 1 then c.transfer
  else begin
    let distance = abs (pid - disk.head) in
    let seek = min c.seek_max (c.seek_base +. (c.seek_factor *. sqrt (float_of_int distance))) in
    seek +. c.rotational +. c.transfer
  end

let is_sequential disk pid = disk.head = -1 || pid = disk.head || pid = disk.head + 1

let account disk pid ~write =
  let cost = access_cost disk pid in
  let sequential = is_sequential disk pid in
  if write then disk.writes <- disk.writes + 1
  else begin
    disk.reads <- disk.reads + 1;
    if sequential then disk.sequential_reads <- disk.sequential_reads + 1
    else begin
      disk.random_reads <- disk.random_reads + 1;
      disk.seek_distance <- disk.seek_distance + abs (pid - disk.head)
    end
  end;
  disk.clock <- disk.clock +. cost;
  disk.head <- pid;
  if disk.tracing then disk.trace <- pid :: disk.trace

let read disk pid =
  check_pid disk pid;
  account disk pid ~write:false;
  Bytes.copy disk.pages.(pid)

(* A vectored multi-page read: one head movement to the first page, then
   a pure stream to the last. Pages skipped inside a gap are transferred
   over but not returned — the drive cannot stop mid-rotation — so a run
   with gaps costs [seek + (last - first + 1) transfers]; a contiguous
   run costs exactly one seek + N transfers. *)
let read_batch disk pids =
  match pids with
  | [] -> invalid_arg "Disk.read_batch: empty run"
  | first :: rest ->
    List.iter (check_pid disk) pids;
    ignore
      (List.fold_left
         (fun prev pid ->
           if pid <= prev then invalid_arg "Disk.read_batch: run must be strictly ascending";
           pid)
         first rest);
    account disk first ~write:false;
    List.iter
      (fun pid ->
        let gap = pid - disk.head in
        disk.reads <- disk.reads + 1;
        disk.sequential_reads <- disk.sequential_reads + 1;
        disk.clock <- disk.clock +. (float_of_int gap *. disk.config.transfer);
        disk.head <- pid;
        if disk.tracing then disk.trace <- pid :: disk.trace)
      rest;
    let n = List.length pids in
    disk.batched_reads <- disk.batched_reads + 1;
    disk.batch_pages <- disk.batch_pages + n;
    if n > 1 then disk.coalesce_runs <- disk.coalesce_runs + 1;
    List.map (fun pid -> (pid, Bytes.copy disk.pages.(pid))) pids

let write disk pid bytes =
  check_pid disk pid;
  if Bytes.length bytes <> disk.config.page_size then
    invalid_arg "Disk.write: byte buffer has wrong page size";
  account disk pid ~write:true;
  disk.pages.(pid) <- Bytes.copy bytes

let charge disk cost = disk.clock <- disk.clock +. cost

let read_cost disk pid =
  check_pid disk pid;
  access_cost disk pid

let head disk = disk.head
let elapsed disk = disk.clock

let stats disk =
  {
    reads = disk.reads;
    writes = disk.writes;
    sequential_reads = disk.sequential_reads;
    random_reads = disk.random_reads;
    seek_distance = disk.seek_distance;
    batched_reads = disk.batched_reads;
    batch_pages = disk.batch_pages;
    coalesce_runs = disk.coalesce_runs;
  }

let reset_clock disk =
  disk.clock <- 0.0;
  disk.head <- -1;
  disk.reads <- 0;
  disk.writes <- 0;
  disk.sequential_reads <- 0;
  disk.random_reads <- 0;
  disk.seek_distance <- 0;
  disk.batched_reads <- 0;
  disk.batch_pages <- 0;
  disk.coalesce_runs <- 0;
  disk.trace <- []

let set_trace disk on =
  disk.tracing <- on;
  if on then disk.trace <- []

let trace disk = List.rev disk.trace

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "reads=%d (seq=%d rnd=%d) writes=%d seek-dist=%d batches=%d/%dp (coalesced %d)"
    s.reads s.sequential_reads s.random_reads s.writes s.seek_distance s.batched_reads
    s.batch_pages s.coalesce_runs
