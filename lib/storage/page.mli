(** Slotted pages: variable-length records addressed by stable slot
    numbers.

    This is the classical DBMS page layout the paper's storage model
    assumes (Sec. 3.2): a record is identified by a RID = (page number,
    slot number), and the slot indirection keeps RIDs stable when records
    move within the page. Records grow upward from the header; the slot
    directory grows downward from the end of the page.

    Layout (little-endian u16 fields):
    {v
    [0..1]  slot count
    [2..3]  free-space offset (start of unused bytes)
    [4..]   record bytes ...
    ...     free space ...
    [end-4k .. end]  slot directory entries (offset, length), slot 0 last
    v} *)

type t
(** A page under modification; wraps a byte buffer of fixed size. *)

val header_size : int
val slot_entry_size : int

val create : page_size:int -> t
(** A fresh empty page. @raise Invalid_argument if [page_size < 16] or
    [page_size > 65535]. *)

val of_bytes : Bytes.t -> t
(** Interpret raw bytes (e.g. read from disk) as a page. The buffer is
    used directly, not copied. *)

val to_bytes : t -> Bytes.t
(** The underlying buffer (not a copy). *)

val page_size : t -> int
val slot_count : t -> int

val free_space : t -> int
(** Bytes available for one more record, already accounting for the slot
    directory entry the insert would need. *)

val insert : t -> string -> int option
(** [insert page record] stores [record] and returns its slot number, or
    [None] if the page lacks space. Freed slots are reused. *)

val get : t -> int -> string
(** [get page slot] is the record stored in [slot].
    @raise Invalid_argument if the slot is out of range or free. *)

val mem : t -> int -> bool
(** Whether the slot number holds a live record. *)

val record_span : t -> int -> Bytes.t * int
(** [record_span page slot] is the underlying page buffer and the byte
    offset of the record stored in [slot] — the zero-copy counterpart of
    {!get} for codecs that parse a few fields in place (the navigation
    fast path decodes its packed word from this span; copying every
    record out of the page first was the dominant decode cost). The
    caller must not mutate the buffer.
    @raise Invalid_argument if the slot is out of range or free. *)

val record_byte : t -> int -> char
(** [record_byte page slot] is the first byte of the record in [slot],
    read in place — no copy. Record codecs put their discriminator
    there, so this answers "what kind of record?" without materialising
    the record (hot path: border scans over whole clusters).
    @raise Invalid_argument if the slot is out of range or free. *)

val delete : t -> int -> unit
(** Frees a slot. The space is reclaimed lazily by {!compact}.
    @raise Invalid_argument if the slot is out of range or already free. *)

val replace : t -> int -> string -> bool
(** [replace page slot record] overwrites the record in [slot], keeping
    its slot number. Returns [false] if the page lacks space for the new
    version (the old record is then untouched). *)

val compact : t -> unit
(** Rewrites live records contiguously, reclaiming space freed by
    {!delete} and {!replace}. Slot numbers are preserved. *)

val iter : (int -> string -> unit) -> t -> unit
(** Applies the function to every live (slot, record) pair, in slot
    order. *)

val used_bytes : t -> int
(** Total bytes consumed by live records plus directory and header. *)
