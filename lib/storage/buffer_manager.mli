(** The page buffer: caches disk pages in main memory frames, with
    pinning, LRU replacement, and an asynchronous prefetch path.

    Two access paths mirror the paper's cost distinction:
    - {!fix} is the synchronous path the Simple plan (and fallback mode)
      uses: a hash lookup, then — on a miss — a blocking, possibly
      random, disk read.
    - {!prefetch} + {!await_one} is the asynchronous path XSchedule uses:
      requests pile up in the {!Io_scheduler}, which serves them in a
      seek-minimising order.

    Every {!fix} and {!resident} check counts as a hash-table lookup in
    the statistics; the paper identifies these lookups (and the implied
    latch traffic) as the "swizzling" cost that passing direct pointers
    between XStep operators avoids. *)

type stats = {
  lookups : int;  (** Hash-table probes (the swizzling cost proxy). *)
  hits : int;
  misses : int;  (** Synchronous reads caused by {!fix}. *)
  async_reads : int;  (** Pages installed via {!await_one}. *)
  evictions : int;
  scan_resist_hits : int;
      (** Synchronous {!fix} hits served from the protected main (Am)
          queue while the 2Q policy is active — the accesses whose pages
          a plain LRU would have let a concurrent sequential scan flush.
          Always 0 with {!scan_resistant} off. *)
}

type replacement = Lru | Mru | Fifo | Clock
(** Victim selection among unpinned frames: least/most recently used,
    first loaded, or the clock (second chance) approximation of LRU. *)

val replacement_of_string : string -> replacement option
val replacement_to_string : replacement -> string
val all_replacements : replacement list

type frame
(** A pinned page in the buffer. Holding a [frame] is the swizzled
    representation: node access through it costs no lookups. *)

type t

exception Buffer_full
(** Raised when a page must be brought in but every frame is pinned. *)

val create :
  ?capacity:int ->
  ?policy:Io_scheduler.policy ->
  ?replacement:replacement ->
  ?scan_resistant:bool ->
  Disk.t ->
  t
(** [create disk] makes a buffer of [capacity] frames (default 1000, the
    paper's configuration) over [disk], with an internal scheduler using
    [policy] (default [Elevator]) and [replacement] victim selection
    (default [Lru]). [scan_resistant] (default [false]) starts the pool
    with the 2Q policy on — see {!set_scan_resistant}. *)

val scan_resistant : t -> bool

val set_scan_resistant : t -> bool -> unit
(** Toggle the 2Q scan-resistant eviction policy (LRU pools only; the
    other replacement policies ignore it). When on, freshly installed
    pages enter a {e probationary} (A1) queue and are only {e promoted}
    to the main (Am) queue on a re-reference; while the probationary
    queue holds more than a quarter of the pool (the classic 2Q Kin
    share) victims are taken from it, so a single sequential sweep
    recycles its own one-shot pages instead of flushing the hot working
    set. Both queues reuse the allocation-free lazy exact-LRU snapshot
    rows. With the knob off (the default) every install goes straight to
    the main queue and the pool reproduces the historical exact-LRU
    victim choices byte for byte. *)

val set_evict_observer : t -> (int -> unit) option -> unit
(** Install (or remove) a callback invoked with the page id of every
    frame the replacement policy evicts — victim-trace recording for the
    2Q differential tests. [None] (the default) costs nothing. *)

val capacity : t -> int
val disk : t -> Disk.t
val scheduler : t -> Io_scheduler.t

val fix : t -> int -> frame
(** Pin page [pid], reading it synchronously on a miss. Must be matched
    by {!unfix}. @raise Buffer_full if no frame can be evicted. *)

val unfix : t -> frame -> unit
(** Release one pin. @raise Invalid_argument if not pinned. *)

val page : frame -> Page.t
(** The page contents; valid only while the frame is pinned. *)

val frame_pid : frame -> int

val resident : t -> int -> bool
(** Whether the page is currently buffered (counts as a lookup). *)

type admission =
  | Resident  (** Already buffered; no request submitted. *)
  | Scheduled  (** A request is now pending in the {!Io_scheduler}. *)
  | Refused
      (** The buffer could not accept another page: every frame is
          pinned and no slot is free. The caller must retry later (after
          releasing pins) — submitting anyway would make {!await_one}
          raise {!Buffer_full} mid-run. *)

val prefetch : t -> int -> admission
(** Ask for page [pid] asynchronously. *)

val can_admit : t -> bool
(** Whether another page could be installed right now: a frame is free
    or some resident page is unpinned. *)

val await_one : ?window:int -> t -> (int * frame) option
(** Deliver one asynchronously loaded page, pinned. Pages queued by an
    earlier batch are delivered first; then the scheduler services a
    pending request. With [window > 0] the service is a
    {!Io_scheduler.complete_batch} coalesced read: every returned page is
    installed pinned (never evicting a pinned or still-queued page — the
    run is capped at the unpinned frame count), the first is returned and
    the rest wait in the completion queue for subsequent calls. With
    [window <= 0] (the default) this is exactly the historical
    one-request/one-page path. [None] iff nothing is queued or pending.
    @raise Buffer_full if no frame can be evicted. *)

val completed_count : t -> int
(** Batch-installed pages awaiting delivery (for the invariant layer —
    a clean end of run leaves this at 0). *)

val abort_async : t -> unit
(** Abandon the asynchronous pipeline: release the completion queue's
    pins and drop it, then drain pending scheduler requests. Used when a
    plan stops early (e.g. an exception) with loads still in flight. *)

val consistency_error : t -> string option
(** [None] iff the batch pipeline is coherent: every completion-queue
    entry is resident, pinned and not simultaneously pending in the
    scheduler — and the scheduler's own structures agree
    ({!Io_scheduler.consistency_error}). *)

val pinned_count : t -> int
(** Number of frames with a non-zero pin count (for leak tests). *)

val resident_count : t -> int
(** Number of occupied frames (for the invariant layer). *)

val stats : t -> stats

val reset : t -> unit
(** Drop every frame and pending request, zeroing statistics — a cold
    cache, as each measured run in the paper starts with. Undelivered
    completion-queue pages are released first (their pins belong to the
    buffer, not the caller).
    @raise Invalid_argument if any other frame is still pinned. *)

val pp_stats : Format.formatter -> stats -> unit
