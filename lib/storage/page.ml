type t = { bytes : Bytes.t }

let header_size = 4
let slot_entry_size = 4
let free_sentinel = 0xffff

let get_u16 page off = Bytes.get_uint16_le page.bytes off
let set_u16 page off v = Bytes.set_uint16_le page.bytes off v

let slot_count page = get_u16 page 0
let set_slot_count page n = set_u16 page 0 n
let free_off page = get_u16 page 2
let set_free_off page off = set_u16 page 2 off
let page_size page = Bytes.length page.bytes

let entry_pos page slot = page_size page - ((slot + 1) * slot_entry_size)
let slot_offset page slot = get_u16 page (entry_pos page slot)
let slot_length page slot = get_u16 page (entry_pos page slot + 2)

let set_entry page slot ~offset ~length =
  set_u16 page (entry_pos page slot) offset;
  set_u16 page (entry_pos page slot + 2) length

let create ~page_size =
  if page_size < 16 || page_size > 65535 then invalid_arg "Page.create: bad page size";
  let page = { bytes = Bytes.make page_size '\000' } in
  set_slot_count page 0;
  set_free_off page header_size;
  page

let of_bytes bytes = { bytes }
let to_bytes page = page.bytes

let dir_start page = page_size page - (slot_count page * slot_entry_size)

let free_space page =
  let contiguous = dir_start page - free_off page in
  max 0 (contiguous - slot_entry_size)

let check_slot page slot =
  if slot < 0 || slot >= slot_count page then
    invalid_arg (Printf.sprintf "Page: slot %d out of range" slot)

let mem page slot =
  slot >= 0 && slot < slot_count page && slot_offset page slot <> free_sentinel

let get page slot =
  check_slot page slot;
  let offset = slot_offset page slot in
  if offset = free_sentinel then invalid_arg (Printf.sprintf "Page.get: slot %d is free" slot);
  Bytes.sub_string page.bytes offset (slot_length page slot)

let record_span page slot =
  check_slot page slot;
  let offset = slot_offset page slot in
  if offset = free_sentinel then
    invalid_arg (Printf.sprintf "Page.record_span: slot %d is free" slot);
  (page.bytes, offset)

let record_byte page slot =
  check_slot page slot;
  let offset = slot_offset page slot in
  if offset = free_sentinel then
    invalid_arg (Printf.sprintf "Page.record_byte: slot %d is free" slot);
  Bytes.get page.bytes offset

let iter f page =
  for slot = 0 to slot_count page - 1 do
    if slot_offset page slot <> free_sentinel then f slot (get page slot)
  done

let live_bytes page =
  let total = ref 0 in
  for slot = 0 to slot_count page - 1 do
    if slot_offset page slot <> free_sentinel then total := !total + slot_length page slot
  done;
  !total

let used_bytes page =
  header_size + live_bytes page + (slot_count page * slot_entry_size)

let compact page =
  let live = ref [] in
  for slot = slot_count page - 1 downto 0 do
    if slot_offset page slot <> free_sentinel then live := (slot, get page slot) :: !live
  done;
  set_free_off page header_size;
  let place (slot, record) =
    let offset = free_off page in
    Bytes.blit_string record 0 page.bytes offset (String.length record);
    set_entry page slot ~offset ~length:(String.length record);
    set_free_off page (offset + String.length record)
  in
  List.iter place !live

(* First freed slot available for reuse, if any. *)
let find_free_slot page =
  let n = slot_count page in
  let rec go slot =
    if slot >= n then None
    else if slot_offset page slot = free_sentinel then Some slot
    else go (slot + 1)
  in
  go 0

let insert page record =
  let length = String.length record in
  let reused = find_free_slot page in
  let dir_cost = if reused = None then slot_entry_size else 0 in
  let contiguous () = dir_start page - free_off page in
  if contiguous () < length + dir_cost then compact page;
  if contiguous () < length + dir_cost then None
  else begin
    let slot =
      match reused with
      | Some slot -> slot
      | None ->
        let slot = slot_count page in
        set_slot_count page (slot + 1);
        slot
    in
    let offset = free_off page in
    Bytes.blit_string record 0 page.bytes offset length;
    set_entry page slot ~offset ~length;
    set_free_off page (offset + length);
    Some slot
  end

let delete page slot =
  check_slot page slot;
  if slot_offset page slot = free_sentinel then
    invalid_arg (Printf.sprintf "Page.delete: slot %d already free" slot);
  set_entry page slot ~offset:free_sentinel ~length:0

let replace page slot record =
  check_slot page slot;
  let old_offset = slot_offset page slot in
  if old_offset = free_sentinel then
    invalid_arg (Printf.sprintf "Page.replace: slot %d is free" slot);
  let old_length = slot_length page slot in
  let length = String.length record in
  if length <= old_length then begin
    Bytes.blit_string record 0 page.bytes old_offset length;
    set_entry page slot ~offset:old_offset ~length;
    true
  end
  else begin
    (* Stash the old content: freeing the slot lets [compact] reclaim its
       space, and on failure we restore it (its length fits for sure). *)
    let old_record = get page slot in
    set_entry page slot ~offset:free_sentinel ~length:0;
    let contiguous () = dir_start page - free_off page in
    if contiguous () < length then compact page;
    let chosen, ok =
      if contiguous () < length then (old_record, false) else (record, true)
    in
    let offset = free_off page in
    Bytes.blit_string chosen 0 page.bytes offset (String.length chosen);
    set_entry page slot ~offset ~length:(String.length chosen);
    set_free_off page (offset + String.length chosen);
    ok
  end
