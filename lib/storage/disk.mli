(** A simulated disk with an explicit access-cost model.

    The paper's experiments ran on a real drive behind Linux [O_DIRECT];
    what matters for reproducing them is not absolute latency but the
    *relative* cost of the access patterns the plans generate: random
    page fetches pay a distance-dependent seek plus rotational latency,
    sequential fetches pay only transfer time, and a re-read of the
    current head position pays transfer only. This module charges those
    costs against a deterministic simulated clock, making every benchmark
    figure exactly reproducible.

    The head position, clock and per-pattern counters are observable, so
    the motivation example (page access order, Sec. 1) and the I/O
    scheduler ablations can be measured directly. *)

type config = {
  page_size : int;  (** Bytes per page. *)
  seek_base : float;  (** Fixed seek overhead, seconds. *)
  seek_factor : float;
      (** Distance term: the seek to a page [d] pages away costs
          [seek_base +. seek_factor *. sqrt d], capped at [seek_max].
          The square root mimics the saturating seek curve of real
          drives. *)
  seek_max : float;  (** Full-stroke seek bound, seconds. *)
  rotational : float;  (** Average rotational latency, seconds. *)
  transfer : float;  (** Per-page transfer time, seconds. *)
  async_overhead : float;
      (** Dispatch cost charged per asynchronously serviced request
          (queue handoff, interrupt, missed read-ahead window). It is
          what keeps a perfectly sorted stream of single-page async
          requests from being as cheap as one streaming scan — the gap
          the paper observes between XSchedule and XScan on
          low-selectivity queries. *)
}

val default_config : config
(** An 8 KiB-page drive of the paper's era (2005, 7200 rpm): ~8 ms
    full-stroke seek, 3 ms average rotational latency, ~0.13 ms
    transfer. Random reads are roughly 50x a sequential read. *)

type stats = {
  reads : int;
  writes : int;
  sequential_reads : int;  (** Reads satisfied at head or head+1. *)
  random_reads : int;
  seek_distance : int;  (** Sum of page distances over random reads. *)
  batched_reads : int;  (** {!read_batch} calls (vectored I/Os issued). *)
  batch_pages : int;  (** Pages returned through {!read_batch}. *)
  coalesce_runs : int;  (** {!read_batch} calls that carried ≥ 2 pages. *)
}

type t

val create : ?config:config -> unit -> t
(** An empty disk. *)

val config : t -> config
val page_count : t -> int

val alloc : t -> int
(** Appends a zeroed page and returns its page number. Costs nothing:
    allocation happens at import time, which is not benchmarked. *)

val read : t -> int -> Bytes.t
(** [read disk pid] returns a copy of page [pid], advancing the clock by
    the modeled cost and moving the head to [pid].
    @raise Invalid_argument if [pid] is out of range. *)

val read_batch : t -> int list -> (int * Bytes.t) list
(** [read_batch disk pids] services a strictly ascending run of pages as
    one vectored read: the head moves once to the first page (full
    {!read} cost for that page), then streams to the last — every page
    crossed, requested or not, costs one [transfer], so a contiguous run
    of [N] pages costs one seek + [N] transfers. Returns each requested
    page's contents in run order; the head ends at the last page. The
    per-batch counters ([batched_reads], [batch_pages], [coalesce_runs])
    are charged here.
    @raise Invalid_argument on an empty, unsorted or out-of-range run. *)

val write : t -> int -> Bytes.t -> unit
(** [write disk pid bytes] stores a copy of [bytes] as page [pid], with
    the same cost model as {!read}.
    @raise Invalid_argument on size or range mismatch. *)

val charge : t -> float -> unit
(** [charge disk seconds] advances the simulated clock by an explicit
    cost (used by the async I/O layer for [async_overhead]). *)

val read_cost : t -> int -> float
(** The cost {!read} would charge right now, without performing it. *)

val head : t -> int
(** Current head position (page number), -1 before the first access. *)

val elapsed : t -> float
(** Simulated seconds consumed so far. *)

val stats : t -> stats

val reset_clock : t -> unit
(** Zeroes clock and counters and forgets the head position; page
    contents are kept. Used to start each benchmark run cold. *)

val set_trace : t -> bool -> unit
(** Enable/disable recording of the page-access order. *)

val trace : t -> int list
(** Accessed page numbers since tracing was enabled, oldest first. *)

val pp_stats : Format.formatter -> stats -> unit
