(** Asynchronous I/O request scheduling (paper Sec. 3.7).

    The XSchedule operator submits cluster-load requests "without waiting
    for them to complete" and later asks for *some* completed request;
    the lower system layers — OS, driver, on-disk controller — are free
    to reorder pending requests to minimise latency. This module plays
    the role of those layers for the simulated {!Disk}: requests
    accumulate in a pending set, and {!complete_one} services whichever
    request the configured policy picks given the current head position.

    Policies:
    - [Fifo]: submission order (no reordering; the pessimistic bound).
    - [Sstf]: shortest seek time first (nearest pending page).
    - [Elevator]: SCAN — keep moving in the current direction, service
      pending requests on the way, reverse at the last one.
    - [Cscan]: circular SCAN — one direction only, wrap around. *)

type policy = Fifo | Sstf | Elevator | Cscan

val policy_of_string : string -> policy option
val policy_to_string : policy -> string
val all_policies : policy list

type t

val create : ?policy:policy -> Disk.t -> t
(** A scheduler over [disk]. Default policy: [Elevator]. *)

val policy : t -> policy

val submit : t -> int -> unit
(** Queue an asynchronous read of the page. Duplicate submissions of a
    page that is still pending are absorbed. *)

val is_pending : t -> int -> bool
val pending_count : t -> int

val complete_one : t -> (int * Bytes.t) option
(** Service one pending request — chosen by the policy — by reading it
    from the disk (advancing the simulated clock by the access cost plus
    {!Disk.config}'s [async_overhead]), and return the page number with
    its contents. [None] iff nothing is pending. *)

val complete_batch : ?window:int -> ?limit:int -> t -> (int * Bytes.t) list option
(** Batch counterpart of {!complete_one}: after the policy picks a head
    request, absorb the strictly contiguous run of further pending pages
    ([pid], [pid+1], ...) up to [min window limit] pages ([limit]
    defaults to unbounded), and service the run as one
    {!Disk.read_batch} charged a single [async_overhead]. Contiguity is
    deliberate: an adjacent pending page rides along for one [transfer]
    instead of [transfer + async_overhead], while crossing even a
    one-page gap would transfer an unrequested page and leave the head
    past pages a demand stream may still ask for. Duplicate submissions
    were already absorbed at {!submit} time, so a page appears in at
    most one batch. [window <= 0] (the default) is byte-for-byte
    {!complete_one}: same pick, same cost, same trace. With a positive
    window and exactly one request pending, the batch machinery is
    bypassed entirely: the page is served as a direct {!Disk.read} with
    no [async_overhead] (a depth-1 queue is a sparse demand stream —
    there is nothing to coalesce, so the asynchronous bookkeeping would
    be pure loss). [None] iff nothing is pending; the returned list is
    never empty. *)

val cancel : t -> int -> bool
(** Drop a pending request (e.g. the page arrived in the buffer through
    another path). Returns whether it was pending. *)

val drain : t -> unit
(** Drop all pending requests. *)

val order_length : t -> int
(** Length of the internal submission-order list. Always equals
    {!pending_count}; exposed for the invariant layer. *)

val consistency_error : t -> string option
(** [None] iff the internal structures agree: the submission-order list
    holds exactly the pending pages, once each. A [Some] description
    indicates a scheduler bug (e.g. dead entries left by a removal). *)
