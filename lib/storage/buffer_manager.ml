type stats = {
  lookups : int;
  hits : int;
  misses : int;
  async_reads : int;
  evictions : int;
  scan_resist_hits : int;
}

type replacement = Lru | Mru | Fifo | Clock

let replacement_to_string = function
  | Lru -> "lru"
  | Mru -> "mru"
  | Fifo -> "fifo"
  | Clock -> "clock"

let all_replacements = [ Lru; Mru; Fifo; Clock ]

let replacement_of_string s =
  List.find_opt (fun r -> String.equal (replacement_to_string r) s) all_replacements

type frame = {
  pid : int;
  page : Page.t;
  mutable pins : int;
  mutable last_use : int;
  mutable loaded_at : int;
  mutable referenced : bool;
  mutable hot : bool;
      (* 2Q residency class: [true] = main (Am) queue, [false] =
         probationary (A1). With scan resistance off every frame is hot,
         which collapses the two-queue structure back to the historical
         single exact-LRU queue. *)
}

(* One lazy exact-LRU queue of (frame, last_use) snapshots — the
   allocation-free parallel-array structure introduced for the single
   LRU list, now instantiable so the 2Q policy can run a probationary
   queue next to the main one. Rows [head .. len - 1] are pending,
   oldest first. A row is live only while its frame's [hot] class still
   matches [hot_q] — promotion out of A1 kills the frame's probationary
   rows without touching them. *)
type rows = {
  hot_q : bool;
  mutable qframes : frame array;
  mutable qlus : int array;
  mutable qhead : int;
  mutable qlen : int;
  mutable qdeferred : (frame * int) list;
      (* live snapshots that surfaced while pinned, oldest first; they
         keep priority over everything still in the pending rows *)
}

let make_rows hot_q = { hot_q; qframes = [||]; qlus = [||]; qhead = 0; qlen = 0; qdeferred = [] }

type t = {
  disk : Disk.t;
  sched : Io_scheduler.t;
  capacity : int;
  replacement : replacement;
  table : (int, frame) Hashtbl.t;
  clock_ring : int Queue.t;  (* page ids, for Clock *)
  am : rows;  (* main queue — the only queue with scan resistance off *)
  a1 : rows;  (* probationary queue — empty with scan resistance off *)
  mutable a1_count : int;  (* resident probationary frames *)
  mutable scan_resistant : bool;
  mutable evict_observer : (int -> unit) option;
  completed : (int * frame) Queue.t;
      (* Batch-installed pages not yet handed to the consumer. Each entry
         holds one pin, so the replacement policy cannot evict it before
         [await_one] delivers it. *)
  mutable tick : int;
  (* Individually mutable counters: [fix] runs per page access and
     copying a stats record 2-3 times per lookup showed up in scan
     profiles. The public [stats] record is materialised on read. *)
  mutable lookups : int;
  mutable hits : int;
  mutable misses : int;
  mutable async_reads : int;
  mutable evictions : int;
  mutable scan_resist_hits : int;
}

exception Buffer_full

let create ?(capacity = 1000) ?(policy = Io_scheduler.Elevator) ?(replacement = Lru)
    ?(scan_resistant = false) disk =
  if capacity < 1 then invalid_arg "Buffer_manager.create: capacity must be positive";
  {
    disk;
    sched = Io_scheduler.create ~policy disk;
    capacity;
    replacement;
    table = Hashtbl.create (2 * capacity);
    clock_ring = Queue.create ();
    am = make_rows true;
    a1 = make_rows false;
    a1_count = 0;
    scan_resistant;
    evict_observer = None;
    completed = Queue.create ();
    tick = 0;
    lookups = 0;
    hits = 0;
    misses = 0;
    async_reads = 0;
    evictions = 0;
    scan_resist_hits = 0;
  }

let capacity t = t.capacity
let disk t = t.disk
let scheduler t = t.sched
let scan_resistant t = t.scan_resistant
let set_scan_resistant t on = t.scan_resistant <- on
let set_evict_observer t obs = t.evict_observer <- obs

(* A snapshot row is live when its frame is still resident under its pid,
   has not been touched since the row was written, and still belongs to
   the queue's residency class. Each resident frame therefore has at most
   one live row across both queues. *)
let rows_live t q frame lu =
  frame.last_use = lu
  && frame.hot = q.hot_q
  && (match Hashtbl.find_opt t.table frame.pid with Some f -> f == frame | None -> false)

(* Out of row space: compact the pending region down to its live rows
   (order preserved), then double the arrays if still more than half
   full. [seed] fills fresh cells — never read, rows past [qlen] are
   dead. *)
let rows_grow t q seed =
  let live = ref 0 in
  for i = q.qhead to q.qlen - 1 do
    let f = q.qframes.(i) and lu = q.qlus.(i) in
    if rows_live t q f lu then begin
      q.qframes.(!live) <- f;
      q.qlus.(!live) <- lu;
      incr live
    end
  done;
  q.qhead <- 0;
  q.qlen <- !live;
  let n = Array.length q.qframes in
  if n = 0 || q.qlen > n / 2 then begin
    let n' = max 64 (2 * n) in
    let frames = Array.make n' seed and lus = Array.make n' 0 in
    Array.blit q.qframes 0 frames 0 q.qlen;
    Array.blit q.qlus 0 lus 0 q.qlen;
    q.qframes <- frames;
    q.qlus <- lus
  end

let rows_push t q frame =
  if q.qlen = Array.length q.qframes then rows_grow t q frame;
  q.qframes.(q.qlen) <- frame;
  q.qlus.(q.qlen) <- frame.last_use;
  q.qlen <- q.qlen + 1

let rows_clear q =
  q.qframes <- [||];
  q.qlus <- [||];
  q.qhead <- 0;
  q.qlen <- 0;
  q.qdeferred <- []

(* Re-reference of a resident frame. A probationary frame is promoted to
   the main queue here — in 2Q terms, the second reference is what
   proves a page is not a one-shot scan touch. With the knob off every
   frame is already hot and this is exactly the historical LRU touch. *)
let touch t frame =
  t.tick <- t.tick + 1;
  frame.last_use <- t.tick;
  frame.referenced <- true;
  if t.replacement = Lru then begin
    if not frame.hot then begin
      frame.hot <- true;
      t.a1_count <- t.a1_count - 1
    end;
    rows_push t t.am frame
  end

(* First reference of a freshly installed frame. Scan-resistant pools
   park it in the probationary queue; otherwise it enters the main queue
   directly (the historical behaviour, byte for byte). *)
let touch_new t frame =
  t.tick <- t.tick + 1;
  frame.last_use <- t.tick;
  frame.referenced <- true;
  if t.replacement = Lru then
    if t.scan_resistant then begin
      t.a1_count <- t.a1_count + 1;
      rows_push t t.a1 frame
    end
    else begin
      frame.hot <- true;
      rows_push t t.am frame
    end

(* Exact LRU in amortised O(1) — the old fold over every resident frame
   per eviction dominated scan-shaped workloads (a full sweep evicts on
   nearly every fix once the pool is smaller than the document).

   Every touch appends a (frame, last_use) snapshot row, and rows
   surface in last_use order — so the oldest live unpinned row names
   precisely the frame the fold would have picked (last_use is unique:
   the tick is monotonic). Pinned candidates park in [qdeferred],
   oldest first, keeping their priority over everything still pending. *)
let rows_victim t q =
  let rec scan_deferred kept = function
    | [] ->
      q.qdeferred <- List.rev kept;
      None
    | ((frame, lu) as e) :: rest ->
      if not (rows_live t q frame lu) then scan_deferred kept rest
      else if frame.pins > 0 then scan_deferred (e :: kept) rest
      else begin
        q.qdeferred <- List.rev_append kept rest;
        Some frame
      end
  in
  match scan_deferred [] q.qdeferred with
  | Some frame -> Some frame
  | None ->
    let rec pop () =
      if q.qhead >= q.qlen then begin
        q.qhead <- 0;
        q.qlen <- 0;
        None
      end
      else begin
        let frame = q.qframes.(q.qhead) and lu = q.qlus.(q.qhead) in
        q.qhead <- q.qhead + 1;
        if not (rows_live t q frame lu) then pop ()
        else if frame.pins > 0 then begin
          q.qdeferred <- q.qdeferred @ [ (frame, lu) ];
          pop ()
        end
        else Some frame
      end
    in
    pop ()

(* 2Q keeps the probationary queue near a quarter of the pool (the
   classic Kin): while A1 runs over that share, victims come out of it —
   a sequential sweep then recycles its own one-shot pages and never
   touches the hot main queue. *)
let kin t = max 1 (t.capacity / 4)

(* Victim selection among unpinned frames, per the configured policy. *)
let pick_victim t =
  let by f =
    Hashtbl.fold
      (fun _ frame best ->
        if frame.pins > 0 then best
        else
          match best with
          | Some b when f b <= f frame -> best
          | _ -> Some frame)
      t.table None
  in
  match t.replacement with
  | Lru ->
    if t.scan_resistant then begin
      if t.a1_count > kin t then
        match rows_victim t t.a1 with Some _ as v -> v | None -> rows_victim t t.am
      else begin
        match rows_victim t t.am with Some _ as v -> v | None -> rows_victim t t.a1
      end
    end
    else begin
      (* Knob off: the historical exact-LRU choice. The probationary
         queue is empty unless the knob was just switched off; draining
         it here keeps a mid-run toggle sound without perturbing the
         pure knob-off victim trace. *)
      match rows_victim t t.am with Some _ as v -> v | None -> rows_victim t t.a1
    end
  | Mru -> by (fun frame -> -frame.last_use)
  | Fifo -> by (fun frame -> frame.loaded_at)
  | Clock ->
    (* Second chance over the ring; bounded sweep, falls back to LRU if
       everything is pinned or the ring ran dry. *)
    let limit = 2 * (Queue.length t.clock_ring + 1) in
    let rec sweep i =
      if i > limit then by (fun frame -> frame.last_use)
      else begin
        match Queue.take_opt t.clock_ring with
        | None -> by (fun frame -> frame.last_use)
        | Some pid -> begin
          match Hashtbl.find_opt t.table pid with
          | None -> sweep (i + 1) (* stale ring entry *)
          | Some frame ->
            if frame.pins > 0 then begin
              Queue.add pid t.clock_ring;
              sweep (i + 1)
            end
            else if frame.referenced then begin
              frame.referenced <- false;
              Queue.add pid t.clock_ring;
              sweep (i + 1)
            end
            else Some frame
        end
      end
    in
    sweep 0

let evict_one t =
  match pick_victim t with
  | None -> raise Buffer_full
  | Some frame ->
    if (not frame.hot) && t.a1_count > 0 then t.a1_count <- t.a1_count - 1;
    Hashtbl.remove t.table frame.pid;
    t.evictions <- t.evictions + 1;
    match t.evict_observer with None -> () | Some f -> f frame.pid

let ensure_room t = if Hashtbl.length t.table >= t.capacity then evict_one t

let install t pid bytes ~async =
  ensure_room t;
  let frame =
    {
      pid;
      page = Page.of_bytes bytes;
      pins = 1;
      last_use = 0;
      loaded_at = t.tick;
      referenced = true;
      hot = false;
    }
  in
  touch_new t frame;
  Hashtbl.replace t.table pid frame;
  if t.replacement = Clock then Queue.add pid t.clock_ring;
  if async then t.async_reads <- t.async_reads + 1 else t.misses <- t.misses + 1;
  frame

let lookup t pid =
  t.lookups <- t.lookups + 1;
  Hashtbl.find_opt t.table pid

let fix t pid =
  match lookup t pid with
  | Some frame ->
    frame.pins <- frame.pins + 1;
    if t.scan_resistant && frame.hot then t.scan_resist_hits <- t.scan_resist_hits + 1;
    touch t frame;
    t.hits <- t.hits + 1;
    frame
  | None -> install t pid (Disk.read t.disk pid) ~async:false

let unfix _t frame =
  if frame.pins <= 0 then invalid_arg "Buffer_manager.unfix: frame is not pinned";
  frame.pins <- frame.pins - 1

let page frame = frame.page
let frame_pid frame = frame.pid

let resident t pid = lookup t pid <> None

let pinned_count t = Hashtbl.fold (fun _ frame n -> if frame.pins > 0 then n + 1 else n) t.table 0

(* Whether another page could be installed right now: either a frame is
   free or some resident page is unpinned (evictable). *)
let can_admit t =
  Hashtbl.length t.table < t.capacity || pinned_count t < Hashtbl.length t.table

type admission = Resident | Scheduled | Refused

let prefetch t pid =
  if resident t pid then Resident
  else if can_admit t then begin
    Io_scheduler.submit t.sched pid;
    Scheduled
  end
  else Refused

let adopt_or_install t pid bytes =
  match Hashtbl.find_opt t.table pid with
  | Some frame ->
    (* Arrived through another path meanwhile; keep the cached copy. *)
    frame.pins <- frame.pins + 1;
    touch t frame;
    frame
  | None -> install t pid bytes ~async:true

let await_one ?(window = 0) t =
  match Queue.take_opt t.completed with
  | Some entry -> Some entry
  | None ->
    if window <= 0 then
      (* The exact pre-batching path: one request serviced, one page
         installed. *)
      match Io_scheduler.complete_one t.sched with
      | None -> None
      | Some (pid, bytes) -> Some (pid, adopt_or_install t pid bytes)
    else begin
      (* Every page of the batch installs pinned, so the run must fit in
         the frames not currently pinned — otherwise a later install of
         this very batch would find no victim. The completion queue's own
         pins count too, keeping back-to-back batches admissible. *)
      let limit = max 1 (t.capacity - pinned_count t) in
      match Io_scheduler.complete_batch ~window ~limit t.sched with
      | None -> None
      | Some pages -> begin
        let entries = List.map (fun (pid, bytes) -> (pid, adopt_or_install t pid bytes)) pages in
        match entries with
        | [] -> None
        | first :: rest ->
          List.iter (fun entry -> Queue.add entry t.completed) rest;
          Some first
      end
    end

let completed_count t = Queue.length t.completed

let abort_async t =
  Queue.iter (fun (_, frame) -> if frame.pins > 0 then frame.pins <- frame.pins - 1) t.completed;
  Queue.clear t.completed;
  Io_scheduler.drain t.sched

let resident_count t = Hashtbl.length t.table

let stats t =
  {
    lookups = t.lookups;
    hits = t.hits;
    misses = t.misses;
    async_reads = t.async_reads;
    evictions = t.evictions;
    scan_resist_hits = t.scan_resist_hits;
  }

let consistency_error t =
  let err = ref None in
  Queue.iter
    (fun (pid, frame) ->
      if !err = None then
        match Hashtbl.find_opt t.table pid with
        | None -> err := Some (Printf.sprintf "completed page %d is not resident" pid)
        | Some f when f != frame ->
          err := Some (Printf.sprintf "completed page %d points at a stale frame" pid)
        | Some f when f.pins <= 0 -> err := Some (Printf.sprintf "completed page %d is unpinned" pid)
        | Some _ ->
          if Io_scheduler.is_pending t.sched pid then
            err := Some (Printf.sprintf "page %d is both completed and pending" pid))
    t.completed;
  match !err with
  | Some _ as e -> e
  | None -> (
    match Io_scheduler.consistency_error t.sched with
    | Some _ as e -> e
    | None ->
      (* The probationary census must agree with the table: it is what
         arbitrates which queue gives up the next victim. *)
      let probation =
        Hashtbl.fold (fun _ frame n -> if frame.hot then n else n + 1) t.table 0
      in
      let tracked = if t.replacement = Lru then t.a1_count else probation in
      if probation <> tracked then
        Some
          (Printf.sprintf "2q: %d probationary frames resident but %d tracked" probation
             tracked)
      else None)

let reset t =
  abort_async t;
  Hashtbl.iter
    (fun pid frame ->
      if frame.pins > 0 then
        invalid_arg (Printf.sprintf "Buffer_manager.reset: page %d still pinned" pid))
    t.table;
  Hashtbl.reset t.table;
  Queue.clear t.clock_ring;
  rows_clear t.am;
  rows_clear t.a1;
  t.a1_count <- 0;
  Io_scheduler.drain t.sched;
  t.tick <- 0;
  t.lookups <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.async_reads <- 0;
  t.evictions <- 0;
  t.scan_resist_hits <- 0

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "lookups=%d hits=%d misses=%d async=%d evictions=%d scan-resist=%d" s.lookups
    s.hits s.misses s.async_reads s.evictions s.scan_resist_hits
