type stats = {
  lookups : int;
  hits : int;
  misses : int;
  async_reads : int;
  evictions : int;
}

let empty_stats = { lookups = 0; hits = 0; misses = 0; async_reads = 0; evictions = 0 }

type replacement = Lru | Mru | Fifo | Clock

let replacement_to_string = function
  | Lru -> "lru"
  | Mru -> "mru"
  | Fifo -> "fifo"
  | Clock -> "clock"

let all_replacements = [ Lru; Mru; Fifo; Clock ]

let replacement_of_string s =
  List.find_opt (fun r -> String.equal (replacement_to_string r) s) all_replacements

type frame = {
  pid : int;
  page : Page.t;
  mutable pins : int;
  mutable last_use : int;
  mutable loaded_at : int;
  mutable referenced : bool;
}

type t = {
  disk : Disk.t;
  sched : Io_scheduler.t;
  capacity : int;
  replacement : replacement;
  table : (int, frame) Hashtbl.t;
  clock_ring : int Queue.t;  (* page ids, for Clock *)
  completed : (int * frame) Queue.t;
      (* Batch-installed pages not yet handed to the consumer. Each entry
         holds one pin, so the replacement policy cannot evict it before
         [await_one] delivers it. *)
  mutable tick : int;
  mutable stats : stats;
}

exception Buffer_full

let create ?(capacity = 1000) ?(policy = Io_scheduler.Elevator) ?(replacement = Lru) disk =
  if capacity < 1 then invalid_arg "Buffer_manager.create: capacity must be positive";
  {
    disk;
    sched = Io_scheduler.create ~policy disk;
    capacity;
    replacement;
    table = Hashtbl.create (2 * capacity);
    clock_ring = Queue.create ();
    completed = Queue.create ();
    tick = 0;
    stats = empty_stats;
  }

let capacity t = t.capacity
let disk t = t.disk
let scheduler t = t.sched

let touch t frame =
  t.tick <- t.tick + 1;
  frame.last_use <- t.tick;
  frame.referenced <- true

(* Victim selection among unpinned frames, per the configured policy. *)
let pick_victim t =
  let by f =
    Hashtbl.fold
      (fun _ frame best ->
        if frame.pins > 0 then best
        else
          match best with
          | Some b when f b <= f frame -> best
          | _ -> Some frame)
      t.table None
  in
  match t.replacement with
  | Lru -> by (fun frame -> frame.last_use)
  | Mru -> by (fun frame -> -frame.last_use)
  | Fifo -> by (fun frame -> frame.loaded_at)
  | Clock ->
    (* Second chance over the ring; bounded sweep, falls back to LRU if
       everything is pinned or the ring ran dry. *)
    let limit = 2 * (Queue.length t.clock_ring + 1) in
    let rec sweep i =
      if i > limit then by (fun frame -> frame.last_use)
      else begin
        match Queue.take_opt t.clock_ring with
        | None -> by (fun frame -> frame.last_use)
        | Some pid -> begin
          match Hashtbl.find_opt t.table pid with
          | None -> sweep (i + 1) (* stale ring entry *)
          | Some frame ->
            if frame.pins > 0 then begin
              Queue.add pid t.clock_ring;
              sweep (i + 1)
            end
            else if frame.referenced then begin
              frame.referenced <- false;
              Queue.add pid t.clock_ring;
              sweep (i + 1)
            end
            else Some frame
        end
      end
    in
    sweep 0

let evict_one t =
  match pick_victim t with
  | None -> raise Buffer_full
  | Some frame ->
    Hashtbl.remove t.table frame.pid;
    t.stats <- { t.stats with evictions = t.stats.evictions + 1 }

let ensure_room t = if Hashtbl.length t.table >= t.capacity then evict_one t

let install t pid bytes ~async =
  ensure_room t;
  let frame =
    { pid; page = Page.of_bytes bytes; pins = 1; last_use = 0; loaded_at = t.tick; referenced = true }
  in
  touch t frame;
  Hashtbl.replace t.table pid frame;
  if t.replacement = Clock then Queue.add pid t.clock_ring;
  let s = t.stats in
  t.stats <-
    (if async then { s with async_reads = s.async_reads + 1 } else { s with misses = s.misses + 1 });
  frame

let lookup t pid =
  t.stats <- { t.stats with lookups = t.stats.lookups + 1 };
  Hashtbl.find_opt t.table pid

let fix t pid =
  match lookup t pid with
  | Some frame ->
    frame.pins <- frame.pins + 1;
    touch t frame;
    t.stats <- { t.stats with hits = t.stats.hits + 1 };
    frame
  | None -> install t pid (Disk.read t.disk pid) ~async:false

let unfix _t frame =
  if frame.pins <= 0 then invalid_arg "Buffer_manager.unfix: frame is not pinned";
  frame.pins <- frame.pins - 1

let page frame = frame.page
let frame_pid frame = frame.pid

let resident t pid = lookup t pid <> None

let pinned_count t = Hashtbl.fold (fun _ frame n -> if frame.pins > 0 then n + 1 else n) t.table 0

(* Whether another page could be installed right now: either a frame is
   free or some resident page is unpinned (evictable). *)
let can_admit t =
  Hashtbl.length t.table < t.capacity || pinned_count t < Hashtbl.length t.table

type admission = Resident | Scheduled | Refused

let prefetch t pid =
  if resident t pid then Resident
  else if can_admit t then begin
    Io_scheduler.submit t.sched pid;
    Scheduled
  end
  else Refused

let adopt_or_install t pid bytes =
  match Hashtbl.find_opt t.table pid with
  | Some frame ->
    (* Arrived through another path meanwhile; keep the cached copy. *)
    frame.pins <- frame.pins + 1;
    touch t frame;
    frame
  | None -> install t pid bytes ~async:true

let await_one ?(window = 0) t =
  match Queue.take_opt t.completed with
  | Some entry -> Some entry
  | None ->
    if window <= 0 then
      (* The exact pre-batching path: one request serviced, one page
         installed. *)
      match Io_scheduler.complete_one t.sched with
      | None -> None
      | Some (pid, bytes) -> Some (pid, adopt_or_install t pid bytes)
    else begin
      (* Every page of the batch installs pinned, so the run must fit in
         the frames not currently pinned — otherwise a later install of
         this very batch would find no victim. The completion queue's own
         pins count too, keeping back-to-back batches admissible. *)
      let limit = max 1 (t.capacity - pinned_count t) in
      match Io_scheduler.complete_batch ~window ~limit t.sched with
      | None -> None
      | Some pages -> begin
        let entries = List.map (fun (pid, bytes) -> (pid, adopt_or_install t pid bytes)) pages in
        match entries with
        | [] -> None
        | first :: rest ->
          List.iter (fun entry -> Queue.add entry t.completed) rest;
          Some first
      end
    end

let completed_count t = Queue.length t.completed

let abort_async t =
  Queue.iter (fun (_, frame) -> if frame.pins > 0 then frame.pins <- frame.pins - 1) t.completed;
  Queue.clear t.completed;
  Io_scheduler.drain t.sched

let resident_count t = Hashtbl.length t.table

let stats t = t.stats

let consistency_error t =
  let err = ref None in
  Queue.iter
    (fun (pid, frame) ->
      if !err = None then
        match Hashtbl.find_opt t.table pid with
        | None -> err := Some (Printf.sprintf "completed page %d is not resident" pid)
        | Some f when f != frame ->
          err := Some (Printf.sprintf "completed page %d points at a stale frame" pid)
        | Some f when f.pins <= 0 -> err := Some (Printf.sprintf "completed page %d is unpinned" pid)
        | Some _ ->
          if Io_scheduler.is_pending t.sched pid then
            err := Some (Printf.sprintf "page %d is both completed and pending" pid))
    t.completed;
  match !err with Some _ as e -> e | None -> Io_scheduler.consistency_error t.sched

let reset t =
  abort_async t;
  Hashtbl.iter
    (fun pid frame ->
      if frame.pins > 0 then
        invalid_arg (Printf.sprintf "Buffer_manager.reset: page %d still pinned" pid))
    t.table;
  Hashtbl.reset t.table;
  Queue.clear t.clock_ring;
  Io_scheduler.drain t.sched;
  t.tick <- 0;
  t.stats <- empty_stats

let pp_stats ppf s =
  Format.fprintf ppf "lookups=%d hits=%d misses=%d async=%d evictions=%d" s.lookups s.hits s.misses
    s.async_reads s.evictions
