type stats = {
  lookups : int;
  hits : int;
  misses : int;
  async_reads : int;
  evictions : int;
}

type replacement = Lru | Mru | Fifo | Clock

let replacement_to_string = function
  | Lru -> "lru"
  | Mru -> "mru"
  | Fifo -> "fifo"
  | Clock -> "clock"

let all_replacements = [ Lru; Mru; Fifo; Clock ]

let replacement_of_string s =
  List.find_opt (fun r -> String.equal (replacement_to_string r) s) all_replacements

type frame = {
  pid : int;
  page : Page.t;
  mutable pins : int;
  mutable last_use : int;
  mutable loaded_at : int;
  mutable referenced : bool;
}

type t = {
  disk : Disk.t;
  sched : Io_scheduler.t;
  capacity : int;
  replacement : replacement;
  table : (int, frame) Hashtbl.t;
  clock_ring : int Queue.t;  (* page ids, for Clock *)
  (* (frame, last_use) snapshots, appended on every touch — the lazy
     exact-LRU structure; see [lru_victim]. Parallel growable arrays
     rather than a queue of tuples: a boxed cell per touch showed up in
     Simple-plan profiles. Rows [lru_head .. lru_len - 1] are pending,
     oldest first. *)
  mutable lru_frames : frame array;
  mutable lru_lus : int array;
  mutable lru_head : int;
  mutable lru_len : int;
  mutable lru_deferred : (frame * int) list;
      (* live snapshots that surfaced while pinned, oldest first; they
         keep priority over everything still in the pending rows *)
  completed : (int * frame) Queue.t;
      (* Batch-installed pages not yet handed to the consumer. Each entry
         holds one pin, so the replacement policy cannot evict it before
         [await_one] delivers it. *)
  mutable tick : int;
  (* Individually mutable counters: [fix] runs per page access and
     copying a stats record 2-3 times per lookup showed up in scan
     profiles. The public [stats] record is materialised on read. *)
  mutable lookups : int;
  mutable hits : int;
  mutable misses : int;
  mutable async_reads : int;
  mutable evictions : int;
}

exception Buffer_full

let create ?(capacity = 1000) ?(policy = Io_scheduler.Elevator) ?(replacement = Lru) disk =
  if capacity < 1 then invalid_arg "Buffer_manager.create: capacity must be positive";
  {
    disk;
    sched = Io_scheduler.create ~policy disk;
    capacity;
    replacement;
    table = Hashtbl.create (2 * capacity);
    clock_ring = Queue.create ();
    lru_frames = [||];
    lru_lus = [||];
    lru_head = 0;
    lru_len = 0;
    lru_deferred = [];
    completed = Queue.create ();
    tick = 0;
    lookups = 0;
    hits = 0;
    misses = 0;
    async_reads = 0;
    evictions = 0;
  }

let capacity t = t.capacity
let disk t = t.disk
let scheduler t = t.sched

(* A snapshot row is live when its frame is still resident under its pid
   and has not been touched since the row was written. Each resident
   frame therefore has at most one live row. *)
let lru_live t frame lu =
  frame.last_use = lu
  && (match Hashtbl.find_opt t.table frame.pid with Some f -> f == frame | None -> false)

(* Out of row space: compact the pending region down to its live rows
   (order preserved), then double the arrays if still more than half
   full. [seed] fills fresh cells — never read, rows past [lru_len] are
   dead. *)
let lru_grow t seed =
  let live = ref 0 in
  for i = t.lru_head to t.lru_len - 1 do
    let f = t.lru_frames.(i) and lu = t.lru_lus.(i) in
    if lru_live t f lu then begin
      t.lru_frames.(!live) <- f;
      t.lru_lus.(!live) <- lu;
      incr live
    end
  done;
  t.lru_head <- 0;
  t.lru_len <- !live;
  let n = Array.length t.lru_frames in
  if n = 0 || t.lru_len > n / 2 then begin
    let n' = max 64 (2 * n) in
    let frames = Array.make n' seed and lus = Array.make n' 0 in
    Array.blit t.lru_frames 0 frames 0 t.lru_len;
    Array.blit t.lru_lus 0 lus 0 t.lru_len;
    t.lru_frames <- frames;
    t.lru_lus <- lus
  end

let touch t frame =
  t.tick <- t.tick + 1;
  frame.last_use <- t.tick;
  frame.referenced <- true;
  if t.replacement = Lru then begin
    if t.lru_len = Array.length t.lru_frames then lru_grow t frame;
    t.lru_frames.(t.lru_len) <- frame;
    t.lru_lus.(t.lru_len) <- frame.last_use;
    t.lru_len <- t.lru_len + 1
  end

(* Exact LRU in amortised O(1) — the old fold over every resident frame
   per eviction dominated scan-shaped workloads (a full sweep evicts on
   nearly every fix once the pool is smaller than the document).

   Every touch appends a (frame, last_use) snapshot row, and rows
   surface in last_use order — so the oldest live unpinned row names
   precisely the frame the fold would have picked (last_use is unique:
   the tick is monotonic). Pinned candidates park in [lru_deferred],
   oldest first, keeping their priority over everything still pending. *)
let lru_victim t =
  let rec scan_deferred kept = function
    | [] ->
      t.lru_deferred <- List.rev kept;
      None
    | ((frame, lu) as e) :: rest ->
      if not (lru_live t frame lu) then scan_deferred kept rest
      else if frame.pins > 0 then scan_deferred (e :: kept) rest
      else begin
        t.lru_deferred <- List.rev_append kept rest;
        Some frame
      end
  in
  match scan_deferred [] t.lru_deferred with
  | Some frame -> Some frame
  | None ->
    let rec pop () =
      if t.lru_head >= t.lru_len then begin
        t.lru_head <- 0;
        t.lru_len <- 0;
        None
      end
      else begin
        let frame = t.lru_frames.(t.lru_head) and lu = t.lru_lus.(t.lru_head) in
        t.lru_head <- t.lru_head + 1;
        if not (lru_live t frame lu) then pop ()
        else if frame.pins > 0 then begin
          t.lru_deferred <- t.lru_deferred @ [ (frame, lu) ];
          pop ()
        end
        else Some frame
      end
    in
    pop ()

(* Victim selection among unpinned frames, per the configured policy. *)
let pick_victim t =
  let by f =
    Hashtbl.fold
      (fun _ frame best ->
        if frame.pins > 0 then best
        else
          match best with
          | Some b when f b <= f frame -> best
          | _ -> Some frame)
      t.table None
  in
  match t.replacement with
  | Lru -> lru_victim t
  | Mru -> by (fun frame -> -frame.last_use)
  | Fifo -> by (fun frame -> frame.loaded_at)
  | Clock ->
    (* Second chance over the ring; bounded sweep, falls back to LRU if
       everything is pinned or the ring ran dry. *)
    let limit = 2 * (Queue.length t.clock_ring + 1) in
    let rec sweep i =
      if i > limit then by (fun frame -> frame.last_use)
      else begin
        match Queue.take_opt t.clock_ring with
        | None -> by (fun frame -> frame.last_use)
        | Some pid -> begin
          match Hashtbl.find_opt t.table pid with
          | None -> sweep (i + 1) (* stale ring entry *)
          | Some frame ->
            if frame.pins > 0 then begin
              Queue.add pid t.clock_ring;
              sweep (i + 1)
            end
            else if frame.referenced then begin
              frame.referenced <- false;
              Queue.add pid t.clock_ring;
              sweep (i + 1)
            end
            else Some frame
        end
      end
    in
    sweep 0

let evict_one t =
  match pick_victim t with
  | None -> raise Buffer_full
  | Some frame ->
    Hashtbl.remove t.table frame.pid;
    t.evictions <- t.evictions + 1

let ensure_room t = if Hashtbl.length t.table >= t.capacity then evict_one t

let install t pid bytes ~async =
  ensure_room t;
  let frame =
    { pid; page = Page.of_bytes bytes; pins = 1; last_use = 0; loaded_at = t.tick; referenced = true }
  in
  touch t frame;
  Hashtbl.replace t.table pid frame;
  if t.replacement = Clock then Queue.add pid t.clock_ring;
  if async then t.async_reads <- t.async_reads + 1 else t.misses <- t.misses + 1;
  frame

let lookup t pid =
  t.lookups <- t.lookups + 1;
  Hashtbl.find_opt t.table pid

let fix t pid =
  match lookup t pid with
  | Some frame ->
    frame.pins <- frame.pins + 1;
    touch t frame;
    t.hits <- t.hits + 1;
    frame
  | None -> install t pid (Disk.read t.disk pid) ~async:false

let unfix _t frame =
  if frame.pins <= 0 then invalid_arg "Buffer_manager.unfix: frame is not pinned";
  frame.pins <- frame.pins - 1

let page frame = frame.page
let frame_pid frame = frame.pid

let resident t pid = lookup t pid <> None

let pinned_count t = Hashtbl.fold (fun _ frame n -> if frame.pins > 0 then n + 1 else n) t.table 0

(* Whether another page could be installed right now: either a frame is
   free or some resident page is unpinned (evictable). *)
let can_admit t =
  Hashtbl.length t.table < t.capacity || pinned_count t < Hashtbl.length t.table

type admission = Resident | Scheduled | Refused

let prefetch t pid =
  if resident t pid then Resident
  else if can_admit t then begin
    Io_scheduler.submit t.sched pid;
    Scheduled
  end
  else Refused

let adopt_or_install t pid bytes =
  match Hashtbl.find_opt t.table pid with
  | Some frame ->
    (* Arrived through another path meanwhile; keep the cached copy. *)
    frame.pins <- frame.pins + 1;
    touch t frame;
    frame
  | None -> install t pid bytes ~async:true

let await_one ?(window = 0) t =
  match Queue.take_opt t.completed with
  | Some entry -> Some entry
  | None ->
    if window <= 0 then
      (* The exact pre-batching path: one request serviced, one page
         installed. *)
      match Io_scheduler.complete_one t.sched with
      | None -> None
      | Some (pid, bytes) -> Some (pid, adopt_or_install t pid bytes)
    else begin
      (* Every page of the batch installs pinned, so the run must fit in
         the frames not currently pinned — otherwise a later install of
         this very batch would find no victim. The completion queue's own
         pins count too, keeping back-to-back batches admissible. *)
      let limit = max 1 (t.capacity - pinned_count t) in
      match Io_scheduler.complete_batch ~window ~limit t.sched with
      | None -> None
      | Some pages -> begin
        let entries = List.map (fun (pid, bytes) -> (pid, adopt_or_install t pid bytes)) pages in
        match entries with
        | [] -> None
        | first :: rest ->
          List.iter (fun entry -> Queue.add entry t.completed) rest;
          Some first
      end
    end

let completed_count t = Queue.length t.completed

let abort_async t =
  Queue.iter (fun (_, frame) -> if frame.pins > 0 then frame.pins <- frame.pins - 1) t.completed;
  Queue.clear t.completed;
  Io_scheduler.drain t.sched

let resident_count t = Hashtbl.length t.table

let stats t =
  {
    lookups = t.lookups;
    hits = t.hits;
    misses = t.misses;
    async_reads = t.async_reads;
    evictions = t.evictions;
  }

let consistency_error t =
  let err = ref None in
  Queue.iter
    (fun (pid, frame) ->
      if !err = None then
        match Hashtbl.find_opt t.table pid with
        | None -> err := Some (Printf.sprintf "completed page %d is not resident" pid)
        | Some f when f != frame ->
          err := Some (Printf.sprintf "completed page %d points at a stale frame" pid)
        | Some f when f.pins <= 0 -> err := Some (Printf.sprintf "completed page %d is unpinned" pid)
        | Some _ ->
          if Io_scheduler.is_pending t.sched pid then
            err := Some (Printf.sprintf "page %d is both completed and pending" pid))
    t.completed;
  match !err with Some _ as e -> e | None -> Io_scheduler.consistency_error t.sched

let reset t =
  abort_async t;
  Hashtbl.iter
    (fun pid frame ->
      if frame.pins > 0 then
        invalid_arg (Printf.sprintf "Buffer_manager.reset: page %d still pinned" pid))
    t.table;
  Hashtbl.reset t.table;
  Queue.clear t.clock_ring;
  t.lru_frames <- [||];
  t.lru_lus <- [||];
  t.lru_head <- 0;
  t.lru_len <- 0;
  t.lru_deferred <- [];
  Io_scheduler.drain t.sched;
  t.tick <- 0;
  t.lookups <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.async_reads <- 0;
  t.evictions <- 0

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "lookups=%d hits=%d misses=%d async=%d evictions=%d" s.lookups s.hits s.misses
    s.async_reads s.evictions
