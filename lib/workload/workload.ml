module Store = Xnav_store.Store
module Node_id = Xnav_store.Node_id
module Disk = Xnav_storage.Disk
module Buffer_manager = Xnav_storage.Buffer_manager
module Io_scheduler = Xnav_storage.Io_scheduler
module Ordpath = Xnav_xml.Ordpath
module Context = Xnav_core.Context
module Plan = Xnav_core.Plan
module Exec = Xnav_core.Exec
module Vec = Xnav_core.Vec

type spec = {
  label : string;
  path : Xnav_xpath.Path.t;
  plan : Plan.t;
  timeout : float option;
}

type status = Completed | Timed_out | Recovered

let status_to_string = function
  | Completed -> "completed"
  | Timed_out -> "timed-out"
  | Recovered -> "recovered"

type job = {
  job_label : string;
  client : int;
  status : status;
  nodes : Store.info list;
  count : int;
  submitted : float;
  started : float;
  finished : float;
  latency : float;
  pin_wait : float;
  served_ticks : int;
  starved_ticks : int;
  yields : int;
  boosts : int;
  fell_back : bool;
}

type result = {
  jobs : job list;
  io_time : float;
  cpu_time : float;
  total_time : float;
  page_reads : int;
  seek_distance : int;
  batched_reads : int;
  batch_pages : int;
  coalesce_runs : int;
  max_concurrent : int;
  turns : int;
  violations : string list;
}

type lane = {
  spec : spec;
  client : int;
  submitted_at : float;
  started_at : float;
  stream : Exec.stream;
  seen : unit Node_id.Tbl.t;
  nodes : Store.info Vec.t;  (* arrival order *)
  mutable yields : int;
  mutable boosts : int;
  mutable status : status;
  mutable done_at : float;
}

(* Worst-case steady pin demand per admitted query: one held frame
   (XSchedule's current cluster; Simple/XScan navigation pins are
   transient, released before the stream yields) plus one frame of
   headroom for the page being entered. Release-before-acquire inside
   each operator means a query never needs both at once for itself, but
   a crossing momentarily touches the next cluster while the batch
   installer may hold completion-queue pins — two frames per query is
   the bound under which no schedule can wedge the pool. *)
let demand_frames = 2

let percentile xs p =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    List.nth sorted (min (n - 1) (max 0 (rank - 1)))

let run_clients ?config ?(quantum = 0.004) ?(ordered = true) ~cold store clients =
  if Array.length clients = 0 then invalid_arg "Workload.run_clients: no clients";
  let buffer = Store.buffer store in
  let disk = Buffer_manager.disk buffer in
  let sched = Buffer_manager.scheduler buffer in
  if cold then begin
    Buffer_manager.reset buffer;
    Disk.reset_clock disk
  end;
  let disk_before = Disk.stats disk in
  let io_before = Disk.elapsed disk in
  let cpu_before = Sys.time () in
  let now () = Disk.elapsed disk in
  let capacity = Buffer_manager.capacity buffer in

  (* Closed-loop clients: each entry is the client's remaining jobs; a
     client's next job is submitted the moment the previous finishes. *)
  let remaining = Array.map (fun l -> ref l) clients in
  let waiting = Queue.create () in
  let submit client =
    match !(remaining.(client)) with
    | [] -> ()
    | spec :: rest ->
      remaining.(client) <- ref rest;
      Queue.add (client, spec, now ()) waiting
  in
  Array.iteri (fun client _ -> submit client) clients;

  let active = ref [] in
  let finished = ref [] in
  let max_concurrent = ref 0 in
  let turns = ref 0 in

  let admit () =
    let stop = ref false in
    while (not !stop) && not (Queue.is_empty waiting) do
      let n = List.length !active in
      (* Alone is always admissible — the single-query engine makes
         progress on any pool down to one frame (and recovers through the
         fallback restart if it cannot). Company needs headroom. *)
      if n = 0 || demand_frames * (n + 1) <= capacity then begin
        let client, spec, submitted_at = Queue.pop waiting in
        let lane =
          {
            spec;
            client;
            submitted_at;
            started_at = now ();
            stream = Exec.prepare ?config store spec.path spec.plan;
            seen = Node_id.Tbl.create 64;
            nodes = Vec.create ();
            yields = 0;
            boosts = 0;
            status = Completed;
            done_at = 0.0;
          }
        in
        active := !active @ [ lane ];
        if List.length !active > !max_concurrent then max_concurrent := List.length !active
      end
      else stop := true
    done
  in

  let finish lane status =
    active := List.filter (fun l -> l != lane) !active;
    lane.status <- status;
    lane.done_at <- now ();
    finished := lane :: !finished;
    submit lane.client
  in

  (* A query is boosted when some cluster it has queued demand for is
     already cheap: resident in the shared pool, inside another query's
     open scan window, or part of a coalescible pending run. Serving it
     now converts another query's work (or the scheduler's batching) into
     this query's progress — the cross-query coalescing of the tentpole. *)
  let boosted all lane =
    match Exec.stream_demand lane.stream with
    | [] -> false
    | demand ->
      let windows =
        List.filter_map
          (fun l -> if l == lane then None else Exec.stream_scan_window l.stream)
          all
      in
      List.exists
        (fun pid ->
          Buffer_manager.resident buffer pid
          || (Io_scheduler.is_pending sched pid
             && (Io_scheduler.is_pending sched (pid - 1) || Io_scheduler.is_pending sched (pid + 1)))
          || List.exists (fun (lo, hi) -> pid >= lo && pid <= hi) windows)
        demand
  in

  (* Serve one cost credit: run until the quantum's worth of simulated
     time is spent, a random I/O fires (yield immediately — cheaper work
     can run while the head repositions), the stream ends, or the pool is
     exhausted (tear down, recompute serially later). The step cap keeps
     rotation alive for queries that are momentarily free (every page
     resident advances no simulated time at all). *)
  let step_cap = 256 in
  let serve lane =
    let start = now () in
    let steps = ref 0 in
    let running = ref true in
    while !running do
      let rnd0 = (Disk.stats disk).Disk.random_reads in
      match Exec.stream_next lane.stream with
      | None ->
        finish lane Completed;
        running := false
      | Some info ->
        incr steps;
        if not (Node_id.Tbl.mem lane.seen info.Store.id) then begin
          Node_id.Tbl.replace lane.seen info.Store.id ();
          Vec.push lane.nodes info
        end;
        if (Disk.stats disk).Disk.random_reads > rnd0 then begin
          lane.yields <- lane.yields + 1;
          running := false
        end
        else if now () -. start >= quantum || !steps >= step_cap then running := false
      | exception Buffer_manager.Buffer_full ->
        (* The pool is exhausted under contention (or this lane wedged
           post-fallback). Unwind its async state and recompute the
           answer with the Simple plan once everything has drained. *)
        Exec.stream_abandon lane.stream;
        finish lane Recovered;
        running := false
    done
  in

  let rr = ref 0 in
  while !active <> [] || not (Queue.is_empty waiting) do
    admit ();
    (* Deadlines, on the simulated clock, before the turn is given out:
       a timed-out query unwinds through abort_async and its client moves
       on to its next job. *)
    let t = now () in
    List.iter
      (fun lane ->
        match lane.spec.timeout with
        | Some dt when t -. lane.started_at >= dt ->
          Exec.stream_abandon lane.stream;
          finish lane Timed_out
        | _ -> ())
      !active;
    match !active with
    | [] -> ()
    | lanes ->
      incr turns;
      let n = List.length lanes in
      let k = !rr mod n in
      incr rr;
      let rotated = List.filteri (fun i _ -> i >= k) lanes @ List.filteri (fun i _ -> i < k) lanes in
      let head = List.hd rotated in
      let lane =
        match List.filter (boosted lanes) rotated with
        | [] -> head
        | b :: _ ->
          if b != head then b.boosts <- b.boosts + 1;
          b
      in
      let c = (Exec.stream_ctx lane.stream).Context.counters in
      c.Context.served_ticks <- c.Context.served_ticks + 1;
      List.iter
        (fun l ->
          if l != lane then begin
            let c = (Exec.stream_ctx l.stream).Context.counters in
            c.Context.starved_ticks <- c.Context.starved_ticks + 1
          end)
        lanes;
      serve lane
  done;

  (* The pool is quiescent now: recompute abandoned queries serially with
     the Simple plan (the paper's fallback answer path). The recompute's
     simulated time is charged to the job's latency. *)
  List.iter
    (fun lane ->
      if lane.status = Recovered then begin
        let io0 = now () in
        let r = Exec.run ?config ~ordered:false store lane.spec.path Plan.simple in
        Vec.clear lane.nodes;
        List.iter (Vec.push lane.nodes) r.Exec.nodes;
        lane.done_at <- lane.done_at +. (now () -. io0)
      end)
    (List.rev !finished);

  let pinned = Buffer_manager.pinned_count buffer in
  if pinned <> 0 then failwith (Printf.sprintf "Workload.run_clients: %d pages left pinned" pinned);
  let violations =
    let v = ref [] in
    let fail fmt = Printf.ksprintf (fun msg -> v := msg :: !v) fmt in
    let pending = Io_scheduler.pending_count sched in
    if pending <> 0 then fail "io-scheduler: %d requests still pending after the workload" pending;
    let completed = Buffer_manager.completed_count buffer in
    if completed <> 0 then fail "buffer: %d batch-installed pages never delivered" completed;
    (match Buffer_manager.consistency_error buffer with
    | None -> ()
    | Some msg -> fail "io-scheduler: %s" msg);
    let validate =
      match config with Some c -> c.Context.validate | None -> Context.default_config.Context.validate
    in
    if validate then
      List.iter
        (fun lane ->
          List.iter
            (fun msg -> fail "%s [%s]" msg lane.spec.label)
            (Exec.stream_violations lane.stream))
        !finished;
    List.rev !v
  in
  if violations <> [] && (match config with Some c -> c.Context.validate | None -> false) then
    failwith (Printf.sprintf "Workload invariant violation: %s" (String.concat "; " violations));

  let cpu_time = Sys.time () -. cpu_before in
  let io_time = Disk.elapsed disk -. io_before in
  let disk_after = Disk.stats disk in
  let to_job lane =
    let nodes =
      if lane.status = Timed_out then []
      else if ordered then
        Vec.sorted_to_list (fun (a : Store.info) b -> Ordpath.compare a.ordpath b.ordpath) lane.nodes
      else Vec.to_list lane.nodes
    in
    let c = (Exec.stream_ctx lane.stream).Context.counters in
    {
      job_label = lane.spec.label;
      client = lane.client;
      status = lane.status;
      nodes;
      count = List.length nodes;
      submitted = lane.submitted_at;
      started = lane.started_at;
      finished = lane.done_at;
      latency = lane.done_at -. lane.submitted_at;
      pin_wait = lane.started_at -. lane.submitted_at;
      served_ticks = c.Context.served_ticks;
      starved_ticks = c.Context.starved_ticks;
      yields = lane.yields;
      boosts = lane.boosts;
      fell_back = Exec.stream_fell_back lane.stream;
    }
  in
  {
    jobs = List.rev_map to_job !finished;
    io_time;
    cpu_time;
    total_time = io_time +. cpu_time;
    page_reads = disk_after.Disk.reads - disk_before.Disk.reads;
    seek_distance = disk_after.Disk.seek_distance - disk_before.Disk.seek_distance;
    batched_reads = disk_after.Disk.batched_reads - disk_before.Disk.batched_reads;
    batch_pages = disk_after.Disk.batch_pages - disk_before.Disk.batch_pages;
    coalesce_runs = disk_after.Disk.coalesce_runs - disk_before.Disk.coalesce_runs;
    max_concurrent = !max_concurrent;
    turns = !turns;
    violations;
  }

let run ?config ?quantum ?ordered ~cold store specs =
  if specs = [] then invalid_arg "Workload.run: no queries";
  run_clients ?config ?quantum ?ordered ~cold store
    (Array.of_list (List.map (fun s -> [ s ]) specs))
