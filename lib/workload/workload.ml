module Store = Xnav_store.Store
module Node_id = Xnav_store.Node_id
module Disk = Xnav_storage.Disk
module Buffer_manager = Xnav_storage.Buffer_manager
module Io_scheduler = Xnav_storage.Io_scheduler
module Ordpath = Xnav_xml.Ordpath
module Path = Xnav_xpath.Path
module Context = Xnav_core.Context
module Plan = Xnav_core.Plan
module Exec = Xnav_core.Exec
module Result_cache = Xnav_core.Result_cache
module Vec = Xnav_core.Vec
module Update = Xnav_store.Update
module Node_record = Xnav_store.Node_record

type update_op =
  | Insert_child of { parent : Node_id.t; tag : Xnav_xml.Tag.t }
  | Delete_subtree of Node_id.t

type spec = {
  label : string;
  path : Xnav_xpath.Path.t;
  plan : Plan.t;
  timeout : float option;
  ops : update_op list;
}

type status = Completed | Timed_out | Recovered

let status_to_string = function
  | Completed -> "completed"
  | Timed_out -> "timed-out"
  | Recovered -> "recovered"

type job = {
  job_label : string;
  client : int;
  status : status;
  nodes : Store.info list;
  count : int;
  submitted : float;
  started : float;
  finished : float;
  latency : float;
  pin_wait : float;
  served_ticks : int;
  starved_ticks : int;
  yields : int;
  boosts : int;
  shared : bool;
  cache_hit : bool;
  writer_commits : int;
  latch_waits : int;
  snapshot_retries : int;
  finish_commit : int;
  fell_back : bool;
}

type result = {
  jobs : job list;
  io_time : float;
  cpu_time : float;
  total_time : float;
  page_reads : int;
  seek_distance : int;
  batched_reads : int;
  batch_pages : int;
  coalesce_runs : int;
  max_concurrent : int;
  turns : int;
  shared_jobs : int;
  cache_hits : int;
  cache_misses : int;
  writer_commits : int;
  latch_waits : int;
  snapshot_retries : int;
  cluster_stales : int;
  commit_log : update_op list;
  violations : string list;
}

type lane = {
  spec : spec;
  client : int;
  submitted_at : float;
  started_at : float;
  mutable ctx : Context.t;  (* counter holder; the stream's context when one exists *)
  mutable stream : Exec.stream option;
      (* [None] for jobs that never execute a stream: answered from the
         result cache at admission, riding another client's identical
         in-flight scan as a follower, or a writer job. *)
  mutable followers : lane list;
  seen : unit Node_id.Tbl.t;
  nodes : Store.info Vec.t;  (* arrival order *)
  mutable sorted : Store.info list option;
      (* the answer already in document order — set when it came from
         the result cache or a shared scan, so serving a repeat is a
         pointer copy, not a per-job copy-and-sort *)
  mutable yields : int;
  mutable boosts : int;
  mutable status : status;
  mutable done_at : float;
  (* Snapshot machinery (readers): [touched] is the live touch log of
     the current stream — every cluster it has observed; [snapshot] the
     mutation stamp the stream started under. A writer commit into an
     observed cluster forces a restart ([retries]); served/starved
     credits of abandoned streams are carried across restarts. *)
  touched : (int, unit) Hashtbl.t;
  mutable snapshot : int;
  mutable retries : int;
  mutable carry_served : int;
  mutable carry_starved : int;
  (* Writer machinery: the two-phase op queue — [armed] holds the op
     latched last turn (plus the pids latched for it), committed next
     turn. *)
  mutable pending_ops : update_op list;
  mutable armed : (update_op * int list) option;
  (* Commit-schedule position: how many writer commits (engine-wide)
     preceded this job's completion — the serial-replay point at which
     this job's answer must be reproducible. *)
  mutable finish_commit : int;
}

(* Worst-case steady pin demand per admitted query: one held frame
   (XSchedule's current cluster; Simple/XScan navigation pins are
   transient, released before the stream yields) plus one frame of
   headroom for the page being entered. Release-before-acquire inside
   each operator means a query never needs both at once for itself, but
   a crossing momentarily touches the next cluster while the batch
   installer may hold completion-queue pins — two frames per query is
   the bound under which no schedule can wedge the pool. Followers and
   cache hits pin nothing and are exempt from admission. *)
let demand_frames = 2

let percentile xs p =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    List.nth sorted (min (n - 1) (max 0 (rank - 1)))

let doc_order (a : Store.info) (b : Store.info) = Ordpath.compare a.ordpath b.ordpath

let run_clients ?config ?(quantum = 0.004) ?(ordered = true) ~cold store clients =
  if Array.length clients = 0 then invalid_arg "Workload.run_clients: no clients";
  let buffer = Store.buffer store in
  let disk = Buffer_manager.disk buffer in
  let sched = Buffer_manager.scheduler buffer in
  if cold then begin
    Buffer_manager.reset buffer;
    Disk.reset_clock disk
  end;
  let disk_before = Disk.stats disk in
  let io_before = Disk.elapsed disk in
  let cpu_before = Sys.time () in
  let now () = Disk.elapsed disk in
  let capacity = Buffer_manager.capacity buffer in
  let cfg = match config with Some c -> c | None -> Context.default_config in
  (* The front door: both levels — result-cache consultation at admission
     and cross-client shared-scan dedup — ride the one knob, so knob-off
     reproduces the historical engine exactly. *)
  let front_door = cfg.Context.result_cache in

  (* Closed-loop clients: each entry is the client's remaining jobs; a
     client's next job is submitted the moment the previous finishes. *)
  let remaining = Array.map (fun l -> ref l) clients in
  let waiting = Queue.create () in
  let submit client =
    match !(remaining.(client)) with
    | [] -> ()
    | spec :: rest ->
      remaining.(client) <- ref rest;
      Queue.add (client, spec, now ()) waiting
  in
  Array.iteri (fun client _ -> submit client) clients;

  let active = ref [] in
  let finished = ref [] in
  let max_concurrent = ref 0 in
  let turns = ref 0 in

  (* Writer state, engine-wide. [latches] maps a cluster pid to the
     client holding it exclusively; readers never consult it (they are
     latch-free — snapshots protect them), writers acquire before
     mutating and release at commit. [commit_count] stamps the serial
     order of commits; [commit_log] records committed ops (newest first)
     so a differential harness can replay the schedule serially. *)
  let latches : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let commit_count = ref 0 in
  let commit_log = ref [] in

  let make_lane ~client ~spec ~submitted_at ~stream =
    {
      spec;
      client;
      submitted_at;
      started_at = now ();
      ctx =
        (match stream with
        | Some s -> Exec.stream_ctx s
        | None -> Context.create ~config:cfg store);
      stream;
      followers = [];
      seen = Node_id.Tbl.create 64;
      nodes = Vec.create ();
      sorted = None;
      yields = 0;
      boosts = 0;
      status = Completed;
      done_at = 0.0;
      touched = Hashtbl.create 16;
      snapshot = Store.mutation_stamp store;
      retries = 0;
      carry_served = 0;
      carry_starved = 0;
      pending_ops = spec.ops;
      armed = None;
      finish_commit = 0;
    }
  in

  (* Install a completed stream job's answer for the next identical
     statement. Streams always run from the root context, so every
     completed job is cacheable. *)
  let cache_fill lane =
    if front_door then begin
      let nodes = Vec.sorted_to_list doc_order lane.nodes in
      lane.sorted <- Some nodes;
      let c = lane.ctx.Context.counters in
      c.Context.cache_misses <- 1;
      (* Cluster footprint for cluster-granular invalidation: every pid
         the final stream observed. A partition-seeded run reads no
         pages for its seeds, so its footprint understates its
         dependencies — install those entries footprint-free (staled by
         any mutation). *)
      let clusters =
        if c.Context.index_entries > 0 then None
        else begin
          let pids = Hashtbl.fold (fun pid () acc -> pid :: acc) lane.touched [] in
          Some (Array.of_list (List.sort_uniq compare pids))
        end
      in
      c.Context.cache_evictions <-
        Result_cache.add ?clusters store (Path.to_string lane.spec.path)
          ~count:(List.length nodes) nodes
    end
  in

  let finish lane status =
    active := List.filter (fun l -> l != lane) !active;
    lane.status <- status;
    lane.done_at <- now ();
    lane.finish_commit <- !commit_count;
    lane.ctx.Context.counters.Context.snapshot_retries <- lane.retries;
    finished := lane :: !finished;
    (match (status, lane.stream) with Completed, Some _ -> cache_fill lane | _ -> ());
    (* A completed shared scan answers every follower at the same
       instant; a recovered one sends them to the same serial recompute
       (where the leader's recomputed answer is already cached). *)
    List.iter
      (fun f ->
        (if status = Completed then
           match lane.sorted with
           | Some _ -> f.sorted <- lane.sorted
           | None ->
             Vec.clear f.nodes;
             Vec.iter (Vec.push f.nodes) lane.nodes);
        f.status <- status;
        f.done_at <- now ();
        f.finish_commit <- !commit_count;
        finished := f :: !finished;
        submit f.client)
      lane.followers;
    lane.followers <- [];
    submit lane.client
  in

  (* Shared-scan dedup (level 2): an identical statement already
     in flight means this job's cluster demand is a subset of work the
     pool is about to do anyway — attach it as a follower instead of
     issuing a second scan. Deadline-carrying jobs keep their own lane
     (a follower's fate is its leader's). *)
  let find_leader spec =
    if (not front_door) || spec.timeout <> None then None
    else
      let key = Path.to_string spec.path in
      List.find_opt
        (fun l ->
          l.stream <> None && l.spec.timeout = None && Path.to_string l.spec.path = key)
        !active
  in

  let admit () =
    let stop = ref false in
    while (not !stop) && not (Queue.is_empty waiting) do
      let client, spec, submitted_at = Queue.peek waiting in
      if spec.ops <> [] then begin
        (* Writer job: no front door (a writer produces no statement
           answer to cache or share), a plain lane slot. Its transient
           fix/unfix pattern fits the same two-frame demand bound. *)
        let n = List.length !active in
        if n = 0 || demand_frames * (n + 1) <= capacity then begin
          ignore (Queue.pop waiting);
          let lane = make_lane ~client ~spec ~submitted_at ~stream:None in
          active := !active @ [ lane ];
          if List.length !active > !max_concurrent then max_concurrent := List.length !active
        end
        else stop := true
      end
      else
      match find_leader spec with
      | Some leader ->
        ignore (Queue.pop waiting);
        let lane = make_lane ~client ~spec ~submitted_at ~stream:None in
        lane.ctx.Context.counters.Context.shared_demand <- 1;
        leader.followers <- lane :: leader.followers
      | None -> (
        match
          if front_door then Result_cache.find store (Path.to_string spec.path) else None
        with
        | Some entry ->
          (* Level 1 hit: the job completes at admission, no lane slot,
             no planning, no I/O. *)
          ignore (Queue.pop waiting);
          let lane = make_lane ~client ~spec ~submitted_at ~stream:None in
          lane.ctx.Context.counters.Context.cache_hits <- 1;
          lane.sorted <- Some (Result_cache.nodes entry);
          lane.done_at <- now ();
          lane.finish_commit <- !commit_count;
          finished := lane :: !finished;
          submit lane.client
        | None ->
          let n = List.length !active in
          (* Alone is always admissible — the single-query engine makes
             progress on any pool down to one frame (and recovers through
             the fallback restart if it cannot). Company needs headroom. *)
          if n = 0 || demand_frames * (n + 1) <= capacity then begin
            ignore (Queue.pop waiting);
            let stream = Exec.prepare ?config store spec.path spec.plan in
            let lane = make_lane ~client ~spec ~submitted_at ~stream:(Some stream) in
            active := !active @ [ lane ];
            if List.length !active > !max_concurrent then max_concurrent := List.length !active
          end
          else stop := true)
    done
  in

  (* A query is boosted when some cluster it has queued demand for is
     already cheap: resident in the shared pool, inside another query's
     open scan window, or part of a coalescible pending run. Serving it
     now converts another query's work (or the scheduler's batching) into
     this query's progress — the cross-query coalescing of the tentpole. *)
  let boosted all lane =
    match lane.stream with
    | None -> false
    | Some stream -> (
      match Exec.stream_demand stream with
      | [] -> false
      | demand ->
        let windows =
          List.filter_map
            (fun l ->
              if l == lane then None else Option.bind l.stream Exec.stream_scan_window)
            all
        in
        List.exists
          (fun pid ->
            Buffer_manager.resident buffer pid
            || (Io_scheduler.is_pending sched pid
               && (Io_scheduler.is_pending sched (pid - 1) || Io_scheduler.is_pending sched (pid + 1)))
            || List.exists (fun (lo, hi) -> pid >= lo && pid <= hi) windows)
          demand)
  in

  (* Serve one cost credit: run until the quantum's worth of simulated
     time is spent, a random I/O fires (yield immediately — cheaper work
     can run while the head repositions), the stream ends, or the pool is
     exhausted (tear down, recompute serially later). The step cap keeps
     rotation alive for queries that are momentarily free (every page
     resident advances no simulated time at all). *)
  let step_cap = 256 in

  (* Snapshot rule: a stream is valid while no writer has committed into
     a cluster the stream has already observed ([touched]). Commits are
     atomic within a writer's turn, so checking once at the top of each
     reader turn suffices — the stream cannot observe a half-applied
     op. On conflict the stream restarts from scratch under a fresh
     stamp; fairness credits of the abandoned attempt are carried. *)
  let restart lane stream =
    Exec.stream_abandon stream;
    let c = lane.ctx.Context.counters in
    lane.carry_served <- lane.carry_served + c.Context.served_ticks;
    lane.carry_starved <- lane.carry_starved + c.Context.starved_ticks;
    Node_id.Tbl.reset lane.seen;
    Vec.clear lane.nodes;
    Hashtbl.reset lane.touched;
    lane.retries <- lane.retries + 1;
    let s = Exec.prepare ?config store lane.spec.path lane.spec.plan in
    lane.stream <- Some s;
    lane.ctx <- Exec.stream_ctx s;
    lane.snapshot <- Store.mutation_stamp store
  in

  let serve_reader lane stream =
    let saved = Store.swap_touch_log store (Some lane.touched) in
    let conflicted =
      Hashtbl.fold
        (fun pid () acc -> acc || Store.page_stamp store pid > lane.snapshot)
        lane.touched false
    in
    let stream =
      if not conflicted then Some stream
      else
        match restart lane stream with
        | () -> lane.stream
        | exception Buffer_manager.Buffer_full ->
          finish lane Recovered;
          None
    in
    (match stream with
    | None -> ()
    | Some stream ->
      let start = now () in
      let steps = ref 0 in
      let running = ref true in
      while !running do
        let rnd0 = (Disk.stats disk).Disk.random_reads in
        match Exec.stream_next stream with
        | None ->
          finish lane Completed;
          running := false
        | Some info ->
          incr steps;
          if not (Node_id.Tbl.mem lane.seen info.Store.id) then begin
            Node_id.Tbl.replace lane.seen info.Store.id ();
            Vec.push lane.nodes info
          end;
          if (Disk.stats disk).Disk.random_reads > rnd0 then begin
            lane.yields <- lane.yields + 1;
            running := false
          end
          else if now () -. start >= quantum || !steps >= step_cap then running := false
        | exception Buffer_manager.Buffer_full ->
          (* The pool is exhausted under contention (or this lane wedged
             post-fallback). Unwind its async state and recompute the
             answer with the Simple plan once everything has drained. *)
          Exec.stream_abandon stream;
          finish lane Recovered;
          running := false
      done);
    ignore (Store.swap_touch_log store saved)
  in

  (* Writers are two-phase, one phase per turn. Acquire turn: latch the
     op's target cluster (exclusive against other writers; blocked →
     count a latch wait, retry next turn) and validate the target still
     exists — a concurrent delete may have removed it, in which case the
     op is skipped. Commit turn: apply the op atomically (the whole
     surgery inside one turn — readers between turns never see a partial
     op), log it, and stale exactly the result-cache entries whose
     footprint the write set intersects. Clusters an op escalates into
     mid-commit (overflow pages, purged subtree clusters) are not
     latched: the latch protocol orders writer-writer conflicts on the
     declared target, while the commit's validation probe plus the
     op-skip catch keep races through escalation safe — a skipped op is
     excluded from the commit log, so serial replay agrees. *)
  let latch_targets = function
    | Insert_child { parent; _ } -> [ parent.Node_id.pid ]
    | Delete_subtree victim -> [ victim.Node_id.pid ]
  in
  let op_valid op =
    match op with
    | Insert_child { parent; _ } -> (
      match Store.read store parent with
      | Node_record.Core _ -> true
      | _ | (exception Failure _) | (exception Invalid_argument _) -> false)
    | Delete_subtree victim -> (
      match Store.read store victim with
      | Node_record.Core c -> c.Node_record.parent <> None
      | _ | (exception Failure _) | (exception Invalid_argument _) -> false)
  in
  let serve_writer lane =
    let c = lane.ctx.Context.counters in
    match lane.armed with
    | Some (op, held) ->
      let write_set = Hashtbl.create 8 in
      let saved = Store.swap_write_log store (Some write_set) in
      let committed =
        try
          (match op with
          | Insert_child { parent; tag } -> ignore (Update.insert_element store ~parent tag)
          | Delete_subtree victim -> ignore (Update.delete_subtree store victim));
          true
        with _ -> false
      in
      ignore (Store.swap_write_log store saved);
      List.iter (fun pid -> Hashtbl.remove latches pid) held;
      lane.armed <- None;
      if committed then begin
        c.Context.writer_commits <- c.Context.writer_commits + 1;
        incr commit_count;
        commit_log := op :: !commit_log;
        if front_door then begin
          let ws = Hashtbl.fold (fun pid () acc -> pid :: acc) write_set [] in
          let staled = Result_cache.stale_clusters store (Array.of_list ws) in
          c.Context.cluster_stales <- c.Context.cluster_stales + staled
        end
      end;
      if lane.pending_ops = [] then finish lane Completed
    | None -> (
      match lane.pending_ops with
      | [] -> finish lane Completed
      | op :: rest -> (
        let targets = latch_targets op in
        let blocked =
          List.exists
            (fun pid ->
              match Hashtbl.find_opt latches pid with
              | Some owner -> owner <> lane.client
              | None -> false)
            targets
        in
        if blocked then c.Context.latch_waits <- c.Context.latch_waits + 1
        else begin
          List.iter (fun pid -> Hashtbl.replace latches pid lane.client) targets;
          match op_valid op with
          | true ->
            lane.armed <- Some (op, targets);
            lane.pending_ops <- rest
          | false ->
            List.iter (fun pid -> Hashtbl.remove latches pid) targets;
            lane.pending_ops <- rest;
            if rest = [] then finish lane Completed
          | exception Buffer_manager.Buffer_full ->
            (* Pool too tight even for the validation probe: release and
               retry the same op next turn. *)
            List.iter (fun pid -> Hashtbl.remove latches pid) targets;
            lane.yields <- lane.yields + 1
        end))
  in

  let serve lane =
    if lane.spec.ops <> [] then serve_writer lane
    else match lane.stream with None -> () | Some stream -> serve_reader lane stream
  in

  let rr = ref 0 in
  while !active <> [] || not (Queue.is_empty waiting) do
    admit ();
    (* Deadlines, on the simulated clock, before the turn is given out:
       a timed-out query unwinds through abort_async and its client moves
       on to its next job. *)
    let t = now () in
    List.iter
      (fun lane ->
        match (lane.spec.timeout, lane.stream) with
        | Some dt, Some stream when t -. lane.started_at >= dt ->
          Exec.stream_abandon stream;
          finish lane Timed_out
        | _ -> ())
      !active;
    match !active with
    | [] -> ()
    | lanes ->
      incr turns;
      let n = List.length lanes in
      let k = !rr mod n in
      incr rr;
      let rotated = List.filteri (fun i _ -> i >= k) lanes @ List.filteri (fun i _ -> i < k) lanes in
      let head = List.hd rotated in
      let lane =
        match List.filter (boosted lanes) rotated with
        | [] -> head
        | b :: _ ->
          if b != head then b.boosts <- b.boosts + 1;
          b
      in
      let credit l = l.ctx.Context.counters.Context.served_ticks <-
        l.ctx.Context.counters.Context.served_ticks + 1
      in
      credit lane;
      (* Fairness credits are charged to every sharer: a follower is
         being served whenever its leader's scan advances. *)
      List.iter credit lane.followers;
      List.iter
        (fun l ->
          if l != lane then begin
            let c = l.ctx.Context.counters in
            c.Context.starved_ticks <- c.Context.starved_ticks + 1
          end)
        lanes;
      serve lane
  done;

  (* The pool is quiescent now: recompute abandoned queries serially with
     the Simple plan (the paper's fallback answer path). The recompute's
     simulated time is charged to the job's latency. With the front door
     on, a recovered leader's recompute installs its answer and its
     recovered followers hit the cache immediately after. *)
  List.iter
    (fun lane ->
      if lane.status = Recovered then begin
        let io0 = now () in
        let r = Exec.run ?config ~ordered:false store lane.spec.path Plan.simple in
        Vec.clear lane.nodes;
        List.iter (Vec.push lane.nodes) r.Exec.nodes;
        lane.finish_commit <- !commit_count;
        lane.done_at <- lane.done_at +. (now () -. io0)
      end)
    (List.rev !finished);

  let pinned = Buffer_manager.pinned_count buffer in
  if pinned <> 0 then failwith (Printf.sprintf "Workload.run_clients: %d pages left pinned" pinned);
  let violations =
    let v = ref [] in
    let fail fmt = Printf.ksprintf (fun msg -> v := msg :: !v) fmt in
    let pending = Io_scheduler.pending_count sched in
    if pending <> 0 then fail "io-scheduler: %d requests still pending after the workload" pending;
    let completed = Buffer_manager.completed_count buffer in
    if completed <> 0 then fail "buffer: %d batch-installed pages never delivered" completed;
    (match Buffer_manager.consistency_error buffer with
    | None -> ()
    | Some msg -> fail "io-scheduler: %s" msg);
    if Hashtbl.length latches <> 0 then
      fail "writers: %d cluster latches still held after the workload" (Hashtbl.length latches);
    let validate =
      match config with Some c -> c.Context.validate | None -> Context.default_config.Context.validate
    in
    if validate then
      List.iter
        (fun lane ->
          match lane.stream with
          | None -> ()
          | Some stream ->
            List.iter
              (fun msg -> fail "%s [%s]" msg lane.spec.label)
              (Exec.stream_violations stream))
        !finished;
    List.rev !v
  in
  if violations <> [] && (match config with Some c -> c.Context.validate | None -> false) then
    failwith (Printf.sprintf "Workload invariant violation: %s" (String.concat "; " violations));

  let cpu_time = Sys.time () -. cpu_before in
  let io_time = Disk.elapsed disk -. io_before in
  let disk_after = Disk.stats disk in
  let to_job lane =
    let nodes =
      if lane.status = Timed_out then []
      else
        match lane.sorted with
        | Some ns -> ns
        | None ->
          if ordered then Vec.sorted_to_list doc_order lane.nodes else Vec.to_list lane.nodes
    in
    let c = lane.ctx.Context.counters in
    {
      job_label = lane.spec.label;
      client = lane.client;
      status = lane.status;
      nodes;
      count = List.length nodes;
      submitted = lane.submitted_at;
      started = lane.started_at;
      finished = lane.done_at;
      latency = lane.done_at -. lane.submitted_at;
      pin_wait = lane.started_at -. lane.submitted_at;
      served_ticks = lane.carry_served + c.Context.served_ticks;
      starved_ticks = lane.carry_starved + c.Context.starved_ticks;
      yields = lane.yields;
      boosts = lane.boosts;
      shared = c.Context.shared_demand > 0;
      cache_hit = c.Context.cache_hits > 0;
      writer_commits = c.Context.writer_commits;
      latch_waits = c.Context.latch_waits;
      snapshot_retries = lane.retries;
      finish_commit = lane.finish_commit;
      fell_back = (match lane.stream with Some s -> Exec.stream_fell_back s | None -> false);
    }
  in
  let jobs = List.rev_map to_job !finished in
  {
    jobs;
    io_time;
    cpu_time;
    total_time = io_time +. cpu_time;
    page_reads = disk_after.Disk.reads - disk_before.Disk.reads;
    seek_distance = disk_after.Disk.seek_distance - disk_before.Disk.seek_distance;
    batched_reads = disk_after.Disk.batched_reads - disk_before.Disk.batched_reads;
    batch_pages = disk_after.Disk.batch_pages - disk_before.Disk.batch_pages;
    coalesce_runs = disk_after.Disk.coalesce_runs - disk_before.Disk.coalesce_runs;
    max_concurrent = !max_concurrent;
    turns = !turns;
    shared_jobs = List.length (List.filter (fun j -> j.shared) jobs);
    cache_hits = List.length (List.filter (fun j -> j.cache_hit) jobs);
    cache_misses =
      List.fold_left
        (fun a lane -> a + lane.ctx.Context.counters.Context.cache_misses)
        0 !finished;
    writer_commits = !commit_count;
    latch_waits =
      List.fold_left
        (fun a lane -> a + lane.ctx.Context.counters.Context.latch_waits)
        0 !finished;
    snapshot_retries = List.fold_left (fun a lane -> a + lane.retries) 0 !finished;
    cluster_stales =
      List.fold_left
        (fun a lane -> a + lane.ctx.Context.counters.Context.cluster_stales)
        0 !finished;
    commit_log = List.rev !commit_log;
    violations;
  }

let run ?config ?quantum ?ordered ~cold store specs =
  if specs = [] then invalid_arg "Workload.run: no queries";
  run_clients ?config ?quantum ?ordered ~cold store
    (Array.of_list (List.map (fun s -> [ s ]) specs))
