(** Concurrent multi-query workload engine.

    The session layer the paper's outlook anticipates: N queries admitted
    over {e one} shared {!Xnav_storage.Buffer_manager} /
    {!Xnav_storage.Io_scheduler}, their XSchedule/XScan/Simple iterators
    interleaved by a round-robin-with-cost-credit scheduler. Concurrent
    queries' cluster requests merge in the scheduler's pending set, so
    demand from different queries coalesces into the same sequential runs
    a single XSchedule already exploits — contention becomes sharing.

    {2 Scheduling}

    Each turn serves one query for a {e cost credit} (the [quantum],
    in simulated disk seconds): the query runs until its credit is spent,
    until it triggers a random I/O (the expensive event the paper's cost
    model penalises — the query yields immediately so cheaper work can
    run while the head is repositioned), or until it finishes. Queries
    whose queued demand is already cheap to serve — a demanded cluster is
    resident, falls inside another query's open scan window, or sits in a
    coalescible pending run ([pid±1] also pending) — are {e boosted}
    ahead of plain round-robin order, which is what turns cross-query
    contention into cross-query batching. Fairness is observable: the
    chosen query's {!Xnav_core.Context.counters.served_ticks} and every
    other runnable query's [starved_ticks] advance each turn.

    {2 Admission}

    A query is only admitted while its worst-case steady pin demand
    cannot wedge the pool (generalising the capacity-1
    release-before-acquire fix): every plan holds at most one steady pin
    (XSchedule's current cluster; Simple/XScan navigation pins are
    transient) plus one frame of headroom for the page being entered, so
    [n] concurrent queries need [2n] frames and the next query is
    admitted iff [2 (n + 1) <= capacity] — except that a query is
    {e always} admitted when it would run alone, which keeps tiny pools
    (capacity 1) live by degrading to serial execution. Batch installs
    can still transiently overcommit a small pool; that cannot deadlock,
    because a wedged query raises
    {!Xnav_storage.Buffer_manager.Buffer_full}, is torn down through
    {!Xnav_storage.Buffer_manager.abort_async} and is recomputed serially
    once the pool is quiescent (status {!constructor:Recovered}).

    {2 The repeat-traffic front door}

    With {!Xnav_core.Context.config.result_cache} set the engine serves
    repeated statements without re-executing them, at two levels.
    {e Level 1}: admission consults the process-wide
    {!Xnav_core.Result_cache} — a hit completes the job instantly (no
    lane, no planning, no I/O), and every completed stream job installs
    its answer for the next identical statement. {e Level 2}: if an
    identical statement is already in flight, the new job's pending
    cluster demand would duplicate work the pool is about to do anyway —
    it attaches as a {e follower} of the in-flight {e leader} lane and
    receives the leader's answer the instant the shared scan completes.
    Followers pin nothing and bypass admission; fairness credits
    ([served_ticks]) are charged to all sharers each time the leader is
    served, and each deduped job reports
    {!Xnav_core.Context.counters.shared_demand}. Jobs with a [timeout]
    never share (a follower's fate is its leader's). With the knob off
    (the default) both levels are inert and the engine reproduces the
    historical execution byte for byte.

    {2 Writers: online updates under concurrent reads}

    A spec whose [ops] list is non-empty is a {e writer job}: instead of
    evaluating a path it applies in-place updates
    ({!Xnav_store.Update.insert_element} / [delete_subtree]) against the
    same shared store, interleaved turn-by-turn with the readers. Three
    rules keep the mix coherent:

    - {e Cluster latches (writer–writer)}: each op declares its target
      cluster; a writer latches it exclusively for the op's duration
      (acquire one turn, commit the next — [latch_waits] counts blocked
      turns). At acquire time the target is re-validated; an op whose
      target a concurrent delete removed is skipped. Clusters an op
      escalates into mid-commit (overflow allocation, purged subtree
      pages) are not latched — the commit is atomic within the turn, so
      nothing else observes the escalation.
    - {e Snapshot reads (writer–reader)}: readers are latch-free. A
      stream records every cluster it observes and the mutation stamp it
      started under; a commit into an observed cluster
      ({!Xnav_store.Store.page_stamp} exceeding the snapshot) forces the
      stream to restart from scratch under a fresh stamp
      ([snapshot_retries]). Commits it never observed are invisible to
      it — a running query always sees a single consistent snapshot.
    - {e Cluster-granular invalidation}: a commit stales only the
      result-cache entries whose recorded cluster footprint intersects
      its write set ({!Xnav_core.Result_cache.stale_clusters}, counted
      as [cluster_stales]), the decoded views of the written clusters,
      and the path-partition classes they cover — repeat statements over
      untouched paths keep hitting the cache and the index across
      writer traffic.

    Each job's [finish_commit] records how many commits (engine-wide)
    preceded its completion, and [result.commit_log] lists the committed
    ops in serial order — together they make the concurrent schedule
    replayable: evaluating each reader's statement on a twin store after
    applying the first [finish_commit] ops must reproduce its answer.

    {2 Clocks}

    All latencies ([submitted]/[started]/[finished], and the derived
    [latency] and [pin_wait]) are measured on the simulated disk clock —
    deterministic, so percentiles are CI-stable. Process CPU time is
    reported separately at the engine level. *)

type update_op =
  | Insert_child of { parent : Xnav_store.Node_id.t; tag : Xnav_xml.Tag.t }
      (** Append a new last child under [parent]. *)
  | Delete_subtree of Xnav_store.Node_id.t
      (** Remove the subtree rooted at this (non-root) node. *)

type spec = {
  label : string;
  path : Xnav_xpath.Path.t;
  plan : Xnav_core.Plan.t;
  timeout : float option;
      (** Abort the job once it has been running (admitted) for this many
          simulated seconds. The abort unwinds through
          {!Xnav_storage.Buffer_manager.abort_async}; a timeout of [0.0]
          aborts before the first scheduling turn. *)
  ops : update_op list;
      (** Non-empty makes this a writer job: [path]/[plan] are unused, the
          ops are applied in order (two turns each), and the job reports
          no nodes. [[]] is a plain read job. *)
}

type status =
  | Completed  (** Ran to the end of its stream. *)
  | Timed_out  (** Aborted at its deadline; [nodes] is empty. *)
  | Recovered
      (** The stream raised [Buffer_full] under pool contention and was
          abandoned; the answer was recomputed serially with the Simple
          plan once the pool drained, so [nodes] is still correct. *)

val status_to_string : status -> string

type job = {
  job_label : string;
  client : int;
  status : status;
  nodes : Xnav_store.Store.info list;  (** Duplicate-free; document order if [ordered]. *)
  count : int;
  submitted : float;
  started : float;  (** Admission time; [started -. submitted] is the pin wait. *)
  finished : float;
  latency : float;  (** [finished -. submitted], simulated seconds. *)
  pin_wait : float;
  served_ticks : int;
  starved_ticks : int;
  yields : int;  (** Turns this job ended early by triggering a random I/O. *)
  boosts : int;  (** Turns this job was served ahead of round-robin order. *)
  shared : bool;
      (** The job was deduped into another client's identical in-flight
          scan (level 2) instead of executing its own. *)
  cache_hit : bool;
      (** The job was answered from the result cache at admission
          (level 1) — it never held a lane slot. *)
  writer_commits : int;  (** Ops this (writer) job committed. *)
  latch_waits : int;  (** Turns this writer spent blocked on a latch. *)
  snapshot_retries : int;
      (** Stream restarts forced by commits into observed clusters. *)
  finish_commit : int;
      (** Engine-wide commit count at this job's completion — the serial
          replay point at which its answer must be reproducible. *)
  fell_back : bool;
}

type result = {
  jobs : job list;  (** In completion order. *)
  io_time : float;
  cpu_time : float;
  total_time : float;
  page_reads : int;
  seek_distance : int;
  batched_reads : int;
  batch_pages : int;
  coalesce_runs : int;
  max_concurrent : int;  (** High-water mark of simultaneously admitted queries. *)
  turns : int;  (** Scheduling turns taken. *)
  shared_jobs : int;  (** Jobs deduped into a leader's shared scan. *)
  cache_hits : int;  (** Jobs answered from the result cache at admission. *)
  cache_misses : int;
      (** Completed stream jobs that installed their answer into the
          cache (0 with the front door off). *)
  writer_commits : int;  (** Total ops committed across all writers. *)
  latch_waits : int;
  snapshot_retries : int;
  cluster_stales : int;
      (** Result-cache entries proactively dropped because a commit's
          write set intersected their cluster footprint. *)
  commit_log : update_op list;
      (** Every committed op, in commit order — replaying this serially
          on a twin store reproduces the final document. *)
  violations : string list;
      (** Invariant violations found by the end-of-run sweep (always
          checked; a non-empty list here is an engine bug). With
          [config.validate] set the sweep additionally runs
          {!Xnav_core.Exec.stream_violations} per query and raises on any
          finding. *)
}

val run_clients :
  ?config:Xnav_core.Context.config ->
  ?quantum:float ->
  ?ordered:bool ->
  cold:bool ->
  Xnav_store.Store.t ->
  spec list array ->
  result
(** [run_clients store clients] runs one closed-loop client per array
    entry: each client submits its first job at engine start and its next
    job the moment the previous one finishes (in any status), until its
    list is exhausted. [quantum] is the per-turn cost credit in simulated
    seconds (default [0.004], about one random access); [ordered]
    (default [true]) sorts each job's nodes into document order. [cold]
    resets the buffer pool and disk clock first.
    @raise Failure if any frame is left pinned at the end, or (with
    [config.validate]) on an invariant violation. *)

val run :
  ?config:Xnav_core.Context.config ->
  ?quantum:float ->
  ?ordered:bool ->
  cold:bool ->
  Xnav_store.Store.t ->
  spec list ->
  result
(** [run store specs] submits every spec at once, each as its own
    single-job client — maximal concurrency, subject to admission. *)

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [0..100]: the nearest-rank percentile
    of [xs] (0 on an empty list). *)

val demand_frames : int
(** Worst-case steady pin demand per admitted query (one held frame plus
    one frame of headroom — see {e Admission} above). Exposed so the
    {!Shard} engine's per-shard admission applies the identical bound. *)
