module Store = Xnav_store.Store
module Import = Xnav_store.Import
module Node_id = Xnav_store.Node_id
module Disk = Xnav_storage.Disk
module Buffer_manager = Xnav_storage.Buffer_manager
module Io_scheduler = Xnav_storage.Io_scheduler
module Ordpath = Xnav_xml.Ordpath
module Path = Xnav_xpath.Path
module Context = Xnav_core.Context
module Plan = Xnav_core.Plan
module Exec = Xnav_core.Exec
module Result_cache = Xnav_core.Result_cache
module Vec = Xnav_core.Vec

(* Tenant placement must be stable across processes and tenant-list
   orders — it is part of the format, not an engine detail — so it can
   not use the polymorphic hash. FNV-1a over the name's bytes, masked
   to keep the accumulator positive on 32-bit-int platforms. *)
let stable_shard ~shards name =
  if shards < 1 then invalid_arg "Shard.stable_shard: shards must be >= 1";
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := ((!h lxor Char.code c) * 0x01000193) land 0x3FFFFFFF) name;
  !h mod shards

type site = { name : string; tix : int; shard_id : int; store : Store.t }
type shard = { id : int; disk : Disk.t; buffer : Buffer_manager.t }

type t = {
  shards : shard array;
  sites : site array;  (* tenant creation order; [tix] indexes here *)
  by_name : (string, site) Hashtbl.t;
}

let create ?(capacity = 1000) ?(policy = Io_scheduler.Elevator) ?replacement
    ?(strategy = Import.Dfs) ?page_size ?payload ~shards:k tenants =
  if k < 1 then invalid_arg "Shard.create: shards must be >= 1";
  if tenants = [] then invalid_arg "Shard.create: no tenants";
  let disk_config =
    match page_size with
    | None -> Disk.default_config
    | Some page_size -> { Disk.default_config with Disk.page_size }
  in
  let shards =
    Array.init k (fun id ->
        let disk = Disk.create ~config:disk_config () in
        { id; disk; buffer = Buffer_manager.create ~capacity ~policy ?replacement disk })
  in
  let by_name = Hashtbl.create 16 in
  let sites =
    Array.mapi
      (fun tix (name, doc) ->
        if Hashtbl.mem by_name name then
          invalid_arg (Printf.sprintf "Shard.create: duplicate tenant %S" name);
        let shard_id = stable_shard ~shards:k name in
        let s = shards.(shard_id) in
        (* Imports append: co-located tenants share the shard's disk,
           each starting at the current page frontier. *)
        let import = Import.run ~strategy ?payload s.disk doc in
        let site = { name; tix; shard_id; store = Store.attach s.buffer import } in
        Hashtbl.replace by_name name site;
        site)
      (Array.of_list tenants)
  in
  { shards; sites; by_name }

let shard_count t = Array.length t.shards
let tenant_count t = Array.length t.sites

let site_of t name =
  match Hashtbl.find_opt t.by_name name with
  | Some site -> site
  | None -> invalid_arg (Printf.sprintf "Shard: unknown tenant %S" name)

let shard_of t name = (site_of t name).shard_id
let store t name = (site_of t name).store

type tjob = { tenant : string; spec : Workload.spec }

type tenant_stat = {
  tenant : string;
  shard : int;
  jobs : int;
  p50 : float;
  p99 : float;
  served_ticks : int;
  starved_ticks : int;
  cache_hits : int;
}

type shard_stat = {
  shard : int;
  tenants : int;
  page_reads : int;
  io_time : float;
  turns : int;
  scan_resist_hits : int;
}

type result = {
  jobs : (string * Workload.job) list;
  tenant_stats : tenant_stat list;
  shard_stats : shard_stat list;
  turns : int;
  rebalance_moves : int;
  max_concurrent : int;
  cpu_time : float;
  io_time : float;
  page_reads : int;
  cache_hits : int;
  violations : string list;
}

(* A lane is one admitted read job on its tenant's shard. Compared to
   the single-pool engine there is no writer/snapshot/follower
   machinery: jobs are read-only and shared-scan dedup is not offered
   (see the interface). [touched] still records the stream's cluster
   footprint so completed answers install cluster-granular cache
   entries. *)
type lane = {
  site : site;
  client : int;
  spec : Workload.spec;
  submitted_at : float;
  started_at : float;
  ctx : Context.t;
  stream : Exec.stream option;  (* [None] = answered from the cache at admission *)
  seen : unit Node_id.Tbl.t;
  nodes : Store.info Vec.t;
  touched : (int, unit) Hashtbl.t;
  mutable sorted : Store.info list option;
  mutable yields : int;
  mutable boosts : int;
  mutable status : Workload.status;
  mutable done_at : float;
}

let doc_order (a : Store.info) (b : Store.info) = Ordpath.compare a.Store.ordpath b.Store.ordpath
let step_cap = 256

let run_clients ?config ?(quantum = 0.004) ?(ordered = true) ~cold t clients =
  if Array.length clients = 0 then invalid_arg "Shard.run_clients: no clients";
  Array.iter
    (List.iter (fun (j : tjob) ->
         if j.spec.Workload.ops <> [] then
           invalid_arg
             "Shard.run_clients: writer jobs are not supported; route updates through \
              Workload.run_clients on the owning tenant's store";
         ignore (site_of t j.tenant)))
    clients;
  let k = Array.length t.shards in
  let nt = Array.length t.sites in
  if cold then
    Array.iter
      (fun s ->
        Buffer_manager.reset s.buffer;
        Disk.reset_clock s.disk)
      t.shards;
  let cfg = match config with Some c -> c | None -> Context.default_config in
  let front_door = cfg.Context.result_cache in
  let cpu_before = Sys.time () in
  let disk_before = Array.map (fun s -> Disk.stats s.disk) t.shards in
  let io_before = Array.map (fun s -> Disk.elapsed s.disk) t.shards in
  let buf_before = Array.map (fun s -> Buffer_manager.stats s.buffer) t.shards in
  let now sid = Disk.elapsed t.shards.(sid).disk in

  (* Closed-loop clients, one waiting queue per shard: a job queues at
     its tenant's shard and waits there for that shard's admission. *)
  let remaining = Array.map (fun l -> ref l) clients in
  let waiting = Array.init k (fun _ -> Queue.create ()) in
  let active = Array.make k [] in
  let rr = Array.make k 0 in
  let served_turns = Array.make k 0 in
  let finished = ref [] in
  let max_concurrent = ref 0 in
  let global_turns = ref 0 in
  let grr = ref 0 in
  let rebalance_moves = ref 0 in
  (* Cross-tenant fairness state: the global turn at which each tenant
     was last served (or admitted — arrival resets its aging). *)
  let last_served = Array.make nt 0 in
  let total_active () = Array.fold_left (fun a l -> a + List.length l) 0 active in
  let submit client =
    match !(remaining.(client)) with
    | [] -> ()
    | { tenant; spec } :: rest ->
      remaining.(client) := rest;
      let site = site_of t tenant in
      Queue.add (client, site, spec, now site.shard_id) waiting.(site.shard_id)
  in
  Array.iteri (fun client _ -> submit client) clients;

  let make_lane ~site ~client ~spec ~submitted_at ~stream =
    {
      site;
      client;
      spec;
      submitted_at;
      started_at = now site.shard_id;
      ctx =
        (match stream with
        | Some s -> Exec.stream_ctx s
        | None -> Context.create ~config:cfg site.store);
      stream;
      seen = Node_id.Tbl.create 64;
      nodes = Vec.create ();
      touched = Hashtbl.create 16;
      sorted = None;
      yields = 0;
      boosts = 0;
      status = Workload.Completed;
      done_at = 0.0;
    }
  in

  (* Answer installation mirrors the single-pool engine: footprint from
     the touch log, footprint-free for index-seeded runs. Entries key on
     the tenant store's uid + identity, so co-located tenants on one
     shard can never alias. *)
  let cache_fill lane =
    if front_door then begin
      let nodes = Vec.sorted_to_list doc_order lane.nodes in
      lane.sorted <- Some nodes;
      let c = lane.ctx.Context.counters in
      c.Context.cache_misses <- 1;
      let clusters =
        if c.Context.index_entries > 0 then None
        else begin
          let pids = Hashtbl.fold (fun pid () acc -> pid :: acc) lane.touched [] in
          Some (Array.of_list (List.sort_uniq compare pids))
        end
      in
      c.Context.cache_evictions <-
        Result_cache.add ?clusters lane.site.store
          (Path.to_string lane.spec.Workload.path)
          ~count:(List.length nodes) nodes
    end
  in

  let finish lane status =
    let sid = lane.site.shard_id in
    active.(sid) <- List.filter (fun l -> l != lane) active.(sid);
    lane.status <- status;
    lane.done_at <- now sid;
    finished := lane :: !finished;
    (match (status, lane.stream) with
    | Workload.Completed, Some _ -> cache_fill lane
    | _ -> ());
    submit lane.client
  in

  let admit sid =
    let q = waiting.(sid) in
    let capacity = Buffer_manager.capacity t.shards.(sid).buffer in
    let stop = ref false in
    while (not !stop) && not (Queue.is_empty q) do
      let client, site, spec, submitted_at = Queue.peek q in
      match
        if front_door then Result_cache.find site.store (Path.to_string spec.Workload.path)
        else None
      with
      | Some entry ->
        (* Level-1 hit: the job completes at admission, no lane slot. *)
        ignore (Queue.pop q);
        let lane = make_lane ~site ~client ~spec ~submitted_at ~stream:None in
        lane.ctx.Context.counters.Context.cache_hits <- 1;
        lane.sorted <- Some (Result_cache.nodes entry);
        lane.done_at <- now sid;
        finished := lane :: !finished;
        submit client
      | None ->
        let n = List.length active.(sid) in
        (* The single-pool admission bound, applied per shard: each
           shard's pool only has to absorb its own lanes' pin demand. *)
        if n = 0 || Workload.demand_frames * (n + 1) <= capacity then begin
          ignore (Queue.pop q);
          let stream = Exec.prepare ?config site.store spec.Workload.path spec.Workload.plan in
          let lane = make_lane ~site ~client ~spec ~submitted_at ~stream:(Some stream) in
          active.(sid) <- active.(sid) @ [ lane ];
          last_served.(site.tix) <- max last_served.(site.tix) !global_turns;
          let tot = total_active () in
          if tot > !max_concurrent then max_concurrent := tot
        end
        else stop := true
    done
  in

  (* The per-shard boost predicate, against that shard's pool and
     scheduler and the scan windows of its co-resident lanes. *)
  let boosted sid lanes lane =
    match lane.stream with
    | None -> false
    | Some stream -> (
      match Exec.stream_demand stream with
      | [] -> false
      | demand ->
        let buffer = t.shards.(sid).buffer in
        let sched = Buffer_manager.scheduler buffer in
        let windows =
          List.filter_map
            (fun l -> if l == lane then None else Option.bind l.stream Exec.stream_scan_window)
            lanes
        in
        List.exists
          (fun pid ->
            Buffer_manager.resident buffer pid
            || (Io_scheduler.is_pending sched pid
               && (Io_scheduler.is_pending sched (pid - 1)
                  || Io_scheduler.is_pending sched (pid + 1)))
            || List.exists (fun (lo, hi) -> pid >= lo && pid <= hi) windows)
          demand)
  in

  let serve lane =
    match lane.stream with
    | None -> ()
    | Some stream ->
      let sid = lane.site.shard_id in
      let disk = t.shards.(sid).disk in
      let saved = Store.swap_touch_log lane.site.store (Some lane.touched) in
      let start = now sid in
      let steps = ref 0 in
      let running = ref true in
      while !running do
        let rnd0 = (Disk.stats disk).Disk.random_reads in
        match Exec.stream_next stream with
        | None ->
          finish lane Workload.Completed;
          running := false
        | Some info ->
          incr steps;
          if not (Node_id.Tbl.mem lane.seen info.Store.id) then begin
            Node_id.Tbl.replace lane.seen info.Store.id ();
            Vec.push lane.nodes info
          end;
          if (Disk.stats disk).Disk.random_reads > rnd0 then begin
            lane.yields <- lane.yields + 1;
            running := false
          end
          else if now sid -. start >= quantum || !steps >= step_cap then running := false
        | exception Buffer_manager.Buffer_full ->
          Exec.stream_abandon stream;
          finish lane Workload.Recovered;
          running := false
      done;
      ignore (Store.swap_touch_log lane.site.store saved)
  in

  let pending_work () =
    Array.exists (fun l -> l <> []) active
    || Array.exists (fun q -> not (Queue.is_empty q)) waiting
  in
  while pending_work () do
    for sid = 0 to k - 1 do
      admit sid
    done;
    (* Deadlines, each on the owning shard's clock. *)
    Array.iteri
      (fun sid lanes ->
        let tnow = now sid in
        List.iter
          (fun lane ->
            match (lane.spec.Workload.timeout, lane.stream) with
            | Some dt, Some stream when tnow -. lane.started_at >= dt ->
              Exec.stream_abandon stream;
              finish lane Workload.Timed_out
            | _ -> ())
          lanes)
      active;
    let cands = ref [] in
    for sid = k - 1 downto 0 do
      if active.(sid) <> [] then cands := sid :: !cands
    done;
    match !cands with
    | [] -> ()
    | cands ->
      incr global_turns;
      (* Level 2, the global balancer: round-robin over shards with
         runnable lanes — unless a tenant's pressure (turns unserved)
         exceeds the gate, in which case that tenant is served directly
         wherever it lives. The window scales with the load: under n
         active lanes a fair rotation serves each about every n turns,
         so 2n + 4 flags a genuinely starved tenant, not a slow rotation. *)
      let nc = List.length cands in
      let default_sid = List.nth cands (!grr mod nc) in
      incr grr;
      let threshold = (2 * total_active ()) + 4 in
      let worst = ref None in
      Array.iter
        (List.iter (fun l ->
             let p = !global_turns - last_served.(l.site.tix) in
             match !worst with
             | Some (wp, ws) when wp > p || (wp = p && ws.tix <= l.site.tix) -> ()
             | _ -> worst := Some (p, l.site)))
        active;
      let focus =
        match !worst with Some (p, site) when p > threshold -> Some site | _ -> None
      in
      let sid = match focus with Some site -> site.shard_id | None -> default_sid in
      served_turns.(sid) <- served_turns.(sid) + 1;
      (* Level 1, within the chosen shard: round-robin rotation with the
         cheap-demand boost override, exactly the single-pool rule. *)
      let lanes = active.(sid) in
      let n = List.length lanes in
      let kk = rr.(sid) mod n in
      rr.(sid) <- rr.(sid) + 1;
      let rotated =
        List.filteri (fun i _ -> i >= kk) lanes @ List.filteri (fun i _ -> i < kk) lanes
      in
      let head = List.hd rotated in
      let default_pick =
        match List.filter (boosted sid lanes) rotated with [] -> head | b :: _ -> b
      in
      let pick =
        match focus with
        | Some site -> (
          match List.find_opt (fun l -> l.site == site) rotated with
          | Some l ->
            if l != default_pick then incr rebalance_moves;
            l
          | None -> default_pick)
        | None -> default_pick
      in
      if pick != head && pick == default_pick then pick.boosts <- pick.boosts + 1;
      let c = pick.ctx.Context.counters in
      c.Context.served_ticks <- c.Context.served_ticks + 1;
      last_served.(pick.site.tix) <- !global_turns;
      (* Starvation is engine-wide: every other runnable lane, on any
         shard, waited this turn — that makes served/starved ratios
         comparable across tenants, which is what the gate protects. *)
      Array.iter
        (List.iter (fun l ->
             if l != pick then begin
               let c = l.ctx.Context.counters in
               c.Context.starved_ticks <- c.Context.starved_ticks + 1
             end))
        active;
      serve pick
  done;

  (* Pools are quiescent: recompute abandoned lanes serially with the
     Simple plan, charging the recompute to the job on its shard clock. *)
  List.iter
    (fun lane ->
      if lane.status = Workload.Recovered then begin
        let sid = lane.site.shard_id in
        let io0 = now sid in
        let r = Exec.run ?config ~ordered:false lane.site.store lane.spec.Workload.path Plan.simple in
        Vec.clear lane.nodes;
        List.iter (Vec.push lane.nodes) r.Exec.nodes;
        lane.done_at <- lane.done_at +. (now sid -. io0)
      end)
    (List.rev !finished);

  Array.iter
    (fun s ->
      let pinned = Buffer_manager.pinned_count s.buffer in
      if pinned <> 0 then
        failwith (Printf.sprintf "Shard.run_clients: shard %d left %d pages pinned" s.id pinned))
    t.shards;
  let violations =
    let v = ref [] in
    let fail fmt = Printf.ksprintf (fun msg -> v := msg :: !v) fmt in
    Array.iter
      (fun s ->
        let pending = Io_scheduler.pending_count (Buffer_manager.scheduler s.buffer) in
        if pending <> 0 then
          fail "shard %d: %d requests still pending after the workload" s.id pending;
        let completed = Buffer_manager.completed_count s.buffer in
        if completed <> 0 then
          fail "shard %d: %d batch-installed pages never delivered" s.id completed;
        match Buffer_manager.consistency_error s.buffer with
        | None -> ()
        | Some msg -> fail "shard %d: %s" s.id msg)
      t.shards;
    let validate =
      match config with Some c -> c.Context.validate | None -> Context.default_config.Context.validate
    in
    if validate then
      List.iter
        (fun lane ->
          match lane.stream with
          | None -> ()
          | Some stream ->
            List.iter
              (fun msg -> fail "%s [%s/%s]" msg lane.site.name lane.spec.Workload.label)
              (Exec.stream_violations stream))
        !finished;
    List.rev !v
  in
  if violations <> [] && (match config with Some c -> c.Context.validate | None -> false) then
    failwith (Printf.sprintf "Shard invariant violation: %s" (String.concat "; " violations));

  let to_job lane =
    let nodes =
      if lane.status = Workload.Timed_out then []
      else
        match lane.sorted with
        | Some ns -> ns
        | None ->
          if ordered then Vec.sorted_to_list doc_order lane.nodes else Vec.to_list lane.nodes
    in
    let c = lane.ctx.Context.counters in
    ( lane.site.name,
      {
        Workload.job_label = lane.spec.Workload.label;
        client = lane.client;
        status = lane.status;
        nodes;
        count = List.length nodes;
        submitted = lane.submitted_at;
        started = lane.started_at;
        finished = lane.done_at;
        latency = lane.done_at -. lane.submitted_at;
        pin_wait = lane.started_at -. lane.submitted_at;
        served_ticks = c.Context.served_ticks;
        starved_ticks = c.Context.starved_ticks;
        yields = lane.yields;
        boosts = lane.boosts;
        shared = false;
        cache_hit = c.Context.cache_hits > 0;
        writer_commits = 0;
        latch_waits = 0;
        snapshot_retries = 0;
        finish_commit = 0;
        fell_back = (match lane.stream with Some s -> Exec.stream_fell_back s | None -> false);
      } )
  in
  let jobs = List.rev_map to_job !finished in
  let shard_stats =
    Array.to_list
      (Array.mapi
         (fun sid s ->
           let da = Disk.stats s.disk and db = disk_before.(sid) in
           let ba = Buffer_manager.stats s.buffer and bb = buf_before.(sid) in
           {
             shard = sid;
             tenants =
               Array.fold_left (fun a site -> if site.shard_id = sid then a + 1 else a) 0 t.sites;
             page_reads = da.Disk.reads - db.Disk.reads;
             io_time = Disk.elapsed s.disk -. io_before.(sid);
             turns = served_turns.(sid);
             scan_resist_hits =
               ba.Buffer_manager.scan_resist_hits - bb.Buffer_manager.scan_resist_hits;
           })
         t.shards)
  in
  let tenant_stats =
    Array.to_list
      (Array.map
         (fun site ->
           let mine = List.filter (fun (name, _) -> name = site.name) jobs in
           let lats = List.map (fun (_, (j : Workload.job)) -> j.Workload.latency) mine in
           {
             tenant = site.name;
             shard = site.shard_id;
             jobs = List.length mine;
             p50 = Workload.percentile lats 50.0;
             p99 = Workload.percentile lats 99.0;
             served_ticks =
               List.fold_left (fun a (_, j) -> a + j.Workload.served_ticks) 0 mine;
             starved_ticks =
               List.fold_left (fun a (_, j) -> a + j.Workload.starved_ticks) 0 mine;
             cache_hits =
               List.fold_left (fun a (_, j) -> a + if j.Workload.cache_hit then 1 else 0) 0 mine;
           })
         t.sites)
  in
  {
    jobs;
    tenant_stats;
    shard_stats;
    turns = !global_turns;
    rebalance_moves = !rebalance_moves;
    max_concurrent = !max_concurrent;
    cpu_time = Sys.time () -. cpu_before;
    io_time = List.fold_left (fun a (s : shard_stat) -> a +. s.io_time) 0.0 shard_stats;
    page_reads = List.fold_left (fun a (s : shard_stat) -> a + s.page_reads) 0 shard_stats;
    cache_hits = List.length (List.filter (fun (_, (j : Workload.job)) -> j.Workload.cache_hit) jobs);
    violations;
  }
