(** Sharded multi-document tenancy: K independent storage stacks under
    one two-level scheduler.

    The {!Workload} engine multiplexes N queries over {e one}
    [Disk]/[Io_scheduler]/[Buffer_manager] stack. This module scales the
    session layer out: a shard manager owns [K] such stacks ({e shards}),
    places each {e tenant} document on a shard by a stable hash of its
    name ({!stable_shard} — placement survives process restarts and
    tenant-list reorderings), and routes client jobs through a
    {e two-level cost-credit scheduler}:

    - {e Level 1 — per-shard}: within a shard, lanes rotate round-robin
      with the same cost-credit quantum, random-I/O yield and
      cheap-demand {e boost} the single-pool engine uses, so intra-shard
      contention still becomes cross-query batching.
    - {e Level 2 — global balancer}: each engine turn picks the shard to
      serve, round-robin over shards with runnable lanes, under a
      {e cross-tenant fairness gate}: every tenant's {e pressure} (global
      turns since it was last served or admitted) is tracked, and when
      the worst pressure exceeds [2 * active_lanes + 4] turns the gate
      overrides the balancer and serves that tenant's lane directly
      (counted in {!type-result.rebalance_moves}). A co-located tenant
      running scans can therefore delay a neighbour by at most one gate
      window — no tenant's served/starved ratio collapses.

    Shards are fully independent: separate simulated disks (and clocks),
    separate buffer pools, separate I/O schedulers. All latencies are
    measured on the {e owning shard's} clock, so per-tenant percentiles
    are deterministic and CI-stable. Combined with the scan-resistant 2Q
    pool policy ({!Xnav_core.Context.config.scan_resistant}, applied to
    each shard's pool at stream preparation), a tenant's sequential
    scans recycle their own probationary pages instead of flushing a
    co-located tenant's hot set.

    Jobs are {e read-only}: writer specs are rejected — online updates
    go through {!Workload.run_clients} on the owning tenant's store,
    where the latch/snapshot machinery lives. The level-1 repeat-traffic
    front door ({!Xnav_core.Result_cache} consultation at admission and
    answer installation at completion) is kept per tenant — entries key
    on the tenant store's uid and content digest, so co-located tenants
    can never serve each other's answers. Cross-client shared-scan
    dedup (the single-pool engine's level 2) is {e not} offered here:
    followers would couple lanes across the balancer's fairness
    accounting, and the result cache already absorbs the repeat traffic
    one turn later. *)

type t
(** A shard topology: K storage stacks with tenant documents placed on
    them. Create once, run many workloads against it. *)

val stable_shard : shards:int -> string -> int
(** [stable_shard ~shards name] is the shard (in [0 .. shards-1]) that
    tenant [name] maps to: FNV-1a over the name's bytes, reduced mod
    [shards]. Pure and process-independent — the placement function is
    part of the format, exposed for tests and capacity planning.
    @raise Invalid_argument if [shards < 1]. *)

val create :
  ?capacity:int ->
  ?policy:Xnav_storage.Io_scheduler.policy ->
  ?replacement:Xnav_storage.Buffer_manager.replacement ->
  ?strategy:Xnav_store.Import.strategy ->
  ?page_size:int ->
  ?payload:int ->
  shards:int ->
  (string * Xnav_xml.Tree.t) list ->
  t
(** [create ~shards tenants] builds [shards] independent
    disk/scheduler/buffer stacks (each pool of [capacity] frames,
    default 1000, scheduler [policy] default [Elevator], victim
    selection [replacement] default [Lru]) and imports each named tenant
    document onto its {!stable_shard} with [strategy] (default [Dfs]);
    [page_size] and [payload] are the disk page size and per-cluster
    byte cap, defaulting as {!Xnav_storage.Disk.default_config} and
    {!Xnav_store.Import.run} do. Documents hashing to the same shard
    share that shard's disk (imports append) and compete for its pool.
    @raise Invalid_argument if [shards < 1], [tenants] is empty, or a
    tenant name repeats. *)

val shard_count : t -> int
val tenant_count : t -> int

val shard_of : t -> string -> int
(** The shard holding this tenant.
    @raise Invalid_argument on an unknown tenant. *)

val store : t -> string -> Xnav_store.Store.t
(** The tenant's attached store — for direct (serial) runs against the
    same physical placement, e.g. the differential tier's per-tenant
    replay. @raise Invalid_argument on an unknown tenant. *)

type tjob = { tenant : string; spec : Workload.spec }
(** One client job: a read spec addressed to a tenant. [spec.ops] must
    be empty. *)

type tenant_stat = {
  tenant : string;
  shard : int;
  jobs : int;
  p50 : float;  (** Median job latency, simulated seconds (shard clock). *)
  p99 : float;  (** Tail job latency — the per-tenant gate the bench enforces. *)
  served_ticks : int;
  starved_ticks : int;
  cache_hits : int;
}

type shard_stat = {
  shard : int;
  tenants : int;  (** Tenant documents placed on this shard. *)
  page_reads : int;
  io_time : float;  (** Simulated seconds this shard's disk spent. *)
  turns : int;  (** Engine turns the balancer granted this shard. *)
  scan_resist_hits : int;
      (** Protected-queue hits in this shard's pool (0 with 2Q off). *)
}

type result = {
  jobs : (string * Workload.job) list;
      (** (tenant, job) in completion order. Writer fields are 0 and
          [shared] is false (no followers in the sharded engine). *)
  tenant_stats : tenant_stat list;  (** One per tenant, creation order. *)
  shard_stats : shard_stat list;  (** One per shard, id order. *)
  turns : int;  (** Global balancer turns. *)
  rebalance_moves : int;
      (** Turns the cross-tenant fairness gate overrode the balancer's
          round-robin pick. *)
  max_concurrent : int;  (** High-water mark of admitted lanes, all shards. *)
  cpu_time : float;
  io_time : float;  (** Sum of the shards' simulated disk time. *)
  page_reads : int;  (** Sum over shards. *)
  cache_hits : int;  (** Jobs answered from the result cache at admission. *)
  violations : string list;
      (** Per-shard invariant sweep findings (prefixed with the shard
          id); non-empty means an engine bug. *)
}

val run_clients :
  ?config:Xnav_core.Context.config ->
  ?quantum:float ->
  ?ordered:bool ->
  cold:bool ->
  t ->
  tjob list array ->
  result
(** [run_clients t clients] runs one closed-loop client per array entry
    (as {!Workload.run_clients}): each client submits its next job the
    moment the previous finishes; jobs queue at their tenant's shard and
    are admitted under the per-shard pin-demand bound
    ([{!Workload.demand_frames} * (n+1) <= capacity], alone always
    admissible). [quantum] is the per-turn cost credit in simulated
    seconds (default [0.004]); [cold] resets every shard's pool and disk
    clock first.
    @raise Invalid_argument on an empty client array, an unknown tenant,
    or a writer spec.
    @raise Failure if any shard's frames are left pinned, or (with
    [config.validate]) on an invariant violation. *)
