module Store = Xnav_store.Store
module Node_id = Xnav_store.Node_id
module Node_record = Xnav_store.Node_record
module Buffer_manager = Xnav_storage.Buffer_manager
module Io_scheduler = Xnav_storage.Io_scheduler
module Disk = Xnav_storage.Disk
open Path_instance

type item = { s_l : int; n_l : Node_id.t; s_r : int; target : Node_id.t }

type t = {
  ctx : Context.t;
  path_len : int;
  contexts : unit -> Node_id.t option;
  queue : (int, item Queue.t) Hashtbl.t;  (* cluster -> pending items *)
  mutable qsize : int;
  visited : (int, unit) Hashtbl.t;
  mutable ready : int list;  (* resident clusters with queued items *)
  mutable refused : int list;  (* clusters whose prefetch the buffer refused *)
  mutable current : (int * Store.view) option;
  agenda : Path_instance.t Queue.t;  (* instances for the current cluster *)
  mutable exhausted : bool;
  mutable window_next : int;  (* next page of the active scan window *)
  mutable window_hi : int;  (* inclusive bound; window_next > window_hi = inactive *)
  mutable visit_lo : int;  (* smallest cluster visited so far; max_int before any *)
  mutable visit_hi : int;  (* largest cluster visited so far; -1 before any *)
}

let create ctx ~path_len ~contexts =
  {
    ctx;
    path_len;
    contexts;
    queue = Hashtbl.create 64;
    qsize = 0;
    visited = Hashtbl.create 64;
    ready = [];
    refused = [];
    current = None;
    agenda = Queue.create ();
    exhausted = false;
    window_next = 0;
    window_hi = -1;
    visit_lo = max_int;
    visit_hi = -1;
  }

let queue_size t = t.qsize
let refused_count t = List.length t.refused

let queued_clusters t = Hashtbl.fold (fun pid _ acc -> pid :: acc) t.queue []

let scan_window t = if t.window_next <= t.window_hi then Some (t.window_next, t.window_hi) else None

let buffer t = Store.buffer t.ctx.Context.store

(* Queue an item and make sure its cluster's I/O has been requested. A
   refused prefetch (every frame pinned) is remembered in [refused] and
   retried by the dispatch loop once pins are released — dropping it here
   would strand the queued items forever. *)
let enqueue t item =
  let cluster = Node_id.cluster item.target in
  let fresh = not (Hashtbl.mem t.queue cluster) in
  let q =
    match Hashtbl.find_opt t.queue cluster with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.replace t.queue cluster q;
      q
  in
  Queue.add item q;
  t.qsize <- t.qsize + 1;
  let c = t.ctx.Context.counters in
  c.Context.q_enqueued <- c.Context.q_enqueued + 1;
  if t.qsize > c.Context.q_peak then c.Context.q_peak <- t.qsize;
  if fresh then begin
    Context.emit t.ctx (fun () -> Printf.sprintf "XSchedule: async request for cluster %d" cluster);
    let is_current = match t.current with Some (pid, _) -> pid = cluster | None -> false in
    if not is_current then begin
      match Buffer_manager.prefetch (buffer t) cluster with
      | Buffer_manager.Resident ->
        if not (List.mem cluster t.ready) then t.ready <- cluster :: t.ready
      | Buffer_manager.Scheduled -> ()
      | Buffer_manager.Refused ->
        c.Context.prefetch_refusals <- c.Context.prefetch_refusals + 1;
        if not (List.mem cluster t.refused) then t.refused <- cluster :: t.refused
    end
  end

(* Re-submit refused prefetches (clusters may have become loadable since
   pins were released, or even resident through another path). *)
let retry_refused t =
  match t.refused with
  | [] -> ()
  | refused ->
    t.refused <- [];
    List.iter
      (fun cluster ->
        if Hashtbl.mem t.queue cluster then begin
          match Buffer_manager.prefetch (buffer t) cluster with
          | Buffer_manager.Resident ->
            if not (List.mem cluster t.ready) then t.ready <- cluster :: t.ready
          | Buffer_manager.Scheduled -> ()
          | Buffer_manager.Refused -> t.refused <- cluster :: t.refused
        end)
      refused

let push t ~s_l ~n_l ~s_r ~target =
  let cluster = Node_id.cluster target in
  if t.ctx.Context.config.Context.speculative && Hashtbl.mem t.visited cluster then
    (* Already visited: the speculative instances generated there subsume
       this continuation. *)
    ()
  else enqueue t { s_l; n_l; s_r; target }

let replenish t =
  (* At least one queued item per round even for a degenerate k <= 0,
     otherwise the producer is never drained and contexts are lost. *)
  let target = max 1 t.ctx.Context.config.Context.k in
  while (not t.exhausted) && t.qsize < target do
    match t.contexts () with
    | None -> t.exhausted <- true
    | Some id -> enqueue t { s_l = 0; n_l = id; s_r = 0; target = id }
  done

(* Turn a queued item into an instance against the current view. *)
let instantiate view item =
  let slot = item.target.Node_id.slot in
  let n_r =
    match Store.get view slot with
    | Node_record.Core core -> R_core { view; slot; core }
    | Node_record.Up _ -> R_entry { view; slot }
    | Node_record.Down _ ->
      invalid_arg "Xschedule: queued target is a Down border"
  in
  { s_l = item.s_l; n_l = item.n_l; left_incomplete = false; s_r = item.s_r; n_r }

let speculate t view =
  List.iter
    (fun slot ->
      let id = Store.id_of view slot in
      for step = 0 to t.path_len - 1 do
        t.ctx.Context.counters.Context.specs_created <-
          t.ctx.Context.counters.Context.specs_created + 1;
        Queue.add
          { s_l = step; n_l = id; left_incomplete = true; s_r = step; n_r = R_entry { view; slot } }
          t.agenda
      done)
    (Store.up_slots view)

(* Drain the queued items of cluster [pid] into the agenda (against
   [view]), speculating on first visit if configured. *)
let load_agenda t pid view =
  let first_visit = not (Hashtbl.mem t.visited pid) in
  if first_visit then begin
    Hashtbl.replace t.visited pid ();
    if pid < t.visit_lo then t.visit_lo <- pid;
    if pid > t.visit_hi then t.visit_hi <- pid;
    t.ctx.Context.counters.Context.clusters_visited <-
      t.ctx.Context.counters.Context.clusters_visited + 1
  end;
  (match Hashtbl.find_opt t.queue pid with
  | None -> ()
  | Some q ->
    Queue.iter (fun item -> Queue.add (instantiate view item) t.agenda) q;
    t.qsize <- t.qsize - Queue.length q;
    t.ctx.Context.counters.Context.q_served <-
      t.ctx.Context.counters.Context.q_served + Queue.length q;
    Hashtbl.remove t.queue pid);
  if
    first_visit
    && t.ctx.Context.config.Context.speculative
    && not (Context.fallback t.ctx)
  then speculate t view

let release_current t =
  match t.current with
  | None -> ()
  | Some (_, view) ->
    Store.release t.ctx.Context.store view;
    t.current <- None

let make_current t pid view =
  release_current t;
  Context.emit t.ctx (fun () -> Printf.sprintf "XSchedule: cluster %d loaded, serving its queue" pid);
  t.current <- Some (pid, view);
  load_agenda t pid view

(* Tear the operator down mid-run: release the current pin, cancel
   outstanding prefetches and drop all queued work (accounted in
   [q_dropped] so conservation checks still balance). Used by [Exec]
   when the in-place fallback cannot proceed and the whole plan is
   recomputed with the simple method. *)
let abandon t =
  release_current t;
  Queue.clear t.agenda;
  t.ready <- [];
  t.refused <- [];
  t.window_next <- 0;
  t.window_hi <- -1;
  t.ctx.Context.counters.Context.q_dropped <-
    t.ctx.Context.counters.Context.q_dropped + t.qsize;
  Hashtbl.reset t.queue;
  t.qsize <- 0;
  t.exhausted <- true;
  Buffer_manager.abort_async (buffer t)

(* Pick the next ready (resident) cluster to serve. Min-pid keeps the
   historical LIFO pop; the cost-sensitive policy weighs each candidate
   by queued instance count — resident clusters all cost one transfer to
   re-fix, so the cost divisor cancels — with min-pid as tie-break. *)
let take_ready t =
  match t.ready with
  | [] -> None
  | pid :: rest -> begin
    match t.ctx.Context.config.Context.serve_policy with
    | Context.Serve_min_pid ->
      t.ready <- rest;
      Some pid
    | Context.Serve_cost ->
      let qlen p = match Hashtbl.find_opt t.queue p with Some q -> Queue.length q | None -> 0 in
      let best =
        List.fold_left
          (fun best p ->
            match best with
            | Some b when qlen p > qlen b || (qlen p = qlen b && p < b) -> Some p
            | None -> Some p
            | some -> some)
          None t.ready
      in
      (match best with
      | Some p ->
        t.ready <- List.filter (fun x -> x <> p) t.ready;
        Some p
      | None -> None)
  end

(* Pick a queued cluster to serve directly (no pending I/O for it). The
   historical rule is the smallest pending page id — deterministic across
   hash-table iteration orders. The cost-sensitive rule is the paper's:
   weight = queued instance count ÷ estimated access cost from the
   current head position (a resident cluster costs only a transfer),
   min-pid breaking exact weight ties. *)
let pick_direct t =
  match t.ctx.Context.config.Context.serve_policy with
  | Context.Serve_min_pid ->
    Hashtbl.fold
      (fun pid _ best -> match best with Some b when b < pid -> best | _ -> Some pid)
      t.queue None
  | Context.Serve_cost ->
    let buf = buffer t in
    let disk = Buffer_manager.disk buf in
    let weight pid q =
      let cost =
        if Buffer_manager.resident buf pid then (Disk.config disk).Disk.transfer
        else Disk.read_cost disk pid
      in
      float_of_int (Queue.length q) /. cost
    in
    Hashtbl.fold
      (fun pid q best ->
        let w = weight pid q in
        match best with
        | Some (bw, bpid) when bw > w || (bw = w && bpid < pid) -> best
        | _ -> Some (w, pid))
      t.queue None
    |> Option.map snd

(* Adaptive hybrid (tentpole layer 3): when the demand stream has been
   visiting its page region densely — the visited-cluster count over the
   visited span exceeds [scan_threshold] — the query is on an XScan-like
   trajectory: nearly every page ahead will be demanded too, and each
   will pay [async_overhead] on top of its transfer when it arrives as a
   separate request. (Pending-set density is useless as the signal here:
   demand discovery keeps only a handful of requests outstanding at any
   instant, however dense the eventual access pattern.) So stream ahead:
   open a bounded sequential window just past the visited frontier and
   sweep it page by page with synchronous sequential reads, serving
   queued items and seeding speculative instances exactly as XScan does
   (via [load_agenda]'s speculation), then fall back to demand
   scheduling. The window is bounded by half the buffer so read-ahead
   cannot wash the pool, and it only opens while demand is still
   outstanding. Not started in fallback mode: fallback must not create
   speculative work. *)
let start_scan_window t =
  let threshold = t.ctx.Context.config.Context.scan_threshold in
  if threshold <= 0.0 || Context.fallback t.ctx then false
  else begin
    let sched = Buffer_manager.scheduler (buffer t) in
    let pending = Io_scheduler.pending_count sched in
    let visited = Hashtbl.length t.visited in
    let store = t.ctx.Context.store in
    let last_page = Store.first_page store + Store.page_count store - 1 in
    if (pending = 0 && t.qsize = 0) || visited < 4 || t.visit_hi >= last_page then false
    else begin
      let density = float_of_int visited /. float_of_int (t.visit_hi - t.visit_lo + 1) in
      if density >= threshold then begin
        let span = max 8 (Buffer_manager.capacity (buffer t) / 2) in
        t.window_next <- t.visit_hi + 1;
        t.window_hi <- min last_page (t.visit_hi + span);
        let c = t.ctx.Context.counters in
        c.Context.scan_windows <- c.Context.scan_windows + 1;
        Context.emit t.ctx (fun () ->
            Printf.sprintf "XSchedule: scan window over pages %d..%d (density %.2f)" t.window_next
              t.window_hi density);
        true
      end
      else false
    end
  end

(* Next page the active scan window should visit: one with queued items,
   or an unvisited one (worth reading for its speculative seeds and as
   free read-ahead — the stream is already positioned). A visited page
   with nothing queued is skipped without I/O, and any pending request it
   still holds is cancelled as stale — otherwise stale requests could
   keep the pending set dense and re-trigger windows that sweep nothing,
   a livelock. *)
let rec advance_window t =
  if t.window_next > t.window_hi then None
  else begin
    let pid = t.window_next in
    t.window_next <- pid + 1;
    if Hashtbl.mem t.queue pid || not (Hashtbl.mem t.visited pid) then Some pid
    else begin
      ignore (Io_scheduler.cancel (Buffer_manager.scheduler (buffer t)) pid);
      advance_window t
    end
  end

let rec next t =
  match Queue.take_opt t.agenda with
  | Some instance -> Some instance
  | None -> begin
    replenish t;
    (* Serve remaining items for the current cluster first. *)
    match t.current with
    | Some (pid, view) when Hashtbl.mem t.queue pid ->
      load_agenda t pid view;
      next t
    | _ ->
      (* The current cluster is done: release its pin *before* acquiring
         the next view, so even a one-frame buffer makes progress, then
         give refused prefetches another chance now that the pin is
         gone. *)
      release_current t;
      retry_refused t;
      if sweep_window t then next t
      else begin
        match take_ready t with
        | Some pid ->
          if Hashtbl.mem t.queue pid then begin
            make_current t pid (Store.view t.ctx.Context.store pid);
            next t
          end
          else next t
        | None ->
          if start_scan_window t then next t
          else begin
            let window = t.ctx.Context.config.Context.coalesce_window in
            match Buffer_manager.await_one ~window (buffer t) with
            | Some (pid, frame) ->
              let view = Store.view_of_frame t.ctx.Context.store frame in
              if Hashtbl.mem t.queue pid then begin
                make_current t pid view;
                next t
              end
              else begin
                (* A stale request (its items were served through another
                   path); drop the pin and keep going. *)
                Store.release t.ctx.Context.store view;
                next t
              end
            | None ->
              if t.qsize = 0 then None (* replenish guarantees exhaustion here *)
              else begin
                (* Items remain but have no pending I/O: their clusters
                   are resident (or were evicted meanwhile, or their
                   prefetch was refused); [pick_direct] serves one so the
                   pick — and with it the I/O trace — is deterministic. *)
                match pick_direct t with
                | Some pid ->
                  (* [Store.view] may raise [Buffer_full]. For a
                     stand-alone run that cannot happen (the current pin
                     was released above, so at least one frame is
                     evictable); under concurrent streams the other
                     queries' pins can exhaust the pool, and the raised
                     [Buffer_full] is the driver's signal to tear this
                     stream down and recover (fallback restart, or the
                     workload layer's serial recompute). *)
                  make_current t pid (Store.view t.ctx.Context.store pid);
                  next t
                | None ->
                  failwith
                    (Printf.sprintf
                       "Xschedule: queue accounting broken: qsize=%d with no queued cluster"
                       t.qsize)
              end
          end
      end
  end

(* One step of the active scan window: visit the next worthwhile page in
   the range sequentially, cancelling its pending request (the stream
   supersedes it). Returns whether a page was made current. On a pin
   shortage the window is abandoned and the remaining pending requests
   are left for the demand path. *)
and sweep_window t =
  if t.window_next <= t.window_hi && t.qsize = 0 && Io_scheduler.pending_count (Buffer_manager.scheduler (buffer t)) = 0
  then begin
    (* Demand dried up mid-window: the sweep is read-ahead for demand,
       so reading on would charge transfers nobody will use. *)
    t.window_next <- 0;
    t.window_hi <- -1
  end;
  match advance_window t with
  | None -> false
  | Some pid -> begin
    let sched = Buffer_manager.scheduler (buffer t) in
    let was_pending = Io_scheduler.cancel sched pid in
    match Store.view t.ctx.Context.store pid with
    | view ->
      let c = t.ctx.Context.counters in
      c.Context.scan_window_pages <- c.Context.scan_window_pages + 1;
      make_current t pid view;
      true
    | exception Buffer_manager.Buffer_full ->
      if was_pending then Io_scheduler.submit sched pid;
      t.window_next <- 0;
      t.window_hi <- -1;
      false
  end
