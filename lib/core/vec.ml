type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length v = v.len

let clear v =
  (* Keep the storage: the point of the buffer is reuse across drains. *)
  v.len <- 0

let push v x =
  let cap = Array.length v.data in
  if v.len = cap then begin
    let grown = Array.make (if cap = 0 then 16 else 2 * cap) x in
    Array.blit v.data 0 grown 0 v.len;
    v.data <- grown
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get: index out of bounds";
  v.data.(i)

let top v = if v.len = 0 then invalid_arg "Vec.top: empty" else v.data.(v.len - 1)

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  v.data.(v.len)

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let to_array v = Array.sub v.data 0 v.len

let to_list v =
  let rec go i acc = if i < 0 then acc else go (i - 1) (v.data.(i) :: acc) in
  go (v.len - 1) []

let of_list xs =
  let v = create () in
  List.iter (push v) xs;
  v

(* Sort the live prefix in place (a single final sort replaces the
   list-sort-per-drain pattern in the executors). *)
let sort cmp v = Array.sort cmp (if v.len = Array.length v.data then v.data else (
  let exact = Array.sub v.data 0 v.len in
  v.data <- exact;
  exact))

let sorted_to_list cmp v =
  sort cmp v;
  to_list v
