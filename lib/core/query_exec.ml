module Store = Xnav_store.Store
module Node_id = Xnav_store.Node_id
module Path = Xnav_xpath.Path
module Query = Xnav_xpath.Query
module Disk = Xnav_storage.Disk
module Buffer_manager = Xnav_storage.Buffer_manager
module Ordpath = Xnav_xml.Ordpath

type result = {
  nodes : Store.info list;
  count : int;
  io_time : float;
  cpu_time : float;
  total_time : float;
  segments : int;
  predicate_checks : int;
}

(* --- predicate evaluation over the store -------------------------------- *)

let rec holds store id = function
  | Query.Exists steps -> exists_branch store id steps
  | Query.And (a, b) -> holds store id a && holds store id b
  | Query.Or (a, b) -> holds store id a || holds store id b
  | Query.Not p -> not (holds store id p)

and exists_branch store id = function
  | [] -> true
  | (q : Query.qstep) :: rest ->
    let next = Store.global_axis store q.Query.step.Path.axis id in
    let rec try_next () =
      match next () with
      | None -> false
      | Some (info : Store.info) ->
        if
          Path.matches q.Query.step.Path.test info.Store.tag
          && List.for_all (holds store info.Store.id) q.Query.predicates
          && exists_branch store info.Store.id rest
        then true
        else try_next ()
    in
    try_next ()

(* --- segment decomposition ------------------------------------------------ *)

(* Split a branch into (trunk steps, trailing predicates) segments: each
   segment's trunk ends at the first predicated step. *)
let segments_of branch =
  let rec go trunk = function
    | [] -> if trunk = [] then [] else [ (List.rev trunk, []) ]
    | (q : Query.qstep) :: rest ->
      if q.Query.predicates = [] then go (q.Query.step :: trunk) rest
      else (List.rev (q.Query.step :: trunk), q.Query.predicates) :: go [] rest
  in
  go [] branch

let run ?(choice = Compile.Auto) ?config ?contexts ?(ordered = true) ~cold store query =
  if query = [] then invalid_arg "Query_exec.run: empty query";
  let buffer = Store.buffer store in
  let disk = Buffer_manager.disk buffer in
  if cold then begin
    Buffer_manager.reset buffer;
    Disk.reset_clock disk
  end;
  let io_before = Disk.elapsed disk in
  let cpu_before = Sys.time () in
  let root_contexts = match contexts with Some c -> c | None -> [ Store.root store ] in
  let segment_count = ref 0 in
  let predicate_checks = ref 0 in

  let run_branch branch =
    List.fold_left
      (fun contexts (trunk, predicates) ->
        if contexts = [] then []
        else begin
          incr segment_count;
          let context_is_root =
            match contexts with [ c ] -> Node_id.equal c (Store.root store) | _ -> false
          in
          let plan = Compile.compile ~choice ~context_is_root store trunk in
          let seg = Exec.run ?config ~contexts ~ordered:false store trunk plan in
          List.filter_map
            (fun (info : Store.info) ->
              if predicates = [] then Some info.Store.id
              else begin
                incr predicate_checks;
                if List.for_all (holds store info.Store.id) predicates then
                  Some info.Store.id
                else None
              end)
            seg.Exec.nodes
        end)
      root_contexts (segments_of branch)
  in

  let all = List.concat_map run_branch query in
  (* Union merge: deduplicate into a flat buffer, one final sort. *)
  let seen = Node_id.Tbl.create 256 in
  let distinct = Vec.create () in
  List.iter
    (fun id ->
      if not (Node_id.Tbl.mem seen id) then begin
        Node_id.Tbl.replace seen id ();
        Vec.push distinct (Store.info store id)
      end)
    all;
  if ordered then
    Vec.sort (fun (a : Store.info) b -> Ordpath.compare a.ordpath b.ordpath) distinct;
  let count = Vec.length distinct in
  let nodes = Vec.to_list distinct in
  let cpu_time = Sys.time () -. cpu_before in
  let io_time = Disk.elapsed disk -. io_before in
  {
    nodes;
    count;
    io_time;
    cpu_time;
    total_time = io_time +. cpu_time;
    segments = !segment_count;
    predicate_checks = !predicate_checks;
  }
