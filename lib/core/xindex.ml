module Store = Xnav_store.Store
module Node_id = Xnav_store.Node_id
module Node_record = Xnav_store.Node_record
module Path_partition = Xnav_store.Path_partition
module Path = Xnav_xpath.Path
open Path_instance

(* A border continuation XAssembly handed back: resume step [s_r + 1]
   at [target] (same shape as {!Xschedule.push}). *)
type item = { s_l : int; n_l : Node_id.t; s_r : int; target : Node_id.t }

(* A fully resolved class served covering: ids, ordpath labels and the
   class tag are all in the partition, so results need no page at all. *)
type cov = { ids : Node_id.t array; labels : Xnav_xml.Ordpath.t array; tag : Xnav_xml.Tag.t }

type t = {
  ctx : Context.t;
  path_len : int;
  resolved : int;  (* seeds enter the chain with S_R = resolved *)
  covering : cov array;  (* non-empty only when [resolved = path_len] *)
  mutable cov_class : int;
  mutable cov_idx : int;
  entries : Node_id.t array;  (* residual mode: entries in (cluster, slot) order *)
  mutable entry_idx : int;
  factory : unit -> unit -> Node_id.t option;
  mutable contexts : unit -> Node_id.t option;  (* only used after fallback *)
  mutable view : Store.view option;
  agenda : Path_instance.t Queue.t;
  pending : (int, item Queue.t) Hashtbl.t;  (* cluster -> continuations *)
  mutable pending_count : int;
  mutable restarted : bool;
}

(* Resolution depth and the partition classes matching the resolved
   prefix — shared by {!create} and {!usable}. The summary resolves
   self/child prefixes exactly; a descendant step ends exact resolution
   (its matches sit at arbitrary depths), so cap any requested depth
   there and leave the rest to the XStep tail. *)
let plan_classes partition ~path ~resolve =
  let exact = Path.indexable_prefix path in
  let resolved = match resolve with None -> exact | Some k -> max 0 (min k exact) in
  let prefix = Path.prefix path resolved in
  (resolved, prefix, Path_partition.select partition ~matches:(Path.matches_sequence prefix))

(* Whether the partition may seed this query: every class the resolved
   prefix selects must still describe the store (no mutation touched its
   entry clusters, no insert added a member), and no inserted node with
   a tag sequence the import never saw may match the prefix (such nodes
   belong to no class, so the entry lists cannot cover them). Fresh
   stores are always usable; after updates, exactly the untouched query
   shapes stay index-served. *)
let usable store ~path ~resolve =
  match Store.partition store with
  | None -> false
  | Some partition ->
    Store.stats_fresh store
    ||
    let _, prefix, classes = plan_classes partition ~path ~resolve in
    List.for_all (fun c -> Store.class_fresh store c) classes
    && not (List.exists (Path.matches_sequence prefix) (Store.novel_sequences store))

let create ctx ~path ~resolve ~contexts =
  let store = ctx.Context.store in
  let partition =
    match Store.partition store with
    | Some p when usable store ~path ~resolve -> p
    | Some _ | None -> invalid_arg "Xindex: store has no fresh path partition"
  in
  let path_len = Path.length path in
  let resolved, _prefix, classes = plan_classes partition ~path ~resolve in
  let covering, entries =
    if resolved = path_len then
      ( classes
        |> List.map (fun c ->
               {
                 ids = Path_partition.class_entries partition c;
                 labels = Path_partition.class_labels partition c;
                 tag = Path_partition.class_tag partition c;
               })
        |> Array.of_list,
        [||] )
    else begin
      let entries =
        classes
        |> List.concat_map (fun c -> Array.to_list (Path_partition.class_entries partition c))
        |> Array.of_list
      in
      Array.sort Node_id.compare entries;
      ([||], entries)
    end
  in
  {
    ctx;
    path_len;
    resolved;
    covering;
    cov_class = 0;
    cov_idx = 0;
    entries;
    entry_idx = 0;
    factory = contexts;
    contexts = (fun () -> None);
    view = None;
    agenda = Queue.create ();
    pending = Hashtbl.create 16;
    pending_count = 0;
    restarted = false;
  }

let resolved t = t.resolved
let covering t = t.resolved = t.path_len

let entry_count t =
  Array.length t.entries
  + Array.fold_left (fun acc c -> acc + Array.length c.ids) 0 t.covering

let pending_size t = t.pending_count

let release_view t =
  match t.view with
  | None -> ()
  | Some view ->
    Store.release t.ctx.Context.store view;
    t.view <- None

let counters t = t.ctx.Context.counters

let visit t pid =
  release_view t;
  counters t |> fun c ->
  c.Context.clusters_visited <- c.Context.clusters_visited + 1;
  c.Context.index_clusters <- c.Context.index_clusters + 1;
  let view = Store.view t.ctx.Context.store pid in
  t.view <- Some view;
  view

(* Materialise the continuations waiting on [pid] against its view —
   the same target mapping as {!Xschedule}'s instantiate. *)
let drain_pending t pid view =
  match Hashtbl.find_opt t.pending pid with
  | None -> ()
  | Some q ->
    Hashtbl.remove t.pending pid;
    Queue.iter
      (fun item ->
        t.pending_count <- t.pending_count - 1;
        (counters t).Context.index_residuals <- (counters t).Context.index_residuals + 1;
        let slot = item.target.Node_id.slot in
        let n_r =
          match Store.get view slot with
          | Node_record.Core core -> R_core { view; slot; core }
          | Node_record.Up _ -> R_entry { view; slot }
          | Node_record.Down _ -> invalid_arg "Xindex: continuation target is a Down record"
        in
        Queue.add
          { s_l = item.s_l; n_l = item.n_l; left_incomplete = false; s_r = item.s_r; n_r }
          t.agenda)
      q

let push t ~s_l ~n_l ~s_r ~target =
  let cluster = Node_id.cluster target in
  let q =
    match Hashtbl.find_opt t.pending cluster with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.add t.pending cluster q;
      q
  in
  Queue.add { s_l; n_l; s_r; target } q;
  t.pending_count <- t.pending_count + 1

let min_pending t =
  Hashtbl.fold (fun pid _ acc -> match acc with Some m when m <= pid -> acc | _ -> Some pid)
    t.pending None

(* Tear the operator down mid-run; see {!Xschedule.abandon}. The index
   holds at most its current view and schedules no asynchronous I/O. *)
let abandon t =
  release_view t;
  Queue.clear t.agenda;
  Hashtbl.reset t.pending;
  t.pending_count <- 0;
  t.entry_idx <- Array.length t.entries;
  t.cov_class <- Array.length t.covering;
  t.restarted <- true;
  t.contexts <- (fun () -> None)

(* Next covering result, straight from the partition: no view, no page. *)
let rec cov_next t =
  if t.cov_class >= Array.length t.covering then None
  else begin
    let c = t.covering.(t.cov_class) in
    if t.cov_idx >= Array.length c.ids then begin
      t.cov_class <- t.cov_class + 1;
      t.cov_idx <- 0;
      cov_next t
    end
    else begin
      let i = t.cov_idx in
      t.cov_idx <- i + 1;
      (counters t).Context.index_entries <- (counters t).Context.index_entries + 1;
      let id = c.ids.(i) in
      let info = { Store.id; tag = c.tag; ordpath = c.labels.(i) } in
      Some { s_l = 0; n_l = id; left_incomplete = false; s_r = t.path_len; n_r = R_info info }
    end
  end

let rec next t =
  if Context.fallback t.ctx && not t.restarted then begin
    (* Fallback: drop the index, restart the contexts, act as identity
       (the border-transparent XStep chain recomputes from scratch). *)
    t.restarted <- true;
    release_view t;
    Queue.clear t.agenda;
    Hashtbl.reset t.pending;
    t.pending_count <- 0;
    t.entry_idx <- Array.length t.entries;
    t.cov_class <- Array.length t.covering;
    t.contexts <- t.factory ()
  end;
  if t.restarted then begin
    match t.contexts () with
    | None -> None
    | Some id ->
      let info = Store.info t.ctx.Context.store id in
      Some { s_l = 0; n_l = id; left_incomplete = false; s_r = 0; n_r = R_info info }
  end
  else begin
    match cov_next t with
    | Some instance -> Some instance
    | None -> (
      match Queue.take_opt t.agenda with
      | Some instance -> Some instance
      | None ->
        if t.entry_idx < Array.length t.entries then begin
          let pid = Node_id.cluster t.entries.(t.entry_idx) in
          Context.emit t.ctx (fun () -> Printf.sprintf "XIndex: seed cluster %d" pid);
          let view = visit t pid in
          while
            t.entry_idx < Array.length t.entries
            && Node_id.cluster t.entries.(t.entry_idx) = pid
          do
            let id = t.entries.(t.entry_idx) in
            t.entry_idx <- t.entry_idx + 1;
            let slot = id.Node_id.slot in
            match Store.get view slot with
            | Node_record.Core core ->
              (counters t).Context.index_entries <- (counters t).Context.index_entries + 1;
              Queue.add
                {
                  s_l = 0;
                  n_l = id;
                  left_incomplete = false;
                  s_r = t.resolved;
                  n_r = R_core { view; slot; core };
                }
                t.agenda
            | Node_record.Down _ | Node_record.Up _ ->
              invalid_arg "Xindex: partition entry is a border record"
          done;
          (* Continuations already waiting on this cluster ride along —
             no second visit. *)
          drain_pending t pid view;
          next t
        end
        else begin
          match min_pending t with
          | None ->
            release_view t;
            None
          | Some pid ->
            Context.emit t.ctx (fun () -> Printf.sprintf "XIndex: resume cluster %d" pid);
            let view = visit t pid in
            drain_pending t pid view;
            next t
        end)
  end
