(** Runtime invariant checks for completed plan executions.

    A plan run that terminates normally must leave the storage layer
    exactly as it found it and its counters must balance. These checks
    are the second half of the correctness story (the differential
    harness in [lib/check] being the first): a plan can produce the
    right node set while leaking pins or dangling I/O requests, and such
    leaks only bite runs later, under a different configuration.

    Enforced after every run when {!Context.config.validate} is set
    (see {!Exec.run}):

    - [Buffer_manager.pinned_count = 0] — no page leaks;
    - [Io_scheduler.pending_count = 0] and its pending/order structures
      agree — no dangling or dead requests;
    - [Xschedule.queue_size = 0] and no refused prefetch was stranded;
    - [Xindex.pending_size = 0] — no residual continuation stranded —
      and the index counters balance (clusters pinned by XIndex are a
      subset of all visits; no seed without a pin);
    - counters are non-negative and conserve:
      [specs_resolved <= specs_stored], [s_peak <= specs_stored],
      [q_served = q_enqueued], and the final result count equals
      XAssembly's [results_emitted] (reordered plans emit
      duplicate-free). *)

val post_run :
  ?xschedule:Xschedule.t -> ?xindex:Xindex.t -> ?results:int -> Context.t -> string list
(** All violations found, empty if the run state is consistent.
    [xschedule] / [xindex] enable the respective drain checks; [results]
    (the plan's final node count) enables the result-conservation check
    — pass it only for reordered plans, whose emissions are
    duplicate-free. *)

val enforce : ?xschedule:Xschedule.t -> ?xindex:Xindex.t -> ?results:int -> Context.t -> unit
(** @raise Failure listing every violation, if any. *)
