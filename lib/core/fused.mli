(** The fused step-chain automaton: one operator per location path.

    The reordered plans historically evaluated a path as a chain of
    per-step {!Xstep} iterators under XAssembly — every extension paid a
    [Path_instance] allocation and a closure dispatch per step. Following
    Maneth & Nguyen (XPath whole-query optimisation), this module
    compiles the whole downward path into a single operator: an explicit
    state machine whose work-stack holds one enumeration frame per
    partially-matched step, with the per-state axis and node test read
    from a flat array.

    The chain's pull discipline is depth-first search; the fused
    operator runs the same DFS with an explicit stack, so emission order
    and every store/buffer effect are identical — in particular the I/O
    trace is byte-for-byte that of the chain (verified by the [fused]
    differential tier). Only CPU-side mechanics change: intermediate
    instances are never allocated ([instances] counts results and
    deferred crossings only), and per-step dispatch becomes an array
    index.

    Border handling is unchanged: an inter-cluster edge at step [i]
    emits a right-incomplete instance [{... s_r = i-1; n_r = R_pending}]
    without disturbing the stack, so XAssembly, XSchedule pinning,
    admission control and the workload layer see exactly the shapes they
    saw from the chain. Fallback mode is consulted each time a frame is
    pushed — the same moment the chain chose Local vs Global enumeration
    for a freshly consumed instance.

    Counters: [fused_transitions] (cursor emissions consumed) and
    [fused_states] (frames pushed) in {!Context.counters}. *)

val create :
  Context.t ->
  path:Xnav_xpath.Path.t ->
  (unit -> Path_instance.t option) ->
  unit ->
  Path_instance.t option
(** [create ctx ~path producer] fuses the whole chain [XStep_1 ..
    XStep_n] over [producer] (an I/O operator's [next]). Instances whose
    [s_r] is already [length path] — covering-index results, restarted
    identity feeds — and upstream-deferred crossings are forwarded
    untouched, like the chain forwarded anything not produced by the
    step below.

    @raise Invalid_argument on an empty path. *)
