module Store = Xnav_store.Store
module Node_id = Xnav_store.Node_id
module Path = Xnav_xpath.Path
module Disk = Xnav_storage.Disk
module Buffer_manager = Xnav_storage.Buffer_manager
module Ordpath = Xnav_xml.Ordpath

type metrics = {
  io_time : float;
  cpu_time : float;
  total_time : float;
  page_reads : int;
  sequential_reads : int;
  random_reads : int;
  seek_distance : int;
  buffer_lookups : int;
  buffer_hits : int;
  buffer_misses : int;
  async_reads : int;
  batched_reads : int;
  batch_pages : int;
  coalesce_runs : int;
  scan_windows : int;
  scan_window_pages : int;
  instances : int;
  crossings : int;
  specs_created : int;
  specs_stored : int;
  specs_resolved : int;
  s_peak : int;
  q_peak : int;
  q_enqueued : int;
  q_served : int;
  clusters_visited : int;
  swizzle_hits : int;
  swizzle_misses : int;
  index_entries : int;
  index_clusters : int;
  index_residuals : int;
  fused_transitions : int;
  fused_states : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  shared_demand : int;
  writer_commits : int;
  latch_waits : int;
  snapshot_retries : int;
  cluster_stales : int;
  scan_resist_hits : int;
  fell_back : bool;
}

type result = { nodes : Store.info list; count : int; metrics : metrics }

let of_list items =
  let remaining = ref items in
  fun () ->
    match !remaining with
    | [] -> None
    | x :: rest ->
      remaining := rest;
      Some x

(* Build the result iterator for [plan]; also hand back the I/O operator
   (if the plan has one) so post-run invariants can inspect it and a
   stuck post-fallback pipeline can be torn down. *)
let pipeline ctx store path plan contexts =
  let path_len = Path.length path in
  match (plan : Plan.t) with
  | Plan.Simple { dedup_intermediate } ->
    let infos = List.map (fun id -> Store.info store id) contexts in
    let producer =
      List.fold_left
        (fun producer step -> Unnest_map.create ctx ~step ~dedup:dedup_intermediate producer)
        (of_list infos) path
    in
    (producer, None, None, None)
  | Plan.Reordered { io; dslash; fused } ->
    if not (Path.is_downward path) then
      invalid_arg "Exec.run: reordered plans require downward axes only";
    (* Both knobs must agree: the plan's [fused] field and the context
       config's kill switch. Off reproduces the per-step chain (and its
       counter stream) exactly. *)
    let fused = fused && ctx.Context.config.Context.fused in
    let chain base =
      if fused then Fused.create ctx ~path base
      else
        List.fold_left
          (fun (producer, i) step -> (Xstep.create ctx ~i ~step producer, i + 1))
          (base, 1) path
        |> fst
    in
    let schedule_pipeline () =
      let sched = Xschedule.create ctx ~path_len ~contexts:(of_list contexts) in
      let top = chain (fun () -> Xschedule.next sched) in
      (Xassembly.create ctx ~path_len ~xschedule:(Some sched) ~dslash:false top, Some sched, None, None)
    in
    (match io with
    | Plan.Io_schedule _ -> schedule_pipeline ()
    | Plan.Io_scan ->
      let sorted = List.sort Node_id.compare contexts in
      let scan = Xscan.create ctx ~path_len ~contexts:(fun () -> of_list sorted) in
      let top = chain (fun () -> Xscan.next scan) in
      (Xassembly.create ctx ~path_len ~xschedule:None ~dslash top, None, Some scan, None)
    | Plan.Io_index { resolve } ->
      let can_index =
        Xindex.usable store ~path ~resolve
        && match contexts with [ c ] -> Node_id.equal c (Store.root store) | _ -> false
      in
      if can_index then begin
        let index = Xindex.create ctx ~path ~resolve ~contexts:(fun () -> of_list contexts) in
        let top = chain (fun () -> Xindex.next index) in
        ( Xassembly.create ctx ~path_len ~xschedule:None ~xindex:index ~dslash:false top,
          None,
          None,
          Some index )
      end
      else
        (* Missing or stale partition — the entry lists no longer
           describe the document — or non-root contexts, which the
           partition's root-anchored classes cannot seed. Degrade to
           the schedule shape: same results, no index counters. *)
        schedule_pipeline ())

let run ?config ?contexts ?trace ?(ordered = true) store path plan =
  if path = [] then invalid_arg "Exec.run: empty path";
  let contexts = match contexts with Some c -> c | None -> [ Store.root store ] in
  let config =
    match (config, plan) with
    | Some c, _ -> c
    | None, Plan.Reordered { io = Plan.Io_schedule { speculative }; _ } ->
      { Context.default_config with Context.speculative }
    | None, _ -> Context.default_config
  in
  let ctx = Context.create ~config store in
  ctx.Context.trace <- trace;
  let buffer = Store.buffer store in
  (* The eviction-policy knob travels with the config: knob-off runs put
     the pool back on the historical exact LRU before the first fix. *)
  Buffer_manager.set_scan_resistant buffer config.Context.scan_resistant;
  let disk = Buffer_manager.disk buffer in
  let disk_before = Disk.stats disk in
  let io_before = Disk.elapsed disk in
  let buf_before = Buffer_manager.stats buffer in
  let swiz_hits_before, swiz_misses_before = Store.swizzle_stats store in
  let cpu_before = Sys.time () in

  (* The repeat-traffic front door: root-context statements are answered
     from the result cache before any planning or I/O happens. Only the
     root context is cacheable — that is what repeated statements are —
     and the stamp check inside [Result_cache.find] guarantees an
     updated store never serves a stale answer. *)
  let cache_key =
    if
      config.Context.result_cache
      && (match contexts with [ c ] -> Node_id.equal c (Store.root store) | _ -> false)
    then Some (Path.to_string path)
    else None
  in
  match (match cache_key with Some key -> Result_cache.find store key | None -> None) with
  | Some entry ->
    let c = ctx.Context.counters in
    c.Context.cache_hits <- 1;
    let cpu_time = Sys.time () -. cpu_before in
    {
      nodes = Result_cache.nodes entry;
      count = Result_cache.count entry;
      metrics =
        {
          io_time = 0.0;
          cpu_time;
          total_time = cpu_time;
          page_reads = 0;
          sequential_reads = 0;
          random_reads = 0;
          seek_distance = 0;
          buffer_lookups = 0;
          buffer_hits = 0;
          buffer_misses = 0;
          async_reads = 0;
          batched_reads = 0;
          batch_pages = 0;
          coalesce_runs = 0;
          scan_windows = 0;
          scan_window_pages = 0;
          instances = 0;
          crossings = 0;
          specs_created = 0;
          specs_stored = 0;
          specs_resolved = 0;
          s_peak = 0;
          q_peak = 0;
          q_enqueued = 0;
          q_served = 0;
          clusters_visited = 0;
          swizzle_hits = 0;
          swizzle_misses = 0;
          index_entries = 0;
          index_clusters = 0;
          index_residuals = 0;
          fused_transitions = 0;
          fused_states = 0;
          cache_hits = 1;
          cache_misses = 0;
          cache_evictions = 0;
          shared_demand = 0;
          writer_commits = 0;
          latch_waits = 0;
          snapshot_retries = 0;
          cluster_stales = 0;
          scan_resist_hits = 0;
          fell_back = false;
        };
    }
  | None ->

  (* While a cacheable run executes, record the clusters it reads: the
     footprint makes the installed entry survive writes to other
     clusters (see {!Result_cache}). The log nests — the previous one
     (a workload lane's, typically) is restored afterwards. *)
  let touched =
    match cache_key with Some _ -> Some (Hashtbl.create 32) | None -> None
  in
  let saved_log = match touched with Some _ -> Store.swap_touch_log store touched | None -> None in
  let next, xschedule, xscan, xindex = pipeline ctx store path plan contexts in
  let out = Vec.create () in
  let drain next =
    let rec go () =
      match next () with
      | None -> ()
      | Some info ->
        Vec.push out info;
        go ()
    in
    go ()
  in
  let restarted =
    try
      drain next;
      false
    with Buffer_manager.Buffer_full when Context.fallback ctx ->
      (* After a fallback the XSteps re-navigate globally, which needs a
         free buffer frame — but the I/O operator still pins its current
         cluster, so a near-minimal buffer can wedge. Tear the pipeline
         down (releasing that pin and cancelling its I/O) and recompute
         the whole query with the simple method, as the paper's fallback
         prescribes. *)
      Option.iter Xschedule.abandon xschedule;
      Option.iter Xscan.abandon xscan;
      Option.iter Xindex.abandon xindex;
      Vec.clear out;
      drain (let p, _, _, _ = pipeline ctx store path Plan.simple contexts in p);
      true
  in
  (match touched with Some _ -> ignore (Store.swap_touch_log store saved_log) | None -> ());

  let cpu_time = Sys.time () -. cpu_before in
  let io_time = Disk.elapsed disk -. io_before in
  let disk_after = Disk.stats disk in
  let buf_after = Buffer_manager.stats buffer in
  let swiz_hits_after, swiz_misses_after = Store.swizzle_stats store in
  let c = ctx.Context.counters in
  c.Context.swizzle_hits <- swiz_hits_after - swiz_hits_before;
  c.Context.swizzle_misses <- swiz_misses_after - swiz_misses_before;
  c.Context.scan_resist_hits <-
    buf_after.Buffer_manager.scan_resist_hits - buf_before.Buffer_manager.scan_resist_hits;
  let pinned = Buffer_manager.pinned_count buffer in
  if pinned <> 0 then failwith (Printf.sprintf "Exec.run: %d pages left pinned" pinned);

  (* Final duplicate elimination (reordered plans are already
     duplicate-free through R, but the Simple method needs it, Sec. 5.1)
     and re-established document order (Sec. 5.5) — one dedup pass into
     a flat array, one in-place sort. *)
  let seen = Node_id.Tbl.create (max 16 (Vec.length out)) in
  let distinct = Vec.create () in
  Vec.iter
    (fun (i : Store.info) ->
      if not (Node_id.Tbl.mem seen i.id) then begin
        Node_id.Tbl.replace seen i.id ();
        Vec.push distinct i
      end)
    out;
  if ordered then
    Vec.sort (fun (a : Store.info) b -> Ordpath.compare a.ordpath b.ordpath) distinct;
  let count = Vec.length distinct in
  let nodes = Vec.to_list distinct in

  (* Cache fill after a miss. Entries always hold document order so a
     hit can serve ordered and unordered callers alike. *)
  (match cache_key with
  | None -> ()
  | Some key ->
    c.Context.cache_misses <- 1;
    let sorted =
      if ordered then nodes
      else
        List.sort (fun (a : Store.info) b -> Ordpath.compare a.ordpath b.ordpath) nodes
    in
    (* Index-seeded runs derive their seeds from the partition, not from
       page reads, so no touch-log footprint can cover a write that
       would change them — install those entries footprint-less (staled
       by any mutation, the conservative pre-footprint rule). *)
    let clusters =
      if c.Context.index_entries > 0 then None
      else
        Option.map
          (fun tbl ->
            let pids = Hashtbl.fold (fun pid () acc -> pid :: acc) tbl [] in
            let a = Array.of_list pids in
            Array.sort compare a;
            a)
          touched
    in
    c.Context.cache_evictions <- Result_cache.add ?clusters store key ~count sorted);

  if config.Context.validate then begin
    (* Result conservation only applies when XAssembly produced the
       final answer — not after a restart, which leaves its counters at
       the aborted attempt's values. *)
    let results =
      match (plan, restarted) with
      | Plan.Reordered _, false -> Some count
      | _ -> None
    in
    Invariant.enforce ?xschedule ?xindex ?results ctx
  end;
  {
    nodes;
    count;
    metrics =
      {
        io_time;
        cpu_time;
        total_time = io_time +. cpu_time;
        page_reads = disk_after.Disk.reads - disk_before.Disk.reads;
        sequential_reads = disk_after.Disk.sequential_reads - disk_before.Disk.sequential_reads;
        random_reads = disk_after.Disk.random_reads - disk_before.Disk.random_reads;
        seek_distance = disk_after.Disk.seek_distance - disk_before.Disk.seek_distance;
        buffer_lookups = buf_after.Buffer_manager.lookups - buf_before.Buffer_manager.lookups;
        buffer_hits = buf_after.Buffer_manager.hits - buf_before.Buffer_manager.hits;
        buffer_misses = buf_after.Buffer_manager.misses - buf_before.Buffer_manager.misses;
        async_reads = buf_after.Buffer_manager.async_reads - buf_before.Buffer_manager.async_reads;
        batched_reads = disk_after.Disk.batched_reads - disk_before.Disk.batched_reads;
        batch_pages = disk_after.Disk.batch_pages - disk_before.Disk.batch_pages;
        coalesce_runs = disk_after.Disk.coalesce_runs - disk_before.Disk.coalesce_runs;
        scan_windows = c.Context.scan_windows;
        scan_window_pages = c.Context.scan_window_pages;
        instances = c.Context.instances;
        crossings = c.Context.crossings;
        specs_created = c.Context.specs_created;
        specs_stored = c.Context.specs_stored;
        specs_resolved = c.Context.specs_resolved;
        s_peak = c.Context.s_peak;
        q_peak = c.Context.q_peak;
        q_enqueued = c.Context.q_enqueued;
        q_served = c.Context.q_served;
        clusters_visited = c.Context.clusters_visited;
        swizzle_hits = c.Context.swizzle_hits;
        swizzle_misses = c.Context.swizzle_misses;
        index_entries = c.Context.index_entries;
        index_clusters = c.Context.index_clusters;
        index_residuals = c.Context.index_residuals;
        fused_transitions = c.Context.fused_transitions;
        fused_states = c.Context.fused_states;
        cache_hits = c.Context.cache_hits;
        cache_misses = c.Context.cache_misses;
        cache_evictions = c.Context.cache_evictions;
        shared_demand = c.Context.shared_demand;
        writer_commits = c.Context.writer_commits;
        latch_waits = c.Context.latch_waits;
        snapshot_retries = c.Context.snapshot_retries;
        cluster_stales = c.Context.cluster_stales;
        scan_resist_hits = c.Context.scan_resist_hits;
        fell_back = Context.fallback ctx;
      };
  }

type stream = {
  next : unit -> Store.info option;
  stream_ctx : Context.t;
  stream_sched : Xschedule.t option;
  stream_index : Xindex.t option;
  stream_abandon : unit -> unit;
}

let prepare ?config ?contexts ?trace store path plan =
  if path = [] then invalid_arg "Exec.prepare: empty path";
  let contexts = match contexts with Some c -> c | None -> [ Store.root store ] in
  let config =
    match (config, plan) with
    | Some c, _ -> c
    | None, Plan.Reordered { io = Plan.Io_schedule { speculative }; _ } ->
      { Context.default_config with Context.speculative }
    | None, _ -> Context.default_config
  in
  let ctx = Context.create ~config store in
  ctx.Context.trace <- trace;
  Buffer_manager.set_scan_resistant (Store.buffer store) config.Context.scan_resistant;
  let next, xschedule, xscan, xindex = pipeline ctx store path plan contexts in
  {
    next;
    stream_ctx = ctx;
    stream_sched = xschedule;
    stream_index = xindex;
    stream_abandon =
      (fun () ->
        Option.iter Xschedule.abandon xschedule;
        Option.iter Xscan.abandon xscan;
        Option.iter Xindex.abandon xindex);
  }

let stream_next stream = stream.next ()
let stream_fell_back stream = Context.fallback stream.stream_ctx
let stream_abandon stream = stream.stream_abandon ()
let stream_ctx stream = stream.stream_ctx

let stream_demand stream =
  match stream.stream_sched with Some x -> Xschedule.queued_clusters x | None -> []

let stream_scan_window stream = Option.bind stream.stream_sched Xschedule.scan_window

let stream_violations ?results stream =
  Invariant.post_run ?xschedule:stream.stream_sched ?xindex:stream.stream_index ?results
    stream.stream_ctx

let cold_run ?config ?contexts ?trace ?ordered store path plan =
  let buffer = Store.buffer store in
  Buffer_manager.reset buffer;
  Disk.reset_clock (Buffer_manager.disk buffer);
  run ?config ?contexts ?trace ?ordered store path plan

let swizzle_hit_rate m =
  let touched = m.swizzle_hits + m.swizzle_misses in
  if touched = 0 then 0.0 else float_of_int m.swizzle_hits /. float_of_int touched

let pp_metrics ppf m =
  Format.fprintf ppf
    "@[<v>total %.4fs (io %.4fs, cpu %.4fs)@,\
     reads %d (seq %d, rnd %d, seek-dist %d), async %d@,\
     batches %d (%d pages, %d coalesced), scan windows %d (%d pages)@,\
     buffer: lookups %d hits %d misses %d@,\
     instances %d crossings %d specs %d/%d/%d (S peak %d, Q peak %d)@,\
     queue: enqueued %d served %d@,\
     index: entries %d clusters %d residuals %d@,\
     fused: transitions %d states %d@,\
     cache: hits %d misses %d evictions %d shared %d@,\
     writers: commits %d latch-waits %d retries %d stales %d@,\
     2q: protected hits %d@,\
     swizzle: hits %d misses %d (%.0f%% hit rate)@,\
     clusters visited %d%s@]"
    m.total_time m.io_time m.cpu_time m.page_reads m.sequential_reads m.random_reads
    m.seek_distance m.async_reads m.batched_reads m.batch_pages m.coalesce_runs m.scan_windows
    m.scan_window_pages m.buffer_lookups m.buffer_hits m.buffer_misses m.instances
    m.crossings m.specs_created m.specs_stored m.specs_resolved m.s_peak m.q_peak
    m.q_enqueued m.q_served m.index_entries m.index_clusters m.index_residuals
    m.fused_transitions m.fused_states m.cache_hits m.cache_misses m.cache_evictions
    m.shared_demand m.writer_commits m.latch_waits m.snapshot_retries m.cluster_stales
    m.scan_resist_hits
    m.swizzle_hits
    m.swizzle_misses
    (100. *. swizzle_hit_rate m)
    m.clusters_visited
    (if m.fell_back then " [fell back]" else "")
