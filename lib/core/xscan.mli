(** The XScan operator (paper Sec. 5.4.3): the scan-based alternative to
    XSchedule.

    XScan reads every cluster of the document exactly once, in physical
    order — a pattern the simulated disk (like a real one) services at
    pure transfer cost. For each cluster it first emits the producer's
    context instances whose right end lies there (the input must be
    sorted by cluster), then {e speculates}: for every [Up] border [b]
    and every step [i], a left-incomplete instance [l_bi] with
    [S_L = S_R = i] and both ends [b]. The XStep chain extends these
    into "if [b] is reachable at step [i], then ..." facts that XAssembly
    stores in [S] and discharges once the matching right-incomplete
    instance arrives — so no cluster is ever visited twice.

    In fallback mode (Sec. 5.4.6) XScan restarts its producer and then
    acts as the identity: contexts are re-emitted unswizzled and the
    XStep chain, now border-transparent, recomputes the remaining
    results (duplicates are caught by XAssembly's result set). *)

type t

val create :
  Context.t ->
  path_len:int ->
  contexts:(unit -> (unit -> Xnav_store.Node_id.t option)) ->
  t
(** [contexts] is a replayable factory: invoked once at creation and once
    more if fallback forces a restart. Each producer must yield context
    NodeIDs sorted by cluster id ({!Xnav_store.Node_id.compare} order). *)

val next : t -> Path_instance.t option

val clusters_scanned : t -> int

val abandon : t -> unit
(** Tear the operator down mid-run: release the current view and
    discard all buffered instances; subsequent [next] calls return
    [None]. Called by {!Exec.run} when a post-fallback pipeline cannot
    make progress and the plan restarts with the simple method. *)
