module Store = Xnav_store.Store
module Node_id = Xnav_store.Node_id
module Path_partition = Xnav_store.Path_partition
module Path = Xnav_xpath.Path
module Disk = Xnav_storage.Disk
module Buffer_manager = Xnav_storage.Buffer_manager

type choice = Auto | Force_simple | Force_schedule | Force_scan | Force_index

type estimate = {
  touched_nodes : int;
  est_pages : int;
  fused : bool;
  cost_simple : float;
  cost_schedule : float;
  cost_scan : float;
  cost_index : float;
}

(* CPU cost constants (seconds per unit); rough but only their order of
   magnitude matters for regime separation. *)
let cpu_per_node = 2e-6
let cpu_per_spec = 1e-6

(* The fused automaton replaces one Path_instance allocation plus one
   closure dispatch per extension with an array-indexed state push;
   measured per-extension cost drops well over 2x (see bench --micro),
   priced conservatively here. *)
let cpu_per_node_fused = 8e-7

(* Residual index seeding is only priced honestly when the seed prefix
   actually prunes: if the tail would still walk (almost) the whole
   document, seeding degenerates to plain navigation and keeps the
   conservative >=-schedule price. *)
let residual_selectivity = 0.8

let estimate ?(fused = true) store path =
  let chain_cpu = if fused then cpu_per_node_fused else cpu_per_node in
  let node_count = max 1 (Store.node_count store) in
  let page_count = max 1 (Store.page_count store) in
  let config = Disk.config (Buffer_manager.disk (Store.buffer store)) in
  let random_cost =
    (* An average random fetch: half-stroke seek + rotation + transfer. *)
    (config.Disk.seek_max /. 2.) +. config.Disk.rotational +. config.Disk.transfer
  in
  let touched_nodes =
    match Store.doc_stats store with
    | Some stats ->
      (* Frontier propagation over the parent/child synopsis — far
         tighter than the per-tag upper bound. *)
      let per_step = Xnav_store.Doc_stats.estimate_path stats path in
      int_of_float (ceil (List.fold_left ( +. ) 0.0 per_step))
      |> min (node_count * Path.length path)
      |> max 1
    | None ->
      let step_cardinality (s : Path.step) =
        match s.Path.test with
        | Path.Name tag -> Store.tag_count store tag
        | Path.Wildcard | Path.Any_node -> node_count
      in
      (* The clamp matters: an empty or all-upward path folds to 0,
         which would collapse every cost to ~0 and let the tie-break
         silently pick XScan. At least the context node is touched. *)
      List.fold_left (fun acc s -> acc + step_cardinality s) 0 path
      |> min (node_count * Path.length path)
      |> max 1
  in
  (* Assume touched nodes occupy their proportional share of the pages. *)
  let est_pages =
    min page_count
      (int_of_float (ceil (float_of_int touched_nodes /. float_of_int node_count *. float_of_int page_count)))
    |> max 1
  in
  let touched = float_of_int touched_nodes in
  (* Reordered shapes run the (possibly fused) chain; the Simple method
     always pays the full per-node iterator cost. *)
  let cost_scan =
    (float_of_int page_count *. config.Disk.transfer)
    +. (float_of_int node_count *. float_of_int (Path.length path) *. cpu_per_spec)
    +. (touched *. chain_cpu)
  in
  let cost_schedule =
    (* Asynchronous reordering roughly halves the per-page random cost. *)
    (float_of_int est_pages *. random_cost /. 2.) +. (touched *. chain_cpu)
  in
  let cost_simple =
    (* Every step re-fetches its share of pages at full random cost. *)
    (float_of_int est_pages *. random_cost) +. (touched *. cpu_per_node)
  in
  let cost_index =
    (* The summary resolves the path's self/child prefix exactly. Fully
       resolved (covering) paths are answered from the partition's entry
       lists — id, tag, ordpath — with zero page I/O, so their cost is
       pure per-entry CPU. A path with a residual suffix (a descendant
       step ends exact resolution) pays an exact seed-cluster walk
       (consecutive clusters at transfer cost, gaps at random cost) plus
       navigation of the tail. When the synopsis shows the tail confined
       to a minority of the document (the seed prefix prunes — q6'-style
       queries), that navigation is priced honestly: the residual
       operator serves pending clusters smallest-pid-first and the
       seeds' subtrees are contiguous under the depth-first cluster
       layout, so the tail's page share is fetched at near-sequential
       transfer cost. When the tail still spans (almost) the whole
       document (frontier > [residual_selectivity] of the nodes — //x,
       q7), seeding buys nothing and the term keeps the conservative
       >=-schedule price, so Auto never prefers it there. Infinite when
       no fresh partition exists or the path cannot be index-seeded. *)
    match Store.partition store with
    | Some partition when Store.stats_fresh store && Path.is_downward path && path <> [] ->
      let resolved = Path.indexable_prefix path in
      let prefix = Path.prefix path resolved in
      let classes = Path_partition.select partition ~matches:(Path.matches_sequence prefix) in
      let entries =
        List.fold_left
          (fun acc c -> acc + Array.length (Path_partition.class_entries partition c))
          0 classes
      in
      if resolved = Path.length path then float_of_int entries *. cpu_per_node
      else begin
        let seen = Hashtbl.create 64 in
        List.iter
          (fun c ->
            Array.iter
              (fun (id : Node_id.t) -> Hashtbl.replace seen (Node_id.cluster id) ())
              (Path_partition.class_entries partition c))
          classes;
        let pids = List.sort compare (Hashtbl.fold (fun pid () acc -> pid :: acc) seen []) in
        let io, _ =
          List.fold_left
            (fun (acc, prev) pid ->
              let cost =
                match prev with
                | Some p when pid = p + 1 -> config.Disk.transfer
                | _ -> random_cost
              in
              (acc +. cost, Some pid))
            (0.0, None) pids
        in
        let tail_frontier, tail_work =
          match Store.doc_stats store with
          | Some stats ->
            let per_step = Xnav_store.Doc_stats.estimate_path stats path in
            let tail = List.filteri (fun i _ -> i >= resolved) per_step in
            (List.fold_left max 0.0 tail, List.fold_left ( +. ) 0.0 tail)
          | None -> (float_of_int node_count, touched)
        in
        let frac = tail_frontier /. float_of_int node_count in
        if frac <= residual_selectivity then
          io +. random_cost
          +. (max 1.0 (ceil (frac *. float_of_int page_count)) *. config.Disk.transfer)
          +. (float_of_int entries *. cpu_per_node)
          +. (tail_work *. chain_cpu)
        else
          io
          +. (float_of_int est_pages *. random_cost /. 2.)
          +. (float_of_int entries *. cpu_per_node)
          +. (touched *. chain_cpu)
      end
    | Some _ | None -> infinity
  in
  { touched_nodes; est_pages; fused; cost_simple; cost_schedule; cost_scan; cost_index }

let compile ?(choice = Auto) ?(context_is_root = true) store path =
  let downward = Path.is_downward path in
  let dslash = context_is_root && Path.starts_with_descendant_any path in
  match choice with
  | Force_simple -> Plan.simple
  | Force_schedule ->
    if not downward then
      invalid_arg "Compile: XSchedule plans require downward axes only";
    Plan.xschedule ()
  | Force_scan ->
    if not downward then invalid_arg "Compile: XScan plans require downward axes only";
    Plan.xscan ~dslash ()
  | Force_index ->
    if not downward then invalid_arg "Compile: XIndex plans require downward axes only";
    Plan.xindex ()
  | Auto ->
    if not downward then Plan.simple
    else begin
      let e = estimate store path in
      (* The partition's classes are anchored at the document root, so
         index plans only apply to root-context evaluation. *)
      if context_is_root && e.cost_index < e.cost_schedule && e.cost_index < e.cost_scan then
        Plan.xindex ()
      else if e.cost_scan < e.cost_schedule then Plan.xscan ~dslash ()
      else Plan.xschedule ()
    end

let plan_for ?choice ?(rewrite = false) ?context_is_root store path =
  let path = if rewrite then Xnav_xpath.Rewrite.normalize path else path in
  (path, compile ?choice ?context_is_root store path)

let pp_estimate ppf e =
  Format.fprintf ppf
    "touched~%d pages~%d | simple %.4fs, xschedule %.4fs, xscan %.4fs, xindex %.4fs | chain %s @@ %.1e s/node"
    e.touched_nodes e.est_pages e.cost_simple e.cost_schedule e.cost_scan e.cost_index
    (if e.fused then "fused" else "per-step")
    (if e.fused then cpu_per_node_fused else cpu_per_node)
