(** Physical plans for location paths.

    Three plan shapes, matching the paper's evaluation (Sec. 6.2): the
    Simple nested-loop method, and the two reordered shapes built from
    the XStep chain topped by XAssembly, with either XSchedule
    (asynchronous I/O) or XScan (one sequential scan) as the single
    I/O-performing operator. *)

type io_operator =
  | Io_schedule of { speculative : bool }
  | Io_scan
  | Io_index of { resolve : int option }
      (** Seed instances from the path partition's entry lists instead
          of navigating from the root. [resolve] caps how many leading
          steps the path summary resolves ([None] = the whole downward
          path); the XStep tail evaluates the residual suffix, with
          border crossings served back through the index operator. *)

type t =
  | Simple of { dedup_intermediate : bool }
  | Reordered of { io : io_operator; dslash : bool; fused : bool }
      (** [dslash]: apply the [//]-prefix optimisation (only ever set on
          scan plans whose path starts with [descendant-or-self::node()]
          and whose context is the document root).

          [fused] (default [true]): evaluate the step chain with the
          single fused automaton ({!Fused}) instead of per-step XStep
          iterators. Same results, same I/O trace, less CPU; [false]
          reproduces the historical per-step execution. The context's
          {!Context.config.fused} must also be on. *)

val simple : t
val xschedule : ?speculative:bool -> ?fused:bool -> unit -> t
val xscan : ?dslash:bool -> ?fused:bool -> unit -> t

val xindex : ?resolve:int -> ?fused:bool -> unit -> t
(** The structural-index plan (requires a fresh {!Xnav_store.Store}
    partition; {!Exec} degrades to the XSchedule shape when it is
    missing or stale). [resolve] is clamped to [0 .. length path] at
    execution time; values below the path length force residual XStep
    navigation — mainly a test knob. *)

val name : t -> string
(** Short name as used in the paper's figures: "simple", "xschedule",
    "xscan" (speculative/dslash variants annotated). *)

val explain : Format.formatter -> Xnav_xpath.Path.t * t -> unit
(** Renders the operator tree, e.g. for the CLI's [explain] command. *)
