type serve_policy = Serve_min_pid | Serve_cost

let serve_policy_of_string = function
  | "min-pid" -> Some Serve_min_pid
  | "cost" -> Some Serve_cost
  | _ -> None

let serve_policy_to_string = function Serve_min_pid -> "min-pid" | Serve_cost -> "cost"

type config = {
  k : int;
  speculative : bool;
  memory_budget : int;
  dedup_intermediate : bool;
  validate : bool;
  coalesce_window : int;
  serve_policy : serve_policy;
  scan_threshold : float;
  fused : bool;
  result_cache : bool;
  scan_resistant : bool;
}

let default_config =
  {
    k = 100;
    speculative = true;
    memory_budget = 1_000_000;
    dedup_intermediate = true;
    validate = false;
    coalesce_window = 16;
    serve_policy = Serve_cost;
    scan_threshold = 0.5;
    fused = true;
    result_cache = false;
    scan_resistant = false;
  }

let set_fused fused config = { config with fused }
let set_result_cache result_cache config = { config with result_cache }
let set_scan_resistant scan_resistant config = { config with scan_resistant }

type mode = Normal | Fallback

type counters = {
  mutable instances : int;
  mutable crossings : int;
  mutable specs_created : int;
  mutable specs_stored : int;
  mutable specs_resolved : int;
  mutable s_peak : int;
  mutable q_peak : int;
  mutable clusters_visited : int;
  mutable fallbacks : int;
  mutable q_enqueued : int;
  mutable q_served : int;
  mutable q_dropped : int;
  mutable results_emitted : int;
  mutable dedup_hits : int;
  mutable prefetch_refusals : int;
  mutable swizzle_hits : int;
  mutable swizzle_misses : int;
  mutable scan_windows : int;
  mutable scan_window_pages : int;
  mutable served_ticks : int;
  mutable starved_ticks : int;
  mutable index_entries : int;
  mutable index_clusters : int;
  mutable index_residuals : int;
  mutable fused_transitions : int;
  mutable fused_states : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_evictions : int;
  mutable shared_demand : int;
  mutable writer_commits : int;
  mutable latch_waits : int;
  mutable snapshot_retries : int;
  mutable cluster_stales : int;
  mutable scan_resist_hits : int;
}

type t = {
  store : Xnav_store.Store.t;
  config : config;
  mutable mode : mode;
  counters : counters;
  mutable trace : (string -> unit) option;
}

let create ?(config = default_config) store =
  {
    store;
    config;
    mode = Normal;
    trace = None;
    counters =
      {
        instances = 0;
        crossings = 0;
        specs_created = 0;
        specs_stored = 0;
        specs_resolved = 0;
        s_peak = 0;
        q_peak = 0;
        clusters_visited = 0;
        fallbacks = 0;
        q_enqueued = 0;
        q_served = 0;
        q_dropped = 0;
        results_emitted = 0;
        dedup_hits = 0;
        prefetch_refusals = 0;
        swizzle_hits = 0;
        swizzle_misses = 0;
        scan_windows = 0;
        scan_window_pages = 0;
        served_ticks = 0;
        starved_ticks = 0;
        index_entries = 0;
        index_clusters = 0;
        index_residuals = 0;
        fused_transitions = 0;
        fused_states = 0;
        cache_hits = 0;
        cache_misses = 0;
        cache_evictions = 0;
        shared_demand = 0;
        writer_commits = 0;
        latch_waits = 0;
        snapshot_retries = 0;
        cluster_stales = 0;
        scan_resist_hits = 0;
      };
  }

let enter_fallback t =
  match t.mode with
  | Fallback -> ()
  | Normal ->
    t.mode <- Fallback;
    t.counters.fallbacks <- t.counters.fallbacks + 1

let fallback t = t.mode = Fallback

let tracing t = match t.trace with None -> false | Some _ -> true
let emit t msg = match t.trace with None -> () | Some f -> f (msg ())
