module Store = Xnav_store.Store
module Node_id = Xnav_store.Node_id
module Node_record = Xnav_store.Node_record
module Path = Xnav_xpath.Path
module Disk = Xnav_storage.Disk
module Buffer_manager = Xnav_storage.Buffer_manager
module Ordpath = Xnav_xml.Ordpath
open Path_instance

type result = {
  per_path : Store.info list array;
  counts : int array;
  fell_back : bool array;
  io_time : float;
  cpu_time : float;
  total_time : float;
  page_reads : int;
}

(* One path's pipeline: a feed queue standing in for the scan, the XStep
   chain, and the XAssembly on top. *)
type lane = {
  ctx : Context.t;
  path : Path.t;
  path_len : int;
  dslash : bool;
  feed : Path_instance.t Queue.t;
  top : unit -> Store.info option;
  nodes : Store.info Vec.t;  (* arrival order *)
}

let make_lane ?config store ~context_is_root path =
  if path = [] then invalid_arg "Multi.run: empty path";
  if not (Path.is_downward path) then
    invalid_arg "Multi.run: shared-scan evaluation requires downward axes only";
  let ctx = Context.create ?config store in
  let path_len = Path.length path in
  let dslash = context_is_root && Path.starts_with_descendant_any path in
  let feed = Queue.create () in
  let producer () = Queue.take_opt feed in
  let chain =
    (* Shared-scan lanes honour the same chain knob as Exec (no Plan
       here, so the config field alone decides). *)
    if ctx.Context.config.Context.fused then Fused.create ctx ~path producer
    else
      List.fold_left
        (fun (producer, i) step -> (Xstep.create ctx ~i ~step producer, i + 1))
        (producer, 1) path
      |> fst
  in
  let top = Xassembly.create ctx ~path_len ~xschedule:None ~dslash chain in
  { ctx; path; path_len; dslash; feed; top; nodes = Vec.create () }

let drain lane =
  let rec go () =
    match lane.top () with
    | None -> ()
    | Some info ->
      Vec.push lane.nodes info;
      go ()
  in
  go ()

let run ?config ?contexts ?(ordered = true) ~cold store paths =
  if paths = [] then invalid_arg "Multi.run: no paths";
  let buffer = Store.buffer store in
  let disk = Buffer_manager.disk buffer in
  if cold then begin
    Buffer_manager.reset buffer;
    Disk.reset_clock disk
  end;
  let contexts = match contexts with Some c -> c | None -> [ Store.root store ] in
  let contexts = List.sort Node_id.compare contexts in
  let context_is_root =
    match contexts with [ c ] -> Node_id.equal c (Store.root store) | _ -> false
  in
  let lanes = Array.of_list (List.map (make_lane ?config store ~context_is_root) paths) in

  let disk_before = Disk.stats disk in
  let io_before = Disk.elapsed disk in
  let cpu_before = Sys.time () in

  let first = Store.first_page store in
  let last = first + Store.page_count store - 1 in
  let remaining_contexts = ref contexts in
  for pid = first to last do
    let view = Store.view store pid in
    Fun.protect ~finally:(fun () -> Store.release store view) @@ fun () ->
    (* Contexts located in this cluster (the list is sorted). *)
    let here = ref [] in
    let rec take () =
      match !remaining_contexts with
      | id :: rest when Node_id.cluster id = pid ->
        here := id :: !here;
        remaining_contexts := rest;
        take ()
      | _ -> ()
    in
    take ();
    let here = List.rev !here in
    let ups = Store.up_slots view in
    Array.iter
      (fun lane ->
        (* A lane that fell back is recomputed with the Simple method
           after the scan; feeding it further instances is wasted work,
           and its XSteps now enumerate globally — which can exhaust a
           tiny buffer while the scan view is pinned. *)
        if Context.fallback lane.ctx then ()
        else begin
        List.iter
          (fun (id : Node_id.t) ->
            match Store.get view id.Node_id.slot with
            | Node_record.Core core ->
              Queue.add
                {
                  s_l = 0;
                  n_l = id;
                  left_incomplete = false;
                  s_r = 0;
                  n_r = R_core { view; slot = id.Node_id.slot; core };
                }
                lane.feed
            | Node_record.Down _ | Node_record.Up _ ->
              invalid_arg "Multi.run: context is a border record")
          here;
        List.iter
          (fun slot ->
            let id = Store.id_of view slot in
            for step = 0 to lane.path_len - 1 do
              lane.ctx.Context.counters.Context.specs_created <-
                lane.ctx.Context.counters.Context.specs_created + 1;
              Queue.add
                {
                  s_l = step;
                  n_l = id;
                  left_incomplete = true;
                  s_r = step;
                  n_r = R_entry { view; slot };
                }
                lane.feed
            done)
          ups;
        (* The lane can enter fallback mid-drain (memory budget hit);
           its global enumeration may then find every frame pinned.
           Abandon the drain — the Simple recomputation below replaces
           the lane's nodes wholesale. *)
        (try drain lane with Buffer_manager.Buffer_full -> Queue.clear lane.feed)
        end)
      lanes
  done;

  (* A lane that fell back lost speculative state the shared scan cannot
     replay; recompute it with the Simple method (warm buffer). *)
  let fell_back = Array.map (fun lane -> Context.fallback lane.ctx) lanes in
  Array.iteri
    (fun i lane ->
      if fell_back.(i) then begin
        let r = Exec.run ?config ~contexts ~ordered:false store lane.path Plan.simple in
        Vec.clear lane.nodes;
        List.iter (Vec.push lane.nodes) r.Exec.nodes
      end)
    lanes;

  let cpu_time = Sys.time () -. cpu_before in
  let io_time = Disk.elapsed disk -. io_before in
  let disk_after = Disk.stats disk in
  let finish lane =
    (* XAssembly already deduplicates; Simple-recomputed lanes were
       deduplicated by Exec. One in-place sort per lane. *)
    if ordered then
      Vec.sorted_to_list (fun (a : Store.info) b -> Ordpath.compare a.ordpath b.ordpath) lane.nodes
    else Vec.to_list lane.nodes
  in
  let per_path = Array.map finish lanes in
  {
    per_path;
    counts = Array.map List.length per_path;
    fell_back;
    io_time;
    cpu_time;
    total_time = io_time +. cpu_time;
    page_reads = disk_after.Disk.reads - disk_before.Disk.reads;
  }
