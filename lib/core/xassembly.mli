(** The XAssembly operator (paper Sec. 5.3.3 / 5.4.5): the topmost
    operator of a reordered plan.

    XAssembly consumes the XStep chain's output and maintains the two
    main-memory structures of the method:

    - [R], the set of {e reachable right ends} [(step, node)]. It
      deduplicates inter-cluster crossings — "no inter-cluster edge is
      traversed twice for the same step" — and, at the final step, the
      result set itself. New reachable border targets are forwarded to
      the XSchedule queue (when one is attached).
    - [S], the set of {e speculative} left-incomplete instances, indexed
      by their left end. Whenever a right end enters [R], matching
      speculations are discharged: a right-complete speculation at the
      final step becomes a result, a right-incomplete one propagates
      reachability to its own target — possibly cascading through [S].

    The [//] optimisation (Sec. 5.4.5.4): with [dslash] set — scan-based
    plan, path starting with [descendant-or-self::node()], context = the
    document root — membership in [R] is answered [true] for steps 0 and
    1 without storing anything, because the scan is guaranteed to reach
    every cluster and the first step reaches every node.

    Fallback (Sec. 5.4.6): when [|S|] exceeds the configured budget,
    the context flips to fallback mode, [S] is discarded, and XAssembly
    degenerates to result deduplication (pending crossings still flow to
    the queue so schedule-based plans lose nothing; scan-based plans
    restart, see {!Xscan}).

    XAssembly is not a pipeline breaker: results stream out as they are
    found, in cost-driven (not document) order. *)

val create :
  Context.t ->
  path_len:int ->
  xschedule:Xschedule.t option ->
  ?xindex:Xindex.t ->
  dslash:bool ->
  (unit -> Path_instance.t option) ->
  unit ->
  Xnav_store.Store.info option
(** [create ctx ~path_len ~xschedule ~dslash producer] is the plan's
    result iterator: full path instances' result nodes, deduplicated,
    in discovery order. At most one of [xschedule] / [xindex] is given;
    new reachable border targets are forwarded to it. An index plan
    {e must} attach its operator here — unlike XScan, XIndex does not
    sweep every cluster, so unforwarded crossings would lose results. *)
