(** The XIndex leaf operator: seeding from the path partition.

    Where XScan sweeps every cluster and XSchedule navigates from the
    root, XIndex consults the store's {!Xnav_store.Path_partition}: the
    path classes whose root-to-node tag sequence satisfies the
    [self::]/[child::] prefix of the (downward) path are exactly the
    results of that prefix ({!Xnav_xpath.Path.indexable_prefix} — a
    descendant step ends exact resolution). Two regimes follow:

    - {e Covering}: the whole path is a self/child chain. The partition
      already holds everything a result needs — NodeID, tag, ORDPATH —
      so the operator emits complete instances ([S_R = |pi|], right side
      [R_info]) straight from the entry lists with {e zero} page I/O.
      The XStep chain forwards them untouched and XAssembly merely
      deduplicates.
    - {e Residual}: resolution stops short ([resolve < |pi|]). The
      matching classes' entry lists — already sorted by (cluster, slot)
      — are visited in one ascending pass and emitted as partial
      instances with [S_L = 0] and [S_R = resolve]; the XStep tail
      evaluates the residual suffix, and border crossings come back
      through {!push} (the role XSchedule's queue plays in a schedule
      plan) to be served cluster by cluster, smallest id first.
      Continuations waiting on a cluster that is also a later seed
      cluster ride along with the seed visit, so no cluster is pinned
      twice on their account.

    The operator requires the partition classes the query's prefix
    selects to be {e fresh} (see {!usable}); {!Exec} degrades an index
    plan to the XSchedule shape when the partition is missing or those
    classes are stale. In fallback mode it mirrors {!Xscan}: restart the
    contexts and act as the identity while the border-transparent chain
    recomputes. *)

type t

val usable : Xnav_store.Store.t -> path:Xnav_xpath.Path.t -> resolve:int option -> bool
(** Whether the partition may seed this query. Freshness is
    class-granular: every class the resolved prefix selects must be
    fresh ({!Xnav_store.Store.class_fresh} — no mutation touched its
    entry clusters, no insert added a member), and no {e novel}
    inserted tag sequence ({!Xnav_store.Store.novel_sequences}) may
    match the prefix. Always true on an unmutated store with a
    partition; after updates, query shapes untouched by the writes stay
    index-served while touched ones degrade. *)

val create :
  Context.t ->
  path:Xnav_xpath.Path.t ->
  resolve:int option ->
  contexts:(unit -> (unit -> Xnav_store.Node_id.t option)) ->
  t
(** [resolve] is clamped to [0 .. indexable_prefix path] ([None] = the
    full indexable prefix, i.e. covering whenever the path is a pure
    self/child chain). [contexts] is the replayable factory used only if
    fallback forces an identity restart.

    @raise Invalid_argument if the store has no partition or the
    selected classes are not fresh (i.e. {!usable} is false). *)

val push :
  t ->
  s_l:int ->
  n_l:Xnav_store.Node_id.t ->
  s_r:int ->
  target:Xnav_store.Node_id.t ->
  unit
(** Queue a residual continuation: visit [target]'s cluster and resume
    step [s_r + 1] there. Called by XAssembly. *)

val next : t -> Path_instance.t option

val resolved : t -> int
(** The effective resolved prefix length. *)

val covering : t -> bool
(** Whether the operator runs in the zero-I/O covering regime
    ([resolved = length path]). *)

val entry_count : t -> int
(** Partition entries selected as seeds (before any are emitted). *)

val pending_size : t -> int
(** Residual continuations queued but not yet served. Zero once [next]
    has returned [None]. *)

val abandon : t -> unit
(** Tear the operator down mid-run: release the current view, discard
    seeds and pending continuations; subsequent [next] calls return
    [None]. Called by {!Exec.run} when a post-fallback pipeline cannot
    make progress and the plan restarts with the simple method. *)
