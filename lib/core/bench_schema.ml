(* Single source of truth for the bench JSON schema tag. Before this
   constant existed the "xnav-bench/N" string was copy-pasted into every
   emitter and assertion and had to be bumped in lockstep; now the bench
   emitters, the --compare parser's expectations and the test that pins
   the committed baseline all read it from here. *)

let version = "xnav-bench/8"
