module Store = Xnav_store.Store

(* One process-wide statement+result cache. Entries live on an intrusive
   circular doubly-linked LRU list threaded through a sentinel: a hit is
   pure pointer surgery (unlink + relink at the MRU end), so serving
   repeat traffic allocates nothing beyond the [Some] cell the lookup
   returns. The hash table is keyed by (store uid, document identity,
   normalized path): uids disambiguate live stores, but they are a
   per-process counter — a uid reused after a counter reset (a fresh
   process over a warm cache) could alias two different documents, so
   the content digest [Store.identity] rides in the key as well. The
   mutation stamp is validated on every hit rather than folded into the
   key, so a store update lazily drops exactly the entries it staled. *)

type entry = {
  key : int * int * string;
  mutable stamp : int;
  mutable nodes : Store.info list;  (* distinct, document order *)
  mutable count : int;
  mutable clusters : int array option;
      (* cluster footprint the answer was computed from: the entry stays
         valid across mutations that touch none of these pids. [None] =
         unknown footprint, staled by any mutation (the pre-footprint
         behaviour, and the only sound choice for index-seeded runs
         whose answers were not derived from page reads). *)
  mutable prev : entry;
  mutable next : entry;
}

type stats = { hits : int; misses : int; evictions : int; stales : int }

let default_capacity = 256

let table : (int * int * string, entry) Hashtbl.t = Hashtbl.create 512
let capacity_ref = ref default_capacity
let size_ref = ref 0
let hits_ref = ref 0
let misses_ref = ref 0
let evictions_ref = ref 0
let stales_ref = ref 0

let rec sentinel =
  {
    key = (-1, 0, "");
    stamp = -1;
    nodes = [];
    count = 0;
    clusters = None;
    prev = sentinel;
    next = sentinel;
  }

let unlink e =
  e.prev.next <- e.next;
  e.next.prev <- e.prev

let push_front e =
  e.prev <- sentinel;
  e.next <- sentinel.next;
  sentinel.next.prev <- e;
  sentinel.next <- e

let drop e =
  unlink e;
  Hashtbl.remove table e.key;
  decr size_ref

(* Evict from the LRU end until the size fits. *)
let rec trim evicted =
  if !size_ref <= !capacity_ref || !size_ref = 0 then evicted
  else begin
    drop sentinel.prev;
    incr evictions_ref;
    trim (evicted + 1)
  end

let capacity () = !capacity_ref

let set_capacity n =
  (* Clamp instead of raising: 0 (and anything below) means disabled. *)
  capacity_ref := max 0 n;
  ignore (trim 0)

let size () = !size_ref
let nodes e = e.nodes
let count e = e.count

(* Whether the entry's answer still describes the store. With a cluster
   footprint, only mutations that touched one of the footprint's pids
   invalidate; without one, any mutation does. *)
let still_valid store e =
  let current = Store.mutation_stamp store in
  e.stamp = current
  ||
  match e.clusters with
  | None -> false
  | Some pids ->
    let ok = not (Array.exists (fun pid -> Store.page_stamp store pid > e.stamp) pids) in
    (* Fast-forward so the cheap equality check covers later lookups. *)
    if ok then e.stamp <- current;
    ok

let find store path =
  match Hashtbl.find_opt table (Store.uid store, Store.identity store, path) with
  | None ->
    incr misses_ref;
    None
  | Some e ->
    if not (still_valid store e) then begin
      (* A mutation touched the entry's footprint; the entry can never
         become valid again (stamps only grow), so drop it now. *)
      drop e;
      incr stales_ref;
      incr misses_ref;
      None
    end
    else begin
      unlink e;
      push_front e;
      incr hits_ref;
      Some e
    end

let add ?clusters store path ~count:n nodes =
  if !capacity_ref = 0 then 0
  else begin
    let key = (Store.uid store, Store.identity store, path) in
    let stamp = Store.mutation_stamp store in
    match Hashtbl.find_opt table key with
    | Some e ->
      e.stamp <- stamp;
      e.nodes <- nodes;
      e.count <- n;
      e.clusters <- clusters;
      unlink e;
      push_front e;
      0
    | None ->
      let e =
        { key; stamp; nodes; count = n; clusters; prev = sentinel; next = sentinel }
      in
      Hashtbl.replace table key e;
      incr size_ref;
      push_front e;
      trim 0
  end

(* Proactive cluster-granular invalidation: drop this store's entries
   whose footprint intersects [touched] (entries without a footprint are
   staled by any write). Writer jobs call this at commit so the
   [cluster_stales] counter reports exactly how much cached state one
   update killed — the lazy {!find}-time check would drop the same
   entries eventually. *)
let stale_clusters store touched =
  if Array.length touched = 0 then 0
  else begin
    let uid = Store.uid store in
    let victims = ref [] in
    let cursor = ref sentinel.next in
    while !cursor != sentinel do
      let e = !cursor in
      cursor := e.next;
      let euid, _, _ = e.key in
      if euid = uid then begin
        let hit =
          match e.clusters with
          | None -> true
          | Some pids ->
            Array.exists (fun pid -> Array.exists (fun t -> t = pid) touched) pids
        in
        if hit then victims := e :: !victims
      end
    done;
    List.iter
      (fun e ->
        drop e;
        incr stales_ref)
      !victims;
    List.length !victims
  end

let clear () =
  Hashtbl.reset table;
  sentinel.next <- sentinel;
  sentinel.prev <- sentinel;
  size_ref := 0

let stats () =
  { hits = !hits_ref; misses = !misses_ref; evictions = !evictions_ref; stales = !stales_ref }

let reset_stats () =
  hits_ref := 0;
  misses_ref := 0;
  evictions_ref := 0;
  stales_ref := 0
