module Store = Xnav_store.Store
module Buffer_manager = Xnav_storage.Buffer_manager
module Io_scheduler = Xnav_storage.Io_scheduler

let post_run ?xschedule ?xindex ?results ctx =
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun msg -> violations := msg :: !violations) fmt in
  let buffer = Store.buffer ctx.Context.store in
  let sched = Buffer_manager.scheduler buffer in
  let c = ctx.Context.counters in

  (* Storage layer: no pins survive a completed run, no I/O request
     dangles, and the scheduler's internal structures agree. *)
  let pinned = Buffer_manager.pinned_count buffer in
  if pinned <> 0 then fail "buffer: %d frames still pinned after the run" pinned;
  let pending = Io_scheduler.pending_count sched in
  if pending <> 0 then fail "io-scheduler: %d requests still pending after the run" pending;
  let completed = Buffer_manager.completed_count buffer in
  if completed <> 0 then
    fail "buffer: %d batch-installed pages never delivered after the run" completed;
  (* Chains into [Io_scheduler.consistency_error], and additionally
     checks the batch pipeline: no page both installed-and-queued and
     still pending, every queued completion resident and pinned. *)
  (match Buffer_manager.consistency_error buffer with
  | None -> ()
  | Some msg -> fail "io-scheduler: %s" msg);

  (* XSchedule: the queue must have drained and every refused prefetch
     must have been retried and served. *)
  (match xschedule with
  | None -> ()
  | Some sched ->
    let q = Xschedule.queue_size sched in
    if q <> 0 then fail "xschedule: %d items still queued after the run" q;
    let r = Xschedule.refused_count sched in
    if r <> 0 then fail "xschedule: %d refused prefetches never retried" r);

  (* XIndex: every residual continuation must have been served. *)
  (match xindex with
  | None -> ()
  | Some index ->
    let p = Xindex.pending_size index in
    if p <> 0 then fail "xindex: %d continuations still pending after the run" p);

  (* Counter conservation. *)
  let non_negative =
    [
      ("instances", c.Context.instances);
      ("crossings", c.Context.crossings);
      ("specs_created", c.Context.specs_created);
      ("specs_stored", c.Context.specs_stored);
      ("specs_resolved", c.Context.specs_resolved);
      ("s_peak", c.Context.s_peak);
      ("q_peak", c.Context.q_peak);
      ("clusters_visited", c.Context.clusters_visited);
      ("fallbacks", c.Context.fallbacks);
      ("q_enqueued", c.Context.q_enqueued);
      ("q_served", c.Context.q_served);
      ("q_dropped", c.Context.q_dropped);
      ("results_emitted", c.Context.results_emitted);
      ("dedup_hits", c.Context.dedup_hits);
      ("prefetch_refusals", c.Context.prefetch_refusals);
      ("swizzle_hits", c.Context.swizzle_hits);
      ("swizzle_misses", c.Context.swizzle_misses);
      ("scan_windows", c.Context.scan_windows);
      ("scan_window_pages", c.Context.scan_window_pages);
      ("served_ticks", c.Context.served_ticks);
      ("starved_ticks", c.Context.starved_ticks);
      ("index_entries", c.Context.index_entries);
      ("index_clusters", c.Context.index_clusters);
      ("index_residuals", c.Context.index_residuals);
      ("fused_transitions", c.Context.fused_transitions);
      ("fused_states", c.Context.fused_states);
      ("cache_hits", c.Context.cache_hits);
      ("cache_misses", c.Context.cache_misses);
      ("cache_evictions", c.Context.cache_evictions);
      ("shared_demand", c.Context.shared_demand);
      ("writer_commits", c.Context.writer_commits);
      ("latch_waits", c.Context.latch_waits);
      ("snapshot_retries", c.Context.snapshot_retries);
      ("cluster_stales", c.Context.cluster_stales);
      ("scan_resist_hits", c.Context.scan_resist_hits);
    ]
  in
  List.iter (fun (name, v) -> if v < 0 then fail "counter %s is negative (%d)" name v) non_negative;
  (* With the fast path disabled every view access must bypass the
     decode cache: a hit would mean a swizzled handle was consulted. *)
  if (not (Store.swizzling ctx.Context.store)) && c.Context.swizzle_hits > 0 then
    fail "swizzle: %d cache hits recorded while swizzling is off" c.Context.swizzle_hits;
  (* Scan-window accounting: pages are only swept inside a window, and
     windows only open when the hybrid is enabled. *)
  if c.Context.scan_windows = 0 && c.Context.scan_window_pages > 0 then
    fail "scan-window: %d pages swept without any window opening" c.Context.scan_window_pages;
  if ctx.Context.config.Context.scan_threshold <= 0.0 && c.Context.scan_windows > 0 then
    fail "scan-window: %d windows opened while the hybrid is disabled" c.Context.scan_windows;
  (* Speculations are discharged from S, so each resolution must have a
     matching store. (specs_created counts seeds, which fan out through
     the XStep chain — it bounds neither stored nor resolved.) *)
  if c.Context.specs_resolved > c.Context.specs_stored then
    fail "speculation: %d resolved but only %d stored" c.Context.specs_resolved
      c.Context.specs_stored;
  if c.Context.s_peak > c.Context.specs_stored then
    fail "speculation: s_peak %d exceeds total stored %d" c.Context.s_peak
      c.Context.specs_stored;
  if xschedule <> None && c.Context.q_served + c.Context.q_dropped <> c.Context.q_enqueued then
    fail "xschedule: %d items enqueued but %d served + %d dropped" c.Context.q_enqueued
      c.Context.q_served c.Context.q_dropped;
  if c.Context.q_peak > c.Context.q_enqueued then
    fail "xschedule: q_peak %d exceeds total enqueued %d" c.Context.q_peak c.Context.q_enqueued;
  (* Index accounting: residuals require a pinned cluster (covering
     entries do not — they are served straight from the partition), and
     clusters pinned by XIndex are a subset of all visits. *)
  if c.Context.index_clusters > c.Context.clusters_visited then
    fail "xindex: %d clusters pinned but only %d visited in total" c.Context.index_clusters
      c.Context.clusters_visited;
  if c.Context.index_clusters = 0 && c.Context.index_residuals > 0 then
    fail "xindex: %d residuals served without pinning a cluster" c.Context.index_residuals;
  (* Fused accounting: the automaton only runs when the config knob is
     on — with it off, the per-step chain must leave both counters at 0
     (that is what makes the fused-off differential trace meaningful). *)
  if (not ctx.Context.config.Context.fused)
     && c.Context.fused_transitions + c.Context.fused_states > 0
  then
    fail "fused: %d transitions / %d states recorded while fused evaluation is off"
      c.Context.fused_transitions c.Context.fused_states;
  (* 2Q accounting: protected-queue hits only exist under the
     scan-resistant policy — knob-off runs must report 0 (that is what
     makes the knob-off victim trace the historical LRU regime). *)
  if (not ctx.Context.config.Context.scan_resistant) && c.Context.scan_resist_hits > 0 then
    fail "2q: %d protected hits recorded while scan-resistant eviction is off"
      c.Context.scan_resist_hits;
  (* Result-cache accounting: with the front door off no run may touch
     the cache (that is what makes cache-off the historical regime), a
     single run is a hit or a miss but never both, and a hit answers
     without executing — so it cannot coexist with any I/O or operator
     work in the same context. *)
  if (not ctx.Context.config.Context.result_cache)
     && c.Context.cache_hits + c.Context.cache_misses + c.Context.cache_evictions
        + c.Context.shared_demand
        > 0
  then
    fail "cache: hits %d / misses %d / evictions %d / shared %d recorded while the result cache \
          is off"
      c.Context.cache_hits c.Context.cache_misses c.Context.cache_evictions
      c.Context.shared_demand;
  if c.Context.cache_hits > 0 && c.Context.cache_misses > 0 then
    fail "cache: %d hits and %d misses in one run" c.Context.cache_hits c.Context.cache_misses;
  if c.Context.cache_evictions > 0 && c.Context.cache_misses = 0 then
    fail "cache: %d evictions without a miss installing an entry" c.Context.cache_evictions;
  if c.Context.cache_hits > 0 && c.Context.clusters_visited + c.Context.instances > 0 then
    fail "cache: a hit (%d) coexists with executed work (%d clusters, %d instances)"
      c.Context.cache_hits c.Context.clusters_visited c.Context.instances;
  (* Writer accounting: cluster-granular cache invalidation only happens
     at a writer's commit, and a writer context never serves cached
     reads (writer jobs bypass the front door entirely). latch_waits
     with zero commits stays legal: a writer can wait and then skip
     every op whose target a concurrent delete removed. *)
  if c.Context.cluster_stales > 0 && c.Context.writer_commits = 0 then
    fail "writers: %d cluster stales recorded without any commit" c.Context.cluster_stales;
  if c.Context.writer_commits > 0 && c.Context.cache_hits + c.Context.cache_misses > 0 then
    fail "writers: a writer context (%d commits) also served cached reads (%d hits, %d misses)"
      c.Context.writer_commits c.Context.cache_hits c.Context.cache_misses;

  (* Result conservation (reordered plans): XAssembly's result set is
     duplicate-free, so the plan's final answer must have exactly
     [results_emitted] nodes — the top-level duplicate elimination must
     find nothing to remove. *)
  (match results with
  | None -> ()
  | Some n ->
    if n <> c.Context.results_emitted then
      fail "xassembly: emitted %d distinct results but the plan returned %d"
        c.Context.results_emitted n);

  List.rev !violations

let enforce ?xschedule ?xindex ?results ctx =
  match post_run ?xschedule ?xindex ?results ctx with
  | [] -> ()
  | violations ->
    failwith (Printf.sprintf "invariant violation: %s" (String.concat "; " violations))
