(** Plan execution: builds the operator pipeline for a plan, drains it,
    and reports results plus the full cost breakdown.

    Timing model: [io_time] is the simulated disk clock consumed by the
    run (deterministic, from the {!Xnav_storage.Disk} cost model) and
    [cpu_time] is measured process CPU time; [total_time] is their sum.
    This mirrors the paper's Table 3, which reports total and CPU time
    separately — with the difference that our I/O seconds come from a
    reproducible simulator rather than a wall clock. *)

type metrics = {
  io_time : float;
  cpu_time : float;
  total_time : float;
  page_reads : int;
  sequential_reads : int;
  random_reads : int;
  seek_distance : int;
  buffer_lookups : int;
  buffer_hits : int;
  buffer_misses : int;
  async_reads : int;
  batched_reads : int;  (** Vectored multi-page reads issued. *)
  batch_pages : int;  (** Pages delivered through those reads. *)
  coalesce_runs : int;  (** Vectored reads that carried ≥ 2 pages. *)
  scan_windows : int;  (** Adaptive scan windows XSchedule entered. *)
  scan_window_pages : int;  (** Pages swept inside those windows. *)
  instances : int;
  crossings : int;
  specs_created : int;
  specs_stored : int;
  specs_resolved : int;
  s_peak : int;
  q_peak : int;
  q_enqueued : int;  (** Items that entered XSchedule's queue [Q]. *)
  q_served : int;  (** Items drained from [Q] into an agenda. *)
  clusters_visited : int;
  swizzle_hits : int;  (** Swizzled decode-cache hits during the run. *)
  swizzle_misses : int;  (** First-decode misses (and post-update refills). *)
  index_entries : int;  (** Instances seeded from partition entry lists. *)
  index_clusters : int;  (** Clusters the XIndex operator pinned. *)
  index_residuals : int;  (** Border continuations served back through XIndex. *)
  fused_transitions : int;
      (** Automaton transitions the fused chain processed (cursor
          emissions consumed). 0 when fused evaluation is off. *)
  fused_states : int;  (** Work-stack frames the fused chain pushed. *)
  cache_hits : int;
      (** 1 when this run was answered from {!Result_cache} (every other
          counter is then 0 — no planning, no I/O). Requires
          [config.result_cache]. *)
  cache_misses : int;
      (** 1 when this run was cacheable but had to execute; its answer
          was installed for the next identical statement. *)
  cache_evictions : int;  (** LRU evictions the installation caused. *)
  shared_demand : int;
      (** Workload-only: 1 when this job was deduped into another
          client's identical in-flight scan. 0 for stand-alone runs. *)
  writer_commits : int;
      (** Workload-only: update operations a writer job committed. 0 for
          read jobs and stand-alone runs. *)
  latch_waits : int;
      (** Workload-only: turns a writer spent blocked on another
          writer's cluster latch. 0 for read jobs. *)
  snapshot_retries : int;
      (** Workload-only: reader stream restarts forced by a writer
          committing into an already-observed cluster. 0 for
          stand-alone runs. *)
  cluster_stales : int;
      (** Workload-only: result-cache entries a writer's commits
          proactively dropped (footprint intersected the write set). 0
          for read jobs. *)
  scan_resist_hits : int;
      (** Buffer hits served from the 2Q-protected main queue during the
          run. 0 with [config.scan_resistant] off. *)
  fell_back : bool;
}

val swizzle_hit_rate : metrics -> float
(** [swizzle_hits / (swizzle_hits + swizzle_misses)], 0 when no view was
    touched (e.g. the Simple plan, which never swizzles). *)

type result = {
  nodes : Xnav_store.Store.info list;
      (** Result nodes, duplicate-free; in document order unless
          [ordered:false]. *)
  count : int;
  metrics : metrics;
}

val run :
  ?config:Context.config ->
  ?contexts:Xnav_store.Node_id.t list ->
  ?trace:(string -> unit) ->
  ?ordered:bool ->
  Xnav_store.Store.t ->
  Xnav_xpath.Path.t ->
  Plan.t ->
  result
(** [run store path plan] evaluates [path] from [contexts] (default: the
    document root). [ordered] (default [true]) re-establishes document
    order by sorting on ordpaths (Sec. 5.5) — pass [false] for
    aggregates like [count()] where order is irrelevant.

    With [config.result_cache] set, a root-context run first consults
    {!Result_cache} (keyed on the path text, validated against the
    store's mutation stamp): a hit skips planning and I/O entirely and
    reports [cache_hits = 1] with every other metric zero; a miss
    executes normally and installs its answer. {!Query_exec} inherits
    this per trunk segment. Non-root contexts always execute.

    @raise Invalid_argument if [path] is empty, or a reordered plan is
    requested for a path with non-downward axes.

    The buffer pool is left warm; callers wanting the paper's cold-cache
    regime reset the buffer and disk clock first (see {!cold_run}). *)

type stream
(** A prepared, lazily evaluated plan: results are pulled one at a time.
    Streams make interleaved (concurrent) execution possible — see
    {!Interleave}. *)

val prepare :
  ?config:Context.config ->
  ?contexts:Xnav_store.Node_id.t list ->
  ?trace:(string -> unit) ->
  Xnav_store.Store.t ->
  Xnav_xpath.Path.t ->
  Plan.t ->
  stream
(** Build the operator pipeline without draining it. The stream shares
    the store's buffer pool and asynchronous I/O queue with any other
    live stream — concurrent streams' requests merge in the scheduler,
    which is exactly the multi-query benefit the paper's outlook
    anticipates. *)

val stream_next : stream -> Xnav_store.Store.info option
(** The next result node (duplicate-free for reordered plans; the Simple
    plan may repeat nodes unless intermediate dedup is on — {!run}
    deduplicates at the end). [None] is final. *)

val stream_fell_back : stream -> bool

val stream_ctx : stream -> Context.t
(** The stream's execution context — counters (including the
    workload-fairness [served_ticks]/[starved_ticks]) accumulate here as
    the stream is pulled. *)

val stream_demand : stream -> int list
(** The clusters the stream's XSchedule operator currently has queued
    items for (unordered; [[]] for plans without an XSchedule). The
    workload scheduler boosts a stream whose demand overlaps work that is
    already cheap: resident pages, another stream's open scan window, or
    a coalescible pending run. *)

val stream_scan_window : stream -> (int * int) option
(** The stream's active adaptive scan window as inclusive page bounds,
    if its XSchedule has one open. *)

val stream_violations : ?results:int -> stream -> string list
(** {!Invariant.post_run} over the stream's context and I/O operator.
    Only meaningful once the whole buffer pool is quiescent (every
    concurrent stream finished or abandoned) — the buffer-level checks
    are global. *)

val stream_abandon : stream -> unit
(** Tear the stream's I/O operator down (release its cluster pin,
    cancel its outstanding I/O, drop queued work). Use when a
    post-fallback stream raised {!Xnav_storage.Buffer_manager.Buffer_full}
    — its results must then be recomputed with the simple method. *)

val cold_run :
  ?config:Context.config ->
  ?contexts:Xnav_store.Node_id.t list ->
  ?trace:(string -> unit) ->
  ?ordered:bool ->
  Xnav_store.Store.t ->
  Xnav_xpath.Path.t ->
  Plan.t ->
  result
(** {!run} preceded by a buffer reset and disk-clock reset — each
    measurement starts cold, as in the paper's setup (Sec. 6.1). *)

val pp_metrics : Format.formatter -> metrics -> unit
