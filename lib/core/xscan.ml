module Store = Xnav_store.Store
module Node_id = Xnav_store.Node_id
module Node_record = Xnav_store.Node_record
open Path_instance

type t = {
  ctx : Context.t;
  path_len : int;
  factory : unit -> unit -> Node_id.t option;
  mutable contexts : unit -> Node_id.t option;
  mutable peeked : Node_id.t option;
  mutable next_page : int;
  last_page : int;
  mutable view : Store.view option;
  agenda : Path_instance.t Queue.t;
  mutable restarted : bool;
  mutable scanned : int;
}

let create ctx ~path_len ~contexts =
  let store = ctx.Context.store in
  {
    ctx;
    path_len;
    factory = contexts;
    contexts = contexts ();
    peeked = None;
    next_page = Store.first_page store;
    last_page = Store.first_page store + Store.page_count store - 1;
    view = None;
    agenda = Queue.create ();
    restarted = false;
    scanned = 0;
  }

let clusters_scanned t = t.scanned

let release_view t =
  match t.view with
  | None -> ()
  | Some view ->
    Store.release t.ctx.Context.store view;
    t.view <- None

let pull_context t =
  match t.peeked with
  | Some id ->
    t.peeked <- None;
    Some id
  | None -> t.contexts ()

(* Emit context instances located in [pid], then the speculative
   left-incomplete instances for every Up border of the cluster. *)
let load_agenda t pid view =
  let rec contexts_here () =
    match pull_context t with
    | None -> ()
    | Some id ->
      let cluster = Node_id.cluster id in
      if cluster < pid then
        invalid_arg "Xscan: context nodes must arrive sorted by cluster id"
      else if cluster > pid then t.peeked <- Some id
      else begin
        let slot = id.Node_id.slot in
        (match Store.get view slot with
        | Node_record.Core core ->
          Queue.add
            { s_l = 0; n_l = id; left_incomplete = false; s_r = 0; n_r = R_core { view; slot; core } }
            t.agenda
        | Node_record.Down _ | Node_record.Up _ ->
          invalid_arg "Xscan: context is a border record");
        contexts_here ()
      end
  in
  contexts_here ();
  List.iter
    (fun slot ->
      let id = Store.id_of view slot in
      for step = 0 to t.path_len - 1 do
        t.ctx.Context.counters.Context.specs_created <-
          t.ctx.Context.counters.Context.specs_created + 1;
        Queue.add
          { s_l = step; n_l = id; left_incomplete = true; s_r = step; n_r = R_entry { view; slot } }
          t.agenda
      done)
    (Store.up_slots view)

(* Tear the operator down mid-run; see {!Xschedule.abandon}. The scan
   holds at most its current view and schedules no asynchronous I/O. *)
let abandon t =
  release_view t;
  Queue.clear t.agenda;
  t.peeked <- None;
  t.restarted <- true;
  t.contexts <- (fun () -> None)

let rec next t =
  if Context.fallback t.ctx && not t.restarted then begin
    (* Fallback: drop the scan, restart the producer, act as identity. *)
    t.restarted <- true;
    release_view t;
    Queue.clear t.agenda;
    t.peeked <- None;
    t.contexts <- t.factory ()
  end;
  if t.restarted then begin
    match pull_context t with
    | None -> None
    | Some id ->
      let info = Store.info t.ctx.Context.store id in
      Some { s_l = 0; n_l = id; left_incomplete = false; s_r = 0; n_r = R_info info }
  end
  else begin
    match Queue.take_opt t.agenda with
    | Some instance -> Some instance
    | None ->
      release_view t;
      if t.next_page > t.last_page then None
      else begin
        let pid = t.next_page in
        t.next_page <- pid + 1;
        t.scanned <- t.scanned + 1;
        t.ctx.Context.counters.Context.clusters_visited <-
          t.ctx.Context.counters.Context.clusters_visited + 1;
        if Context.tracing t.ctx then
          Context.emit t.ctx (fun () -> Printf.sprintf "XScan: scan cluster %d" pid);
        let view = Store.view t.ctx.Context.store pid in
        t.view <- Some view;
        load_agenda t pid view;
        next t
      end
  end
