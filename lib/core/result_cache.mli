(** Statement + result cache: the repeat-traffic front door.

    Production path workloads are dominated by repeated statements; the
    paper's engine re-plans and re-navigates each one from scratch. This
    module memoizes the final answer of a root-context location-path
    run, keyed on the {e normalized path text} and validated against the
    store's {!Xnav_store.Store.mutation_stamp} — the same freshness
    discipline that stales the path partition, so an
    {!Xnav_store.Update.insert} invisibly invalidates every affected
    entry without any write-side bookkeeping beyond the existing
    [note_mutation].

    The cache is process-wide and bounded: entries from different
    stores are disambiguated by {!Xnav_store.Store.uid}, least-recently
    used entries are evicted once {!capacity} is exceeded, and a hit is
    allocation-free (intrusive LRU relink; the cached node list is
    returned without copying).

    Consultation is governed by {!Context.config.result_cache} — off by
    default in the library so every historical execution path is
    byte-for-byte unchanged; the [xnav] front end and the workload/bench
    harnesses switch it on. Only root-context runs are cached: those are
    the repeated statements, and restricting the key to the path text
    keeps hits cheap. *)

type entry
(** A live cache entry. Valid until the next structural mutation of its
    store; do not retain across updates — re-{!find} instead. *)

val nodes : entry -> Xnav_store.Store.info list
(** The cached answer: distinct nodes in document order. *)

val count : entry -> int

val find : Xnav_store.Store.t -> string -> entry option
(** [find store path] looks up the answer for normalized [path] text.
    A stale entry (computed under an older mutation stamp) is dropped
    and reported as a miss — stamps only grow, so it could never become
    valid again. A hit moves the entry to the MRU position. *)

val add : Xnav_store.Store.t -> string -> count:int -> Xnav_store.Store.info list -> int
(** [add store path ~count nodes] installs (or refreshes) the answer
    under the store's current mutation stamp and returns the number of
    LRU evictions that made room (0 or 1 in steady state; a no-op
    returning 0 when {!capacity} is 0). [nodes] must be distinct and in
    document order. *)

val capacity : unit -> int

val set_capacity : int -> unit
(** Bound the entry count (default 256), evicting LRU entries if the
    cache currently exceeds it. [0] disables insertion entirely. *)

val size : unit -> int

val clear : unit -> unit
(** Drop every entry (cumulative statistics are kept; see
    {!reset_stats}). The differential harness clears between cases. *)

type stats = { hits : int; misses : int; evictions : int; stales : int }

val stats : unit -> stats
(** Cumulative since process start (or {!reset_stats}): [stales] counts
    the subset of [misses] caused by mutation-stamp invalidation. *)

val reset_stats : unit -> unit
