(** Statement + result cache: the repeat-traffic front door.

    Production path workloads are dominated by repeated statements; the
    paper's engine re-plans and re-navigates each one from scratch. This
    module memoizes the final answer of a root-context location-path
    run, keyed on the {e normalized path text} and validated against the
    store's mutation stamps. Validation is {e cluster-granular}: entries
    installed with a cluster footprint (the set of pids the run read —
    see {!add}) survive writes to other clusters and are only staled
    when a mutation touches a footprint pid
    ({!Xnav_store.Store.page_stamp}); entries without a footprint fall
    back to the store-global stamp and are staled by any mutation. This
    is sound for navigation-derived answers because any structural
    change that alters a query's answer writes at least one cluster the
    run read (splices write the anchor's cluster, deletes write every
    removed record's cluster); runs seeded from the path partition read
    no pages for their seeds, so they must be installed {e without} a
    footprint.

    The cache is process-wide and bounded: entries from different
    stores are disambiguated by {!Xnav_store.Store.uid} {e and} the
    document's content digest {!Xnav_store.Store.identity} — uids are a
    per-process counter, so a uid alone could alias two different
    documents across a uid-counter reset (a fresh process over a warm
    cache); the digest makes such a reuse a clean miss instead of a
    wrong answer. Least-recently used entries are evicted once
    {!capacity} is exceeded, and a hit is allocation-free (intrusive LRU
    relink; the cached node list is returned without copying).

    Consultation is governed by {!Context.config.result_cache} — off by
    default in the library so every historical execution path is
    byte-for-byte unchanged; the [xnav] front end and the workload/bench
    harnesses switch it on. Only root-context runs are cached: those are
    the repeated statements, and restricting the key to the path text
    keeps hits cheap. *)

type entry
(** A live cache entry. Valid until the next structural mutation of its
    store; do not retain across updates — re-{!find} instead. *)

val nodes : entry -> Xnav_store.Store.info list
(** The cached answer: distinct nodes in document order. *)

val count : entry -> int

val find : Xnav_store.Store.t -> string -> entry option
(** [find store path] looks up the answer for normalized [path] text.
    A stale entry (a mutation touched its cluster footprint — or, for
    footprint-less entries, any mutation) is dropped and reported as a
    miss — stamps only grow, so it could never become valid again. A
    valid hit moves the entry to the MRU position. *)

val add :
  ?clusters:int array ->
  Xnav_store.Store.t ->
  string ->
  count:int ->
  Xnav_store.Store.info list ->
  int
(** [add ?clusters store path ~count nodes] installs (or refreshes) the
    answer under the store's current mutation stamp and returns the
    number of LRU evictions that made room (0 or 1 in steady state; a
    no-op returning 0 when {!capacity} is 0). [nodes] must be distinct
    and in document order. [clusters], when given, is the complete set
    of pids the run read — the entry then survives writes to other
    clusters. Omit it for answers not derived purely from page reads
    (index-seeded runs). *)

val stale_clusters : Xnav_store.Store.t -> int array -> int
(** [stale_clusters store touched] proactively drops this store's
    entries whose footprint intersects the [touched] pids (plus its
    footprint-less entries), returning how many were dropped (each also
    counted in [stats.stales]). Writer commits call this so
    invalidation cost is observable per update; skipping it is safe —
    {!find} performs the same check lazily. *)

val capacity : unit -> int

val set_capacity : int -> unit
(** Bound the entry count (default 256), evicting LRU entries if the
    cache currently exceeds it. [0] disables insertion entirely;
    negative values are clamped to [0]. *)

val size : unit -> int

val clear : unit -> unit
(** Drop every entry (cumulative statistics are kept; see
    {!reset_stats}). The differential harness clears between cases. *)

type stats = { hits : int; misses : int; evictions : int; stales : int }

val stats : unit -> stats
(** Cumulative since process start (or {!reset_stats}): [stales] counts
    the subset of [misses] caused by mutation-stamp invalidation. *)

val reset_stats : unit -> unit
