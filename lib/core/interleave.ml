module Store = Xnav_store.Store
module Node_id = Xnav_store.Node_id
module Disk = Xnav_storage.Disk
module Buffer_manager = Xnav_storage.Buffer_manager
module Ordpath = Xnav_xml.Ordpath

type query_result = { count : int; nodes : Store.info list; fell_back : bool }

type result = {
  queries : query_result array;
  io_time : float;
  cpu_time : float;
  total_time : float;
  page_reads : int;
  seek_distance : int;
}

type lane = {
  path : Xnav_xpath.Path.t;
  stream : Exec.stream;
  seen : unit Node_id.Tbl.t;
  nodes : Store.info Vec.t;  (* arrival order *)
  mutable live : bool;
  mutable recompute : bool;  (* stream wedged post-fallback; redo with Simple *)
}

let run ?config ?contexts ?(ordered = true) ~cold store queries =
  if queries = [] then invalid_arg "Interleave.run: no queries";
  let buffer = Store.buffer store in
  let disk = Buffer_manager.disk buffer in
  if cold then begin
    Buffer_manager.reset buffer;
    Disk.reset_clock disk
  end;
  let disk_before = Disk.stats disk in
  let io_before = Disk.elapsed disk in
  let cpu_before = Sys.time () in
  let lanes =
    Array.of_list
      (List.map
         (fun (path, plan) ->
           {
             path;
             stream = Exec.prepare ?config ?contexts store path plan;
             seen = Node_id.Tbl.create 64;
             nodes = Vec.create ();
             live = true;
             recompute = false;
           })
         queries)
  in
  let live = ref (Array.length lanes) in
  while !live > 0 do
    Array.iter
      (fun lane ->
        if lane.live then begin
          match Exec.stream_next lane.stream with
          | None ->
            lane.live <- false;
            decr live
          | Some info ->
            if not (Node_id.Tbl.mem lane.seen info.Store.id) then begin
              Node_id.Tbl.replace lane.seen info.Store.id ();
              Vec.push lane.nodes info
            end
          | exception Buffer_manager.Buffer_full when Exec.stream_fell_back lane.stream ->
            (* Post-fallback the lane navigates globally while its I/O
               operator (and the other lanes') pin clusters; a
               near-minimal buffer can wedge. Drop the lane's pipeline
               and recompute it with the Simple method below. *)
            Exec.stream_abandon lane.stream;
            lane.recompute <- true;
            lane.live <- false;
            decr live
        end)
      lanes
  done;
  Array.iter
    (fun lane ->
      if lane.recompute then begin
        let r = Exec.run ?config ?contexts ~ordered:false store lane.path Plan.simple in
        Vec.clear lane.nodes;
        List.iter (Vec.push lane.nodes) r.Exec.nodes
      end)
    lanes;
  let cpu_time = Sys.time () -. cpu_before in
  let io_time = Disk.elapsed disk -. io_before in
  let disk_after = Disk.stats disk in
  let pinned = Buffer_manager.pinned_count buffer in
  if pinned <> 0 then failwith (Printf.sprintf "Interleave.run: %d pages left pinned" pinned);
  let finish lane =
    let count = Vec.length lane.nodes in
    let nodes =
      if ordered then
        Vec.sorted_to_list (fun (a : Store.info) b -> Ordpath.compare a.ordpath b.ordpath)
          lane.nodes
      else Vec.to_list lane.nodes
    in
    { count; nodes; fell_back = Exec.stream_fell_back lane.stream }
  in
  {
    queries = Array.map finish lanes;
    io_time;
    cpu_time;
    total_time = io_time +. cpu_time;
    page_reads = disk_after.Disk.reads - disk_before.Disk.reads;
    seek_distance = disk_after.Disk.seek_distance - disk_before.Disk.seek_distance;
  }
