(** The bench JSON schema tag, in one place.

    Every [bench] JSON emitter stamps its output with this string, the
    committed [BENCH_results.json] baseline must carry it, and the test
    suite asserts that it does — so a schema bump is a one-line change
    here instead of a copy-paste hunt.

    History (see EXPERIMENTS.md for what each revision added):
    [/1] per-plan metrics, [/2] batched I/O counters, [/3] workload
    mode, [/4] structural-index counters, [/5] fused-chain counters +
    micro tier, [/6] result-cache / shared-demand counters + the skewed
    repeat-query workload section. *)

val version : string
(** ["xnav-bench/6"]. *)
