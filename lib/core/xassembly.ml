module Store = Xnav_store.Store
module Node_id = Xnav_store.Node_id
open Path_instance

(* A speculation stored in [S], unswizzled. *)
type spec_right =
  | Sr_result of Store.info  (* right-complete at the final step *)
  | Sr_entry of int * Node_id.t  (* right-incomplete: (s_r, target Up) *)

type spec = { sp_l : int; sp_n : Node_id.t; right : spec_right }

let create ctx ~path_len ~xschedule ?xindex ~dslash producer =
  let counters = ctx.Context.counters in
  (* R, split into reachability (per step) and the final result set. *)
  let r_reach = Array.init (path_len + 1) (fun _ -> Node_id.Tbl.create 64) in
  let r_result : unit Node_id.Tbl.t = Node_id.Tbl.create 256 in
  (* S, indexed by left end. *)
  let s_store = Array.init (path_len + 1) (fun _ -> Node_id.Tbl.create 64) in
  let s_count = ref 0 in
  let resolved : Store.info Queue.t = Queue.create () in

  let reachable s id = (dslash && s <= 1) || Node_id.Tbl.mem r_reach.(s) id in

  let emit_result info =
    if not (Node_id.Tbl.mem r_result info.Store.id) then begin
      Node_id.Tbl.replace r_result info.Store.id ();
      counters.Context.results_emitted <- counters.Context.results_emitted + 1;
      if Context.tracing ctx then
        Context.emit ctx (fun () ->
            Printf.sprintf "XAssembly: full path -> result %s" (Node_id.to_string info.Store.id));
      Queue.add info resolved
    end
    else counters.Context.dedup_hits <- counters.Context.dedup_hits + 1
  in

  let clear_s () =
    Array.iter Node_id.Tbl.reset s_store;
    s_count := 0
  in

  let store_spec spec =
    if Context.fallback ctx then ()
    else begin
      if Context.tracing ctx then
        Context.emit ctx (fun () ->
            Printf.sprintf "XAssembly: store speculation (if %s reachable at step %d)"
              (Node_id.to_string spec.sp_n) spec.sp_l);
      let bucket = Option.value ~default:[] (Node_id.Tbl.find_opt s_store.(spec.sp_l) spec.sp_n) in
      Node_id.Tbl.replace s_store.(spec.sp_l) spec.sp_n (spec :: bucket);
      counters.Context.specs_stored <- counters.Context.specs_stored + 1;
      incr s_count;
      if !s_count > counters.Context.s_peak then counters.Context.s_peak <- !s_count;
      if !s_count > ctx.Context.config.Context.memory_budget then begin
        (* Low-memory situation: revert to the simple method. *)
        Context.enter_fallback ctx;
        clear_s ()
      end
    end
  in

  (* Propagate a newly reachable right end through R, S and Q. *)
  let rec add_reachable s target =
    if reachable s target then () (* edge already crossed for this step *)
    else begin
      if not (dslash && s <= 1) then Node_id.Tbl.replace r_reach.(s) target ();
      (* Queue the continuation for the I/O operator, if one listens. *)
      (match xschedule with
      | Some sched -> Xschedule.push sched ~s_l:0 ~n_l:target ~s_r:s ~target
      | None -> (
        match xindex with
        | Some index -> Xindex.push index ~s_l:0 ~n_l:target ~s_r:s ~target
        | None -> ()));
      (* Discharge speculations anchored at (s, target). *)
      match Node_id.Tbl.find_opt s_store.(s) target with
      | None -> ()
      | Some specs ->
        Node_id.Tbl.remove s_store.(s) target;
        s_count := !s_count - List.length specs;
        List.iter
          (fun spec ->
            counters.Context.specs_resolved <- counters.Context.specs_resolved + 1;
            if Context.tracing ctx then
              Context.emit ctx (fun () ->
                  Printf.sprintf "XAssembly: speculation at (%d,%s) discharged" s
                    (Node_id.to_string target));
            match spec.right with
            | Sr_result info -> emit_result info
            | Sr_entry (s_r, target') -> add_reachable s_r target')
          specs
    end
  in

  let info_of_right p =
    match p.n_r with
    | R_core { view; slot; core } ->
      {
        Store.id = Store.id_of view slot;
        tag = core.Xnav_store.Node_record.tag;
        ordpath = core.Xnav_store.Node_record.ordpath;
      }
    | R_info info -> info
    | R_pending _ | R_entry _ -> assert false
  in

  let rec next () =
    match Queue.take_opt resolved with
    | Some info -> Some info
    | None -> begin
      match producer () with
      | None -> None
      | Some p -> begin
        match p.n_r with
        | R_core _ | R_info _ ->
          (* Right-complete instances reach the top only at the final
             step (inner steps are consumed by their XStep). *)
          assert (p.s_r = path_len);
          let info = info_of_right p in
          if p.left_incomplete then begin
            if Context.fallback ctx then () (* S discarded: scan restart recomputes *)
            else if reachable p.s_l p.n_l then emit_result info
            else store_spec { sp_l = p.s_l; sp_n = p.n_l; right = Sr_result info }
          end
          else emit_result info;
          next ()
        | R_pending target ->
          if p.left_incomplete then begin
            if Context.fallback ctx then ()
            else if reachable p.s_l p.n_l then add_reachable p.s_r target
            else store_spec { sp_l = p.s_l; sp_n = p.n_l; right = Sr_entry (p.s_r, target) }
          end
          else add_reachable p.s_r target;
          next ()
        | R_entry _ ->
          (* An unextended speculation seed: its XStep found nothing to
             continue with — per the XStep spec it should have been
             filtered, but a zero-length path cannot occur here. *)
          assert false
      end
    end
  in
  next
