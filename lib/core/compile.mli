(** Plan compilation, including the cost model the paper leaves as
    future work ("a cost model to support the choice of the
    I/O-performing operator", Sec. 7).

    The model estimates, from the document statistics collected at
    import time (tag counts, node count, page count) and the disk's cost
    parameters:

    - [cost_scan]: one sequential pass over all pages plus the CPU spent
      generating and maintaining speculative instances (proportional to
      nodes x steps);
    - [cost_schedule]: the touched nodes' proportional share of the
      document's pages fetched at (scheduler-discounted) random-access
      cost;
    - [cost_simple]: the same page share fetched at full random cost,
      once per step that reaches it (no batching, no reordering).

    When the store carries the import-time path synopsis
    ({!Xnav_store.Doc_stats}), touched-node counts come from frontier
    propagation over parent/child tag-pair statistics; otherwise a crude
    per-tag upper bound is used. Either way the model separates the
    regimes the paper's evaluation exhibits: low-selectivity paths (Q7)
    go to XScan, selective paths (Q15) to the structural index (or, with
    no fresh partition, to XSchedule) — [cost_index] being the fourth
    term, computed exactly from the partition's entry lists. *)

type choice = Auto | Force_simple | Force_schedule | Force_scan | Force_index

type estimate = {
  touched_nodes : int;  (** Upper bound on nodes enumerated by the steps. *)
  est_pages : int;  (** Estimated distinct clusters a schedule plan loads. *)
  fused : bool;
      (** Whether the reordered-shape CPU terms assume the fused
          automaton's reduced per-node cost (the default) or the
          per-step iterator chain's. *)
  cost_simple : float;
  cost_schedule : float;
  cost_scan : float;
  cost_index : float;
      (** Covering paths (pure self/child chains the summary resolves
          exactly) cost only per-entry CPU — the partition carries id,
          tag and ordpath, so no page is read. Paths with a residual
          suffix pay an exact seed-cluster walk (consecutive clusters at
          transfer cost, gaps at random cost) plus tail navigation: when
          the synopsis shows the seed prefix prunes the tail to a
          minority of the document, the tail's page share is priced at
          near-sequential transfer cost (the residual operator serves
          pending clusters smallest-pid-first over contiguous seed
          subtrees), so [Auto] can pick residual seeding for q6'-style
          queries; otherwise the term keeps its conservative
          [>= cost_schedule] price. [infinity] when the store has no
          fresh partition or the path has non-downward steps. *)
}

val estimate : ?fused:bool -> Xnav_store.Store.t -> Xnav_xpath.Path.t -> estimate
(** [fused] (default [true]) selects which per-node CPU constant the
    reordered-shape terms charge. *)

val compile :
  ?choice:choice ->
  ?context_is_root:bool ->
  Xnav_store.Store.t ->
  Xnav_xpath.Path.t ->
  Plan.t
(** [compile store path] picks a plan. Paths with non-downward axes
    always compile to the Simple method (the physical cursors cover the
    downward axes; see {!Xnav_xml.Axis.is_downward}). [context_is_root]
    (default [true]) enables the [//] optimisation on scan plans.

    [Auto] only considers the index plan when [context_is_root] — the
    partition's classes are anchored at the document root — and when the
    store's partition is fresh ([cost_index] is infinite otherwise, so a
    post-update store re-plans to navigation automatically).

    @raise Invalid_argument if [Force_schedule]/[Force_scan]/[Force_index]
    is requested for a non-downward path. *)

val plan_for :
  ?choice:choice ->
  ?rewrite:bool ->
  ?context_is_root:bool ->
  Xnav_store.Store.t ->
  Xnav_xpath.Path.t ->
  Xnav_xpath.Path.t * Plan.t
(** Like {!compile}, optionally running the logical normaliser
    ({!Xnav_xpath.Rewrite.normalize}) first — requirement 4 of the paper:
    physical reordering composes with orthogonal logical optimisation.
    Returns the (possibly rewritten) path together with its plan; execute
    that path, not the original. *)

val pp_estimate : Format.formatter -> estimate -> unit
