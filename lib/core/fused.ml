module Store = Xnav_store.Store
module Node_record = Xnav_store.Node_record
module Path = Xnav_xpath.Path
module Axis = Xnav_xml.Axis
open Path_instance

(* The fused operator compiles the whole downward chain into one explicit
   state machine per cluster visit. Its work-stack replaces every layer
   of the iterator chain at once:

   - the chain of XStep closures (one intermediate Path_instance
     allocated and consumed per extension),
   - each XStep's intra-cluster cursor (a heap agenda plus one [emission]
     allocation per node pulled through {!Store.next_emission}), and
   - the full record decode behind both (~90 heap words per record:
     page-copy string, slot options, ordpath — the dominant scan CPU).

   A stack entry is one unboxed int packing (step, sibling-chain
   position, descend flag); processing it reads the record's packed
   navigation word ({!Store.nav}) straight off the page bytes and
   re-pushes at most two packed continuations (next sibling, subtree).
   Node tests compare the word's tag id against a per-state tag table.
   Nothing is allocated per transition — only results (S_R = path
   length, full-decoded then) and deferred crossings materialise a
   Path_instance.

   Local entries (>= 0):  bits 26.. = step i | bit 25 = descend
                          | bits 0..24 = chain slot + 1.
   Global entries (< 0):  -((i lsl 26) lor (gidx + 1)) where [gidx]
                          indexes the side table of fallback / info
                          enumerators (cold path: closures are fine
                          there).

   Slot numbers are bounded by the page's slot directory (a few thousand
   at most) and step indices by the path length, so the packing never
   overflows a 63-bit int. *)

let local_entry ~i ~descend slot =
  (i lsl 26) lor (if descend then 1 lsl 25 else 0) lor (slot + 1)

type t = {
  ctx : Context.t;
  cnt : Context.counters;  (* ctx.counters, loaded once for the hot loop *)
  path_len : int;
  test_tags : int array;
      (* the per-state node-test table: test_tags.(i - 1) is chain step
         [i]'s required tag id, -1 when any tag matches *)
  tests : Path.node_test array;  (* same tests, for the (cold) global path *)
  axes : Axis.t array;
  producer : unit -> Path_instance.t option;
  stack : int Vec.t;
  globals : (unit -> Store.info option) Vec.t;
      (* enumerators referenced by negative stack entries; cleared
         whenever the stack drains *)
  (* The current episode: the cluster and left fields of the producer
     instance whose chain suffix we are walking. Constant down the whole
     stack — the XStep chain copied them into every intermediate
     instance; here they live once. *)
  mutable view : Store.view option;
  mutable s_l : int;
  mutable n_l : Xnav_store.Node_id.t;
  mutable left_incomplete : bool;
}

let create ctx ~path producer =
  {
    ctx;
    cnt = ctx.Context.counters;
    path_len = Path.length path;
    test_tags =
      Array.of_list
        (List.map
           (fun (s : Path.step) ->
             match s.Path.test with
             | Path.Name tag -> Xnav_xml.Tag.id tag
             | Path.Wildcard | Path.Any_node -> -1)
           path);
    tests = Array.of_list (List.map (fun (s : Path.step) -> s.Path.test) path);
    axes = Array.of_list (List.map (fun (s : Path.step) -> s.Path.axis) path);
    producer;
    stack = Vec.create ();
    globals = Vec.create ();
    view = None;
    s_l = 0;
    n_l = Xnav_store.Node_id.make ~pid:0 ~slot:0;
    left_incomplete = false;
  }

let push_chain t ~i ~descend slot =
  if slot >= 0 then Vec.push t.stack (local_entry ~i ~descend slot)

(* Opening the enumeration for a step counts as one automaton state —
   the analogue of "allocate an intermediate instance, hand it to the
   next XStep, open its cursor" in the chain. Sibling-continuation
   re-pushes inside a chain walk are not new states. *)
let push_global t ~i enum =
  t.cnt.Context.fused_states <- t.cnt.Context.fused_states + 1;
  let gidx = Vec.length t.globals in
  Vec.push t.globals enum;
  Vec.push t.stack (-((i lsl 26) lor (gidx + 1)))

(* Emit a finished instance. Only results (S_R = path length) and
   deferred crossings allocate a Path_instance — the per-step
   intermediates of the iterator chain are gone, which is the point. *)
let emit t ~s_r n_r =
  t.cnt.Context.instances <- t.cnt.Context.instances + 1;
  Some { s_l = t.s_l; n_l = t.n_l; left_incomplete = t.left_incomplete; s_r; n_r }

(* A result: the node in [slot] matched the final step. Only here does
   the full record get decoded — XAssembly and the executor need its
   ordpath and the rest of the core. *)
let emit_result t ~slot view =
  match Store.get view slot with
  | Node_record.Core core -> emit t ~s_r:t.path_len (R_core { view; slot; core })
  | Node_record.Down _ | Node_record.Up _ -> assert false (* the nav word said Core *)

(* [open_step] starts chain step [i]'s enumeration from a core node that
   matched step [i - 1] (or from the episode's seed), given that node's
   navigation word [w]. The fallback check happens here, at push time —
   exactly when the iterator chain consumed the corresponding
   intermediate instance and chose a local cursor vs a global
   enumerator. [reached] handles a node that matched step [i]: either
   the path is complete or the next step opens from it. *)
let rec open_step t ~i ~slot ~w view =
  if Context.fallback t.ctx then begin
    let enum =
      Store.global_axis t.ctx.Context.store t.axes.(i - 1) (Store.id_of view slot)
    in
    push_global t ~i enum;
    next t
  end
  else begin
    match t.axes.(i - 1) with
    | Axis.Self ->
      t.cnt.Context.fused_transitions <- t.cnt.Context.fused_transitions + 1;
      let want = t.test_tags.(i - 1) in
      if want < 0 || want = Node_record.nav_high w then reached t ~i ~slot ~w view else next t
    | Axis.Child ->
      t.cnt.Context.fused_states <- t.cnt.Context.fused_states + 1;
      push_chain t ~i ~descend:false (Node_record.nav_link1 w);
      next t
    | Axis.Descendant ->
      t.cnt.Context.fused_states <- t.cnt.Context.fused_states + 1;
      push_chain t ~i ~descend:true (Node_record.nav_link1 w);
      next t
    | Axis.Descendant_or_self ->
      t.cnt.Context.fused_states <- t.cnt.Context.fused_states + 1;
      (* Subtree below, self-test on top: the node's own extensions
         drain before its descendants, preorder. *)
      push_chain t ~i ~descend:true (Node_record.nav_link1 w);
      t.cnt.Context.fused_transitions <- t.cnt.Context.fused_transitions + 1;
      let want = t.test_tags.(i - 1) in
      if want < 0 || want = Node_record.nav_high w then reached t ~i ~slot ~w view else next t
    | Axis.Parent | Axis.Ancestor | Axis.Ancestor_or_self | Axis.Following_sibling
    | Axis.Preceding_sibling ->
      assert false (* Exec only fuses downward paths *)
  end

and reached t ~i ~slot ~w view =
  if i = t.path_len then emit_result t ~slot view else open_step t ~i:(i + 1) ~slot ~w view

(* Continue step [i] across a border entry (the episode seed is an
   [R_entry]): the [Up] record anchors the remote run of the sibling
   chain being enumerated. Mirrors {!Store.resume} — [Self] never
   crosses, so a speculative self-seed enumerates nothing locally. *)
and open_resume t ~i ~slot view =
  if Context.fallback t.ctx then begin
    let enum =
      Store.global_resume t.ctx.Context.store t.axes.(i - 1) (Store.id_of view slot)
    in
    push_global t ~i enum;
    next t
  end
  else begin
    let w = Store.nav view slot in
    if Node_record.nav_kind w <> Node_record.nav_up then
      invalid_arg "Fused: R_entry does not name an Up border record";
    match t.axes.(i - 1) with
    | Axis.Self -> next t
    | Axis.Child ->
      t.cnt.Context.fused_states <- t.cnt.Context.fused_states + 1;
      push_chain t ~i ~descend:false (Node_record.nav_link1 w);
      next t
    | Axis.Descendant | Axis.Descendant_or_self ->
      t.cnt.Context.fused_states <- t.cnt.Context.fused_states + 1;
      push_chain t ~i ~descend:true (Node_record.nav_link1 w);
      next t
    | Axis.Parent | Axis.Ancestor | Axis.Ancestor_or_self | Axis.Following_sibling
    | Axis.Preceding_sibling ->
      assert false
  end

and next t =
  if Vec.length t.stack = 0 then begin
    (* Stack drained: the episode is over. Drop its fallback enumerators
       and pull the producer (it may release its current view on the
       next visit — same discipline as the chain, which only reached the
       producer once every XStep state was exhausted). *)
    if Vec.length t.globals > 0 then Vec.clear t.globals;
    match t.producer () with
    | None -> None
    | Some p ->
      if p.s_r >= t.path_len then Some p (* already right-complete: forward *)
      else begin
        match p.n_r with
        | R_pending _ -> Some p (* an upstream-deferred crossing: not ours *)
        | R_core { view; slot; _ } ->
          t.s_l <- p.s_l;
          t.n_l <- p.n_l;
          t.left_incomplete <- p.left_incomplete;
          t.view <- Some view;
          let w = Store.nav view slot in
          if Node_record.nav_kind w <> Node_record.nav_core then
            invalid_arg "Fused: instance right end is not a core record";
          open_step t ~i:(p.s_r + 1) ~slot ~w view
        | R_entry { view; slot } ->
          t.s_l <- p.s_l;
          t.n_l <- p.n_l;
          t.left_incomplete <- p.left_incomplete;
          t.view <- Some view;
          open_resume t ~i:(p.s_r + 1) ~slot view
        | R_info info ->
          t.s_l <- p.s_l;
          t.n_l <- p.n_l;
          t.left_incomplete <- p.left_incomplete;
          push_global t ~i:(p.s_r + 1)
            (Store.global_axis t.ctx.Context.store t.axes.(p.s_r) info.Store.id);
          next t
      end
  end
  else begin
    let e = Vec.pop t.stack in
    if e >= 0 then begin
      (* Local chain entry: one record of the current cluster, as a
         packed navigation word straight off the page bytes. *)
      let i = e lsr 26 in
      let descend = e land (1 lsl 25) <> 0 in
      let slot = (e land 0x1FFFFFF) - 1 in
      let view =
        match t.view with Some v -> v | None -> assert false (* local entries imply a view *)
      in
      let w = Store.nav view slot in
      let kind = Node_record.nav_kind w in
      if kind = Node_record.nav_core then begin
        t.cnt.Context.fused_transitions <- t.cnt.Context.fused_transitions + 1;
        (* Continuations first (siblings below, subtree on top), then
           the node test — a match pushes the next step's entries above
           both, preserving the chain's depth-first order. *)
        push_chain t ~i ~descend (Node_record.nav_link2 w);
        if descend then push_chain t ~i ~descend:true (Node_record.nav_link1 w);
        let want = t.test_tags.(i - 1) in
        if want < 0 || want = Node_record.nav_high w then reached t ~i ~slot ~w view
        else next t
      end
      else if kind = Node_record.nav_down then begin
        t.cnt.Context.fused_transitions <- t.cnt.Context.fused_transitions + 1;
        t.cnt.Context.crossings <- t.cnt.Context.crossings + 1;
        let target =
          Xnav_store.Node_id.make ~pid:(Node_record.nav_high w) ~slot:(Node_record.nav_link2 w)
        in
        if Context.tracing t.ctx then
          Context.emit t.ctx (fun () ->
              Printf.sprintf "XStep_%d: inter-cluster edge -> %s deferred" i
                (Xnav_store.Node_id.to_string target));
        (* Right-incomplete: S_R stays i-1, the node test is deferred.
           The sibling continuation stays on the stack — enumeration
           resumes after XAssembly routes the crossing. *)
        push_chain t ~i ~descend (Node_record.nav_link1 w);
        emit t ~s_r:(i - 1) (R_pending target)
      end
      else assert false (* Up records never sit in chains *)
    end
    else begin
      (* Global entry (fallback / info-seeded): border-transparent
         enumeration through the side table. *)
      let key = -e in
      let i = key lsr 26 in
      let enum = Vec.get t.globals ((key land 0x3FFFFFF) - 1) in
      match enum () with
      | Some info ->
        t.cnt.Context.fused_transitions <- t.cnt.Context.fused_transitions + 1;
        Vec.push t.stack e;
        (* the enumerator stays armed *)
        if Path.matches t.tests.(i - 1) info.Store.tag then begin
          if i = t.path_len then emit t ~s_r:i (R_info info)
          else begin
            push_global t ~i:(i + 1)
              (Store.global_axis t.ctx.Context.store t.axes.(i) info.Store.id);
            next t
          end
        end
        else next t
      | None -> next t (* already popped: the frame just dies *)
    end
  end

let create ctx ~path producer =
  if path = [] then invalid_arg "Fused.create: empty path";
  let t = create ctx ~path producer in
  fun () -> next t
