module Store = Xnav_store.Store
module Node_id = Xnav_store.Node_id
module Path = Xnav_xpath.Path

let create ctx ~step ~dedup producer =
  let counters = ctx.Context.counters in
  let seen : unit Node_id.Tbl.t = Node_id.Tbl.create 64 in
  let current = ref None in
  let rec next () =
    match !current with
    | Some enum -> begin
      match enum () with
      | None ->
        current := None;
        next ()
      | Some (info : Store.info) ->
        if Path.matches step.Path.test info.tag then begin
          if dedup && Node_id.Tbl.mem seen info.id then begin
            counters.Context.dedup_hits <- counters.Context.dedup_hits + 1;
            next ()
          end
          else begin
            if dedup then Node_id.Tbl.replace seen info.id ();
            counters.Context.instances <- counters.Context.instances + 1;
            Some info
          end
        end
        else next ()
    end
    | None -> begin
      match producer () with
      | None -> None
      | Some (info : Store.info) ->
        current := Some (Store.global_axis ctx.Context.store step.Path.axis info.id);
        next ()
    end
  in
  next
