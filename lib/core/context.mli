(** Shared execution state of one plan run: configuration, the
    normal/fallback mode switch, and operator-level counters.

    One [Context.t] is created per plan execution and threaded through
    every operator. The [mode] reference implements the paper's fallback
    protocol (Sec. 5.4.6): when XAssembly's speculative store [S]
    outgrows [memory_budget], it flips the mode once, and every operator
    checks it on its next call — XStep stops honouring cluster borders,
    XScan restarts as the identity, XAssembly degenerates to duplicate
    elimination. *)

type serve_policy = Serve_min_pid | Serve_cost
(** How XSchedule picks the next cluster to serve from [Q] when no agenda
    is in progress: the historical deterministic minimum page id, or the
    paper's cost-sensitive weighting — queued instance count divided by
    the estimated access cost from the current head position (min-pid as
    tie-break). *)

val serve_policy_of_string : string -> serve_policy option
val serve_policy_to_string : serve_policy -> string

type config = {
  k : int;
      (** Desired minimum size of XSchedule's queue [Q] — "enough
          scheduling alternatives for the asynchronous I/O subsystem"
          (paper default: 100). *)
  speculative : bool;
      (** Whether XSchedule generates left-incomplete instances to avoid
          revisiting clusters (Sec. 5.4.4). XScan always speculates. *)
  memory_budget : int;
      (** Maximum number of instances held in [S] before the run falls
          back to the simple method. *)
  dedup_intermediate : bool;
      (** Simple plans only: eliminate duplicates after every step rather
          than only at the end (the [14]-style refinement the paper
          cites). *)
  validate : bool;
      (** Run the {!Invariant} post-run checks after every plan
          execution: no pinned frames, empty scheduler queues, consistent
          I/O scheduler structures, counter conservation. Off by default
          (it adds bookkeeping passes); the differential harness and the
          test suite switch it on. *)
  coalesce_window : int;
      (** Largest contiguous run of pending pages serviced as one
          vectored read (see {!Xnav_storage.Io_scheduler.complete_batch}).
          [0] disables batching — every request is serviced one page at
          a time, the historical behaviour. *)
  serve_policy : serve_policy;
  scan_threshold : float;
      (** Visited-region density (clusters visited ÷ span of the visited
          page range) above which XSchedule opens a bounded sequential
          scan window just past its visited frontier instead of pure
          demand scheduling. [<= 0.0] disables the hybrid. *)
  fused : bool;
      (** Evaluate reordered plans' step chains with the fused automaton
          ({!Fused}) instead of the per-step XStep iterator chain. Off
          reproduces the historical per-step execution (and I/O trace)
          exactly. Both this and the plan's own [fused] knob must be on
          for the fused operator to run. *)
  result_cache : bool;
      (** Consult the process-wide {!Result_cache} before planning a
          root-context run, and install the answer after a miss. In the
          workload engine the same knob additionally enables cross-client
          shared-scan dedup. Off by default: library callers get the
          historical from-scratch execution (and I/O trace) byte for
          byte; the [xnav] front end and the bench harness enable it. *)
  scan_resistant : bool;
      (** Run the store's buffer pool under the 2Q scan-resistant
          eviction policy
          ({!Xnav_storage.Buffer_manager.set_scan_resistant}): freshly
          read pages sit in a probationary queue and only a re-reference
          promotes them to the protected main queue, so a co-tenant's
          sequential scan cannot flush a hot working set. Off by
          default: victim choices reproduce the historical exact LRU
          byte for byte. Applied to the pool by {!Exec.run} /
          {!Exec.prepare} (and through them the workload and shard
          engines). *)
}

val default_config : config
(** [k = 100], speculation on, a 1M-instance budget, intermediate
    duplicate elimination on; coalescing window 16, cost-sensitive serve,
    scan threshold 0.5, fused chains on, result cache off, scan-resistant
    eviction off. *)

val set_fused : bool -> config -> config
(** [set_fused false config] disables the fused automaton — reordered
    plans fall back to the historical XStep iterator chain. *)

val set_result_cache : bool -> config -> config
(** [set_result_cache true config] enables the repeat-traffic front
    door: {!Result_cache} consultation in {!Exec.run} (and, through it,
    {!Query_exec}) plus shared-scan dedup in the workload engine. *)

val set_scan_resistant : bool -> config -> config
(** [set_scan_resistant true config] switches the buffer pool to the 2Q
    scan-resistant eviction policy for runs under this config. *)

type mode = Normal | Fallback

type counters = {
  mutable instances : int;  (** Path instances created. *)
  mutable crossings : int;  (** Inter-cluster edges encountered by XStep. *)
  mutable specs_created : int;
      (** Speculative seed instances generated at Up borders (one per
          border slot and step). Each seed can fan out into several
          stored speculations through the XStep chain. *)
  mutable specs_stored : int;  (** Speculations that entered XAssembly's store [S]. *)
  mutable specs_resolved : int;  (** Speculations whose left end became reachable. *)
  mutable s_peak : int;  (** High-water mark of |S|. *)
  mutable q_peak : int;  (** High-water mark of |Q|. *)
  mutable clusters_visited : int;  (** Clusters made current by an I/O operator. *)
  mutable fallbacks : int;
  mutable q_enqueued : int;  (** Items that entered XSchedule's queue [Q]. *)
  mutable q_served : int;  (** Items drained from [Q] into an agenda. *)
  mutable q_dropped : int;
      (** Items discarded when a pipeline was abandoned for a full
          restart with the simple method (see {!Xschedule.abandon}). *)
  mutable results_emitted : int;  (** Distinct result nodes emitted by XAssembly. *)
  mutable dedup_hits : int;  (** Duplicate emissions suppressed (XAssembly + UnnestMap). *)
  mutable prefetch_refusals : int;
      (** Cluster prefetches the buffer refused (every frame pinned);
          retried by XSchedule's dispatch loop. *)
  mutable swizzle_hits : int;
      (** Decoded-record cache hits in the run's swizzled views (filled
          from {!Xnav_store.Store.swizzle_stats} deltas by the driver). *)
  mutable swizzle_misses : int;  (** Cache misses (first decode of a slot). *)
  mutable scan_windows : int;  (** Adaptive scan windows entered by XSchedule. *)
  mutable scan_window_pages : int;  (** Pages swept inside those windows. *)
  mutable served_ticks : int;
      (** Workload-fairness counter: scheduler turns in which this
          query's stream was the one chosen to run (see
          {!Xnav_workload.Workload}). Always 0 for stand-alone runs. *)
  mutable starved_ticks : int;
      (** Scheduler turns this query sat runnable while another query
          was chosen. Always 0 for stand-alone runs. *)
  mutable index_entries : int;
      (** Instances seeded from the path partition's entry lists by the
          XIndex operator. Always 0 for non-index plans. *)
  mutable index_clusters : int;
      (** Clusters the XIndex operator pinned to materialise seeds. *)
  mutable index_residuals : int;
      (** Border continuations served back through XIndex while the
          XStep tail evaluated a residual suffix. *)
  mutable fused_transitions : int;
      (** Automaton transitions the fused operator processed — one per
          cursor emission consumed (reached node, crossing, or global
          enumeration hit). Always 0 when fused evaluation is off. *)
  mutable fused_states : int;
      (** Automaton states entered — work-stack frames pushed by the
          fused operator (one per partial match that opens the next
          step's enumeration). Always 0 when fused evaluation is off. *)
  mutable cache_hits : int;
      (** Result-cache hits: the run (or workload job) was answered from
          {!Result_cache} without planning or I/O. Always 0 with
          [config.result_cache] off. *)
  mutable cache_misses : int;
      (** Cacheable runs that had to execute (no entry, or the entry was
          staled by a store mutation) and installed their answer. *)
  mutable cache_evictions : int;
      (** LRU evictions this run's installation caused. *)
  mutable shared_demand : int;
      (** Workload-only: jobs whose pending cluster demand was deduped
          into another client's identical in-flight scan instead of
          evaluating independently. Always 0 for stand-alone runs. *)
  mutable writer_commits : int;
      (** Workload-only: update operations this writer job committed
          (inserts/deletes applied to the store). Always 0 for read
          jobs and stand-alone runs. *)
  mutable latch_waits : int;
      (** Workload-only: scheduler turns a writer job spent waiting for
          another writer's cluster latch. Always 0 for read jobs. *)
  mutable snapshot_retries : int;
      (** Workload-only: times a reader's in-flight stream was abandoned
          and restarted because a writer committed into a cluster the
          stream had already observed (the snapshot rule). Always 0 for
          stand-alone runs. *)
  mutable cluster_stales : int;
      (** Workload-only: result-cache entries proactively dropped by
          this writer's commits because their cluster footprint
          intersected the write set. Always 0 for read jobs. *)
  mutable scan_resist_hits : int;
      (** Buffer hits served from the 2Q main queue during this run
          (filled from {!Xnav_storage.Buffer_manager.stats} deltas by
          the driver, like the swizzle counters). Always 0 with
          [config.scan_resistant] off. *)
}

type t = {
  store : Xnav_store.Store.t;
  config : config;
  mutable mode : mode;
  counters : counters;
  mutable trace : (string -> unit) option;
      (** Optional operator-event sink (cluster visits, crossings,
          results); used to render the paper's Example 6/7 traces. *)
}

val create : ?config:config -> Xnav_store.Store.t -> t

val enter_fallback : t -> unit
(** Switch to fallback mode (idempotent; counted once). *)

val fallback : t -> bool

val tracing : t -> bool
(** Whether a trace sink is installed. Hot paths test this before
    calling {!emit} so that building the thunk itself (a closure
    allocation per event) is skipped when tracing is off. *)

val emit : t -> (unit -> string) -> unit
(** Send an event to the trace sink, if any (the thunk is only forced
    when tracing is on). *)
