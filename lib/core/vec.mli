(** Reusable growable buffers for the executor hot paths.

    The drain loops of {!Exec}, {!Multi}, {!Interleave} and
    {!Query_exec} accumulated results as cons-then-reverse lists and
    re-sorted them with [List.sort]; a [Vec] keeps one flat array per
    drain, appends in amortised O(1) without per-element allocation, and
    sorts in place exactly once at the end. [clear] keeps the storage so
    a buffer can be reused across drains. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int

val clear : 'a t -> unit
(** Empty the buffer, keeping its storage for reuse. *)

val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a

val top : 'a t -> 'a
(** Last pushed element. @raise Invalid_argument when empty. *)

val pop : 'a t -> 'a
(** Remove and return the last pushed element — with {!push} this makes
    a [Vec] the fused operator's work-stack. The slot is not cleared;
    popped frames die when overwritten or when the stack itself does.
    @raise Invalid_argument when empty. *)

val iter : ('a -> unit) -> 'a t -> unit
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t

val sort : ('a -> 'a -> int) -> 'a t -> unit
(** In-place sort of the live prefix. *)

val sorted_to_list : ('a -> 'a -> int) -> 'a t -> 'a list
(** [sort] then [to_list] — the single final sort of a drain. *)
