module Path = Xnav_xpath.Path

type io_operator =
  | Io_schedule of { speculative : bool }
  | Io_scan
  | Io_index of { resolve : int option }

type t =
  | Simple of { dedup_intermediate : bool }
  | Reordered of { io : io_operator; dslash : bool; fused : bool }

let simple = Simple { dedup_intermediate = true }

let xschedule ?(speculative = true) ?(fused = true) () =
  Reordered { io = Io_schedule { speculative }; dslash = false; fused }

let xscan ?(dslash = false) ?(fused = true) () = Reordered { io = Io_scan; dslash; fused }
let xindex ?resolve ?(fused = true) () = Reordered { io = Io_index { resolve }; dslash = false; fused }

let name = function
  | Simple _ -> "simple"
  | Reordered { io = Io_schedule { speculative = false }; _ } -> "xschedule"
  | Reordered { io = Io_schedule { speculative = true }; _ } -> "xschedule+spec"
  | Reordered { io = Io_scan; dslash = false; _ } -> "xscan"
  | Reordered { io = Io_scan; dslash = true; _ } -> "xscan+dslash"
  | Reordered { io = Io_index _; _ } -> "xindex"

let explain ppf (path, plan) =
  let steps = List.mapi (fun i s -> (i + 1, s)) path in
  match plan with
  | Simple { dedup_intermediate } ->
    Format.fprintf ppf "@[<v>Sort/DedupResult@,";
    List.iter
      (fun (i, s) ->
        Format.fprintf ppf "%s UnnestMap[%d: %a%s]@,"
          (String.make i ' ') i Path.pp_step s
          (if dedup_intermediate then " dedup" else ""))
      (List.rev steps);
    Format.fprintf ppf "%s Contexts@]" (String.make (List.length steps + 1) ' ')
  | Reordered { io; dslash; fused } ->
    Format.fprintf ppf "@[<v>XAssembly%s%s@,"
      (match io with
      | Io_schedule _ -> "(->XSchedule.Q)"
      | Io_scan -> ""
      | Io_index _ -> "(->XIndex.pending)")
      (if dslash then " //-opt" else "");
    let chain_depth =
      if fused then begin
        (* One fused operator stands in for the whole chain. *)
        Format.fprintf ppf "  Fused[1..%d: %a]@," (List.length steps)
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
             (fun ppf (i, s) -> Format.fprintf ppf "%d: %a" i Path.pp_step s))
          steps;
        2
      end
      else begin
        List.iter
          (fun (i, s) ->
            Format.fprintf ppf "%s XStep[%d: %a]@," (String.make i ' ') i Path.pp_step s)
          (List.rev steps);
        List.length steps + 1
      end
    in
    let pad = String.make chain_depth ' ' in
    (match io with
    | Io_schedule { speculative } ->
      Format.fprintf ppf "%s XSchedule[k, async I/O%s]@,%s  Contexts@]" pad
        (if speculative then ", speculative" else "")
        pad
    | Io_scan -> Format.fprintf ppf "%s XScan[sequential]@,%s  Contexts(sorted)@]" pad pad
    | Io_index { resolve } ->
      Format.fprintf ppf "%s XIndex[partition entries%s]@,%s  PathClasses@]" pad
        (match resolve with None -> "" | Some k -> Format.sprintf ", resolve<=%d" k)
        pad)
