(** The XSchedule operator (paper Sec. 5.3.4 / 5.4.4): the single
    I/O-performing operator of a schedule-based plan.

    XSchedule keeps a queue [Q] of unprocessed partial path instances —
    context nodes from its producer plus right-incomplete instances that
    XAssembly forwards through {!push}. Cluster accesses are submitted to
    the asynchronous I/O layer as soon as the instances enter [Q]; the
    operator serves whichever cluster the layer completes first, keeping
    it pinned (the {e current cluster}) while downstream XSteps navigate
    it. The producer is drained lazily so that at least [k] right ends
    are queued, giving the I/O layer scheduling alternatives.

    With [speculative] set (Sec. 5.4.4), every newly visited cluster also
    yields left-incomplete instances for each of its [Up] borders and
    each step — and {!push} drops requests whose target cluster was
    already visited, because the speculation subsumes them. Without it,
    such requests re-visit the cluster (the revisit cost speculation
    exists to avoid).

    Termination: [Q] empty and the producer exhausted. XAssembly only
    pushes in direct response to instances this operator emitted, so a
    [None] from a schedule-based plan is final. *)

type t

val create :
  Context.t -> path_len:int -> contexts:(unit -> Xnav_store.Node_id.t option) -> t
(** [contexts] produces the context NodeIDs (the paper's non-full,
    complete instances with [S_L = S_R = 0]). *)

val push :
  t ->
  s_l:int ->
  n_l:Xnav_store.Node_id.t ->
  s_r:int ->
  target:Xnav_store.Node_id.t ->
  unit
(** Queue a continuation: visit [target]'s cluster and resume step
    [s_r + 1] at the [Up] border [target]. Called by XAssembly. *)

val next : t -> Path_instance.t option
(** The iterator [next] method. *)

val queue_size : t -> int
(** |Q|: items queued but not yet served. Zero once [next] has returned
    [None]. *)

val refused_count : t -> int
(** Clusters whose prefetch the buffer refused (every frame pinned) and
    that await a retry by the dispatch loop. Zero once [next] has
    returned [None]. *)

val queued_clusters : t -> int list
(** The clusters with queued items (unordered). The workload scheduler
    uses this as the query's {e demand set}: a queued cluster that is
    already resident, inside another query's scan window, or adjacent to
    other pending requests makes this query worth serving next. *)

val scan_window : t -> (int * int) option
(** The active adaptive scan window as [(next, hi)] inclusive page
    bounds, or [None] when no window is open. *)

val abandon : t -> unit
(** Tear the operator down mid-run: release the current cluster pin,
    cancel outstanding prefetches and discard all queued work (counted
    in {!Context.counters.q_dropped}). Called by {!Exec.run} when a
    post-fallback pipeline cannot make progress (the global
    re-navigation needs a buffer frame but this operator pins the
    current cluster) and the plan restarts with the simple method. *)
