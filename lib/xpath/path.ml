module Axis = Xnav_xml.Axis
module Tag = Xnav_xml.Tag

type node_test = Name of Tag.t | Wildcard | Any_node
type step = { axis : Axis.t; test : node_test }
type t = step list

let step axis test = { axis; test }
let child name = { axis = Axis.Child; test = Name (Tag.of_string name) }
let descendant name = { axis = Axis.Descendant; test = Name (Tag.of_string name) }
let descendant_or_self_any = { axis = Axis.Descendant_or_self; test = Any_node }

let matches test tag =
  match test with
  | Name expected -> Tag.equal expected tag
  | Wildcard | Any_node -> true

let length path = List.length path
let is_downward path = List.for_all (fun s -> Axis.is_downward s.axis) path

let from_root_element = function
  | { axis = Axis.Child; test } :: rest -> { axis = Axis.Self; test } :: rest
  | path -> path

let prefix path n = List.filteri (fun i _ -> i < n) path

(* How many leading steps the path summary resolves exactly: [self::]
   and [child::] steps pin the position in a root-to-node tag sequence,
   so a prefix of them selects whole path classes. The first descendant
   step ends the prefix — its matches sit at arbitrary depths, which the
   partition leaves to residual navigation. *)
let indexable_prefix path =
  let rec go n = function
    | { axis = Axis.Self | Axis.Child; _ } :: rest -> go (n + 1) rest
    | _ -> n
  in
  go 0 path

(* Decide whether a node whose root-to-node tag sequence is [seq]
   (index 0 = the evaluation context, last = the node itself) is
   selected by the downward [path] evaluated from that context. The
   sequence's interior positions are exactly the node's proper
   ancestors below the context, so downward axes reduce to index
   arithmetic over [seq]. Non-downward steps never match. *)
let matches_sequence path seq =
  let last = Array.length seq - 1 in
  let rec go steps idx =
    match steps with
    | [] -> idx = last
    | s :: rest -> (
      let rec any j = j <= last && ((matches s.test seq.(j) && go rest j) || any (j + 1)) in
      match s.axis with
      | Axis.Self -> matches s.test seq.(idx) && go rest idx
      | Axis.Child -> idx < last && matches s.test seq.(idx + 1) && go rest (idx + 1)
      | Axis.Descendant -> any (idx + 1)
      | Axis.Descendant_or_self -> any idx
      | _ -> false)
  in
  last >= 0 && go path 0

let starts_with_descendant_any = function
  | { axis = Axis.Descendant_or_self; test = Any_node } :: _ -> true
  | _ -> false

let test_to_string = function
  | Name tag -> Tag.to_string tag
  | Wildcard -> "*"
  | Any_node -> "node()"

let pp_step ppf s = Format.fprintf ppf "%a::%s" Axis.pp s.axis (test_to_string s.test)

let pp ppf path =
  List.iter (fun s -> Format.fprintf ppf "/%a" pp_step s) path

let to_string path = Format.asprintf "%a" pp path

let equal_step a b = Axis.equal a.axis b.axis && a.test = b.test
let equal a b = List.length a = List.length b && List.for_all2 equal_step a b
