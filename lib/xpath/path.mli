(** Location-path ASTs: the query language fragment of the paper
    (Sec. 4.1).

    A location path is a sequence of steps, each an axis plus a node
    test. Node tests are "a subset of the tag alphabet": a tag name, the
    wildcard [*], or [node()]. Predicates are outside the model, exactly
    as in the paper; the physical algebra is designed to slot into a
    fuller algebra that provides them. *)

type node_test =
  | Name of Xnav_xml.Tag.t
  | Wildcard  (** [*] — any element. *)
  | Any_node  (** [node()] — any node (elements only in this model). *)

type step = { axis : Xnav_xml.Axis.t; test : node_test }

type t = step list
(** Steps [pi_1 .. pi_n]; step 0 (the context) is implicit. *)

val step : Xnav_xml.Axis.t -> node_test -> step
val child : string -> step
val descendant : string -> step
val descendant_or_self_any : step
(** The step inserted for the [//] abbreviation. *)

val matches : node_test -> Xnav_xml.Tag.t -> bool

val length : t -> int
(** [|pi|], the number of location steps. *)

val is_downward : t -> bool
(** Whether every step uses a downward axis — the condition for the
    reordering plans (XSchedule / XScan). *)

val from_root_element : t -> t
(** Adjusts an absolute path for evaluation from the {e root element}
    rather than the standard XPath document node above it: a leading
    [child::] step becomes [self::] (so [/site/...] evaluated from the
    [site] element behaves as from the document node). Paths beginning
    with [//] are returned unchanged — their result from the root element
    differs from the document-node result only for the root element's
    own tag. *)

val prefix : t -> int -> t
(** The first [n] steps (the whole path when [n >= length path]). *)

val indexable_prefix : t -> int
(** Number of leading [self::]/[child::] steps — the prefix a path
    summary resolves exactly (each such step pins one position in a
    root-to-node tag sequence). The first descendant-axis step ends the
    prefix: its matches sit at arbitrary depths and are left to residual
    navigation by the structural index. *)

val matches_sequence : t -> Xnav_xml.Tag.t array -> bool
(** [matches_sequence path seq] decides whether a node whose
    root-to-node tag sequence is [seq] — index 0 the evaluation
    context's tag, the last element the node's own tag — is selected by
    the downward [path] evaluated from that context. The interior
    positions of [seq] are exactly the node's proper ancestors below
    the context, so downward axes reduce to index arithmetic; steps
    using any non-downward axis never match. This is the path-class
    membership test behind the structural index (ISSUE 6 /
    {!Xnav_store.Path_partition}). *)

val starts_with_descendant_any : t -> bool
(** Whether the path begins with [descendant-or-self::node()] — enables
    the paper's [//] optimisation for scan plans (Sec. 5.4.5.4). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val pp_step : Format.formatter -> step -> unit
val equal : t -> t -> bool
