(** Document statistics for cardinality estimation.

    The paper leaves "a cost model to support the choice of the
    I/O-performing operator" as future work (Sec. 7). The baseline model
    in {!Xnav_core.Compile} only uses global tag counts — a gross upper
    bound. This module collects, in one pass at import time:

    - per-tag node counts,
    - parent/child tag-pair edge counts (a 2-gram path synopsis),
    - per-tag total subtree sizes,

    and estimates step-by-step result cardinalities by propagating a
    {e frontier} (tag → expected count) through the location path:
    child steps use the pair counts, descendant steps use expected
    subtree volume scaled by tag density. Estimates are capped by the
    per-tag totals. *)

type t

val collect : Xnav_xml.Tree.t -> t
(** One post-order pass over the document. *)

val collect_full : Xnav_xml.Tree.t -> t * Xnav_xml.Tag.t array array * int array
(** Same single pass as {!collect}, additionally building the path
    summary behind the structural index: a trie of the distinct
    root-to-node tag sequences. Returns [(stats, classes, class_of)]
    where [classes.(c)] is class [c]'s root-first tag sequence and
    [class_of.(p)] the class of the node with preorder rank [p] (ranks
    as assigned by {!Xnav_xml.Tree.index}, i.e. document order). *)

val node_count : t -> int
val height : t -> int
val root_tag : t -> Xnav_xml.Tag.t
val tag_count : t -> Xnav_xml.Tag.t -> int

val pair_count : t -> parent:Xnav_xml.Tag.t -> child:Xnav_xml.Tag.t -> int
(** Number of parent/child edges with these tags. *)

val avg_subtree : t -> Xnav_xml.Tag.t -> float
(** Mean subtree size (including the node itself) of nodes with the tag;
    0 if the tag does not occur. *)

type frontier = (Xnav_xml.Tag.t * float) list
(** Expected number of result nodes per tag, after some step. *)

val initial : t -> Xnav_xml.Tag.t -> frontier
(** A single context node with the given tag. *)

val root_frontier : t -> frontier
(** The document root as context. *)

val step : t -> frontier -> Xnav_xpath.Path.step -> frontier
(** Propagate one location step (estimates capped at tag totals; upward
    axes fall back to a crude bound). *)

val cardinality : frontier -> float
(** Total expected nodes in the frontier. *)

val estimate_path : t -> ?context:Xnav_xml.Tag.t -> Xnav_xpath.Path.t -> float list
(** Expected cardinality after each step (default context: the root). *)

(** {2 Persistence} (used by {!Image}) *)

val encode : Buffer.t -> t -> unit
val decode : string -> int -> t * int
