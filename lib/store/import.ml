module Tree = Xnav_xml.Tree
module Ordpath = Xnav_xml.Ordpath
module Page = Xnav_storage.Page
module Disk = Xnav_storage.Disk

type strategy = Dfs | Bfs | Scattered of int | Explicit of int array

let strategy_to_string = function
  | Dfs -> "dfs"
  | Bfs -> "bfs"
  | Scattered seed -> Printf.sprintf "scattered:%d" seed
  | Explicit _ -> "explicit"

type result = {
  root : Node_id.t;
  first_page : int;
  page_count : int;
  node_count : int;
  border_count : int;
  height : int;
  tag_counts : (Xnav_xml.Tag.t * int) list;
  stats : Doc_stats.t;
  partition : Path_partition.t;
  node_ids : Node_id.t array;
}

(* Symbolic records: cluster and slot index are fixed at creation, the
   structural references are wired up afterwards. *)
type sym = { cluster : int; idx : int; body : body }

and body = Score of score | Sdown of sdown | Sup of sup

and score = {
  tag : Xnav_xml.Tag.t;
  ordpath : Ordpath.t;
  mutable parent : sym option;
  mutable first_child : sym option;
  mutable last_child : sym option;
  mutable next_sibling : sym option;
  mutable prev_sibling : sym option;
}

and sdown = {
  mutable d_parent : sym option;
  mutable d_next_sibling : sym option;
  mutable d_prev_sibling : sym option;
  mutable d_target : sym option;
}

and sup = {
  mutable u_first_child : sym option;
  mutable u_last_child : sym option;
  mutable u_target : sym option;
  mutable u_owner : sym option;
}

(* Deterministic splitmix64-style PRNG for the Scattered strategy. *)
let make_rng seed =
  let state = ref (Int64.of_int seed) in
  fun () ->
    state := Int64.add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    Int64.to_int (Int64.logand z 0x3FFFFFFFFFFFFFFFL)

let shuffle rng order =
  let n = Array.length order in
  for i = n - 1 downto 1 do
    let j = rng () mod (i + 1) in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done

let bfs_order nodes_pre =
  let n = Array.length nodes_pre in
  let order = Array.make n 0 in
  let queue = Queue.create () in
  Queue.add nodes_pre.(0) queue;
  let i = ref 0 in
  while not (Queue.is_empty queue) do
    let node = Queue.pop queue in
    order.(!i) <- node.Tree.preorder;
    incr i;
    Array.iter (fun child -> Queue.add child queue) node.Tree.children
  done;
  order

let run ?(strategy = Dfs) ?payload disk doc =
  let node_count = Tree.index doc in
  let nodes_pre = Array.make node_count doc in
  Tree.iter (fun node -> nodes_pre.(node.Tree.preorder) <- node) doc;

  (* Ordpath labels along the tree structure. *)
  let ordpaths = Array.make node_count Ordpath.root in
  let rec label node path =
    ordpaths.(node.Tree.preorder) <- path;
    Array.iteri (fun i child -> label child (Ordpath.child path i)) node.Tree.children
  in
  label doc Ordpath.root;

  (* Exact core-record size for the packing charge. *)
  let core_size pre =
    Node_record.encoded_size
      (Node_record.Core
         {
           tag = nodes_pre.(pre).Tree.tag;
           ordpath = ordpaths.(pre);
           parent = None;
           first_child = None;
           last_child = None;
           next_sibling = None;
           prev_sibling = None;
         })
  in

  (* Assign each node a cluster: either the caller's explicit map, or a
     greedy pack over the strategy's node order. *)
  let payload =
    match payload with
    | Some p -> p
    | None -> Disk.((config disk).page_size) - Page.header_size
  in
  let payload = min payload (Disk.((config disk).page_size) - Page.header_size) in
  let cluster_of = Array.make node_count 0 in
  let cluster_count = ref 0 in
  (match strategy with
  | Explicit assignment ->
    if Array.length assignment <> node_count then
      invalid_arg "Import.run: explicit assignment length differs from node count";
    Array.iteri
      (fun pre cluster ->
        if cluster < 0 then invalid_arg "Import.run: negative cluster id";
        cluster_of.(pre) <- cluster;
        if cluster + 1 > !cluster_count then cluster_count := cluster + 1)
      assignment
  | Dfs | Bfs | Scattered _ ->
    let order =
      match strategy with
      | Dfs -> Array.init node_count (fun i -> i)
      | Bfs -> bfs_order nodes_pre
      | Scattered seed ->
        let order = Array.init node_count (fun i -> i) in
        shuffle (make_rng seed) order;
        order
      | Explicit _ -> assert false
    in
    let used = ref payload in
    Array.iter
      (fun pre ->
        let charge = core_size pre + Node_record.max_overhead in
        if charge > payload then
          invalid_arg "Import.run: page size too small for a single node record";
        if !used + charge > payload then begin
          incr cluster_count;
          used := 0
        end;
        used := !used + charge;
        cluster_of.(pre) <- !cluster_count - 1)
      order);

  (* Symbol creation: per-cluster slot counters and record lists. *)
  let next_idx = Array.make !cluster_count 0 in
  let records : sym list array = Array.make !cluster_count [] in
  let border_count = ref 0 in
  let mk cluster body =
    let idx = next_idx.(cluster) in
    next_idx.(cluster) <- idx + 1;
    let sym = { cluster; idx; body } in
    records.(cluster) <- sym :: records.(cluster);
    (match body with Score _ -> () | Sdown _ | Sup _ -> incr border_count);
    sym
  in

  let cores =
    Array.init node_count (fun pre ->
        mk cluster_of.(pre)
          (Score
             {
               tag = nodes_pre.(pre).Tree.tag;
               ordpath = ordpaths.(pre);
               parent = None;
               first_child = None;
               last_child = None;
               next_sibling = None;
               prev_sibling = None;
             }))
  in

  let core_body sym =
    match sym.body with Score c -> c | Sdown _ | Sup _ -> assert false
  in

  (* Wire up the chain of children of [p], splitting it into per-cluster
     runs linked through Down/Up border pairs. *)
  let build_chain p =
    let children = nodes_pre.(p.Tree.preorder).Tree.children in
    if Array.length children > 0 then begin
      let p_sym = cores.(p.Tree.preorder) in
      let p_core = core_body p_sym in
      (* Group consecutive children by cluster. *)
      let runs = ref [] and current = ref [] and current_cluster = ref (-1) in
      Array.iter
        (fun child ->
          let c = cluster_of.(child.Tree.preorder) in
          if c <> !current_cluster && !current <> [] then begin
            runs := (!current_cluster, List.rev !current) :: !runs;
            current := []
          end;
          current_cluster := c;
          current := child :: !current)
        children;
      runs := (!current_cluster, List.rev !current) :: !runs;
      let runs = List.rev !runs in

      (* Attach run members under [anchor]: sibling links and parents. *)
      let attach_members anchor members =
        let syms = List.map (fun child -> cores.(child.Tree.preorder)) members in
        let rec link = function
          | a :: (b :: _ as rest) ->
            (core_body a).next_sibling <- Some b;
            (core_body b).prev_sibling <- Some a;
            link rest
          | [ _ ] | [] -> ()
        in
        link syms;
        List.iter (fun sym -> (core_body sym).parent <- Some anchor) syms;
        (List.hd syms, List.nth syms (List.length syms - 1))
      in

      (* Close [prev] segment with a Down targeting [up]. Returns the
         Down so the caller can set anchors' last_child. *)
      let set_first anchor sym =
        match anchor.body with
        | Score c -> c.first_child <- Some sym
        | Sup u -> u.u_first_child <- Some sym
        | Sdown _ -> assert false
      in
      let set_last anchor sym =
        match anchor.body with
        | Score c -> c.last_child <- Some sym
        | Sup u -> u.u_last_child <- Some sym
        | Sdown _ -> assert false
      in

      let seg_anchor = ref p_sym and seg_last = ref None in
      List.iteri
        (fun j (kc, members) ->
          if j = 0 && kc = p_sym.cluster then begin
            let first, last = attach_members p_sym members in
            p_core.first_child <- Some first;
            seg_anchor := p_sym;
            seg_last := Some last
          end
          else begin
            let up =
              mk kc
                (Sup { u_first_child = None; u_last_child = None; u_target = None; u_owner = Some p_sym })
            in
            let down =
              mk !seg_anchor.cluster
                (Sdown
                   {
                     d_parent = Some !seg_anchor;
                     d_next_sibling = None;
                     d_prev_sibling = None;
                     d_target = Some up;
                   })
            in
            (match up.body with Sup u -> u.u_target <- Some down | _ -> assert false);
            (* Splice the Down into the closing segment. *)
            (match !seg_last with
            | None -> set_first !seg_anchor down
            | Some last ->
              (core_body last).next_sibling <- Some down;
              (match down.body with
              | Sdown d -> d.d_prev_sibling <- Some last
              | _ -> assert false));
            set_last !seg_anchor down;
            let first, last = attach_members up members in
            set_first up first;
            seg_anchor := up;
            seg_last := Some last
          end)
        runs;
      (* Close the final segment. *)
      match !seg_last with
      | Some last -> set_last !seg_anchor last
      | None -> assert false
    end
  in
  Array.iter build_chain nodes_pre;

  (* Physical layout: one fresh page per cluster, records in idx order. *)
  let first_page = Disk.page_count disk in
  let page_size = Disk.((config disk).page_size) in
  let node_id_of sym = Node_id.make ~pid:(first_page + sym.cluster) ~slot:sym.idx in
  let slot_of cluster = function
    | None -> None
    | Some sym ->
      assert (sym.cluster = cluster);
      Some sym.idx
  in
  let target_of = function Some sym -> node_id_of sym | None -> assert false in
  let concrete cluster sym =
    match sym.body with
    | Score c ->
      Node_record.Core
        {
          tag = c.tag;
          ordpath = c.ordpath;
          parent = slot_of cluster c.parent;
          first_child = slot_of cluster c.first_child;
          last_child = slot_of cluster c.last_child;
          next_sibling = slot_of cluster c.next_sibling;
          prev_sibling = slot_of cluster c.prev_sibling;
        }
    | Sdown d ->
      Node_record.Down
        {
          parent = slot_of cluster d.d_parent;
          next_sibling = slot_of cluster d.d_next_sibling;
          prev_sibling = slot_of cluster d.d_prev_sibling;
          target = target_of d.d_target;
        }
    | Sup u ->
      Node_record.Up
        {
          first_child = slot_of cluster u.u_first_child;
          last_child = slot_of cluster u.u_last_child;
          target = target_of u.u_target;
          owner = target_of u.u_owner;
          continues = false;
        }
  in
  for cluster = 0 to !cluster_count - 1 do
    let pid = Disk.alloc disk in
    assert (pid = first_page + cluster);
    let page = Page.create ~page_size in
    let syms = List.sort (fun a b -> Stdlib.compare a.idx b.idx) records.(cluster) in
    List.iter
      (fun sym ->
        let encoded = Node_record.encode (concrete cluster sym) in
        match Page.insert page encoded with
        | Some slot when slot = sym.idx -> ()
        | Some _ | None -> failwith "Import.run: cluster layout overflowed its page")
      syms;
    Disk.write disk pid (Page.to_bytes page)
  done;

  let stats, classes, class_of = Doc_stats.collect_full doc in
  let node_ids = Array.map node_id_of cores in
  {
    root = node_id_of cores.(0);
    first_page;
    page_count = !cluster_count;
    node_count;
    border_count = !border_count;
    height = Tree.height doc;
    tag_counts = Tree.tag_counts doc;
    stats;
    partition = Path_partition.build ~classes ~class_of ~node_ids ~ordpaths;
    node_ids;
  }
