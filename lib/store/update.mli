(** In-place document updates on the clustered store.

    The paper's storage requirements (Sec. 1, 2) are pointed squarely at
    updatability: competing scan-friendly formats "are not easily
    updated, as they use preorder numbers to identify nodes, or require
    the nodes to be stored in a particular order". This store does
    neither — NodeIDs are physical RIDs and order lives in ORDPATH
    labels — so inserts and deletes are local record surgery:

    - a node inserted next to its siblings' page goes there if the page
      has room; otherwise a one-member run is created in an overflow
      page, linked through a fresh Down/Up border pair (this is exactly
      the "incremental updates fragment the physical layout" effect of
      Sec. 1, and the decay ablation measures what it does to each
      plan);
    - ORDPATH labels for the new node come from [Ordpath.child],
      [next_sibling] or [between] — no relabeling of existing nodes;
    - deleting the only member of a run removes the run's border pair,
      cascading if that empties further runs.

    Writes are write-through: every mutated page goes to the simulated
    disk immediately, so buffer frames and disk never diverge. Every
    mutated cluster is reported via {!Store.note_mutation_at}, which is
    what keeps swizzle/result-cache/partition invalidation
    cluster-granular; inserts additionally report the new node's
    root-first tag sequence ({!Store.note_inserted}) so exactly the
    matching path class goes stale.

    Import-time statistics ({!Store.tag_counts}) are not maintained;
    {!Store.node_count} and {!Store.page_count} are. *)

type position =
  | First  (** As the first child. *)
  | Last  (** As the last child. *)
  | After of Node_id.t  (** Right after this existing child. *)

val insert_element :
  Store.t -> parent:Node_id.t -> ?position:position -> Xnav_xml.Tag.t -> Node_id.t
(** [insert_element store ~parent tag] adds a fresh leaf element under
    [parent] (default position: [Last]) and returns its NodeID.

    @raise Invalid_argument if [parent] is a border record, or the
    [After] sibling is not a child of [parent].
    @raise Failure if no page can host the new record (the store can
    only grow while it occupies the end of the disk). *)

val insert_tree :
  Store.t -> parent:Node_id.t -> ?position:position -> Xnav_xml.Tree.t -> Node_id.t
(** Inserts a whole subtree (recursively, children in order) and returns
    the NodeID of its root. *)

val delete_subtree : Store.t -> Node_id.t -> int
(** Deletes the node and everything below it, unlinking it from its
    sibling chain and collapsing any border pairs that become empty.
    Returns the number of logical nodes removed.
    @raise Invalid_argument on a border record or the document root. *)
