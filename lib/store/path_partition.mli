(** Path partition: the structural index over a clustered store.

    Following Arion et al. ({e Path Summaries and Path Partitioning in
    Modern XML Databases}), every node is assigned a {e path class} —
    the deduplicated root-to-node tag sequence, interned in a
    path-summary trie during the {!Doc_stats} import pass — and the
    partition materialises, per class, the list of {!Node_id.t}s sorted
    by (cluster, slot), each paired with the node's ORDPATH label. The
    partition is therefore {e covering} for structure-only queries: a
    downward path the summary resolves exactly (a [self::]/[child::]
    prefix) is answered straight from the entry lists — id, tag (the
    class sequence's last element) and ordpath — with no page I/O at
    all, while partially resolved paths seed navigation from the entry
    clusters (the {!Xnav_core} XIndex leaf operator). *)

type t

val build :
  classes:Xnav_xml.Tag.t array array ->
  class_of:int array ->
  node_ids:Node_id.t array ->
  ordpaths:Xnav_xml.Ordpath.t array ->
  t
(** [build ~classes ~class_of ~node_ids ~ordpaths] assembles the
    partition from {!Doc_stats.collect_full}'s summary ([classes], plus
    [class_of] per preorder rank) and the import's preorder-indexed
    [node_ids] / [ordpaths]. Raises [Invalid_argument] if the per-node
    arrays disagree in length. *)

val class_count : t -> int

val class_sequence : t -> int -> Xnav_xml.Tag.t array
(** Root-first tag sequence of a class (the node's own tag last). *)

val class_tag : t -> int -> Xnav_xml.Tag.t
(** The class members' own tag — the sequence's last element. *)

val class_entries : t -> int -> Node_id.t array
(** Entry list of a class, sorted by {!Node_id.compare} — the order the
    XIndex operator visits clusters in. *)

val class_labels : t -> int -> Xnav_xml.Ordpath.t array
(** ORDPATH labels aligned with {!class_entries} — what makes the
    partition covering: fully resolved paths emit results from here
    without touching a page. *)

val node_count : t -> int
(** Total entries across all classes (= document node count). *)

val select : t -> matches:(Xnav_xml.Tag.t array -> bool) -> int list
(** Class ids whose sequence satisfies [matches], ascending. The
    matcher is typically {!Xnav_xpath.Path.matches_sequence} partially
    applied to a downward path prefix. *)

val equal : t -> t -> bool

(** {2 Persistence} (used by {!Image}) *)

val encode : Buffer.t -> t -> unit
val decode : string -> int -> t * int
