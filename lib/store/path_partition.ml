module Tag = Xnav_xml.Tag
module Ordpath = Xnav_xml.Ordpath

type t = {
  classes : Tag.t array array;  (* class id -> root-first tag sequence *)
  entries : Node_id.t array array;  (* class id -> ids sorted by (cluster, slot) *)
  labels : Ordpath.t array array;  (* aligned with [entries] *)
}

let build ~classes ~class_of ~node_ids ~ordpaths =
  if
    Array.length class_of <> Array.length node_ids
    || Array.length class_of <> Array.length ordpaths
  then invalid_arg "Path_partition.build: class/node/ordpath arrays disagree";
  let buckets = Array.make (Array.length classes) [] in
  (* Walk preorder backwards so each bucket comes out in document order;
     the sort below then mostly sees already-ordered runs. *)
  for p = Array.length class_of - 1 downto 0 do
    let c = class_of.(p) in
    buckets.(c) <- (node_ids.(p), ordpaths.(p)) :: buckets.(c)
  done;
  let sorted =
    Array.map
      (fun pairs ->
        let a = Array.of_list pairs in
        Array.sort (fun (x, _) (y, _) -> Node_id.compare x y) a;
        a)
      buckets
  in
  {
    classes;
    entries = Array.map (Array.map fst) sorted;
    labels = Array.map (Array.map snd) sorted;
  }

let class_count t = Array.length t.classes
let class_sequence t c = t.classes.(c)
let class_tag t c =
  let seq = t.classes.(c) in
  seq.(Array.length seq - 1)

let class_entries t c = t.entries.(c)
let class_labels t c = t.labels.(c)
let node_count t = Array.fold_left (fun acc a -> acc + Array.length a) 0 t.entries

let select t ~matches =
  let rec go c acc =
    if c < 0 then acc else go (c - 1) (if matches t.classes.(c) then c :: acc else acc)
  in
  go (Array.length t.classes - 1) []

(* --- persistence -------------------------------------------------------------- *)

let add_u32 buf v = Buffer.add_int32_le buf (Int32.of_int v)

let add_string buf s =
  add_u32 buf (String.length s);
  Buffer.add_string buf s

let encode buf t =
  add_u32 buf (Array.length t.classes);
  Array.iteri
    (fun c seq ->
      add_u32 buf (Array.length seq);
      Array.iter (fun tag -> add_string buf (Tag.to_string tag)) seq;
      let ids = t.entries.(c) in
      let labels = t.labels.(c) in
      add_u32 buf (Array.length ids);
      Array.iteri
        (fun i (id : Node_id.t) ->
          add_u32 buf id.Node_id.pid;
          add_u32 buf id.Node_id.slot;
          Ordpath.encode buf labels.(i))
        ids)
    t.classes

let read_u32 s pos =
  let v = Int32.to_int (String.get_int32_le s pos) in
  (v, pos + 4)

let read_string s pos =
  let n, pos = read_u32 s pos in
  (String.sub s pos n, pos + n)

let decode s pos =
  let nclasses, pos = read_u32 s pos in
  let pos = ref pos in
  let classes = Array.make (max 0 nclasses) [||] in
  let entries = Array.make (max 0 nclasses) [||] in
  let labels = Array.make (max 0 nclasses) [||] in
  for c = 0 to nclasses - 1 do
    let len, p = read_u32 s !pos in
    pos := p;
    classes.(c) <-
      Array.init len (fun _ ->
          let name, p = read_string s !pos in
          pos := p;
          Tag.of_string name);
    let n, p = read_u32 s !pos in
    pos := p;
    let pairs =
      Array.init n (fun _ ->
          let pid, p = read_u32 s !pos in
          let slot, p = read_u32 s p in
          let label, p = Ordpath.decode s p in
          pos := p;
          (Node_id.make ~pid ~slot, label))
    in
    entries.(c) <- Array.map fst pairs;
    labels.(c) <- Array.map snd pairs
  done;
  ({ classes; entries; labels }, !pos)

let equal a b =
  Array.length a.classes = Array.length b.classes
  && Array.for_all2
       (fun (x : Tag.t array) y -> Array.length x = Array.length y && Array.for_all2 Tag.equal x y)
       a.classes b.classes
  && Array.for_all2
       (fun x y -> Array.length x = Array.length y && Array.for_all2 Node_id.equal x y)
       a.entries b.entries
  && Array.for_all2
       (fun x y -> Array.length x = Array.length y && Array.for_all2 Ordpath.equal x y)
       a.labels b.labels
