(** On-page node records and their binary codec.

    Three record kinds implement the paper's storage model (Sec. 3.4):

    - [Core] records represent logical document nodes. All their
      structural references (parent, first/last child, next/previous
      sibling) are {e slot numbers within the same page} — an edge never
      silently leaves the cluster.
    - [Down] border records stand, inside a sibling chain, for the
      continuation of that chain in another cluster (a {e run} of one or
      more consecutive children stored elsewhere). Their [target] is the
      NodeID of the matching [Up] record.
    - [Up] border records anchor such a run in its cluster: [first_child]
      /[last_child] delimit the run, [target] points back to the matching
      [Down], and [owner] is the NodeID of the run's logical parent's
      core record (needed for upward navigation).

    Splitting chains into runs generalises the paper's one-border-per-edge
    picture (Fig. 3) just enough that a node with more children than fit
    on one page is still representable; with one remote child per run the
    two models coincide. *)

type core = {
  tag : Xnav_xml.Tag.t;
  ordpath : Xnav_xml.Ordpath.t;
  parent : int option;  (** Slot of the parent core or anchoring [Up]. *)
  first_child : int option;  (** Slot of the first chain entry ([Core] or [Down]). *)
  last_child : int option;
  next_sibling : int option;
  prev_sibling : int option;
}

type down = {
  parent : int option;
  next_sibling : int option;
  prev_sibling : int option;
  target : Node_id.t;  (** The [Up] anchoring the remote run. *)
}

type up = {
  first_child : int option;
  last_child : int option;
  target : Node_id.t;  (** The [Down] standing for this run. *)
  owner : Node_id.t;  (** Core record of the run's logical parent. *)
  continues : bool;
      (** Whether the matching [Down] sits mid-chain (created by an
          in-place update), i.e. the sibling chain resumes after it. Bulk
          import always produces terminal [Down]s ([continues = false]),
          letting the chain walkers skip the end-of-run check. The flag
          is conservative: deletes may turn a continuing run terminal
          without clearing it. *)
}

type t = Core of core | Down of down | Up of up

val is_border : t -> bool

val target : t -> Node_id.t
(** The companion border's NodeID (paper's [target] operation).
    @raise Invalid_argument on a [Core] record. *)

val encode : t -> string
val decode : string -> t

(** {2 Packed navigation words}

    Chain walking needs only a record's kind, tag and first-child /
    next-sibling links; a full {!decode} allocates ~90 heap words per
    record (page copy, slot options, ordpath) and dominated scan CPU.
    [nav_of_bytes] parses exactly those fields in place — from the span
    {!Xnav_storage.Page.record_span} exposes — into one unboxed int the
    fused automaton can test and follow without allocating. *)

val nav_core : int
val nav_down : int
val nav_up : int

val nav_of_bytes : Bytes.t -> int -> int
(** [nav_of_bytes bytes off] packs the record encoded at [off]. Never
    returns 0, so 0 can serve as a not-yet-parsed cache sentinel.
    @raise Invalid_argument on an unknown record kind. *)

val nav_kind : int -> int
(** {!nav_core}, {!nav_down} or {!nav_up}. *)

val nav_link1 : int -> int
(** [Core]/[Up]: first-child slot; [Down]: next-sibling slot. [-1] when
    absent. *)

val nav_link2 : int -> int
(** [Core]: next-sibling slot ([-1] when absent); [Down]: the target
    [Up]'s slot. *)

val nav_high : int -> int
(** [Core]: tag id ({!Xnav_xml.Tag.id}); [Down]: the target [Up]'s page
    id. *)

val encoded_size : t -> int
(** [encoded_size r = String.length (encode r)]. *)

val max_overhead : int
(** Safe upper bound, in bytes, of border records plus slot-directory
    entries chargeable to a single node during clustering (used by the
    import packer's pessimistic fit test). *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
