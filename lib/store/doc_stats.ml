module Tree = Xnav_xml.Tree
module Tag = Xnav_xml.Tag
module Axis = Xnav_xml.Axis
module Path = Xnav_xpath.Path

type t = {
  node_count : int;
  height : int;
  root_tag : Tag.t;
  tags : Tag.t list;  (* tags occurring in the document *)
  counts : (Tag.t, int) Hashtbl.t;
  pairs : (Tag.t * Tag.t, int) Hashtbl.t;
  subtree_totals : (Tag.t, int) Hashtbl.t;
}

let bump table key delta =
  Hashtbl.replace table key (delta + Option.value ~default:0 (Hashtbl.find_opt table key))

let collect_full doc =
  let counts = Hashtbl.create 64 in
  let pairs = Hashtbl.create 256 in
  let subtree_totals = Hashtbl.create 64 in
  (* Path-summary trie: (parent class, tag) -> class id; -1 stands for
     "above the root". Each distinct root-to-node tag sequence gets one
     class. *)
  let trie = Hashtbl.create 64 in
  let seqs = ref [] (* newest class first; reversed tag sequences *) in
  let nclasses = ref 0 in
  let ids_rev = ref [] (* class per node, reverse preorder *) in
  let intern parent_id parent_rev tag =
    match Hashtbl.find_opt trie (parent_id, tag) with
    | Some c -> (c, tag :: parent_rev)
    | None ->
      let c = !nclasses in
      incr nclasses;
      Hashtbl.add trie (parent_id, tag) c;
      let rev = tag :: parent_rev in
      seqs := rev :: !seqs;
      (c, rev)
  in
  let rec go node (parent_id, parent_rev) =
    let cls, rev_seq = intern parent_id parent_rev node.Tree.tag in
    ids_rev := cls :: !ids_rev;
    bump counts node.Tree.tag 1;
    let size =
      Array.fold_left
        (fun acc child ->
          bump pairs (node.Tree.tag, child.Tree.tag) 1;
          acc + go child (cls, rev_seq))
        1 node.Tree.children
    in
    bump subtree_totals node.Tree.tag size;
    size
  in
  let node_count = go doc (-1, []) in
  let stats =
    {
      node_count;
      height = Tree.height doc;
      root_tag = doc.Tree.tag;
      tags = Hashtbl.fold (fun tag _ acc -> tag :: acc) counts [];
      counts;
      pairs;
      subtree_totals;
    }
  in
  let classes = Array.of_list (List.rev_map (fun rev -> Array.of_list (List.rev rev)) !seqs) in
  let class_of_pre = Array.of_list (List.rev !ids_rev) in
  (stats, classes, class_of_pre)

let collect doc =
  let t, _, _ = collect_full doc in
  t

let node_count t = t.node_count
let height t = t.height
let root_tag t = t.root_tag
let tag_count t tag = Option.value ~default:0 (Hashtbl.find_opt t.counts tag)

let pair_count t ~parent ~child =
  Option.value ~default:0 (Hashtbl.find_opt t.pairs (parent, child))

let avg_subtree t tag =
  let n = tag_count t tag in
  if n = 0 then 0.0
  else float_of_int (Option.value ~default:0 (Hashtbl.find_opt t.subtree_totals tag)) /. float_of_int n

type frontier = (Tag.t * float) list

let initial _t tag = [ (tag, 1.0) ]
let root_frontier t = [ (t.root_tag, 1.0) ]
let cardinality frontier = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 frontier

let matching_tags t test =
  match (test : Path.node_test) with
  | Path.Name tag -> if tag_count t tag > 0 then [ tag ] else []
  | Path.Wildcard | Path.Any_node -> t.tags

let cap t tag w = Float.min w (float_of_int (tag_count t tag))

(* Expected children with tag [c] under the frontier. *)
let child_estimate t frontier c =
  List.fold_left
    (fun acc (p, w) ->
      let parents = tag_count t p in
      if parents = 0 then acc
      else acc +. (w *. float_of_int (pair_count t ~parent:p ~child:c) /. float_of_int parents))
    0.0 frontier

(* Expected proper descendants with tag [c]: subtree volume below the
   frontier, scaled by the tag's global density. *)
let descendant_estimate t frontier c =
  let volume =
    List.fold_left (fun acc (p, w) -> acc +. (w *. Float.max 0.0 (avg_subtree t p -. 1.0))) 0.0 frontier
  in
  let density = float_of_int (tag_count t c) /. float_of_int (max 1 t.node_count) in
  volume *. density

let prune frontier = List.filter (fun (_, w) -> w > 1e-9) frontier

let step t frontier (s : Path.step) =
  let targets = matching_tags t s.Path.test in
  let result =
    match s.Path.axis with
    | Axis.Self ->
      List.filter (fun (tag, _) -> Path.matches s.Path.test tag) frontier
    | Axis.Child -> List.map (fun c -> (c, cap t c (child_estimate t frontier c))) targets
    | Axis.Descendant ->
      List.map (fun c -> (c, cap t c (descendant_estimate t frontier c))) targets
    | Axis.Descendant_or_self ->
      let self = List.filter (fun (tag, _) -> Path.matches s.Path.test tag) frontier in
      List.map
        (fun c ->
          let self_w = Option.value ~default:0.0 (List.assoc_opt c self) in
          (c, cap t c (self_w +. descendant_estimate t frontier c)))
        targets
    | Axis.Parent | Axis.Ancestor | Axis.Ancestor_or_self | Axis.Following_sibling
    | Axis.Preceding_sibling ->
      (* Crude upper bound for non-downward axes: everything with the
         target tag, bounded by the document. *)
      List.map (fun c -> (c, cap t c (float_of_int (tag_count t c)))) targets
  in
  prune result

let estimate_path t ?context path =
  let start = match context with Some tag -> initial t tag | None -> root_frontier t in
  let _, rev =
    List.fold_left
      (fun (frontier, acc) s ->
        let next = step t frontier s in
        (next, cardinality next :: acc))
      (start, []) path
  in
  List.rev rev

(* --- persistence -------------------------------------------------------------- *)

let add_u32 buf v = Buffer.add_int32_le buf (Int32.of_int v)

let add_string buf s =
  add_u32 buf (String.length s);
  Buffer.add_string buf s

let encode buf t =
  add_u32 buf t.node_count;
  add_u32 buf t.height;
  add_string buf (Tag.to_string t.root_tag);
  add_u32 buf (Hashtbl.length t.counts);
  Hashtbl.iter
    (fun tag count ->
      add_string buf (Tag.to_string tag);
      add_u32 buf count)
    t.counts;
  add_u32 buf (Hashtbl.length t.pairs);
  Hashtbl.iter
    (fun (parent, child) count ->
      add_string buf (Tag.to_string parent);
      add_string buf (Tag.to_string child);
      add_u32 buf count)
    t.pairs;
  add_u32 buf (Hashtbl.length t.subtree_totals);
  Hashtbl.iter
    (fun tag total ->
      add_string buf (Tag.to_string tag);
      add_u32 buf total)
    t.subtree_totals

let read_u32 s pos =
  let v = Int32.to_int (String.get_int32_le s pos) in
  (v, pos + 4)

let read_string s pos =
  let n, pos = read_u32 s pos in
  (String.sub s pos n, pos + n)

let decode s pos =
  let node_count, pos = read_u32 s pos in
  let height, pos = read_u32 s pos in
  let root_name, pos = read_string s pos in
  let counts = Hashtbl.create 64 in
  let n, pos = read_u32 s pos in
  let pos = ref pos in
  for _ = 1 to n do
    let name, p = read_string s !pos in
    let count, p = read_u32 s p in
    Hashtbl.replace counts (Tag.of_string name) count;
    pos := p
  done;
  let pairs = Hashtbl.create 256 in
  let n, p = read_u32 s !pos in
  pos := p;
  for _ = 1 to n do
    let parent, p = read_string s !pos in
    let child, p = read_string s p in
    let count, p = read_u32 s p in
    Hashtbl.replace pairs (Tag.of_string parent, Tag.of_string child) count;
    pos := p
  done;
  let subtree_totals = Hashtbl.create 64 in
  let n, p = read_u32 s !pos in
  pos := p;
  for _ = 1 to n do
    let name, p = read_string s !pos in
    let total, p = read_u32 s p in
    Hashtbl.replace subtree_totals (Tag.of_string name) total;
    pos := p
  done;
  ( {
      node_count;
      height;
      root_tag = Tag.of_string root_name;
      tags = Hashtbl.fold (fun tag _ acc -> tag :: acc) counts [];
      counts;
      pairs;
      subtree_totals;
    },
    !pos )
