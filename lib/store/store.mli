(** The clustered document store: navigation primitives over imported
    documents.

    Two navigation layers implement the paper's cost split (Sec. 3.5):

    {2 Intra-cluster cursors}

    {!start} / {!resume} enumerate an axis step {e within one pinned
    page} ({!view}). They emit [Reached] for core nodes found locally and
    [Crossing] wherever the navigation would have to traverse an
    inter-cluster edge — carrying the target border's NodeID so the
    caller (XAssembly/XSchedule) can defer and batch the I/O. A cursor
    never touches the buffer manager: while a page is pinned, navigation
    over it is pure in-memory pointer chasing — the swizzled regime the
    paper's XStep chain operates in. Only the downward axes are
    supported ({!Xnav_xml.Axis.is_downward}).

    {2 Global navigation}

    {!global_axis} enumerates any of the nine axes transparently across
    cluster borders, paying a buffer-manager lookup (and possibly a
    random synchronous page read) per page touched. This is the access
    pattern of the paper's Simple method and of fallback mode, and it
    doubles as the specification layer the cursors are tested against. *)

type t

val attach : Xnav_storage.Buffer_manager.t -> Import.result -> t
(** Binds an imported document to the buffer pool it will be read
    through. *)

val attach_meta :
  ?doc_stats:Doc_stats.t ->
  ?partition:Path_partition.t ->
  Xnav_storage.Buffer_manager.t ->
  root:Node_id.t ->
  first_page:int ->
  page_count:int ->
  node_count:int ->
  height:int ->
  tag_counts:(Xnav_xml.Tag.t * int) list ->
  t
(** Rebinds a document from persisted catalog metadata (see {!Image}). *)

val buffer : t -> Xnav_storage.Buffer_manager.t
val root : t -> Node_id.t
val node_count : t -> int
val first_page : t -> int
val page_count : t -> int
val height : t -> int
val tag_counts : t -> (Xnav_xml.Tag.t * int) list

val doc_stats : t -> Doc_stats.t option
(** The import-time path synopsis, when available (imported or loaded
    stores have it; it is frozen — updates do not maintain it). *)

val partition : t -> Path_partition.t option
(** The import-time path partition (structural index), when available.
    Like the synopsis, it is frozen: consult {!stats_fresh} before
    seeding plans from it. *)

val stats_fresh : t -> bool
(** Whether {!doc_stats} / {!partition} still describe the store:
    [true] until the first structural mutation ({!note_mutation}) after
    attach. A stale partition must not seed index plans — {!Xnav_core}
    falls back to navigation-only plans; re-import (or save and reload
    a re-imported image) to refresh. *)

val uid : t -> int
(** Process-unique identity assigned at attach time. Caches layered
    above the store (e.g. {!Xnav_core}'s result cache) key on it so
    entries from different stores — including a reload of the same
    image — can never alias. Because uids are a per-process counter,
    they are only unique {e within} one process lifetime: external
    caches must additionally fold {!identity} into their keys (see
    {!Xnav_core.Result_cache}). *)

val identity : t -> int
(** Deterministic content digest of the attached document — the record
    count and the full tag census (which covers the root element's tag),
    mixed at attach time without reading any page. Two attaches of the
    same document agree across processes and attach orders; documents
    with different tag populations disagree. Caches fold this next to
    {!uid} so a uid reused after a counter reset (a fresh process with a
    warm external cache, or {!reset_uids} in tests) cannot serve another
    document's answer. *)

val reset_uids : unit -> unit
(** Reset the process-wide uid counter — the next attach gets uid 1
    again. {b Test-only}: simulates a fresh process against surviving
    cache state so uid-aliasing regressions stay reproducible. Never
    call it while stores are live in caches you care about. *)

val mutation_stamp : t -> int
(** Monotonic count of structural mutations ({!note_mutation}) since
    attach. A cached derivation of the document (query result, decoded
    record, partition seed) is valid exactly while the stamp it was
    computed under still equals the current one — the same freshness
    discipline {!stats_fresh} applies to the import-time synopsis. *)

val tag_count : t -> Xnav_xml.Tag.t -> int
(** Number of nodes carrying the tag (0 if absent) — selectivity input
    for the cost-based plan chooser, answered from a hash table built at
    attach time. Statistics are collected at import time and are {e not}
    maintained by {!Update}; re-import to refresh. *)

val note_new_page : t -> unit
(** Registers a page appended after import (update layer only): extends
    the range XScan sweeps. *)

val note_nodes_delta : t -> int -> unit
(** Adjusts the logical node count (update layer only). *)

val note_mutation : t -> unit
(** Registers a pid-less structural mutation (update layer only):
    conservatively stales {e every} cluster — all live views drop their
    swizzled decode caches and every partition class goes stale. Prefer
    {!note_mutation_at} so invalidation stays cluster-granular. *)

val note_mutation_at : t -> int -> unit
(** Registers a structural mutation of cluster [pid] (update layer
    only): bumps {!mutation_stamp}, records the per-cluster stamp
    consulted by {!page_stamp}, reports [pid] to the installed write log
    (if any) and stales exactly the partition classes with an entry in
    [pid]. Views of other clusters keep their swizzled decodes. *)

val note_inserted : t -> tags:Xnav_xml.Tag.t array -> unit
(** Registers the root-first tag sequence of a freshly inserted node
    (update layer only). If a partition class with exactly that sequence
    exists it goes stale (its entry list now under-reports the class);
    otherwise the sequence is remembered as a {e novel path} — see
    {!novel_sequences}. *)

val page_stamp : t -> int -> int
(** [page_stamp t pid] is the {!mutation_stamp} value at cluster [pid]'s
    last mutation (0 if never mutated; at least the stamp of the last
    pid-less {!note_mutation}). A cached derivation that only read
    clusters [P] under stamp [s] is still valid iff
    [page_stamp t pid <= s] for every [pid] in [P]. *)

val class_fresh : t -> int -> bool
(** Whether partition class [c]'s entry list still describes the store:
    no mutation has touched any of the class' entry clusters, no insert
    added a node of the class, and no pid-less mutation occurred. Index
    plans may seed from fresh classes even when {!stats_fresh} is false. *)

val novel_sequences : t -> Xnav_xml.Tag.t array list
(** Root-first tag sequences of inserted nodes that match {e no}
    partition class (deduplicated). A query whose indexable prefix could
    match one of these must not be answered from the partition — no
    class carries entries for the new nodes. *)

(** {2 Access / write observation}

    Optional observer tables for the execution layers: when a touch log
    is installed, every record access ({!read}, {!view},
    {!view_of_frame}) records the cluster it touched; when a write log
    is installed, {!note_mutation_at} records the cluster it mutated.
    The result-cache front door derives cluster footprints for cached
    entries from touch logs; writer jobs derive their invalidation set
    from write logs. Logs nest: callers swap their table in and restore
    the previous one when done. *)

type access_log = (int, unit) Hashtbl.t

val swap_touch_log : t -> access_log option -> access_log option
(** Install (or remove, with [None]) the touch log, returning the
    previously installed one. *)

val swap_write_log : t -> access_log option -> access_log option
(** Install (or remove, with [None]) the write log, returning the
    previously installed one. *)

(** {2 Swizzling} *)

val set_swizzling : t -> bool -> unit
(** Toggle the swizzled fast path (default on). When off, every record
    access through a view decodes from the page bytes — the pre-swizzle
    regime, kept for differential testing and microbenches. *)

val swizzling : t -> bool

val swizzle_stats : t -> int * int
(** Cumulative [(hits, misses)] of the per-view decode caches. *)

(** {2 Views: pinned pages} *)

type view

val view : t -> int -> view
(** Pin page [pid] through the synchronous buffer path. *)

val view_of_frame : t -> Xnav_storage.Buffer_manager.frame -> view
(** Adopt an already pinned frame (the asynchronous path: the frame
    returned by {!Xnav_storage.Buffer_manager.await_one}). The view takes
    over the pin. *)

val release : t -> view -> unit
(** Unpin. The view and every cursor over it become invalid: any later
    record access through them raises — no swizzled handle survives its
    pin. @raise Invalid_argument if the view was already released. *)

val view_valid : view -> bool
(** Whether the view's pin is still held (false after {!release}). *)

val view_pid : view -> int

val get : view -> int -> Node_record.t
(** Decode the record in the slot. @raise Invalid_argument on a free or
    out-of-range slot. *)

val nav : view -> int -> int
(** [nav view slot] is the record's packed navigation word
    ({!Node_record.nav_of_bytes}): kind, tag and child/sibling links in
    one unboxed int, parsed in place from the page bytes. This is the
    fused automaton's per-transition record access — it allocates
    nothing, where {!get} materialises the full record (~90 heap words).
    Cached per slot like {!get}'s decodes, sharing the swizzle counters
    and mutation invalidation. @raise Invalid_argument on a free or
    out-of-range slot. *)

val id_of : view -> int -> Node_id.t

val up_slots : view -> int list
(** Slots of all [Up] border records in the page — the entry points the
    XScan operator speculates from. *)

val iter_records : view -> (int -> Node_record.t -> unit) -> unit
(** Decode and visit every live record of the page, in slot order (used
    by scan-based export). *)

(** {2 Intra-cluster cursors} *)

type emission =
  | Reached of int * Node_record.core
      (** A core node found without leaving the cluster: slot and record. *)
  | Crossing of int * Node_id.t
      (** An inter-cluster edge: the local [Down]'s slot and the NodeID
          of the target [Up] in the remote cluster. *)

type cursor

val start : view -> Xnav_xml.Axis.t -> int -> cursor
(** [start view axis slot] enumerates [axis] from the core node in
    [slot], intra-cluster only.
    @raise Invalid_argument if the axis is not downward or the slot does
    not hold a core record. *)

val resume : view -> Xnav_xml.Axis.t -> int -> cursor
(** [resume view axis slot] continues the enumeration of [axis] after
    crossing into this cluster at the [Up] record in [slot] (the target
    of an earlier [Crossing]).
    @raise Invalid_argument if the axis is not downward or the slot does
    not hold an [Up] record. *)

val next_emission : cursor -> emission option
(** The next emission, or [None] when the local enumeration is done. *)

(** {2 Whole-node access} *)

type info = { id : Node_id.t; tag : Xnav_xml.Tag.t; ordpath : Xnav_xml.Ordpath.t }
(** What result handling needs to know about a core node: identity, tag
    for node tests, ordpath for re-establishing document order. *)

val read : t -> Node_id.t -> Node_record.t
(** Synchronous single-record access (fix, decode, unfix). *)

val info : t -> Node_id.t -> info
(** @raise Invalid_argument if the NodeID names a border record. *)

(** {2 Global navigation} *)

val global_axis : t -> Xnav_xml.Axis.t -> Node_id.t -> unit -> info option
(** [global_axis t axis id] is a stateful pull iterator over the full
    axis result for the core node [id], resolving border crossings
    eagerly with synchronous page fixes. Supports all nine axes, in the
    axis' natural order. *)

val global_count : t -> Xnav_xml.Axis.t -> Node_id.t -> int
(** Drains {!global_axis} and counts. *)

val global_resume : t -> Xnav_xml.Axis.t -> Node_id.t -> unit -> info option
(** [global_resume t axis up_id] continues the enumeration of a downward
    [axis] across the border entry [up_id] (an [Up] record), resolving
    any further crossings eagerly — the border-transparent counterpart of
    {!resume}, used by fallback mode to finish work that was pending at
    the moment of the switch.
    @raise Invalid_argument if the axis is not downward or [up_id] does
    not name an [Up] record. *)
