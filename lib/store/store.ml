module Axis = Xnav_xml.Axis
module Buffer_manager = Xnav_storage.Buffer_manager
module Page = Xnav_storage.Page

type access_log = (int, unit) Hashtbl.t

type t = {
  uid : int;  (* process-unique attach stamp; cache keys across stores *)
  identity : int;  (* content digest (tag census + record count); see [identity] *)
  buffer : Buffer_manager.t;
  root : Node_id.t;
  first_page : int;
  mutable page_count : int;
  mutable node_count : int;
  height : int;
  tag_counts : (Xnav_xml.Tag.t * int) list;
  tag_table : (Xnav_xml.Tag.t, int) Hashtbl.t;
  doc_stats : Doc_stats.t option;
  partition : Path_partition.t option;
  mutable swizzle : bool;
  mutable mutations : int;
  stats_stamp : int;  (* [mutations] value the stats/partition describe *)
  mutable swizzle_hits : int;
  mutable swizzle_misses : int;
  (* Cluster-granular mutation tracking: [page_stamps] maps a pid to the
     global [mutations] value of its last mutation, [all_stamp] is the
     stamp of the last store-wide (pid-less) mutation. A cached decode of
     page [pid] taken at stamp [s] is valid iff [page_stamp t pid <= s]. *)
  page_stamps : (int, int) Hashtbl.t;
  mutable all_stamp : int;
  (* Optional observer tables: when installed, every record access /
     page mutation reports the cluster it touched. The execution layer
     uses them to attach cluster footprints to cached results and to
     scope a writer's invalidation to the clusters it wrote. *)
  mutable touch_log : (int, unit) Hashtbl.t option;
  mutable write_log : (int, unit) Hashtbl.t option;
  (* Per-class partition staleness (lazily sized to the partition):
     [class_pids.(c)] is the sorted unique cluster set of class [c]'s
     entries, [class_stale.(c)] flips when a mutation touches one of
     them (or an insert adds a node whose root tag sequence is the
     class). [novel_paths] collects inserted tag sequences that match no
     import-time class — the partition has no entry list for them, so
     any query whose prefix could match one must not be index-seeded. *)
  mutable class_pids : int array array option;
  mutable class_stale : bool array;
  mutable novel_paths : Xnav_xml.Tag.t array list;
}

let tag_table_of tag_counts =
  let table = Hashtbl.create (max 16 (2 * List.length tag_counts)) in
  List.iter (fun (tag, n) -> Hashtbl.replace table tag n) tag_counts;
  table

let next_uid = ref 0

let fresh_uid () =
  incr next_uid;
  !next_uid

let reset_uids () = next_uid := 0

(* Deterministic content digest over what attach knows without reading a
   page: the record count and the full tag census (which covers the root
   element's tag). Two attaches of the same document agree; documents
   differing in any tag population disagree (modulo hash collisions,
   which only cost a spurious cache miss — uids still disambiguate live
   stores). *)
let identity_of ~node_count ~tag_counts =
  let mix h x = (h * 1_000_003) lxor (x land max_int) in
  List.fold_left
    (fun h (tag, n) -> mix (mix h (Xnav_xml.Tag.hash tag)) n)
    (mix 0x9e3779b9 node_count) tag_counts

let attach buffer (import : Import.result) =
  {
    uid = fresh_uid ();
    identity = identity_of ~node_count:import.Import.node_count ~tag_counts:import.Import.tag_counts;
    buffer;
    root = import.root;
    first_page = import.first_page;
    page_count = import.page_count;
    node_count = import.node_count;
    height = import.height;
    tag_counts = import.tag_counts;
    tag_table = tag_table_of import.tag_counts;
    doc_stats = Some import.stats;
    partition = Some import.partition;
    swizzle = true;
    mutations = 0;
    stats_stamp = 0;
    swizzle_hits = 0;
    swizzle_misses = 0;
    page_stamps = Hashtbl.create 64;
    all_stamp = 0;
    touch_log = None;
    write_log = None;
    class_pids = None;
    class_stale = [||];
    novel_paths = [];
  }

let attach_meta ?doc_stats ?partition buffer ~root ~first_page ~page_count ~node_count ~height
    ~tag_counts =
  {
    uid = fresh_uid ();
    identity = identity_of ~node_count ~tag_counts;
    buffer;
    root;
    first_page;
    page_count;
    node_count;
    height;
    tag_counts;
    tag_table = tag_table_of tag_counts;
    doc_stats;
    partition;
    swizzle = true;
    mutations = 0;
    stats_stamp = 0;
    swizzle_hits = 0;
    swizzle_misses = 0;
    page_stamps = Hashtbl.create 64;
    all_stamp = 0;
    touch_log = None;
    write_log = None;
    class_pids = None;
    class_stale = [||];
    novel_paths = [];
  }

let buffer t = t.buffer
let root t = t.root
let node_count t = t.node_count
let first_page t = t.first_page
let page_count t = t.page_count
let height t = t.height
let tag_counts t = t.tag_counts
let doc_stats t = t.doc_stats
let partition t = t.partition
let stats_fresh t = t.mutations = t.stats_stamp
let uid t = t.uid
let identity t = t.identity
let mutation_stamp t = t.mutations

(* --- Cluster-granular mutation tracking --------------------------------- *)

let page_stamp t pid =
  let s = match Hashtbl.find_opt t.page_stamps pid with Some s -> s | None -> 0 in
  max s t.all_stamp

let touch t pid =
  match t.touch_log with Some tbl -> Hashtbl.replace tbl pid () | None -> ()

let swap_touch_log t log =
  let old = t.touch_log in
  t.touch_log <- log;
  old

let swap_write_log t log =
  let old = t.write_log in
  t.write_log <- log;
  old

(* Per-class cluster sets, built lazily on the first mutation: the
   partition is immutable after import, so the sets describe exactly the
   clusters whose entry records belong to each class. *)
let ensure_class_meta t =
  match (t.partition, t.class_pids) with
  | None, _ | _, Some _ -> ()
  | Some p, None ->
    let n = Path_partition.class_count p in
    let pids =
      Array.init n (fun c ->
          let entries = Path_partition.class_entries p c in
          (* Sorted by (pid, slot) already — collapse to unique pids. *)
          let acc = ref [] in
          Array.iter
            (fun (id : Node_id.t) ->
              match !acc with
              | pid :: _ when pid = id.Node_id.pid -> ()
              | _ -> acc := id.Node_id.pid :: !acc)
            entries;
          Array.of_list (List.rev !acc))
    in
    t.class_pids <- Some pids;
    if Array.length t.class_stale <> n then t.class_stale <- Array.make n false

let pid_member pids pid =
  let lo = ref 0 and hi = ref (Array.length pids - 1) and found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = pids.(mid) in
    if v = pid then found := true else if v < pid then lo := mid + 1 else hi := mid - 1
  done;
  !found

let stale_classes_at t pid =
  match t.partition with
  | None -> ()
  | Some _ ->
    ensure_class_meta t;
    (match t.class_pids with
    | None -> ()
    | Some pids ->
      for c = 0 to Array.length pids - 1 do
        if (not t.class_stale.(c)) && pid_member pids.(c) pid then t.class_stale.(c) <- true
      done)

let class_fresh t c =
  ensure_class_meta t;
  t.all_stamp = 0 && (c < 0 || c >= Array.length t.class_stale || not t.class_stale.(c))

let novel_sequences t = t.novel_paths

(* Bookkeeping hooks for the update layer. *)
let note_new_page t = t.page_count <- t.page_count + 1
let note_nodes_delta t delta = t.node_count <- t.node_count + delta

let note_mutation t =
  t.mutations <- t.mutations + 1;
  (* Pid-less mutation: conservatively stales every cluster and class. *)
  t.all_stamp <- t.mutations

let note_mutation_at t pid =
  t.mutations <- t.mutations + 1;
  Hashtbl.replace t.page_stamps pid t.mutations;
  (match t.write_log with Some tbl -> Hashtbl.replace tbl pid () | None -> ());
  stale_classes_at t pid

let note_inserted t ~tags =
  match t.partition with
  | None -> ()
  | Some p -> begin
    ensure_class_meta t;
    match
      Path_partition.select p ~matches:(fun seq ->
          Array.length seq = Array.length tags && Array.for_all2 Xnav_xml.Tag.equal seq tags)
    with
    | c :: _ -> if not t.class_stale.(c) then t.class_stale.(c) <- true
    | [] ->
      (* A tag sequence the import never saw: no class has an entry list
         for it, so queries matching this shape must not index-seed. *)
      let known =
        List.exists
          (fun seq ->
            Array.length seq = Array.length tags && Array.for_all2 Xnav_xml.Tag.equal seq tags)
          t.novel_paths
      in
      if not known then t.novel_paths <- Array.copy tags :: t.novel_paths
  end

let set_swizzling t on = t.swizzle <- on
let swizzling t = t.swizzle
let swizzle_stats t = (t.swizzle_hits, t.swizzle_misses)

let tag_count t tag =
  match Hashtbl.find_opt t.tag_table tag with Some n -> n | None -> 0

(* --- Views ------------------------------------------------------------ *)

(* A view is the swizzled representation of a pinned cluster: alongside
   the frame it carries a per-slot cache of decoded records, so repeated
   navigation over the page (cursor re-walks, speculative seeds, the
   XStep chain) never re-enters the record codec. The cache is dropped
   when the store mutates ([stamp] falls behind [mutations]) and the
   whole view dies on {!release} — a swizzled handle must not survive
   its pin. *)
type view = {
  pid : int;
  frame : Buffer_manager.frame;
  page : Page.t;
  owner : t;
  cache : Node_record.t option array;  (* [||] when swizzling is off *)
  nav : int array;
      (* packed navigation words ({!Node_record.nav_of_bytes}), 0 = not
         yet parsed; [||] when swizzling is off *)
  mutable stamp : int;
  mutable live : bool;
}

let make_view t frame =
  touch t (Buffer_manager.frame_pid frame);
  let page = Buffer_manager.page frame in
  let slots = Page.slot_count page in
  let cache = if t.swizzle then Array.make slots None else [||] in
  let nav = if t.swizzle then Array.make slots 0 else [||] in
  {
    pid = Buffer_manager.frame_pid frame;
    frame;
    page;
    owner = t;
    cache;
    nav;
    stamp = t.mutations;
    live = true;
  }

let view t pid = make_view t (Buffer_manager.fix t.buffer pid)
let view_of_frame t frame = make_view t frame

let release t v =
  if not v.live then invalid_arg "Store.release: view already released";
  v.live <- false;
  Buffer_manager.unfix t.buffer v.frame

let view_valid v = v.live
let view_pid v = v.pid

let check_live v =
  if not v.live then
    invalid_arg (Printf.sprintf "Store: swizzled view of page %d used after release" v.pid)

(* The store changed under the pin: drop the cached decodes — but only
   when the mutation actually touched {e this} cluster (the page bytes
   themselves are write-through, so a re-decode sees the updated
   record). A write elsewhere fast-forwards the stamp and keeps the
   swizzled decodes, which is what makes invalidation cluster-granular. *)
let revalidate v t =
  if v.stamp <> t.mutations then begin
    if page_stamp t v.pid > v.stamp then begin
      Array.fill v.cache 0 (Array.length v.cache) None;
      Array.fill v.nav 0 (Array.length v.nav) 0
    end;
    v.stamp <- t.mutations
  end

let get v slot =
  check_live v;
  let t = v.owner in
  if not t.swizzle then Node_record.decode (Page.get v.page slot)
  else begin
    revalidate v t;
    if slot >= 0 && slot < Array.length v.cache then begin
      match v.cache.(slot) with
      | Some record ->
        t.swizzle_hits <- t.swizzle_hits + 1;
        record
      | None ->
        let record = Node_record.decode (Page.get v.page slot) in
        t.swizzle_misses <- t.swizzle_misses + 1;
        v.cache.(slot) <- Some record;
        record
    end
    else begin
      (* Slots appended after the view was built: decode uncached. *)
      t.swizzle_misses <- t.swizzle_misses + 1;
      Node_record.decode (Page.get v.page slot)
    end
  end

(* The fused automaton's record access: the packed navigation word,
   parsed in place from the page span — no record string copy, no slot
   options, no ordpath. Shares the swizzle counters and the mutation
   stamp with [get]; a parsed word is cached per slot exactly like a
   decoded record (0 marks an unparsed slot — [nav_of_bytes] never
   returns it). *)
let nav v slot =
  check_live v;
  let t = v.owner in
  if not t.swizzle then begin
    let bytes, off = Page.record_span v.page slot in
    Node_record.nav_of_bytes bytes off
  end
  else begin
    revalidate v t;
    if slot >= 0 && slot < Array.length v.nav then begin
      let word = v.nav.(slot) in
      if word <> 0 then begin
        t.swizzle_hits <- t.swizzle_hits + 1;
        word
      end
      else begin
        let bytes, off = Page.record_span v.page slot in
        let word = Node_record.nav_of_bytes bytes off in
        t.swizzle_misses <- t.swizzle_misses + 1;
        v.nav.(slot) <- word;
        word
      end
    end
    else begin
      t.swizzle_misses <- t.swizzle_misses + 1;
      let bytes, off = Page.record_span v.page slot in
      Node_record.nav_of_bytes bytes off
    end
  end

let id_of v slot = Node_id.make ~pid:v.pid ~slot

let iter_records v f =
  check_live v;
  Page.iter (fun slot encoded -> f slot (Node_record.decode encoded)) v.page

let up_slots v =
  check_live v;
  (* Discriminator peek only — copying every record out of the page just
     to look at byte 0 dominated the scan profile. *)
  let acc = ref [] in
  for slot = Page.slot_count v.page - 1 downto 0 do
    if Page.mem v.page slot then
      match Page.record_byte v.page slot with
      | '\002' | '\003' -> acc := slot :: !acc
      | _ -> ()
  done;
  !acc

(* --- Intra-cluster cursors --------------------------------------------- *)

type emission = Reached of int * Node_record.core | Crossing of int * Node_id.t

(* A chain task walks a sibling chain; [descend] additionally visits each
   core's subtree in preorder. *)
type task = T_node of int * Node_record.core * bool | T_chain of int option * bool

type cursor = { view : view; mutable agenda : task list }

let core_at v slot =
  match get v slot with
  | Node_record.Core c -> c
  | Node_record.Down _ | Node_record.Up _ ->
    invalid_arg (Printf.sprintf "Store: slot %d is a border record" slot)

let up_at v slot =
  match get v slot with
  | Node_record.Up u -> u
  | Node_record.Core _ | Node_record.Down _ ->
    invalid_arg (Printf.sprintf "Store: slot %d is not an Up border" slot)

let check_downward axis =
  if not (Axis.is_downward axis) then
    invalid_arg
      (Printf.sprintf "Store: axis %s has no intra-cluster cursor (use global_axis)"
         (Axis.to_string axis))

let start v axis slot =
  check_downward axis;
  let core = core_at v slot in
  let agenda =
    match (axis : Axis.t) with
    | Self -> [ T_node (slot, core, false) ]
    | Child -> [ T_chain (core.first_child, false) ]
    | Descendant -> [ T_chain (core.first_child, true) ]
    | Descendant_or_self -> [ T_node (slot, core, true) ]
    | Parent | Ancestor | Ancestor_or_self | Following_sibling | Preceding_sibling ->
      assert false
  in
  { view = v; agenda }

let resume v axis slot =
  check_downward axis;
  let up = up_at v slot in
  let agenda =
    match (axis : Axis.t) with
    | Self -> []
    | Child -> [ T_chain (up.first_child, false) ]
    | Descendant | Descendant_or_self -> [ T_chain (up.first_child, true) ]
    | Parent | Ancestor | Ancestor_or_self | Following_sibling | Preceding_sibling ->
      assert false
  in
  { view = v; agenda }

let rec next_emission cursor =
  match cursor.agenda with
  | [] -> None
  | T_node (slot, core, descend) :: rest ->
    cursor.agenda <- (if descend then T_chain (core.first_child, true) :: rest else rest);
    Some (Reached (slot, core))
  | T_chain (None, _) :: rest ->
    cursor.agenda <- rest;
    next_emission cursor
  | T_chain (Some slot, descend) :: rest -> begin
    match get cursor.view slot with
    | Node_record.Core core ->
      (* Emit directly instead of re-queuing a T_node: preorder means
         self, then subtree, then next sibling, so the follow-up agenda
         is known right here. *)
      cursor.agenda <-
        (if descend then
           T_chain (core.first_child, true) :: T_chain (core.next_sibling, true) :: rest
         else T_chain (core.next_sibling, false) :: rest);
      Some (Reached (slot, core))
    | Node_record.Down down ->
      cursor.agenda <- T_chain (down.next_sibling, descend) :: rest;
      Some (Crossing (slot, down.target))
    | Node_record.Up _ -> assert false (* Up records never sit in chains *)
  end

(* --- Whole-node access -------------------------------------------------- *)

type info = { id : Node_id.t; tag : Xnav_xml.Tag.t; ordpath : Xnav_xml.Ordpath.t }

let read t (id : Node_id.t) =
  touch t id.pid;
  let frame = Buffer_manager.fix t.buffer id.pid in
  (* Decode under the pin, but never leak it: a stale slot (removed by a
     concurrent delete) makes [Page.get] raise, and callers probing for
     exactly that condition must find the pool balanced afterwards. *)
  match Node_record.decode (Page.get (Buffer_manager.page frame) id.slot) with
  | record ->
    Buffer_manager.unfix t.buffer frame;
    record
  | exception e ->
    Buffer_manager.unfix t.buffer frame;
    raise e

let info t id =
  match read t id with
  | Node_record.Core c -> { id; tag = c.tag; ordpath = c.ordpath }
  | Node_record.Down _ | Node_record.Up _ ->
    invalid_arg (Printf.sprintf "Store.info: %s is a border record" (Node_id.to_string id))

(* --- Global navigation --------------------------------------------------- *)

(* Forward walk of a sibling chain across clusters: Down records are
   resolved eagerly through their target Up, and at the end of a run the
   walk resumes after the run's Down (runs created by in-place updates
   may sit mid-chain). Positions are (pid, slot option, anchor slot). *)
let rec chain_next ?stop_up t pid slot_opt ~parent_slot =
  match slot_opt with
  | None -> begin
    (* End of a segment: if anchored by an Up, resume after its Down —
       unless the Up is [stop_up], the entry point of a border
       continuation, whose post-run siblings belong to the cluster the
       crossing came from. *)
    match parent_slot with
    | None -> None
    | Some pslot -> begin
      let anchor = Node_id.make ~pid ~slot:pslot in
      match read t anchor with
      | Node_record.Core _ -> None (* true end of the children list *)
      | Node_record.Up u ->
        if
          (not u.continues)
          || match stop_up with Some stop -> Node_id.equal stop anchor | None -> false
        then None
        else begin
          match read t u.target with
          | Node_record.Down d ->
            chain_next ?stop_up t u.target.pid d.next_sibling ~parent_slot:d.parent
          | Node_record.Core _ | Node_record.Up _ -> assert false
        end
      | Node_record.Down _ -> assert false
    end
  end
  | Some slot -> begin
    match read t (Node_id.make ~pid ~slot) with
    | Node_record.Core c ->
      Some
        ( { id = Node_id.make ~pid ~slot; tag = c.tag; ordpath = c.ordpath },
          c,
          (pid, c.next_sibling, c.parent) )
    | Node_record.Down d -> begin
      match read t d.target with
      | Node_record.Up u ->
        chain_next t d.target.pid u.first_child ~parent_slot:(Some d.target.slot)
      | Node_record.Core _ | Node_record.Down _ -> assert false
    end
    | Node_record.Up _ -> assert false
  end

(* Backward walk: at the head of a run, jump through the anchoring Up to
   the Down that stands for the run and continue before it. *)
let rec chain_prev t pid slot_opt ~parent_slot =
  match slot_opt with
  | None -> begin
    (* Head of a segment: if anchored by an Up, continue before its Down. *)
    match parent_slot with
    | None -> None
    | Some pslot -> begin
      match read t (Node_id.make ~pid ~slot:pslot) with
      | Node_record.Core _ -> None (* true start of the children list *)
      | Node_record.Up u -> begin
        match read t u.target with
        | Node_record.Down d -> chain_prev t u.target.pid d.prev_sibling ~parent_slot:d.parent
        | Node_record.Core _ | Node_record.Up _ -> assert false
      end
      | Node_record.Down _ -> assert false
    end
  end
  | Some slot -> begin
    match read t (Node_id.make ~pid ~slot) with
    | Node_record.Core c ->
      Some
        ( { id = Node_id.make ~pid ~slot; tag = c.tag; ordpath = c.ordpath },
          pid,
          c.prev_sibling,
          c.parent )
    | Node_record.Down d -> begin
      (* A remote run precedes: walk it backwards from its last entry. *)
      match read t d.target with
      | Node_record.Up u -> chain_prev t d.target.pid u.last_child ~parent_slot:(Some d.target.slot)
      | Node_record.Core _ | Node_record.Down _ -> assert false
    end
    | Node_record.Up _ -> assert false
  end

let parent_info t (id : Node_id.t) =
  match read t id with
  | Node_record.Core c -> begin
    match c.parent with
    | None -> None
    | Some pslot -> begin
      match read t (Node_id.make ~pid:id.pid ~slot:pslot) with
      | Node_record.Core pc ->
        Some { id = Node_id.make ~pid:id.pid ~slot:pslot; tag = pc.tag; ordpath = pc.ordpath }
      | Node_record.Up u -> Some (info t u.owner)
      | Node_record.Down _ -> assert false
    end
  end
  | Node_record.Down _ | Node_record.Up _ ->
    invalid_arg "Store.global_axis: context is a border record"

let global_axis t axis (id : Node_id.t) =
  match (axis : Axis.t) with
  | Self ->
    let fired = ref false in
    fun () ->
      if !fired then None
      else begin
        fired := true;
        Some (info t id)
      end
  | Child ->
    let record = read t id in
    let first =
      match record with
      | Node_record.Core c -> c.first_child
      | Node_record.Down _ | Node_record.Up _ ->
        invalid_arg "Store.global_axis: context is a border record"
    in
    let pos = ref (id.pid, first, (Some id.slot : int option)) in
    fun () ->
      let pid, slot, parent_slot = !pos in
      begin
        match chain_next t pid slot ~parent_slot with
        | None -> None
        | Some (inf, _core, next_pos) ->
          pos := next_pos;
          Some inf
      end
  | Descendant | Descendant_or_self ->
    (* Stack of chain positions; each emitted core pushes its children. *)
    let stack = ref [] in
    let self_pending = ref (axis = Descendant_or_self) in
    let record = read t id in
    (match record with
    | Node_record.Core c -> stack := [ (id.pid, c.first_child, Some id.slot) ]
    | Node_record.Down _ | Node_record.Up _ ->
      invalid_arg "Store.global_axis: context is a border record");
    let rec next () =
      if !self_pending then begin
        self_pending := false;
        Some (info t id)
      end
      else begin
        match !stack with
        | [] -> None
        | (pid, slot, parent_slot) :: rest -> begin
          match chain_next t pid slot ~parent_slot with
          | None ->
            stack := rest;
            next ()
          | Some (inf, core, (pid', nxt, par')) ->
            stack :=
              (inf.id.pid, core.first_child, Some inf.id.slot) :: (pid', nxt, par') :: rest;
            Some inf
        end
      end
    in
    next
  | Parent ->
    let fired = ref false in
    fun () ->
      if !fired then None
      else begin
        fired := true;
        parent_info t id
      end
  | Ancestor | Ancestor_or_self ->
    let current = ref (Some id) in
    let self_pending = ref (axis = Ancestor_or_self) in
    fun () ->
      if !self_pending then begin
        self_pending := false;
        Some (info t id)
      end
      else begin
        match !current with
        | None -> None
        | Some node -> begin
          match parent_info t node with
          | None ->
            current := None;
            None
          | Some inf ->
            current := Some inf.id;
            Some inf
        end
      end
  | Following_sibling ->
    let record = read t id in
    let next =
      match record with
      | Node_record.Core c -> c.next_sibling
      | Node_record.Down _ | Node_record.Up _ ->
        invalid_arg "Store.global_axis: context is a border record"
    in
    let parent0 =
      match record with Node_record.Core c -> c.parent | _ -> None
    in
    let pos = ref (id.pid, next, parent0) in
    fun () ->
      let pid, slot, parent_slot = !pos in
      begin
        match chain_next t pid slot ~parent_slot with
        | None -> None
        | Some (inf, _core, next_pos) ->
          pos := next_pos;
          Some inf
      end
  | Preceding_sibling ->
    let record = read t id in
    let prev, parent =
      match record with
      | Node_record.Core c -> (c.prev_sibling, c.parent)
      | Node_record.Down _ | Node_record.Up _ ->
        invalid_arg "Store.global_axis: context is a border record"
    in
    let pos = ref (id.pid, prev, parent) in
    fun () ->
      let pid, slot, parent_slot = !pos in
      match chain_prev t pid slot ~parent_slot with
      | None -> None
      | Some (inf, pid', prv, par) ->
        pos := (pid', prv, par);
        Some inf

let global_count t axis id =
  let next = global_axis t axis id in
  let rec go n = match next () with None -> n | Some _ -> go (n + 1) in
  go 0

let global_resume t axis (up_id : Node_id.t) =
  check_downward axis;
  let up =
    match read t up_id with
    | Node_record.Up u -> u
    | Node_record.Core _ | Node_record.Down _ ->
      invalid_arg "Store.global_resume: entry is not an Up border"
  in
  match (axis : Axis.t) with
  | Self -> fun () -> None
  | Child ->
    (* Only this run: the walk must not resume past the run's own Down
       (those siblings were enumerated in the cluster the crossing came
       from). *)
    let pos = ref (up_id.pid, up.first_child, (Some up_id.slot : int option)) in
    fun () ->
      let pid, slot, parent_slot = !pos in
      begin
        match chain_next ~stop_up:up_id t pid slot ~parent_slot with
        | None -> None
        | Some (inf, _core, next_pos) ->
          pos := next_pos;
          Some inf
      end
  | Descendant | Descendant_or_self ->
    (* The run's nodes and all their descendants. *)
    let stack = ref [ (up_id.pid, up.first_child, (Some up_id.slot : int option)) ] in
    let rec next () =
      match !stack with
      | [] -> None
      | (pid, slot, parent_slot) :: rest -> begin
        match chain_next ~stop_up:up_id t pid slot ~parent_slot with
        | None ->
          stack := rest;
          next ()
        | Some (inf, core, (pid', nxt, par')) ->
          stack :=
            (inf.id.pid, core.first_child, Some inf.id.slot) :: (pid', nxt, par') :: rest;
          Some inf
      end
    in
    next
  | Parent | Ancestor | Ancestor_or_self | Following_sibling | Preceding_sibling ->
    assert false (* excluded by check_downward *)
