module Tree = Xnav_xml.Tree
module Ordpath = Xnav_xml.Ordpath
module Page = Xnav_storage.Page
module Disk = Xnav_storage.Disk
module Buffer_manager = Xnav_storage.Buffer_manager

type position = First | Last | After of Node_id.t

(* --- page surgery helpers ------------------------------------------------ *)

(* Write-through page mutation: the buffered copy is changed and flushed
   to the simulated disk in one step. *)
let with_page store pid f =
  let buffer = Store.buffer store in
  let frame = Buffer_manager.fix buffer pid in
  let page = Buffer_manager.page frame in
  match f page with
  | result ->
    Disk.write (Buffer_manager.disk buffer) pid (Page.to_bytes page);
    Buffer_manager.unfix buffer frame;
    (* Live views of {e this} cluster must drop their swizzled decode
       caches: the page bytes changed underneath them. Views of other
       clusters, cached results over them and partition classes without an
       entry here all stay valid — invalidation is cluster-granular. *)
    Store.note_mutation_at store pid;
    result
  | exception e ->
    (* Nothing was flushed and nothing is considered mutated — but the
       pin must not leak (writer jobs catch surgery failures and carry
       on against the same pool). *)
    Buffer_manager.unfix buffer frame;
    raise e

let get_record = Store.read

let set_record store (id : Node_id.t) record =
  with_page store id.Node_id.pid (fun page ->
      if not (Page.replace page id.Node_id.slot (Node_record.encode record)) then
        failwith "Update: record no longer fits its page")

let remove_record store (id : Node_id.t) =
  with_page store id.Node_id.pid (fun page -> Page.delete page id.Node_id.slot)

let insert_into store pid record =
  with_page store pid (fun page -> Page.insert page (Node_record.encode record))

(* Core inserts keep this many bytes free per page so a later tail
   [Down] (a small border record) can always be spliced into a chain
   that ends there. Border records themselves may consume the reserve. *)
let down_reserve = 64

let insert_core_reserved store pid record =
  let encoded = Node_record.encode record in
  with_page store pid (fun page ->
      if Page.free_space page >= String.length encoded + down_reserve then
        Page.insert page encoded
      else None)

(* Field surgery; all link fields are fixed-size, so these replacements
   never grow the record. *)
let set_next store id next =
  match get_record store id with
  | Node_record.Core c -> set_record store id (Node_record.Core { c with next_sibling = next })
  | Node_record.Down d -> set_record store id (Node_record.Down { d with next_sibling = next })
  | Node_record.Up _ -> assert false

let set_prev store id prev =
  match get_record store id with
  | Node_record.Core c -> set_record store id (Node_record.Core { c with prev_sibling = prev })
  | Node_record.Down d -> set_record store id (Node_record.Down { d with prev_sibling = prev })
  | Node_record.Up _ -> assert false

let set_first_child store id first =
  match get_record store id with
  | Node_record.Core c -> set_record store id (Node_record.Core { c with first_child = first })
  | Node_record.Up u -> set_record store id (Node_record.Up { u with first_child = first })
  | Node_record.Down _ -> assert false

let set_last_child store id last =
  match get_record store id with
  | Node_record.Core c -> set_record store id (Node_record.Core { c with last_child = last })
  | Node_record.Up u -> set_record store id (Node_record.Up { u with last_child = last })
  | Node_record.Down _ -> assert false

(* --- page selection -------------------------------------------------------- *)

(* A page able to host [need] more bytes: the preferred page, else the
   store's last page, else a freshly appended one. *)
let host_page store ~preferred ~need =
  (* Read-only probe: a candidate page that merely gets {e looked at} for
     free space must not count as mutated (that would stale its cluster's
     caches for nothing). *)
  let free pid =
    let buffer = Store.buffer store in
    let frame = Buffer_manager.fix buffer pid in
    let space = Page.free_space (Buffer_manager.page frame) in
    Buffer_manager.unfix buffer frame;
    space
  in
  if free preferred >= need then preferred
  else begin
    let last = Store.first_page store + Store.page_count store - 1 in
    if last <> preferred && free last >= need then last
    else begin
      let disk = Buffer_manager.disk (Store.buffer store) in
      let pid = Disk.alloc disk in
      if pid <> Store.first_page store + Store.page_count store then
        failwith "Update: cannot grow a store that does not end the disk";
      let page = Page.create ~page_size:(Disk.config disk).Disk.page_size in
      Disk.write disk pid (Page.to_bytes page);
      Store.note_new_page store;
      pid
    end
  end

(* --- insertion -------------------------------------------------------------- *)

let core_of store (id : Node_id.t) ~who =
  match get_record store id with
  | Node_record.Core c -> c
  | Node_record.Down _ | Node_record.Up _ ->
    invalid_arg (Printf.sprintf "Update: %s is a border record" who)

(* The final segment of a chain: follow tail Downs. Returns the anchor
   (core parent or Up) and the last chain element there, if any. *)
let rec final_segment store (anchor : Node_id.t) last_slot =
  match last_slot with
  | None -> (anchor, None)
  | Some slot ->
    let id = Node_id.make ~pid:anchor.Node_id.pid ~slot in
    (match get_record store id with
    | Node_record.Core _ -> (anchor, Some id)
    | Node_record.Down d -> begin
      match get_record store d.target with
      | Node_record.Up u -> final_segment store d.target u.last_child
      | Node_record.Core _ | Node_record.Down _ -> assert false
    end
    | Node_record.Up _ -> assert false)

(* The first logical child's ordpath (following a leading Down). *)
let rec first_member_ord store pid slot =
  let id = Node_id.make ~pid ~slot in
  match get_record store id with
  | Node_record.Core c -> c.Node_record.ordpath
  | Node_record.Down d -> begin
    match get_record store d.target with
    | Node_record.Up u -> first_member_ord store d.target.Node_id.pid (Option.get u.first_child)
    | Node_record.Core _ | Node_record.Down _ -> assert false
  end
  | Node_record.Up _ -> assert false

(* Where a new node physically goes: the anchor record of the segment,
   the chain element it follows (None = segment head) and the one it
   precedes (None = segment tail); all in the anchor's page. *)
type slot_in_chain = {
  anchor : Node_id.t;
  before : int option;  (* slot of the element the new node follows *)
  after : int option;  (* slot of the element the new node precedes *)
  ordpath : Ordpath.t;
}

(* Descend through leading Downs to the head of the first run: repeated
   prepends must land in that run's segment, otherwise every overflowing
   insert would add one more border record to the parent's page. *)
let rec head_position store (anchor : Node_id.t) first_slot =
  match first_slot with
  | None -> (anchor, None)
  | Some slot -> begin
    let id = Node_id.make ~pid:anchor.Node_id.pid ~slot in
    match get_record store id with
    | Node_record.Core _ -> (anchor, Some slot)
    | Node_record.Down d -> begin
      match get_record store d.target with
      | Node_record.Up u -> head_position store d.target u.first_child
      | Node_record.Core _ | Node_record.Down _ -> assert false
    end
    | Node_record.Up _ -> assert false
  end

let locate store ~parent position =
  let parent_core = core_of store parent ~who:"parent" in
  match position with
  | First ->
    let ordpath =
      match parent_core.Node_record.first_child with
      | None -> Ordpath.child parent_core.Node_record.ordpath 0
      | Some slot ->
        Ordpath.between parent_core.Node_record.ordpath
          (first_member_ord store parent.Node_id.pid slot)
    in
    let anchor, after = head_position store parent parent_core.Node_record.first_child in
    { anchor; before = None; after; ordpath }
  | Last ->
    let anchor, last = final_segment store parent parent_core.Node_record.last_child in
    let ordpath =
      match last with
      | None -> Ordpath.child parent_core.Node_record.ordpath 0
      | Some last_id ->
        let last_core = core_of store last_id ~who:"last child" in
        Ordpath.next_sibling last_core.Node_record.ordpath
    in
    { anchor; before = Option.map (fun (i : Node_id.t) -> i.Node_id.slot) last; after = None; ordpath }
  | After sibling ->
    let sib = core_of store sibling ~who:"sibling" in
    let anchor_slot =
      match sib.Node_record.parent with
      | Some s -> s
      | None -> invalid_arg "Update: cannot insert after the document root"
    in
    let anchor = Node_id.make ~pid:sibling.Node_id.pid ~slot:anchor_slot in
    (* Validate the sibling really hangs (possibly via an Up) under
       [parent]. *)
    let owner =
      match get_record store anchor with
      | Node_record.Core _ -> anchor
      | Node_record.Up u -> u.Node_record.owner
      | Node_record.Down _ -> assert false
    in
    if not (Node_id.equal owner parent) then
      invalid_arg "Update: the After sibling is not a child of the parent";
    let ordpath =
      match sib.Node_record.next_sibling with
      | None -> Ordpath.next_sibling sib.Node_record.ordpath
      | Some slot ->
        Ordpath.between sib.Node_record.ordpath
          (first_member_ord store sibling.Node_id.pid slot)
    in
    (* If a remote run follows the sibling, insert at that run's head so
       repeated After-inserts do not pile Downs into the sibling's page. *)
    (match sib.Node_record.next_sibling with
    | Some slot
      when (match get_record store (Node_id.make ~pid:sibling.Node_id.pid ~slot) with
           | Node_record.Down _ -> true
           | Node_record.Core _ | Node_record.Up _ -> false) ->
      let anchor', after = head_position store anchor sib.Node_record.next_sibling in
      { anchor = anchor'; before = None; after; ordpath }
    | Some _ | None ->
      { anchor; before = Some sibling.Node_id.slot; after = sib.Node_record.next_sibling; ordpath })

(* Splice [elem] (already inserted in the anchor's page) into the chain
   described by [loc]. *)
let splice store loc (elem : Node_id.t) =
  let pid = loc.anchor.Node_id.pid in
  (match loc.before with
  | Some slot -> set_next store (Node_id.make ~pid ~slot) (Some elem.Node_id.slot)
  | None -> set_first_child store loc.anchor (Some elem.Node_id.slot));
  match loc.after with
  | Some slot -> set_prev store (Node_id.make ~pid ~slot) (Some elem.Node_id.slot)
  | None -> set_last_child store loc.anchor (Some elem.Node_id.slot)

(* Root-first tag sequence of the node [id] (root's tag first, [id]'s
   tag last, [acc] appended) — the path-class key of a freshly inserted
   node, reported to the store so exactly the matching partition class
   goes stale. *)
let rec tag_chain store (id : Node_id.t) acc =
  match get_record store id with
  | Node_record.Core c -> begin
    let acc = c.Node_record.tag :: acc in
    match c.Node_record.parent with
    | None -> acc
    | Some pslot -> begin
      let anchor = Node_id.make ~pid:id.Node_id.pid ~slot:pslot in
      match get_record store anchor with
      | Node_record.Core _ -> tag_chain store anchor acc
      | Node_record.Up u -> tag_chain store u.Node_record.owner acc
      | Node_record.Down _ -> assert false
    end
  end
  | Node_record.Down _ | Node_record.Up _ -> acc

let insert_element store ~parent ?(position = Last) tag =
  let loc = locate store ~parent position in
  let home = loc.anchor.Node_id.pid in
  let core ~parent_slot ~prev ~next =
    Node_record.Core
      {
        tag;
        ordpath = loc.ordpath;
        parent = Some parent_slot;
        first_child = None;
        last_child = None;
        next_sibling = next;
        prev_sibling = prev;
      }
  in
  let direct =
    insert_core_reserved store home
      (core ~parent_slot:loc.anchor.Node_id.slot ~prev:loc.before ~next:loc.after)
  in
  let node_id =
    match direct with
    | Some slot ->
      let id = Node_id.make ~pid:home ~slot in
      splice store loc id;
      id
    | None ->
      (* No room next to the siblings: one-member run in an overflow
         page, linked through a fresh Down/Up pair. *)
      let dummy = Node_id.make ~pid:0 ~slot:0 in
      let continues = loc.after <> None in
      let up_probe =
        Node_record.Up
          { first_child = None; last_child = None; target = dummy; owner = parent; continues }
      in
      let need =
        Node_record.encoded_size up_probe
        + Node_record.encoded_size (core ~parent_slot:0 ~prev:None ~next:None)
        + down_reserve + (3 * Page.slot_entry_size)
      in
      let overflow = host_page store ~preferred:home ~need in
      let up_slot =
        match insert_into store overflow up_probe with
        | Some slot -> slot
        | None -> failwith "Update: overflow page rejected the Up record"
      in
      let up_id = Node_id.make ~pid:overflow ~slot:up_slot in
      let n_slot =
        match
          insert_core_reserved store overflow (core ~parent_slot:up_slot ~prev:None ~next:None)
        with
        | Some slot -> slot
        | None -> failwith "Update: overflow page rejected the node record"
      in
      let n_id = Node_id.make ~pid:overflow ~slot:n_slot in
      (* The Down must fit where the chain lives; border records are tiny
         and pages keep slack, but a full page is still possible. *)
      let down =
        Node_record.Down
          { parent = Some loc.anchor.Node_id.slot; next_sibling = loc.after; prev_sibling = loc.before; target = up_id }
      in
      let down_slot =
        match insert_into store home down with
        | Some slot -> slot
        | None -> failwith "Update: no room for a border record in the sibling page"
      in
      let down_id = Node_id.make ~pid:home ~slot:down_slot in
      set_record store up_id
        (Node_record.Up
           {
             first_child = Some n_slot;
             last_child = Some n_slot;
             target = down_id;
             owner = parent;
             continues;
           });
      splice store loc down_id;
      n_id
  in
  Store.note_nodes_delta store 1;
  Store.note_inserted store ~tags:(Array.of_list (tag_chain store parent [ tag ]));
  node_id

let rec insert_tree store ~parent ?position (tree : Tree.t) =
  let id = insert_element store ~parent ?position tree.Tree.tag in
  Array.iter (fun child -> ignore (insert_tree store ~parent:id child)) tree.Tree.children;
  id

(* --- deletion ----------------------------------------------------------------- *)

(* Remove a chain element's record and everything hanging below it
   (subtrees for cores, whole runs for Downs). Does not touch the
   element's own chain links. Returns the number of cores removed. *)
let rec purge store (id : Node_id.t) =
  match get_record store id with
  | Node_record.Core c ->
    let removed = purge_chain store id.Node_id.pid c.first_child in
    remove_record store id;
    removed + 1
  | Node_record.Down d ->
    let removed =
      match get_record store d.target with
      | Node_record.Up u ->
        let removed = purge_chain store d.target.Node_id.pid u.first_child in
        remove_record store d.target;
        removed
      | Node_record.Core _ | Node_record.Down _ -> assert false
    in
    remove_record store id;
    removed
  | Node_record.Up _ -> assert false

and purge_chain store pid slot_opt =
  match slot_opt with
  | None -> 0
  | Some slot ->
    let id = Node_id.make ~pid ~slot in
    let next =
      match get_record store id with
      | Node_record.Core c -> c.next_sibling
      | Node_record.Down d -> d.next_sibling
      | Node_record.Up _ -> assert false
    in
    let removed = purge store id in
    removed + purge_chain store pid next

(* Unlink a chain element (core or Down) from its chain, collapsing the
   anchoring border pair if the run becomes empty. *)
let rec unlink store (id : Node_id.t) =
  let prev, next, parent =
    match get_record store id with
    | Node_record.Core c -> (c.prev_sibling, c.next_sibling, c.parent)
    | Node_record.Down d -> (d.prev_sibling, d.next_sibling, d.parent)
    | Node_record.Up _ -> assert false
  in
  let pid = id.Node_id.pid in
  let anchor_slot =
    match parent with
    | Some slot -> slot
    | None -> invalid_arg "Update: cannot unlink the document root"
  in
  let anchor = Node_id.make ~pid ~slot:anchor_slot in
  (match prev with
  | Some slot -> set_next store (Node_id.make ~pid ~slot) next
  | None -> set_first_child store anchor next);
  (match next with
  | Some slot -> set_prev store (Node_id.make ~pid ~slot) prev
  | None -> set_last_child store anchor prev);
  (* Collapse an emptied run. *)
  match get_record store anchor with
  | Node_record.Core _ -> ()
  | Node_record.Up u ->
    if u.first_child = None then begin
      let down_id = u.target in
      unlink store down_id;
      remove_record store down_id;
      remove_record store anchor
    end
  | Node_record.Down _ -> assert false

let delete_subtree store (id : Node_id.t) =
  (match get_record store id with
  | Node_record.Core c ->
    if c.parent = None then invalid_arg "Update: cannot delete the document root"
  | Node_record.Down _ | Node_record.Up _ ->
    invalid_arg "Update: cannot delete a border record");
  unlink store id;
  let removed = purge store id in
  Store.note_nodes_delta store (-removed);
  removed
