module Disk = Xnav_storage.Disk
module Buffer_manager = Xnav_storage.Buffer_manager
module Tag = Xnav_xml.Tag

exception Corrupt of string

let magic = "XNAVIMG1"

(* --- encoding helpers -------------------------------------------------- *)

let add_u32 buf v =
  if v < 0 then invalid_arg "Image: negative integer";
  Buffer.add_int32_le buf (Int32.of_int v)

let add_float buf v = Buffer.add_int64_le buf (Int64.bits_of_float v)

let add_string buf s =
  add_u32 buf (String.length s);
  Buffer.add_string buf s

type reader = { data : string; mutable pos : int }

let need r n = if r.pos + n > String.length r.data then raise (Corrupt "truncated image")

let read_u32 r =
  need r 4;
  let v = Int32.to_int (String.get_int32_le r.data r.pos) in
  r.pos <- r.pos + 4;
  if v < 0 then raise (Corrupt "negative field");
  v

let read_float r =
  need r 8;
  let v = Int64.float_of_bits (String.get_int64_le r.data r.pos) in
  r.pos <- r.pos + 8;
  v

let read_string r =
  let n = read_u32 r in
  need r n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

(* --- save ---------------------------------------------------------------- *)

let save path stores =
  (match stores with
  | [] -> invalid_arg "Image.save: no stores"
  | first :: rest ->
    let disk = Buffer_manager.disk (Store.buffer first) in
    if
      List.exists (fun s -> Buffer_manager.disk (Store.buffer s) != disk) rest
    then invalid_arg "Image.save: stores live on different disks");
  let disk = Buffer_manager.disk (Store.buffer (List.hd stores)) in
  let config = Disk.config disk in
  let buf = Buffer.create (1 lsl 20) in
  Buffer.add_string buf magic;
  add_u32 buf config.Disk.page_size;
  add_float buf config.Disk.seek_base;
  add_float buf config.Disk.seek_factor;
  add_float buf config.Disk.seek_max;
  add_float buf config.Disk.rotational;
  add_float buf config.Disk.transfer;
  add_float buf config.Disk.async_overhead;
  add_u32 buf (Disk.page_count disk);
  for pid = 0 to Disk.page_count disk - 1 do
    Buffer.add_bytes buf (Disk.read disk pid)
  done;
  Disk.reset_clock disk;
  add_u32 buf (List.length stores);
  List.iter
    (fun store ->
      add_u32 buf (Node_id.cluster (Store.root store));
      add_u32 buf (Store.root store).Node_id.slot;
      add_u32 buf (Store.first_page store);
      add_u32 buf (Store.page_count store);
      add_u32 buf (Store.node_count store);
      add_u32 buf (Store.height store);
      let tags = Store.tag_counts store in
      add_u32 buf (List.length tags);
      List.iter
        (fun (tag, count) ->
          add_string buf (Tag.to_string tag);
          add_u32 buf count)
        tags;
      (* Stale synopses must not be reborn as fresh ones on load (the
         loaded store's mutation stamp restarts at 0), so a mutated
         store persists without stats or partition. *)
      let fresh = Store.stats_fresh store in
      (match Store.doc_stats store with
      | Some stats when fresh ->
        add_u32 buf 1;
        Doc_stats.encode buf stats
      | Some _ | None -> add_u32 buf 0);
      match Store.partition store with
      | Some partition when fresh ->
        add_u32 buf 1;
        Path_partition.encode buf partition
      | Some _ | None -> add_u32 buf 0)
    stores;
  let oc = open_out_bin path in
  Buffer.output_buffer oc buf;
  close_out oc

(* --- load ----------------------------------------------------------------- *)

let load ?(capacity = 1000) ?policy path =
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let r = { data; pos = 0 } in
  need r (String.length magic);
  if String.sub data 0 (String.length magic) <> magic then raise (Corrupt "bad magic");
  r.pos <- String.length magic;
  let page_size = read_u32 r in
  let seek_base = read_float r in
  let seek_factor = read_float r in
  let seek_max = read_float r in
  let rotational = read_float r in
  let transfer = read_float r in
  let async_overhead = read_float r in
  let config =
    { Disk.page_size; seek_base; seek_factor; seek_max; rotational; transfer; async_overhead }
  in
  let disk = Disk.create ~config () in
  let pages = read_u32 r in
  for _ = 1 to pages do
    need r page_size;
    let pid = Disk.alloc disk in
    Disk.write disk pid (Bytes.of_string (String.sub r.data r.pos page_size));
    r.pos <- r.pos + page_size
  done;
  Disk.reset_clock disk;
  let buffer = Buffer_manager.create ~capacity ?policy disk in
  let stores = read_u32 r in
  List.init stores (fun _ -> ())
  |> List.map (fun () ->
         let root_pid = read_u32 r in
         let root_slot = read_u32 r in
         let root = Node_id.make ~pid:root_pid ~slot:root_slot in
         let first_page = read_u32 r in
         let page_count = read_u32 r in
         let node_count = read_u32 r in
         let height = read_u32 r in
         let tag_entries = read_u32 r in
         let tag_counts =
           List.init tag_entries (fun _ -> ())
           |> List.map (fun () ->
                  let name = read_string r in
                  let count = read_u32 r in
                  (Tag.of_string name, count))
         in
         if first_page + page_count > pages then raise (Corrupt "catalog exceeds disk");
         let has_stats = read_u32 r in
         let doc_stats =
           if has_stats = 1 then begin
             let stats, next = Doc_stats.decode r.data r.pos in
             r.pos <- next;
             Some stats
           end
           else None
         in
         let has_partition = read_u32 r in
         let partition =
           if has_partition = 1 then begin
             let partition, next = Path_partition.decode r.data r.pos in
             r.pos <- next;
             Some partition
           end
           else None
         in
         Store.attach_meta ?doc_stats ?partition buffer ~root ~first_page ~page_count ~node_count
           ~height ~tag_counts)
