type core = {
  tag : Xnav_xml.Tag.t;
  ordpath : Xnav_xml.Ordpath.t;
  parent : int option;
  first_child : int option;
  last_child : int option;
  next_sibling : int option;
  prev_sibling : int option;
}

type down = {
  parent : int option;
  next_sibling : int option;
  prev_sibling : int option;
  target : Node_id.t;
}

type up = {
  first_child : int option;
  last_child : int option;
  target : Node_id.t;
  owner : Node_id.t;
  continues : bool;
}

type t = Core of core | Down of down | Up of up

let is_border = function Core _ -> false | Down _ | Up _ -> true

let target = function
  | Core _ -> invalid_arg "Node_record.target: core records have no target"
  | Down d -> d.target
  | Up u -> u.target

let none_slot = 0xffff

let add_slot buf slot =
  let v = match slot with None -> none_slot | Some s -> s in
  Buffer.add_uint16_le buf v

let add_varint buf x =
  let rec go x =
    if x < 0x80 then Buffer.add_char buf (Char.chr x)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (x land 0x7f)));
      go (x lsr 7)
    end
  in
  if x < 0 then invalid_arg "Node_record: negative varint";
  go x

let add_node_id buf id =
  add_varint buf id.Node_id.pid;
  add_varint buf id.Node_id.slot

let encode record =
  let buf = Buffer.create 32 in
  (match record with
  | Core c ->
    Buffer.add_char buf '\000';
    add_slot buf c.parent;
    add_slot buf c.first_child;
    add_slot buf c.last_child;
    add_slot buf c.next_sibling;
    add_slot buf c.prev_sibling;
    add_varint buf (Xnav_xml.Tag.id c.tag);
    Xnav_xml.Ordpath.encode buf c.ordpath
  | Down d ->
    Buffer.add_char buf '\001';
    add_slot buf d.parent;
    add_slot buf d.next_sibling;
    add_slot buf d.prev_sibling;
    add_node_id buf d.target
  | Up u ->
    Buffer.add_char buf (if u.continues then '\003' else '\002');
    add_slot buf u.first_child;
    add_slot buf u.last_child;
    add_node_id buf u.target;
    add_node_id buf u.owner);
  Buffer.contents buf

let read_u16 s off = Char.code s.[off] lor (Char.code s.[off + 1] lsl 8)

let read_slot s off =
  let v = read_u16 s off in
  if v = none_slot then None else Some v

let read_varint s off =
  let rec go off shift acc =
    let byte = Char.code s.[off] in
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte < 0x80 then (acc, off + 1) else go (off + 1) (shift + 7) acc
  in
  go off 0 0

let read_node_id s off =
  let pid, off = read_varint s off in
  let slot, off = read_varint s off in
  (Node_id.make ~pid ~slot, off)

let decode s =
  match s.[0] with
  | '\000' ->
    let parent = read_slot s 1 in
    let first_child = read_slot s 3 in
    let last_child = read_slot s 5 in
    let next_sibling = read_slot s 7 in
    let prev_sibling = read_slot s 9 in
    let tag_id, off = read_varint s 11 in
    let ordpath, _ = Xnav_xml.Ordpath.decode s off in
    Core
      {
        tag = Xnav_xml.Tag.of_id tag_id;
        ordpath;
        parent;
        first_child;
        last_child;
        next_sibling;
        prev_sibling;
      }
  | '\001' ->
    let parent = read_slot s 1 in
    let next_sibling = read_slot s 3 in
    let prev_sibling = read_slot s 5 in
    let target, _ = read_node_id s 7 in
    Down { parent; next_sibling; prev_sibling; target }
  | ('\002' | '\003') as kind ->
    let first_child = read_slot s 1 in
    let last_child = read_slot s 3 in
    let target, off = read_node_id s 5 in
    let owner, _ = read_node_id s off in
    Up { first_child; last_child; target; owner; continues = kind = '\003' }
  | c -> invalid_arg (Printf.sprintf "Node_record.decode: unknown kind %d" (Char.code c))

(* --- Packed navigation words -------------------------------------------

   Chain walking (the fused automaton) needs only four things from a
   record: its kind, its tag, and its first-child / next-sibling links.
   A full [decode] materialises ~90 heap words per record (the page-copy
   string, five slot options, the ordpath) — by far the dominant CPU
   cost of a scan. [nav_of_bytes] instead parses exactly those fields in
   place, from the span {!Xnav_storage.Page.record_span} exposes, into
   one unboxed int:

   {v
   bits 0..1    kind (1 = Core, 2 = Down, 3 = Up; 0 is never produced,
                so it can serve as a cache sentinel)
   bits 2..16   link1 + 1   (Core/Up first child; Down next sibling;
                             0 = none)
   bits 17..31  link2 + 1   (Core next sibling; Down target slot)
   bits 32..62  high        (Core tag id; Down target pid)
   v}

   The 15-bit link fields are safe: a slot directory entry costs 4 bytes
   and pages are capped at 65535 bytes, so slot numbers stay below
   2^14. Tag ids and page ids are interned/allocated sequentially and
   fit 31 bits. *)

let nav_core = 1
let nav_down = 2
let nav_up = 3
let nav_kind word = word land 3
let nav_link1 word = ((word lsr 2) land 0x7fff) - 1
let nav_link2 word = ((word lsr 17) land 0x7fff) - 1
let nav_high word = word lsr 32

let slot_field v = if v = none_slot then 0 else v + 1

let read_u16_bytes b off = Char.code (Bytes.get b off) lor (Char.code (Bytes.get b (off + 1)) lsl 8)

let read_varint_bytes b off =
  let rec go off shift acc =
    let byte = Char.code (Bytes.get b off) in
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte < 0x80 then (acc, off + 1) else go (off + 1) (shift + 7) acc
  in
  go off 0 0

let nav_of_bytes b off =
  match Bytes.get b off with
  | '\000' ->
    let first_child = read_u16_bytes b (off + 3) in
    let next_sibling = read_u16_bytes b (off + 7) in
    let tag_id, _ = read_varint_bytes b (off + 11) in
    nav_core lor (slot_field first_child lsl 2) lor (slot_field next_sibling lsl 17)
    lor (tag_id lsl 32)
  | '\001' ->
    let next_sibling = read_u16_bytes b (off + 3) in
    let pid, off' = read_varint_bytes b (off + 7) in
    let slot, _ = read_varint_bytes b off' in
    nav_down lor (slot_field next_sibling lsl 2) lor ((slot + 1) lsl 17) lor (pid lsl 32)
  | '\002' | '\003' ->
    let first_child = read_u16_bytes b (off + 1) in
    nav_up lor (slot_field first_child lsl 2)
  | c -> invalid_arg (Printf.sprintf "Node_record.nav_of_bytes: unknown kind %d" (Char.code c))

let encoded_size record = String.length (encode record)

(* Worst case chargeable to one node: it anchors a run (Up: 1 + 4 + two
   NodeIDs of <= 10 bytes = 25), ends a run (Down: 1 + 6 + 10 = 17), and
   starts a remote child chain (another Down: 17), plus 4 slot-directory
   entries of 4 bytes. *)
let max_overhead = 26 + 17 + 17 + (4 * Xnav_storage.Page.slot_entry_size)

let pp ppf = function
  | Core c ->
    Format.fprintf ppf "core(%a @@%a)" Xnav_xml.Tag.pp c.tag Xnav_xml.Ordpath.pp c.ordpath
  | Down d -> Format.fprintf ppf "down(->%a)" Node_id.pp d.target
  | Up u -> Format.fprintf ppf "up(->%a owner=%a)" Node_id.pp u.target Node_id.pp u.owner

let equal a b = String.equal (encode a) (encode b)
