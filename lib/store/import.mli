(** Clustering import: maps a logical document tree onto disk pages.

    The paper deliberately does not prescribe a clustering (Sec. 3.3) —
    it only assumes one exists and that navigation within a cluster is
    cheap. This module provides several strategies so that the effect of
    clustering quality on the plans can be measured:

    - [Dfs]: pack nodes in document order — the natural result of a bulk
      document import, with long parent/child runs per page.
    - [Bfs]: pack level by level; siblings cluster together but parent
      and child usually end up on different pages.
    - [Scattered seed]: a seeded random permutation — models a heavily
      updated store whose time-of-creation clustering has decayed.
    - [Explicit clusters]: caller-chosen cluster id per preorder rank —
      full control for experiments that need a specific physical layout
      (e.g. the paper's Figure 1).

    Packing is greedy over the chosen order with a pessimistic per-node
    byte charge ({!Node_record.max_overhead}) that guarantees every
    cluster, with all border records it may need, fits its page. *)

type strategy = Dfs | Bfs | Scattered of int | Explicit of int array

val strategy_to_string : strategy -> string

type result = {
  root : Node_id.t;  (** Core record of the document root. *)
  first_page : int;
  page_count : int;
  node_count : int;  (** Logical (core) nodes. *)
  border_count : int;  (** Down + Up records materialised. *)
  height : int;
  tag_counts : (Xnav_xml.Tag.t * int) list;
      (** Per-tag node counts — the statistics the cost-based plan
          chooser consumes. *)
  stats : Doc_stats.t;
      (** The full path synopsis collected during import (tag counts,
          parent/child pairs, subtree volumes). *)
  partition : Path_partition.t;
      (** The structural index built in the same pass: per path class,
          the sorted (cluster, node) entry list. *)
  node_ids : Node_id.t array;
      (** Preorder rank -> core NodeID, for tests and context lookup. *)
}

val run : ?strategy:strategy -> ?payload:int -> Xnav_storage.Disk.t -> Xnav_xml.Tree.t -> result
(** [run disk doc] appends the clustered representation of [doc] to
    [disk] and describes it. [payload] caps the bytes packed per cluster
    (default: the page's usable space); smaller values force more
    clusters, which tests use to exercise border handling on small
    documents. The tree is (re)indexed by the call.

    @raise Invalid_argument if even a single node exceeds the payload,
    or if an [Explicit] assignment has the wrong length or negative ids.
    @raise Failure if an [Explicit] assignment overflows a page. *)
